module cpq

go 1.22
