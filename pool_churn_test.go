package cpq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"cpq/internal/quality"
)

// TestPoolChurn drives real registry queues through the elastic handle
// pool with short-lived goroutines that sometimes abandon their handle
// mid-churn (exit without Release), and asserts the three promises of the
// handle-lifecycle design: every abandoned handle is stolen back, no item
// is lost across abandonment (conservation through steal-time recovery and
// the k-LSM's spy path), and the relaxation bound reported for the run is
// quality.ClaimedBound at the pool's dynamic handle count rather than a
// frozen Options.Threads. Runs under -race in the make check matrix.
func TestPoolChurn(t *testing.T) {
	for _, name := range []string{"klsm128", "multiq-s4-b8", "linden"} {
		t.Run(name, func(t *testing.T) {
			// Sized so every queue sees a few dozen steals but the linden
			// subtest stays CI-friendly: each abandonment past the cap
			// parks Acquire on collector cycles, and a race-mode GC over
			// linden's arena is milliseconds, not microseconds.
			const (
				slots        = 4
				goroutines   = 140
				burst        = 50
				abandonEvery = 7
			)
			q, err := NewQueue(name, Options{Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			pool := NewPool(q, PoolOptions{MaxHandles: slots + 1})

			var inserted, deleted atomic.Uint64
			var wg sync.WaitGroup
			abandoned := 0
			for g := 0; g < goroutines; g++ {
				if (g+1)%abandonEvery == 0 {
					abandoned++
				}
			}
			for s := 0; s < slots; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					done := make(chan struct{})
					for g := s; g < goroutines; g += slots {
						abandon := (g+1)%abandonEvery == 0
						key := uint64(g) * uint64(burst)
						go func() {
							h := pool.Acquire()
							for i := 0; i < burst; i++ {
								if i%2 == 0 {
									h.Insert(key+uint64(i), uint64(g))
									inserted.Add(1)
								} else if _, _, ok := h.DeleteMin(); ok {
									deleted.Add(1)
								}
							}
							if !abandon {
								pool.Release(h)
							} // abandoners drop the handle; the pool must steal it
							done <- struct{}{}
						}()
						<-done
					}
				}(s)
			}
			wg.Wait()

			// Recovery: every abandonment is one unreachable wrapper, and
			// each must come back as exactly one steal once the collector
			// notices it. (Releases never count: the pool resurrects
			// wrappers that were checked back in properly.)
			for i := 0; i < 4000 && pool.Steals() < uint64(abandoned); i++ {
				runtime.GC()
				runtime.Gosched()
			}
			if got := pool.Steals(); got != uint64(abandoned) {
				t.Fatalf("Steals = %d, want %d (one per abandonment)", got, abandoned)
			}
			if live := pool.Live(); live != 0 {
				t.Fatalf("Live = %d after all releases and steals, want 0", live)
			}
			if created := pool.Created(); created > slots+1 {
				t.Fatalf("Created = %d, want <= cap %d (abandonment must recycle, not grow)", created, slots+1)
			}

			// Conservation: a fresh handle drains everything the churned
			// goroutines left behind, including items buffered in stolen
			// handles. Emptiness is retried a few times: relaxed queues may
			// need more than one sweep to conclude empty.
			drain := pool.Acquire()
			var drained uint64
			for misses := 0; misses < 20; {
				if _, _, ok := drain.DeleteMin(); ok {
					drained++
					misses = 0
				} else {
					misses++
					runtime.Gosched()
				}
			}
			pool.Release(drain)
			if inserted.Load() != deleted.Load()+drained {
				t.Fatalf("conservation: inserted %d != deleted %d + drained %d",
					inserted.Load(), deleted.Load(), drained)
			}

			// Dynamic bound: the claimed bound for this run is judged at the
			// pool's handle accounting, not a frozen construction-time P.
			effP := quality.EffectiveP(name, pool.PeakLive(), pool.Created())
			bound, kind := quality.ClaimedBound(name, effP)
			switch name {
			case "klsm128":
				// Structural relaxation: every handle ever created keeps its
				// local component, so created governs.
				if effP != pool.Created() {
					t.Fatalf("EffectiveP = %d, want created %d", effP, pool.Created())
				}
				if kind != quality.BoundRelaxed || bound != 128*pool.Created() {
					t.Fatalf("ClaimedBound = %d (%s), want %d (%s)",
						bound, kind, 128*pool.Created(), quality.BoundRelaxed)
				}
			case "multiq-s4-b8":
				if kind != quality.BoundNone {
					t.Fatalf("ClaimedBound kind = %s, want %s", kind, quality.BoundNone)
				}
			case "linden":
				// Buffer-only relaxation (none): peak concurrency governs,
				// so the bound SHRANK back to strict once handles drained.
				if effP != pool.PeakLive() {
					t.Fatalf("EffectiveP = %d, want peakLive %d", effP, pool.PeakLive())
				}
				if kind != quality.BoundStrict || bound != 0 {
					t.Fatalf("ClaimedBound = %d (%s), want 0 (%s)",
						bound, kind, quality.BoundStrict)
				}
			}
		})
	}
}
