// Parallel best-first branch-and-bound for 0/1 knapsack — the third
// application family the paper's introduction cites for relaxed priority
// queues ("branch-and-bound"). The frontier of open subproblems lives in a
// concurrent priority queue ordered by the negated upper bound, so
// DeleteMin returns the most promising subproblem. A relaxed queue may hand
// a worker a slightly less promising node; the search stays exact because
// pruning compares against the shared incumbent — relaxation only changes
// the exploration order and hence the node count, which this example
// reports.
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpq"
	"cpq/internal/rng"
)

type problemItem struct {
	weight, value uint32
}

// node encodes a subproblem: items [idx:) remain undecided.
type node struct {
	idx    int
	weight uint64 // accumulated weight
	value  uint64 // accumulated value
}

const (
	nItems   = 48
	capacity = 2000
	workers  = 4
)

func makeProblem(seed uint64) []problemItem {
	r := rng.New(seed)
	items := make([]problemItem, nItems)
	for i := range items {
		items[i] = problemItem{
			weight: uint32(r.Uintn(200)) + 20,
			value:  uint32(r.Uintn(300)) + 20,
		}
	}
	// Best-first needs items sorted by value density for the LP bound.
	sort.Slice(items, func(i, j int) bool {
		return uint64(items[i].value)*uint64(items[j].weight) >
			uint64(items[j].value)*uint64(items[i].weight)
	})
	return items
}

// upperBound is the fractional-knapsack LP relaxation for the subproblem.
func upperBound(items []problemItem, n node) uint64 {
	bound := n.value
	room := uint64(capacity) - n.weight
	for i := n.idx; i < len(items); i++ {
		w, v := uint64(items[i].weight), uint64(items[i].value)
		if w <= room {
			room -= w
			bound += v
		} else {
			bound += v * room / w
			break
		}
	}
	return bound
}

// solve explores best-first with the given queue; returns the optimum and
// the number of explored nodes.
func solve(items []problemItem, q cpq.Queue) (best uint64, explored uint64) {
	var incumbent atomic.Uint64
	var pending atomic.Int64
	var exploredCtr atomic.Uint64

	const maxBound = uint64(1) << 40 // priority = maxBound - upperBound (min-queue → best-first)
	seed := q.Handle()
	root := node{}
	pending.Add(1)
	seed.Insert(maxBound-upperBound(items, root), encode(root))

	// Each worker expands a batch of frontier nodes per DeleteMinN call and
	// publishes all surviving children with one InsertN (the batch-first API,
	// DESIGN.md §4c): the queue's synchronization is paid once per batch of
	// subproblems instead of once per node.
	const expandBatch = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			ext := make([]cpq.KV, expandBatch)
			out := make([]cpq.KV, 0, 2*expandBatch)
			for {
				got := cpq.DeleteMinN(h, ext, expandBatch)
				if got == 0 {
					if pending.Load() == 0 {
						return
					}
					continue
				}
				out = out[:0]
				for j := 0; j < got; j++ {
					n := decode(ext[j].Value)
					exploredCtr.Add(1)
					bound := maxBound - ext[j].Key
					if bound <= incumbent.Load() || n.idx >= len(items) {
						continue
					}
					// Branch: skip item idx, or take it if it fits.
					for _, child := range []node{
						{idx: n.idx + 1, weight: n.weight, value: n.value},
						{idx: n.idx + 1, weight: n.weight + uint64(items[n.idx].weight),
							value: n.value + uint64(items[n.idx].value)},
					} {
						if child.weight > capacity {
							continue
						}
						// Update the incumbent with the feasible solution.
						for {
							cur := incumbent.Load()
							if child.value <= cur || incumbent.CompareAndSwap(cur, child.value) {
								break
							}
						}
						if ub := upperBound(items, child); ub > incumbent.Load() && child.idx < len(items) {
							out = append(out, cpq.KV{Key: maxBound - ub, Value: encode(child)})
						}
					}
				}
				if len(out) > 0 {
					pending.Add(int64(len(out)))
					cpq.InsertN(h, out)
				}
				pending.Add(int64(-got))
			}
		}()
	}
	wg.Wait()
	return incumbent.Load(), exploredCtr.Load()
}

// encode/decode pack a node into the queue's uint64 payload:
// 6 bits idx | 29 bits weight | 29 bits value.
func encode(n node) uint64 {
	return uint64(n.idx)<<58 | n.weight<<29 | n.value
}

func decode(v uint64) node {
	return node{
		idx:    int(v >> 58),
		weight: (v >> 29) & (1<<29 - 1),
		value:  v & (1<<29 - 1),
	}
}

func main() {
	items := makeProblem(2024)
	fmt.Printf("0/1 knapsack: %d items, capacity %d, %d workers, best-first B&B\n\n",
		nItems, capacity, workers)
	fmt.Printf("%-12s %10s %12s %14s\n", "queue", "optimum", "explored", "wall time")
	var reference uint64
	for i, name := range []string{"globallock", "linden", "multiq", "spray", "klsm256"} {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: workers})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		best, explored := solve(items, q)
		elapsed := time.Since(t0)
		cpq.Close(q)
		if i == 0 {
			reference = best
		}
		status := ""
		if best != reference {
			status = "  MISMATCH!"
		}
		fmt.Printf("%-12s %10d %12d %14v%s\n",
			name, best, explored, elapsed.Round(time.Millisecond), status)
	}
	fmt.Println("\nAll queues find the same optimum; relaxed queues may explore more nodes")
	fmt.Println("(less-promising subproblems drawn early) in exchange for concurrency.")
}
