// Command orderbook is a worked example of driving two priority-queue
// instances as a limit order book — the classic application the paper's
// strict queues exist for. Bids and asks are two queues of the same
// spec: asks are min-ordered on price directly, bids are max-ordered by
// negating the 32-bit price, and price-time priority falls out of
// packing a per-book sequence number into the low key bits:
//
//	ask key = price<<32 | seq          (lowest price, then oldest, pops first)
//	bid key = (^price & 0xffffffff)<<32 | seq
//	value   = qty<<32 | orderID
//
// Matching needs no peek operation: the engine pops the best resting
// order, tests whether the incoming price crosses it, and pushes it back
// if not (or re-inserts the remainder after a partial fill). Pop-test-
// pushback is exactly the access pattern a network queue supports, so
// the same engine runs against either backend:
//
//	orderbook                      # in-process book on two linden instances
//	orderbook -queue globallock    # any strict registry queue
//	orderbook -addr 127.0.0.1:9410 # two pqd sessions: "<spec>#bids", "<spec>#asks"
//
// Strictness matters here: with a relaxed queue (multiq, spraylist) the
// popped order is only approximately the best, so fills can violate
// price-time priority — the demo refuses relaxed specs by default and
// -relaxed-ok turns the refusal into a warning, which makes the
// strict-vs-relaxed tradeoff of DESIGN.md §2 tangible.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpq"
	"cpq/internal/netpq"
	"cpq/internal/pq"
	"cpq/internal/rng"
)

// bookSide is the minimal queue surface the matching engine needs; it is
// satisfied by an in-process handle and by a netpq client session alike.
type bookSide interface {
	insert(key, value uint64)
	// popMin removes the best resting order (smallest key) or reports
	// an empty side.
	popMin() (key, value uint64, ok bool)
	close()
}

// localSide drives one in-process queue instance.
type localSide struct {
	q pq.Queue
	h pq.Handle
}

func (s *localSide) insert(key, value uint64)             { s.h.Insert(key, value) }
func (s *localSide) popMin() (key, value uint64, ok bool) { return s.h.DeleteMin() }
func (s *localSide) close()                               { pq.Flush(s.h); pq.Close(s.q) }

// netSide drives one pqd session ("spec#bids" or "spec#asks").
type netSide struct{ c *netpq.Client }

func (s *netSide) insert(key, value uint64) {
	exitOn(s.c.Insert(key, value))
}
func (s *netSide) popMin() (key, value uint64, ok bool) {
	key, value, ok, err := s.c.DeleteMin()
	exitOn(err)
	return key, value, ok
}
func (s *netSide) close() { s.c.Close() }

// book is the matching engine over the two sides.
type book struct {
	bids, asks bookSide
	seq        uint64 // per-book arrival counter (time priority)

	trades      int
	tradedQty   uint64
	restingBids int
	restingAsks int
}

const priceMask = 0xffffffff

func bidKey(price uint32, seq uint64) uint64 { return uint64(^price)<<32 | (seq & priceMask) }
func askKey(price uint32, seq uint64) uint64 { return uint64(price)<<32 | (seq & priceMask) }
func bidPrice(key uint64) uint32             { return ^uint32(key >> 32) }
func askPrice(key uint64) uint32             { return uint32(key >> 32) }
func packOrder(qty uint32, id uint32) uint64 { return uint64(qty)<<32 | uint64(id) }
func orderQty(value uint64) uint32           { return uint32(value >> 32) }
func orderID(value uint64) uint32            { return uint32(value & priceMask) }

// limit processes one incoming limit order: match against the opposite
// side while the price crosses, rest any remainder on the own side.
func (b *book) limit(isBid bool, price uint32, qty uint32, id uint32) {
	opp, own := b.asks, b.bids
	oppPrice, ownKey := askPrice, bidKey
	crosses := func(restPrice uint32) bool { return restPrice <= price }
	if !isBid {
		opp, own = b.bids, b.asks
		oppPrice, ownKey = bidPrice, askKey
		crosses = func(restPrice uint32) bool { return restPrice >= price }
	}

	for qty > 0 {
		key, value, ok := opp.popMin()
		if !ok {
			break // opposite side empty
		}
		if !crosses(oppPrice(key)) {
			opp.insert(key, value) // best resting order doesn't cross: push back
			break
		}
		restQty := orderQty(value)
		fill := qty
		if restQty < fill {
			fill = restQty
		}
		b.trades++
		b.tradedQty += uint64(fill)
		qty -= fill
		if restQty > fill {
			// Partial fill: the remainder keeps its key, hence its
			// price-time position.
			opp.insert(key, packOrder(restQty-fill, orderID(value)))
		} else if isBid {
			b.restingAsks--
		} else {
			b.restingBids--
		}
	}
	if qty > 0 {
		b.seq++
		own.insert(ownKey(price, b.seq), packOrder(qty, id))
		if isBid {
			b.restingBids++
		} else {
			b.restingAsks++
		}
	}
}

// bestQuote pops and pushes back each side's top of book.
func (b *book) bestQuote() (bid, ask uint32, haveBid, haveAsk bool) {
	if key, value, ok := b.bids.popMin(); ok {
		bid, haveBid = bidPrice(key), true
		b.bids.insert(key, value)
	}
	if key, value, ok := b.asks.popMin(); ok {
		ask, haveAsk = askPrice(key), true
		b.asks.insert(key, value)
	}
	return
}

func main() {
	var (
		spec      = flag.String("queue", "linden", "registry queue spec backing each book side")
		addr      = flag.String("addr", "", "pqd server address (empty = in-process queues)")
		orders    = flag.Int("orders", 20_000, "random limit orders to feed")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		relaxedOK = flag.Bool("relaxed-ok", false, "allow relaxed queues (approximate matching) with a warning")
	)
	flag.Parse()

	if !strictSpec(*spec) {
		if !*relaxedOK {
			fmt.Fprintf(os.Stderr,
				"orderbook: %q is a relaxed queue; matching would only approximate price-time priority (pass -relaxed-ok to demo that anyway)\n", *spec)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "orderbook: warning: %q is relaxed; fills may violate price-time priority\n", *spec)
	}

	var b book
	if *addr == "" {
		b.bids = newLocalSide(*spec)
		b.asks = newLocalSide(*spec)
		fmt.Printf("orderbook: in-process, 2x %s\n", *spec)
	} else {
		b.bids = newNetSide(*addr, *spec+"#bids")
		b.asks = newNetSide(*addr, *spec+"#asks")
		fmt.Printf("orderbook: via pqd at %s, sessions %s#bids / %s#asks\n", *addr, *spec, *spec)
	}
	defer b.bids.close()
	defer b.asks.close()

	// Random walk around a mid price: each order is a limit within a
	// small band of the drifting mid, equally likely bid or ask.
	r := rng.New(*seed)
	mid := uint32(10_000)
	for i := 0; i < *orders; i++ {
		isBid := r.Uint64()&1 == 0
		off := uint32(r.Uint64() % 20)
		price := mid - 10 + off
		qty := uint32(1 + r.Uint64()%100)
		b.limit(isBid, price, qty, uint32(i))
		if i%97 == 0 { // drift the mid so the book keeps turning over
			mid += uint32(r.Uint64()%5) - 2
		}
	}

	bid, ask, haveBid, haveAsk := b.bestQuote()
	fmt.Printf("orders=%d trades=%d traded_qty=%d resting: bids=%d asks=%d\n",
		*orders, b.trades, b.tradedQty, b.restingBids, b.restingAsks)
	switch {
	case haveBid && haveAsk:
		fmt.Printf("top of book: bid %d / ask %d (spread %d)\n", bid, ask, int64(ask)-int64(bid))
		if ask <= bid {
			fmt.Fprintln(os.Stderr, "orderbook: BOOK CROSSED — matching invariant violated")
			os.Exit(1)
		}
	case haveBid:
		fmt.Printf("top of book: bid %d / no asks\n", bid)
	case haveAsk:
		fmt.Printf("top of book: no bids / ask %d\n", ask)
	default:
		fmt.Println("book empty")
	}
	if b.trades == 0 {
		fmt.Fprintln(os.Stderr, "orderbook: no trades executed (demo expects a crossing flow)")
		os.Exit(1)
	}
}

// strictSpec reports whether the registry spec names a queue with exact
// delete-min semantics; relaxed families make matching approximate.
func strictSpec(spec string) bool {
	switch spec {
	case "linden", "globallock", "heap", "lotan", "hunt", "mound", "cbpq",
		"locksl", "lockedskiplist":
		return true
	default:
		// The rest of the registry (multiq*, klsm*, slsm*, dlsm, spray)
		// trades strictness for scalability.
		return false
	}
}

func newLocalSide(spec string) *localSide {
	q, err := cpq.NewQueue(spec, cpq.Options{Threads: 2})
	exitOn(err)
	return &localSide{q: q, h: q.Handle()}
}

func newNetSide(addr, queueID string) *netSide {
	c, err := netpq.Dial(addr, queueID)
	exitOn(err)
	return &netSide{c: c}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orderbook:", err)
		os.Exit(1)
	}
}
