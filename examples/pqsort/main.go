// Priority-queue sorting — the workload of Larkin, Sen and Tarjan's
// "Back-to-Basics Empirical Study of Priority Queues", which the paper's
// Appendix F identifies as the limiting case of its operation-batch-size
// parameter ("choosing large batches would correspond to the sorting
// benchmark"). Insert n random items, then delete them all: one maximal
// insert batch followed by one maximal delete batch.
//
// With no concurrent inserts, a strict queue guarantees every worker a
// non-decreasing drain sequence (each deletion returns the then-global
// minimum). Relaxed queues break per-worker monotonicity, and the size of
// the regressions directly visualizes the relaxation: this example counts
// per-worker inversions and the largest backward key jump, and validates
// the union of the drains against sort.Slice.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cpq"
	"cpq/internal/rng"
)

const (
	n       = 200_000
	workers = 4
)

func pqSort(q cpq.Queue, input []uint64) [][]uint64 {
	// Phase 1: parallel batch insert.
	var wg sync.WaitGroup
	chunk := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(input) {
			hi = len(input)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			h := q.Handle()
			for _, k := range part {
				h.Insert(k, k)
			}
		}(input[lo:hi])
	}
	wg.Wait()
	// Phase 2: parallel batch delete; each worker keeps its drain order and
	// the slices are merged by position afterwards.
	outs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				outs[w] = append(outs[w], k)
			}
		}(w)
	}
	wg.Wait()
	return outs
}

// drainStats reports the number of positions at which a worker's drain
// went backwards, and the largest backward key jump observed.
func drainStats(outs [][]uint64) (inversions int, maxRegression uint64) {
	for _, seq := range outs {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				inversions++
				if d := seq[i-1] - seq[i]; d > maxRegression {
					maxRegression = d
				}
			}
		}
	}
	return
}

func main() {
	r := rng.New(777)
	input := make([]uint64, n)
	for i := range input {
		input[i] = r.Uint64() % (1 << 32)
	}
	want := append([]uint64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	fmt.Printf("pq-sort of %d random 32-bit keys, %d workers\n\n", n, workers)
	fmt.Printf("%-12s %12s %10s %12s %16s\n", "queue", "wall time", "complete", "inversions", "max regression")
	for _, name := range []string{"globallock", "hunt", "cbpq", "linden", "multiq", "spray", "klsm256", "klsm4096"} {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: workers})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		outs := pqSort(q, input)
		elapsed := time.Since(t0)
		cpq.Close(q)
		var got []uint64
		for _, o := range outs {
			got = append(got, o...)
		}
		complete := "yes"
		if len(got) != n {
			complete = fmt.Sprintf("LOST %d", n-len(got))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range want {
			if got[i] != want[i] {
				complete = "CORRUPT"
				break
			}
		}
		inv, reg := drainStats(outs)
		fmt.Printf("%-12s %12v %10s %12d %16d\n",
			name, elapsed.Round(time.Millisecond), complete, inv, reg)
	}
	fmt.Println("\nWith deletions only, a strict queue gives every worker a non-decreasing")
	fmt.Println("drain (0 inversions); inversions and their size visualize the relaxation.")
	fmt.Println("Huge regressions are starvation, not bound violations: relaxation bounds the")
	fmt.Println("RANK of each deletion, so a near-minimal item may legally linger until the")
	fmt.Println("drain's very end once fewer than kP items remain.")
}
