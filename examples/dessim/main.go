// Parallel discrete event simulation — the application behind the paper's
// ascending key distribution and the classic "hold model" of Jones (CACM
// 1986): each processed event schedules a follow-up event at a strictly
// later timestamp, so pending-event-set keys drift upward exactly like the
// benchmark's ascending generator.
//
// The simulation is a closed queueing network: a fixed population of jobs
// circulates among stations; serving a job at time t schedules its arrival
// at the next station at t + service_time. The pending event set is a
// concurrent priority queue keyed by event timestamp. With a relaxed queue,
// workers may process events slightly out of timestamp order; for this
// model that only perturbs the interleaving of independent jobs, and the
// example quantifies the perturbation as observed timestamp inversions.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cpq"
	"cpq/internal/rng"
)

const (
	stations  = 64
	jobs      = 10_000 // closed population: queue stays in steady state ("hold")
	totalOps  = 400_000
	workers   = 4
	meanServe = 100 // mean service time (time units)
)

// runSim processes totalOps events from the queue, each rescheduling one
// follow-up event, and reports elapsed wall time plus the number of events
// observed with a timestamp below the worker's previously processed one.
func runSim(q cpq.Queue) (elapsed time.Duration, inversions uint64) {
	// Seed: every job starts at a random station at a small random time.
	seedH := q.Handle()
	seedR := rng.New(7)
	for j := 0; j < jobs; j++ {
		seedH.Insert(seedR.Uintn(meanServe), uint64(j))
	}
	var processed atomic.Int64
	var inv atomic.Uint64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 99)
			var lastT uint64
			for processed.Add(1) <= totalOps {
				t, job, ok := h.DeleteMin()
				if !ok {
					continue // another worker holds all events momentarily
				}
				if t < lastT {
					inv.Add(1)
				}
				lastT = t
				// Serve the job: exponential-ish service time from a
				// geometric approximation, then requeue its next arrival.
				service := uint64(1)
				for r.Uintn(meanServe) != 0 && service < 8*meanServe {
					service++
				}
				_ = stations // station routing folded into the timestamp
				h.Insert(t+service, job)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(t0), inv.Load()
}

func main() {
	fmt.Printf("closed queueing network: %d jobs, %d events, %d workers\n\n",
		jobs, totalOps, workers)
	fmt.Printf("%-12s %12s %14s %s\n", "queue", "wall time", "events/sec", "timestamp inversions")
	for _, name := range []string{"globallock", "linden", "hunt", "multiq", "spray", "klsm256", "klsm4096"} {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: workers})
		if err != nil {
			panic(err)
		}
		elapsed, inversions := runSim(q)
		cpq.Close(q)
		fmt.Printf("%-12s %12v %14.0f %d\n",
			name, elapsed.Round(time.Millisecond),
			float64(totalOps)/elapsed.Seconds(), inversions)
	}
	fmt.Println("\nStrict queues admit no (single-worker-visible) timestamp regressions at 1 worker;")
	fmt.Println("relaxed queues trade bounded reordering for throughput — the k-LSM/MultiQueue bet.")
}
