// Quickstart: construct each queue in the suite, use it from several
// goroutines through per-goroutine handles, and inspect the relaxation
// behaviour of strict vs. relaxed designs.
package main

import (
	"fmt"
	"sort"
	"sync"

	"cpq"
)

func main() {
	// --- Basic single-goroutine use -----------------------------------
	q := cpq.NewKLSM(256) // relaxed: DeleteMin returns one of the k·P smallest
	defer cpq.Close(q)    // nil-safe: a no-op unless the queue holds resources
	h := q.Handle()       // one handle per goroutine
	for _, key := range []uint64{42, 7, 99, 13} {
		h.Insert(key, key*100) // (priority, payload)
	}
	fmt.Println("k-LSM drain (relaxed, single handle ⇒ strict here):")
	for {
		key, value, ok := h.DeleteMin()
		if !ok {
			break
		}
		fmt.Printf("  key=%-3d value=%d\n", key, value)
	}

	// --- Every implementation through the registry --------------------
	fmt.Println("\nAll implementations, same workload:")
	for _, name := range cpq.Names() {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: 4}) // intended concurrent handles
		if err != nil {
			panic(err)
		}
		h := q.Handle()
		for k := uint64(5); k > 0; k-- {
			h.Insert(k, 0)
		}
		first, _, _ := h.DeleteMin()
		fmt.Printf("  %-10s first DeleteMin after inserting 5..1: %d\n", q.Name(), first)
		cpq.Close(q)
	}

	// --- Concurrent producers and consumers ---------------------------
	const producers, consumers, perProducer = 4, 4, 10_000
	mq := cpq.NewMultiQueue(4, producers+consumers)
	var wg sync.WaitGroup
	consumed := make([][]uint64, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := mq.Handle()
			for i := 0; i < perProducer; i++ {
				h.Insert(uint64(p*perProducer+i), uint64(p))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := mq.Handle()
			for len(consumed[c]) < perProducer {
				if k, _, ok := h.DeleteMin(); ok {
					consumed[c] = append(consumed[c], k)
				}
			}
		}(c)
	}
	wg.Wait()
	var all []uint64
	for _, c := range consumed {
		all = append(all, c...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Printf("\nMultiQueue: %d items consumed by %d goroutines, min=%d max=%d\n",
		len(all), consumers, all[0], all[len(all)-1])

	// Relaxed queues trade ordering precision for scalability: measure how
	// far the concurrent consumption order strayed from sorted order.
	inversions := 0
	var flat []uint64
	for _, c := range consumed {
		flat = append(flat, c...)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i] < flat[i-1] {
			inversions++
		}
	}
	fmt.Printf("local order inversions across consumers: %d of %d (relaxation at work)\n",
		inversions, len(flat)-1)

	// --- Short-lived goroutines: the handle pool ----------------------
	// One handle per goroutine stops making sense when goroutines are
	// request-shaped (many, short). The pool recycles a few real handles
	// through any number of goroutines, and recovers handles whose
	// goroutine exits without Release — forgetting the deferred call
	// only delays reuse instead of leaking (DESIGN.md §4d).
	pq, err := cpq.NewQueue("klsm256", cpq.Options{Threads: 1}) // pool sizes it
	if err != nil {
		panic(err)
	}
	pool := cpq.NewPool(pq, cpq.PoolOptions{})
	defer pool.Close() // flushes pooled handles, then closes the queue
	const requests = 1000
	done := make(chan struct{})
	for r := 0; r < requests; r++ {
		go func(r int) {
			h := pool.Acquire()
			defer pool.Release(h)
			h.Insert(uint64(r), 0)
			h.DeleteMin()
			done <- struct{}{}
		}(r)
		<-done
	}
	fmt.Printf("\npool: %d request goroutines served by %d real handles (%d steals)\n",
		requests, pool.Created(), pool.Steals())
}
