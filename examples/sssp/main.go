// Single-source shortest paths with a relaxed concurrent priority queue —
// one of the applications the paper's introduction names as motivating
// relaxed semantics ("shortest path algorithms"). Since none of the
// compared queues support decrease_key (Appendix A), the parallel Dijkstra
// uses lazy deletion: distances are CAS-updated and stale queue entries are
// skipped on extraction. A relaxed queue may hand a worker a node that is
// not the globally closest unsettled one; the algorithm stays correct —
// such nodes are simply re-relaxed — at the cost of some wasted work, which
// this example measures.
package main

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cpq"
	"cpq/internal/rng"
)

type edge struct {
	to uint32
	w  uint32
}

// graph is a random directed graph in adjacency-list form.
type graph struct {
	adj [][]edge
}

func randomGraph(n, degree int, seed uint64) *graph {
	r := rng.New(seed)
	g := &graph{adj: make([][]edge, n)}
	for u := 0; u < n; u++ {
		for d := 0; d < degree; d++ {
			v := uint32(r.Uintn(uint64(n)))
			w := uint32(r.Uintn(1000)) + 1
			g.adj[u] = append(g.adj[u], edge{to: v, w: w})
		}
		// A ring edge keeps the graph strongly connected so every node is
		// reachable and runs are comparable.
		g.adj[u] = append(g.adj[u], edge{to: uint32((u + 1) % n), w: 1000})
	}
	return g
}

// sequentialDijkstra is the reference oracle.
func sequentialDijkstra(g *graph, src int) []uint64 {
	n := len(g.adj)
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = math.MaxUint64
	}
	dist[src] = 0
	q := cpq.NewGlobalLock()
	h := q.Handle()
	h.Insert(0, uint64(src))
	for {
		d, u, ok := h.DeleteMin()
		if !ok {
			break
		}
		if d > dist[u] {
			continue // stale entry
		}
		for _, e := range g.adj[u] {
			if nd := d + uint64(e.w); nd < dist[e.to] {
				dist[e.to] = nd
				h.Insert(nd, uint64(e.to))
			}
		}
	}
	return dist
}

// settleBatch is how many nodes a worker extracts per DeleteMinN call; the
// relaxed edges they produce are re-inserted with one InsertN. Batching
// amortizes the queue's synchronization over several settled nodes — the
// batch-first API of DESIGN.md §4c — at the price of slightly more stale
// extractions (the nodes of one batch are settled against a snapshot).
const settleBatch = 8

// parallelSSSP runs Dijkstra with lazy deletion over a concurrent queue.
// dist entries are updated by CAS. Termination uses an exact pending-work
// counter: it is incremented BEFORE every insert and decremented after the
// extracted entry has been fully processed, so pending == 0 together with
// an empty DeleteMinN means no work exists anywhere in the system.
func parallelSSSP(g *graph, src, workers int, q cpq.Queue) (dist []atomic.Uint64, wasted uint64) {
	n := len(g.adj)
	dist = make([]atomic.Uint64, n)
	for i := range dist {
		dist[i].Store(math.MaxUint64)
	}
	dist[src].Store(0)
	var pending atomic.Int64
	seedHandle := q.Handle()
	pending.Add(1)
	seedHandle.Insert(0, uint64(src))

	var wastedCtr atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			ext := make([]cpq.KV, settleBatch)
			out := make([]cpq.KV, 0, 4*settleBatch)
			for {
				got := cpq.DeleteMinN(h, ext, settleBatch)
				if got == 0 {
					if pending.Load() == 0 {
						return
					}
					continue // a peer is still relaxing; its inserts will show up
				}
				out = out[:0]
				for j := 0; j < got; j++ {
					d, u := ext[j].Key, int(ext[j].Value)
					if d > dist[u].Load() {
						wastedCtr.Add(1) // stale: a shorter path was settled
						continue
					}
					for _, e := range g.adj[u] {
						nd := d + uint64(e.w)
						for {
							cur := dist[e.to].Load()
							if nd >= cur {
								break
							}
							if dist[e.to].CompareAndSwap(cur, nd) {
								out = append(out, cpq.KV{Key: nd, Value: uint64(e.to)})
								break
							}
						}
					}
				}
				if len(out) > 0 {
					pending.Add(int64(len(out)))
					cpq.InsertN(h, out)
				}
				pending.Add(int64(-got))
			}
		}()
	}
	wg.Wait()
	return dist, wastedCtr.Load()
}

func main() {
	const (
		nodes   = 50_000
		degree  = 8
		workers = 4
		src     = 0
	)
	g := randomGraph(nodes, degree, 12345)
	t0 := time.Now()
	want := sequentialDijkstra(g, src)
	seqTime := time.Since(t0)
	fmt.Printf("graph: %d nodes, ~%d edges; sequential Dijkstra: %v\n",
		nodes, nodes*(degree+1), seqTime)

	for _, name := range []string{"globallock", "linden", "multiq", "spray", "klsm256", "klsm4096"} {
		q, err := cpq.NewQueue(name, cpq.Options{Threads: workers})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		dist, wasted := parallelSSSP(g, src, workers, q)
		elapsed := time.Since(t0)
		cpq.Close(q)
		mismatches := 0
		for i := range want {
			if dist[i].Load() != want[i] {
				mismatches++
			}
		}
		status := "OK"
		if mismatches > 0 {
			status = fmt.Sprintf("WRONG (%d mismatches)", mismatches)
		}
		fmt.Printf("  %-10s %8v  wasted extractions: %-7d  distances: %s\n",
			name, elapsed.Round(time.Millisecond), wasted, status)
	}
	fmt.Println("\nRelaxed queues do more wasted work per extraction but scale with cores;")
	fmt.Println("correctness is identical because stale entries are re-checked against dist[].")
}
