package cpq_test

import (
	"fmt"
	"sort"
	"sync"

	"cpq"
)

// The basic usage pattern: one queue, one handle per goroutine.
func ExampleNewKLSM() {
	q := cpq.NewKLSM(256)
	h := q.Handle()
	h.Insert(42, 420)
	h.Insert(7, 70)
	key, value, ok := h.DeleteMin()
	fmt.Println(key, value, ok)
	// Output: 7 70 true
}

// Queues can be constructed from their benchmark identifiers.
func ExampleNew() {
	q, err := cpq.NewQueue("multiq", cpq.Options{Threads: 4})
	if err != nil {
		panic(err)
	}
	h := q.Handle()
	h.Insert(3, 30)
	key, _, _ := h.DeleteMin()
	fmt.Println(q.Name(), key)
	// Output: multiq 3
}

// Strict queues drain in exactly sorted order from a single handle.
func ExampleNewLinden() {
	q := cpq.NewLinden()
	h := q.Handle()
	for _, k := range []uint64{5, 1, 4, 2, 3} {
		h.Insert(k, 0)
	}
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		fmt.Print(k, " ")
	}
	// Output: 1 2 3 4 5
}

// Concurrent use: every goroutine takes its own handle; items are returned
// exactly once across all handles.
func ExampleNewMultiQueue() {
	const workers = 4
	q := cpq.NewMultiQueue(4, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle() // one handle per goroutine
			for i := 0; i < 100; i++ {
				h.Insert(uint64(w*100+i), 0)
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	var drained []uint64
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		drained = append(drained, k)
	}
	sort.Slice(drained, func(i, j int) bool { return drained[i] < drained[j] })
	fmt.Println(len(drained), drained[0], drained[len(drained)-1])
	// Output: 400 0 399
}
