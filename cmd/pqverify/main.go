// Command pqverify checks the relaxation claims of the queues against
// observed behaviour — the paper's "it is as important to characterize the
// deviation from strict priority queue behavior, also for verifying whether
// claimed relaxation bounds hold".
//
// For every queue it runs the rank-error benchmark and compares the
// observed rank distribution against the structure's advertised bound
// (quality.ClaimedBound):
//
//	klsm<k>     rank <= k·P           (lock-free k-LSM guarantee)
//	slsm<k>     rank <= k             (shared component alone)
//	spray       rank = O(P·log³P)     (checked against C·P·log³P, C=32)
//	linden, globallock, lotan, hunt, mound, cbpq — strict (rank 0)
//	multiq*, dlsm — no published bound (reported, not judged)
//
// The log-stamping used to reconstruct the linear history is pessimistic
// (see internal/quality): operations in flight at the same time may be
// ordered adversely, which inflates observed ranks by up to the number of
// concurrent operations. The tool therefore verifies against the claimed
// bound plus a concurrency slack of P (overridable with -slack), and flags
// a queue only when the violation rate beyond that exceeds the tolerance.
//
// With -chaos the tool instead runs every queue through the fault-injection
// stress harness (internal/chaos): seeded schedule perturbations and forced
// CAS/try-lock failures at the structures' failpoints, mid-run handle
// abandonment, and a forensic pass checking item conservation (nothing
// lost, nothing deleted twice), the emptiness oracle, the Flusher recovery
// contract and the relaxation bounds. A failure prints the seed; re-running
// with -seed <value> replays the same injected decision sequence.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpq"
	"cpq/internal/chaos"
	"cpq/internal/cli"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/workload"
)

func main() {
	var (
		queuesF   = flag.String("queues", "", "queues to verify (default: all registered)")
		threadsF  = flag.Int("threads", 4, "worker goroutines")
		ops       = flag.Int("ops", 30_000, "operations per thread")
		prefill   = flag.Int("prefill", 50_000, "prefill size")
		tolerance = flag.Float64("tolerance", 0.001, "accepted fraction of out-of-bound deletions (stamping pessimism)")
		slack     = flag.Int("slack", -1, "rank slack for in-flight concurrent ops (-1 = default)")
		seed      = flag.Uint64("seed", 0, "RNG seed (chaos: replays a failing run's injection)")
		chaosF    = flag.Bool("chaos", false, "run the fault-injection stress harness instead of the plain rank check")
		batch     = flag.Int("batch", 1, "operation batch width: route operations through InsertN/DeleteMinN (chaos interleaves batch and scalar calls; see DESIGN.md §4c)")
		poolF     = flag.Bool("pool", false, "route handles through the elastic pq.Pool lifecycle and judge bounds against the dynamic handle count (quality.EffectiveP); chaos mode recovers abandoned handles by stealing")
	)
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqverify:", err)
		os.Exit(2)
	}
	defer stopProf()

	names := cpq.Names()
	if *queuesF != "" {
		names = cli.ParseList(*queuesF)
	}
	cli.ValidateQueues("pqverify", names)
	cli.ValidateBatch("pqverify", *batch)

	if *chaosF {
		if runChaos(names, *threadsF, *ops, *seed, *slack, *tolerance, *batch, *poolF) {
			stopProf() // flush profiles: os.Exit skips deferred calls
			os.Exit(1)
		}
		return
	}

	failures := 0
	fmt.Printf("%-12s %-14s %10s %10s %12s  %s\n",
		"queue", "claimed bound", "max rank", "mean", "violations", "verdict")
	for _, name := range names {
		name := name
		res := quality.Run(quality.Config{
			NewQueue: func(p int) pq.Queue {
				q, err := cpq.NewQueue(name, cpq.Options{Threads: p})
				if err != nil {
					panic(err)
				}
				return q
			},
			Threads:      *threadsF,
			OpsPerThread: *ops,
			Workload:     workload.Uniform,
			KeyDist:      keys.Uniform32,
			Prefill:      *prefill,
			OpBatch:      *batch,
			Seed:         *seed,
			UsePool:      *poolF,
		})
		// The benchmark adds a prefill handle beyond the workers, so the
		// effective P for per-handle bounds (kP) is threads+1 — unless the
		// run went through the pool, in which case the pool's own
		// accounting (peak-live handles, created handles) sets the window
		// and the bound shrinks with the actual lifecycle.
		effP := *threadsF + 1
		if *poolF {
			effP = quality.EffectiveP(name, res.PoolPeakLive, res.PoolCreated)
		}
		bound, kind := quality.ClaimedBound(name, effP)
		if kind == quality.BoundNone {
			fmt.Printf("%-12s %-14s %10d %10.1f %12s  %s\n",
				name, "(none)", res.MaxRank, res.MeanRank, "-", "reported only")
			continue
		}
		sl := *slack
		if sl < 0 {
			sl = *threadsF
		}
		violations := quality.ViolationsAbove(res, bound+sl)
		frac := float64(violations) / float64(res.Deletions)
		verdict := "PASS"
		if frac > *tolerance {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("%-12s %-14d %10d %10.1f %9d (%.4f%%)  %s\n",
			name, bound, res.MaxRank, res.MeanRank, violations, 100*frac, verdict)
	}
	if failures > 0 {
		fmt.Printf("\n%d queue(s) exceeded their claimed bound beyond tolerance\n", failures)
		stopProf() // flush profiles: os.Exit skips deferred calls
		os.Exit(1)
	}
	fmt.Println("\nall claimed bounds hold (within stamping-pessimism tolerance)")
}

// runChaos stress-tests every named queue under fault injection and reports
// per-queue verdicts; it returns true if any invariant was violated.
func runChaos(names []string, threads, ops int, seed uint64, slack int, tolerance float64, batch int, pool bool) (failed bool) {
	fmt.Printf("chaos: threads=%d ops/thread=%d", threads, ops)
	if batch > 1 {
		fmt.Printf(" batch=%d", batch)
	}
	if pool {
		fmt.Printf(" pool")
	}
	if seed != 0 {
		fmt.Printf(" seed=%#x (replay)", seed)
	}
	fmt.Println()
	fmt.Printf("%-14s %-42s %s\n", "queue", "run", "verdict")
	for _, name := range names {
		name := name
		res := chaos.Check(chaos.CheckConfig{
			Name: name,
			NewQueue: func(p int) pq.Queue {
				q, err := cpq.NewQueue(name, cpq.Options{Threads: p})
				if err != nil {
					panic(err)
				}
				return q
			},
			Threads:      threads,
			OpsPerThread: ops,
			Seed:         seed,
			Slack:        slack,
			Tolerance:    tolerance,
			OpBatch:      batch,
			UsePool:      pool,
		})
		fmt.Println(res)
		if res.Failed() {
			failed = true
			batchArg := ""
			if batch > 1 {
				batchArg = fmt.Sprintf(" -batch %d", batch)
			}
			if pool {
				batchArg += " -pool"
			}
			fmt.Printf("    replay: pqverify -chaos -queues %s -threads %d -ops %d%s -seed %#x\n",
				name, threads, ops, batchArg, res.Seed)
		}
	}
	if failed {
		fmt.Println("\nchaos: invariant violations found (replay lines above)")
	} else {
		fmt.Println("\nchaos: all invariants held under fault injection")
	}
	return failed
}
