// Command pqverify checks the relaxation claims of the queues against
// observed behaviour — the paper's "it is as important to characterize the
// deviation from strict priority queue behavior, also for verifying whether
// claimed relaxation bounds hold".
//
// For every queue it runs the rank-error benchmark and compares the
// observed rank distribution against the structure's advertised bound:
//
//	klsm<k>     rank <= k·P           (lock-free k-LSM guarantee)
//	slsm<k>     rank <= k             (shared component alone)
//	spray       rank = O(P·log³P)     (checked against C·P·log³P, C=32)
//	linden, globallock, lotan, hunt, mound, cbpq — strict (rank 0)
//	multiq, dlsm — no published bound (reported, not judged)
//
// The log-stamping used to reconstruct the linear history is pessimistic
// (see internal/quality): operations in flight at the same time may be
// ordered adversely, which inflates observed ranks by up to the number of
// concurrent operations. The tool therefore verifies against the claimed
// bound plus a concurrency slack of P (overridable with -slack), and flags
// a queue only when the violation rate beyond that exceeds the tolerance.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/workload"
)

func main() {
	var (
		queuesF   = flag.String("queues", "", "queues to verify (default: all registered)")
		threadsF  = flag.Int("threads", 4, "worker goroutines")
		ops       = flag.Int("ops", 30_000, "operations per thread")
		prefill   = flag.Int("prefill", 50_000, "prefill size")
		tolerance = flag.Float64("tolerance", 0.001, "accepted fraction of out-of-bound deletions (stamping pessimism)")
		slack     = flag.Int("slack", -1, "rank slack for in-flight concurrent ops (-1 = threads)")
		seed      = flag.Uint64("seed", 0, "RNG seed")
	)
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqverify:", err)
		os.Exit(2)
	}
	defer stopProf()

	names := cpq.Names()
	if *queuesF != "" {
		names = strings.Split(*queuesF, ",")
	}
	failures := 0
	fmt.Printf("%-12s %-14s %10s %10s %12s  %s\n",
		"queue", "claimed bound", "max rank", "mean", "violations", "verdict")
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if _, err := cpq.New(name, 1); err != nil {
			fmt.Fprintln(os.Stderr, "pqverify:", err)
			os.Exit(2)
		}
		res := quality.Run(quality.Config{
			NewQueue: func(p int) pq.Queue {
				q, err := cpq.New(name, p)
				if err != nil {
					panic(err)
				}
				return q
			},
			Threads:      *threadsF,
			OpsPerThread: *ops,
			Workload:     workload.Uniform,
			KeyDist:      keys.Uniform32,
			Prefill:      *prefill,
			Seed:         *seed,
		})
		bound, kind := claimedBound(name, *threadsF)
		if kind == "none" {
			fmt.Printf("%-12s %-14s %10d %10.1f %12s  %s\n",
				name, "(none)", res.MaxRank, res.MeanRank, "-", "reported only")
			continue
		}
		sl := *slack
		if sl < 0 {
			sl = *threadsF
		}
		violations := violationsAbove(res, bound+sl)
		frac := float64(violations) / float64(res.Deletions)
		verdict := "PASS"
		if frac > *tolerance {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("%-12s %-14d %10d %10.1f %9d (%.4f%%)  %s\n",
			name, bound, res.MaxRank, res.MeanRank, violations, 100*frac, verdict)
	}
	if failures > 0 {
		fmt.Printf("\n%d queue(s) exceeded their claimed bound beyond tolerance\n", failures)
		stopProf() // flush profiles: os.Exit skips deferred calls
		os.Exit(1)
	}
	fmt.Println("\nall claimed bounds hold (within stamping-pessimism tolerance)")
}

// claimedBound returns the advertised rank bound for a queue at P threads
// and its kind: "bounded", "strict" or "none".
func claimedBound(name string, p int) (int, string) {
	n := strings.ToLower(name)
	switch {
	case strings.HasPrefix(n, "klsm"):
		k, _ := strconv.Atoi(n[4:])
		// The benchmark adds handles beyond the workers (prefill handle),
		// so the effective P for the kP guarantee is threads+1.
		return k * (p + 1), "bounded"
	case strings.HasPrefix(n, "slsm"):
		k, _ := strconv.Atoi(n[4:])
		return k, "bounded"
	case n == "spray":
		lg := math.Log2(float64(p) + 1)
		return int(32 * float64(p) * lg * lg * lg), "bounded"
	case n == "multiq" || n == "dlsm":
		return 0, "none"
	default:
		return 0, "strict"
	}
}

// violationsAbove counts replayed deletions whose rank exceeded bound,
// using the histogram's power-of-two buckets (conservative: a bucket
// straddling the bound counts fully only above it via exact max check).
func violationsAbove(res quality.Result, bound int) uint64 {
	if res.MaxRank <= bound {
		return 0
	}
	var v uint64
	for b, c := range res.Histogram {
		if c == 0 {
			continue
		}
		lo := 0
		if b == 1 {
			lo = 1
		} else if b > 1 {
			lo = 1 << (b - 1)
		}
		if lo > bound {
			v += c
		}
	}
	return v
}
