// Command pqload is the load generator for pqd: it drives N client
// connections of pipelined, batched requests against a server and
// reports throughput in MOps/s with a 95% CI, in the same JSON grid
// format as pqgrid (BENCH_8.json) so `pqtrend` can diff socket-path
// numbers against in-process ones. Socket cells are named "net:<spec>"
// to keep the two regimes distinct in a diff.
//
// With -addr pqload measures a running server; with the default empty
// -addr it self-hosts an in-process loopback server, which is the
// one-command configuration used by `make pqd-smoke` and the overhead
// table in EXPERIMENTS.md. Each repetition opens a fresh queue instance
// ("spec#repN") on the same server, so reps never inherit a predecessor's
// leftover items and the server needs no restart between cells.
//
// The measured loop mirrors the in-process harness (fig-4a cell):
// prefill through the socket, then each connection alternates batched
// inserts and deletes per its workload policy, keeping -pipeline
// requests in flight. Ops accounting follows the harness convention —
// a batch of n counts as n ops, and a short DeleteMinN tail counts as
// n ops of which the missing items were empty deletes — so socket
// MOps/s is comparable to in-process MOps/s at the same batch width.
//
//	pqload                        # self-host, fig-4a cell -> BENCH_8.json
//	pqload -addr host:9410 -queues klsm4096 -conns 8 -batch 8
//	pqload -smoke                 # tiny budget, stdout only (make pqd-smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/keys"
	"cpq/internal/netpq"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/stats"
	"cpq/internal/workload"
)

// cellResult is one socket cell, schema-compatible with pqgrid's grid
// cells (pqtrend matches on queue + batch_width). The extra fields are
// ignored by trend.Load on older baselines.
type cellResult struct {
	Queue       string  `json:"queue"` // "net:<spec>"
	BatchWidth  int     `json:"batch_width"`
	MOpsMean    float64 `json:"mops_mean"`
	MOpsCI95    float64 `json:"mops_ci95"`
	AllocsPerOp float64 `json:"allocs_per_op"` // whole-process mallocs / op (client+server when self-hosted)
	Ops         uint64  `json:"ops"`
	Conns       int     `json:"conns"`
	Pipeline    int     `json:"pipeline"`
	RTTp50us    float64 `json:"rtt_p50_us"` // sampled request latency through the pipeline
	RTTp99us    float64 `json:"rtt_p99_us"`
}

// report is the emitted JSON document (pqgrid's envelope plus the
// socket-specific knobs).
type report struct {
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Figure     string       `json:"figure"`
	Mode       string       `json:"mode"` // "loopback" (self-hosted) or "remote"
	Addr       string       `json:"addr,omitempty"`
	Threads    int          `json:"threads"` // = conns, the socket analogue of worker threads
	Pipeline   int          `json:"pipeline"`
	Workload   string       `json:"workload"`
	KeyDist    string       `json:"key_dist"`
	Prefill    int          `json:"prefill"`
	Duration   string       `json:"duration"`
	Reps       int          `json:"reps"`
	Generated  string       `json:"generated"`
	Cells      []cellResult `json:"cells"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "pqd server address (empty = self-host an in-process loopback server)")
		queuesF    = flag.String("queues", "multiq-s4-b8,klsm4096", "queue specs to measure (fig-4a cell queues)")
		conns      = flag.Int("conns", 8, "client connections (the socket analogue of worker threads)")
		batch      = flag.Int("batch", 8, "ops per request frame (InsertN/DeleteMinN width)")
		pipeline   = flag.Int("pipeline", 32, "requests kept in flight per connection (half the window is drained per refill, so depth amortizes write syscalls)")
		duration   = flag.Duration("duration", time.Second, "measurement duration per rep")
		reps       = flag.Int("reps", 3, "repetitions per cell (interleaved across queues)")
		prefill    = flag.Int("prefill", 100_000, "items inserted through the socket before measuring")
		workloadF  = flag.String("workload", "uniform", "operation mix: uniform, split, alternating")
		keysF      = flag.String("keys", "uniform", "key distribution: uniform32/16/8, ascending, descending, holdasc, holddesc")
		insertFrac = flag.Float64("insert-frac", 0.5, "insert probability for the uniform workload")
		seed       = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		out        = flag.String("out", "BENCH_8.json", "output file (empty = stdout)")
		smoke      = flag.Bool("smoke", false, "CI smoke: tiny budget, one rep, stdout only, nonzero-ops gate")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured loops")
	)
	flag.Parse()

	if *smoke {
		*duration, *reps, *prefill, *conns, *out = 300*time.Millisecond, 1, 2000, 4, ""
		*queuesF = "multiq-s4-b8"
	}
	queueSpecs := cli.ExpandQueues(cli.ParseList(*queuesF))
	cli.ValidateQueues("pqload", queueSpecs)
	cli.ValidateBatch("pqload", *batch)
	if *batch > netpq.MaxBatch {
		fmt.Fprintf(os.Stderr, "pqload: batch %d above protocol max %d\n", *batch, netpq.MaxBatch)
		os.Exit(1)
	}
	if *conns < 1 || *pipeline < 1 {
		fmt.Fprintln(os.Stderr, "pqload: -conns and -pipeline must be >= 1")
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	wkind, err := workload.Parse(*workloadF)
	exitOn(err)
	kdist, err := keys.Parse(*keysF)
	exitOn(err)

	mode, target := "remote", *addr
	if *addr == "" {
		mode = "loopback"
		srv, ln := selfHost()
		defer srv.Close()
		target = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "pqload: self-hosted pqd on %s\n", target)
	}

	mops := map[string][]float64{}
	allocs := map[string][]float64{}
	ops := map[string]uint64{}
	var rtts = map[string][]float64{} // sampled request latencies, µs

	for rep := 0; rep < *reps; rep++ {
		for _, spec := range queueSpecs {
			// A fresh instance per (spec, rep): reps must not inherit the
			// previous rep's surviving items.
			queueID := fmt.Sprintf("%s#rep%d", spec, rep)
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			res := runCell(cellConfig{
				addr: target, queueID: queueID,
				conns: *conns, batch: *batch, pipeline: *pipeline,
				duration: *duration, prefill: *prefill,
				workload: wkind, keyDist: kdist, insertFrac: *insertFrac,
				seed: *seed + uint64(rep),
			})
			runtime.ReadMemStats(&m1)
			mops[spec] = append(mops[spec], res.mops)
			if res.ops > 0 {
				allocs[spec] = append(allocs[spec], float64(m1.Mallocs-m0.Mallocs)/float64(res.ops))
			}
			ops[spec] += res.ops
			rtts[spec] = append(rtts[spec], res.rttUS...)
			fmt.Fprintf(os.Stderr, "pqload: rep %d/%d net:%s conns=%d batch=%d: %.3f MOps/s\n",
				rep+1, *reps, spec, *conns, *batch, res.mops)
		}
	}

	doc := report{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Figure:     "4a",
		Mode:       mode,
		Threads:    *conns,
		Pipeline:   *pipeline,
		Workload:   wkind.String(),
		KeyDist:    kdist.String(),
		Prefill:    *prefill,
		Duration:   duration.String(),
		Reps:       *reps,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	if mode == "remote" {
		doc.Addr = target
	}
	var total uint64
	for _, spec := range queueSpecs {
		s := stats.Summarize(mops[spec])
		var a float64
		if as := allocs[spec]; len(as) > 0 {
			a = stats.Mean(as)
		}
		p50, p99 := percentiles(rtts[spec])
		doc.Cells = append(doc.Cells, cellResult{
			Queue: "net:" + spec, BatchWidth: *batch,
			MOpsMean: round3(s.Mean), MOpsCI95: round3(s.CI95),
			AllocsPerOp: round3(a), Ops: ops[spec],
			Conns: *conns, Pipeline: *pipeline,
			RTTp50us: round3(p50), RTTp99us: round3(p99),
		})
		total += ops[spec]
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	exitOn(err)
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		exitOn(os.WriteFile(*out, buf, 0o644))
		fmt.Fprintf(os.Stderr, "pqload: wrote %s\n", *out)
	}

	// Smoke gate: the whole point of `make pqd-smoke` is that a built
	// server, a built client and a real socket moved a nonzero number of
	// operations end to end.
	if *smoke && total == 0 {
		fmt.Fprintln(os.Stderr, "pqload: smoke moved zero ops")
		os.Exit(1)
	}
}

// selfHost starts an in-process pqd server on an ephemeral loopback port.
func selfHost() (*netpq.Server, net.Listener) {
	srv, err := netpq.NewServer(netpq.Options{
		NewQueue: func(spec, _ string, handles int) (pq.Queue, error) {
			return cpq.NewQueue(spec, cpq.Options{Threads: handles})
		},
	})
	exitOn(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	exitOn(err)
	go srv.Serve(ln)
	return srv, ln
}

// cellConfig is one (queue instance, rep) measurement.
type cellConfig struct {
	addr, queueID          string
	conns, batch, pipeline int
	duration               time.Duration
	prefill                int
	workload               workload.Kind
	keyDist                keys.Distribution
	insertFrac             float64
	seed                   uint64
}

type cellResultRaw struct {
	ops   uint64
	mops  float64
	rttUS []float64
}

// runCell prefills the queue instance through one connection, then runs
// conns workers of pipelined batched requests for the configured
// duration and returns completed ops and sampled request latencies.
func runCell(cfg cellConfig) cellResultRaw {
	// Prefill through the socket: the servers sees exactly what a real
	// client population would have inserted.
	pc, err := netpq.Dial(cfg.addr, cfg.queueID)
	exitOn(err)
	pg := keys.NewGenerator(cfg.keyDist, rng.New(cfg.seed^0x9e3779b97f4a7c15))
	kvs := make([]pq.KV, 0, netpq.MaxBatch)
	for left := cfg.prefill; left > 0; {
		n := netpq.MaxBatch
		if n > left {
			n = left
		}
		kvs = kvs[:0]
		for i := 0; i < n; i++ {
			kvs = append(kvs, pq.KV{Key: pg.Next(), Value: uint64(i)})
		}
		exitOn(pc.InsertN(kvs))
		left -= n
	}
	pc.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		totalOps uint64
		rttUS    []float64
	)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops, lats := runWorker(cfg, w, deadline)
			mu.Lock()
			totalOps += ops
			rttUS = append(rttUS, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return cellResultRaw{
		ops:   totalOps,
		mops:  float64(totalOps) / 1e6 / elapsed.Seconds(),
		rttUS: rttUS,
	}
}

// runWorker is one connection's measured loop: choose an op per batch
// from the workload policy, keep cfg.pipeline request frames in flight,
// count each completed frame as batch ops (harness accounting). Request
// latency is sampled every rttSampleEvery completions, timed from the
// frame's enqueue to its (FIFO-ordered) response.
func runWorker(cfg cellConfig, w int, deadline time.Time) (ops uint64, rttUS []float64) {
	const rttSampleEvery = 64

	c, err := netpq.Dial(cfg.addr, cfg.queueID)
	exitOn(err)
	defer c.Close()

	r := rng.New(cfg.seed + uint64(w)*0x6a09e667f3bcc909)
	policy := workload.ForWorker(cfg.workload, w, cfg.conns, cfg.insertFrac, r)
	gen := keys.NewGenerator(cfg.keyDist, r)
	kvs := make([]pq.KV, cfg.batch)

	// sendTimes is a FIFO ring of request enqueue times, pipeline deep;
	// responses are strictly FIFO so head-of-ring matches the next Recv.
	sendTimes := make([]time.Time, cfg.pipeline)
	head, tail, inFlight := 0, 0, 0
	sent, done := 0, 0

	issue := func() bool {
		var err error
		if policy.Next() == workload.Insert {
			for i := range kvs {
				kvs[i] = pq.KV{Key: gen.Next(), Value: uint64(w)<<48 | uint64(sent)}
			}
			_, err = c.StartInsertN(kvs)
		} else {
			_, err = c.StartDeleteMinN(cfg.batch)
		}
		exitOn(err)
		sendTimes[tail] = time.Now()
		tail = (tail + 1) % cfg.pipeline
		sent++
		inFlight++
		return true
	}
	recvOne := func() {
		resp, err := c.Recv()
		exitOn(err)
		if resp.Err != nil {
			exitOn(fmt.Errorf("net:%s: %w", cfg.queueID, resp.Err))
		}
		t0 := sendTimes[head]
		head = (head + 1) % cfg.pipeline
		inFlight--
		done++
		if done%rttSampleEvery == 0 {
			rttUS = append(rttUS, float64(time.Since(t0).Microseconds()))
		}
		// Harness accounting: each frame is batch ops; a short delete
		// response still counts as batch ops (the tail were empty deletes).
		ops += uint64(cfg.batch)
		if len(resp.KVs) > 0 {
			gen.Observe(resp.KVs[len(resp.KVs)-1].Key)
		}
	}

	// Issue a full window, then drain half of it before refilling: the
	// client's buffered writer then flushes pipeline/2 request frames per
	// syscall instead of one (a drain-one/issue-one loop would flush a
	// single frame on every Recv), and the server's bursts coalesce the
	// same way on the response side.
	low := cfg.pipeline / 2
	for time.Now().Before(deadline) {
		for inFlight < cfg.pipeline {
			issue()
		}
		for inFlight > low {
			recvOne()
		}
	}
	for inFlight > 0 {
		recvOne()
	}
	return ops, rttUS
}

// percentiles returns the p50 and p99 of xs in place-sorted order; zeros
// when no samples were taken (very short runs).
func percentiles(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	at := func(q float64) float64 {
		i := int(q * float64(len(xs)-1))
		return xs[i]
	}
	return at(0.50), at(0.99)
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqload:", err)
		os.Exit(1)
	}
}
