// Command pqtrend diffs two BENCH_*.json reports from cmd/pqgrid and
// flags per-cell throughput regressions: a cell regresses when its MOps/s
// confidence interval in the newer report lies entirely below the older
// report's (CI95 overlap test, internal/trend). Regressions exit nonzero,
// so the command gates CI the way the in-run width-8 assertion gates a
// single grid.
//
//	pqtrend                          # diff the two newest BENCH_*.json here
//	pqtrend BENCH_6.json BENCH_7.json
//	pqtrend -dir results/            # series discovery in another directory
//
// Cells present on only one side (new queues, retired widths) are listed
// but never fail the diff. Comparisons where either side was a single-rep
// run (CI95 = 0) are marked with '!': the verdict is then raw ordering,
// not statistics, and does not fail the diff either.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpq/internal/trend"
)

func main() {
	var (
		dir   = flag.String("dir", ".", "directory searched for the BENCH_*.json series when no files are given")
		quiet = flag.Bool("q", false, "print only regressions (and nothing on a clean diff)")
	)
	flag.Parse()

	var basePath, headPath string
	switch flag.NArg() {
	case 0:
		series, err := trend.Series(*dir)
		exitOn(err)
		if len(series) < 2 {
			exitOn(fmt.Errorf("need two BENCH_*.json reports in %s to diff, found %d", *dir, len(series)))
		}
		basePath, headPath = series[len(series)-2], series[len(series)-1]
	case 2:
		basePath, headPath = flag.Arg(0), flag.Arg(1)
	default:
		exitOn(fmt.Errorf("usage: pqtrend [BASE.json HEAD.json]"))
	}

	base, err := trend.Load(basePath)
	exitOn(err)
	head, err := trend.Load(headPath)
	exitOn(err)

	deltas, onlyBase, onlyHead := trend.Diff(base, head)
	if !*quiet {
		fmt.Printf("# base %s (%s reps=%d)  head %s (%s reps=%d)\n",
			basePath, base.GitSHA, base.Reps, headPath, head.GitSHA, head.Reps)
	}
	var regressions int
	for _, d := range deltas {
		// A zero-CI side means a single-rep run: raw ordering, not
		// statistics. Show it, flag it, never fail on it.
		mark := " "
		if d.ZeroCI {
			mark = "!"
		} else if d.Verdict == trend.Regression {
			regressions++
		}
		if *quiet && (d.Verdict != trend.Regression || d.ZeroCI) {
			continue
		}
		fmt.Printf("%s %s\n", mark, d)
	}
	if !*quiet {
		for _, s := range onlyBase {
			fmt.Printf("- only in base: %s\n", s)
		}
		for _, s := range onlyHead {
			fmt.Printf("+ only in head: %s\n", s)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "pqtrend: %d cell(s) regressed beyond CI95\n", regressions)
		os.Exit(1)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqtrend:", err)
		os.Exit(1)
	}
}
