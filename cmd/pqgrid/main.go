// Command pqgrid runs the batch-width comparison grid of DESIGN.md §4c and
// emits one JSON document (BENCH_6.json in the repo root) recording, per
// (queue, batch-width) cell, throughput in MOps/s with a 95% CI and
// whole-run allocations per operation. The grid is the paper's fig-4a cell
// (uniform workload, uniform 32-bit keys) at a fixed thread count, crossed
// with the scalar path (width 1) and the batch path (width N).
//
// Repetitions are interleaved across widths — rep 1 of every cell runs
// before rep 2 of any cell — so a width-8-vs-width-1 speedup compares runs
// from the same commit under the same machine conditions, not two
// back-to-back blocks.
//
//	pqgrid                      # full grid -> BENCH_6.json
//	pqgrid -smoke               # tiny budget, stdout only (used by `make check`)
//	pqgrid -widths 1,4,8,16 -queues linden,multiq
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/stats"
	"cpq/internal/workload"
)

// cellResult is one (queue, width) cell of the emitted grid.
type cellResult struct {
	Queue       string  `json:"queue"`
	BatchWidth  int     `json:"batch_width"`
	MOpsMean    float64 `json:"mops_mean"`
	MOpsCI95    float64 `json:"mops_ci95"`
	AllocsPerOp float64 `json:"allocs_per_op"` // whole-run mallocs (incl. prefill) / completed ops
	Ops         uint64  `json:"ops"`           // completed ops summed over reps
}

// report is the emitted JSON document.
type report struct {
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Figure     string       `json:"figure"` // benchmark cell, fig-4a configuration
	Threads    int          `json:"threads"`
	Prefill    int          `json:"prefill"`
	Duration   string       `json:"duration"`
	Reps       int          `json:"reps"`
	Generated  string       `json:"generated"` // RFC 3339
	Cells      []cellResult `json:"cells"`
	// Speedup maps queue -> width -> mops(width)/mops(1) for quick reading;
	// only present when width 1 is part of the grid.
	Speedup map[string]map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	var (
		queuesF  = flag.String("queues", "globallock,multiq,multiq-s4-b8,klsm4096,linden", "queues to grid")
		widthsF  = flag.String("widths", "1,8", "batch widths to cross with the queue list (1 = scalar path)")
		threadsF = flag.Int("threads", 8, "worker goroutines (fig-4a t8 column)")
		duration = flag.Duration("duration", time.Second, "measurement duration per rep")
		reps     = flag.Int("reps", 3, "repetitions per cell (interleaved across widths)")
		prefill  = flag.Int("prefill", 100_000, "prefill size (default matches bench_test.go's fig-4a cells; paper scale: 1000000)")
		seed     = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		out      = flag.String("out", "BENCH_6.json", "output file (empty = stdout)")
		smoke    = flag.Bool("smoke", false, "CI smoke: tiny budget, one rep, stdout only")
	)
	flag.Parse()

	if *smoke {
		*duration, *reps, *prefill, *out = 30*time.Millisecond, 1, 2000, ""
	}
	queueNames := cli.ExpandQueues(cli.ParseList(*queuesF))
	cli.ValidateQueues("pqgrid", queueNames)
	widths, err := cli.ParseThreads(*widthsF) // same "positive int list" grammar
	exitOn(err)
	for _, w := range widths {
		cli.ValidateBatch("pqgrid", w)
	}

	type cellKey struct {
		queue string
		width int
	}
	mops := map[cellKey][]float64{}
	allocs := map[cellKey][]float64{}
	ops := map[cellKey]uint64{}

	// Interleave: complete one rep of EVERY cell before starting the next
	// rep, so cross-width comparisons are same-conditions.
	for rep := 0; rep < *reps; rep++ {
		for _, name := range queueNames {
			for _, w := range widths {
				name, w := name, w
				cfg := harness.Config{
					NewQueue: func(t int) pq.Queue {
						q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
						exitOn(err)
						return q
					},
					Threads:  *threadsF,
					Duration: *duration,
					Workload: workload.Uniform,
					KeyDist:  keys.Uniform32,
					Prefill:  *prefill,
					OpBatch:  w,
					Seed:     *seed + uint64(rep), // fresh streams per rep, same across cells
				}
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				res := harness.Run(cfg)
				runtime.ReadMemStats(&m1)
				k := cellKey{name, w}
				mops[k] = append(mops[k], res.MOps())
				if res.Ops > 0 {
					allocs[k] = append(allocs[k], float64(m1.Mallocs-m0.Mallocs)/float64(res.Ops))
				}
				ops[k] += res.Ops
				fmt.Fprintf(os.Stderr, "pqgrid: rep %d/%d %s width=%d: %.3f MOps/s\n",
					rep+1, *reps, name, w, res.MOps())
			}
		}
	}

	rep := report{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Figure:     "4a",
		Threads:    *threadsF,
		Prefill:    *prefill,
		Duration:   duration.String(),
		Reps:       *reps,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	base := map[string]float64{} // queue -> width-1 mean
	for _, name := range queueNames {
		for _, w := range widths {
			k := cellKey{name, w}
			s := stats.Summarize(mops[k])
			var a float64
			if as := allocs[k]; len(as) > 0 {
				a = stats.Mean(as)
			}
			rep.Cells = append(rep.Cells, cellResult{
				Queue: name, BatchWidth: w,
				MOpsMean: round3(s.Mean), MOpsCI95: round3(s.CI95),
				AllocsPerOp: round3(a), Ops: ops[k],
			})
			if w == 1 {
				base[name] = s.Mean
			}
		}
	}
	if len(base) > 0 {
		rep.Speedup = map[string]map[string]float64{}
		for _, c := range rep.Cells {
			if c.BatchWidth == 1 || base[c.Queue] <= 0 {
				continue
			}
			if rep.Speedup[c.Queue] == nil {
				rep.Speedup[c.Queue] = map[string]float64{}
			}
			rep.Speedup[c.Queue][fmt.Sprintf("w%d", c.BatchWidth)] =
				round3(c.MOpsMean / base[c.Queue])
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	exitOn(err)
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	exitOn(os.WriteFile(*out, buf, 0o644))
	fmt.Fprintf(os.Stderr, "pqgrid: wrote %s\n", *out)
}

// gitSHA best-effort resolves the working tree's commit; "unknown" outside
// a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqgrid:", err)
		os.Exit(1)
	}
}
