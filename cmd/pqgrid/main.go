// Command pqgrid runs the batch-width comparison grid of DESIGN.md §4c and
// emits one JSON document (BENCH_7.json in the repo root) recording, per
// (queue, batch-width) cell, throughput in MOps/s with a 95% CI and
// whole-run allocations per operation. The grid is the paper's fig-4a cell
// (uniform workload, uniform 32-bit keys) at a fixed thread count, crossed
// with the scalar path (width 1) and the batch path (width N).
//
// Repetitions are interleaved across widths — rep 1 of every cell runs
// before rep 2 of any cell — so a width-8-vs-width-1 speedup compares runs
// from the same commit under the same machine conditions, not two
// back-to-back blocks.
//
// Alongside the grid, the goroutine-churn cells (harness.RunChurn) measure
// the handle-lifecycle benchmark next to the fixed-handle numbers: M
// short-lived goroutines, M >> GOMAXPROCS, each doing a small op burst
// through the elastic pq.Pool versus the naive mutex-guarded baseline.
// The emitted churn section carries pool statistics (handles created,
// steals) and the ratio against the same queue's fixed-handle width-1
// cell. Disable with -churn=false.
//
// With reps >= 2 the grid asserts that no queue's width-8 cell is slower
// than its width-1 cell beyond the CI95 overlap — the batch path must not
// regress the scalar one — and exits nonzero on a violation.
//
//	pqgrid                      # full grid + churn -> BENCH_7.json
//	pqgrid -smoke               # tiny budget, stdout only (used by `make check`)
//	pqgrid -widths 1,4,8,16 -queues linden,multiq
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/stats"
	"cpq/internal/workload"
)

// cellResult is one (queue, width) cell of the emitted grid.
type cellResult struct {
	Queue       string  `json:"queue"`
	BatchWidth  int     `json:"batch_width"`
	MOpsMean    float64 `json:"mops_mean"`
	MOpsCI95    float64 `json:"mops_ci95"`
	AllocsPerOp float64 `json:"allocs_per_op"` // whole-run mallocs (incl. prefill) / completed ops
	Ops         uint64  `json:"ops"`           // completed ops summed over reps
}

// churnCell is one (queue, lifecycle) cell of the goroutine-churn section.
type churnCell struct {
	Queue        string  `json:"queue"`
	Lifecycle    string  `json:"lifecycle"` // "pool" or "naive"
	Goroutines   int     `json:"goroutines"`
	BurstOps     int     `json:"burst_ops"`
	AbandonEvery int     `json:"abandon_every"`
	MOpsMean     float64 `json:"mops_mean"`
	MOpsCI95     float64 `json:"mops_ci95"`
	// HandlesCreated, PeakLive and Steals come from the last repetition
	// (they are deterministic given the config, modulo collector timing).
	HandlesCreated int    `json:"handles_created"`
	PeakLive       int    `json:"peak_live"`
	Steals         uint64 `json:"steals"`
	// VsFixedW1 is this cell's MOps/s over the same queue's fixed-handle
	// width-1 grid cell (the paper-model baseline); 0 when that cell is
	// not part of the grid.
	VsFixedW1 float64 `json:"vs_fixed_w1,omitempty"`
}

// report is the emitted JSON document.
type report struct {
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Figure     string       `json:"figure"` // benchmark cell, fig-4a configuration
	Threads    int          `json:"threads"`
	Prefill    int          `json:"prefill"`
	Duration   string       `json:"duration"`
	Reps       int          `json:"reps"`
	Generated  string       `json:"generated"` // RFC 3339
	Cells      []cellResult `json:"cells"`
	// Speedup maps queue -> width -> mops(width)/mops(1) for quick reading;
	// only present when width 1 is part of the grid.
	Speedup map[string]map[string]float64 `json:"speedup,omitempty"`
	// Churn is the goroutine-churn section (pool vs naive lifecycle);
	// absent with -churn=false.
	Churn []churnCell `json:"churn,omitempty"`
}

func main() {
	var (
		queuesF  = flag.String("queues", "globallock,multiq,multiq-s4-b8,klsm4096,linden", "queues to grid")
		widthsF  = flag.String("widths", "1,8", "batch widths to cross with the queue list (1 = scalar path)")
		threadsF = flag.Int("threads", 8, "worker goroutines (fig-4a t8 column)")
		duration = flag.Duration("duration", time.Second, "measurement duration per rep")
		reps     = flag.Int("reps", 3, "repetitions per cell (interleaved across widths)")
		prefill  = flag.Int("prefill", 100_000, "prefill size (default matches bench_test.go's fig-4a cells; paper scale: 1000000)")
		seed     = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		out      = flag.String("out", "BENCH_7.json", "output file (empty = stdout)")
		smoke    = flag.Bool("smoke", false, "CI smoke: tiny budget, one rep, stdout only")

		churnF       = flag.Bool("churn", true, "run the goroutine-churn cells (pool vs naive handle lifecycle)")
		churnQueuesF = flag.String("churn-queues", "klsm4096,multiq", "queues for the churn cells")
		churnGoros   = flag.Int("churn-goroutines", 100_000, "short-lived goroutines per churn cell")
		churnBurst   = flag.Int("churn-burst", 64, "ops per short-lived goroutine")
		churnAbandon = flag.Int("churn-abandon", 64, "every Nth goroutine abandons its handle (0 = never); the pool steals these back, the naive baseline leaks them")
		churnCap     = flag.Int("churn-cap", 0, "pool handle cap for the churn cells (0 = threads+64; headroom amortizes one collector cycle over many abandonments)")
	)
	flag.Parse()

	if *smoke {
		*duration, *reps, *prefill, *out = 30*time.Millisecond, 1, 2000, ""
		*churnGoros = 400
	}
	queueNames := cli.ExpandQueues(cli.ParseList(*queuesF))
	cli.ValidateQueues("pqgrid", queueNames)
	widths, err := cli.ParseThreads(*widthsF) // same "positive int list" grammar
	exitOn(err)
	for _, w := range widths {
		cli.ValidateBatch("pqgrid", w)
	}

	type cellKey struct {
		queue string
		width int
	}
	mops := map[cellKey][]float64{}
	allocs := map[cellKey][]float64{}
	ops := map[cellKey]uint64{}

	// Interleave: complete one rep of EVERY cell before starting the next
	// rep, so cross-width comparisons are same-conditions.
	for rep := 0; rep < *reps; rep++ {
		for _, name := range queueNames {
			for _, w := range widths {
				name, w := name, w
				cfg := harness.Config{
					NewQueue: func(t int) pq.Queue {
						q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
						exitOn(err)
						return q
					},
					Threads:  *threadsF,
					Duration: *duration,
					Workload: workload.Uniform,
					KeyDist:  keys.Uniform32,
					Prefill:  *prefill,
					OpBatch:  w,
					Seed:     *seed + uint64(rep), // fresh streams per rep, same across cells
				}
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				res := harness.Run(cfg)
				runtime.ReadMemStats(&m1)
				k := cellKey{name, w}
				mops[k] = append(mops[k], res.MOps())
				if res.Ops > 0 {
					allocs[k] = append(allocs[k], float64(m1.Mallocs-m0.Mallocs)/float64(res.Ops))
				}
				ops[k] += res.Ops
				fmt.Fprintf(os.Stderr, "pqgrid: rep %d/%d %s width=%d: %.3f MOps/s\n",
					rep+1, *reps, name, w, res.MOps())
			}
		}
	}

	rep := report{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Figure:     "4a",
		Threads:    *threadsF,
		Prefill:    *prefill,
		Duration:   duration.String(),
		Reps:       *reps,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	base := map[string]float64{} // queue -> width-1 mean
	for _, name := range queueNames {
		for _, w := range widths {
			k := cellKey{name, w}
			s := stats.Summarize(mops[k])
			var a float64
			if as := allocs[k]; len(as) > 0 {
				a = stats.Mean(as)
			}
			rep.Cells = append(rep.Cells, cellResult{
				Queue: name, BatchWidth: w,
				MOpsMean: round3(s.Mean), MOpsCI95: round3(s.CI95),
				AllocsPerOp: round3(a), Ops: ops[k],
			})
			if w == 1 {
				base[name] = s.Mean
			}
		}
	}
	if len(base) > 0 {
		rep.Speedup = map[string]map[string]float64{}
		for _, c := range rep.Cells {
			if c.BatchWidth == 1 || base[c.Queue] <= 0 {
				continue
			}
			if rep.Speedup[c.Queue] == nil {
				rep.Speedup[c.Queue] = map[string]float64{}
			}
			rep.Speedup[c.Queue][fmt.Sprintf("w%d", c.BatchWidth)] =
				round3(c.MOpsMean / base[c.Queue])
		}
	}

	if *churnF {
		rep.Churn = runChurnCells(churnParams{
			queues:     cli.ExpandQueues(cli.ParseList(*churnQueuesF)),
			goroutines: *churnGoros,
			burst:      *churnBurst,
			abandon:    *churnAbandon,
			capHandles: *churnCap,
			slots:      *threadsF,
			prefill:    *prefill,
			reps:       *reps,
			seed:       *seed,
		}, base)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	exitOn(err)
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		exitOn(os.WriteFile(*out, buf, 0o644))
		fmt.Fprintf(os.Stderr, "pqgrid: wrote %s\n", *out)
	}

	// Batch-path regression gate (DESIGN.md §4c): with real CIs available,
	// a width-8 cell whose interval lies entirely below the same queue's
	// width-1 interval is a regression of the batch path against the scalar
	// one. The report above is written regardless, so the failing artifact
	// survives for diagnosis. Single-rep runs (like -smoke) have CI95 = 0
	// and would flag ordinary noise, so the gate needs reps >= 2.
	if *reps >= 2 {
		w1 := map[string]cellResult{}
		for _, c := range rep.Cells {
			if c.BatchWidth == 1 {
				w1[c.Queue] = c
			}
		}
		failed := false
		for _, c := range rep.Cells {
			b, ok := w1[c.Queue]
			if !ok || c.BatchWidth != 8 {
				continue
			}
			if c.MOpsMean+c.MOpsCI95 < b.MOpsMean-b.MOpsCI95 {
				failed = true
				fmt.Fprintf(os.Stderr,
					"pqgrid: REGRESSION %s width-8 %.3f±%.3f MOps/s below width-1 %.3f±%.3f beyond CI95\n",
					c.Queue, c.MOpsMean, c.MOpsCI95, b.MOpsMean, b.MOpsCI95)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// churnParams collects the churn section's knobs.
type churnParams struct {
	queues              []string
	goroutines, burst   int
	abandon, capHandles int
	slots               int
	prefill, reps       int
	seed                uint64
}

// runChurnCells runs the goroutine-churn cells: every (queue, lifecycle)
// pair, reps times, interleaved like the grid. base maps queue -> the
// fixed-handle width-1 mean for the vs_fixed_w1 ratio.
func runChurnCells(p churnParams, base map[string]float64) []churnCell {
	cli.ValidateQueues("pqgrid", p.queues)
	// Headroom above the working set: a starved Acquire blocks on a
	// collector cycle, so the cap decides how many abandonments one cycle
	// amortizes over. slots+1 would GC per abandonment.
	if p.capHandles <= 0 {
		p.capHandles = p.slots + 64
	}
	lifecycles := []string{"pool", "naive"}
	type key struct {
		queue, lifecycle string
	}
	mops := map[key][]float64{}
	last := map[key]harness.ChurnStats{}
	for rep := 0; rep < p.reps; rep++ {
		for _, name := range p.queues {
			for _, lc := range lifecycles {
				name := name
				st := harness.RunChurn(harness.ChurnConfig{
					NewQueue: func(t int) pq.Queue {
						q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
						exitOn(err)
						return q
					},
					Slots:        p.slots,
					Goroutines:   p.goroutines,
					BurstOps:     p.burst,
					Workload:     workload.Uniform,
					KeyDist:      keys.Uniform32,
					Prefill:      p.prefill,
					Seed:         p.seed + uint64(rep),
					AbandonEvery: p.abandon,
					MaxHandles:   p.capHandles,
					Naive:        lc == "naive",
				})
				k := key{name, lc}
				mops[k] = append(mops[k], st.MOps())
				last[k] = st
				fmt.Fprintf(os.Stderr, "pqgrid: churn rep %d/%d %s %s: %.3f MOps/s (handles=%d steals=%d)\n",
					rep+1, p.reps, name, lc, st.MOps(), st.HandlesCreated, st.Steals)
			}
		}
	}
	var cells []churnCell
	for _, name := range p.queues {
		for _, lc := range lifecycles {
			k := key{name, lc}
			s := stats.Summarize(mops[k])
			st := last[k]
			c := churnCell{
				Queue: name, Lifecycle: lc,
				Goroutines: p.goroutines, BurstOps: p.burst, AbandonEvery: p.abandon,
				MOpsMean: round3(s.Mean), MOpsCI95: round3(s.CI95),
				HandlesCreated: st.HandlesCreated, PeakLive: st.PeakLive, Steals: st.Steals,
			}
			if b := base[name]; b > 0 {
				c.VsFixedW1 = round3(s.Mean / b)
			}
			cells = append(cells, c)
		}
	}
	return cells
}

// gitSHA best-effort resolves the working tree's commit; "unknown" outside
// a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqgrid:", err)
		os.Exit(1)
	}
}
