// Command pqquality runs the paper's rank-error (quality) benchmark and
// prints, for each thread count, the mean rank and standard deviation of
// every queue's delete_min results — the format of the paper's Tables 1-5.
// A strict queue scores (near) zero; relaxed queues are characterized by
// how their rank error grows with threads and relaxation parameter.
//
//	pqquality -table 1                    # Table 1/2a: uniform workload & keys
//	pqquality -workload alternating -keys descending -threads 2,4,8
package main

import (
	"flag"
	"fmt"
	"os"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/workload"
)

func main() {
	var (
		table     = flag.String("table", "", "paper table panel to regenerate (1, 2a-2h, 5a-5c); overrides -workload/-keys")
		workloadF = flag.String("workload", "uniform", "workload: uniform, split, alternating")
		keysF     = flag.String("keys", "uniform32", "key distribution: uniform32, uniform16, uniform8, ascending, descending")
		queuesF   = flag.String("queues", "", "comma-separated queue list; aliases: paper, engineered, klsm (default: the paper's seven variants)")
		threadsF  = flag.String("threads", "2,4,8", "comma-separated thread counts (paper: 2,4,8)")
		ops       = flag.Int("ops", 50_000, "operations per thread in the measured phase")
		prefill   = flag.Int("prefill", 100_000, "prefill size (quality runs replay the whole log; keep moderate)")
		batch     = flag.Int("batch", 1, "operation batch width: route operations through InsertN/DeleteMinN (1 = scalar; see DESIGN.md §4c)")
		seed      = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		machine   = flag.String("machine", "localhost", "machine label for the output header")
		markdown  = flag.Bool("markdown", false, "emit a markdown table instead of plain text")
		hist      = flag.Bool("hist", false, "also print the rank histogram (power-of-two buckets) per cell")
	)
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	exitOn(err)
	defer stopProf()

	wl, err := workload.Parse(*workloadF)
	exitOn(err)
	kd, err := keys.Parse(*keysF)
	exitOn(err)
	if *table != "" {
		cell, err := cli.TableByID(*table)
		exitOn(err)
		wl, kd = cell.Workload, cell.KeyDist
	}
	threads, err := cli.ParseThreads(*threadsF)
	exitOn(err)
	queueNames := cpq.PaperNames()
	if *queuesF != "" {
		queueNames = cli.ExpandQueues(cli.ParseList(*queuesF))
	}
	cli.ValidateQueues("pqquality", queueNames)
	cli.ValidateBatch("pqquality", *batch)

	fmt.Printf("# machine=%s workload=%s keys=%s prefill=%d ops/thread=%d batch=%d\n",
		*machine, wl, kd, *prefill, *ops, *batch)

	var out cli.Table
	header := []string{"queue"}
	for _, p := range threads {
		header = append(header, fmt.Sprintf("%d threads", p))
	}
	out.AddRow(header...)
	for _, name := range queueNames {
		name := name
		row := []string{name}
		for _, p := range threads {
			res := quality.Run(quality.Config{
				NewQueue: func(t int) pq.Queue {
					q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
					exitOn(err)
					return q
				},
				Threads:      p,
				OpsPerThread: *ops,
				Workload:     wl,
				KeyDist:      kd,
				Prefill:      *prefill,
				OpBatch:      *batch,
				Seed:         *seed,
			})
			row = append(row, fmt.Sprintf("%.1f (%.1f)", res.MeanRank, res.StddevRank))
			if *hist {
				fmt.Printf("# %s @%d threads: max=%d histogram=%s\n",
					name, p, res.MaxRank, histString(res.Histogram))
			}
		}
		out.AddRow(row...)
	}
	if *markdown {
		fmt.Print(out.Markdown())
	} else {
		fmt.Print(out.String())
	}
	fmt.Println("# cells are mean rank (stddev); rank 0 = exact minimum")
}

// histString renders the power-of-two rank histogram compactly:
// "0:12345 1:678 2-3:90 ...".
func histString(h []uint64) string {
	out := ""
	for b, c := range h {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		switch b {
		case 0:
			out += fmt.Sprintf("0:%d", c)
		case 1:
			out += fmt.Sprintf("1:%d", c)
		default:
			out += fmt.Sprintf("%d-%d:%d", 1<<(b-1), 1<<b-1, c)
		}
	}
	if out == "" {
		return "(empty)"
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqquality:", err)
		os.Exit(1)
	}
}
