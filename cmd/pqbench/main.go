// Command pqbench runs the paper's throughput benchmark and prints one
// table per cell: thread count vs. queue implementation, in MOps/s with
// 95% confidence intervals over repeated runs.
//
// Regenerate a specific paper figure:
//
//	pqbench -figure 1                 # Figure 1 / 4a: uniform workload, uniform 32-bit keys
//	pqbench -figure 4e -duration 10s -reps 10
//
// or specify the cell explicitly:
//
//	pqbench -workload split -keys ascending -threads 1,2,4,8 \
//	        -queues klsm128,klsm256,klsm4096,linden,spray,multiq,globallock
//
// The -queues list accepts aliases: "paper" (the seven variants above),
// "engineered" (seed multiq vs. the engineered multiq-s4-b8 vs. klsm4096)
// and "klsm" (the paper's three relaxation settings):
//
//	pqbench -queues engineered -threads 8
//	pqbench -queues klsm -threads 8
//
// With -batch N the workers issue their operations through the batch API
// (InsertN/DeleteMinN, DESIGN.md §4c) in groups of N; MOps/s stays
// comparable across widths because a batch of N counts as N operations.
//
// The defaults use a short duration and few repetitions so a full sweep
// stays laptop-friendly; the paper's setup corresponds to -duration 10s
// -reps 10 -prefill 1000000.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/stats"
	"cpq/internal/telemetry"
	"cpq/internal/workload"
)

func main() {
	var (
		figure    = flag.String("figure", "", "paper figure to regenerate (1, 2, 3, 4a-4h, 8a-8c); overrides -workload/-keys")
		workloadF = flag.String("workload", "uniform", "workload: uniform, split, alternating")
		keysF     = flag.String("keys", "uniform32", "key distribution: uniform32, uniform16, uniform8, ascending, descending")
		queuesF   = flag.String("queues", "", "comma-separated queue list; aliases: paper, engineered, klsm (default: the paper's seven variants)")
		threadsF  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		duration  = flag.Duration("duration", time.Second, "measurement duration per run (paper: 10s)")
		reps      = flag.Int("reps", 3, "repetitions per cell (paper: 10)")
		prefill   = flag.Int("prefill", harness.DefaultPrefill, "prefill size (paper: 1000000)")
		seed      = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		pin       = flag.Bool("pin", false, "lock worker goroutines to OS threads")
		batch     = flag.Int("batch", 1, "operation batch width: route inserts/deletes through InsertN/DeleteMinN in batches of this size (1 = scalar; see DESIGN.md §4c)")
		altBatch  = flag.Int("altbatch", 1, "phase length for the alternating workload (Appendix F); formerly -batch")
		opsMode   = flag.Int("ops", 0, "latency mode: run this many ops per thread instead of a fixed duration")
		machine   = flag.String("machine", "localhost", "machine label; the paper's hosts (mars, saturn, ceres, pluto) preset the thread sweep of their figures")
		csvOut    = flag.Bool("csv", false, "emit CSV (threads,queue,mops,ci) instead of a table")
		markdown  = flag.Bool("markdown", false, "emit a markdown table instead of plain text")
		plot      = flag.Bool("plot", false, "also render an ASCII chart of throughput vs threads (like the paper's figures)")
		telemF    = flag.Bool("telemetry", false, "collect queue-internals counters and latency histograms; prints one section per cell after the table (see DESIGN.md §5)")
		churnN    = flag.Int("churn", 0, "goroutine-churn mode: spawn this many short-lived goroutines per cell through the handle pool instead of the fixed-duration grid (the -threads sweep becomes the concurrent-slot sweep)")
		churnAb   = flag.Int("churn-abandon", 0, "churn mode: every Nth goroutine abandons its handle instead of releasing it (0 = never)")
		churnNv   = flag.Bool("churn-naive", false, "churn mode: use the naive mutex-guarded handle list instead of the pool (baseline)")
		churnCap  = flag.Int("churn-cap", 0, "churn mode: pool handle cap (0 = slots+64; headroom amortizes one collector cycle over many abandonments)")
		churnBur  = flag.Int("churn-burst", 0, "churn mode: ops per short-lived goroutine (0 = the harness default, 64)")
	)
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	telemetry.Enabled = *telemF
	stopProf, err := prof.Start()
	exitOn(err)
	defer stopProf()

	wl, err := workload.Parse(*workloadF)
	exitOn(err)
	kd, err := keys.Parse(*keysF)
	exitOn(err)
	cellID := ""
	if *figure != "" {
		cell, err := cli.FigureByID(*figure)
		exitOn(err)
		wl, kd, cellID = cell.Workload, cell.KeyDist, cell.ID
	}
	threads, err := cli.ParseThreads(*threadsF)
	exitOn(err)
	if m, ok := cli.MachineByName(*machine); ok && !flagSet("threads") {
		threads = m.Threads // paper-machine preset, unless -threads overrides
	}
	queueNames := cpq.PaperNames()
	if *queuesF != "" {
		queueNames = cli.ExpandQueues(cli.ParseList(*queuesF))
	}
	cli.ValidateQueues("pqbench", queueNames) // validate before burning benchmark time
	cli.ValidateBatch("pqbench", *batch)
	cli.ValidateBatch("pqbench", *altBatch)

	if *churnN > 0 {
		runChurnTable(queueNames, threads, wl, kd,
			*churnN, *churnBur, *churnAb, *churnCap, *prefill, *reps, *seed, *churnNv, *markdown)
		return
	}

	header := fmt.Sprintf("# machine=%s workload=%s keys=%s prefill=%d duration=%v reps=%d",
		*machine, wl, kd, *prefill, *duration, *reps)
	if *batch > 1 {
		header += fmt.Sprintf(" batch=%d", *batch)
	}
	if cellID != "" {
		header = fmt.Sprintf("# figure %s  %s", cellID, header[2:])
	}
	fmt.Println(header)

	var table cli.Table
	row := []string{"threads"}
	for _, name := range queueNames {
		row = append(row, name)
	}
	table.AddRow(row...)
	curves := map[string][]float64{}
	type telemEntry struct {
		threads int
		queue   string
		ops     uint64
		snap    telemetry.Snapshot
	}
	var telemEntries []telemEntry
	for _, p := range threads {
		row := []string{fmt.Sprintf("%d", p)}
		for _, name := range queueNames {
			name := name
			cfg := harness.Config{
				NewQueue: func(t int) pq.Queue {
					q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
					exitOn(err)
					return q
				},
				Threads:   p,
				Duration:  *duration,
				Workload:  wl,
				KeyDist:   kd,
				Prefill:   *prefill,
				BatchSize: *altBatch,
				OpBatch:   *batch,
				Seed:      *seed,
				Pin:       *pin,
			}
			if *opsMode > 0 {
				// Latency mode: fixed op count; report elapsed time and
				// sampled per-op latency percentiles.
				res := harness.RunOps(cfg, *opsMode)
				row = append(row, fmt.Sprintf("%.3fs p50=%.0fns p99=%.0fns",
					res.Duration.Seconds(), res.LatencyP50, res.LatencyP99))
				curves[name] = append(curves[name], res.MOps())
				if res.Telemetry != nil {
					telemEntries = append(telemEntries,
						telemEntry{p, name, res.Ops, *res.Telemetry})
				}
			} else {
				s := harness.RunRepeated(cfg, *reps)
				row = append(row, fmt.Sprintf("%.3f ±%.3f", s.Throughput.Mean, s.Throughput.CI95))
				curves[name] = append(curves[name], s.Throughput.Mean)
				if s.Telemetry != nil {
					var ops uint64
					for _, r := range s.Results {
						ops += r.Ops
					}
					telemEntries = append(telemEntries,
						telemEntry{p, name, ops, *s.Telemetry})
				}
			}
		}
		table.AddRow(row...)
	}
	switch {
	case *csvOut:
		fmt.Println("threads,queue,mops,ci95")
		for i, p := range threads {
			for j, name := range queueNames {
				_ = i
				fmt.Printf("%d,%s,%s\n", p, name, csvCell(table, i+1, j+1))
			}
		}
	case *markdown:
		fmt.Print(table.Markdown())
	default:
		fmt.Print(table.String())
	}
	fmt.Println("# cells are MOps/s (insertions+deletions per second / 1e6), mean ±95% CI")
	if len(telemEntries) > 0 {
		fmt.Println("\n# telemetry (counters summed over reps; rates are per completed op; see DESIGN.md §5)")
		for _, e := range telemEntries {
			fmt.Printf("## threads=%d queue=%s ops=%d\n", e.threads, e.queue, e.ops)
			fmt.Print(e.snap.Table("  ", e.ops))
			fmt.Print(e.snap.LatencySummary("  "))
		}
	}
	if *plot {
		chart := cli.NewPlot(header, threads)
		chart.XLabel, chart.YLabel = "threads", "MOps/s"
		for _, name := range queueNames {
			chart.AddSeries(name, curves[name])
		}
		fmt.Println()
		fmt.Print(chart.String())
	}
}

// runChurnTable is the -churn mode: a slots × queue table of goroutine-
// churn throughput (harness.RunChurn). Each cell spawns `goroutines`
// short-lived goroutines across `slots` concurrent slots, every one
// checking a handle out of the pool (or the naive baseline's mutex-guarded
// list), doing a small op burst, and checking it back in; the reported
// MOps/s includes that lifecycle cost. Handle accounting (created, steals)
// is appended to each cell so abandonment recovery is visible in the table.
func runChurnTable(queueNames []string, slotCounts []int,
	wl workload.Kind, kd keys.Distribution,
	goroutines, burst, abandonEvery, capHandles, prefill, reps int, seed uint64,
	naive, markdown bool) {
	lifecycle := "pool"
	if naive {
		lifecycle = "naive"
	}
	fmt.Printf("# churn goroutines=%d lifecycle=%s abandon_every=%d workload=%s keys=%s prefill=%d reps=%d\n",
		goroutines, lifecycle, abandonEvery, wl, kd, prefill, reps)

	var table cli.Table
	head := []string{"slots"}
	head = append(head, queueNames...)
	table.AddRow(head...)
	for _, slots := range slotCounts {
		row := []string{fmt.Sprintf("%d", slots)}
		// Headroom above the working set: a starved Acquire blocks on a
		// collector cycle, so the cap decides how many abandonments one
		// cycle amortizes over. slots+1 would GC per abandonment.
		poolCap := capHandles
		if poolCap <= 0 {
			poolCap = slots + 64
		}
		for _, name := range queueNames {
			name := name
			var mops []float64
			var last harness.ChurnStats
			for rep := 0; rep < reps; rep++ {
				last = harness.RunChurn(harness.ChurnConfig{
					NewQueue: func(t int) pq.Queue {
						q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
						exitOn(err)
						return q
					},
					Slots:        slots,
					Goroutines:   goroutines,
					BurstOps:     burst,
					Workload:     wl,
					KeyDist:      kd,
					Prefill:      prefill,
					Seed:         seed + uint64(rep),
					AbandonEvery: abandonEvery,
					MaxHandles:   poolCap,
					Naive:        naive,
				})
				mops = append(mops, last.MOps())
			}
			s := stats.Summarize(mops)
			row = append(row, fmt.Sprintf("%.3f ±%.3f h=%d s=%d",
				s.Mean, s.CI95, last.HandlesCreated, last.Steals))
		}
		table.AddRow(row...)
	}
	if markdown {
		fmt.Print(table.Markdown())
	} else {
		fmt.Print(table.String())
	}
	fmt.Println("# cells are MOps/s mean ±95% CI; h = handles created, s = abandoned handles stolen back (last rep)")
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// csvCell converts a rendered "m ±c" cell into "m,c".
func csvCell(t cli.Table, row, col int) string {
	cell := t.Cell(row, col)
	return strings.NewReplacer(" ±", ",", "±", "").Replace(cell)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}
