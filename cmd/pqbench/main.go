// Command pqbench runs the paper's throughput benchmark and prints one
// table per cell: thread count vs. queue implementation, in MOps/s with
// 95% confidence intervals over repeated runs.
//
// Regenerate a specific paper figure:
//
//	pqbench -figure 1                 # Figure 1 / 4a: uniform workload, uniform 32-bit keys
//	pqbench -figure 4e -duration 10s -reps 10
//
// or specify the cell explicitly:
//
//	pqbench -workload split -keys ascending -threads 1,2,4,8 \
//	        -queues klsm128,klsm256,klsm4096,linden,spray,multiq,globallock
//
// The -queues list accepts aliases: "paper" (the seven variants above),
// "engineered" (seed multiq vs. the engineered multiq-s4-b8 vs. klsm4096)
// and "klsm" (the paper's three relaxation settings):
//
//	pqbench -queues engineered -threads 8
//	pqbench -queues klsm -threads 8
//
// With -batch N the workers issue their operations through the batch API
// (InsertN/DeleteMinN, DESIGN.md §4c) in groups of N; MOps/s stays
// comparable across widths because a batch of N counts as N operations.
//
// The defaults use a short duration and few repetitions so a full sweep
// stays laptop-friendly; the paper's setup corresponds to -duration 10s
// -reps 10 -prefill 1000000.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/harness"
	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/stats"
	"cpq/internal/telemetry"
	"cpq/internal/workload"
)

func main() {
	var (
		figure    = flag.String("figure", "", "paper figure to regenerate (1, 2, 3, 4a-4h, 8a-8c); overrides -workload/-keys")
		workloadF = flag.String("workload", "uniform", "workload: uniform, split, alternating")
		keysF     = flag.String("keys", "uniform32", "key distribution: uniform32, uniform16, uniform8, ascending, descending")
		queuesF   = flag.String("queues", "", "comma-separated queue list; aliases: paper, engineered, klsm (default: the paper's seven variants)")
		threadsF  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		duration  = flag.Duration("duration", time.Second, "measurement duration per run (paper: 10s)")
		reps      = flag.Int("reps", 3, "repetitions per cell (paper: 10)")
		prefill   = flag.Int("prefill", harness.DefaultPrefill, "prefill size (paper: 1000000)")
		seed      = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		pin       = flag.Bool("pin", false, "lock worker goroutines to OS threads")
		batch     = flag.Int("batch", 1, "operation batch width: route inserts/deletes through InsertN/DeleteMinN in batches of this size (1 = scalar; see DESIGN.md §4c)")
		altBatch  = flag.Int("altbatch", 1, "phase length for the alternating workload (Appendix F); formerly -batch")
		opsMode   = flag.Int("ops", 0, "latency mode: run this many ops per thread instead of a fixed duration")
		machine   = flag.String("machine", "localhost", "machine label; the paper's hosts (mars, saturn, ceres, pluto) preset the thread sweep of their figures")
		csvOut    = flag.Bool("csv", false, "emit CSV (threads,queue,mops,ci) instead of a table")
		markdown  = flag.Bool("markdown", false, "emit a markdown table instead of plain text")
		plot      = flag.Bool("plot", false, "also render an ASCII chart of throughput vs threads (like the paper's figures)")
		telemF    = flag.Bool("telemetry", false, "collect queue-internals counters and latency histograms; prints one section per cell after the table (see DESIGN.md §5)")
		churnN    = flag.Int("churn", 0, "goroutine-churn mode: spawn this many short-lived goroutines per cell through the handle pool instead of the fixed-duration grid (the -threads sweep becomes the concurrent-slot sweep)")
		churnAb   = flag.Int("churn-abandon", 0, "churn mode: every Nth goroutine abandons its handle instead of releasing it (0 = never)")
		churnNv   = flag.Bool("churn-naive", false, "churn mode: use the naive mutex-guarded handle list instead of the pool (baseline)")
		churnCap  = flag.Int("churn-cap", 0, "churn mode: pool handle cap (0 = slots+64; headroom amortizes one collector cycle over many abandonments)")
		churnBur  = flag.Int("churn-burst", 0, "churn mode: ops per short-lived goroutine (0 = the harness default, 64)")
		durableF  = flag.Bool("durable", false, "durable mode: benchmark the WAL tier, group commit vs the fsync-per-op naive baseline, and write -out (DESIGN.md §8)")
		durDir    = flag.String("durable-dir", "", "durable mode: log directory (default ./pqbench-durable.tmp, removed afterward)")
		durWin    = flag.Duration("commit-window", 0, "durable mode: group-commit dally window (0 = commit cohorts as they form)")
		snapEvF   = flag.Int("snap-every", 0, "durable mode: snapshot cadence in logged ops per queue (0 = final snapshot only)")
		segBytesF = flag.Int("seg-bytes", 0, "durable mode: WAL segment size in bytes (0 = default 1 MiB; also the mmap preallocation unit)")
		backendF  = flag.String("wal-backend", "", `durable mode: store backend "mmap", "file", or empty for the platform default`)
		recoverF  = flag.Bool("recover", false, "recovery mode: measure the cold-start replay rate (M items/s) against WAL tail length; adds rec: cells to -out (combine with -durable for one combined report)")
		recAgesF  = flag.String("recover-ages", "0,100000", "recover mode: comma-separated snapshot ages (WAL records logged since the last snapshot at the crash point)")
		recItems  = flag.Int("recover-items", 200000, "recover mode: live items captured by the snapshot at the crash point")
		outF      = flag.String("out", "BENCH_10.json", "durable/recover mode: JSON report path (empty = print table only)")
	)
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	telemetry.Enabled = *telemF
	stopProf, err := prof.Start()
	exitOn(err)
	defer stopProf()

	wl, err := workload.Parse(*workloadF)
	exitOn(err)
	kd, err := keys.Parse(*keysF)
	exitOn(err)
	cellID := ""
	if *figure != "" {
		cell, err := cli.FigureByID(*figure)
		exitOn(err)
		wl, kd, cellID = cell.Workload, cell.KeyDist, cell.ID
	}
	threads, err := cli.ParseThreads(*threadsF)
	exitOn(err)
	if m, ok := cli.MachineByName(*machine); ok && !flagSet("threads") {
		threads = m.Threads // paper-machine preset, unless -threads overrides
	}
	queueNames := cpq.PaperNames()
	if *durableF && *queuesF == "" {
		// Durable cells pay a real fsync tax; default to a small cross-
		// family set instead of the paper's seven.
		queueNames = []string{"multiq-s4-b8", "klsm256", "linden"}
	}
	if *queuesF != "" {
		queueNames = cli.ExpandQueues(cli.ParseList(*queuesF))
	}
	cli.ValidateQueues("pqbench", queueNames) // validate before burning benchmark time
	cli.ValidateBatch("pqbench", *batch)
	cli.ValidateBatch("pqbench", *altBatch)
	cli.ValidateSnapEvery("pqbench", *snapEvF)
	cli.ValidateSegBytes("pqbench", *segBytesF)
	cli.ValidateWALBackend("pqbench", *backendF)

	if *durableF || *recoverF {
		if !*durableF && *queuesF == "" {
			// Recover-only runs share durable mode's small default set.
			queueNames = []string{"multiq-s4-b8", "klsm256", "linden"}
		}
		dir := *durDir
		if dir == "" {
			dir = "pqbench-durable.tmp"
		}
		exitOn(os.MkdirAll(dir, 0o755))
		defer os.RemoveAll(dir)
		dcfg := durConfig{
			window: *durWin, snapEvery: *snapEvF,
			segBytes: *segBytesF, backend: *backendF,
		}
		var recCells []recCell
		if *recoverF {
			ages, err := parseAges(*recAgesF)
			exitOn(err)
			recCells = runRecoverTable(queueNames, ages, *recItems, *reps, *seed, dcfg, dir, *markdown)
		}
		if *durableF {
			pre := *prefill
			if !flagSet("prefill") {
				// The default 10^6 prefill would log a million inserts before
				// the first measured op; 10^4 keeps the WAL tax visible and
				// the run short.
				pre = 10_000
			}
			runDurableTable(queueNames, threads, wl, kd,
				*duration, *reps, pre, *batch, *seed, dcfg, dir, *outF, *markdown, recCells)
		} else if *outF != "" {
			writeDurReport(*outF, durReport{
				Mode: "recover", Threads: 1, Reps: *reps,
				Workload: wl.String(), KeyDist: kd.String(),
				Recover: recCells,
			})
		}
		return
	}

	if *churnN > 0 {
		runChurnTable(queueNames, threads, wl, kd,
			*churnN, *churnBur, *churnAb, *churnCap, *prefill, *reps, *seed, *churnNv, *markdown)
		return
	}

	header := fmt.Sprintf("# machine=%s workload=%s keys=%s prefill=%d duration=%v reps=%d",
		*machine, wl, kd, *prefill, *duration, *reps)
	if *batch > 1 {
		header += fmt.Sprintf(" batch=%d", *batch)
	}
	if cellID != "" {
		header = fmt.Sprintf("# figure %s  %s", cellID, header[2:])
	}
	fmt.Println(header)

	var table cli.Table
	row := []string{"threads"}
	for _, name := range queueNames {
		row = append(row, name)
	}
	table.AddRow(row...)
	curves := map[string][]float64{}
	type telemEntry struct {
		threads int
		queue   string
		ops     uint64
		snap    telemetry.Snapshot
	}
	var telemEntries []telemEntry
	for _, p := range threads {
		row := []string{fmt.Sprintf("%d", p)}
		for _, name := range queueNames {
			name := name
			cfg := harness.Config{
				NewQueue: func(t int) pq.Queue {
					q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
					exitOn(err)
					return q
				},
				Threads:   p,
				Duration:  *duration,
				Workload:  wl,
				KeyDist:   kd,
				Prefill:   *prefill,
				BatchSize: *altBatch,
				OpBatch:   *batch,
				Seed:      *seed,
				Pin:       *pin,
			}
			if *opsMode > 0 {
				// Latency mode: fixed op count; report elapsed time and
				// sampled per-op latency percentiles.
				res := harness.RunOps(cfg, *opsMode)
				row = append(row, fmt.Sprintf("%.3fs p50=%.0fns p99=%.0fns",
					res.Duration.Seconds(), res.LatencyP50, res.LatencyP99))
				curves[name] = append(curves[name], res.MOps())
				if res.Telemetry != nil {
					telemEntries = append(telemEntries,
						telemEntry{p, name, res.Ops, *res.Telemetry})
				}
			} else {
				s := harness.RunRepeated(cfg, *reps)
				row = append(row, fmt.Sprintf("%.3f ±%.3f", s.Throughput.Mean, s.Throughput.CI95))
				curves[name] = append(curves[name], s.Throughput.Mean)
				if s.Telemetry != nil {
					var ops uint64
					for _, r := range s.Results {
						ops += r.Ops
					}
					telemEntries = append(telemEntries,
						telemEntry{p, name, ops, *s.Telemetry})
				}
			}
		}
		table.AddRow(row...)
	}
	switch {
	case *csvOut:
		fmt.Println("threads,queue,mops,ci95")
		for i, p := range threads {
			for j, name := range queueNames {
				_ = i
				fmt.Printf("%d,%s,%s\n", p, name, csvCell(table, i+1, j+1))
			}
		}
	case *markdown:
		fmt.Print(table.Markdown())
	default:
		fmt.Print(table.String())
	}
	fmt.Println("# cells are MOps/s (insertions+deletions per second / 1e6), mean ±95% CI")
	if len(telemEntries) > 0 {
		fmt.Println("\n# telemetry (counters summed over reps; rates are per completed op; see DESIGN.md §5)")
		for _, e := range telemEntries {
			fmt.Printf("## threads=%d queue=%s ops=%d\n", e.threads, e.queue, e.ops)
			fmt.Print(e.snap.Table("  ", e.ops))
			fmt.Print(e.snap.LatencySummary("  "))
		}
	}
	if *plot {
		chart := cli.NewPlot(header, threads)
		chart.XLabel, chart.YLabel = "threads", "MOps/s"
		for _, name := range queueNames {
			chart.AddSeries(name, curves[name])
		}
		fmt.Println()
		fmt.Print(chart.String())
	}
}

// runChurnTable is the -churn mode: a slots × queue table of goroutine-
// churn throughput (harness.RunChurn). Each cell spawns `goroutines`
// short-lived goroutines across `slots` concurrent slots, every one
// checking a handle out of the pool (or the naive baseline's mutex-guarded
// list), doing a small op burst, and checking it back in; the reported
// MOps/s includes that lifecycle cost. Handle accounting (created, steals)
// is appended to each cell so abandonment recovery is visible in the table.
func runChurnTable(queueNames []string, slotCounts []int,
	wl workload.Kind, kd keys.Distribution,
	goroutines, burst, abandonEvery, capHandles, prefill, reps int, seed uint64,
	naive, markdown bool) {
	lifecycle := "pool"
	if naive {
		lifecycle = "naive"
	}
	fmt.Printf("# churn goroutines=%d lifecycle=%s abandon_every=%d workload=%s keys=%s prefill=%d reps=%d\n",
		goroutines, lifecycle, abandonEvery, wl, kd, prefill, reps)

	var table cli.Table
	head := []string{"slots"}
	head = append(head, queueNames...)
	table.AddRow(head...)
	for _, slots := range slotCounts {
		row := []string{fmt.Sprintf("%d", slots)}
		// Headroom above the working set: a starved Acquire blocks on a
		// collector cycle, so the cap decides how many abandonments one
		// cycle amortizes over. slots+1 would GC per abandonment.
		poolCap := capHandles
		if poolCap <= 0 {
			poolCap = slots + 64
		}
		for _, name := range queueNames {
			name := name
			var mops []float64
			var last harness.ChurnStats
			for rep := 0; rep < reps; rep++ {
				last = harness.RunChurn(harness.ChurnConfig{
					NewQueue: func(t int) pq.Queue {
						q, err := cpq.NewQueue(name, cpq.Options{Threads: t})
						exitOn(err)
						return q
					},
					Slots:        slots,
					Goroutines:   goroutines,
					BurstOps:     burst,
					Workload:     wl,
					KeyDist:      kd,
					Prefill:      prefill,
					Seed:         seed + uint64(rep),
					AbandonEvery: abandonEvery,
					MaxHandles:   poolCap,
					Naive:        naive,
				})
				mops = append(mops, last.MOps())
			}
			s := stats.Summarize(mops)
			row = append(row, fmt.Sprintf("%.3f ±%.3f h=%d s=%d",
				s.Mean, s.CI95, last.HandlesCreated, last.Steals))
		}
		table.AddRow(row...)
	}
	if markdown {
		fmt.Print(table.Markdown())
	} else {
		fmt.Print(table.String())
	}
	fmt.Println("# cells are MOps/s mean ±95% CI; h = handles created, s = abandoned handles stolen back (last rep)")
}

// durCell is one durable-mode grid cell of the BENCH_9.json report. The
// queue name carries the mode prefix ("dur:" group commit, "dur-naive:"
// fsync-per-op), so pqtrend diffs durable cells across reports exactly
// like it diffs "net:" socket cells — by queue string.
type durCell struct {
	Queue       string  `json:"queue"`
	BatchWidth  int     `json:"batch_width"`
	MOpsMean    float64 `json:"mops_mean"`
	MOpsCI95    float64 `json:"mops_ci95"`
	Ops         uint64  `json:"ops"`
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
	WALRecords  uint64  `json:"wal_records"`
	WALFsyncs   uint64  `json:"wal_fsyncs"`
	Snapshots   uint64  `json:"snapshots"`
}

// recCell is one recovery-rate cell: how fast a cold process rebuilds a
// queue from a store crashed at a given snapshot age (WAL records logged
// since the last snapshot). The rate counts every recovered item —
// snapshot items and replayed tail records alike — per wall second of
// store-open plus replay plus rebuild.
type recCell struct {
	Queue       string  `json:"queue"` // "rec:" + registry name
	SnapshotAge int     `json:"snapshot_age"`
	Items       int     `json:"items"` // total items recovered per rep
	MItemsMean  float64 `json:"mitems_mean"`
	MItemsCI95  float64 `json:"mitems_ci95"`
	MillisMean  float64 `json:"millis_mean"`
}

// durReport is the BENCH_10.json document: the same envelope as the
// socket report (BENCH_8.json) with mode "durable" (or "recover"), WAL
// accounting per throughput cell, and the recovery-rate curve.
type durReport struct {
	GitSHA     string    `json:"git_sha"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Figure     string    `json:"figure,omitempty"`
	Mode       string    `json:"mode"`
	Threads    int       `json:"threads"`
	Workload   string    `json:"workload"`
	KeyDist    string    `json:"key_dist"`
	Prefill    int       `json:"prefill"`
	Duration   string    `json:"duration"`
	Reps       int       `json:"reps"`
	Generated  string    `json:"generated"`
	Cells      []durCell `json:"cells,omitempty"`
	Recover    []recCell `json:"recover,omitempty"`
}

// durConfig carries the durable-tier tuning flags shared by the
// throughput and recovery modes.
type durConfig struct {
	window    time.Duration
	snapEvery int
	segBytes  int
	backend   string
}

// writeDurReport stamps the environment fields and writes the report.
func writeDurReport(out string, doc durReport) {
	doc.GitSHA = gitSHA()
	doc.GoVersion = runtime.Version()
	doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	buf, err := json.MarshalIndent(doc, "", "  ")
	exitOn(err)
	buf = append(buf, '\n')
	exitOn(os.WriteFile(out, buf, 0o644))
	fmt.Fprintf(os.Stderr, "pqbench: wrote %s\n", out)
}

// parseAges parses the -recover-ages list ("0,100000").
func parseAges(s string) ([]int, error) {
	var ages []int
	for _, f := range cli.ParseList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid -recover-ages entry %q (want a non-negative op count)", f)
		}
		ages = append(ages, n)
	}
	if len(ages) == 0 {
		return nil, fmt.Errorf("-recover-ages is empty")
	}
	return ages, nil
}

// runDurableTable is the -durable mode: a threads × queue table where
// every cell runs the throughput harness twice over a durable-wrapped
// queue — once with group commit, once with the naive fsync-per-op
// baseline — on a real file-backed WAL. Cells report MOps/s and
// fsyncs per logged record; the JSON report carries the cells of the
// largest thread count (the shape BENCH_8.json uses), so the grouping
// win at full producer count is what the trend gate watches.
func runDurableTable(queueNames []string, threads []int,
	wl workload.Kind, kd keys.Distribution,
	duration time.Duration, reps, prefill, batch int, seed uint64,
	cfg durConfig, dir, out string, markdown bool, recCells []recCell) {
	fmt.Printf("# durable workload=%s keys=%s prefill=%d duration=%v reps=%d batch=%d window=%v backend=%s\n",
		wl, kd, prefill, duration, reps, batch, cfg.window, backendLabel(cfg.backend))

	var table cli.Table
	head := []string{"threads"}
	for _, name := range queueNames {
		head = append(head, "dur:"+name, "dur-naive:"+name)
	}
	table.AddRow(head...)

	var ctr atomic.Uint64
	var jsonCells []durCell
	maxP := threads[len(threads)-1]
	for _, p := range threads {
		row := []string{fmt.Sprintf("%d", p)}
		for _, name := range queueNames {
			name := name
			for _, naive := range []bool{false, true} {
				var mu sync.Mutex
				var queues []*durable.Queue
				cfg := harness.Config{
					NewQueue: func(t int) pq.Queue {
						// A fresh directory per construction: a rep must
						// not replay the previous rep's survivors.
						sub := filepath.Join(dir, fmt.Sprintf("q%06d", ctr.Add(1)))
						q, err := cpq.NewQueue(name, cpq.Options{
							Threads: t,
							Durable: &cpq.DurableOptions{
								Dir:               sub,
								GroupCommitWindow: cfg.window,
								SnapshotEvery:     cfg.snapEvery,
								SegmentBytes:      cfg.segBytes,
								Backend:           cfg.backend,
								Naive:             naive,
							},
						})
						exitOn(err)
						mu.Lock()
						queues = append(queues, q.(*durable.Queue))
						mu.Unlock()
						return q
					},
					Threads:  p,
					Duration: duration,
					Workload: wl,
					KeyDist:  kd,
					Prefill:  prefill,
					OpBatch:  batch,
					Seed:     seed,
				}
				s := harness.RunRepeated(cfg, reps)
				var st durable.Stats
				for _, dq := range queues {
					if err := dq.Err(); err != nil {
						exitOn(err)
					}
					qs := dq.Stats()
					st.Records += qs.Records
					st.Fsyncs += qs.Fsyncs
					st.Snapshots += qs.Snapshots
				}
				fpo := 0.0
				if st.Records > 0 {
					fpo = float64(st.Fsyncs) / float64(st.Records)
				}
				row = append(row, fmt.Sprintf("%.3f ±%.3f f=%.3f",
					s.Throughput.Mean, s.Throughput.CI95, fpo))
				if p == maxP {
					prefix := "dur:"
					if naive {
						prefix = "dur-naive:"
					}
					var ops uint64
					for _, r := range s.Results {
						ops += r.Ops
					}
					// fsyncs_per_op divides by harness ops (a batch of N
					// counts as N), so the cell is comparable across batch
					// widths; f in the table is per logged record.
					perOp := 0.0
					if ops > 0 {
						perOp = float64(st.Fsyncs) / float64(ops)
					}
					jsonCells = append(jsonCells, durCell{
						Queue: prefix + name, BatchWidth: batch,
						MOpsMean: round3(s.Throughput.Mean), MOpsCI95: round3(s.Throughput.CI95),
						Ops: ops, FsyncsPerOp: round3(perOp),
						WALRecords: st.Records, WALFsyncs: st.Fsyncs,
						Snapshots: st.Snapshots,
					})
				}
			}
		}
		table.AddRow(row...)
	}
	if markdown {
		fmt.Print(table.Markdown())
	} else {
		fmt.Print(table.String())
	}
	fmt.Println("# cells are MOps/s mean ±95% CI; f = fsyncs per logged WAL record (group commit amortizes, naive pins f=1)")

	if out == "" {
		return
	}
	figure := ""
	if wl == workload.Uniform && kd == keys.Uniform32 {
		figure = "4a"
	}
	writeDurReport(out, durReport{
		Figure:   figure,
		Mode:     "durable",
		Threads:  maxP,
		Workload: wl.String(),
		KeyDist:  kd.String(),
		Prefill:  prefill,
		Duration: duration.String(),
		Reps:     reps,
		Cells:    jsonCells,
		Recover:  recCells,
	})
}

// backendLabel names the effective WAL backend for table headers.
func backendLabel(backend string) string {
	if backend != "" {
		return backend
	}
	if kv.MmapSupported {
		return "mmap"
	}
	return "file"
}

// runRecoverTable is the -recover mode: for each queue and snapshot age
// it fabricates a crashed store — `items` live inserts captured by an
// explicit snapshot, then `age` more logged inserts that only the WAL
// holds — and times a cold open end to end: store open (mmap + torn-tail
// scan), manifest + part decode, WAL tail fold, and the rebuild of the
// in-memory queue. Cells are millions of recovered items per second;
// the age sweep is the recovery-time curve EXPERIMENTS.md plots.
func runRecoverTable(queueNames []string, ages []int, items, reps int,
	seed uint64, cfg durConfig, dir string, markdown bool) []recCell {
	fmt.Printf("# recover backend=%s items=%d ages=%v reps=%d\n",
		backendLabel(cfg.backend), items, ages, reps)

	var table cli.Table
	head := []string{"age"}
	for _, name := range queueNames {
		head = append(head, "rec:"+name)
	}
	table.AddRow(head...)

	var cells []recCell
	for _, age := range ages {
		row := []string{fmt.Sprintf("%d", age)}
		for qi, name := range queueNames {
			sub := filepath.Join(dir, fmt.Sprintf("rec-%02d-%d", qi, age))
			buildCrashedStore(name, sub, items, age, seed, cfg)

			total := items + age
			var rates []float64
			var millis float64
			for rep := 0; rep < reps; rep++ {
				inner, err := cpq.NewQueue(name, cpq.Options{Threads: 1})
				exitOn(err)
				start := time.Now()
				store := openRecStore(sub, cfg)
				q, err := durable.Wrap(inner, durable.Options{
					Store:        store,
					SegmentBytes: cfg.segBytes,
				})
				exitOn(err)
				dt := time.Since(start)
				// The wrapper does not own an explicitly-passed store, and
				// Close would snapshot-and-truncate — mutating the fixture
				// for the next rep. Drop the queue, close the store.
				_ = q
				exitOn(store.Close())
				rates = append(rates, float64(total)/dt.Seconds()/1e6)
				millis += float64(dt.Milliseconds())
			}
			s := stats.Summarize(rates)
			row = append(row, fmt.Sprintf("%.3f ±%.3f", s.Mean, s.CI95))
			cells = append(cells, recCell{
				Queue: "rec:" + name, SnapshotAge: age, Items: total,
				MItemsMean: round3(s.Mean), MItemsCI95: round3(s.CI95),
				MillisMean: round3(millis / float64(reps)),
			})
		}
		table.AddRow(row...)
	}
	if markdown {
		fmt.Print(table.Markdown())
	} else {
		fmt.Print(table.String())
	}
	fmt.Println("# cells are millions of items recovered per second (store open + replay + queue rebuild), mean ±95% CI")
	return cells
}

// buildCrashedStore logs `items` inserts, snapshots, logs `age` more,
// and abandons the queue without Close — the store is left exactly as a
// crash would leave it: a committed manifest plus an `age`-record WAL
// tail, every record group-commit fsynced.
func buildCrashedStore(name, sub string, items, age int, seed uint64, cfg durConfig) {
	inner, err := cpq.NewQueue(name, cpq.Options{Threads: 1})
	exitOn(err)
	store := openRecStore(sub, cfg)
	q, err := durable.Wrap(inner, durable.Options{
		Store:             store,
		GroupCommitWindow: cfg.window,
		SegmentBytes:      cfg.segBytes,
	})
	exitOn(err)
	h := q.Handle()
	const chunk = 4096 // batch the load: one group commit per chunk, not per item
	buf := make([]pq.KV, 0, chunk)
	flush := func() {
		if len(buf) > 0 {
			pq.InsertN(h, buf)
			buf = buf[:0]
		}
	}
	for i := 0; i < items; i++ {
		v := seed + uint64(i)
		buf = append(buf, pq.KV{Key: v * 2654435761 % 1_000_000_007, Value: v})
		if len(buf) == chunk {
			flush()
		}
	}
	flush()
	exitOn(q.Snapshot())
	for i := 0; i < age; i++ {
		v := seed + uint64(items+i)
		buf = append(buf, pq.KV{Key: v * 2654435761 % 1_000_000_007, Value: v})
		if len(buf) == chunk {
			flush()
		}
	}
	flush()
	// No Close: closing would take a final snapshot and erase the tail.
	// Acked batches are already fsynced, so this store is the crash image.
	exitOn(store.Close())
}

// openRecStore opens the recovery fixture directory with the configured
// (or platform-default) backend — the same selection durable.Wrap makes
// from a Dir, done here so the benchmark controls the store lifetime.
func openRecStore(sub string, cfg durConfig) kv.Store {
	segBytes := cfg.segBytes
	if segBytes == 0 {
		segBytes = kv.DefaultSegmentBytes
	}
	useMmap := cfg.backend == "mmap" || (cfg.backend == "" && kv.MmapSupported)
	if useMmap {
		s, err := kv.OpenMmap(sub, segBytes)
		exitOn(err)
		return s
	}
	s, err := kv.OpenFile(sub)
	exitOn(err)
	return s
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// csvCell converts a rendered "m ±c" cell into "m,c".
func csvCell(t cli.Table, row, col int) string {
	cell := t.Cell(row, col)
	return strings.NewReplacer(" ±", ",", "±", "").Replace(cell)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}
