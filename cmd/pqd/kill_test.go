// Kill/recover/conserve: the durable tier's end-to-end crash test. A
// child pqd with -durable serves real TCP traffic, is SIGKILLed mid-
// stream, and is restarted over the same log directory; the drained
// recovery must conserve every acknowledged item exactly.
//
// The accounting contract mirrors the WAL's promise:
//
//   - phantom = 0: nothing drains that no client ever sent.
//   - dup = 0: nothing drains twice, and nothing a client saw deleted
//     comes back.
//   - lost ≤ in-flight deletes: an acknowledged insert may only go
//     missing if an unacknowledged DeleteMin (sent, no response before
//     the kill) popped it — the synchronous client keeps at most one
//     operation in flight per connection, so the allowance is bounded
//     by workers × batch.
//
// The child is this test binary re-exec'd (TestMain trampoline), so the
// test needs no separate build step and runs under -race with the
// server code instrumented.
package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/netpq"
	"cpq/internal/pq"
)

func TestMain(m *testing.M) {
	if os.Getenv("PQD_CHILD") == "1" {
		os.Args = append([]string{"pqd"}, strings.Split(os.Getenv("PQD_ARGS"), "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnPQD re-execs the test binary as a pqd child and waits for its
// listen line to learn the ephemeral address.
func spawnPQD(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "PQD_CHILD=1", "PQD_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		for sc.Scan() { // keep the pipe drained so the child never blocks on stderr
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child pqd never reported its listen address")
		return nil, ""
	}
}

// copyDir snapshots the durable directory tree for forensic replay.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// killKey derives a deterministic key from a unique value so workers
// need no shared RNG (splitmix64 finalizer).
func killKey(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	return v ^ v>>31
}

// workerLog is one connection's view of the acknowledged history.
type workerLog struct {
	ackedIns      []pq.KV
	ackedDel      []pq.KV
	unackedIns    []pq.KV // the one in-flight insert batch, if any
	unackedDelMax int     // batch size of the one in-flight delete, if any
}

func replayDir(t *testing.T, dir string) []pq.KV {
	t.Helper()
	// pqd writes through the platform-default backend; open the same one.
	var store kv.Store
	var err error
	if kv.MmapSupported {
		store, err = kv.OpenMmap(dir, 0)
	} else {
		store, err = kv.OpenFile(dir)
	}
	if err != nil {
		t.Fatalf("open store %s: %v", dir, err)
	}
	defer store.Close()
	items, err := durable.ReplayStore(store)
	if err != nil {
		t.Fatalf("ReplayStore(%s): %v", dir, err)
	}
	return items
}

func TestKillRecoverConserve(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and fsyncs; skipped in -short")
	}
	for _, fam := range []string{"klsm128", "multiq-s4-b8", "linden"} {
		t.Run(fam, func(t *testing.T) {
			const (
				workers = 4
				batch   = 4
				target  = 1200 // acked ops across all workers before the kill
			)
			dir := t.TempDir()
			durDir := filepath.Join(dir, "wal")
			qid := fam + "#kill" // instance tag: exercises per-id log subdirs
			args := []string{"-addr", "127.0.0.1:0", "-durable", durDir, "-snap-every", "100000"}

			child, addr := spawnPQD(t, args...)

			var acked atomic.Uint64
			logs := make([]workerLog, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lg := &logs[w]
					c, err := netpq.Dial(addr, qid)
					if err != nil {
						t.Errorf("worker %d dial: %v", w, err)
						return
					}
					defer c.Close()
					ins := make([]pq.KV, batch)
					del := make([]pq.KV, batch)
					seq := uint64(0)
					for i := 0; ; i++ {
						if i%4 == 3 { // one delete per three insert batches: queue grows
							n, err := c.DeleteMinN(del, batch)
							if err != nil {
								lg.unackedDelMax = batch
								return
							}
							lg.ackedDel = append(lg.ackedDel, del[:n]...)
						} else {
							for j := range ins {
								v := uint64(w)<<32 | seq
								seq++
								ins[j] = pq.KV{Key: killKey(v), Value: v}
							}
							if err := c.InsertN(ins); err != nil {
								lg.unackedIns = append(lg.unackedIns, ins...)
								return
							}
							lg.ackedIns = append(lg.ackedIns, ins...)
						}
						acked.Add(1)
					}
				}(w)
			}

			deadline := time.Now().Add(30 * time.Second)
			for acked.Load() < target {
				if time.Now().After(deadline) {
					child.Process.Kill()
					child.Wait()
					t.Fatalf("only %d/%d ops acked before deadline", acked.Load(), target)
				}
				time.Sleep(2 * time.Millisecond)
			}
			// SIGKILL: no shutdown path, no final snapshot, no fsync beyond
			// what group commit already acknowledged.
			child.Process.Kill()
			child.Wait()
			wg.Wait()

			// Forensics: replay a copy of the log directory as it was at
			// death, twice — recovery must be deterministic.
			qdir := filepath.Join(durDir, qid)
			forensic := filepath.Join(dir, "forensic")
			copyDir(t, qdir, forensic)
			replayA := replayDir(t, forensic)
			replayB := replayDir(t, forensic)
			if len(replayA) != len(replayB) {
				t.Fatalf("forensic replay nondeterministic: %d vs %d items", len(replayA), len(replayB))
			}
			for i := range replayA {
				if replayA[i] != replayB[i] {
					t.Fatalf("forensic replay diverges at %d: %+v vs %+v", i, replayA[i], replayB[i])
				}
			}

			// Restart over the same directory and drain everything.
			child2, addr2 := spawnPQD(t, args...)
			defer func() {
				if child2.Process != nil {
					child2.Process.Kill()
					child2.Wait()
				}
			}()
			c, err := netpq.Dial(addr2, qid)
			if err != nil {
				t.Fatalf("dial after restart: %v", err)
			}
			var drained []pq.KV
			dst := make([]pq.KV, 512)
			for empties := 0; empties < 3; {
				got, err := c.DeleteMinN(dst, len(dst))
				if err != nil {
					t.Fatalf("drain: %v", err)
				}
				if got == 0 {
					empties++
					continue
				}
				empties = 0
				drained = append(drained, dst[:got]...)
			}
			c.Close()

			// The restarted server's live set must be exactly the forensic
			// replay: recovery is the replay.
			if len(drained) != len(replayA) {
				t.Fatalf("drained %d items but forensic replay has %d", len(drained), len(replayA))
			}
			inReplay := make(map[pq.KV]bool, len(replayA))
			for _, it := range replayA {
				inReplay[it] = true
			}
			for _, it := range drained {
				if !inReplay[it] {
					t.Fatalf("drained item %+v absent from forensic replay", it)
				}
			}

			// Conservation accounting.
			ackedIns := make(map[pq.KV]bool)
			sent := make(map[pq.KV]bool) // acked + in-flight inserts
			ackedDel := make(map[pq.KV]bool)
			lostAllowance := 0
			for w := range logs {
				for _, it := range logs[w].ackedIns {
					ackedIns[it] = true
					sent[it] = true
				}
				for _, it := range logs[w].unackedIns {
					sent[it] = true
				}
				for _, it := range logs[w].ackedDel {
					ackedDel[it] = true
				}
				lostAllowance += logs[w].unackedDelMax
			}
			seen := make(map[pq.KV]bool, len(drained))
			for _, it := range drained {
				if !sent[it] {
					t.Fatalf("phantom: drained %+v was never sent by any client", it)
				}
				if ackedDel[it] {
					t.Fatalf("resurrection: %+v was acknowledged deleted before the kill", it)
				}
				if seen[it] {
					t.Fatalf("duplicate: %+v drained twice", it)
				}
				seen[it] = true
			}
			lost := 0
			for it := range ackedIns {
				if !ackedDel[it] && !seen[it] {
					lost++
				}
			}
			if lost > lostAllowance {
				t.Fatalf("lost %d acknowledged inserts; only %d in-flight delete slots can explain losses",
					lost, lostAllowance)
			}
			t.Logf("%s: acked=%d drained=%d lost=%d (allowance %d)", fam, acked.Load(), len(drained), lost, lostAllowance)

			// Graceful SIGTERM: final snapshot + sync; the directory must
			// then replay to empty.
			if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			if err := child2.Wait(); err != nil {
				t.Fatalf("graceful shutdown exited with error: %v", err)
			}
			if left := replayDir(t, qdir); len(left) != 0 {
				t.Fatalf("drained and gracefully stopped, but directory replays %d live items", len(left))
			}
		})
	}
}
