// Command pqd serves registry priority queues over TCP using the netpq
// binary protocol (PROTOCOL.md). Any queue the cpq registry can build —
// "klsm4096", "multiq-s4-b8", "linden", ... — becomes reachable from
// other processes, and one server can host several independent instances
// of a spec ("linden#bids", "linden#asks") for applications like the
// limit-order book in examples/orderbook.
//
// Each connection serves one queue session: the Hello handshake names
// the queue, the server acquires a pq.Pool handle for the connection,
// and disconnecting releases it (flushing any buffered items back, so a
// client crash never strands elements in a handle buffer). Requests
// pipeline freely; responses are per-connection FIFO. Backpressure and
// the slow-consumer eviction policy are described in DESIGN.md §7.
//
//	pqd                          # serve the full registry on 127.0.0.1:9410
//	pqd -addr :9410 -queues klsm4096,multiq-s4-b8 -static
//	pqd -telemetry               # print counter table on shutdown
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// live connections are dropped (their handles flush back), and the final
// stats line — plus the telemetry counter table with -telemetry — goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/netpq"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9410", "listen address")
		defQ     = flag.String("queue", "", "default queue spec for Hello frames with an empty queue id")
		preloadF = flag.String("queues", "", "comma-separated queue ids to instantiate at startup (e.g. klsm4096,linden#bids,linden#asks)")
		static   = flag.Bool("static", false, "serve only preloaded queues; reject Hello frames naming anything else")
		threads  = flag.Int("threads", 0, "handle-pool sizing hint per queue (0 = GOMAXPROCS)")
		wq       = flag.Int("write-queue", 0, "per-connection response queue depth in frames (0 = default)")
		stall    = flag.Duration("stall-timeout", 0, "slow-consumer eviction threshold (0 = default 5s)")
		telemF   = flag.Bool("telemetry", false, "collect queue-internals counters; print the table on shutdown (DESIGN.md §5, §7)")
	)
	flag.Parse()
	telemetry.Enabled = *telemF

	opts := netpq.Options{
		NewQueue: func(spec string, handles int) (pq.Queue, error) {
			if *threads > 0 {
				handles = *threads
			}
			return cpq.NewQueue(spec, cpq.Options{Threads: handles})
		},
		DefaultQueue: *defQ,
		Preload:      cli.ParseList(*preloadF),
		Static:       *static,
		WriteQueue:   *wq,
		StallTimeout: *stall,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pqd: "+format+"\n", args...)
		},
	}
	srv, err := netpq.NewServer(opts)
	exitOn(err)
	ln, err := net.Listen("tcp", *addr)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "pqd: listening on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pqd: %s, shutting down\n", s)
		srv.Close()
		<-done
	case err := <-done:
		// Listener failed underneath us; report and fall through to stats.
		if err != nil {
			fmt.Fprintln(os.Stderr, "pqd:", err)
		}
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"pqd: conns=%d frames in/out=%d/%d items in/out=%d/%d stalls=%d drops=%d\n",
		st.ConnsOpened, st.FramesIn, st.FramesOut, st.ItemsIn, st.ItemsOut,
		st.WriteStalls, st.Drops)
	if *telemF {
		printTelemetry(telemetry.Capture())
	}
}

// printTelemetry writes the nonzero counters in the pqbench table format:
// the socket counters (net-*) plus whatever the served queues incremented.
func printTelemetry(snap telemetry.Snapshot) {
	if snap.Zero() {
		fmt.Fprintln(os.Stderr, "pqd: telemetry: no events recorded")
		return
	}
	fmt.Fprintln(os.Stderr, "pqd: telemetry counters:")
	for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
		if v := snap.Counts[c]; v != 0 {
			fmt.Fprintf(os.Stderr, "  %-22s %12d  %s\n", c.Name(), v, c.Help())
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqd:", err)
		os.Exit(1)
	}
}
