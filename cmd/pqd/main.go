// Command pqd serves registry priority queues over TCP using the netpq
// binary protocol (PROTOCOL.md). Any queue the cpq registry can build —
// "klsm4096", "multiq-s4-b8", "linden", ... — becomes reachable from
// other processes, and one server can host several independent instances
// of a spec ("linden#bids", "linden#asks") for applications like the
// limit-order book in examples/orderbook.
//
// Each connection serves one queue session: the Hello handshake names
// the queue, the server acquires a pq.Pool handle for the connection,
// and disconnecting releases it (flushing any buffered items back, so a
// client crash never strands elements in a handle buffer). Requests
// pipeline freely; responses are per-connection FIFO. Backpressure and
// the slow-consumer eviction policy are described in DESIGN.md §7.
//
// With -durable DIR every served queue instance is wrapped in the
// group-commit write-ahead log (DESIGN.md §8) under its own
// subdirectory of DIR, keyed by the full queue id — "linden#bids" and
// "linden#asks" recover independently. A restarted pqd pointed at the
// same DIR replays each instance's snapshot and log tail before serving
// it, so acknowledged items survive a crash of the daemon.
//
//	pqd                          # serve the full registry on 127.0.0.1:9410
//	pqd -addr :9410 -queues klsm4096,multiq-s4-b8 -static
//	pqd -durable /var/lib/pqd -queues linden#bids,linden#asks
//	pqd -telemetry               # print counter table on shutdown
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// live connections are dropped (their handles flush back), every queue
// is closed — a durable queue takes its final snapshot and fsyncs here
// — and the final stats line (plus the telemetry counter table with
// -telemetry, plus any -cpuprofile/-memprofile/-trace output) goes out
// before the process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"cpq"
	"cpq/internal/cli"
	"cpq/internal/netpq"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9410", "listen address")
		defQ     = flag.String("queue", "", "default queue spec for Hello frames with an empty queue id")
		preloadF = flag.String("queues", "", "comma-separated queue ids to instantiate at startup (e.g. klsm4096,linden#bids,linden#asks)")
		static   = flag.Bool("static", false, "serve only preloaded queues; reject Hello frames naming anything else")
		threads  = flag.Int("threads", 0, "handle-pool sizing hint per queue (0 = GOMAXPROCS)")
		wq       = flag.Int("write-queue", 0, "per-connection response queue depth in frames (0 = default)")
		stall    = flag.Duration("stall-timeout", 0, "slow-consumer eviction threshold (0 = default 5s)")
		durableF = flag.String("durable", "", "write-ahead log `dir`: wrap every served queue durably, one subdirectory per queue id")
		window   = flag.Duration("commit-window", 0, "durable group-commit dally window (0 = commit cohorts as they form)")
		snapEv   = flag.Int("snap-every", 0, "durable snapshot cadence in logged ops per queue (0 = explicit/final snapshots only)")
		segBytes = flag.Int("seg-bytes", 0, "durable WAL segment size in bytes (0 = default 1 MiB; also the mmap preallocation unit)")
		backend  = flag.String("wal-backend", "", `durable store backend: "mmap", "file", or empty for the platform default`)
		telemF   = flag.Bool("telemetry", false, "collect queue-internals counters; print the table on shutdown (DESIGN.md §5, §7)")
		prof     = cli.NewProfiler(flag.CommandLine)
	)
	flag.Parse()
	telemetry.Enabled = *telemF
	cli.ValidateSnapEvery("pqd", *snapEv)
	cli.ValidateSegBytes("pqd", *segBytes)
	cli.ValidateWALBackend("pqd", *backend)

	stopProf, err := prof.Start()
	exitOn(err)
	defer stopProf()
	failf := func(err error) { // exitOn that flushes profiles first
		if err != nil {
			fmt.Fprintln(os.Stderr, "pqd:", err)
			stopProf()
			os.Exit(1)
		}
	}

	opts := netpq.Options{
		NewQueue: func(spec, id string, handles int) (pq.Queue, error) {
			if *threads > 0 {
				handles = *threads
			}
			o := cpq.Options{Threads: handles}
			if *durableF != "" {
				// Key the log directory by the full id, not the spec:
				// "linden#bids" and "linden#asks" must recover
				// independently.
				o.Durable = &cpq.DurableOptions{
					Dir:               filepath.Join(*durableF, id),
					GroupCommitWindow: *window,
					SnapshotEvery:     *snapEv,
					SegmentBytes:      *segBytes,
					Backend:           *backend,
				}
			}
			return cpq.NewQueue(spec, o)
		},
		DefaultQueue: *defQ,
		Preload:      cli.ParseList(*preloadF),
		Static:       *static,
		WriteQueue:   *wq,
		StallTimeout: *stall,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pqd: "+format+"\n", args...)
		},
	}
	srv, err := netpq.NewServer(opts)
	failf(err)
	ln, err := net.Listen("tcp", *addr)
	failf(err)
	fmt.Fprintf(os.Stderr, "pqd: listening on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pqd: %s, shutting down\n", s)
		srv.Close()
		<-done
	case err := <-done:
		// Listener failed underneath us; report and fall through to stats.
		if err != nil {
			fmt.Fprintln(os.Stderr, "pqd:", err)
		}
	}
	// Close every served queue after the handlers have drained: pools
	// flush their handles back, and a -durable queue takes its final
	// snapshot and fsyncs the log, so a graceful stop leaves a state
	// that recovers without replaying any WAL tail.
	closeErr := srv.CloseQueues()
	if closeErr != nil {
		fmt.Fprintln(os.Stderr, "pqd:", closeErr)
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"pqd: conns=%d frames in/out=%d/%d items in/out=%d/%d stalls=%d drops=%d\n",
		st.ConnsOpened, st.FramesIn, st.FramesOut, st.ItemsIn, st.ItemsOut,
		st.WriteStalls, st.Drops)
	if *telemF {
		printTelemetry(telemetry.Capture())
	}
	if closeErr != nil {
		stopProf() // flush profiles: os.Exit skips deferred calls
		os.Exit(1)
	}
}

// printTelemetry writes the nonzero counters in the pqbench table format:
// the socket counters (net-*) plus whatever the served queues incremented.
func printTelemetry(snap telemetry.Snapshot) {
	if snap.Zero() {
		fmt.Fprintln(os.Stderr, "pqd: telemetry: no events recorded")
		return
	}
	fmt.Fprintln(os.Stderr, "pqd: telemetry counters:")
	for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
		if v := snap.Counts[c]; v != 0 {
			fmt.Fprintf(os.Stderr, "  %-22s %12d  %s\n", c.Name(), v, c.Help())
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqd:", err)
		os.Exit(1)
	}
}
