# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench bench-quick repro verify examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (slow on small machines).
race:
	$(GO) test -race ./...

# Every paper figure/table as a testing.B bench, fixed op count for speed.
bench-quick:
	$(GO) test -bench=. -benchmem -benchtime=50000x ./...

# Paper-style benches with time-based sampling (slower, steadier numbers).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full experiment grid into report.md.
repro:
	$(GO) run ./cmd/pqrepro -out report.md

# Check claimed relaxation bounds against observed rank errors.
verify:
	$(GO) run ./cmd/pqverify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sssp
	$(GO) run ./examples/dessim
	$(GO) run ./examples/branchbound
	$(GO) run ./examples/pqsort

clean:
	$(GO) clean ./...
