# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench bench-quick bench-engineered bench-klsm bench-skiplist check chaos repro verify profile examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (slow on small machines).
race:
	$(GO) test -race ./...

# CI gate: vet + build everything, then the race-sensitive packages (the
# engineered MultiQueue's buffer stealing, the k-LSM's pooled hot path with
# spy/run-buffer stealing, the packed-word skiplist substrate and its
# lock-free queues, the quality replay, and the chaos checker) under the
# race detector, plus a short-budget chaos pass over the whole registry.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/core/ ./internal/multiq/ ./internal/skiplist/ ./internal/linden/ ./internal/spray/ ./internal/quality/ ./internal/chaos/
	$(GO) run -race ./cmd/pqverify -chaos -ops 1500

# Fault-injection stress pass: every registry queue under seeded schedule
# perturbations and forced CAS/try-lock failures, with item-conservation,
# emptiness-oracle, Flusher-contract and relaxation-bound checking (see
# DESIGN.md §6). A failure prints a replay line; rerun it verbatim to
# reproduce the same injected decision sequence.
#   make chaos                # default budget
#   make chaos CHAOS_OPS=50000 CHAOS_THREADS=8
CHAOS_OPS     ?= 10000
CHAOS_THREADS ?= 4
chaos:
	$(GO) run -race ./cmd/pqverify -chaos -ops $(CHAOS_OPS) -threads $(CHAOS_THREADS)

# The engineered-MultiQueue acceptance bench (seed multiq vs. multiq-s4-b8
# vs. klsm4096 at 8 threads); benchstat-comparable output.
bench-engineered:
	$(GO) test -bench=MultiQueueEngineered -benchmem -benchtime=1s -count=3 .

# The k-LSM acceptance benches: the fig-4a uniform-workload cell at 8 threads
# for klsm128/256/4096 plus the single-threaded insert+delete-min allocation
# microbench; benchstat-comparable output, allocs/op via -benchmem.
bench-klsm:
	$(GO) test -bench='^BenchmarkKLSM' -benchmem -benchtime=1s -count=3 .

# The skiplist-substrate acceptance benches: the fig-4a uniform-workload
# cell at 8 threads for linden/spray/lotan plus the single-threaded linden
# insert+delete-min allocation microbench; benchstat-comparable output,
# allocs/op via -benchmem.
bench-skiplist:
	$(GO) test -bench='^BenchmarkSkiplistPQ$$|^BenchmarkLindenInsertDeleteMin$$' -benchmem -benchtime=1s -count=3 .

# Every paper figure/table as a testing.B bench, fixed op count for speed.
bench-quick:
	$(GO) test -bench=. -benchmem -benchtime=50000x ./...

# Paper-style benches with time-based sampling (slower, steadier numbers).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full experiment grid into report.md.
repro:
	$(GO) run ./cmd/pqrepro -out report.md

# Check claimed relaxation bounds against observed rank errors.
verify:
	$(GO) run ./cmd/pqverify

# Profile one queue on the fig-4a cell: CPU + heap profiles and queue
# telemetry under ./profiles/. Inspect with `go tool pprof`.
#   make profile QUEUE=klsm4096 THREADS=8 DURATION=2s
QUEUE    ?= klsm4096
THREADS  ?= 8
DURATION ?= 2s
profile:
	mkdir -p profiles
	$(GO) run ./cmd/pqbench -queues $(QUEUE) -threads $(THREADS) \
		-duration $(DURATION) -reps 1 -telemetry \
		-cpuprofile profiles/$(QUEUE)-t$(THREADS).cpu.pprof \
		-memprofile profiles/$(QUEUE)-t$(THREADS).mem.pprof \
		| tee profiles/$(QUEUE)-t$(THREADS).telemetry.txt
	@echo "profiles written to ./profiles/ (go tool pprof profiles/$(QUEUE)-t$(THREADS).cpu.pprof)"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sssp
	$(GO) run ./examples/dessim
	$(GO) run ./examples/branchbound
	$(GO) run ./examples/pqsort

clean:
	$(GO) clean ./...
