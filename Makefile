# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench bench-quick bench-engineered bench-klsm bench-skiplist bench-grid bench-churn bench-net bench-durable bench-recover pqd-smoke durable check chaos repro verify trend profile examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (slow on small machines).
race:
	$(GO) test -race ./...

# CI gate: vet + build everything, then the race-sensitive packages (the
# engineered MultiQueue's buffer stealing, the k-LSM's pooled hot path with
# spy/run-buffer stealing, the packed-word skiplist substrate and its
# lock-free queues, the handle pool with its steal path and 0-alloc gate,
# the harness churn mode, the quality replay, and the chaos checker) under
# the race detector, plus a short-budget chaos pass over the whole registry
# (scalar, batch widths, and pooled handle lifecycles), a smoke run of the
# batch-width grid, and a self-diff smoke of the trend tool.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/pq/ ./internal/core/ ./internal/multiq/ ./internal/skiplist/ ./internal/linden/ ./internal/spray/ ./internal/lotan/ ./internal/harness/ ./internal/quality/ ./internal/chaos/ ./internal/netpq/
	$(GO) test -race -run TestPoolChurn .
	$(MAKE) durable
	$(GO) run -race ./cmd/pqverify -chaos -ops 1500
	$(GO) run -race ./cmd/pqverify -chaos -ops 1500 -batch 8
	$(GO) run -race ./cmd/pqverify -chaos -ops 1500 -pool
	$(GO) run ./cmd/pqgrid -smoke > /dev/null
	$(GO) run ./cmd/pqload -smoke > /dev/null
	$(GO) run ./cmd/pqbench -recover -recover-items 5000 -recover-ages 0,5000 \
		-reps 2 -queues linden -out "" > /dev/null
	$(GO) run ./cmd/pqtrend -q BENCH_6.json BENCH_6.json
	$(GO) run ./cmd/pqtrend -q BENCH_9.json BENCH_10.json

# Fault-injection stress pass: every registry queue under seeded schedule
# perturbations and forced CAS/try-lock failures, with item-conservation,
# emptiness-oracle, Flusher-contract and relaxation-bound checking (see
# DESIGN.md §6). A failure prints a replay line; rerun it verbatim to
# reproduce the same injected decision sequence.
#   make chaos                # default budget (batch width 8, see CHAOS_BATCH)
#   make chaos CHAOS_OPS=50000 CHAOS_THREADS=8 CHAOS_BATCH=1
# CHAOS_BATCH > 1 interleaves batch (InsertN/DeleteMinN) and scalar calls
# on every worker, stressing the batch hot paths of DESIGN.md §4c.
CHAOS_OPS     ?= 10000
CHAOS_THREADS ?= 4
CHAOS_BATCH   ?= 8
chaos:
	$(GO) run -race ./cmd/pqverify -chaos -ops $(CHAOS_OPS) -threads $(CHAOS_THREADS) -batch $(CHAOS_BATCH)

# The engineered-MultiQueue acceptance bench (seed multiq vs. multiq-s4-b8
# vs. klsm4096 at 8 threads); benchstat-comparable output.
bench-engineered:
	$(GO) test -bench=MultiQueueEngineered -benchmem -benchtime=1s -count=3 .

# The k-LSM acceptance benches: the fig-4a uniform-workload cell at 8 threads
# for klsm128/256/4096 plus the single-threaded insert+delete-min allocation
# microbench; benchstat-comparable output, allocs/op via -benchmem.
bench-klsm:
	$(GO) test -bench='^BenchmarkKLSM' -benchmem -benchtime=1s -count=3 .

# The skiplist-substrate acceptance benches: the fig-4a uniform-workload
# cell at 8 threads for linden/spray/lotan plus the single-threaded linden
# insert+delete-min allocation microbench; benchstat-comparable output,
# allocs/op via -benchmem.
bench-skiplist:
	$(GO) test -bench='^BenchmarkSkiplistPQ$$|^BenchmarkLindenInsertDeleteMin$$' -benchmem -benchtime=1s -count=3 .

# The batch-width comparison grid (DESIGN.md §4c): fig-4a t8 for a queue
# cross-section at widths {1,8}, reps interleaved across widths, plus the
# goroutine-churn cells (pool vs naive handle lifecycle), emitted as
# BENCH_7.json (MOps/s ±CI, allocs/op, handle accounting, git SHA).
bench-grid:
	$(GO) run ./cmd/pqgrid

# The socket-path grid: pqload self-hosts an in-process pqd on a loopback
# socket and measures the fig-4a cell through it (8 connections, batch 8,
# 32 requests pipelined per connection), emitted as BENCH_8.json with
# "net:"-prefixed cells so pqtrend keeps the regimes distinct. Point it at
# a running server with ADDR=host:port.
ADDR ?=
bench-net:
	$(GO) run ./cmd/pqload $(if $(ADDR),-addr $(ADDR))

# End-to-end socket smoke (used by `make check`): self-hosted server on an
# ephemeral port, a short pqload burst, clean shutdown, nonzero ops gate.
pqd-smoke:
	$(GO) run ./cmd/pqload -smoke > /dev/null

# Durability gate (used by `make check`): the WAL/snapshot/recovery suite
# under the race detector, including the chaos checker over durable-
# wrapped queues with the wal-fsync failpoint, the crash-capture tests at
# the fsync boundary and at every concurrent-snapshot phase boundary,
# the producer-stall test, and the end-to-end kill/recover/conserve test
# that SIGKILLs a durable pqd child mid-traffic and proves the restart
# conserves every acknowledged item (DESIGN.md §8).
durable:
	$(GO) test -race -count=1 ./internal/durable/...
	$(GO) test -race -count=1 -run TestKillRecoverConserve ./cmd/pqd/

# The durable-tier acceptance bench: fig-4a cell over durable-wrapped
# queues on a real WAL (mmap segments where the platform supports them),
# group commit vs the fsync-per-op naive baseline, with fsync
# accounting; batch width 8 mirrors the socket grid so the tiers are
# comparable. Emitted with "dur:"/"dur-naive:" cells so pqtrend keeps
# the regimes distinct.
bench-durable:
	$(GO) run ./cmd/pqbench -durable -batch 8 -threads 1,2,4,8 -reps 3

# The durable acceptance grid plus the recovery-time curve in one
# report: the bench-durable cells and "rec:" cells (cold-start replay
# rate at several snapshot ages), emitted as BENCH_10.json. `make check`
# gates the dur: cells of this report against BENCH_9.json.
bench-recover:
	$(GO) run ./cmd/pqbench -durable -recover -batch 8 -threads 1,2,4,8 \
		-reps 5 -out BENCH_10.json

# The goroutine-churn acceptance bench alone: pool vs naive lifecycle on
# the churn acceptance queues, with abandonment, as a readable table.
bench-churn:
	$(GO) run ./cmd/pqbench -churn 100000 -churn-abandon 64 -threads 8 \
		-queues klsm4096,multiq -prefill 100000 -reps 3
	$(GO) run ./cmd/pqbench -churn 100000 -churn-abandon 64 -threads 8 \
		-queues klsm4096,multiq -prefill 100000 -reps 3 -churn-naive

# Every paper figure/table as a testing.B bench, fixed op count for speed.
bench-quick:
	$(GO) test -bench=. -benchmem -benchtime=50000x ./...

# Paper-style benches with time-based sampling (slower, steadier numbers).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full experiment grid into report.md.
repro:
	$(GO) run ./cmd/pqrepro -out report.md

# Check claimed relaxation bounds against observed rank errors.
verify:
	$(GO) run ./cmd/pqverify

# Diff the two newest BENCH_*.json reports; nonzero exit when any cell's
# MOps/s regressed beyond the CI95 overlap (see cmd/pqtrend).
trend:
	$(GO) run ./cmd/pqtrend

# Profile one queue on the fig-4a cell: CPU + heap profiles and queue
# telemetry under ./profiles/. Inspect with `go tool pprof`.
#   make profile QUEUE=klsm4096 THREADS=8 DURATION=2s
QUEUE    ?= klsm4096
THREADS  ?= 8
DURATION ?= 2s
profile:
	mkdir -p profiles
	$(GO) run ./cmd/pqbench -queues $(QUEUE) -threads $(THREADS) \
		-duration $(DURATION) -reps 1 -telemetry \
		-cpuprofile profiles/$(QUEUE)-t$(THREADS).cpu.pprof \
		-memprofile profiles/$(QUEUE)-t$(THREADS).mem.pprof \
		| tee profiles/$(QUEUE)-t$(THREADS).telemetry.txt
	@echo "profiles written to ./profiles/ (go tool pprof profiles/$(QUEUE)-t$(THREADS).cpu.pprof)"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sssp
	$(GO) run ./examples/dessim
	$(GO) run ./examples/branchbound
	$(GO) run ./examples/pqsort
	$(GO) run ./examples/orderbook -orders 5000

clean:
	$(GO) clean ./...
