package cpq

import (
	"container/heap"
	"testing"

	"cpq/internal/rng"
)

// Tests for the batch-first API (DESIGN.md §4c): allocation gates on the
// native batch hot paths, a batch/scalar interleaving oracle over the whole
// registry, and a fuzz target checking that arbitrary batch+scalar mixes
// conserve items. The scalar alloc gates live next to their substrates
// (internal/*/alloc_test.go); these cover the InsertN/DeleteMinN entry
// points through the public registry surface.

const batchValueTag = 0x9e3779b97f4a7c15

// warmBatch returns a handle warmed past arena/pool/heap-capacity
// transients with a settled batch cadence, plus reusable scratch buffers.
func warmBatch(t *testing.T, name string, width int) (Handle, []KV, []KV, *rng.Xoroshiro) {
	t.Helper()
	q, err := New(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	r := rng.New(42)
	kvs := make([]KV, width)
	dst := make([]KV, width)
	for i := 0; i < 2048/width; i++ {
		for j := range kvs {
			kvs[j] = KV{Key: r.Uint64() & 0xffff}
		}
		InsertN(h, kvs)
	}
	for i := 0; i < 4096/width; i++ {
		for j := range kvs {
			kvs[j] = KV{Key: r.Uint64() & 0xffff}
		}
		InsertN(h, kvs)
		DeleteMinN(h, dst, width)
	}
	return h, kvs, dst, r
}

// TestBatchAllocGates pins the allocation behaviour of the native batch
// paths at width 8: a steady-state InsertN+DeleteMinN pair must amortize to
// zero allocations per ITEM (the occasional slab refill or k-LSM merge is
// allowed, bounded per batch CALL). slsm256 is exempt — its shared-only
// design allocates a published block list per mutation by construction.
func TestBatchAllocGates(t *testing.T) {
	const width = 8
	cases := []struct {
		name string
		// max allocs per batch call (width items) for the insert and the
		// delete side; 0 means strictly allocation-free.
		insBound, delBound float64
	}{
		{"klsm128", 1.0, 1.0}, // block merges amortize across calls
		{"klsm4096", 1.0, 1.0},
		{"multiq", 0, 0},
		{"multiq-s4-b8", 0, 0},
		{"globallock", 0, 0},
		{"linden", 1.0, 1.0}, // slab refills; restructure find is free
		{"spray", 1.0, 0},
		{"lotan", 1.0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h, kvs, dst, r := warmBatch(t, tc.name, width)
			ins := testing.AllocsPerRun(1000, func() {
				for j := range kvs {
					kvs[j] = KV{Key: r.Uint64() & 0xffff}
				}
				InsertN(h, kvs)
			})
			if ins > tc.insBound {
				t.Errorf("InsertN(%d) allocates %.3f allocs/call at steady state, want <= %.1f",
					width, ins, tc.insBound)
			}
			// Stock enough items that the measured deletes never hit empty.
			for i := 0; i < 1100; i++ {
				for j := range kvs {
					kvs[j] = KV{Key: r.Uint64() & 0xffff}
				}
				InsertN(h, kvs)
			}
			del := testing.AllocsPerRun(1000, func() {
				if DeleteMinN(h, dst, width) == 0 {
					t.Fatal("queue ran empty mid-measurement")
				}
			})
			if del > tc.delBound {
				t.Errorf("DeleteMinN(%d) allocates %.3f allocs/call at steady state, want <= %.1f",
					width, del, tc.delBound)
			}
		})
	}
}

// TestBatchScalarInterleavingOracle interleaves batch and scalar operations
// on every registry queue (native batch paths and the generic fallback
// alike) against a reference heap: items are conserved with full key/value
// fidelity, and on the strict queues every batch delete returns exactly the
// keys the oracle would pop.
func TestBatchScalarInterleavingOracle(t *testing.T) {
	strict := map[string]bool{}
	for _, n := range strictQueues {
		strict[n] = true
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			var oracle oracleHeap
			live := map[uint64]int{} // key -> live count (conservation)
			r := rng.New(777)
			kvs := make([]KV, 8)
			dst := make([]KV, 8)
			take := func(k, v uint64) {
				if v != k^batchValueTag {
					t.Fatalf("value corrupted: key %d value %#x", k, v)
				}
				if live[k] == 0 {
					t.Fatalf("deleted key %d more times than inserted", k)
				}
				live[k]--
			}
			for i := 0; i < 600; i++ {
				switch i % 4 {
				case 0: // batch insert
					for j := range kvs {
						k := r.Uint64() & 0xfff
						kvs[j] = KV{Key: k, Value: k ^ batchValueTag}
						live[k]++
						heap.Push(&oracle, Item{Key: k})
					}
					InsertN(h, kvs) // may reorder kvs in place
				case 1: // scalar insert
					k := r.Uint64() & 0xfff
					live[k]++
					heap.Push(&oracle, Item{Key: k})
					h.Insert(k, k^batchValueTag)
				case 2: // batch delete
					got := DeleteMinN(h, dst, 8)
					for j := 0; j < got; j++ {
						take(dst[j].Key, dst[j].Value)
						if strict[name] {
							want := heap.Pop(&oracle).(Item).Key
							if dst[j].Key != want {
								t.Fatalf("batch delete %d returned key %d, oracle pops %d",
									j, dst[j].Key, want)
							}
						} else {
							removeKey(&oracle, dst[j].Key)
						}
					}
				case 3: // scalar delete
					if k, v, ok := h.DeleteMin(); ok {
						take(k, v)
						if strict[name] {
							want := heap.Pop(&oracle).(Item).Key
							if k != want {
								t.Fatalf("scalar delete returned key %d, oracle pops %d", k, want)
							}
						} else {
							removeKey(&oracle, k)
						}
					}
				}
			}
			// Drain (batch and scalar mixed) and check conservation.
			for {
				if got := DeleteMinN(h, dst, 8); got > 0 {
					for j := 0; j < got; j++ {
						take(dst[j].Key, dst[j].Value)
					}
					continue
				}
				k, v, ok := h.DeleteMin()
				if !ok {
					break
				}
				take(k, v)
			}
			for k, n := range live {
				if n != 0 {
					t.Fatalf("conservation violated: key %d has %d undeleted copies", k, n)
				}
			}
		})
	}
}

// FuzzBatchScalarConservation drives one queue through an arbitrary mix of
// batch and scalar operations decoded from the fuzz input and checks that
// no item is lost, duplicated, or returned with a foreign value.
func FuzzBatchScalarConservation(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x41, 0x82, 0xc3, 0x10, 0x52, 0x93, 0xd4})
	f.Add(uint64(7), []byte{0xff, 0xfe, 0x01, 0x02, 0x80, 0x81, 0x40, 0x00, 0xaa})
	f.Add(uint64(12), []byte{0x03, 0x03, 0x03, 0x43, 0x43, 0x83, 0x83, 0xc3, 0xc3})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		names := Names()
		name := names[seed%uint64(len(names))]
		q, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		h := q.Handle()
		if len(ops) > 512 {
			ops = ops[:512]
		}
		live := map[uint64]int{}
		r := rng.New(seed | 1)
		kvs := make([]KV, 16)
		dst := make([]KV, 16)
		take := func(k, v uint64) {
			if v != k^batchValueTag {
				t.Fatalf("%s: value corrupted: key %d value %#x", name, k, v)
			}
			if live[k] == 0 {
				t.Fatalf("%s: deleted key %d more times than inserted", name, k)
			}
			live[k]--
		}
		for _, b := range ops {
			width := int(b&0x3f)%len(kvs) + 1 // 1..16
			switch b >> 6 {
			case 0: // batch insert of `width` items
				for j := 0; j < width; j++ {
					k := r.Uint64() & 0x3ff
					kvs[j] = KV{Key: k, Value: k ^ batchValueTag}
					live[k]++
				}
				InsertN(h, kvs[:width])
			case 1: // scalar insert
				k := r.Uint64() & 0x3ff
				live[k]++
				h.Insert(k, k^batchValueTag)
			case 2: // batch delete of up to `width` items
				got := DeleteMinN(h, dst, width)
				for j := 0; j < got; j++ {
					take(dst[j].Key, dst[j].Value)
				}
			case 3: // scalar delete
				if k, v, ok := h.DeleteMin(); ok {
					take(k, v)
				}
			}
		}
		for {
			if got := DeleteMinN(h, dst, len(dst)); got > 0 {
				for j := 0; j < got; j++ {
					take(dst[j].Key, dst[j].Value)
				}
				continue
			}
			k, v, ok := h.DeleteMin()
			if !ok {
				break
			}
			take(k, v)
		}
		for k, n := range live {
			if n != 0 {
				t.Fatalf("%s: conservation violated: key %d has %d undeleted copies", name, k, n)
			}
		}
	})
}
