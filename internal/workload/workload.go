// Package workload implements the operation-mix policies of the paper's
// configurable benchmark (Section 2 and Appendix F):
//
//   - uniform: every thread performs insertions and deletions chosen
//     uniformly at random (50% each by default), keeping the queue in a
//     steady state;
//   - split: half the threads perform only insertions, the other half only
//     deletions — the locality stress case in which the k-LSM's throughput
//     collapses (Figure 2);
//   - alternating: every thread strictly alternates insert, delete_min,
//     insert, ... (operation batch size one); despite the same 50/50 ratio
//     as uniform, the paper measures significantly different throughput
//     (Figures 8 and 9).
package workload

import (
	"fmt"
	"strings"

	"cpq/internal/rng"
)

// Kind identifies an operation-mix policy.
type Kind int

const (
	// Uniform randomly mixes insertions and deletions per thread.
	Uniform Kind = iota
	// Split dedicates half the threads to insertions, half to deletions.
	Split
	// Alternating strictly alternates insert and delete per thread.
	Alternating
)

// String returns the canonical benchmark name.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Split:
		return "split"
	case Alternating:
		return "alternating"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// All lists the supported workloads in display order.
func All() []Kind { return []Kind{Uniform, Split, Alternating} }

// Parse converts a benchmark name to a Kind.
func Parse(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform", "mixed":
		return Uniform, nil
	case "split":
		return Split, nil
	case "alternating", "alt":
		return Alternating, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q", s)
}

// Op is a single queue operation to perform.
type Op int

const (
	// Insert directs the worker to perform an insertion.
	Insert Op = iota
	// DeleteMin directs the worker to perform a deletion.
	DeleteMin
)

// Policy decides the next operation for one worker. Implementations are
// per-worker and not safe for concurrent use.
type Policy interface {
	// Next returns the next operation to perform.
	Next() Op
	// InsertOnly reports whether this worker never deletes (used by the
	// harness to skip delete-side bookkeeping for split inserters).
	InsertOnly() bool
}

// ForWorker builds the policy for worker number id out of total workers
// under workload k. insertFrac is the probability of an insertion in the
// Uniform workload (the paper uses 0.5 so queues stay in steady state);
// values outside (0,1) are clamped to 0.5. r must be the worker's private
// generator.
func ForWorker(k Kind, id, total int, insertFrac float64, r *rng.Xoroshiro) Policy {
	return ForWorkerBatched(k, id, total, insertFrac, 1, r)
}

// ForWorkerBatched is ForWorker with an explicit operation batch size for
// the Alternating workload: batch insertions followed by batch deletions.
// This is the paper's "operation batch size" parameter (Appendix F); batch
// size 1 is the plain alternating workload, and "choosing large batches
// would correspond to the sorting benchmark used in [Larkin-Sen-Tarjan]".
// Uniform and Split ignore the batch size.
func ForWorkerBatched(k Kind, id, total int, insertFrac float64, batch int, r *rng.Xoroshiro) Policy {
	if insertFrac <= 0 || insertFrac >= 1 {
		insertFrac = 0.5
	}
	if batch < 1 {
		batch = 1
	}
	switch k {
	case Uniform:
		return &uniformPolicy{r: r, insertFrac: insertFrac}
	case Split:
		// Even-numbered workers insert, odd-numbered delete, so any prefix
		// of workers 0..n-1 is (nearly) half/half, as in the paper.
		return fixedPolicy{insert: id%2 == 0}
	case Alternating:
		return &alternatingPolicy{batch: batch}
	default:
		panic("workload: invalid kind")
	}
}

type uniformPolicy struct {
	r          *rng.Xoroshiro
	insertFrac float64
}

func (p *uniformPolicy) Next() Op {
	if p.r.Float64() < p.insertFrac {
		return Insert
	}
	return DeleteMin
}

func (p *uniformPolicy) InsertOnly() bool { return false }

type fixedPolicy struct{ insert bool }

func (p fixedPolicy) Next() Op {
	if p.insert {
		return Insert
	}
	return DeleteMin
}

func (p fixedPolicy) InsertOnly() bool { return p.insert }

type alternatingPolicy struct {
	batch int
	pos   int // position within the current insert+delete super-batch
}

func (p *alternatingPolicy) Next() Op {
	op := Insert
	if p.pos >= p.batch {
		op = DeleteMin
	}
	p.pos++
	if p.pos == 2*p.batch {
		p.pos = 0
	}
	return op
}

func (p *alternatingPolicy) InsertOnly() bool { return false }
