package workload

import (
	"testing"

	"cpq/internal/rng"
)

func TestBatchedAlternation(t *testing.T) {
	for _, batch := range []int{1, 2, 16} {
		p := ForWorkerBatched(Alternating, 0, 4, 0.5, batch, rng.New(1))
		for round := 0; round < 5; round++ {
			for i := 0; i < batch; i++ {
				if op := p.Next(); op != Insert {
					t.Fatalf("batch %d round %d pos %d: got %v, want Insert", batch, round, i, op)
				}
			}
			for i := 0; i < batch; i++ {
				if op := p.Next(); op != DeleteMin {
					t.Fatalf("batch %d round %d pos %d: got %v, want DeleteMin", batch, round, i, op)
				}
			}
		}
	}
}

func TestBatchDefaultsToOne(t *testing.T) {
	a := ForWorker(Alternating, 0, 1, 0.5, rng.New(2))
	b := ForWorkerBatched(Alternating, 0, 1, 0.5, 0, rng.New(2)) // 0 clamps to 1
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			t.Fatal("ForWorker and batch=1 policies differ")
		}
	}
}

func TestBatchIgnoredByOtherWorkloads(t *testing.T) {
	// Split stays fixed regardless of batch.
	p := ForWorkerBatched(Split, 1, 2, 0.5, 64, rng.New(3))
	for i := 0; i < 10; i++ {
		if p.Next() != DeleteMin {
			t.Fatal("split deleter changed op under batch")
		}
	}
	// Uniform still balances regardless of batch.
	u := ForWorkerBatched(Uniform, 0, 2, 0.5, 64, rng.New(4))
	ins := 0
	for i := 0; i < 10000; i++ {
		if u.Next() == Insert {
			ins++
		}
	}
	if ins < 4500 || ins > 5500 {
		t.Fatalf("uniform inserted %d/10000 under batch", ins)
	}
}
