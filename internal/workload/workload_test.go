package workload

import (
	"testing"

	"cpq/internal/rng"
)

func TestStringRoundTrip(t *testing.T) {
	for _, k := range All() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse of unknown workload did not error")
	}
}

func TestUniformPolicyBalance(t *testing.T) {
	p := ForWorker(Uniform, 0, 8, 0.5, rng.New(1))
	if p.InsertOnly() {
		t.Fatal("uniform policy reports InsertOnly")
	}
	inserts := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Next() == Insert {
			inserts++
		}
	}
	if inserts < n*47/100 || inserts > n*53/100 {
		t.Fatalf("uniform policy inserted %d of %d", inserts, n)
	}
}

func TestUniformPolicyFraction(t *testing.T) {
	p := ForWorker(Uniform, 0, 8, 0.9, rng.New(2))
	inserts := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Next() == Insert {
			inserts++
		}
	}
	if inserts < n*87/100 || inserts > n*93/100 {
		t.Fatalf("0.9 policy inserted %d of %d", inserts, n)
	}
}

func TestUniformPolicyClampsDegenerateFraction(t *testing.T) {
	for _, f := range []float64{-1, 0, 1, 2} {
		p := ForWorker(Uniform, 0, 2, f, rng.New(3))
		inserts := 0
		for i := 0; i < 1000; i++ {
			if p.Next() == Insert {
				inserts++
			}
		}
		if inserts == 0 || inserts == 1000 {
			t.Fatalf("fraction %v produced one-sided policy", f)
		}
	}
}

func TestSplitPolicy(t *testing.T) {
	inserters := 0
	for id := 0; id < 8; id++ {
		p := ForWorker(Split, id, 8, 0.5, rng.New(4))
		first := p.Next()
		for i := 0; i < 100; i++ {
			if p.Next() != first {
				t.Fatalf("split worker %d changed operation", id)
			}
		}
		if first == Insert {
			if !p.InsertOnly() {
				t.Fatalf("inserter %d not InsertOnly", id)
			}
			inserters++
		} else if p.InsertOnly() {
			t.Fatalf("deleter %d claims InsertOnly", id)
		}
	}
	if inserters != 4 {
		t.Fatalf("%d of 8 split workers insert, want 4", inserters)
	}
}

func TestAlternatingPolicy(t *testing.T) {
	p := ForWorker(Alternating, 3, 8, 0.5, rng.New(5))
	if p.InsertOnly() {
		t.Fatal("alternating policy reports InsertOnly")
	}
	for i := 0; i < 100; i++ {
		want := Insert
		if i%2 == 1 {
			want = DeleteMin
		}
		if got := p.Next(); got != want {
			t.Fatalf("op %d = %v, want %v", i, got, want)
		}
	}
}
