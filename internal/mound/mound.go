// Package mound implements a lock-based Mound priority queue after Liu and
// Spear (ICPP 2012), listed in the paper's Appendix D: "a recent concurrent
// priority queue design based on a tree of sorted lists". The suite includes
// the lock-based variant; the lock-free variant in the original relies on
// DCAS, "which is not available natively on most current processors" (nor in
// Go's sync/atomic).
//
// A mound is a complete binary tree whose nodes hold sorted lists, with the
// invariant head(parent) <= head(child); the global minimum is the head of
// the root list. Because heads are non-decreasing along any root-to-leaf
// path, insertion can binary-search a randomly chosen path for the
// shallowest node whose head is >= the new key and push the key onto that
// node's list — an O(log log N) expected probe. delete_min pops the root
// head and restores the invariant by "moundifying": swapping whole lists
// toward the root, hand-over-hand, parent locked before child.
//
// Registry identifier: "mound"; strict at quiescence (cmd/pqverify checks
// rank 0 within stamping slack). The randomized insertion probe needs a
// per-goroutine RNG, which lives on the Handle — one more reason handles
// must not be shared between goroutines.
package mound

import (
	"math"
	"sync"
	"sync/atomic"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

// emptyHead is the cached head key of an empty node (+infinity).
const emptyHead = math.MaxUint64

// maxDepth bounds the tree depth (2^28 leaves is far beyond benchmark size).
const maxDepth = 28

// growRetries is the number of random leaf probes before growing the tree.
const growRetries = 8

type node struct {
	mu sync.Mutex
	// list is sorted descending by key, so the head (minimum) is the last
	// element and push/pop at the head are O(1) tail operations.
	list []pq.Item
	// head caches the list's minimum key (emptyHead when empty) for
	// lock-free binary probing; updated under mu.
	head atomic.Uint64
}

func (n *node) updateHead() {
	if len(n.list) == 0 {
		n.head.Store(emptyHead)
		return
	}
	n.head.Store(n.list[len(n.list)-1].Key)
}

// Queue is a lock-based Mound.
type Queue struct {
	growMu sync.Mutex
	levels [maxDepth][]node
	// depth is the deepest allocated level; level arrays are published
	// before depth advances, so readers of depth may touch levels freely.
	depth atomic.Int64
	seed  atomic.Uint64
}

var _ pq.Queue = (*Queue)(nil)

// New returns an empty mound with a few preallocated levels.
func New() *Queue {
	q := &Queue{}
	for l := 0; l <= 4; l++ {
		q.levels[l] = newLevel(l)
	}
	q.depth.Store(4)
	return q
}

func newLevel(l int) []node {
	lv := make([]node, 1<<l)
	for i := range lv {
		lv[i].head.Store(emptyHead)
	}
	return lv
}

// nodeAt returns the node with 1-based tree index i.
func (q *Queue) nodeAt(i int) *node {
	level := 0
	for 1<<(level+1) <= i {
		level++
	}
	return &q.levels[level][i-(1<<level)]
}

// grow adds one level.
func (q *Queue) grow() {
	q.growMu.Lock()
	defer q.growMu.Unlock()
	d := q.depth.Load()
	if d+1 >= maxDepth {
		return
	}
	q.levels[d+1] = newLevel(int(d + 1))
	q.depth.Store(d + 1)
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "mound" }

// Handle implements pq.Queue.
func (q *Queue) Handle() pq.Handle {
	return &Handle{q: q, rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15))}
}

// Handle is a per-goroutine handle carrying the leaf-selection RNG.
type Handle struct {
	q   *Queue
	rng *rng.Xoroshiro
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle.
func (h *Handle) Insert(key, value uint64) {
	q := h.q
	for attempt := 0; ; attempt++ {
		depth := int(q.depth.Load())
		leaf := 1<<depth + int(h.rng.Uintn(uint64(1)<<depth))
		if q.tryInsertOnPath(leaf, depth, key, value) {
			return
		}
		if attempt > 0 && attempt%growRetries == 0 {
			q.grow()
		}
	}
}

// tryInsertOnPath binary-searches the root-to-leaf path for the shallowest
// node with head >= key, then validates and pushes under locks.
func (q *Queue) tryInsertOnPath(leaf, depth int, key, value uint64) bool {
	// Heads are non-decreasing from root to leaf, so find the shallowest
	// level whose head is >= key.
	lo, hi := 0, depth // level indices; node at level l is leaf >> (depth-l)
	if q.nodeAt(leaf).head.Load() < key {
		return false // even the leaf is too small; try another leaf
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if q.nodeAt(leaf>>(depth-mid)).head.Load() >= key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	vIdx := leaf >> (depth - lo)
	v := q.nodeAt(vIdx)
	if vIdx == 1 {
		v.mu.Lock()
		if v.head.Load() < key {
			v.mu.Unlock()
			return false
		}
		v.list = append(v.list, pq.Item{Key: key, Value: value})
		v.updateHead()
		v.mu.Unlock()
		return true
	}
	parent := q.nodeAt(vIdx / 2)
	parent.mu.Lock()
	v.mu.Lock()
	// Validate the probe under locks: pushing key at v's head must keep
	// both v's list order and the parent invariant.
	if v.head.Load() < key || parent.head.Load() > key {
		v.mu.Unlock()
		parent.mu.Unlock()
		return false
	}
	v.list = append(v.list, pq.Item{Key: key, Value: value})
	v.updateHead()
	v.mu.Unlock()
	parent.mu.Unlock()
	return true
}

// DeleteMin implements pq.Handle: pop the root head, then moundify.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	q := h.q
	root := q.nodeAt(1)
	root.mu.Lock()
	n := len(root.list)
	if n == 0 {
		// Invariant: an empty root implies an empty mound.
		root.mu.Unlock()
		return 0, 0, false
	}
	it := root.list[n-1]
	root.list = root.list[:n-1]
	root.updateHead()
	q.moundify(1, root) // unlocks root
	return it.Key, it.Value, true
}

// moundify restores head(parent) <= head(child) downward from node i,
// hand-over-hand. The caller passes node i locked; moundify unlocks it.
func (q *Queue) moundify(i int, n *node) {
	depth := int(q.depth.Load())
	for {
		left := 2 * i
		if left >= 1<<(depth+1) {
			break // n is a leaf of the allocated tree
		}
		ln, rn := q.nodeAt(left), q.nodeAt(left+1)
		ln.mu.Lock()
		rn.mu.Lock()
		nh, lh, rh := n.head.Load(), ln.head.Load(), rn.head.Load()
		if nh <= lh && nh <= rh {
			rn.mu.Unlock()
			ln.mu.Unlock()
			break
		}
		var child *node
		var childIdx int
		if lh <= rh {
			child, childIdx = ln, left
			rn.mu.Unlock()
		} else {
			child, childIdx = rn, left+1
			ln.mu.Unlock()
		}
		// Swap the whole lists: the smaller list moves up.
		n.list, child.list = child.list, n.list
		n.updateHead()
		child.updateHead()
		n.mu.Unlock()
		n, i = child, childIdx
	}
	n.mu.Unlock()
}

// PeekMin reports the root head without removing it.
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	root := h.q.nodeAt(1)
	root.mu.Lock()
	defer root.mu.Unlock()
	if len(root.list) == 0 {
		return 0, 0, false
	}
	it := root.list[len(root.list)-1]
	return it.Key, it.Value, true
}

// Len counts items across all nodes (O(nodes); tests only).
func (q *Queue) Len() int {
	total := 0
	depth := int(q.depth.Load())
	for l := 0; l <= depth; l++ {
		for i := range q.levels[l] {
			n := &q.levels[l][i]
			n.mu.Lock()
			total += len(n.list)
			n.mu.Unlock()
		}
	}
	return total
}
