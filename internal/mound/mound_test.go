package mound

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New()
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if _, _, ok := h.(*Handle).PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	if q.Name() != "mound" {
		t.Fatalf("name = %q", q.Name())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSequentialOrder(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(1)
	const n = 5000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 333 // heavy duplicates stress list nodes
		want[i] = k
		h.Insert(k, k+5)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want[i] || v != k+5 {
			t.Fatalf("deletion %d = %d/%d/%v, want %d", i, k, v, ok, want[i])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestAscendingInsertions(t *testing.T) {
	// Ascending keys are the mound's worst case for leaf probing (every
	// new key is larger than all heads): exercises the grow path.
	q := New()
	h := q.Handle()
	const n = 5000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	for i := uint64(0); i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != i {
			t.Fatalf("deletion %d = %d/%v", i, k, ok)
		}
	}
}

func TestMoundInvariantAfterMixedOps(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(2)
	for i := 0; i < 3000; i++ {
		h.Insert(r.Uint64()%1000, 0)
		if i%3 == 0 {
			h.DeleteMin()
		}
	}
	depth := int(q.depth.Load())
	for l := 0; l < depth; l++ {
		for i := range q.levels[l] {
			idx := 1<<l + i
			parentHead := q.nodeAt(idx).head.Load()
			for _, c := range []int{2 * idx, 2*idx + 1} {
				if c >= 1<<(depth+1) {
					continue
				}
				if childHead := q.nodeAt(c).head.Load(); parentHead > childHead {
					t.Fatalf("invariant violated: node %d head %d > child %d head %d",
						idx, parentHead, c, childHead)
				}
			}
		}
	}
	// Node lists must be sorted descending.
	for l := 0; l <= depth; l++ {
		for i := range q.levels[l] {
			n := &q.levels[l][i]
			for j := 1; j < len(n.list); j++ {
				if n.list[j-1].Key < n.list[j].Key {
					t.Fatalf("node list not descending at level %d", l)
				}
			}
		}
	}
}

func TestPeekMin(t *testing.T) {
	q := New()
	h := q.Handle().(*Handle)
	h.Insert(7, 70)
	h.Insert(3, 30)
	if k, v, ok := h.PeekMin(); !ok || k != 3 || v != 30 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek removed an item")
	}
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	q := New()
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 41)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], got[i])
		}
	}
}

func TestQuiescentDrainSorted(t *testing.T) {
	q := New()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 61)
			for i := 0; i < 2000; i++ {
				h.Insert(r.Uint64()%5000, 0)
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	var prev uint64
	first := true
	count := 0
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		if !first && k < prev {
			t.Fatalf("quiescent drain out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
	}
	if count != 12000 {
		t.Fatalf("drained %d of 12000", count)
	}
}
