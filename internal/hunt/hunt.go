// Package hunt implements the concurrent priority queue heap of Hunt,
// Michael, Parthasarathy and Scott (Information Processing Letters 1996),
// listed in the paper's Appendix D as the classic fine-grained-locking
// design: "it attempts to minimize lock contention between threads by
// a) adding per-node locks, b) spreading subsequent insertions through a
// bit-reversal technique, and c) letting insertions traverse bottom-up in
// order to minimize conflicts with top-down deletions."
//
// The heap is a complete binary tree stored level by level (level arrays
// are allocated on demand under the size lock, so node addresses stay
// stable; the allocated bound is published through an atomic so traversals
// never need the size lock). Each node carries its own mutex and a tag:
// EMPTY (no item), AVAILABLE (item fully inserted), or the id of the handle
// currently bubbling the item up. Insertions place the new item at the
// bit-reversed next slot of the last level and bubble it bottom-up with
// hand-over-hand locking, chasing the item if a concurrent deletion moved
// it. Deletions remove the most recently filled slot, substitute it for the
// root and sift top-down. Locks are always acquired parent-before-child,
// and the size lock is never requested while holding a node lock, so the
// two directions cannot deadlock.
//
// Registry identifier: "hunt". The queue is strict at quiescence;
// cmd/pqverify checks it against rank 0. It appears in the extension-queue
// grid of EXPERIMENTS.md, where it shows the design's known profile: fast
// at one thread, degrading fastest with contention (the global size lock
// and root serialize both operation kinds).
package hunt

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"cpq/internal/pq"
)

// Tag values; positive values are handle ids.
const (
	tagEmpty     int64 = 0
	tagAvailable int64 = -1
)

// maxLevels bounds the tree depth; 2^34 items is far beyond any benchmark.
const maxLevels = 34

type node struct {
	mu  sync.Mutex
	tag int64
	it  pq.Item
}

// Queue is a Hunt et al. heap.
type Queue struct {
	heapLock sync.Mutex
	count    int // number of items; slot indices are 1-based

	// levels[L] holds the 2^L nodes of depth L. A level array is written
	// once (under heapLock) before maxLevel publishes it; readers that
	// load maxLevel >= L may access levels[L] without further locking.
	levels   [maxLevels][]node
	maxLevel atomic.Int64

	nextID atomic.Int64
}

var _ pq.Queue = (*Queue)(nil)

// New returns an empty queue. capacityHint pre-allocates levels for about
// that many items (0 chooses a small default); the heap still grows beyond
// the hint on demand.
func New(capacityHint int) *Queue {
	q := &Queue{}
	levels := 4
	for levels < maxLevels-1 && (1<<levels) < capacityHint {
		levels++
	}
	for i := 0; i < levels; i++ {
		q.levels[i] = make([]node, 1<<i)
	}
	q.maxLevel.Store(int64(levels - 1))
	return q
}

// nodeAt returns the node with 1-based heap index i; the caller must have
// established i's level is allocated (i's level <= maxLevel).
func (q *Queue) nodeAt(i int) *node {
	level := bits.Len(uint(i)) - 1
	return &q.levels[level][i-(1<<level)]
}

// ensureLocked grows the level table so index i is addressable.
// Caller holds heapLock.
func (q *Queue) ensureLocked(i int) {
	level := int64(bits.Len(uint(i)) - 1)
	for l := q.maxLevel.Load() + 1; l <= level; l++ {
		q.levels[l] = make([]node, 1<<l)
		q.maxLevel.Store(l)
	}
}

// slotFor maps the n-th item (1-based) to its bit-reversed heap slot:
// the item lands in the last level at the bit-reversed offset, spreading
// consecutive insertions across different subtrees.
func slotFor(n int) int {
	if n <= 1 {
		return n
	}
	level := bits.Len(uint(n)) - 1
	offset := uint(n) - 1<<level
	return 1<<level + int(bits.Reverse(offset)>>(bits.UintSize-level))
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "hunt" }

// Handle implements pq.Queue.
func (q *Queue) Handle() pq.Handle {
	return &Handle{q: q, id: q.nextID.Add(1)}
}

// Handle is a per-goroutine handle; its id tags items while they bubble up.
type Handle struct {
	q  *Queue
	id int64
}

var _ pq.Handle = (*Handle)(nil)

// Insert implements pq.Handle.
func (h *Handle) Insert(key, value uint64) {
	q := h.q
	q.heapLock.Lock()
	q.count++
	i := slotFor(q.count)
	q.ensureLocked(i)
	n := q.nodeAt(i)
	n.mu.Lock()
	q.heapLock.Unlock()
	n.it = pq.Item{Key: key, Value: value}
	n.tag = h.id
	n.mu.Unlock()

	// Bubble up, chasing the item if deletions move it.
	for i > 1 {
		parent := i / 2
		pn, cn := q.nodeAt(parent), q.nodeAt(i)
		pn.mu.Lock()
		cn.mu.Lock()
		switch {
		case pn.tag == tagAvailable && cn.tag == h.id:
			if cn.it.Key < pn.it.Key {
				pn.it, cn.it = cn.it, pn.it
				cn.tag = tagAvailable
				pn.tag = h.id
				i = parent
			} else {
				cn.tag = tagAvailable
				i = 0
			}
		case pn.tag == tagEmpty:
			// The parent was consumed as a deletion's substitute; our item
			// has been moved to (or past) the root by that deletion.
			i = 0
		case cn.tag != h.id:
			// A deletion swapped our item upward; chase it.
			i = parent
		default:
			// Parent still mid-insertion by another handle: retry until
			// that insertion's bubble marks it AVAILABLE.
		}
		cn.mu.Unlock()
		pn.mu.Unlock()
	}
	if i == 1 {
		n := q.nodeAt(1)
		n.mu.Lock()
		if n.tag == h.id {
			n.tag = tagAvailable
		}
		n.mu.Unlock()
	}
}

// DeleteMin implements pq.Handle.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	q := h.q
	q.heapLock.Lock()
	if q.count == 0 {
		q.heapLock.Unlock()
		return 0, 0, false
	}
	bottom := slotFor(q.count)
	q.count--
	bn := q.nodeAt(bottom)
	bn.mu.Lock()
	q.heapLock.Unlock()
	moved := bn.it
	bn.tag = tagEmpty
	bn.mu.Unlock()
	if bottom == 1 {
		// The heap held a single item; it is the minimum.
		return moved.Key, moved.Value, true
	}

	root := q.nodeAt(1)
	root.mu.Lock()
	if root.tag == tagEmpty {
		// A concurrent deletion consumed the root as its own bottom slot
		// (the count hit zero while we were detaching our substitute).
		// Slot 1 is always occupied while the count is positive, so our
		// in-hand item is the only live one: return it directly.
		root.mu.Unlock()
		return moved.Key, moved.Value, true
	}
	min := root.it
	root.it = moved
	root.tag = tagAvailable

	// Sift the substitute down with hand-over-hand locking. The current
	// node's lock is held entering each iteration.
	i := 1
	maxIdx := (1 << (q.maxLevel.Load() + 1)) - 1
	for 2*i <= maxIdx {
		child := q.lockSmallerChild(i, maxIdx)
		if child == 0 {
			break
		}
		cn, in := q.nodeAt(child), q.nodeAt(i)
		if cn.it.Key < in.it.Key {
			in.it, cn.it = cn.it, in.it
			in.tag, cn.tag = cn.tag, in.tag
			in.mu.Unlock()
			i = child
		} else {
			cn.mu.Unlock()
			break
		}
	}
	q.nodeAt(i).mu.Unlock()
	return min.Key, min.Value, true
}

// lockSmallerChild locks the smaller non-empty child of i and returns its
// index, or 0 if both children are empty (nothing stays locked then).
// Caller holds node i's lock; maxIdx bounds allocated indices.
func (q *Queue) lockSmallerChild(i, maxIdx int) int {
	left := 2 * i
	ln := q.nodeAt(left)
	ln.mu.Lock()
	right := left + 1
	var rn *node
	if right <= maxIdx {
		rn = q.nodeAt(right)
		rn.mu.Lock()
	}
	lEmpty := ln.tag == tagEmpty
	rEmpty := rn == nil || rn.tag == tagEmpty
	switch {
	case lEmpty && rEmpty:
		if rn != nil {
			rn.mu.Unlock()
		}
		ln.mu.Unlock()
		return 0
	case rEmpty:
		if rn != nil {
			rn.mu.Unlock()
		}
		return left
	case lEmpty:
		ln.mu.Unlock()
		return right
	case ln.it.Key <= rn.it.Key:
		rn.mu.Unlock()
		return left
	default:
		ln.mu.Unlock()
		return right
	}
}

// Len reports the current item count.
func (q *Queue) Len() int {
	q.heapLock.Lock()
	n := q.count
	q.heapLock.Unlock()
	return n
}
