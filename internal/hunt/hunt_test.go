package hunt

import (
	"math/bits"
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestSlotFor(t *testing.T) {
	// The first items of each level land at the level head; subsequent
	// ones spread by bit reversal.
	want := map[int]int{1: 1, 2: 2, 3: 3, 4: 4, 5: 6, 6: 5, 7: 7, 8: 8, 9: 12, 10: 10, 11: 14}
	for n, w := range want {
		if got := slotFor(n); got != w {
			t.Fatalf("slotFor(%d) = %d, want %d", n, got, w)
		}
	}
	// Property: slotFor is a bijection from 1..2^L-1 onto itself, and every
	// slot's parent slot is enumerated earlier.
	seen := map[int]int{}
	order := map[int]int{}
	for n := 1; n < 1<<10; n++ {
		s := slotFor(n)
		if prev, dup := seen[s]; dup {
			t.Fatalf("slot %d assigned to both %d and %d", s, prev, n)
		}
		seen[s] = n
		order[s] = n
		if s > 1 {
			parent := s / 2
			pn, ok := order[parent]
			if !ok || pn >= n {
				t.Fatalf("slot %d (item %d) filled before its parent %d", s, n, parent)
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	q := New(0)
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if q.Name() != "hunt" {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestSequentialOrder(t *testing.T) {
	q := New(0)
	h := q.Handle()
	r := rng.New(1)
	const n = 5000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 997
		want[i] = k
		h.Insert(k, k+2)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want[i] || v != k+2 {
			t.Fatalf("deletion %d = %d/%d/%v, want %d", i, k, v, ok, want[i])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestInterleaved(t *testing.T) {
	q := New(0)
	h := q.Handle()
	h.Insert(10, 0)
	h.Insert(5, 0)
	if k, _, _ := h.DeleteMin(); k != 5 {
		t.Fatalf("want 5, got %d", k)
	}
	h.Insert(1, 0)
	if k, _, _ := h.DeleteMin(); k != 1 {
		t.Fatalf("want 1, got %d", k)
	}
	if k, _, _ := h.DeleteMin(); k != 10 {
		t.Fatalf("want 10, got %d", k)
	}
}

func TestGrowthBeyondHint(t *testing.T) {
	q := New(4)
	h := q.Handle()
	const n = 10000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(0); i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != i {
			t.Fatalf("deletion %d = %d/%v", i, k, ok)
		}
	}
	if q.maxLevel.Load() < 13 {
		t.Fatalf("maxLevel = %d, heap did not grow", q.maxLevel.Load())
	}
	_ = bits.Len(0) // keep math/bits imported for the tests above
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	q := New(1 << 16)
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 11)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], got[i])
		}
	}
}

func TestQuiescentDrainSorted(t *testing.T) {
	q := New(1 << 15)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 23)
			for i := 0; i < 3000; i++ {
				h.Insert(r.Uint64()%10000, 0)
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	var prev uint64
	first := true
	count := 0
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		if !first && k < prev {
			t.Fatalf("quiescent drain out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
	}
	if count != 18000 {
		t.Fatalf("drained %d of 18000", count)
	}
}

func TestConcurrentDrainExactlyOnce(t *testing.T) {
	q := New(1 << 15)
	h := q.Handle()
	const n = 10000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	const workers = 8
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("deleted %d of %d", total, n)
	}
}
