package lotan

import (
	"testing"

	"cpq/internal/rng"
)

// Allocation-regression tests for the packed-word substrate (mirroring
// internal/core/alloc_test.go): DeleteMin — claim, mark tower, helped
// unlink — must be allocation-free; Insert amortizes to the slab refill.

func steadyLotan() (*Queue, *Handle, *rng.Xoroshiro) {
	q := New()
	h := q.Handle().(*Handle)
	r := rng.New(42)
	for i := 0; i < 4096; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
		h.DeleteMin()
	}
	return q, h, r
}

func TestLotanInsertAllocsAmortized(t *testing.T) {
	_, h, r := steadyLotan()
	avg := testing.AllocsPerRun(2000, func() {
		h.Insert(r.Uint64()&0xffff, 0)
	})
	if avg > 1.0 {
		t.Errorf("lotan Insert allocates %.3f allocs/op at steady state, want <= 1.0 (slab refills only)", avg)
	}
}

func TestLotanDeleteMinZeroAllocs(t *testing.T) {
	_, h, r := steadyLotan()
	const runs = 2000
	for i := 0; i < runs+100; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
	}
	avg := testing.AllocsPerRun(runs, func() {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatal("queue ran empty mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("lotan DeleteMin allocates %.3f allocs/op at steady state, want 0", avg)
	}
}
