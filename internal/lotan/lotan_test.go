package lotan

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New()
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if q.Name() != "lotan" {
		t.Fatalf("name = %q", q.Name())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSequentialOrder(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(1)
	const n = 4000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 777
		want[i] = k
		h.Insert(k, k+1)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want[i] || v != k+1 {
			t.Fatalf("deletion %d = %d/%d/%v, want key %d", i, k, v, ok, want[i])
		}
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("not empty after drain")
	}
}

func TestPeekMin(t *testing.T) {
	q := New()
	h := q.Handle().(*Handle)
	if _, _, ok := h.PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	h.Insert(9, 90)
	h.Insert(4, 40)
	if k, v, ok := h.PeekMin(); !ok || k != 4 || v != 40 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek must not remove")
	}
}

func TestConcurrentMixedMultisetPreserved(t *testing.T) {
	q := New()
	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 31)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 50000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}

func TestConcurrentDeletersNoDuplicates(t *testing.T) {
	q := New()
	h := q.Handle()
	const n = 20000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	const workers = 8
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("deleted %d of %d", total, n)
	}
}

func TestQuiescentDrainSorted(t *testing.T) {
	q := New()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 77)
			for i := 0; i < 2000; i++ {
				h.Insert(r.Uint64()%3000, 0)
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	var prev uint64
	first := true
	count := 0
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		if !first && k < prev {
			t.Fatalf("quiescent drain out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
	}
	if count != 12000 {
		t.Fatalf("drained %d of 12000", count)
	}
}
