package lotan

import (
	"cpq/internal/pq"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// Batch-first paths (DESIGN.md §4c). The scalar delete pays a head scan
// plus a full physical unlink per item — the head contention this design
// is known for. The batch delete claims a run of up to n nodes in ONE scan
// and removes them with ONE helping pass, so a batch costs one traversal
// of the (shared) head region instead of n. Batch inserts ride the
// substrate's InsertRun: one arena claim, window reuse across sorted keys.

var _ pq.BatchInserter = (*Handle)(nil)
var _ pq.BatchDeleter = (*Handle)(nil)

// InsertN implements pq.BatchInserter. The batch is sorted ascending in
// place (caller-owned per the contract) and spliced as a run.
func (h *Handle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	pq.SortKVs(kvs)
	h.sh.InsertRun(kvs, h.rng)
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter: one bottom-level scan from the
// head claims up to n nodes in passing order (each claim is the same
// TryClaim the scalar path performs, so each item is a first-unclaimed
// node at its claim instant), marks every claimed tower, and physically
// removes the whole run with one helping Find past the largest claimed
// key. A short return means the scan reached the end of the list.
func (h *Handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	l := h.q.list
	curr, _ := l.Head().Next(0)
	fails := uint64(0)
	got := 0
	var last skiplist.Node
	for !curr.IsNil() && got < n {
		if !curr.IsClaimed() && !curr.DeletedAt0() && curr.TryClaim() {
			curr.MarkTower()
			dst[got] = pq.KV{Key: curr.Key(), Value: curr.Value()}
			got++
			last = curr
		} else {
			fails++
		}
		curr, _ = curr.Next(0)
	}
	if got > 0 {
		l.Unlink(last)
	}
	if fails > 0 {
		h.tel.Add(telemetry.LotanClaimFail, fails)
	}
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}
