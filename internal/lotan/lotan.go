// Package lotan implements a lock-free variant of the Shavit-Lotan skiplist
// priority queue (IPDPS 2000), in the quiescently-consistent formulation of
// Herlihy & Shavit's "The Art of Multiprocessor Programming" (Appendix D of
// the paper lists it among the historically relevant designs; the suite
// includes it as an extension baseline).
//
// delete_min scans the bottom level from the head and attempts to claim the
// first unclaimed node via a dedicated logical-deletion flag; the winner
// then removes the node from the skiplist (mark tower + helped unlink).
// Compared to Lindén-Jonsson, every deletion performs physical removal
// immediately, which concentrates memory contention at the list head — the
// exact behaviour Lindén-Jonsson's batching improves on, and an interesting
// ablation pair for the benchmarks. The lotan-claim-fail counter reports
// the scan steps lost to that head contention (DESIGN.md §5).
//
// Registry identifier: "lotan"; strict at quiescence (cmd/pqverify checks
// rank 0 within stamping slack). It shares internal/skiplist with linden
// and spray, which makes it the exact-scan control in the spray-vs-scan
// ablation (DESIGN.md §10): same substrate, strict head scan instead of a
// spray walk.
package lotan

import (
	"sync/atomic"

	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// Queue is a Shavit-Lotan style priority queue.
type Queue struct {
	list *skiplist.List
	seed atomic.Uint64
}

var _ pq.Queue = (*Queue)(nil)

// New returns an empty queue.
func New() *Queue { return &Queue{list: skiplist.New()} }

// Name implements pq.Queue.
func (q *Queue) Name() string { return "lotan" }

// Handle implements pq.Queue.
func (q *Queue) Handle() pq.Handle {
	return &Handle{
		q:   q,
		sh:  q.list.NewHandle(),
		rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
		tel: telemetry.NewShard(),
	}
}

// Handle is a per-goroutine handle carrying the tower-height RNG, the arena
// allocator and the telemetry shard.
type Handle struct {
	q   *Queue
	sh  *skiplist.Handle
	rng *rng.Xoroshiro
	tel *telemetry.Shard
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle.
func (h *Handle) Insert(key, value uint64) {
	h.sh.Insert(key, value, skiplist.RandomHeight(h.rng))
}

// DeleteMin implements pq.Handle: claim the first unclaimed node from the
// head of the bottom level, then physically remove it.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	l := h.q.list
	curr, _ := l.Head().Next(0)
	fails := uint64(0)
	for !curr.IsNil() {
		if !curr.IsClaimed() && !curr.DeletedAt0() && curr.TryClaim() {
			curr.MarkTower()
			l.Unlink(curr)
			if fails > 0 {
				h.tel.Add(telemetry.LotanClaimFail, fails)
			}
			return curr.Key(), curr.Value(), true
		}
		fails++
		curr, _ = curr.Next(0)
	}
	if fails > 0 {
		h.tel.Add(telemetry.LotanClaimFail, fails)
	}
	return 0, 0, false
}

// PeekMin reports the first unclaimed node without removing it.
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	n := h.q.list.FirstLive()
	if n.IsNil() {
		return 0, 0, false
	}
	return n.Key(), n.Value(), true
}

// Len counts live items. O(n); tests and draining only.
func (q *Queue) Len() int { return q.list.CountLive() }
