// Package quality implements the paper's rank-error benchmark: "the rank of
// an item is its position within the priority queue as it is deleted". All
// operations are logged; the log is turned into a linear history; a
// sequential order-statistics structure replays the history and reports the
// rank of every deleted item. A strict queue scores rank 0 everywhere;
// relaxed queues are characterized by the distribution of ranks, which the
// paper reports as mean ± standard deviation per thread count.
//
// Where the paper reconstructs the linear order from logged timestamps,
// this implementation stamps each operation with a global atomic sequence
// number: inserts are stamped immediately BEFORE taking effect and
// deletions immediately AFTER returning, so for any single item the insert
// always precedes its deletion in the reconstructed history. Like the
// paper's own benchmark, the reconstruction is pessimistic — concurrent
// operations may be ordered adversely and duplicate keys inflate ranks —
// so reported ranks are upper bounds on the semantic error.
package quality

import (
	"sort"
	"sync"
	"sync/atomic"

	"cpq/internal/keys"
	"cpq/internal/ostree"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/stats"
	"cpq/internal/workload"
)

// Config describes one rank-error benchmark cell.
type Config struct {
	// NewQueue constructs the queue under test for a given thread count.
	NewQueue func(threads int) pq.Queue
	// Threads is the number of worker goroutines.
	Threads int
	// OpsPerThread is the number of operations each worker performs during
	// the measured phase (the quality benchmark is op-count-bounded so the
	// log has a known size).
	OpsPerThread int
	// Workload and KeyDist mirror the throughput benchmark's parameters.
	Workload workload.Kind
	KeyDist  keys.Distribution
	// Prefill items are inserted (and logged) before measurement;
	// negative selects 10^6 as in the throughput benchmark. Quality runs
	// typically use a smaller prefill so replay time stays reasonable.
	Prefill int
	// InsertFrac as in the throughput harness (0 → 0.5).
	InsertFrac float64
	// BatchSize as in the throughput harness (Alternating workload only).
	BatchSize int
	// OpBatch as in the throughput harness: with OpBatch >= 2 the measured
	// phase moves items through InsertN/DeleteMinN in batches of this width.
	// A batch is logged as OpBatch ordinary events sharing ONE sequence
	// stamp — the batch call is one synchronization episode, so its items
	// are mutually concurrent in the reconstructed history (inserts stamped
	// before the call takes effect, deletions after it returns, as in the
	// scalar discipline). 0/1 is the scalar mode.
	OpBatch int
	// Seed for reproducibility (0 → fixed default).
	Seed uint64
	// UsePool routes every handle — prefill and workers — through a
	// pq.Pool with the elastic Acquire/Release lifecycle: each worker
	// re-acquires its handle every poolChunk operations, so the live count
	// breathes during the run. The Result then carries the pool's
	// peak-live and created counts, and callers judge bounds against
	// EffectiveP instead of a frozen thread count.
	UsePool bool
}

// poolChunk is how many operations a pooled worker performs per
// Acquire/Release cycle; small enough that a quality run exercises many
// full lifecycles, large enough that pool traffic does not dominate the
// log.
const poolChunk = 512

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 100_000
	}
	if c.Prefill < 0 {
		c.Prefill = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	return c
}

// Event is one logged operation of a linear history. The quality harness
// produces them internally; the chaos checker (internal/chaos) builds its
// own histories and feeds them to Replay, which is why the type is
// exported.
type Event struct {
	Seq uint64 // global order stamp
	ID  uint64 // unique item identity (assigned at insert)
	Key uint64
	Del bool
}

// Result summarizes the rank errors of one run.
type Result struct {
	// Deletions is the number of successful delete_min operations replayed.
	Deletions uint64
	// MeanRank and StddevRank summarize the rank distribution
	// (rank 0 = exact minimum).
	MeanRank   float64
	StddevRank float64
	// MaxRank is the worst rank observed.
	MaxRank int
	// Histogram counts ranks in power-of-two buckets: bucket i counts
	// ranks in [2^(i-1), 2^i) with bucket 0 counting rank 0... rank 1.
	Histogram []uint64
	// PoolPeakLive and PoolCreated are the handle pool's statistics for a
	// UsePool run (zero otherwise); feed them to EffectiveP to get the
	// handle count the claimed bound should be judged against.
	PoolPeakLive int
	PoolCreated  int
}

// Run executes one rank-error benchmark run and replays its log.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	// Pool mode constructs the queue minimally sized: the pool's Grower
	// calls (pq.Pool.newHandle) grow layout-elastic structures to the
	// actual created-handle count, so EffectiveP judges the size the
	// structure really reached rather than a frozen Threads.
	constructP := cfg.Threads
	if cfg.UsePool {
		constructP = 1
	}
	q := cfg.NewQueue(constructP)
	defer pq.Close(q)

	// Handle lifecycle: plain mode hands out one q.Handle per role and
	// flushes it at the end; pool mode recycles handles through the
	// elastic Acquire/Release lifecycle (Release flushes), with the cap
	// sized so workers plus the prefill role can all hold one.
	var pool *pq.Pool
	acquire := func() pq.Handle { return q.Handle() }
	release := func(h pq.Handle) { pq.Flush(h) }
	if cfg.UsePool {
		pool = pq.NewPool(q, pq.PoolOptions{MaxHandles: cfg.Threads + 1})
		acquire = func() pq.Handle { return pool.Acquire() }
		release = func(h pq.Handle) { pool.Release(h.(*pq.PooledHandle)) }
	}

	var seq atomic.Uint64
	var nextID atomic.Uint64

	// Prefill, logged.
	prefillEvents := make([]Event, 0, cfg.Prefill)
	{
		h := acquire()
		r := rng.New(cfg.Seed ^ 0xd1b54a32d192ed03)
		gen := keys.NewGenerator(cfg.KeyDist, r)
		for i := 0; i < cfg.Prefill; i++ {
			k := gen.Next()
			id := nextID.Add(1)
			prefillEvents = append(prefillEvents, Event{Seq: seq.Add(1), ID: id, Key: k})
			h.Insert(k, id)
		}
		release(h)
	}

	// Measured phase.
	logs := make([][]Event, cfg.Threads)
	var start = make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := acquire()
			r := rng.New(cfg.Seed + uint64(w)*0x6a09e667f3bcc909)
			gen := keys.NewGenerator(cfg.KeyDist, r)
			policy := workload.ForWorkerBatched(cfg.Workload, w, cfg.Threads, cfg.InsertFrac, cfg.BatchSize, r)
			local := make([]Event, 0, cfg.OpsPerThread)
			<-start
			if cfg.OpBatch > 1 {
				b := cfg.OpBatch
				kvs := make([]pq.KV, b)
				for i := 0; i < cfg.OpsPerThread; i += b {
					if pool != nil && i > 0 && i%poolChunk < b {
						// Elastic lifecycle: give the handle back (flushing
						// its buffers) and take one from the pool again.
						release(h)
						h = acquire()
					}
					if policy.Next() == workload.Insert {
						// One stamp for the whole batch, taken BEFORE the call
						// takes effect; the batch's items are mutually
						// concurrent in the history.
						s := seq.Add(1)
						for j := range kvs {
							k := gen.Next()
							id := nextID.Add(1)
							kvs[j] = pq.KV{Key: k, Value: id}
							local = append(local, Event{Seq: s, ID: id, Key: k})
						}
						pq.InsertN(h, kvs)
					} else {
						got := pq.DeleteMinN(h, kvs, b)
						// One stamp AFTER the call returned, shared by every
						// item the batch removed.
						s := seq.Add(1)
						for j := 0; j < got; j++ {
							gen.Observe(kvs[j].Key)
							local = append(local, Event{Seq: s, ID: kvs[j].Value, Key: kvs[j].Key, Del: true})
						}
					}
				}
			} else {
				for i := 0; i < cfg.OpsPerThread; i++ {
					if pool != nil && i > 0 && i%poolChunk == 0 {
						release(h)
						h = acquire()
					}
					if policy.Next() == workload.Insert {
						k := gen.Next()
						id := nextID.Add(1)
						// Stamp BEFORE the insert takes effect.
						local = append(local, Event{Seq: seq.Add(1), ID: id, Key: k})
						h.Insert(k, id)
					} else {
						k, id, ok := h.DeleteMin()
						if ok {
							gen.Observe(k)
							// Stamp AFTER the delete returned.
							local = append(local, Event{Seq: seq.Add(1), ID: id, Key: k, Del: true})
						}
					}
				}
			}
			// Publish buffered operations (engineered MultiQueue) before the
			// log is merged: items still sitting in a handle's buffers were
			// logged as inserted but never deleted, and Flush returns them to
			// the shared structure, so the replay neither loses nor
			// duplicates items. (Pool mode: Release flushes.)
			release(h)
			logs[w] = local
		}(w)
	}
	close(start)
	wg.Wait()

	// Merge into a single linear history ordered by stamp. The sort must be
	// stable: a batch call logs its items under one shared stamp, and their
	// append order (insertion order, deletion order) is the order the replay
	// should see them in.
	all := prefillEvents
	for _, l := range logs {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })

	res := Replay(all)
	if pool != nil {
		res.PoolPeakLive = pool.PeakLive()
		res.PoolCreated = pool.Created()
	}
	return res
}

// Replay runs a linear history against the order-statistics tree and
// aggregates the rank of every deletion.
func Replay(history []Event) Result {
	var tree ostree.Tree
	var acc stats.Welford
	res := Result{Histogram: make([]uint64, 1)}
	for _, e := range history {
		if !e.Del {
			tree.Insert(e.Key, e.ID)
			continue
		}
		rank, ok := tree.Delete(e.Key, e.ID)
		if !ok {
			// The item is missing from the replay tree. With the stamping
			// discipline this cannot happen for a correct queue; count it
			// as a worst-case observation rather than silently dropping.
			continue
		}
		res.Deletions++
		acc.Add(float64(rank))
		if rank > res.MaxRank {
			res.MaxRank = rank
		}
		b := bucketOf(rank)
		for len(res.Histogram) <= b {
			res.Histogram = append(res.Histogram, 0)
		}
		res.Histogram[b]++
	}
	res.MeanRank = acc.Mean()
	res.StddevRank = acc.Stddev()
	return res
}

// bucketOf maps a rank to its histogram bucket: 0→0, 1→1, 2..3→2, 4..7→3...
func bucketOf(rank int) int {
	b := 0
	for rank > 0 {
		rank >>= 1
		b++
	}
	return b
}

// MakeEvent builds a log event; a shorthand for Event literals kept for
// tests of Replay.
func MakeEvent(seq, id, key uint64, del bool) Event {
	return Event{Seq: seq, ID: id, Key: key, Del: del}
}
