package quality_test

import (
	"math"
	"testing"

	"cpq/internal/keys"
	"cpq/internal/multiq"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

// TestEngineeredRankErrorFinite runs the full quality benchmark against the
// engineered MultiQueue (stickiness + buffers): the run must replay a
// non-trivial number of deletions and report a finite mean rank — buffers
// are flushed before the log is merged, so no item is lost or duplicated.
func TestEngineeredRankErrorFinite(t *testing.T) {
	res := quality.Run(quality.Config{
		NewQueue: func(threads int) pq.Queue {
			return multiq.NewEngineered(2, threads, 4, 8)
		},
		Threads:      4,
		OpsPerThread: 4000,
		Workload:     workload.Uniform,
		KeyDist:      keys.Uniform32,
		Prefill:      2000,
		Seed:         13,
	})
	if res.Deletions == 0 {
		t.Fatal("no deletions replayed")
	}
	if math.IsNaN(res.MeanRank) || math.IsInf(res.MeanRank, 0) || res.MeanRank < 0 {
		t.Fatalf("mean rank %v is not finite", res.MeanRank)
	}
	if math.IsNaN(res.StddevRank) || math.IsInf(res.StddevRank, 0) {
		t.Fatalf("stddev rank %v is not finite", res.StddevRank)
	}
}

// TestEngineeredReplayLossless drives the engineered MultiQueue through a
// logged insert/delete history and drains it completely: every logged
// deletion must find its item in the replay tree (Deletions == total), i.e.
// buffering neither loses nor duplicates items in the reconstructed history.
func TestEngineeredReplayLossless(t *testing.T) {
	q := multiq.NewEngineered(2, 1, 4, 8)
	h := q.Handle()
	r := rng.New(3)
	var events []quality.Event
	var seq uint64
	const n = 5000
	for i := 0; i < n; i++ {
		k := r.Uint64() % 10000
		id := uint64(i + 1)
		seq++
		events = append(events, quality.MakeEvent(seq, id, k, false))
		h.Insert(k, id)
		if i%3 == 0 {
			if k, id, ok := h.DeleteMin(); ok {
				seq++
				events = append(events, quality.MakeEvent(seq, id, k, true))
			}
		}
	}
	pq.Flush(h)
	for {
		k, id, ok := h.DeleteMin()
		if !ok {
			break
		}
		seq++
		events = append(events, quality.MakeEvent(seq, id, k, true))
	}
	res := quality.Replay(events)
	if res.Deletions != n {
		t.Fatalf("replayed %d deletions of %d inserted items — item lost or duplicated", res.Deletions, n)
	}
}
