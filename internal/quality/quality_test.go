package quality

import (
	"testing"

	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/seqheap"
	"cpq/internal/workload"
)

func glFactory(threads int) pq.Queue { return seqheap.NewGlobalLock() }

func TestReplayStrictHistory(t *testing.T) {
	// insert 3 (id1), insert 1 (id2), delete 1, insert 2 (id3), delete 2,
	// delete 3 — a strict queue: all ranks 0.
	hist := []Event{
		MakeEvent(1, 1, 3, false),
		MakeEvent(2, 2, 1, false),
		MakeEvent(3, 2, 1, true),
		MakeEvent(4, 3, 2, false),
		MakeEvent(5, 3, 2, true),
		MakeEvent(6, 1, 3, true),
	}
	res := Replay(hist)
	if res.Deletions != 3 {
		t.Fatalf("replayed %d deletions", res.Deletions)
	}
	if res.MeanRank != 0 || res.MaxRank != 0 {
		t.Fatalf("strict history scored mean=%v max=%d", res.MeanRank, res.MaxRank)
	}
	if res.Histogram[0] != 3 {
		t.Fatalf("histogram: %v", res.Histogram)
	}
}

func TestReplayRelaxedHistory(t *testing.T) {
	// Items 1,2,3 inserted; delete 3 first (rank 2), then 1 (rank 0),
	// then 2 (rank 0).
	hist := []Event{
		MakeEvent(1, 1, 1, false),
		MakeEvent(2, 2, 2, false),
		MakeEvent(3, 3, 3, false),
		MakeEvent(4, 3, 3, true),
		MakeEvent(5, 1, 1, true),
		MakeEvent(6, 2, 2, true),
	}
	res := Replay(hist)
	if res.Deletions != 3 {
		t.Fatalf("deletions = %d", res.Deletions)
	}
	if res.MaxRank != 2 {
		t.Fatalf("max rank = %d, want 2", res.MaxRank)
	}
	wantMean := 2.0 / 3.0
	if diff := res.MeanRank - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean rank = %v, want %v", res.MeanRank, wantMean)
	}
}

func TestReplayDuplicateKeysPessimistic(t *testing.T) {
	// Two items with equal keys; deleting either scores rank 0 (strictly
	// smaller keys only), per the pessimistic duplicate handling.
	hist := []Event{
		MakeEvent(1, 1, 5, false),
		MakeEvent(2, 2, 5, false),
		MakeEvent(3, 2, 5, true),
		MakeEvent(4, 1, 5, true),
	}
	res := Replay(hist)
	if res.MeanRank != 0 {
		t.Fatalf("duplicate-key rank = %v", res.MeanRank)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for rank, want := range cases {
		if got := bucketOf(rank); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", rank, got, want)
		}
	}
}

func TestRunStrictQueueScoresZeroSingleThread(t *testing.T) {
	res := Run(Config{
		NewQueue:     glFactory,
		Threads:      1,
		OpsPerThread: 5000,
		Workload:     workload.Uniform,
		KeyDist:      keys.Uniform32,
		Prefill:      2000,
		Seed:         7,
	})
	if res.Deletions == 0 {
		t.Fatal("no deletions replayed")
	}
	if res.MeanRank != 0 {
		t.Fatalf("single-threaded strict queue scored mean rank %v", res.MeanRank)
	}
}

func TestRunStrictQueueLowRankMultiThread(t *testing.T) {
	// A global-lock queue is strict; even with the pessimistic stamping,
	// concurrent ranks should stay tiny (bounded by in-flight ops).
	res := Run(Config{
		NewQueue:     glFactory,
		Threads:      4,
		OpsPerThread: 5000,
		Workload:     workload.Uniform,
		KeyDist:      keys.Uniform32,
		Prefill:      2000,
		Seed:         11,
	})
	if res.Deletions == 0 {
		t.Fatal("no deletions replayed")
	}
	if res.MeanRank > 8 {
		t.Fatalf("strict queue scored mean rank %v under stamping pessimism", res.MeanRank)
	}
}

func TestRunDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Threads != 1 || c.OpsPerThread != 100_000 || c.Seed == 0 {
		t.Fatalf("withDefaults: %+v", c)
	}
	if (Config{Prefill: -1}).withDefaults().Prefill != 1_000_000 {
		t.Fatal("negative prefill did not select default")
	}
}
