package quality

import (
	"math"
	"strconv"
	"strings"
)

// BoundKind classifies a queue's advertised relaxation guarantee.
type BoundKind string

const (
	// BoundStrict marks exact queues: every delete_min returns the true
	// minimum (rank 0).
	BoundStrict BoundKind = "strict"
	// BoundRelaxed marks queues with a published worst-case rank bound.
	BoundRelaxed BoundKind = "bounded"
	// BoundNone marks queues with no published bound (reported, not judged).
	BoundNone BoundKind = "none"
)

// ClaimedBound returns the advertised rank bound of the named registry
// queue when accessed through p handles, and the bound's kind:
//
//	klsm<k>     rank <= k·P           (lock-free k-LSM guarantee)
//	slsm<k>     rank <= k             (shared component alone)
//	spray       rank = O(P·log³P)     (checked against C·P·log³P, C=32)
//	linden, globallock, lotan, hunt, mound, cbpq, locksl — strict (rank 0)
//	multiq, dlsm — no published bound
//
// p must count every handle that touches the queue, not just the measured
// workers: the k-LSM's kP window grows with each handle's local component,
// and the harnesses use extra handles for prefill and draining.
func ClaimedBound(name string, p int) (bound int, kind BoundKind) {
	if p < 1 {
		p = 1
	}
	n := strings.ToLower(strings.TrimSpace(name))
	// Durable wrappers (internal/durable) keep the inner structure's rank
	// guarantee — logging neither reorders nor relaxes anything.
	n = strings.TrimPrefix(n, "dur:")
	n = strings.TrimPrefix(n, "dur-naive:")
	switch {
	case strings.HasPrefix(n, "klsm"):
		k, _ := strconv.Atoi(n[4:])
		return k * p, BoundRelaxed
	case strings.HasPrefix(n, "slsm"):
		k, _ := strconv.Atoi(n[4:])
		return k, BoundRelaxed
	case n == "spray" || n == "spraylist":
		// Checked form of the O(P·log³P) claim: C·P·log³(P+1) with C=32
		// and P floored at 4. Below the floor the integer walk geometry
		// (ceil'd jump widths, the +K height term, the claim-scan window)
		// stops shrinking with P, so observed ranks sit in a
		// small-constant regime the asymptotic formula undershoots; the
		// floor keeps the pragmatic check honest there without loosening
		// the bound where the asymptote is meaningful.
		if p < 4 {
			p = 4
		}
		lg := math.Log2(float64(p) + 1)
		return int(32 * float64(p) * lg * lg * lg), BoundRelaxed
	case n == "dlsm" || strings.HasPrefix(n, "multiq"):
		return 0, BoundNone
	default:
		return 0, BoundStrict
	}
}

// EffectiveP returns the handle count a pooled (dynamic-lifecycle) run's
// relaxation bound should be judged against, given the pool's peak live
// handle count and its total created count (pq.Pool.PeakLive, .Created).
//
// Release flushes a handle's buffers, so for structures whose relaxation
// lives entirely in per-handle buffers a released handle holds no items and
// only the peak concurrency widens the rank window: peakLive governs, and
// the bound SHRINKS back when handles are released. Structures with
// STRUCTURAL relaxation are the exception — state that persists past
// Release and only ever grows:
//
//   - klsm<k>, dlsm: a released handle keeps its local LSM component
//     (Flush returns only the shared-run buffer, by design), so every
//     handle ever created contributes up to k items to the window. dlsm
//     has no published bound, but the rule is stated so reports stay
//     comparable.
//   - spray: the walk geometry (height, max jump) is re-derived upward as
//     the pool grows and never shrinks, so observed ranks reflect the
//     largest handle count the structure was ever sized for.
//
// For both, created governs. Pool-mode harnesses construct such queues
// with Threads=1 and let pq.Pool's Grower calls do the sizing, so created
// really is the structure's size.
func EffectiveP(name string, peakLive, created int) int {
	if peakLive < 1 {
		peakLive = 1
	}
	if created < peakLive {
		created = peakLive
	}
	n := strings.ToLower(strings.TrimSpace(name))
	if strings.HasPrefix(n, "klsm") || n == "dlsm" || n == "spray" || n == "spraylist" {
		return created
	}
	return peakLive
}

// ViolationsAbove counts replayed deletions whose rank exceeded bound,
// using the result's power-of-two histogram buckets (conservative: a
// bucket straddling the bound is counted only when it lies entirely above).
func ViolationsAbove(res Result, bound int) uint64 {
	if res.MaxRank <= bound {
		return 0
	}
	var v uint64
	for b, c := range res.Histogram {
		if c == 0 {
			continue
		}
		lo := 0
		if b == 1 {
			lo = 1
		} else if b > 1 {
			lo = 1 << (b - 1)
		}
		if lo > bound {
			v += c
		}
	}
	return v
}
