package quality

import (
	"math"
	"strconv"
	"strings"
)

// BoundKind classifies a queue's advertised relaxation guarantee.
type BoundKind string

const (
	// BoundStrict marks exact queues: every delete_min returns the true
	// minimum (rank 0).
	BoundStrict BoundKind = "strict"
	// BoundRelaxed marks queues with a published worst-case rank bound.
	BoundRelaxed BoundKind = "bounded"
	// BoundNone marks queues with no published bound (reported, not judged).
	BoundNone BoundKind = "none"
)

// ClaimedBound returns the advertised rank bound of the named registry
// queue when accessed through p handles, and the bound's kind:
//
//	klsm<k>     rank <= k·P           (lock-free k-LSM guarantee)
//	slsm<k>     rank <= k             (shared component alone)
//	spray       rank = O(P·log³P)     (checked against C·P·log³P, C=32)
//	linden, globallock, lotan, hunt, mound, cbpq, locksl — strict (rank 0)
//	multiq, dlsm — no published bound
//
// p must count every handle that touches the queue, not just the measured
// workers: the k-LSM's kP window grows with each handle's local component,
// and the harnesses use extra handles for prefill and draining.
func ClaimedBound(name string, p int) (bound int, kind BoundKind) {
	if p < 1 {
		p = 1
	}
	n := strings.ToLower(strings.TrimSpace(name))
	switch {
	case strings.HasPrefix(n, "klsm"):
		k, _ := strconv.Atoi(n[4:])
		return k * p, BoundRelaxed
	case strings.HasPrefix(n, "slsm"):
		k, _ := strconv.Atoi(n[4:])
		return k, BoundRelaxed
	case n == "spray" || n == "spraylist":
		lg := math.Log2(float64(p) + 1)
		return int(32 * float64(p) * lg * lg * lg), BoundRelaxed
	case n == "dlsm" || strings.HasPrefix(n, "multiq"):
		return 0, BoundNone
	default:
		return 0, BoundStrict
	}
}

// ViolationsAbove counts replayed deletions whose rank exceeded bound,
// using the result's power-of-two histogram buckets (conservative: a
// bucket straddling the bound is counted only when it lies entirely above).
func ViolationsAbove(res Result, bound int) uint64 {
	if res.MaxRank <= bound {
		return 0
	}
	var v uint64
	for b, c := range res.Histogram {
		if c == 0 {
			continue
		}
		lo := 0
		if b == 1 {
			lo = 1
		} else if b > 1 {
			lo = 1 << (b - 1)
		}
		if lo > bound {
			v += c
		}
	}
	return v
}
