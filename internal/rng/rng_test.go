package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical splitmix64
	// implementation by Sebastiano Vigna.
	s := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d equal outputs out of 1000", same)
	}
}

func TestNewAutoDistinct(t *testing.T) {
	a, b := NewAuto(), NewAuto()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("NewAuto generators produced identical streams")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var orAll uint64
	for i := 0; i < 100; i++ {
		orAll |= r.Uint64()
	}
	if orAll == 0 {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestUintnRange(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(n uint64) bool {
		n = n%1000 + 1 // 1..1000
		v := r.Uintn(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintnPowerOfTwoRange(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 4, 1024, 1 << 32, 1 << 63} {
		for i := 0; i < 100; i++ {
			if v := r.Uintn(n); v >= n {
				t.Fatalf("Uintn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUintnOne(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		if v := r.Uintn(1); v != 0 {
			t.Fatalf("Uintn(1) = %d, want 0", v)
		}
	}
}

func TestUintnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uintn(0) did not panic")
		}
	}()
	New(1).Uintn(0)
}

func TestUintnUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; loose threshold, deterministic seed.
	r := New(12345)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uintn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 40 {
		t.Fatalf("chi-squared = %.2f, distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for i := 1; i < 100; i++ {
		v := r.Intn(i)
		if v < 0 || v >= i {
			t.Fatalf("Intn(%d) = %d out of range", i, v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(13)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < n*45/100 || trues > n*55/100 {
		t.Fatalf("Bool() returned true %d/%d times", trues, n)
	}
}

func TestMul64MatchesBitsMul64(t *testing.T) {
	if err := quick.Check(func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		hi2, lo2 := bits.Mul64(x, y)
		return lo == lo2 && hi == hi2
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUintn(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uintn(1000)
	}
	_ = sink
}
