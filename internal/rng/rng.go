// Package rng provides small, fast pseudo-random number generators used by
// the queue implementations and the benchmark harness.
//
// The benchmark harness gives every worker its own generator so that random
// key generation and random queue selection never contend on shared state.
// We use xoroshiro128** (Blackman & Vigna) seeded via splitmix64, the same
// family used by the paper's C++ benchmark code. The generators implement
// only what the suite needs: 64-bit words, bounded uniform integers and
// bounded uniform integers computed without division on the fast path.
package rng

import "sync/atomic"

// SplitMix64 advances the state *s and returns the next output of the
// splitmix64 sequence. It is used to expand a single 64-bit seed into the
// larger state of other generators, and is a fine generator on its own for
// non-critical uses.
func SplitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoroshiro is a xoroshiro128** generator. The zero value is invalid; use
// New or Seed before drawing numbers.
type Xoroshiro struct {
	s0, s1 uint64
}

// globalSeed makes New return distinct streams when called without an
// explicit seed (e.g. one call per worker goroutine).
var globalSeed atomic.Uint64

// New returns a generator seeded from seed. Distinct seeds yield
// (practically) non-overlapping streams thanks to splitmix64 expansion.
func New(seed uint64) *Xoroshiro {
	var r Xoroshiro
	r.Seed(seed)
	return &r
}

// NewAuto returns a generator with a process-unique seed. Useful when the
// caller has no natural seed, such as short-lived example programs.
func NewAuto() *Xoroshiro {
	return New(globalSeed.Add(0x9e3779b97f4a7c15))
}

// Seed resets the generator state deterministically from seed.
func (r *Xoroshiro) Seed(seed uint64) {
	sm := seed
	r.s0 = SplitMix64(&sm)
	r.s1 = SplitMix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		// xoroshiro must not be seeded with the all-zero state.
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit output.
func (r *Xoroshiro) Uint64() uint64 {
	s0, s1 := r.s0, r.s1
	res := rotl(s0*5, 7) * 9
	s1 ^= s0
	r.s0 = rotl(s0, 24) ^ s1 ^ (s1 << 16)
	r.s1 = rotl(s1, 37)
	return res
}

// Uint32 returns the next 32-bit output (the high half of Uint64, which has
// the better-distributed bits for this family).
func (r *Xoroshiro) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Uintn returns a uniform integer in [0, n). n must be > 0.
// It uses Lemire's multiply-shift reduction: a single multiplication on the
// fast path, with a rejection loop only in the (rare) biased region.
func (r *Xoroshiro) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uintn with n == 0")
	}
	// Fast path for powers of two: pure mask.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	v := r.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0 and fit in int.
func (r *Xoroshiro) Intn(n int) int {
	return int(r.Uintn(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Xoroshiro) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns an unbiased random boolean.
func (r *Xoroshiro) Bool() bool { return r.Uint64()&1 == 1 }

// mul64 returns the 128-bit product of x and y as (hi, lo).
// Equivalent to math/bits.Mul64 but written out so the package stays free of
// non-essential imports.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}
