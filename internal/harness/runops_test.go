package harness

import (
	"testing"
	"time"

	"cpq/internal/keys"
	"cpq/internal/workload"
)

func TestRunOpsExactCount(t *testing.T) {
	cfg := quickCfg(3)
	res := RunOps(cfg, 1000)
	if res.Ops != 3000 {
		t.Fatalf("Ops = %d, want 3000", res.Ops)
	}
	if res.Duration <= 0 {
		t.Fatal("non-positive duration")
	}
	for w, n := range res.PerThread {
		if n != 1000 {
			t.Fatalf("worker %d performed %d ops", w, n)
		}
	}
}

func TestRunOpsFloor(t *testing.T) {
	cfg := quickCfg(1)
	res := RunOps(cfg, 0) // clamps to 1
	if res.Ops != 1 {
		t.Fatalf("Ops = %d, want 1", res.Ops)
	}
}

func TestRunOpsHoldModel(t *testing.T) {
	// The strict hold-model distribution needs Observe feedback from the
	// run loop; this exercises that path end-to-end.
	cfg := quickCfg(2)
	cfg.KeyDist = keys.HoldAscending
	cfg.Workload = workload.Alternating
	cfg.Prefill = 100
	res := RunOps(cfg, 2000)
	if res.Ops != 4000 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.EmptyDeletes > res.Ops/4 {
		t.Fatalf("%d empty deletes out of %d", res.EmptyDeletes, res.Ops)
	}
}

func TestRunBatchedAlternating(t *testing.T) {
	cfg := quickCfg(2)
	cfg.Workload = workload.Alternating
	cfg.BatchSize = 32
	cfg.Duration = 20 * time.Millisecond
	res := Run(cfg)
	if res.Ops == 0 {
		t.Fatal("no ops under batched alternating workload")
	}
}

func TestRunOpsLatencySamples(t *testing.T) {
	cfg := quickCfg(2)
	res := RunOps(cfg, 5000)
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 || res.LatencyMax < res.LatencyP99 {
		t.Fatalf("latency percentiles implausible: p50=%v p99=%v max=%v",
			res.LatencyP50, res.LatencyP99, res.LatencyMax)
	}
}

func TestRunLeavesLatencyZero(t *testing.T) {
	cfg := quickCfg(1)
	res := Run(cfg)
	if res.LatencyP50 != 0 || res.LatencyP99 != 0 {
		t.Fatal("duration-mode Run populated latency fields")
	}
}
