package harness

import (
	"testing"
	"time"

	"cpq/internal/core"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

func klsmFactory(threads int) pq.Queue { return core.NewKLSM(128) }

func withTelemetry(t *testing.T, f func()) {
	t.Helper()
	prev := telemetry.Enabled
	telemetry.Enabled = true
	defer func() {
		telemetry.Enabled = prev
		telemetry.Reset()
	}()
	telemetry.Reset()
	f()
}

func TestRunTelemetryDisabled(t *testing.T) {
	if telemetry.Enabled {
		t.Fatal("test requires the default Enabled=false")
	}
	res := Run(quickCfg(2))
	if res.Telemetry != nil {
		t.Error("disabled run produced a telemetry snapshot")
	}
	if res.LatencyP50 != 0 {
		t.Error("disabled run populated latency percentiles")
	}
}

func TestRunTelemetryEnabled(t *testing.T) {
	withTelemetry(t, func() {
		cfg := quickCfg(2)
		cfg.NewQueue = klsmFactory
		res := Run(cfg)
		if res.Telemetry == nil {
			t.Fatal("enabled run produced no telemetry snapshot")
		}
		if res.Telemetry.Zero() {
			t.Error("k-LSM run recorded no internal events")
		}
		if res.Telemetry.Counts[telemetry.LocalMerge] == 0 {
			t.Error("k-LSM run recorded no local merges")
		}
		if res.Telemetry.InsertLat.Count() == 0 || res.Telemetry.DeleteLat.Count() == 0 {
			t.Error("latency histograms empty")
		}
		if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 ||
			res.LatencyP999 < res.LatencyP99 || res.LatencyMax < res.LatencyP999 {
			t.Errorf("latency percentiles not monotone: p50=%v p99=%v p999=%v max=%v",
				res.LatencyP50, res.LatencyP99, res.LatencyP999, res.LatencyMax)
		}
	})
}

func TestRunOpsTelemetryEnabled(t *testing.T) {
	withTelemetry(t, func() {
		cfg := quickCfg(2)
		cfg.NewQueue = klsmFactory
		res := RunOps(cfg, 5000)
		if res.Telemetry == nil || res.Telemetry.Zero() {
			t.Fatal("RunOps recorded no telemetry")
		}
		if res.LatencyP999 < res.LatencyP99 {
			t.Errorf("p999=%v below p99=%v", res.LatencyP999, res.LatencyP99)
		}
	})
}

func TestRunRepeatedAggregatesTelemetry(t *testing.T) {
	withTelemetry(t, func() {
		cfg := quickCfg(1)
		cfg.NewQueue = klsmFactory
		cfg.Duration = 10 * time.Millisecond
		s := RunRepeated(cfg, 2)
		if s.Telemetry == nil {
			t.Fatal("series has no aggregated telemetry")
		}
		var sum uint64
		for _, r := range s.Results {
			sum += r.Telemetry.Counts[telemetry.LocalMerge]
		}
		if got := s.Telemetry.Counts[telemetry.LocalMerge]; got != sum {
			t.Errorf("series LocalMerge = %d, want sum of reps %d", got, sum)
		}
	})
}

// TestDisabledTelemetryZeroAllocPerOp asserts the benchmark's hot loop —
// queue ops plus the telemetry guard branches the harness workers execute —
// allocates nothing extra per operation while telemetry is off. The k-LSM
// allocates internally in amortized bursts (block pools), so the loop runs
// against a prefilled GlobalLock heap whose backing array has stabilized:
// any allocation seen here would come from the instrumentation itself.
func TestDisabledTelemetryZeroAllocPerOp(t *testing.T) {
	if telemetry.Enabled {
		t.Fatal("test requires the default Enabled=false")
	}
	h := quickCfg(1).NewQueue(1).Handle()
	tel := telemetry.NewShard()
	for i := 0; i < 4096; i++ { // warm up: let the heap's array reach steady size
		h.Insert(uint64(i), 0)
	}
	var k uint64
	if n := testing.AllocsPerRun(1000, func() {
		t0 := time.Now()
		h.Insert(k, 0)
		tel.ObserveInsert(time.Since(t0).Nanoseconds())
		t0 = time.Now()
		if kk, _, ok := h.DeleteMin(); ok {
			k = kk + 1
		}
		tel.ObserveDelete(time.Since(t0).Nanoseconds())
		tel.Inc(telemetry.LocalMerge)
	}); n != 0 {
		t.Errorf("disabled telemetry op loop allocates %v per op, want 0", n)
	}
}
