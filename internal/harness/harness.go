// Package harness implements the paper's throughput benchmark: prefill the
// queue with 10^6 items, run P worker threads for a fixed wall-clock
// duration under a configurable workload and key distribution, and report
// million operations per second (MOps/s). Repeated runs are summarized with
// mean and 95% confidence intervals, as in the paper ("each benchmark is
// executed [10] times, and we report on the mean values and confidence
// intervals").
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/stats"
	"cpq/internal/telemetry"
	"cpq/internal/workload"
)

// DefaultPrefill is the paper's prefill size (10^6 elements).
const DefaultPrefill = 1_000_000

// Config describes one benchmark cell.
type Config struct {
	// NewQueue constructs a fresh queue for the given thread count. Thread
	// count matters to structures parameterized by P (MultiQueue, SprayList).
	NewQueue func(threads int) pq.Queue
	// Threads is the number of worker goroutines.
	Threads int
	// Duration is the measurement interval.
	Duration time.Duration
	// Workload selects the operation mix.
	Workload workload.Kind
	// KeyDist selects the key distribution.
	KeyDist keys.Distribution
	// Prefill is the number of items inserted before measurement;
	// negative selects DefaultPrefill, zero means no prefill.
	Prefill int
	// InsertFrac is the insertion probability under the Uniform workload
	// (0 selects the paper's 0.5).
	InsertFrac float64
	// BatchSize is the operation batch size under the Alternating workload
	// (Appendix F's "operation batch size"; 0/1 = strict alternation,
	// large values approximate the sorting benchmark).
	BatchSize int
	// OpBatch is the batch-first API width: with OpBatch >= 2 workers issue
	// InsertN/DeleteMinN calls moving OpBatch items each (through the native
	// batch paths where a queue has them, the generic scalar loop
	// otherwise — counted by the batch-fallback telemetry counter). 0/1 is
	// the scalar mode. An operation is still one item moved: a batch call
	// counts OpBatch ops, and the unserved tail of a short delete batch
	// counts as empty deletes, so MOps/s stays comparable across widths.
	OpBatch int
	// Seed makes runs reproducible; 0 selects a fixed default.
	Seed uint64
	// Pin, when set, locks each worker goroutine to an OS thread for the
	// duration of the run (closest Go analogue of the paper's core pinning).
	Pin bool
}

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Prefill < 0 {
		c.Prefill = DefaultPrefill
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	return c
}

// Result is the outcome of a single run.
type Result struct {
	// Ops is the total number of completed operations (insertions plus
	// deletions; deletions on an empty queue count as operations, exactly
	// as a C++ benchmark loop would count them).
	Ops uint64
	// EmptyDeletes counts deletions that found the queue empty.
	EmptyDeletes uint64
	// Duration is the measured wall-clock interval.
	Duration time.Duration
	// PerThread is the per-worker operation count (load-balance insight).
	PerThread []uint64
	// LatencyP50, LatencyP99, LatencyP999 and LatencyMax are per-operation
	// latencies in nanoseconds, measured on a sample of operations (every
	// latencySampleEvery-th op). Populated by RunOps (the latency mode)
	// always, and by Run when telemetry is enabled — then from the log₂
	// histogram, so values are bucket upper bounds ("p99 ≤ X").
	LatencyP50, LatencyP99, LatencyP999, LatencyMax float64
	// Telemetry holds the queue-internals counter and latency-histogram
	// deltas of the measured phase (prefill excluded: the snapshot pair
	// brackets only the worker phase). Nil unless telemetry.Enabled.
	Telemetry *telemetry.Snapshot
}

// MOps returns the throughput in million operations per second.
func (r Result) MOps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / 1e6 / r.Duration.Seconds()
}

// paddedCounter avoids false sharing between per-worker counters.
type paddedCounter struct {
	ops   uint64
	empty uint64
	_     [6]uint64
}

// Run executes one benchmark run. With telemetry enabled, a snapshot pair
// brackets the worker phase (prefill activity is excluded) and every
// latencySampleEvery-th operation is timed into the workers' private log₂
// histograms; Result.Telemetry carries the diff.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	q := cfg.NewQueue(cfg.Threads)
	defer pq.Close(q)
	PrefillQueue(q, cfg)
	var before telemetry.Snapshot
	if telemetry.Enabled {
		before = telemetry.Capture()
	}

	var (
		start    = make(chan struct{})
		stop     atomic.Bool
		counters = make([]paddedCounter, cfg.Threads)
		wg       sync.WaitGroup
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if cfg.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			h := q.Handle()
			tel := telemetry.NewShard()
			r := rng.New(cfg.Seed + uint64(w)*0x6a09e667f3bcc909)
			gen := keys.NewGenerator(cfg.KeyDist, r)
			policy := workload.ForWorkerBatched(cfg.Workload, w, cfg.Threads, cfg.InsertFrac, cfg.BatchSize, r)
			var ops, empty uint64
			if cfg.OpBatch > 1 {
				b := cfg.OpBatch
				kvs := make([]pq.KV, b)
				_, nativeIns := h.(pq.BatchInserter)
				_, nativeDel := h.(pq.BatchDeleter)
				var calls, fallback uint64
				<-start
				for !stop.Load() {
					// In batch mode the latency sample times one whole batch
					// call (the synchronization episode the batch API is
					// about), every latencySampleEvery-th call.
					sample := telemetry.Enabled && calls%latencySampleEvery == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					if policy.Next() == workload.Insert {
						for i := range kvs {
							kvs[i] = pq.KV{Key: gen.Next(), Value: uint64(w)}
						}
						pq.InsertN(h, kvs)
						if !nativeIns {
							fallback++
						}
						if sample {
							tel.ObserveInsert(time.Since(t0).Nanoseconds())
						}
					} else {
						got := pq.DeleteMinN(h, kvs, b)
						if !nativeDel {
							fallback++
						}
						if sample {
							tel.ObserveDelete(time.Since(t0).Nanoseconds())
						}
						for i := 0; i < got; i++ {
							gen.Observe(kvs[i].Key)
						}
						empty += uint64(b - got)
					}
					ops += uint64(b)
					calls++
				}
				if fallback > 0 {
					tel.Add(telemetry.BatchFallback, fallback)
				}
			} else {
				<-start
				for !stop.Load() {
					sample := telemetry.Enabled && ops%latencySampleEvery == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					if policy.Next() == workload.Insert {
						h.Insert(gen.Next(), uint64(w))
						if sample {
							tel.ObserveInsert(time.Since(t0).Nanoseconds())
						}
					} else {
						k, _, ok := h.DeleteMin()
						if sample {
							tel.ObserveDelete(time.Since(t0).Nanoseconds())
						}
						if ok {
							gen.Observe(k) // feeds the strict hold-model distributions
						} else {
							empty++
						}
					}
					ops++
				}
			}
			pq.Flush(h)
			counters[w].ops = ops
			counters[w].empty = empty
		}(w)
	}
	began := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(began)

	res := Result{Duration: elapsed, PerThread: make([]uint64, cfg.Threads)}
	for w := range counters {
		res.Ops += counters[w].ops
		res.EmptyDeletes += counters[w].empty
		res.PerThread[w] = counters[w].ops
	}
	if telemetry.Enabled {
		snap := telemetry.Capture().Diff(before)
		res.Telemetry = &snap
		lat := snap.InsertLat.Merge(snap.DeleteLat)
		if lat.Count() > 0 {
			res.LatencyP50 = lat.Percentile(50)
			res.LatencyP99 = lat.Percentile(99)
			res.LatencyP999 = lat.Percentile(99.9)
			res.LatencyMax = lat.Percentile(100)
		}
	}
	return res
}

// latencySampleEvery controls the op-latency sampling rate of RunOps:
// every 16th operation is timed individually, keeping timer overhead out
// of the other 15.
const latencySampleEvery = 16

// RunOps is the benchmark's latency mode (the paper's "throughput/latency
// switch", Appendix F): instead of a fixed duration, each worker performs a
// prescribed number of operations, the total elapsed time is measured, and
// a sample of per-operation latencies yields P50/P99/P99.9/max (exact
// sample percentiles, unlike Run's bucketed ones). With telemetry enabled
// the sampled latencies additionally feed the per-kind histograms and
// Result.Telemetry carries the measured phase's counter deltas.
func RunOps(cfg Config, opsPerThread int) Result {
	cfg = cfg.withDefaults()
	if opsPerThread < 1 {
		opsPerThread = 1
	}
	q := cfg.NewQueue(cfg.Threads)
	defer pq.Close(q)
	PrefillQueue(q, cfg)
	var before telemetry.Snapshot
	if telemetry.Enabled {
		before = telemetry.Capture()
	}

	var (
		start    = make(chan struct{})
		counters = make([]paddedCounter, cfg.Threads)
		samples  = make([][]float64, cfg.Threads)
		wg       sync.WaitGroup
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if cfg.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			h := q.Handle()
			tel := telemetry.NewShard()
			r := rng.New(cfg.Seed + uint64(w)*0x6a09e667f3bcc909)
			gen := keys.NewGenerator(cfg.KeyDist, r)
			policy := workload.ForWorkerBatched(cfg.Workload, w, cfg.Threads, cfg.InsertFrac, cfg.BatchSize, r)
			local := make([]float64, 0, opsPerThread/latencySampleEvery+1)
			var done, empty uint64
			if cfg.OpBatch > 1 {
				b := cfg.OpBatch
				kvs := make([]pq.KV, b)
				_, nativeIns := h.(pq.BatchInserter)
				_, nativeDel := h.(pq.BatchDeleter)
				var calls, fallback uint64
				<-start
				for done < uint64(opsPerThread) {
					sample := calls%latencySampleEvery == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					isInsert := policy.Next() == workload.Insert
					if isInsert {
						for i := range kvs {
							kvs[i] = pq.KV{Key: gen.Next(), Value: uint64(w)}
						}
						pq.InsertN(h, kvs)
						if !nativeIns {
							fallback++
						}
					} else {
						got := pq.DeleteMinN(h, kvs, b)
						if !nativeDel {
							fallback++
						}
						for i := 0; i < got; i++ {
							gen.Observe(kvs[i].Key)
						}
						empty += uint64(b - got)
					}
					if sample {
						ns := time.Since(t0).Nanoseconds()
						local = append(local, float64(ns))
						if isInsert {
							tel.ObserveInsert(ns)
						} else {
							tel.ObserveDelete(ns)
						}
					}
					done += uint64(b)
					calls++
				}
				if fallback > 0 {
					tel.Add(telemetry.BatchFallback, fallback)
				}
			} else {
				<-start
				for i := 0; i < opsPerThread; i++ {
					sample := i%latencySampleEvery == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					isInsert := policy.Next() == workload.Insert
					if isInsert {
						h.Insert(gen.Next(), uint64(w))
					} else if k, _, ok := h.DeleteMin(); ok {
						gen.Observe(k)
					} else {
						empty++
					}
					if sample {
						ns := time.Since(t0).Nanoseconds()
						local = append(local, float64(ns))
						if isInsert {
							tel.ObserveInsert(ns)
						} else {
							tel.ObserveDelete(ns)
						}
					}
				}
				done = uint64(opsPerThread)
			}
			pq.Flush(h)
			counters[w].ops = done
			counters[w].empty = empty
			samples[w] = local
		}(w)
	}
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)

	res := Result{Duration: elapsed, PerThread: make([]uint64, cfg.Threads)}
	var all []float64
	for w := range counters {
		res.Ops += counters[w].ops
		res.EmptyDeletes += counters[w].empty
		res.PerThread[w] = counters[w].ops
		all = append(all, samples[w]...)
	}
	if len(all) > 0 {
		res.LatencyP50 = stats.Percentile(all, 50)
		res.LatencyP99 = stats.Percentile(all, 99)
		res.LatencyP999 = stats.Percentile(all, 99.9)
		res.LatencyMax = stats.Percentile(all, 100)
	}
	if telemetry.Enabled {
		snap := telemetry.Capture().Diff(before)
		res.Telemetry = &snap
	}
	return res
}

// PrefillQueue inserts cfg.Prefill items using the configured key
// distribution, in parallel across the configured thread count, exactly as
// the benchmark's prefill phase ("prefilling is done according to the
// workload and key distribution").
func PrefillQueue(q pq.Queue, cfg Config) {
	cfg = cfg.withDefaults()
	if cfg.Prefill == 0 {
		return
	}
	var wg sync.WaitGroup
	per := cfg.Prefill / cfg.Threads
	extra := cfg.Prefill % cfg.Threads
	for w := 0; w < cfg.Threads; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(cfg.Seed ^ (uint64(w)+1)*0xbf58476d1ce4e5b9)
			gen := keys.NewGenerator(cfg.KeyDist, r)
			for i := 0; i < n; i++ {
				h.Insert(gen.Next(), uint64(w))
			}
			pq.Flush(h)
		}(w, n)
	}
	wg.Wait()
}

// Series is the aggregated outcome of repeated runs of one cell.
type Series struct {
	Config  Config
	Results []Result
	// Throughput summarizes MOps/s across the repetitions.
	Throughput stats.Summary
	// Telemetry is the sum of the per-repetition counter deltas; nil unless
	// telemetry was enabled for the runs.
	Telemetry *telemetry.Snapshot
}

// RunRepeated executes reps runs of cfg and summarizes the throughput.
// Reps < 1 is treated as 1. Each repetition uses a derived seed so runs are
// independent but the series is reproducible.
func RunRepeated(cfg Config, reps int) Series {
	if reps < 1 {
		reps = 1
	}
	cfg = cfg.withDefaults()
	s := Series{Config: cfg}
	mops := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x2545f4914f6cdd1d
		r := Run(c)
		s.Results = append(s.Results, r)
		mops = append(mops, r.MOps())
		if r.Telemetry != nil {
			if s.Telemetry == nil {
				s.Telemetry = &telemetry.Snapshot{}
			}
			merged := s.Telemetry.Merge(*r.Telemetry)
			s.Telemetry = &merged
		}
	}
	s.Throughput = stats.Summarize(mops)
	return s
}

// String renders a Series row like the paper's plots report them.
func (s Series) String() string {
	return fmt.Sprintf("threads=%d %s/%s: %.3f ±%.3f MOps/s (n=%d)",
		s.Config.Threads, s.Config.Workload, s.Config.KeyDist,
		s.Throughput.Mean, s.Throughput.CI95, s.Throughput.N)
}
