package harness

import (
	"testing"
	"time"

	"cpq/internal/keys"
	"cpq/internal/multiq"
	"cpq/internal/pq"
	"cpq/internal/seqheap"
	"cpq/internal/workload"
)

func glFactory(threads int) pq.Queue { return seqheap.NewGlobalLock() }

func quickCfg(threads int) Config {
	return Config{
		NewQueue: glFactory,
		Threads:  threads,
		Duration: 30 * time.Millisecond,
		Workload: workload.Uniform,
		KeyDist:  keys.Uniform32,
		Prefill:  1000,
		Seed:     42,
	}
}

func TestRunProducesOps(t *testing.T) {
	res := Run(quickCfg(2))
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if res.MOps() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if len(res.PerThread) != 2 {
		t.Fatalf("PerThread has %d entries", len(res.PerThread))
	}
	var sum uint64
	for _, n := range res.PerThread {
		sum += n
	}
	if sum != res.Ops {
		t.Fatalf("per-thread sum %d != total %d", sum, res.Ops)
	}
	if res.Duration < 30*time.Millisecond {
		t.Fatalf("measured duration %v below configured", res.Duration)
	}
}

func TestRunDefaults(t *testing.T) {
	cfg := Config{NewQueue: glFactory, Duration: 10 * time.Millisecond, Prefill: 10}
	res := Run(cfg) // Threads 0 → 1
	if res.Ops == 0 || len(res.PerThread) != 1 {
		t.Fatalf("defaulted run: %+v", res)
	}
	c := Config{}.withDefaults()
	if c.Threads != 1 || c.Duration != time.Second || c.Seed == 0 {
		t.Fatalf("withDefaults: %+v", c)
	}
	if (Config{Prefill: -1}).withDefaults().Prefill != DefaultPrefill {
		t.Fatal("negative prefill did not select default")
	}
	if (Config{Prefill: 0}).withDefaults().Prefill != 0 {
		t.Fatal("zero prefill must stay zero")
	}
}

func TestPrefillCount(t *testing.T) {
	q := seqheap.NewGlobalLock()
	cfg := quickCfg(3)
	cfg.Prefill = 1003 // not divisible by 3: remainder must not be lost
	PrefillQueue(q, cfg)
	if n := q.Len(); n != 1003 {
		t.Fatalf("prefill inserted %d, want 1003", n)
	}
}

func TestPrefillZero(t *testing.T) {
	q := seqheap.NewGlobalLock()
	cfg := quickCfg(2)
	cfg.Prefill = 0
	PrefillQueue(q, cfg)
	if q.Len() != 0 {
		t.Fatal("zero prefill inserted items")
	}
}

func TestSplitWorkloadRuns(t *testing.T) {
	cfg := quickCfg(4)
	cfg.Workload = workload.Split
	res := Run(cfg)
	if res.Ops == 0 {
		t.Fatal("split run recorded no ops")
	}
}

func TestAlternatingWorkloadSteadyState(t *testing.T) {
	cfg := quickCfg(2)
	cfg.Workload = workload.Alternating
	res := Run(cfg)
	if res.Ops == 0 {
		t.Fatal("alternating run recorded no ops")
	}
	// Strict alternation starting with insert keeps the queue non-empty;
	// empty deletes should be rare (only transient races).
	if res.EmptyDeletes > res.Ops/10 {
		t.Fatalf("%d of %d deletes hit empty queue", res.EmptyDeletes, res.Ops)
	}
}

func TestRunRepeatedSummary(t *testing.T) {
	s := RunRepeated(quickCfg(2), 3)
	if len(s.Results) != 3 {
		t.Fatalf("%d results", len(s.Results))
	}
	if s.Throughput.N != 3 || s.Throughput.Mean <= 0 {
		t.Fatalf("summary: %+v", s.Throughput)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if len(RunRepeated(quickCfg(1), 0).Results) != 1 {
		t.Fatal("reps floor not applied")
	}
}

func TestReproducibleSeeds(t *testing.T) {
	// Same seed must produce the same prefill content (deterministic
	// generators); we verify via a drain comparison on two queues.
	q1 := seqheap.NewGlobalLock()
	q2 := seqheap.NewGlobalLock()
	cfg := quickCfg(2)
	cfg.Prefill = 500
	PrefillQueue(q1, cfg)
	PrefillQueue(q2, cfg)
	h1, h2 := q1.Handle(), q2.Handle()
	for {
		k1, _, ok1 := h1.DeleteMin()
		k2, _, ok2 := h2.DeleteMin()
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("prefill not reproducible: %d/%v vs %d/%v", k1, ok1, k2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

// TestRunFlushesEngineeredHandles runs the engineered MultiQueue through
// the throughput harness under the split workload, where the per-thread
// counters give exact insert and delete counts: after the run every
// operation must be accounted for in the queue (the workers' buffers were
// flushed at phase end), and a single fresh handle must drain exactly
// prefill + inserts - successful deletes items.
func TestRunFlushesEngineeredHandles(t *testing.T) {
	var captured *multiq.Queue
	res := Run(Config{
		NewQueue: func(threads int) pq.Queue {
			captured = multiq.NewEngineered(2, threads, 4, 8)
			return captured
		},
		Threads:  2, // split: worker 0 inserts only, worker 1 deletes only
		Duration: 30 * time.Millisecond,
		Workload: workload.Split,
		KeyDist:  keys.Uniform32,
		Prefill:  100,
		Seed:     21,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	inserts := int(res.PerThread[0])
	deletes := int(res.PerThread[1] - res.EmptyDeletes)
	want := 100 + inserts - deletes
	if got := captured.Len(); got != want {
		t.Fatalf("queue holds %d items after run, want %d", got, want)
	}
	h := captured.Handle()
	drained := 0
	for {
		if _, _, ok := h.DeleteMin(); !ok {
			break
		}
		drained++
	}
	if drained != want {
		t.Fatalf("drained %d items, want %d", drained, want)
	}
}

// TestRunOpsEngineered smokes the latency mode over the engineered variant.
func TestRunOpsEngineered(t *testing.T) {
	res := RunOps(Config{
		NewQueue: func(threads int) pq.Queue {
			return multiq.NewEngineered(2, threads, 4, 8)
		},
		Threads:  2,
		Workload: workload.Uniform,
		KeyDist:  keys.Uniform32,
		Prefill:  1000,
		Seed:     22,
	}, 2000)
	if res.Ops != 4000 {
		t.Fatalf("Ops = %d, want 4000", res.Ops)
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
	}
}
