// Goroutine-churn benchmark mode: the handle-lifecycle stress the paper's
// fixed-P harness cannot express. A server that spawns a goroutine per
// request breaks the paper's model in both directions — goroutines
// outnumber GOMAXPROCS by orders of magnitude and live for one small op
// burst — so the cost under test is not the queue's operations but the
// handle lifecycle around them: checkout, a short burst, checkin, repeat,
// M times. RunChurn drives that shape through either the elastic pq.Pool
// (the subsystem under test) or a deliberately naive mutex-guarded handle
// list (the baseline every server would write first), so the two can be
// compared cell-for-cell.
package harness

import (
	"sync"
	"time"

	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

// ChurnConfig describes one goroutine-churn benchmark cell.
type ChurnConfig struct {
	// NewQueue constructs the queue under test for a given handle count
	// (churn mode passes 1: the pool's Grower calls do the sizing).
	NewQueue func(threads int) pq.Queue
	// Slots is the number of concurrently live goroutines: each slot runs
	// its share of the Goroutines sequentially, spawn-join, so at any
	// moment at most Slots short-lived goroutines (and handles) are live.
	Slots int
	// Goroutines is the total number of short-lived goroutines spawned
	// across all slots (the benchmark's M, typically >> GOMAXPROCS).
	Goroutines int
	// BurstOps is how many operations each goroutine performs between
	// checkout and checkin (the "small op burst"; default 64).
	BurstOps int
	// Workload, KeyDist, Prefill, InsertFrac and Seed mirror Config.
	Workload   workload.Kind
	KeyDist    keys.Distribution
	Prefill    int
	InsertFrac float64
	Seed       uint64
	// AbandonEvery, when > 0, makes every AbandonEvery-th goroutine exit
	// without returning its handle. Pool mode recovers these by stealing;
	// the naive baseline loses the handle outright (and, being naive, any
	// items it still buffered) and pays for a fresh one.
	AbandonEvery int
	// MaxHandles caps the pool (<= 0 selects Slots+1). Ignored by the
	// naive baseline, which has no cap.
	MaxHandles int
	// Naive selects the baseline lifecycle: one global mutex around a
	// free-handle list instead of the pool's per-shard fast path.
	Naive bool
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Slots < 1 {
		c.Slots = 1
	}
	if c.Goroutines < c.Slots {
		c.Goroutines = c.Slots
	}
	if c.BurstOps < 1 {
		c.BurstOps = 64
	}
	if c.Prefill < 0 {
		c.Prefill = DefaultPrefill
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.MaxHandles <= 0 {
		c.MaxHandles = c.Slots + 1
	}
	return c
}

// ChurnStats is the outcome of one churn run.
type ChurnStats struct {
	// Ops, EmptyDeletes and Duration as in Result; PerSlot is the
	// per-slot operation count.
	Ops, EmptyDeletes uint64
	Duration          time.Duration
	PerSlot           []uint64
	// Goroutines is the number of short-lived goroutines actually spawned.
	Goroutines int
	// HandlesCreated, PeakLive and Steals are the lifecycle's accounting:
	// how many real handles backed the M goroutines, the high-water mark
	// of concurrently checked-out handles, and how many abandoned handles
	// were stolen back (always 0 for the naive baseline — it cannot).
	HandlesCreated int
	PeakLive       int
	Steals         uint64
}

// MOps returns the throughput in million operations per second. Lifecycle
// overhead is inside the measured interval, which is the point.
func (s ChurnStats) MOps() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Ops) / 1e6 / s.Duration.Seconds()
}

// naiveLifecycle is the baseline: a single mutex around a free-handle
// slice. Checkout and checkin serialize every goroutine through one lock
// and one cache line; an abandoned handle is simply gone, so the created
// count climbs with the abandonment rate and structures whose per-handle
// state persists (the k-LSM family) accumulate dead components.
type naiveLifecycle struct {
	q       pq.Queue
	mu      sync.Mutex
	free    []pq.Handle
	live    int
	peak    int
	created int
}

func (n *naiveLifecycle) acquire() pq.Handle {
	n.mu.Lock()
	var h pq.Handle
	if l := len(n.free); l > 0 {
		h = n.free[l-1]
		n.free = n.free[:l-1]
	} else {
		h = n.q.Handle()
		n.created++
	}
	n.live++
	if n.live > n.peak {
		n.peak = n.live
	}
	n.mu.Unlock()
	return h
}

func (n *naiveLifecycle) release(h pq.Handle) {
	pq.Flush(h)
	n.mu.Lock()
	n.free = append(n.free, h)
	n.live--
	n.mu.Unlock()
}

// RunChurn spawns cfg.Goroutines short-lived goroutines across cfg.Slots
// spawn-join slots. Each goroutine checks a handle out, performs
// cfg.BurstOps operations, and checks it back in (unless it is an
// abandoner); its slot then spawns the next. The measured interval covers
// the whole churn, so checkout/checkin cost is part of the reported
// throughput.
func RunChurn(cfg ChurnConfig) ChurnStats {
	cfg = cfg.withDefaults()
	// Construct minimally sized: the pool grows layout-elastic structures
	// (Grower) as it creates handles, which is the lifecycle under test.
	q := cfg.NewQueue(1)
	defer pq.Close(q)
	pcfg := Config{
		NewQueue: func(int) pq.Queue { return q },
		Threads:  cfg.Slots,
		KeyDist:  cfg.KeyDist,
		Prefill:  cfg.Prefill,
		Seed:     cfg.Seed,
	}
	PrefillQueue(q, pcfg)

	var pool *pq.Pool
	var naive *naiveLifecycle
	var acquire func() pq.Handle
	var release func(pq.Handle)
	if cfg.Naive {
		naive = &naiveLifecycle{q: q}
		acquire = naive.acquire
		release = naive.release
	} else {
		pool = pq.NewPool(q, pq.PoolOptions{MaxHandles: cfg.MaxHandles})
		acquire = func() pq.Handle { return pool.Acquire() }
		release = func(h pq.Handle) { pool.Release(h.(*pq.PooledHandle)) }
	}

	var (
		start    = make(chan struct{})
		counters = make([]paddedCounter, cfg.Slots)
		wg       sync.WaitGroup
	)
	for s := 0; s < cfg.Slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Slot-local request context: the RNG, key generator and
			// workload policy persist across the slot's goroutines (they
			// run strictly one after another), so the measured per-
			// goroutine cost is the handle lifecycle, not generator setup.
			r := rng.New(cfg.Seed + uint64(s)*0x6a09e667f3bcc909)
			gen := keys.NewGenerator(cfg.KeyDist, r)
			policy := workload.ForWorkerBatched(cfg.Workload, s, cfg.Slots, cfg.InsertFrac, 0, r)
			var ops, empty uint64
			done := make(chan struct{}) // reused by every goroutine of this slot
			<-start
			for g := s; g < cfg.Goroutines; g += cfg.Slots {
				abandon := cfg.AbandonEvery > 0 && (g+1)%cfg.AbandonEvery == 0
				go func() {
					h := acquire()
					for i := 0; i < cfg.BurstOps; i++ {
						if policy.Next() == workload.Insert {
							h.Insert(gen.Next(), uint64(s))
						} else if k, _, ok := h.DeleteMin(); ok {
							gen.Observe(k)
						} else {
							empty++
						}
					}
					ops += uint64(cfg.BurstOps)
					if !abandon {
						release(h)
					} // abandoners just exit: pool steals, naive loses
					done <- struct{}{}
				}()
				<-done
			}
			counters[s].ops = ops
			counters[s].empty = empty
		}(s)
	}
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)

	res := ChurnStats{
		Duration:   elapsed,
		PerSlot:    make([]uint64, cfg.Slots),
		Goroutines: cfg.Goroutines,
	}
	for s := range counters {
		res.Ops += counters[s].ops
		res.EmptyDeletes += counters[s].empty
		res.PerSlot[s] = counters[s].ops
	}
	if pool != nil {
		res.HandlesCreated = pool.Created()
		res.PeakLive = pool.PeakLive()
		res.Steals = pool.Steals()
	} else {
		res.HandlesCreated = naive.created
		res.PeakLive = naive.peak
	}
	return res
}
