package harness

import (
	"runtime"
	"testing"

	"cpq/internal/core"
	"cpq/internal/multiq"
	"cpq/internal/pq"
)

func TestRunChurnPooled(t *testing.T) {
	st := RunChurn(ChurnConfig{
		NewQueue:   func(int) pq.Queue { return multiq.New(2, 1) },
		Slots:      4,
		Goroutines: 400,
		BurstOps:   32,
		Prefill:    2000,
	})
	if st.Goroutines != 400 {
		t.Fatalf("Goroutines = %d, want 400", st.Goroutines)
	}
	if want := uint64(400 * 32); st.Ops != want {
		t.Fatalf("Ops = %d, want %d", st.Ops, want)
	}
	// The whole point: 400 goroutines served by a handful of real handles.
	if st.HandlesCreated > 5 {
		t.Fatalf("HandlesCreated = %d for 4 slots (cap 5): recycling broken", st.HandlesCreated)
	}
	if st.PeakLive < 1 || st.PeakLive > 5 {
		t.Fatalf("PeakLive = %d, want 1..5", st.PeakLive)
	}
	if st.MOps() <= 0 {
		t.Fatalf("MOps = %v, want > 0", st.MOps())
	}
}

func TestRunChurnAbandonmentStealing(t *testing.T) {
	st := RunChurn(ChurnConfig{
		NewQueue:     func(int) pq.Queue { return core.NewKLSM(128) },
		Slots:        2,
		Goroutines:   300,
		BurstOps:     16,
		Prefill:      1000,
		AbandonEvery: 10, // 30 goroutines walk away with their handle
	})
	// Every abandoned handle must eventually be stolen back — with a tiny
	// cap (Slots+1 = 3) the run cannot even finish otherwise, because the
	// abandoners exhaust the cap and Acquire waits for the collector.
	if st.Steals == 0 {
		t.Fatalf("no steals after %d abandonments: %+v", 300/10, st)
	}
	if st.HandlesCreated > 3 {
		t.Fatalf("HandlesCreated = %d, want <= cap 3", st.HandlesCreated)
	}
	if want := uint64(300 * 16); st.Ops != want {
		t.Fatalf("Ops = %d, want %d", st.Ops, want)
	}
}

func TestRunChurnNaiveBaseline(t *testing.T) {
	st := RunChurn(ChurnConfig{
		NewQueue:     func(int) pq.Queue { return multiq.New(2, 1) },
		Slots:        4,
		Goroutines:   200,
		BurstOps:     16,
		Prefill:      1000,
		AbandonEvery: 8,
		Naive:        true,
	})
	if st.Steals != 0 {
		t.Fatalf("naive baseline cannot steal, got %d", st.Steals)
	}
	// The naive lifecycle loses every abandoned handle and creates a fresh
	// one; 200/8 = 25 abandonments on top of the 4-5 working handles.
	if st.HandlesCreated < 25 {
		t.Fatalf("HandlesCreated = %d, want >= 25 (abandonment leaks handles)", st.HandlesCreated)
	}
	if want := uint64(200 * 16); st.Ops != want {
		t.Fatalf("Ops = %d, want %d", st.Ops, want)
	}
	runtime.GC() // drop the leaked handles before other tests run
}
