package ostree

import (
	"sort"
	"testing"
	"testing/quick"

	"cpq/internal/rng"
)

// oracle is a naive reference implementation against which the treap is
// property-tested.
type oracle struct {
	items []struct{ key, id uint64 }
}

func (o *oracle) insert(key, id uint64) {
	o.items = append(o.items, struct{ key, id uint64 }{key, id})
}

func (o *oracle) delete(key, id uint64) (int, bool) {
	idx := -1
	rank := 0
	for i, it := range o.items {
		if it.key < key {
			rank++
		}
		if it.key == key && it.id == id {
			idx = i
		}
	}
	if idx < 0 {
		return 0, false
	}
	o.items = append(o.items[:idx], o.items[idx+1:]...)
	return rank, true
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if _, ok := tr.Delete(1, 1); ok {
		t.Fatal("Delete on empty returned ok")
	}
	if _, _, ok := tr.Kth(0); ok {
		t.Fatal("Kth on empty returned ok")
	}
}

func TestInsertDeleteBasic(t *testing.T) {
	var tr Tree
	tr.Insert(5, 1)
	tr.Insert(3, 2)
	tr.Insert(7, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if k, id, ok := tr.Min(); !ok || k != 3 || id != 2 {
		t.Fatalf("Min = %d,%d,%v", k, id, ok)
	}
	// Deleting the min: zero smaller keys.
	if rank, ok := tr.Delete(3, 2); !ok || rank != 0 {
		t.Fatalf("Delete(3) rank=%d ok=%v", rank, ok)
	}
	// Deleting 7 with 5 still present: rank 1.
	if rank, ok := tr.Delete(7, 3); !ok || rank != 1 {
		t.Fatalf("Delete(7) rank=%d ok=%v", rank, ok)
	}
	if rank, ok := tr.Delete(5, 1); !ok || rank != 0 {
		t.Fatalf("Delete(5) rank=%d ok=%v", rank, ok)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain", tr.Len())
	}
}

func TestDeleteAbsent(t *testing.T) {
	var tr Tree
	tr.Insert(1, 1)
	if _, ok := tr.Delete(2, 2); ok {
		t.Fatal("deleting absent item returned ok")
	}
	if tr.Len() != 1 {
		t.Fatal("failed delete changed Len")
	}
}

func TestDuplicateKeysPessimisticRank(t *testing.T) {
	// Three items with the same key: strict-rank of any of them is 0 when
	// all share the minimum, regardless of id — the "pessimistic" handling
	// means equal keys do NOT count toward the rank.
	var tr Tree
	tr.Insert(9, 1)
	tr.Insert(9, 2)
	tr.Insert(9, 3)
	tr.Insert(4, 4)
	if rank, ok := tr.Delete(9, 2); !ok || rank != 1 {
		t.Fatalf("rank of dup key = %d ok=%v, want 1 (only key 4 smaller)", rank, ok)
	}
}

func TestContains(t *testing.T) {
	var tr Tree
	tr.Insert(10, 100)
	tr.Insert(10, 101)
	if !tr.Contains(10, 100) || !tr.Contains(10, 101) {
		t.Fatal("Contains missed present item")
	}
	if tr.Contains(10, 102) || tr.Contains(11, 100) {
		t.Fatal("Contains found absent item")
	}
}

func TestKthEnumeratesSorted(t *testing.T) {
	var tr Tree
	r := rng.New(3)
	type kv struct{ key, id uint64 }
	var all []kv
	for i := 0; i < 500; i++ {
		k := r.Uint64() % 50
		all = append(all, kv{k, uint64(i)})
		tr.Insert(k, uint64(i))
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key < all[j].key
		}
		return all[i].id < all[j].id
	})
	for i, want := range all {
		k, id, ok := tr.Kth(i)
		if !ok || k != want.key || id != want.id {
			t.Fatalf("Kth(%d) = %d,%d,%v want %d,%d", i, k, id, ok, want.key, want.id)
		}
	}
	if _, _, ok := tr.Kth(len(all)); ok {
		t.Fatal("Kth past end returned ok")
	}
}

func TestRank(t *testing.T) {
	var tr Tree
	for i := uint64(0); i < 10; i++ {
		tr.Insert(i*10, i)
	}
	if r := tr.Rank(0); r != 0 {
		t.Fatalf("Rank(0) = %d", r)
	}
	if r := tr.Rank(55); r != 6 {
		t.Fatalf("Rank(55) = %d", r)
	}
	if r := tr.Rank(1000); r != 10 {
		t.Fatalf("Rank(1000) = %d", r)
	}
}

func TestMatchesOracleProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, opsRaw []uint16) bool {
		var tr Tree
		var or oracle
		r := rng.New(seed)
		nextID := uint64(1)
		live := []struct{ key, id uint64 }{}
		for _, raw := range opsRaw {
			if raw%3 != 0 || len(live) == 0 {
				key := uint64(raw) % 64
				id := nextID
				nextID++
				tr.Insert(key, id)
				or.insert(key, id)
				live = append(live, struct{ key, id uint64 }{key, id})
			} else {
				pick := r.Intn(len(live))
				it := live[pick]
				live = append(live[:pick], live[pick+1:]...)
				gotRank, gotOK := tr.Delete(it.key, it.id)
				wantRank, wantOK := or.delete(it.key, it.id)
				if gotOK != wantOK || gotRank != wantRank {
					return false
				}
			}
			if tr.Len() != len(or.items) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFreelistReuse(t *testing.T) {
	var tr Tree
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 1000; i++ {
			tr.Insert(i, i+uint64(round)*1000)
		}
		for i := uint64(0); i < 1000; i++ {
			if _, ok := tr.Delete(i, i+uint64(round)*1000); !ok {
				t.Fatalf("round %d: lost item %d", round, i)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
	}
}

func TestLargeSequentialDeleteMinOrder(t *testing.T) {
	// Replaying a strict priority queue: deleting the Min repeatedly must
	// always report rank 0.
	var tr Tree
	r := rng.New(9)
	for i := uint64(0); i < 5000; i++ {
		tr.Insert(r.Uint64()%1000, i)
	}
	for tr.Len() > 0 {
		k, id, _ := tr.Min()
		rank, ok := tr.Delete(k, id)
		if !ok || rank != 0 {
			t.Fatalf("min delete rank = %d ok=%v", rank, ok)
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	var tr Tree
	r := rng.New(1)
	ids := make([]uint64, 0, 1<<16)
	keys := make([]uint64, 0, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		k := r.Uint64()
		tr.Insert(k, i)
		ids = append(ids, i)
		keys = append(keys, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (1<<16 - 1)
		tr.Delete(keys[j], ids[j])
		tr.Insert(keys[j], ids[j])
	}
}
