// Package ostree implements a sequential order-statistic treap keyed by
// (key, id) pairs. The quality benchmark replays the reconstructed linear
// operation history against this structure: each logged delete_min is looked
// up by its unique id, and its rank — "the position of the item within the
// priority queue as it is deleted" — is the number of items currently in the
// structure with a strictly smaller key. Reporting the strict-key rank makes
// the benchmark pessimistic in the presence of duplicate keys, exactly as
// the paper describes for its own quality benchmark.
//
// All operations are O(log n) expected: the treap uses the id as a hashed
// priority source, so the structure needs no external RNG and a given
// history always replays to the same tree shape.
//
// The sole consumer is internal/quality (sequential replay; nothing here
// is safe for concurrent use). Nodes are recycled through a freelist
// because a replay performs exactly one Delete per Insert and the paper's
// quality runs replay millions of operations.
package ostree

// Tree is an order-statistic treap. The zero value is an empty tree.
// Not safe for concurrent use; the quality replay is sequential by design.
type Tree struct {
	root *node
	free *node // simple freelist to reduce allocation churn during replay
}

type node struct {
	key   uint64
	id    uint64
	prio  uint64
	size  int
	left  *node
	right *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() { n.size = 1 + size(n.left) + size(n.right) }

// less orders nodes by (key, id); ids are unique, so the order is total.
func less(k1, id1, k2, id2 uint64) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

// prioOf derives a treap priority from the unique id (splitmix64 finalizer).
func prioOf(id uint64) uint64 {
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len reports the number of items in the tree.
func (t *Tree) Len() int { return size(t.root) }

// Insert adds an item with the given key and unique id. Inserting an id that
// is already present corrupts rank accounting; the quality logger guarantees
// uniqueness by construction (a global sequence number).
func (t *Tree) Insert(key, id uint64) {
	n := t.alloc(key, id)
	t.root = insert(t.root, n)
}

func insert(root, n *node) *node {
	if root == nil {
		n.update()
		return n
	}
	if n.prio > root.prio {
		// n becomes the new subtree root: split root's subtree around n.
		l, r := split(root, n.key, n.id)
		n.left, n.right = l, r
		n.update()
		return n
	}
	if less(n.key, n.id, root.key, root.id) {
		root.left = insert(root.left, n)
	} else {
		root.right = insert(root.right, n)
	}
	root.update()
	return root
}

// split partitions root into (< (key,id), >= (key,id)).
func split(root *node, key, id uint64) (l, r *node) {
	if root == nil {
		return nil, nil
	}
	if less(root.key, root.id, key, id) {
		l1, r1 := split(root.right, key, id)
		root.right = l1
		root.update()
		return root, r1
	}
	l1, r1 := split(root.left, key, id)
	root.left = r1
	root.update()
	return l1, root
}

// Delete removes the item with the given key and id. It returns the item's
// rank at the moment of deletion — the number of items with a strictly
// smaller key — and whether the item was found.
func (t *Tree) Delete(key, id uint64) (rank int, ok bool) {
	rank, ok = t.rankStrict(key)
	if !ok && t.root == nil {
		return 0, false
	}
	var removed *node
	t.root, removed = remove(t.root, key, id)
	if removed == nil {
		return 0, false
	}
	t.release(removed)
	return rank, true
}

// rankStrict returns the number of items with key strictly smaller than key.
// ok is false only when the tree is empty.
func (t *Tree) rankStrict(key uint64) (int, bool) {
	if t.root == nil {
		return 0, false
	}
	rank := 0
	n := t.root
	for n != nil {
		if n.key < key {
			rank += size(n.left) + 1
			n = n.right
		} else {
			n = n.left
		}
	}
	return rank, true
}

// Rank returns the number of items with key strictly smaller than key.
func (t *Tree) Rank(key uint64) int {
	r, _ := t.rankStrict(key)
	return r
}

// Contains reports whether an item with (key, id) is present.
func (t *Tree) Contains(key, id uint64) bool {
	n := t.root
	for n != nil {
		if n.key == key && n.id == id {
			return true
		}
		if less(key, id, n.key, n.id) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// Min returns the smallest (key, id) pair in the tree.
func (t *Tree) Min() (key, id uint64, ok bool) {
	n := t.root
	if n == nil {
		return 0, 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.id, true
}

// Kth returns the k-th smallest item (0-based) by (key, id) order.
func (t *Tree) Kth(k int) (key, id uint64, ok bool) {
	n := t.root
	if k < 0 || k >= size(n) {
		return 0, 0, false
	}
	for {
		ls := size(n.left)
		switch {
		case k < ls:
			n = n.left
		case k == ls:
			return n.key, n.id, true
		default:
			k -= ls + 1
			n = n.right
		}
	}
}

// remove deletes the node matching (key, id) and returns the new root and
// the removed node (nil if absent).
func remove(root *node, key, id uint64) (*node, *node) {
	if root == nil {
		return nil, nil
	}
	if root.key == key && root.id == id {
		merged := merge(root.left, root.right)
		root.left, root.right = nil, nil
		return merged, root
	}
	var removed *node
	if less(key, id, root.key, root.id) {
		root.left, removed = remove(root.left, key, id)
	} else {
		root.right, removed = remove(root.right, key, id)
	}
	root.update()
	return root, removed
}

// merge joins two treaps where every item of l precedes every item of r.
func merge(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio > r.prio {
		l.right = merge(l.right, r)
		l.update()
		return l
	}
	r.left = merge(l, r.left)
	r.update()
	return r
}

func (t *Tree) alloc(key, id uint64) *node {
	n := t.free
	if n != nil {
		t.free = n.right
		*n = node{}
	} else {
		n = &node{}
	}
	n.key, n.id, n.prio, n.size = key, id, prioOf(id), 1
	return n
}

func (t *Tree) release(n *node) {
	n.left = nil
	n.right = t.free
	t.free = n
}
