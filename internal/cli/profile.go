package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler wires the standard Go profiling trio (-cpuprofile, -memprofile,
// -trace) into a flag set and manages their lifecycle. All four CLI tools
// share it so profiles are taken identically everywhere:
//
//	prof := cli.NewProfiler(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// Start begins CPU profiling and execution tracing immediately; stop flushes
// them and writes the heap profile last, so the memory profile reflects the
// program's state after the benchmark ran (a forced GC precedes the heap
// write so the profile shows live objects, not garbage).
type Profiler struct {
	cpuPath   string
	memPath   string
	tracePath string
}

// NewProfiler registers -cpuprofile, -memprofile and -trace on fs and
// returns the profiler that will honor them after fs is parsed.
func NewProfiler(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to `file` (go tool pprof)")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to `file` at exit (go tool pprof)")
	fs.StringVar(&p.tracePath, "trace", "", "write an execution trace to `file` (go tool trace)")
	return p
}

// Active reports whether any profiling flag was set.
func (p *Profiler) Active() bool {
	return p.cpuPath != "" || p.memPath != "" || p.tracePath != ""
}

// Start begins the requested profiles. The returned stop function is safe to
// call exactly once (typically via defer) and must run before the process
// exits or the profile files will be truncated or empty.
func (p *Profiler) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if p.cpuPath != "" {
		cpuFile, err = os.Create(p.cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if p.tracePath != "" {
		traceFile, err = os.Create(p.tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() {
		cleanup()
		if p.memPath != "" {
			f, err := os.Create(p.memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
