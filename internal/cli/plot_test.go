package cli

import (
	"math"
	"strings"
	"testing"
)

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("t", nil)
	if p.String() != "" {
		t.Fatal("empty plot rendered output")
	}
	p2 := NewPlot("t", []int{1, 2})
	if p2.String() != "" {
		t.Fatal("plot without series rendered output")
	}
}

func TestPlotRendersSeries(t *testing.T) {
	p := NewPlot("Figure 4a", []int{1, 2, 4, 8})
	p.XLabel, p.YLabel = "threads", "MOps/s"
	p.AddSeries("klsm", []float64{1, 2, 4, 8})
	p.AddSeries("linden", []float64{1, 1, 1, 1})
	out := p.String()
	if !strings.Contains(out, "Figure 4a") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* klsm") || !strings.Contains(out, "o linden") {
		t.Fatalf("missing legend entries:\n%s", out)
	}
	if !strings.Contains(out, "x: threads, y: MOps/s") {
		t.Fatal("missing axis labels")
	}
	// Data glyphs present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing data glyphs")
	}
	// Rising series: the '*' of the last point must be on a higher row
	// than the first point's.
	lines := strings.Split(out, "\n")
	firstStar, lastStar := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if firstStar < 0 {
				firstStar = i
			}
			lastStar = i
		}
	}
	if firstStar == lastStar {
		t.Fatalf("rising series drawn flat:\n%s", out)
	}
}

func TestPlotHandlesNaN(t *testing.T) {
	p := NewPlot("gaps", []int{1, 2, 3})
	p.AddSeries("partial", []float64{1, math.NaN(), 3})
	out := p.String()
	if out == "" {
		t.Fatal("plot with NaN gap rendered empty")
	}
}

func TestPlotAllNaN(t *testing.T) {
	p := NewPlot("none", []int{1, 2})
	p.AddSeries("empty", []float64{math.NaN(), math.NaN()})
	if p.String() != "" {
		t.Fatal("all-NaN plot rendered output")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("flat", []int{1})
	p.AddSeries("one", []float64{5})
	if p.String() == "" {
		t.Fatal("single-point plot rendered empty")
	}
	z := NewPlot("zero", []int{1, 2})
	z.AddSeries("zeros", []float64{0, 0})
	if z.String() == "" {
		t.Fatal("zero plot rendered empty")
	}
}

func TestPlotAxisAnchoredAtZero(t *testing.T) {
	p := NewPlot("anchor", []int{1, 2})
	p.AddSeries("s", []float64{5, 10})
	out := p.String()
	if !strings.Contains(out, " 0 +") && !strings.Contains(out, "0 |") {
		t.Fatalf("y axis not anchored at 0:\n%s", out)
	}
}
