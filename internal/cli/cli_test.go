package cli

import (
	"strings"
	"testing"

	"cpq/internal/keys"
	"cpq/internal/workload"
)

func TestFiguresComplete(t *testing.T) {
	figs := Figures()
	if len(figs) != 11 {
		t.Fatalf("%d figure cells, want 11 (4a-4h + 8a-8c)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
	}
	// The brief announcement's three figures must be present via aliases.
	for _, id := range []string{"1", "2", "3"} {
		if _, err := FigureByID(id); err != nil {
			t.Fatalf("FigureByID(%q): %v", id, err)
		}
	}
}

func TestFigureAliases(t *testing.T) {
	f1, _ := FigureByID("1")
	f4a, _ := FigureByID("4a")
	if f1 != f4a {
		t.Fatal("figure 1 != 4a")
	}
	f2, _ := FigureByID("2")
	if f2.Workload != workload.Split || f2.KeyDist != keys.Ascending {
		t.Fatalf("figure 2 = %+v", f2)
	}
	f3, _ := FigureByID("3")
	if f3.KeyDist != keys.Uniform8 {
		t.Fatalf("figure 3 = %+v", f3)
	}
	// Machine-specific figure numbers alias the mars panels.
	for _, pair := range [][2]string{{"5a", "4a"}, {"6c", "4c"}, {"7h", "4h"}, {"9b", "8b"}} {
		a, err1 := FigureByID(pair[0])
		b, err2 := FigureByID(pair[1])
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("alias %s != %s (%v, %v)", pair[0], pair[1], err1, err2)
		}
	}
	if _, err := FigureByID("4z"); err == nil {
		t.Fatal("bogus figure accepted")
	}
	if _, err := FigureByID(""); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestParseThreads(t *testing.T) {
	ts, err := ParseThreads("1, 2,8")
	if err != nil || len(ts) != 3 || ts[0] != 1 || ts[2] != 8 {
		t.Fatalf("ParseThreads = %v, %v", ts, err)
	}
	if _, err := ParseThreads("0"); err == nil {
		t.Fatal("zero thread count accepted")
	}
	if _, err := ParseThreads("a,b"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseThreads(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ParseList = %v", got)
	}
	if got := ParseList(""); got != nil {
		t.Fatalf("ParseList(\"\") = %v", got)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.AddRow("name", "v")
	tb.AddRow("longername", "10")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned rows:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "longername") {
		t.Fatalf("first column not left-aligned:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	var tb Table
	if tb.String() != "" || tb.Markdown() != "" {
		t.Fatal("empty table rendered non-empty")
	}
}

func TestTableMarkdown(t *testing.T) {
	var tb Table
	tb.AddRow("h1", "h2")
	tb.AddRow("a", "b")
	md := tb.Markdown()
	want := "| h1 | h2 |\n|---|---|\n| a | b |\n"
	if md != want {
		t.Fatalf("markdown = %q, want %q", md, want)
	}
}

func TestTableByID(t *testing.T) {
	t1, err := TableByID("1")
	if err != nil {
		t.Fatal(err)
	}
	t2a, _ := TableByID("2a")
	if t1 != t2a {
		t.Fatal("table 1 != 2a")
	}
	f4e, _ := FigureByID("4e")
	t2e, err := TableByID("2e")
	if err != nil || t2e != f4e {
		t.Fatalf("table 2e != figure 4e (%v)", err)
	}
	f8b, _ := FigureByID("8b")
	t5b, err := TableByID("5b")
	if err != nil || t5b != f8b {
		t.Fatalf("table 5b != figure 8b (%v)", err)
	}
	for _, pair := range [][2]string{{"3c", "2c"}, {"4h", "2h"}} {
		a, err1 := TableByID(pair[0])
		b, err2 := TableByID(pair[1])
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("table alias %s != %s", pair[0], pair[1])
		}
	}
	if _, err := TableByID("6a"); err == nil {
		t.Fatal("bogus table accepted")
	}
	if _, err := TableByID(""); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestMachines(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 {
		t.Fatalf("%d machines, want 4", len(ms))
	}
	for _, m := range ms {
		if len(m.Threads) == 0 || m.Threads[0] != 1 {
			t.Fatalf("machine %s sweep must start at 1 thread: %v", m.Name, m.Threads)
		}
		for i := 1; i < len(m.Threads); i++ {
			if m.Threads[i] <= m.Threads[i-1] {
				t.Fatalf("machine %s sweep not increasing: %v", m.Name, m.Threads)
			}
		}
	}
	mars, ok := MachineByName(" MARS ")
	if !ok || mars.Name != "mars" {
		t.Fatal("case-insensitive machine lookup failed")
	}
	if mars.Threads[len(mars.Threads)-1] != 16 {
		t.Fatalf("mars tops out at %d, want 16 (2-way HT over 8 cores)", mars.Threads[len(mars.Threads)-1])
	}
	if _, ok := MachineByName("jupiter"); ok {
		t.Fatal("unknown machine resolved")
	}
}

func TestTableCell(t *testing.T) {
	var tb Table
	tb.AddRow("h1", "h2")
	tb.AddRow("a", "b")
	if tb.Cell(1, 1) != "b" || tb.Cell(0, 0) != "h1" {
		t.Fatal("Cell lookup wrong")
	}
	if tb.Cell(5, 0) != "" || tb.Cell(0, 9) != "" || tb.Cell(-1, 0) != "" {
		t.Fatal("out-of-range Cell not empty")
	}
}

func TestExpandQueues(t *testing.T) {
	got := ExpandQueues([]string{"engineered", "linden"})
	want := []string{"multiq", "multiq-s4-b8", "klsm4096", "linden"}
	if len(got) != len(want) {
		t.Fatalf("ExpandQueues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpandQueues = %v, want %v", got, want)
		}
	}
	if got := ExpandQueues([]string{"PAPER"}); len(got) != 7 {
		t.Fatalf("paper alias expanded to %d queues, want 7", len(got))
	}
	if got := ExpandQueues([]string{"multiq"}); len(got) != 1 || got[0] != "multiq" {
		t.Fatalf("plain name not passed through: %v", got)
	}
	got = ExpandQueues([]string{"klsm"})
	want = []string{"klsm128", "klsm256", "klsm4096"}
	if len(got) != len(want) {
		t.Fatalf("klsm alias = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("klsm alias = %v, want %v", got, want)
		}
	}
}
