// Package cli holds the pieces shared by the pqbench, pqquality and pqrepro
// command-line tools: the mapping from the paper's figure/table identifiers
// to benchmark cells, thread-list parsing and plain-text table rendering.
package cli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cpq/internal/keys"
	"cpq/internal/workload"
)

// Cell is one benchmark configuration: a workload crossed with a key
// distribution, as plotted in one figure (or one quality table) of the paper.
type Cell struct {
	ID       string // paper identifier, e.g. "4a" or "8b"
	Workload workload.Kind
	KeyDist  keys.Distribution
}

// Figures maps the paper's per-machine throughput figure panels to cells.
// Figure 4 (mars), 5 (saturn), 6 (ceres) and 7 (pluto) share the same eight
// panels a–h; Figures 8/9 are the alternating-workload panels a–c. Table 1
// equals panel 4a's configuration; quality Tables 2–4 mirror panels a–h and
// Table 5 mirrors the alternating panels.
func Figures() []Cell {
	return []Cell{
		{"4a", workload.Uniform, keys.Uniform32},
		{"4b", workload.Uniform, keys.Ascending},
		{"4c", workload.Uniform, keys.Descending},
		{"4d", workload.Split, keys.Uniform32},
		{"4e", workload.Split, keys.Ascending},
		{"4f", workload.Split, keys.Descending},
		{"4g", workload.Uniform, keys.Uniform8},
		{"4h", workload.Uniform, keys.Uniform16},
		{"8a", workload.Alternating, keys.Uniform32},
		{"8b", workload.Alternating, keys.Ascending},
		{"8c", workload.Alternating, keys.Descending},
	}
}

// FigureByID resolves a panel identifier like "4a", "1" (headline figure 1 =
// 4a), "2" (= 4e), "3" (= 4g), or "8b". Machine-specific figure numbers map
// to the same cells: "5a"/"6a"/"7a" behave like "4a", "9b" like "8b".
func FigureByID(id string) (Cell, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	switch id {
	case "1":
		id = "4a"
	case "2":
		id = "4e"
	case "3":
		id = "4g"
	}
	if len(id) == 2 {
		switch id[0] {
		case '5', '6', '7':
			id = "4" + id[1:]
		case '9':
			id = "8" + id[1:]
		}
	}
	for _, c := range Figures() {
		if c.ID == id {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("unknown figure %q (known: 1, 2, 3, 4a-4h, 8a-8c)", id)
}

// TableByID maps the paper's quality-table panels onto benchmark cells.
// Table 1 = Table 2a; Tables 2-4 panels a-h mirror the throughput panels;
// Table 5 panels a-c are the alternating workload.
func TableByID(id string) (Cell, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	if id == "1" {
		return FigureByID("4a")
	}
	if len(id) == 2 {
		switch id[0] {
		case '2', '3', '4':
			return FigureByID("4" + id[1:])
		case '5':
			return FigureByID("8" + id[1:])
		}
	}
	return Cell{}, fmt.Errorf("unknown table %q (known: 1, 2a-2h, 5a-5c)", id)
}

// ParseThreads parses a comma-separated thread list like "1,2,4,8".
func ParseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list %q", s)
	}
	return out, nil
}

// ParseList splits a comma-separated list, trimming blanks.
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// queueAliases maps -queues shorthands to queue lists: "paper" is the
// paper's seven compared variants; "engineered" is the engineered-MultiQueue
// comparison set (seed multiq vs. the Williams-Sanders engineered variant
// vs. the paper's strongest k-LSM); "klsm" is the paper's three k-LSM
// relaxation settings.
var queueAliases = map[string][]string{
	"paper":      {"klsm128", "klsm256", "klsm4096", "linden", "spray", "multiq", "globallock"},
	"engineered": {"multiq", "multiq-s4-b8", "klsm4096"},
	"klsm":       {"klsm128", "klsm256", "klsm4096"},
}

// ExpandQueues resolves alias entries ("paper", "engineered", "klsm") in a
// queue list to their member queues, passing every other name through
// unchanged.
func ExpandQueues(names []string) []string {
	var out []string
	for _, n := range names {
		if members, ok := queueAliases[strings.ToLower(n)]; ok {
			out = append(out, members...)
		} else {
			out = append(out, n)
		}
	}
	return out
}

// Table renders rows of cells as aligned plain text. The first row is the
// header; columns are right-aligned except the first.
type Table struct {
	rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := map[int]int{}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	cols := make([]int, 0, len(widths))
	for i := range widths {
		cols = append(cols, i)
	}
	sort.Ints(cols)
	var b strings.Builder
	for _, row := range t.rows {
		for i, c := range row {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	if len(t.rows) == 0 {
		return ""
	}
	var b strings.Builder
	for r, row := range t.rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(row, " | "))
		b.WriteString(" |\n")
		if r == 0 {
			b.WriteString("|")
			for range row {
				b.WriteString("---|")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Machine describes one of the paper's experimental hosts as a benchmark
// preset: the thread counts its figures sweep. On a different host the
// preset simply selects the sweep; it cannot (and does not pretend to)
// emulate the hardware.
type Machine struct {
	Name    string
	Threads []int
	Desc    string
}

// Machines lists the paper's four hosts (Appendix E).
func Machines() []Machine {
	return []Machine{
		{"mars", []int{1, 2, 4, 8, 10, 12, 14, 16}, "8-core Intel Xeon E7-8850, 2-way HT (threads beyond 8 use HT)"},
		{"saturn", []int{1, 2, 4, 8, 16, 24, 32, 48}, "48-core AMD Opteron 6168 (4x12), no HT"},
		{"ceres", []int{1, 2, 4, 8, 16, 32, 64, 128, 256}, "64-core SPARCv9 (4x16), 8-way HT"},
		{"pluto", []int{1, 2, 4, 8, 16, 32, 61, 122, 244}, "61-core Intel Xeon Phi, 4-way HT"},
	}
}

// MachineByName resolves a machine preset; unknown names return ok=false.
func MachineByName(name string) (Machine, bool) {
	for _, m := range Machines() {
		if strings.EqualFold(strings.TrimSpace(name), m.Name) {
			return m, true
		}
	}
	return Machine{}, false
}

// Cell returns the cell at (row, col), or "" when out of range; rows and
// columns are zero-based including the header row.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}
