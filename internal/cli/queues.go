package cli

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"cpq"
)

// ValidateQueues checks that every name constructs through the registry,
// exiting via ExitQueueErr otherwise. Tools call it up front so a typo is
// reported before any benchmark time is burned.
func ValidateQueues(tool string, names []string) {
	for _, n := range names {
		if _, err := cpq.NewQueue(n, cpq.Options{}); err != nil {
			ExitQueueErr(tool, err)
		}
	}
}

// ExitQueueErr prints a queue-construction error and exits with status 2.
// An unknown identifier (*cpq.UnknownQueueError) gets the registry's known
// identifiers printed as a separate usage-hint line.
func ExitQueueErr(tool string, err error) {
	var unknown *cpq.UnknownQueueError
	if errors.As(err, &unknown) {
		fmt.Fprintf(os.Stderr, "%s: unknown queue %q\n", tool, unknown.Name)
		fmt.Fprintf(os.Stderr, "%s: known queues: %s\n", tool, strings.Join(unknown.Known, ", "))
	} else {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	os.Exit(2)
}
