package cli

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders series of y-values over shared x-values as an ASCII line
// chart, the terminal equivalent of the paper's throughput figures
// (threads on the x-axis, MOps/s on the y-axis). Series are drawn with
// distinct glyphs and listed in a legend.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area width in columns (default 60)
	Height int // plot area height in rows (default 16)

	xs     []float64
	names  []string
	series map[string][]float64
}

// NewPlot creates a plot over the given x coordinates.
func NewPlot(title string, xs []int) *Plot {
	fx := make([]float64, len(xs))
	for i, x := range xs {
		fx[i] = float64(x)
	}
	return &Plot{Title: title, Width: 60, Height: 16, xs: fx, series: map[string][]float64{}}
}

// AddSeries registers one named line; ys must align with the x coordinates.
func (p *Plot) AddSeries(name string, ys []float64) {
	if _, dup := p.series[name]; !dup {
		p.names = append(p.names, name)
	}
	p.series[name] = append([]float64(nil), ys...)
}

// glyphs mark the data points of successive series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// String renders the chart.
func (p *Plot) String() string {
	if len(p.xs) == 0 || len(p.names) == 0 {
		return ""
	}
	w, h := p.Width, p.Height
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	// Ranges.
	xmin, xmax := p.xs[0], p.xs[0]
	for _, x := range p.xs {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, ys := range p.series {
		for _, y := range ys {
			if !math.IsNaN(y) {
				ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(ymin, 1) {
		return ""
	}
	if ymin > 0 {
		ymin = 0 // throughput plots anchor at zero, like the paper's
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		return clamp(c, 0, w-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - ymin) / (ymax - ymin) * float64(h-1)))
		return clamp(h-1-r, 0, h-1)
	}

	// Draw series: line segments between consecutive points, glyph on the
	// data points (drawn last so points win over line characters).
	for si, name := range p.names {
		ys := p.series[name]
		g := glyphs[si%len(glyphs)]
		for i := 1; i < len(ys) && i < len(p.xs); i++ {
			if math.IsNaN(ys[i-1]) || math.IsNaN(ys[i]) {
				continue
			}
			drawLine(grid, col(p.xs[i-1]), row(ys[i-1]), col(p.xs[i]), row(ys[i]))
		}
		for i := 0; i < len(ys) && i < len(p.xs); i++ {
			if math.IsNaN(ys[i]) {
				continue
			}
			grid[row(ys[i])][col(p.xs[i])] = g
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	// X tick labels at the data columns.
	ticks := []byte(strings.Repeat(" ", w))
	for _, x := range p.xs {
		s := fmt.Sprintf("%g", x)
		c := col(x)
		if c+len(s) > w {
			c = w - len(s)
		}
		copy(ticks[c:], s)
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), string(ticks))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", margin), p.XLabel, p.YLabel)
	}
	// Legend.
	var legend []string
	for si, name := range p.names {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], name))
	}
	fmt.Fprintf(&b, "  %s\n", strings.Join(legend, "   "))
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawLine draws a light line between two grid cells (Bresenham), only
// filling empty cells so data-point glyphs stay visible.
func drawLine(grid [][]byte, x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			ch := byte('.')
			if dy == 0 {
				ch = '-'
			} else if dx == 0 {
				ch = '|'
			}
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
