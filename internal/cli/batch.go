package cli

import (
	"fmt"
	"os"
)

// MaxBatch caps the -batch operation width accepted by the tools. The
// limit is arbitrary but catches unit mistakes (a duration or key count
// pasted into -batch) before a run allocates per-worker scratch of that
// size.
const MaxBatch = 1 << 16

// ValidateBatch checks an operation batch width, exiting with status 2 on
// an out-of-range value — the same up-front typed exit ValidateQueues uses
// for queue names, so a bad flag is reported before any benchmark time is
// burned. Width 1 means scalar operation; widths above 1 route the
// workload through InsertN/DeleteMinN.
func ValidateBatch(tool string, batch int) {
	if batch < 1 || batch > MaxBatch {
		fmt.Fprintf(os.Stderr, "%s: invalid -batch %d (want 1..%d)\n", tool, batch, MaxBatch)
		os.Exit(2)
	}
}
