package cli

import (
	"fmt"
	"os"
)

// WAL backends the durable tier accepts through -wal-backend. Empty
// means "pick per platform" (mmap where supported, else file); the
// explicit names force one and fail loudly where unsupported.
var walBackends = []string{"", "mmap", "file"}

// MaxSegmentBytes caps -seg-bytes: a WAL segment (and, on the mmap
// backend, one preallocated mapping) of more than 1 GiB is a unit
// mistake, not a tuning choice.
const MaxSegmentBytes = 1 << 30

// ValidateSnapEvery checks a -snap-every cadence (logged ops between
// automatic snapshots; 0 disables them), exiting with status 2 on a
// negative value — the same up-front typed exit ValidateQueues uses, so
// a bad flag is reported before any traffic is served.
func ValidateSnapEvery(tool string, every int) {
	if every < 0 {
		fmt.Fprintf(os.Stderr, "%s: invalid -snap-every %d (want >= 0; 0 disables automatic snapshots)\n",
			tool, every)
		os.Exit(2)
	}
}

// ValidateSegBytes checks a -seg-bytes WAL segment size (0 = default),
// exiting with status 2 when it is negative or implausibly large.
func ValidateSegBytes(tool string, bytes int) {
	if bytes < 0 || bytes > MaxSegmentBytes {
		fmt.Fprintf(os.Stderr, "%s: invalid -seg-bytes %d (want 0..%d; 0 uses the default 1 MiB)\n",
			tool, bytes, MaxSegmentBytes)
		os.Exit(2)
	}
}

// ValidateWALBackend checks a -wal-backend selector, exiting with status
// 2 on anything but "", "mmap" or "file".
func ValidateWALBackend(tool, backend string) {
	for _, b := range walBackends {
		if backend == b {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "%s: invalid -wal-backend %q (want \"mmap\", \"file\", or empty for the platform default)\n",
		tool, backend)
	os.Exit(2)
}
