package core

import "math/bits"

// A block is a sorted (ascending by key) array of item pointers — the LSM's
// building brick. Blocks are written once and then only read; logical state
// changes happen through the items' taken flags. The capacity class of a
// block with n items is the exponent c of the smallest power of two with
// 2^c >= n, matching the paper's "blocks have capacities C = 2^i ... a block
// with capacity C must contain more than C/2 and at most C items": a freshly
// merged block always satisfies 2^(c-1) < n <= 2^c.
type block struct {
	items []*item
}

// classOf returns the capacity class for n items (n >= 1).
func classOf(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// class returns the block's capacity class.
func (b *block) class() int { return classOf(len(b.items)) }

// singleton returns a block holding exactly one item.
func singleton(it *item) *block { return &block{items: []*item{it}} }

// mergeBlocksInto merges two sorted runs into dst (which must be empty and
// disjoint from a and b), dropping items that are already taken — merges are
// the LSM's garbage collection. It appends at most len(a)+len(b) items and
// returns the extended slice; the result may be empty. Callers pass a
// recycled scratch slice so steady-state merging allocates only when dst's
// capacity is outgrown.
func mergeBlocksInto(dst []*item, a, b []*item) []*item {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var next *item
		if a[i].key <= b[j].key {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if !next.isTaken() {
			dst = append(dst, next)
		}
	}
	for ; i < len(a); i++ {
		if !a[i].isTaken() {
			dst = append(dst, a[i])
		}
	}
	for ; j < len(b); j++ {
		if !b[j].isTaken() {
			dst = append(dst, b[j])
		}
	}
	return dst
}

// mergeBlocks merges two sorted blocks into a fresh sorted block (allocating
// variant of mergeBlocksInto, used where the result escapes into shared
// immutable state).
func mergeBlocks(a, b *block) *block {
	out := make([]*item, 0, len(a.items)+len(b.items))
	return &block{items: mergeBlocksInto(out, a.items, b.items)}
}

// compact returns a copy of b without taken items, or b itself if nothing
// was dropped starting at from (a cheap prefix check happens at call sites).
func (b *block) compact() *block {
	live := make([]*item, 0, len(b.items))
	for _, it := range b.items {
		if !it.isTaken() {
			live = append(live, it)
		}
	}
	if len(live) == len(b.items) {
		return b
	}
	return &block{items: live}
}

// sortedInvariant reports whether the block is sorted ascending (tests).
func (b *block) sortedInvariant() bool {
	for i := 1; i < len(b.items); i++ {
		if b.items[i-1].key > b.items[i].key {
			return false
		}
	}
	return true
}
