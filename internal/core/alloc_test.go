package core

import (
	"testing"

	"cpq/internal/rng"
)

// Allocation-regression tests for the k-LSM hot path. The seed
// implementation measured 6 allocs/op on the single-threaded
// insert+delete-min microbenchmark (BenchmarkKLSMInsertDeleteMin); the
// pooled implementation must stay at least 5x below that, and these tests
// keep the win from silently rotting. Thresholds are set with headroom over
// the measured steady state (~0.05 allocs/op) but far below the seed.

// steadyKLSM returns a klsm handle warmed past slab, freelist and pivot
// transients: pools are populated and the SLSM holds a settled block list.
func steadyKLSM(k int) (*KLSM, *Handle, *rng.Xoroshiro) {
	q := NewKLSM(k)
	h := q.Handle().(*Handle)
	r := rng.New(42)
	for i := 0; i < 4*k+4096; i++ {
		h.Insert(r.Uint64()&0xffffffff, 0)
		h.DeleteMin()
	}
	return q, h, r
}

func TestKLSMInsertAllocsBounded(t *testing.T) {
	for _, k := range []int{128, 4096} {
		_, h, r := steadyKLSM(k)
		avg := testing.AllocsPerRun(2000, func() {
			h.Insert(r.Uint64()&0xffffffff, 0)
		})
		if avg > 1.0 {
			t.Errorf("klsm%d: Insert allocates %.2f allocs/op at steady state, want <= 1.0", k, avg)
		}
	}
}

func TestKLSMDeleteMinAllocsBounded(t *testing.T) {
	for _, k := range []int{128, 4096} {
		_, h, r := steadyKLSM(k)
		const runs = 2000
		for i := 0; i < runs+100; i++ { // stock enough items to drain
			h.Insert(r.Uint64()&0xffffffff, 0)
		}
		avg := testing.AllocsPerRun(runs, func() {
			if _, _, ok := h.DeleteMin(); !ok {
				t.Fatal("queue ran empty mid-measurement")
			}
		})
		if avg > 1.0 {
			t.Errorf("klsm%d: DeleteMin allocates %.2f allocs/op at steady state, want <= 1.0", k, avg)
		}
	}
}

func TestKLSMInsertDeleteMinPairAllocs(t *testing.T) {
	// The acceptance pair: one insert + one delete-min per run must stay
	// >= 5x below the seed's 6 allocs/op.
	for _, k := range []int{128, 4096} {
		_, h, r := steadyKLSM(k)
		avg := testing.AllocsPerRun(2000, func() {
			h.Insert(r.Uint64()&0xffffffff, 0)
			h.DeleteMin()
		})
		if avg > 1.2 {
			t.Errorf("klsm%d: insert+delete-min pair allocates %.2f allocs/op, want <= 1.2 (5x under the 6.0 seed)", k, avg)
		}
	}
}

func TestItemsNeverRecycledWhileReferenced(t *testing.T) {
	// The reclamation rule: item memory is never reused while an old SLSM
	// state, spy copy or consumed prefix may still reference it. Hold a
	// reference to a published state, churn the queue hard enough to cycle
	// every freelist many times, and verify the held state's items are
	// bit-for-bit intact.
	const k = 64
	q := NewKLSM(k)
	h := q.Handle().(*Handle)
	for i := uint64(0); i < 4*k; i++ {
		h.Insert(i, i*7+1)
	}
	held := q.slsm.state.Load()
	type kv struct{ k, v uint64 }
	var snapshot []kv
	for _, b := range held.blocks {
		for _, it := range b.items {
			snapshot = append(snapshot, kv{it.key, it.value})
		}
	}
	if len(snapshot) == 0 {
		t.Fatal("no shared items to hold; raise the prefill")
	}
	r := rng.New(7)
	for i := 0; i < 100000; i++ {
		h.Insert(r.Uint64()%100000, 3)
		h.DeleteMin()
	}
	i := 0
	for _, b := range held.blocks {
		for _, it := range b.items {
			if it.key != snapshot[i].k || it.value != snapshot[i].v {
				t.Fatalf("held item %d mutated: %d/%d, want %d/%d",
					i, it.key, it.value, snapshot[i].k, snapshot[i].v)
			}
			i++
		}
	}
}
