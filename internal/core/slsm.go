package core

import (
	"sync/atomic"

	"cpq/internal/rng"
)

// slsm is the Shared LSM: a single global LSM published through an atomic
// pointer, plus a pivot range covering at most the k+1 smallest live items.
// delete_min picks a uniformly random item from the pivot range, so it
// skips at most k items — the SLSM's relaxation guarantee.
//
// State transitions are functional: batch inserts merge blocks into a fresh
// state and publish it with a single CAS (optimistic retry on conflict);
// pivot exhaustion republishes the same blocks with freshly computed pivots.
// Item deletion itself is just the item's take() CAS and needs no state
// change, which is what keeps the pivot range effective between rebuilds.
type slsm struct {
	k     int
	state atomic.Pointer[sstate]
}

// sstate is one immutable published state of the SLSM.
type sstate struct {
	// blocks ordered by strictly decreasing capacity class. The slices are
	// shared across states; the sblock first-hints advance monotonically.
	blocks []*sblock
	// pivots enumerates the candidate slots: at most k+1 positions holding
	// the smallest live items at pivot-computation time.
	pivots []pivotSlot
}

type sblock struct {
	items []*item
	// first is a monotonically advancing hint: all items before it are
	// taken. Shared by every state referencing this block.
	first atomic.Int64
}

type pivotSlot struct {
	b   int32 // block index within state.blocks
	idx int32 // item index within that block
}

func newSLSM(k int) *slsm {
	s := &slsm{k: k}
	s.state.Store(&sstate{})
	return s
}

// advanceFirst publishes a larger taken-prefix hint (monotone max).
func (b *sblock) advanceFirst(to int) {
	for {
		cur := b.first.Load()
		if int64(to) <= cur {
			return
		}
		if b.first.CompareAndSwap(cur, int64(to)) {
			return
		}
	}
}

// computePivots selects up to k+1 smallest live items by a tournament over
// the block fronts, advancing the shared first-hints past taken prefixes as
// a side effect. O((k+1)·B + B·taken-prefix).
func computePivots(blocks []*sblock, k int) []pivotSlot {
	if len(blocks) == 0 {
		return nil
	}
	pos := make([]int, len(blocks))
	for i, b := range blocks {
		p := int(b.first.Load())
		for p < len(b.items) && b.items[p].isTaken() {
			p++
		}
		b.advanceFirst(p)
		pos[i] = p
	}
	capHint := k + 1
	if capHint > 1<<16 {
		capHint = 1 << 16 // huge k (standalone DLSM) must not pre-allocate
	}
	pivots := make([]pivotSlot, 0, capHint)
	for len(pivots) < k+1 {
		best := -1
		var bestKey uint64
		for i, b := range blocks {
			if pos[i] >= len(b.items) {
				continue
			}
			if key := b.items[pos[i]].key; best < 0 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			break // all blocks exhausted
		}
		b := blocks[best]
		if !b.items[pos[best]].isTaken() {
			pivots = append(pivots, pivotSlot{b: int32(best), idx: int32(pos[best])})
		}
		pos[best]++
		for pos[best] < len(b.items) && b.items[pos[best]].isTaken() {
			pos[best]++
		}
	}
	return pivots
}

// insertBatch merges a sorted run of items into the SLSM (the k-LSM hands
// over a whole evicted DLSM block at once — "batch insert").
func (s *slsm) insertBatch(items []*item) {
	if len(items) == 0 {
		return
	}
	nb := &sblock{items: items}
	for {
		cur := s.state.Load()
		blocks := lsmMergeShared(cur.blocks, nb)
		ns := &sstate{blocks: blocks, pivots: computePivots(blocks, s.k)}
		if s.state.CompareAndSwap(cur, ns) {
			return
		}
		// Lost the publish race: redo the merge against the new state.
		// (The C++ SLSM resolves this with helping on a shared block
		// array; optimistic retry preserves lock-freedom system-wide —
		// some thread always makes progress.)
	}
}

// lsmMergeShared inserts nb into blocks (strictly decreasing classes),
// merging equal classes. Untouched blocks are shared with previous states.
func lsmMergeShared(blocks []*sblock, nb *sblock) []*sblock {
	out := make([]*sblock, len(blocks), len(blocks)+1)
	copy(out, blocks)
	out = append(out, nb)
	// Keep the list ordered by class: bubble the new block to its place.
	for i := len(out) - 1; i > 0 && out[i-1].liveClass() < out[i].liveClass(); i-- {
		out[i-1], out[i] = out[i], out[i-1]
	}
	// Merge adjacent equal classes from the tail.
	for {
		merged := false
		for i := len(out) - 1; i > 0; i-- {
			if out[i-1].liveClass() > out[i].liveClass() {
				continue
			}
			a := &block{items: out[i-1].items[out[i-1].first.Load():]}
			b := &block{items: out[i].items[out[i].first.Load():]}
			m := mergeBlocks(a, b)
			rest := append([]*sblock{}, out[:i-1]...)
			if len(m.items) > 0 {
				rest = append(rest, &sblock{items: m.items})
			}
			out = append(rest, out[i+1:]...)
			merged = true
			break
		}
		if !merged {
			return out
		}
	}
}

// liveClass is the capacity class of the unconsumed suffix.
func (b *sblock) liveClass() int { return classOf(len(b.items) - int(b.first.Load())) }

// deleteMin removes a uniformly random item from the pivot range.
func (s *slsm) deleteMin(r *rng.Xoroshiro) (*item, bool) {
	for {
		st := s.state.Load()
		if it, ok := st.takeRandom(r); ok {
			return it, true
		}
		// Pivot range exhausted: recompute. If the recompute finds nothing
		// and the blocks are fully consumed, the SLSM is empty.
		pivots := computePivots(st.blocks, s.k)
		if len(pivots) == 0 {
			if st.exhausted() {
				return nil, false
			}
			continue
		}
		ns := &sstate{blocks: st.blocks, pivots: pivots}
		s.state.CompareAndSwap(st, ns)
		// On CAS failure another thread published (insert or republish);
		// loop and use whatever is current.
	}
}

// peekCandidate returns a random live pivot item without taking it. The
// k-LSM composition compares this candidate with the DLSM's local minimum.
// Like deleteMin, it republishes a fresh pivot range when the current one is
// fully consumed — otherwise the k-LSM would ignore a non-empty shared
// component and return arbitrarily bad local minima, breaking the kP bound.
func (s *slsm) peekCandidate(r *rng.Xoroshiro) (*item, bool) {
	for {
		st := s.state.Load()
		if n := len(st.pivots); n > 0 {
			start := int(r.Uintn(uint64(n)))
			for i := 0; i < n; i++ {
				slot := st.pivots[(start+i)%n]
				it := st.blocks[slot.b].items[slot.idx]
				if !it.isTaken() {
					return it, true
				}
			}
		}
		pivots := computePivots(st.blocks, s.k)
		if len(pivots) == 0 {
			if st.exhausted() {
				return nil, false
			}
			continue
		}
		s.state.CompareAndSwap(st, &sstate{blocks: st.blocks, pivots: pivots})
	}
}

// takeRandom picks a uniformly random pivot slot and takes the first live
// item scanning cyclically from it.
func (st *sstate) takeRandom(r *rng.Xoroshiro) (*item, bool) {
	n := len(st.pivots)
	if n == 0 {
		return nil, false
	}
	start := int(r.Uintn(uint64(n)))
	for i := 0; i < n; i++ {
		slot := st.pivots[(start+i)%n]
		it := st.blocks[slot.b].items[slot.idx]
		if it.take() {
			return it, true
		}
	}
	return nil, false
}

// exhausted reports whether every block is fully consumed.
func (st *sstate) exhausted() bool {
	for _, b := range st.blocks {
		p := int(b.first.Load())
		for p < len(b.items) {
			if !b.items[p].isTaken() {
				return false
			}
			p++
		}
		b.advanceFirst(p)
	}
	return true
}

// approxSize sums unconsumed slots (upper bound on live items; tests).
func (s *slsm) approxSize() int {
	st := s.state.Load()
	total := 0
	for _, b := range st.blocks {
		total += len(b.items) - int(b.first.Load())
	}
	return total
}
