package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cpq/internal/chaos"
	"cpq/internal/rng"
	"cpq/internal/telemetry"
)

// slsm is the Shared LSM: a single global LSM published through an atomic
// pointer, plus a pivot range covering at most the k+1 smallest live items.
// delete_min picks a uniformly random item from the pivot range, so it
// skips at most k items — the SLSM's relaxation guarantee.
//
// State transitions are functional: batch inserts merge blocks into a fresh
// state and publish it with a single CAS (optimistic retry with capped
// backoff on conflict); pivot exhaustion republishes the same blocks with
// freshly computed pivots. Item deletion itself is just the item's take()
// CAS and needs no state change, which is what keeps the pivot range
// effective between rebuilds.
//
// sstates, sblocks and their arrays are never pooled: an old state stays
// readable by concurrent threads after it is replaced, so reuse would need
// epoch tracking — the GC reclaims them instead (see itemAlloc's
// reclamation rule for the same argument on items).
type slsm struct {
	k     int
	state atomic.Pointer[sstate]
}

// sstate is one immutable published state of the SLSM.
type sstate struct {
	// blocks ordered by strictly decreasing capacity class. The slices are
	// shared across states; the sblock first-hints advance monotonically.
	blocks []*sblock
	// pivots holds the candidate items sorted ascending by key: a subset of
	// the k+1 smallest live items at pivot-computation time (exactly the
	// k+1 smallest after a full recompute; possibly fewer after a
	// carry-forward publish — see carryPivots).
	pivots []*item
	// pivotMax is the largest pivot key at publication time. Pivot-reuse
	// invariant: every live item NOT in pivots has key >= pivotMax, which
	// is what makes carrying live pivots into the next state sound.
	pivotMax uint64
}

type sblock struct {
	items []*item
	// first is a monotonically advancing hint: all items before it are
	// taken. Shared by every state referencing this block.
	first atomic.Int64
}

func newSLSM(k int) *slsm {
	s := &slsm{k: k}
	s.state.Store(&sstate{})
	return s
}

// publishBackoff delays an optimistic-CAS retry loop after `attempt` failed
// publishes: capped exponential yielding, so a storm of concurrent
// publishers (batch inserts, pivot republishes) serializes instead of
// burning cycles re-merging states that will lose the race again.
func publishBackoff(attempt int) {
	if attempt <= 0 {
		return
	}
	spins := 1 << uint(attempt)
	if spins > 64 {
		spins = 64
	}
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
}

// advanceFirst publishes a larger taken-prefix hint (monotone max).
func (b *sblock) advanceFirst(to int) {
	for {
		cur := b.first.Load()
		if int64(to) <= cur {
			return
		}
		if b.first.CompareAndSwap(cur, int64(to)) {
			return
		}
	}
}

// posPool recycles the per-block cursor scratch of computePivots, which can
// run concurrently on several threads (delete-side republishes).
var posPool = sync.Pool{New: func() any { s := make([]int, 0, 16); return &s }}

// computePivots selects up to k+1 smallest live items by a tournament over
// the block fronts, advancing the shared first-hints past taken prefixes as
// a side effect. Items are returned ascending by key.
// O((k+1)·B + B·taken-prefix).
func computePivots(blocks []*sblock, k int) []*item {
	if len(blocks) == 0 {
		return nil
	}
	pp := posPool.Get().(*[]int)
	pos := (*pp)[:0]
	for _, b := range blocks {
		p := int(b.first.Load())
		for p < len(b.items) && b.items[p].isTaken() {
			p++
		}
		b.advanceFirst(p)
		pos = append(pos, p)
	}
	capHint := k + 1
	if capHint > 1<<16 {
		capHint = 1 << 16 // huge k (standalone DLSM) must not pre-allocate
	}
	pivots := make([]*item, 0, capHint)
	for len(pivots) < k+1 {
		best := -1
		var bestKey uint64
		for i, b := range blocks {
			if pos[i] >= len(b.items) {
				continue
			}
			if key := b.items[pos[i]].key; best < 0 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			break // all blocks exhausted
		}
		b := blocks[best]
		if it := b.items[pos[best]]; !it.isTaken() {
			pivots = append(pivots, it)
		}
		pos[best]++
		for pos[best] < len(b.items) && b.items[pos[best]].isTaken() {
			pos[best]++
		}
	}
	*pp = pos
	posPool.Put(pp)
	return pivots
}

// freshPivotState builds a fully recomputed state over blocks.
func freshPivotState(blocks []*sblock, k int) *sstate {
	ns := &sstate{blocks: blocks, pivots: computePivots(blocks, k)}
	if n := len(ns.pivots); n > 0 {
		ns.pivotMax = ns.pivots[n-1].key
	}
	return ns
}

// carryPivots reuses cur's still-live pivots for the state that adds the
// sorted batch `items`, recomputing nothing: the new pivot set is the k+1
// smallest of (live old pivots) ∪ (new items with key <= cur.pivotMax),
// merged in one linear pass.
//
// Soundness (the pivot-reuse invariant): cur guarantees every live non-pivot
// item has key >= cur.pivotMax. New items above that threshold are excluded,
// so after truncation to the k+1 smallest, every kept item still precedes
// all live non-pivot items — the new set is a subset of the new state's k+1
// smallest live items, and the invariant holds again with the new pivotMax.
// A smaller-than-k+1 set only tightens relaxation; an empty result makes
// the caller fall back to a full recompute.
func carryPivots(cur *sstate, items []*item, k int) ([]*item, uint64) {
	if len(cur.pivots) == 0 {
		return nil, 0
	}
	out := make([]*item, 0, min(k+1, len(cur.pivots)+len(items)))
	i, j := 0, 0
	for len(out) < k+1 {
		for i < len(cur.pivots) && cur.pivots[i].isTaken() {
			i++
		}
		for j < len(items) && (items[j].key > cur.pivotMax || items[j].isTaken()) {
			if items[j].key > cur.pivotMax {
				j = len(items) // sorted: everything after is above too
				break
			}
			j++
		}
		iOK, jOK := i < len(cur.pivots), j < len(items)
		switch {
		case iOK && (!jOK || cur.pivots[i].key <= items[j].key):
			out = append(out, cur.pivots[i])
			i++
		case jOK:
			out = append(out, items[j])
			j++
		default:
			if len(out) == 0 {
				return nil, 0
			}
			return out, out[len(out)-1].key
		}
	}
	return out, out[len(out)-1].key
}

// insertBatch merges a sorted run of items into the SLSM (the k-LSM hands
// over a whole evicted DLSM block at once — "batch insert"). The items
// slice is absorbed into the shared structure and must not be mutated by
// the caller afterwards. tel receives CASPublishRetry for every lost
// publish race (nil is a valid sink).
func (s *slsm) insertBatch(items []*item, tel *telemetry.Shard) {
	s.insertBatchFP(items, tel, chaos.SLSMPublish)
}

// insertBatchFP is insertBatch with an explicit failpoint identity: the
// scalar eviction path injects at SLSMPublish, the InsertN batch path at
// BatchPublish, so chaos runs can force mid-batch CAS losses specifically
// on whole-batch publishes. Both route a forced loss through the same
// genuine retry (re-merge against the then-current state).
func (s *slsm) insertBatchFP(items []*item, tel *telemetry.Shard, fp chaos.Failpoint) {
	if len(items) == 0 {
		return
	}
	nb := &sblock{items: items}
	for attempt := 0; ; attempt++ {
		cur := s.state.Load()
		blocks := lsmMergeShared(cur.blocks, nb)
		ns := &sstate{blocks: blocks}
		ns.pivots, ns.pivotMax = carryPivots(cur, items, s.k)
		if len(ns.pivots) == 0 {
			ns = freshPivotState(blocks, s.k)
		}
		// Failpoint: widen the load→CAS window, and force the occasional
		// publish to act as lost — the retry redoes the merge against the
		// then-current state, exactly like a genuine conflict.
		chaos.Perturb(fp)
		if !chaos.ShouldFail(fp) && s.state.CompareAndSwap(cur, ns) {
			return
		}
		// Lost the publish race: back off, then redo the merge against the
		// new state. (The C++ SLSM resolves this with helping on a shared
		// block array; optimistic retry preserves lock-freedom system-wide —
		// some thread always makes progress.)
		tel.Inc(telemetry.CASPublishRetry)
		publishBackoff(attempt)
	}
}

// lsmMergeShared inserts nb into blocks (strictly decreasing classes),
// merging equal classes. Untouched blocks are shared with previous states.
func lsmMergeShared(blocks []*sblock, nb *sblock) []*sblock {
	out := make([]*sblock, len(blocks), len(blocks)+1)
	copy(out, blocks)
	out = append(out, nb)
	// Keep the list ordered by class: bubble the new block to its place.
	for i := len(out) - 1; i > 0 && out[i-1].liveClass() < out[i].liveClass(); i-- {
		out[i-1], out[i] = out[i], out[i-1]
	}
	// Merge adjacent equal classes from the tail.
	for {
		merged := false
		for i := len(out) - 1; i > 0; i-- {
			if out[i-1].liveClass() > out[i].liveClass() {
				continue
			}
			a := out[i-1].items[out[i-1].first.Load():]
			b := out[i].items[out[i].first.Load():]
			m := mergeBlocksInto(make([]*item, 0, len(a)+len(b)), a, b)
			rest := append([]*sblock{}, out[:i-1]...)
			if len(m) > 0 {
				rest = append(rest, &sblock{items: m})
			}
			out = append(rest, out[i+1:]...)
			merged = true
			break
		}
		if !merged {
			return out
		}
	}
}

// liveClass is the capacity class of the unconsumed suffix.
func (b *sblock) liveClass() int { return classOf(len(b.items) - int(b.first.Load())) }

// deleteMin removes a uniformly random item from the pivot range.
func (s *slsm) deleteMin(r *rng.Xoroshiro, tel *telemetry.Shard) (*item, bool) {
	var buf [1]*item
	run := s.takeRun(r, ^uint64(0), buf[:0], 1, tel)
	if len(run) == 0 {
		return nil, false
	}
	return run[0], true
}

// takeRun takes up to max live pivot items with key < bound under a single
// state load per attempt, appending them to dst and returning it sorted
// ascending. It returns dst unchanged when every live pivot is >= bound
// (the caller's local candidate wins), and republishes a fresh pivot range
// when the current one is exhausted — returning empty only once the SLSM
// holds nothing at all. This is the k-LSM's batch consumption path: a
// handle that wins the pivot race takes a short run in one state load
// instead of re-reading state per item.
//
// Telemetry: PivotLocalWin when the binary-searched prefix proves the
// local candidate wins, CASItemTakeFail per pivot entry whose take() was
// lost, SLSMRepublish/SLSMRepublishFail for pivot-range recomputes.
func (s *slsm) takeRun(r *rng.Xoroshiro, bound uint64, dst []*item, max int, tel *telemetry.Shard) []*item {
	got := len(dst)
	// A bound of MaxUint64 means "take anything": an item keyed MaxUint64
	// ties a local candidate at that bound, and serving the shared side on
	// a tie is valid either way.
	unbounded := bound == ^uint64(0)
	for attempt := 0; ; attempt++ {
		st := s.state.Load()
		// Failpoint: stall between the state load and the take scan so
		// concurrent takers drain the pivot range out from under us.
		chaos.Perturb(chaos.SLSMPivotTake)
		if n := len(st.pivots); n > 0 {
			// Pivots are sorted ascending, so the candidates below bound
			// form a prefix; the scan never leaves it.
			m := n
			if !unbounded {
				m = lowerBound(st.pivots, bound)
				if m == 0 {
					tel.Inc(telemetry.PivotLocalWin)
					return dst // every pivot >= bound: the local candidate wins
				}
			}
			idx := int(r.Uintn(uint64(m)))
			// Take failures are counted in a register and flushed once:
			// the scan is the suite's hottest loop, and even a disabled
			// telemetry branch per iteration is measurable here.
			var takeFails uint64
			for i := 0; i < m; i++ {
				if it := st.pivots[idx]; it.take() {
					dst = append(dst, it)
					if len(dst)-got == max {
						break
					}
				} else {
					takeFails++
				}
				if idx++; idx == m {
					idx = 0
				}
			}
			if takeFails > 0 {
				tel.Add(telemetry.CASItemTakeFail, takeFails)
			}
			if len(dst) > got {
				sortRun(dst[got:])
				return dst
			}
			if m < n {
				// The below-bound prefix is fully taken, but larger pivots
				// exist: by the pivot-reuse invariant every live non-pivot
				// item is >= pivotMax >= bound too, so nothing shared can
				// beat the local candidate — no republish needed.
				tel.Inc(telemetry.PivotLocalWin)
				return dst
			}
		}
		// Pivot range exhausted: recompute. If the recompute finds nothing
		// and the blocks are fully consumed, the SLSM is empty.
		pivots := computePivots(st.blocks, s.k)
		if len(pivots) == 0 {
			if st.exhausted() {
				return dst
			}
			publishBackoff(attempt)
			continue
		}
		ns := &sstate{blocks: st.blocks, pivots: pivots, pivotMax: pivots[len(pivots)-1].key}
		// Failpoint: a forced republish loss behaves exactly like losing the
		// CAS to a concurrent publisher.
		if !chaos.ShouldFail(chaos.SLSMRepublish) && s.state.CompareAndSwap(st, ns) {
			tel.Inc(telemetry.SLSMRepublish)
		} else {
			// Another thread published (insert or republish); back off and
			// use whatever is current.
			tel.Inc(telemetry.SLSMRepublishFail)
			publishBackoff(attempt)
		}
	}
}

// lowerBound returns the first index in the ascending pivot list whose key
// is >= bound (binary search).
func lowerBound(pivots []*item, bound uint64) int {
	lo, hi := 0, len(pivots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pivots[mid].key < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortRun insertion-sorts a short run of items ascending by key (runs are
// at most the k-LSM's shared-run batch size; cyclic pivot scanning returns
// them rotated).
func sortRun(run []*item) {
	for i := 1; i < len(run); i++ {
		it := run[i]
		j := i - 1
		for j >= 0 && run[j].key > it.key {
			run[j+1] = run[j]
			j--
		}
		run[j+1] = it
	}
}

// peekCandidate returns a random live pivot item without taking it. The
// k-LSM composition compares this candidate with the DLSM's local minimum.
// Like takeRun, it republishes a fresh pivot range when the current one is
// fully consumed — otherwise the k-LSM would ignore a non-empty shared
// component and return arbitrarily bad local minima, breaking the kP bound.
func (s *slsm) peekCandidate(r *rng.Xoroshiro, tel *telemetry.Shard) (*item, bool) {
	for attempt := 0; ; attempt++ {
		st := s.state.Load()
		if n := len(st.pivots); n > 0 {
			start := int(r.Uintn(uint64(n)))
			for i := 0; i < n; i++ {
				it := st.pivots[(start+i)%n]
				if !it.isTaken() {
					return it, true
				}
			}
		}
		pivots := computePivots(st.blocks, s.k)
		if len(pivots) == 0 {
			if st.exhausted() {
				return nil, false
			}
			publishBackoff(attempt)
			continue
		}
		ns := &sstate{blocks: st.blocks, pivots: pivots, pivotMax: pivots[len(pivots)-1].key}
		if !chaos.ShouldFail(chaos.SLSMRepublish) && s.state.CompareAndSwap(st, ns) {
			tel.Inc(telemetry.SLSMRepublish)
		} else {
			tel.Inc(telemetry.SLSMRepublishFail)
			publishBackoff(attempt)
		}
	}
}

// exhausted reports whether every block is fully consumed.
func (st *sstate) exhausted() bool {
	for _, b := range st.blocks {
		p := int(b.first.Load())
		for p < len(b.items) {
			if !b.items[p].isTaken() {
				return false
			}
			p++
		}
		b.advanceFirst(p)
	}
	return true
}

// approxSize sums unconsumed slots (upper bound on live items; tests).
func (s *slsm) approxSize() int {
	st := s.state.Load()
	total := 0
	for _, b := range st.blocks {
		total += len(b.items) - int(b.first.Load())
	}
	return total
}
