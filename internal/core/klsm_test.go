package core

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestKLSMNameAndK(t *testing.T) {
	if q := NewKLSM(128); q.Name() != "klsm128" || q.K() != 128 {
		t.Fatalf("got %q/%d", q.Name(), q.K())
	}
	if q := NewKLSM(0); q.K() != 1 {
		t.Fatal("k floor not applied")
	}
}

func TestKLSMEmpty(t *testing.T) {
	q := NewKLSM(128)
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if _, _, ok := h.(*Handle).PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
}

func TestKLSMSingleThreadStrict(t *testing.T) {
	// With one handle there is no kP window to exploit on the local side
	// and shared candidates are only taken when smaller than the local
	// minimum... but a shared candidate is a random pivot item, so the
	// single-threaded guarantee is "within k". With all items local
	// (n <= k) behaviour must be exactly strict.
	q := NewKLSM(4096)
	h := q.Handle()
	r := rng.New(1)
	const n = 4000 // < k: everything stays in the DLSM
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % 10000
		h.Insert(keys[i], keys[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != keys[i] {
			t.Fatalf("deletion %d = %d/%v, want %d", i, k, ok, keys[i])
		}
	}
}

func TestKLSMSingleThreadRelaxationBound(t *testing.T) {
	// n >> k forces eviction into the SLSM. A single-threaded run must
	// then stay within the k-relaxation: the i-th deletion of an ordered
	// prefill returns a key < i + k + 1.
	const k = 128
	q := NewKLSM(k)
	h := q.Handle()
	const n = 10000
	for key := uint64(0); key < n; key++ {
		h.Insert(key, key)
	}
	for i := 0; i < n; i++ {
		key, _, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("empty at %d", i)
		}
		if key > uint64(i+k) {
			t.Fatalf("deletion %d returned %d — beyond relaxation bound %d", i, key, i+k)
		}
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("not empty after drain")
	}
}

func TestKLSMValuesFollowKeys(t *testing.T) {
	q := NewKLSM(16)
	h := q.Handle()
	for k := uint64(0); k < 1000; k++ {
		h.Insert(k, k*3+1)
	}
	for i := 0; i < 1000; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || v != k*3+1 {
			t.Fatalf("got %d/%d/%v", k, v, ok)
		}
	}
}

func TestKLSMSpyStealsWork(t *testing.T) {
	q := NewKLSM(1 << 20) // large k: nothing is ever evicted to the SLSM
	producer := q.Handle()
	thief := q.Handle()
	for k := uint64(0); k < 100; k++ {
		producer.Insert(k, k)
	}
	// The thief's local LSM is empty; it must spy the producer's items.
	count := 0
	for {
		_, _, ok := thief.DeleteMin()
		if !ok {
			break
		}
		count++
	}
	if count != 100 {
		t.Fatalf("thief recovered %d of 100 items via spy", count)
	}
	// The producer must now find nothing (items were shared, not copied).
	if _, _, ok := producer.DeleteMin(); ok {
		t.Fatal("item deleted twice after spy")
	}
}

func TestKLSMApproxLen(t *testing.T) {
	q := NewKLSM(64)
	h := q.Handle()
	for k := uint64(0); k < 500; k++ {
		h.Insert(k, k)
	}
	if n := q.ApproxLen(); n < 500 {
		t.Fatalf("ApproxLen = %d, want >= 500", n)
	}
	for i := 0; i < 500; i++ {
		h.DeleteMin()
	}
	if n := q.ApproxLen(); n > 64 {
		t.Fatalf("ApproxLen = %d after drain; stale items not shed", n)
	}
}

func TestKLSMConcurrentMultisetPreserved(t *testing.T) {
	q := NewKLSM(256)
	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 3)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 1000000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], got[i])
		}
	}
}

func TestKLSMConcurrentNoDuplicateDeletes(t *testing.T) {
	q := NewKLSM(128)
	h := q.Handle()
	const n = 20000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	const workers = 8
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	// The original handle may still hold locally-visible items... no: the
	// prefilling handle's local items are spy-able, and workers must drain
	// everything.
	if total != n {
		t.Fatalf("deleted %d of %d items", total, n)
	}
}

func TestDLSMStandalone(t *testing.T) {
	q := NewDLSM()
	if q.Name() != "dlsm" {
		t.Fatalf("name = %q", q.Name())
	}
	h := q.Handle()
	r := rng.New(5)
	const n = 3000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % 5000
		h.Insert(keys[i], keys[i])
	}
	// Single handle: strict order.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != keys[i] {
			t.Fatalf("deletion %d = %d/%v, want %d", i, k, ok, keys[i])
		}
	}
}

func TestKLSMPeekMin(t *testing.T) {
	q := NewKLSM(8)
	h := q.Handle().(*Handle)
	h.Insert(9, 90)
	h.Insert(2, 20)
	k, v, ok := h.PeekMin()
	if !ok || k != 2 || v != 20 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	// Peek must not remove.
	if k, _, ok := h.DeleteMin(); !ok || k != 2 {
		t.Fatalf("DeleteMin after peek = %d/%v", k, ok)
	}
}
