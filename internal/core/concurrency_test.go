package core

import (
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEvictionBoundary(t *testing.T) {
	// Exactly k items never evict; k+1 must push a block into the SLSM.
	const k = 64
	q := NewKLSM(k)
	h := q.Handle().(*Handle)
	for i := uint64(0); i < k; i++ {
		h.Insert(i, i)
	}
	if q.slsm.approxSize() != 0 {
		t.Fatalf("SLSM grew to %d before the local cap was exceeded", q.slsm.approxSize())
	}
	h.Insert(k, k)
	if q.slsm.approxSize() == 0 {
		t.Fatal("no eviction after exceeding the local cap")
	}
}

func TestMultipleThievesShareOneVictim(t *testing.T) {
	// One producer with local items only; many thieves must collectively
	// recover every item exactly once through spying.
	q := NewKLSM(1 << 20) // never evicts: all items stay DLSM-local
	producer := q.Handle()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		producer.Insert(i, i)
	}
	const thieves = 6
	results := make([][]uint64, thieves)
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				results[i] = append(results[i], k)
			}
		}(i)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range results {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("item %d stolen twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("thieves recovered %d of %d items", total, n)
	}
}

func TestSLSMConcurrentPivotRecompute(t *testing.T) {
	// Hammer the SLSM's delete path so pivot ranges exhaust and republish
	// under contention; every item must still come out exactly once.
	const k = 16 // small k: frequent pivot exhaustion
	s := newSLSM(k)
	const n = 20000
	items := make([]*item, n)
	for i := range items {
		items[i] = &item{key: uint64(i), value: uint64(i)}
	}
	// Insert in sorted batches of 50.
	for i := 0; i < n; i += 50 {
		s.insertBatch(items[i:i+50], nil)
	}
	const workers = 8
	var wg sync.WaitGroup
	counts := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			for {
				it, ok := s.deleteMin(r, nil)
				if !ok {
					return
				}
				counts[w] = append(counts[w], it.key)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range counts {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("item %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("recovered %d of %d", total, n)
	}
}

func TestSLSMRelaxationUnderConcurrentDeleters(t *testing.T) {
	// With P concurrent deleters, any single linearized deletion still
	// skips at most k items plus what the other in-flight deleters hold:
	// the i-th completed deletion must return a key < i + k + P.
	const k = 32
	const workers = 4
	s := newSLSM(k)
	const n = 8000
	items := make([]*item, n)
	for i := range items {
		items[i] = &item{key: uint64(i)}
	}
	for i := 0; i < n; i += 100 {
		s.insertBatch(items[i:i+100], nil)
	}
	var mu sync.Mutex
	order := make([]uint64, 0, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 5)
			for {
				it, ok := s.deleteMin(r, nil)
				if !ok {
					return
				}
				mu.Lock()
				order = append(order, it.key)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(order) != n {
		t.Fatalf("recovered %d of %d", len(order), n)
	}
	for i, key := range order {
		if key > uint64(i+k+workers) {
			t.Fatalf("deletion %d returned %d — beyond relaxation bound %d",
				i, key, i+k+workers)
		}
	}
}

func TestKLSMInsertDeleteChurnKeepsMemoryBounded(t *testing.T) {
	// Steady-state churn: size estimates must not grow without bound
	// (merges shed taken items; pivots republish), and the pooled working
	// memory — block-shell and backing-array freelists, the shared-run
	// buffer window — must stay within its documented caps rather than
	// accumulating recycled garbage of its own.
	q := NewKLSM(128)
	h := q.Handle().(*Handle)
	r := rng.New(9)
	for i := 0; i < 200000; i++ {
		h.Insert(r.Uint64()%100000, 0)
		h.DeleteMin()
	}
	if n := q.ApproxLen(); n > 50000 {
		t.Fatalf("ApproxLen = %d after steady-state churn; garbage is accumulating", n)
	}
	l := h.local
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.shells); n > maxFreeShells {
		t.Errorf("%d pooled shells, cap is %d", n, maxFreeShells)
	}
	if n := len(l.slices); n > maxFreeSlices {
		t.Errorf("%d pooled backing arrays, cap is %d", n, maxFreeSlices)
	}
	for i, s := range l.slices {
		// A local block never exceeds ~2k items before eviction, so retired
		// arrays are bounded too; and retired arrays must hold no stale item
		// pointers (a retained *item would pin whole allocation slabs).
		if cap(s) > 4*q.k {
			t.Errorf("pooled array %d has cap %d — exceeds the 4k bound", i, cap(s))
		}
		for j, it := range s[:cap(s)] {
			if it != nil {
				t.Fatalf("pooled array %d retains a stale item pointer at %d", i, j)
			}
		}
	}
	if h.srunEnd-h.srunPos > sharedRunMax || h.srunEnd > sharedRunMax || h.srunPos < 0 {
		t.Errorf("shared-run window [%d,%d) escaped its %d-slot buffer",
			h.srunPos, h.srunEnd, sharedRunMax)
	}
}

func TestHandlesAreIndependent(t *testing.T) {
	q := NewKLSM(8)
	h1 := q.Handle()
	h2 := q.Handle()
	h1.Insert(1, 1)
	h2.Insert(2, 2)
	// Each handle can see both items (via local peek or spy or shared).
	k1, _, ok1 := h1.DeleteMin()
	k2, _, ok2 := h2.DeleteMin()
	if !ok1 || !ok2 {
		t.Fatal("handles failed to delete")
	}
	if k1 == k2 {
		t.Fatalf("both handles deleted key %d", k1)
	}
}
