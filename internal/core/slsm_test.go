package core

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func slsmInsertKeys(s *slsm, keys ...uint64) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	items := make([]*item, len(sorted))
	for i, k := range sorted {
		items[i] = &item{key: k, value: k}
	}
	s.insertBatch(items, nil)
}

func TestSLSMEmpty(t *testing.T) {
	s := newSLSM(4)
	r := rng.New(1)
	if _, ok := s.deleteMin(r, nil); ok {
		t.Fatal("deleteMin on empty returned ok")
	}
	if _, ok := s.peekCandidate(r, nil); ok {
		t.Fatal("peekCandidate on empty returned ok")
	}
	s.insertBatch(nil, nil) // no-op
	if s.approxSize() != 0 {
		t.Fatal("size after nil batch")
	}
}

func TestSLSMDrainWithinRelaxation(t *testing.T) {
	const k = 8
	s := newSLSM(k)
	r := rng.New(2)
	const n = 2000
	for i := 0; i < n/100; i++ {
		keys := make([]uint64, 100)
		for j := range keys {
			keys[j] = uint64(i*100 + j)
		}
		slsmInsertKeys(s, keys...)
	}
	// Sequential drain: the i-th deletion must return a key within k of the
	// i-th smallest remaining — i.e. key < i + k + 1.
	for i := 0; i < n; i++ {
		it, ok := s.deleteMin(r, nil)
		if !ok {
			t.Fatalf("empty at %d", i)
		}
		if it.key > uint64(i+k) {
			t.Fatalf("deletion %d returned key %d — exceeds relaxation bound %d",
				i, it.key, i+k)
		}
	}
	if _, ok := s.deleteMin(r, nil); ok {
		t.Fatal("not empty after full drain")
	}
}

func TestSLSMPivotsAreSmallestItems(t *testing.T) {
	s := newSLSM(4)
	slsmInsertKeys(s, 50, 10, 30, 20, 40, 60, 70)
	st := s.state.Load()
	if len(st.pivots) != 5 { // k+1
		t.Fatalf("%d pivots, want 5", len(st.pivots))
	}
	var keys []uint64
	for _, it := range st.pivots {
		keys = append(keys, it.key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	want := []uint64{10, 20, 30, 40, 50}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("pivot keys %v, want %v", keys, want)
		}
	}
	if st.pivotMax != 50 {
		t.Fatalf("pivotMax = %d, want 50", st.pivotMax)
	}
}

func TestSLSMPivotCarryForwardAcrossInserts(t *testing.T) {
	// A batch insert must reuse the previous state's still-live pivots: the
	// resulting pivot set stays a subset of the k+1 smallest live items and
	// pivotMax never grows across a carry-forward publish.
	s := newSLSM(4)
	slsmInsertKeys(s, 10, 20, 30, 40, 50, 60, 70)
	prevMax := s.state.Load().pivotMax
	slsmInsertKeys(s, 5, 15, 25) // all below prevMax: mergeable candidates
	st := s.state.Load()
	if st.pivotMax > prevMax {
		t.Fatalf("pivotMax grew across carry-forward: %d -> %d", prevMax, st.pivotMax)
	}
	want := map[uint64]bool{5: true, 10: true, 15: true, 20: true, 25: true}
	if len(st.pivots) == 0 || len(st.pivots) > 5 {
		t.Fatalf("%d pivots after carry-forward, want 1..5", len(st.pivots))
	}
	for i, it := range st.pivots {
		if !want[it.key] {
			t.Fatalf("pivot %d has key %d — not among the k+1 smallest live items", i, it.key)
		}
		if i > 0 && st.pivots[i-1].key > it.key {
			t.Fatal("pivots not ascending")
		}
	}
	// Items above the previous threshold must not enter the carried set.
	slsmInsertKeys(s, 1000, 2000)
	for _, it := range s.state.Load().pivots {
		if it.key >= 1000 {
			t.Fatalf("pivot key %d leapfrogged the carry threshold", it.key)
		}
	}
}

func TestSLSMClassInvariant(t *testing.T) {
	s := newSLSM(16)
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		n := int(r.Uintn(20)) + 1
		keys := make([]uint64, n)
		for j := range keys {
			keys[j] = r.Uint64() % 1000
		}
		slsmInsertKeys(s, keys...)
		st := s.state.Load()
		for b := 1; b < len(st.blocks); b++ {
			if st.blocks[b-1].liveClass() <= st.blocks[b].liveClass() {
				t.Fatalf("batch %d: classes not strictly decreasing", i)
			}
		}
		for _, b := range st.blocks {
			blk := &block{items: b.items}
			if !blk.sortedInvariant() {
				t.Fatalf("batch %d: unsorted block", i)
			}
		}
	}
}

func TestSLSMFirstHintMonotone(t *testing.T) {
	b := &sblock{items: itemsOf(1, 2, 3)}
	b.advanceFirst(2)
	if b.first.Load() != 2 {
		t.Fatal("advanceFirst did not advance")
	}
	b.advanceFirst(1)
	if b.first.Load() != 2 {
		t.Fatal("advanceFirst went backwards")
	}
}

func TestSLSMConcurrentMixed(t *testing.T) {
	const k = 64
	s := newSLSM(k)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	var mu sync.Mutex
	inserted := map[uint64]int{}
	deleted := map[uint64]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 17)
			batch := make([]uint64, 0, 16)
			for i := 0; i < perWorker; i++ {
				batch = append(batch, r.Uint64()%100000)
				if len(batch) == 16 {
					slsmInsertKeys(s, batch...)
					mu.Lock()
					for _, k := range batch {
						inserted[k]++
					}
					mu.Unlock()
					batch = batch[:0]
				}
				if i%2 == 1 {
					if it, ok := s.deleteMin(r, nil); ok {
						mu.Lock()
						deleted[it.key]++
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain the rest single-threaded.
	r := rng.New(999)
	for {
		it, ok := s.deleteMin(r, nil)
		if !ok {
			break
		}
		deleted[it.key]++
	}
	for k, n := range inserted {
		if deleted[k] != n {
			t.Fatalf("key %d inserted %d, deleted %d", k, n, deleted[k])
		}
	}
	for k, n := range deleted {
		if inserted[k] != n {
			t.Fatalf("key %d deleted %d but inserted %d", k, n, inserted[k])
		}
	}
}

func TestStandaloneSLSMQueue(t *testing.T) {
	q := NewSLSM(4)
	if q.Name() != "slsm4" {
		t.Fatalf("name = %q", q.Name())
	}
	h := q.Handle()
	for _, k := range []uint64{9, 1, 5} {
		h.Insert(k, k*2)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || v != k*2 {
			t.Fatalf("delete %d = %d/%d/%v", i, k, v, ok)
		}
		seen[k] = true
	}
	if !seen[1] || !seen[5] || !seen[9] {
		t.Fatalf("wrong keys: %v", seen)
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("not empty")
	}
	if NewSLSM(0).k != 1 {
		t.Fatal("k floor not applied")
	}
}
