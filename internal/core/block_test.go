package core

import (
	"sort"
	"testing"
	"testing/quick"
)

func itemsOf(keys ...uint64) []*item {
	out := make([]*item, len(keys))
	for i, k := range keys {
		out[i] = &item{key: k, value: k * 10}
	}
	return out
}

func TestClassOf(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := classOf(c.n); got != c.want {
			t.Fatalf("classOf(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Invariant: 2^(class-1) < n <= 2^class for n > 1.
	for n := 2; n < 10000; n++ {
		c := classOf(n)
		if !(1<<(c-1) < n && n <= 1<<c) {
			t.Fatalf("classOf(%d) = %d violates capacity invariant", n, c)
		}
	}
}

func TestMergeBlocksSorted(t *testing.T) {
	a := &block{items: itemsOf(1, 3, 5, 7)}
	b := &block{items: itemsOf(2, 3, 6)}
	m := mergeBlocks(a, b)
	if !m.sortedInvariant() {
		t.Fatal("merge result not sorted")
	}
	if len(m.items) != 7 {
		t.Fatalf("merged %d items, want 7", len(m.items))
	}
}

func TestMergeBlocksDropsTaken(t *testing.T) {
	a := &block{items: itemsOf(1, 3, 5)}
	b := &block{items: itemsOf(2, 4, 6)}
	a.items[1].take()
	b.items[2].take()
	m := mergeBlocks(a, b)
	if len(m.items) != 4 {
		t.Fatalf("merged %d items, want 4", len(m.items))
	}
	for _, it := range m.items {
		if it.isTaken() {
			t.Fatal("taken item survived merge")
		}
	}
}

func TestMergeBlocksEmptyInputs(t *testing.T) {
	empty := &block{}
	a := &block{items: itemsOf(1, 2)}
	if m := mergeBlocks(empty, a); len(m.items) != 2 {
		t.Fatal("merge with empty lost items")
	}
	if m := mergeBlocks(empty, empty); len(m.items) != 0 {
		t.Fatal("merge of empties not empty")
	}
}

func TestMergeBlocksProperty(t *testing.T) {
	if err := quick.Check(func(ka, kb []uint16, takenMask uint32) bool {
		sortU16 := func(xs []uint16) {
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		}
		sortU16(ka)
		sortU16(kb)
		a := &block{items: make([]*item, len(ka))}
		for i, k := range ka {
			a.items[i] = &item{key: uint64(k)}
			if takenMask>>(uint(i)%32)&1 == 1 {
				a.items[i].take()
			}
		}
		b := &block{items: make([]*item, len(kb))}
		for i, k := range kb {
			b.items[i] = &item{key: uint64(k)}
		}
		m := mergeBlocks(a, b)
		if !m.sortedInvariant() {
			return false
		}
		wantLive := len(kb)
		for _, it := range a.items {
			if !it.isTaken() {
				wantLive++
			}
		}
		return len(m.items) == wantLive
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	b := &block{items: itemsOf(1, 2, 3, 4)}
	if c := b.compact(); c != b {
		t.Fatal("compact of all-live block should return the same block")
	}
	b.items[0].take()
	b.items[2].take()
	c := b.compact()
	if len(c.items) != 2 || c.items[0].key != 2 || c.items[1].key != 4 {
		t.Fatalf("compact wrong: %v", c.items)
	}
}

func TestItemTakeOnce(t *testing.T) {
	it := &item{key: 1}
	if !it.take() {
		t.Fatal("first take failed")
	}
	if it.take() {
		t.Fatal("second take succeeded")
	}
	if !it.isTaken() {
		t.Fatal("item not marked taken")
	}
}
