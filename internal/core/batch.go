package core

import (
	"slices"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Batch-first paths of the k-LSM family (DESIGN.md §4c).
//
// The k-LSM already amortizes internally — evicted blocks are batch-merged
// into the SLSM, delete_min takes short pivot runs under one state load —
// but the scalar API re-pays the per-operation overheads (lock round trip,
// single-item block build and merge cascade) n times per n items. The
// native InsertN builds ONE sorted block from the whole batch and runs ONE
// merge cascade; when it overflows the local component, the eviction is
// ONE SLSM CAS publish carrying the batch. DeleteMinN holds the local lock
// across the batch and drains the run buffer and pivot prefix with at most
// one takeRun state load per sharedRunMax items.

var _ pq.BatchInserter = (*Handle)(nil)
var _ pq.BatchDeleter = (*Handle)(nil)

// sortItems sorts a run of items ascending by key (stable order among
// equal keys is irrelevant: ties may be served in either order anyway).
func sortItems(run []*item) {
	slices.SortFunc(run, func(a, b *item) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
}

// InsertN implements pq.BatchInserter: one sorted local block build and at
// most one eviction publish for the whole batch.
func (h *Handle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	l := h.local
	l.mu.Lock()
	run := l.scratchFor(n)
	for _, kv := range kvs {
		run = append(run, h.alloc.new(kv.Key, kv.Value))
	}
	sortItems(run)
	l.insertBlockLocked(run)
	var evicted []*item
	if l.sizeLocked() > h.q.k {
		evicted = l.evictLargestLocked()
	}
	l.mu.Unlock()
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
	if len(evicted) > 0 {
		h.tel.Inc(telemetry.LocalEvict)
		// The batch's single CAS publish; chaos can force a mid-batch loss
		// here (failpoint batch-publish), which redoes the merge — the
		// retry must neither drop nor double any batch item.
		h.q.slsm.insertBatchFP(evicted, h.tel, chaos.BatchPublish)
	}
}

// DeleteMinN implements pq.BatchDeleter: the scalar DeleteMin decision per
// item — run-buffer head vs local minimum vs fresh pivot run — but under
// one lock acquisition for the whole batch, releasing it only to spy or to
// fall back to the shared component when the local side drains. Each
// returned item individually satisfies the kP bound (plus the documented
// run-buffer holdover); the batch only shares the synchronization.
func (h *Handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	got := 0
	l := h.local
	// Failpoint: stall before taking the local lock so a spy can steal the
	// run buffer (or the local minimum) out from under the whole batch.
	chaos.Perturb(chaos.KLSMRunBuffer)
	l.mu.Lock()
	for got < n {
		bi, ii, lkey, lok := l.peekMinLocked()
		if h.srunPos < h.srunEnd {
			if rit := h.srun[h.srunPos]; !lok || rit.key <= lkey {
				it := h.popRunLocked()
				dst[got] = pq.KV{Key: it.key, Value: it.value}
				got++
				continue
			}
			if it, won := l.takeAtLocked(bi, ii); won {
				dst[got] = pq.KV{Key: it.key, Value: it.value}
				got++
				continue
			}
			h.tel.Inc(telemetry.CASItemTakeFail)
			continue // a spy took our local minimum under us; retry
		}
		if lok {
			run := h.q.slsm.takeRun(h.rng, lkey, h.srun[:0], sharedRunMax, h.tel)
			if len(run) > 0 {
				h.tel.Inc(telemetry.SharedRunTake)
				h.tel.Add(telemetry.SharedRunItems, uint64(len(run)))
				h.srunPos, h.srunEnd = 0, len(run)
				it := h.popRunLocked()
				dst[got] = pq.KV{Key: it.key, Value: it.value}
				got++
				continue
			}
			if it, won := l.takeAtLocked(bi, ii); won {
				dst[got] = pq.KV{Key: it.key, Value: it.value}
				got++
				continue
			}
			h.tel.Inc(telemetry.CASItemTakeFail)
			continue
		}
		// Local side empty: spying and the shared fallback follow the
		// scalar path's locking discipline (no local lock held).
		l.mu.Unlock()
		if h.spy() {
			l.mu.Lock()
			continue
		}
		run := h.q.slsm.takeRun(h.rng, ^uint64(0), h.srun[:0], sharedRunMax, h.tel)
		if len(run) == 0 {
			// Queue appeared empty mid-batch: return the short count.
			h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
			h.tel.ObserveBatchWidth(got)
			return got
		}
		h.tel.Inc(telemetry.SharedRunTake)
		h.tel.Add(telemetry.SharedRunItems, uint64(len(run)))
		l.mu.Lock()
		h.srunPos, h.srunEnd = 0, len(run)
	}
	l.mu.Unlock()
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}

var _ pq.BatchInserter = (*slsmHandle)(nil)
var _ pq.BatchDeleter = (*slsmHandle)(nil)

// InsertN implements pq.BatchInserter for the standalone SLSM: the whole
// batch becomes one sorted block published by a single CAS (the scalar
// Insert pays one merge-and-publish per item). The items array is donated
// to the immutable shared block, so it is freshly allocated per call —
// exactly as the scalar path allocates per item, only n times less often.
func (h *slsmHandle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	items := make([]*item, 0, n)
	for _, kv := range kvs {
		items = append(items, h.alloc.new(kv.Key, kv.Value))
	}
	sortItems(items)
	h.q.s.insertBatchFP(items, h.tel, chaos.BatchPublish)
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter for the standalone SLSM: pivot
// runs of up to the remaining batch size are taken under one state load
// each, into a scratch buffer the handle reuses across calls (items are
// copied out; the scratch never escapes).
func (h *slsmHandle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	got := 0
	for got < n {
		run := h.q.s.takeRun(h.rng, ^uint64(0), h.drain[:0], n-got, h.tel)
		if len(run) == 0 {
			break
		}
		for _, it := range run {
			dst[got] = pq.KV{Key: it.key, Value: it.value}
			got++
		}
		clear(run) // drop item pointers so the scratch cannot pin slabs
		h.drain = run[:0]
	}
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}
