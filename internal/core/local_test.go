package core

import (
	"sort"
	"testing"

	"cpq/internal/rng"
)

func TestLocalLSMInsertPeekTake(t *testing.T) {
	l := &localLSM{}
	for _, k := range []uint64{5, 1, 9, 3} {
		l.insertLocked(&item{key: k})
	}
	if !l.classInvariantLocked() {
		t.Fatal("class invariant violated after inserts")
	}
	want := []uint64{1, 3, 5, 9}
	for _, w := range want {
		bi, ii, key, ok := l.peekMinLocked()
		if !ok || key != w {
			t.Fatalf("peek = %d/%v, want %d", key, ok, w)
		}
		it, won := l.takeAtLocked(bi, ii)
		if !won || it.key != w {
			t.Fatalf("take = %v/%v, want %d", it, won, w)
		}
	}
	if _, _, _, ok := l.peekMinLocked(); ok {
		t.Fatal("peek on drained LSM returned ok")
	}
}

func TestLocalLSMRandomDrainSorted(t *testing.T) {
	l := &localLSM{}
	r := rng.New(1)
	const n = 5000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % 512
		l.insertLocked(&item{key: keys[i]})
		if !l.classInvariantLocked() {
			t.Fatalf("class invariant violated at insert %d", i)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		bi, ii, key, ok := l.peekMinLocked()
		if !ok || key != keys[i] {
			t.Fatalf("drain %d = %d/%v, want %d", i, key, ok, keys[i])
		}
		l.takeAtLocked(bi, ii)
	}
}

func TestLocalLSMSkipsExternallyTakenItems(t *testing.T) {
	// Simulates a spy deleting items out from under the owner.
	l := &localLSM{}
	items := itemsOf(1, 2, 3, 4, 5)
	for _, it := range items {
		l.insertLocked(it)
	}
	items[0].take() // spy took the 1
	items[1].take() // and the 2
	_, _, key, ok := l.peekMinLocked()
	if !ok || key != 3 {
		t.Fatalf("peek after external takes = %d/%v, want 3", key, ok)
	}
}

func TestLocalLSMTakeRace(t *testing.T) {
	l := &localLSM{}
	it := &item{key: 7}
	l.insertLocked(it)
	bi, ii, _, _ := l.peekMinLocked()
	it.take() // lost to a spy between peek and take
	if _, won := l.takeAtLocked(bi, ii); won {
		t.Fatal("takeAt won an already-taken item")
	}
}

func TestLocalLSMEvictLargest(t *testing.T) {
	l := &localLSM{}
	for k := uint64(0); k < 100; k++ {
		l.insertLocked(&item{key: k})
	}
	before := l.sizeLocked()
	evicted := l.evictLargestLocked()
	if len(evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	if !sort.SliceIsSorted(evicted, func(i, j int) bool { return evicted[i].key < evicted[j].key }) {
		t.Fatal("evicted run not sorted")
	}
	if l.sizeLocked() != before-len(evicted) {
		t.Fatalf("size accounting wrong: %d -> %d after evicting %d",
			before, l.sizeLocked(), len(evicted))
	}
	// Largest block must be the biggest power-of-two run: >= half the items.
	if len(evicted) < 50 {
		t.Fatalf("evicted only %d items; largest block expected", len(evicted))
	}
}

func TestLocalLSMEvictEmpty(t *testing.T) {
	l := &localLSM{}
	if ev := l.evictLargestLocked(); ev != nil {
		t.Fatal("evict on empty returned items")
	}
}

func TestLocalLSMSnapshot(t *testing.T) {
	l := &localLSM{}
	for _, k := range []uint64{4, 2, 8, 6} {
		l.insertLocked(&item{key: k})
	}
	runs := l.snapshotLocked()
	var all []uint64
	for _, run := range runs {
		for i := 1; i < len(run); i++ {
			if run[i-1].key > run[i].key {
				t.Fatal("snapshot run not sorted")
			}
		}
		for _, it := range run {
			all = append(all, it.key)
		}
	}
	if len(all) != 4 {
		t.Fatalf("snapshot has %d items, want 4", len(all))
	}
	// Snapshot must not consume: peek still sees the minimum.
	if _, _, key, ok := l.peekMinLocked(); !ok || key != 2 {
		t.Fatalf("peek after snapshot = %d/%v", key, ok)
	}
	if l.snapshotLocked() == nil {
		t.Fatal("second snapshot empty")
	}
	empty := &localLSM{}
	if empty.snapshotLocked() != nil {
		t.Fatal("snapshot of empty LSM not nil")
	}
}

func TestLocalLSMInsertBlock(t *testing.T) {
	l := &localLSM{}
	l.insertBlockLocked(itemsOf(10, 20, 30))
	l.insertBlockLocked(itemsOf(5, 15))
	l.insertBlockLocked(nil) // no-op
	if !l.classInvariantLocked() {
		t.Fatal("class invariant violated")
	}
	want := []uint64{5, 10, 15, 20, 30}
	for _, w := range want {
		bi, ii, key, ok := l.peekMinLocked()
		if !ok || key != w {
			t.Fatalf("got %d/%v, want %d", key, ok, w)
		}
		l.takeAtLocked(bi, ii)
	}
}

func TestLocalLSMMergeCompactsTaken(t *testing.T) {
	// Fill, take most items externally, keep inserting: merges must shed
	// the taken items so size does not grow unboundedly.
	l := &localLSM{}
	var all []*item
	for k := uint64(0); k < 1024; k++ {
		it := &item{key: k}
		all = append(all, it)
		l.insertLocked(it)
	}
	for _, it := range all[:1000] {
		it.take()
	}
	// Trigger merges.
	for k := uint64(2000); k < 3024; k++ {
		l.insertLocked(&item{key: k})
	}
	if l.sizeLocked() > 1100 {
		t.Fatalf("size %d; merges did not shed taken items", l.sizeLocked())
	}
}
