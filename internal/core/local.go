package core

import "sync"

// localLSM is the per-thread LSM of the DLSM component. The owning handle
// locks mu around every operation; the lock is uncontended except when
// another thread spies (copies items) from this LSM, which the paper notes
// is the DLSM's only inter-thread communication.
//
// Unlike the shared LSM's immutable blocks, local blocks carry a mutable
// consumed-prefix offset: the owner deletes its local minimum by advancing
// `first` after winning the item's take() CAS.
type localLSM struct {
	mu sync.Mutex
	// blocks is ordered by strictly decreasing capacity class.
	blocks []*localBlock
	// size is the number of item slots currently referenced (an upper bound
	// on live items; interior taken items are discovered lazily).
	size int
}

type localBlock struct {
	items []*item
	first int // items[first:] are not yet consumed by the owner
}

func (lb *localBlock) class() int { return classOf(len(lb.items) - lb.first) }

// insertLocked adds one item (O(log n) amortized via merging).
func (l *localLSM) insertLocked(it *item) {
	l.blocks = append(l.blocks, &localBlock{items: []*item{it}})
	l.size++
	l.mergeTailLocked()
}

// insertBlockLocked adds a pre-sorted run of items (spy and tests).
func (l *localLSM) insertBlockLocked(items []*item) {
	if len(items) == 0 {
		return
	}
	l.blocks = append(l.blocks, &localBlock{items: items})
	l.size += len(items)
	l.mergeTailLocked()
}

// mergeTailLocked restores the strictly-decreasing class invariant by
// merging from the tail, dropping taken items as it goes.
func (l *localLSM) mergeTailLocked() {
	for n := len(l.blocks); n >= 2; n = len(l.blocks) {
		a, b := l.blocks[n-2], l.blocks[n-1]
		if a.class() > b.class() {
			break
		}
		merged := mergeBlocks(
			&block{items: a.items[a.first:]},
			&block{items: b.items[b.first:]},
		)
		l.size -= (len(a.items) - a.first) + (len(b.items) - b.first)
		l.blocks = l.blocks[:n-2]
		if len(merged.items) > 0 {
			l.blocks = append(l.blocks, &localBlock{items: merged.items})
			l.size += len(merged.items)
		}
	}
}

// peekMinLocked returns the position and key of the smallest unconsumed,
// untaken item. It advances consumed prefixes past taken items (items
// spied-and-deleted by other threads) and drops exhausted blocks.
func (l *localLSM) peekMinLocked() (bi, ii int, key uint64, ok bool) {
	bi = -1
	for i := 0; i < len(l.blocks); {
		b := l.blocks[i]
		for b.first < len(b.items) && b.items[b.first].isTaken() {
			b.first++
			l.size--
		}
		if b.first >= len(b.items) {
			l.blocks = append(l.blocks[:i], l.blocks[i+1:]...)
			continue
		}
		if front := b.items[b.first]; bi < 0 || front.key < key {
			bi, ii, key = i, b.first, front.key
		}
		i++
	}
	if bi < 0 {
		return 0, 0, 0, false
	}
	return bi, ii, key, true
}

// takeAtLocked attempts to take the item at (bi, ii) as returned by
// peekMinLocked in the same critical section. It reports whether this
// thread won the item.
func (l *localLSM) takeAtLocked(bi, ii int) (*item, bool) {
	b := l.blocks[bi]
	it := b.items[ii]
	if !it.take() {
		return nil, false
	}
	if ii == b.first {
		b.first++
		l.size--
	}
	return it, true
}

// evictLargestLocked removes and returns the live items of the largest
// (front) block, for batch insertion into the SLSM. Returns nil if empty.
func (l *localLSM) evictLargestLocked() []*item {
	if len(l.blocks) == 0 {
		return nil
	}
	b := l.blocks[0]
	l.blocks = l.blocks[1:]
	l.size -= len(b.items) - b.first
	live := make([]*item, 0, len(b.items)-b.first)
	for _, it := range b.items[b.first:] {
		if !it.isTaken() {
			live = append(live, it)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live
}

// snapshotLocked copies references to all live (unconsumed, untaken) items,
// for spying. The copy is per-block so the spy can feed sorted runs into its
// own LSM. Taken items are filtered out — otherwise a spy could loop forever
// "stealing" items that are already logically deleted. Returns nil when the
// victim has nothing live.
func (l *localLSM) snapshotLocked() [][]*item {
	if l.size == 0 {
		return nil
	}
	out := make([][]*item, 0, len(l.blocks))
	for _, b := range l.blocks {
		// Help the victim: advance its consumed prefix past taken items.
		for b.first < len(b.items) && b.items[b.first].isTaken() {
			b.first++
			l.size--
		}
		if b.first >= len(b.items) {
			continue
		}
		run := make([]*item, 0, len(b.items)-b.first)
		for _, it := range b.items[b.first:] {
			if !it.isTaken() {
				run = append(run, it)
			}
		}
		if len(run) > 0 {
			out = append(out, run)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sizeLocked returns the referenced-slot count (upper bound on live items).
func (l *localLSM) sizeLocked() int { return l.size }

// classInvariantLocked reports whether classes strictly decrease (tests).
func (l *localLSM) classInvariantLocked() bool {
	for i := 1; i < len(l.blocks); i++ {
		if l.blocks[i-1].class() <= l.blocks[i].class() {
			return false
		}
	}
	return true
}
