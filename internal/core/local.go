package core

import (
	"sync"

	"cpq/internal/telemetry"
)

// localLSM is the per-thread LSM of the DLSM component. The owning handle
// locks mu around every operation; the lock is uncontended except when
// another thread spies (copies items) from this LSM, which the paper notes
// is the DLSM's only inter-thread communication.
//
// Unlike the shared LSM's immutable blocks, local blocks carry a mutable
// consumed-prefix offset: the owner deletes its local minimum by advancing
// `first` after winning the item's take() CAS.
//
// The LSM recycles its own working memory: localBlock shells and the []*item
// backing arrays of merged-away blocks go onto small per-LSM freelists and
// are reused by later inserts and merges. This is safe because both are
// provably private to this mutex: every external reader (spy snapshots,
// evictions) copies item pointers out under the lock and never retains the
// shells or slices themselves. Items are the one exception — see itemAlloc's
// reclamation rule. An evicted block's array is donated to the SLSM and
// permanently leaves the freelist.
type localLSM struct {
	mu sync.Mutex
	// blocks is ordered by strictly decreasing capacity class.
	blocks []*localBlock
	// size is the number of item slots currently referenced (an upper bound
	// on live items; interior taken items are discovered lazily).
	size int

	// shells and slices are bounded freelists of retired localBlock shells
	// and block backing arrays, reused by inserts and tail merges.
	shells []*localBlock
	slices [][]*item

	// tel is the owning handle's telemetry shard (nil outside handles);
	// mergeTailLocked reports LocalMerge through it.
	tel *telemetry.Shard
}

// Freelist bounds: past these, retired memory is left to the GC. They cap
// how much recycled memory an idle LSM can pin.
const (
	maxFreeShells = 32
	maxFreeSlices = 8
)

type localBlock struct {
	items []*item
	first int // items[first:] are not yet consumed by the owner
}

func (lb *localBlock) class() int { return classOf(len(lb.items) - lb.first) }

// newShell returns a zeroed localBlock, recycled if possible.
func (l *localLSM) newShell() *localBlock {
	if n := len(l.shells); n > 0 {
		lb := l.shells[n-1]
		l.shells[n-1] = nil
		l.shells = l.shells[:n-1]
		return lb
	}
	return &localBlock{}
}

// retireShell recycles a block shell once no reference to it remains.
func (l *localLSM) retireShell(lb *localBlock) {
	if len(l.shells) >= maxFreeShells {
		return
	}
	lb.items, lb.first = nil, 0
	l.shells = append(l.shells, lb)
}

// scratchFor returns an empty []*item with capacity >= need, preferring the
// smallest adequate retired array over a fresh allocation.
func (l *localLSM) scratchFor(need int) []*item {
	best := -1
	for i, s := range l.slices {
		if cap(s) >= need && (best < 0 || cap(s) < cap(l.slices[best])) {
			best = i
		}
	}
	if best >= 0 {
		s := l.slices[best]
		n := len(l.slices) - 1
		l.slices[best] = l.slices[n]
		l.slices[n] = nil
		l.slices = l.slices[:n]
		return s
	}
	return make([]*item, 0, need)
}

// retireSlice recycles a block backing array. The array must start at its
// allocation base (every block items slice does) and hold no live block.
// Stale item pointers are cleared so the freelist cannot pin item slabs.
func (l *localLSM) retireSlice(s []*item) {
	if cap(s) == 0 || len(l.slices) >= maxFreeSlices {
		return
	}
	s = s[:cap(s)]
	clear(s)
	l.slices = append(l.slices, s[:0])
}

// insertLocked adds one item (O(log n) amortized via merging).
func (l *localLSM) insertLocked(it *item) {
	nb := l.newShell()
	nb.items = append(l.scratchFor(1), it)
	l.blocks = append(l.blocks, nb)
	l.size++
	l.mergeTailLocked()
}

// insertBlockLocked adds a pre-sorted run of items (spy and tests). The
// slice is absorbed into the LSM and must not be retained by the caller.
func (l *localLSM) insertBlockLocked(items []*item) {
	if len(items) == 0 {
		return
	}
	nb := l.newShell()
	nb.items = items
	l.blocks = append(l.blocks, nb)
	l.size += len(items)
	l.mergeTailLocked()
}

// mergeTailLocked restores the strictly-decreasing class invariant by
// merging from the tail, dropping taken items as it goes. Merge output goes
// into a recycled scratch array; the two consumed arrays and shells are
// retired for reuse.
func (l *localLSM) mergeTailLocked() {
	for n := len(l.blocks); n >= 2; n = len(l.blocks) {
		a, b := l.blocks[n-2], l.blocks[n-1]
		if a.class() > b.class() {
			break
		}
		la, lb := len(a.items)-a.first, len(b.items)-b.first
		l.tel.Inc(telemetry.LocalMerge)
		merged := mergeBlocksInto(l.scratchFor(la+lb), a.items[a.first:], b.items[b.first:])
		l.size -= la + lb
		l.blocks = l.blocks[:n-2]
		ai, bi := a.items, b.items
		l.retireShell(a)
		l.retireShell(b)
		if len(merged) > 0 {
			nb := l.newShell()
			nb.items = merged
			l.blocks = append(l.blocks, nb)
			l.size += len(merged)
		} else {
			l.retireSlice(merged)
		}
		l.retireSlice(ai)
		l.retireSlice(bi)
	}
}

// peekMinLocked returns the position and key of the smallest unconsumed,
// untaken item. It advances consumed prefixes past taken items (items
// spied-and-deleted by other threads) and drops exhausted blocks.
func (l *localLSM) peekMinLocked() (bi, ii int, key uint64, ok bool) {
	bi = -1
	for i := 0; i < len(l.blocks); {
		b := l.blocks[i]
		for b.first < len(b.items) && b.items[b.first].isTaken() {
			b.first++
			l.size--
		}
		if b.first >= len(b.items) {
			l.blocks = append(l.blocks[:i], l.blocks[i+1:]...)
			l.retireSlice(b.items)
			l.retireShell(b)
			continue
		}
		if front := b.items[b.first]; bi < 0 || front.key < key {
			bi, ii, key = i, b.first, front.key
		}
		i++
	}
	if bi < 0 {
		return 0, 0, 0, false
	}
	return bi, ii, key, true
}

// takeAtLocked attempts to take the item at (bi, ii) as returned by
// peekMinLocked in the same critical section. It reports whether this
// thread won the item.
func (l *localLSM) takeAtLocked(bi, ii int) (*item, bool) {
	b := l.blocks[bi]
	it := b.items[ii]
	if !it.take() {
		return nil, false
	}
	if ii == b.first {
		b.first++
		l.size--
	}
	return it, true
}

// evictLargestLocked removes and returns the live items of the largest
// (front) block, for batch insertion into the SLSM. Returns nil if empty.
// The items are compacted in place and the array is donated to the SLSM
// (it becomes part of an immutable shared block, so it is never retired).
func (l *localLSM) evictLargestLocked() []*item {
	if len(l.blocks) == 0 {
		return nil
	}
	b := l.blocks[0]
	l.blocks = l.blocks[1:]
	l.size -= len(b.items) - b.first
	live := b.items[b.first:]
	w := 0
	for _, it := range live {
		if !it.isTaken() {
			live[w] = it
			w++
		}
	}
	clear(live[w:]) // drop stale pointers beyond the donated prefix
	live = live[:w:w]
	l.retireShell(b)
	if len(live) == 0 {
		return nil
	}
	return live
}

// snapshotLocked copies references to all live (unconsumed, untaken) items,
// for spying. The copy is per-block so the spy can feed sorted runs into its
// own LSM. Taken items are filtered out — otherwise a spy could loop forever
// "stealing" items that are already logically deleted. Returns nil when the
// victim has nothing live.
func (l *localLSM) snapshotLocked() [][]*item {
	if l.size == 0 {
		return nil
	}
	out := make([][]*item, 0, len(l.blocks))
	for _, b := range l.blocks {
		// Help the victim: advance its consumed prefix past taken items.
		for b.first < len(b.items) && b.items[b.first].isTaken() {
			b.first++
			l.size--
		}
		if b.first >= len(b.items) {
			continue
		}
		run := make([]*item, 0, len(b.items)-b.first)
		for _, it := range b.items[b.first:] {
			if !it.isTaken() {
				run = append(run, it)
			}
		}
		if len(run) > 0 {
			out = append(out, run)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sizeLocked returns the referenced-slot count (upper bound on live items).
func (l *localLSM) sizeLocked() int { return l.size }

// classInvariantLocked reports whether classes strictly decrease (tests).
func (l *localLSM) classInvariantLocked() bool {
	for i := 1; i < len(l.blocks); i++ {
		if l.blocks[i-1].class() <= l.blocks[i].class() {
			return false
		}
	}
	return true
}
