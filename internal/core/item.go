// Package core implements the k-LSM relaxed priority queue of Wimmer,
// Gruber, Träff and Tsigas (PPoPP 2015) — the paper's primary contribution —
// together with its two components, each usable as a standalone queue:
//
//   - the DLSM (Distributed LSM): one thread-local log-structured merge-tree
//     per handle, embarrassingly parallel, with work stealing ("spy") when a
//     thread's local component runs empty;
//   - the SLSM (Shared LSM): one global LSM published through an atomic
//     pointer, with a "pivot range" covering at most the k+1 smallest items
//     from which delete_min picks uniformly at random.
//
// The k-LSM composes the two: inserts go to the local DLSM; when a thread's
// local component exceeds k items its largest block is batch-inserted into
// the SLSM. delete_min peeks at both components and takes the smaller
// candidate. Deletions skip at most k(P-1) items on the local side and at
// most k on the shared side, so the total relaxation bound is kP.
//
// # Substitutions relative to the C++ original
//
// The C++ k-LSM publishes thread-local blocks through versioned lock-free
// block arrays so that spying threads can read them without locks. Here each
// local component is guarded by a per-thread mutex: the owner's operations
// take an uncontended lock (a few nanoseconds on the fast path) and spying —
// which the paper notes is the only inter-thread communication in the DLSM —
// locks the victim. The SLSM's lock-free block-array merging is realized as
// functional (copy-on-write) merges published by a single CAS with
// optimistic retry. Items carry an atomic "taken" flag shared by every
// structure that references them, so an item handed from the DLSM to the
// SLSM, or copied by a spying thread, can still be deleted exactly once.
package core

import "sync/atomic"

// item is a key-value pair with a shared logical-deletion flag. All copies
// of a block alias the same *item, so whoever wins the take() CAS owns the
// deletion regardless of which component the item was reached through.
type item struct {
	key   uint64
	value uint64
	taken atomic.Bool
}

// take attempts to logically delete the item; exactly one caller ever wins.
func (it *item) take() bool {
	return !it.taken.Load() && it.taken.CompareAndSwap(false, true)
}

// isTaken reports whether the item has been logically deleted.
func (it *item) isTaken() bool { return it.taken.Load() }

// itemSlabSize is the bump-allocation granularity of itemAlloc. One slab
// allocation amortizes over this many inserts.
const itemSlabSize = 256

// itemAlloc is a per-handle bump allocator handing out items from slabs of
// itemSlabSize. It is owned by exactly one handle and needs no locking.
//
// Reclamation rule: an item is NEVER recycled while any component may still
// reference it. A taken item can live on in old SLSM states, spy copies and
// consumed block prefixes, so reusing its memory would require a generation
// check on every key read; instead item memory is handed to the garbage
// collector, which frees a slab once every item in it is unreachable. The
// slab only amortizes the allocation count (one make per itemSlabSize
// inserts); it never reuses item memory. Merge scratch and block shells
// (see localLSM) are recycled because they are provably private to one
// lock's critical section; items and sblocks are not, so they are not.
type itemAlloc struct {
	slab []item
}

// new returns a fresh, untaken item.
func (a *itemAlloc) new(key, value uint64) *item {
	if len(a.slab) == 0 {
		a.slab = make([]item, itemSlabSize)
	}
	it := &a.slab[0]
	a.slab = a.slab[1:]
	it.key, it.value = key, value
	return it
}
