package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

// KLSM is the k-LSM relaxed priority queue. delete_min returns one of the
// kP smallest items, where P is the number of handles (threads) in use.
type KLSM struct {
	k    int
	slsm *slsm
	seed atomic.Uint64

	mu      sync.Mutex
	handles []*Handle
}

var _ pq.Queue = (*KLSM)(nil)

// NewKLSM returns an empty k-LSM with relaxation parameter k (k >= 1). The
// paper evaluates k ∈ {128, 256, 4096}; k=16 behaves close to a strict
// queue.
func NewKLSM(k int) *KLSM {
	if k < 1 {
		k = 1
	}
	return &KLSM{k: k, slsm: newSLSM(k)}
}

// K returns the relaxation parameter.
func (q *KLSM) K() int { return q.k }

// Name implements pq.Queue ("klsm128", "klsm4096", ...).
func (q *KLSM) Name() string { return fmt.Sprintf("klsm%d", q.k) }

// Handle implements pq.Queue. Each handle owns a DLSM component (a local
// LSM capped at k items) and registers itself as a spy victim.
func (q *KLSM) Handle() pq.Handle {
	h := &Handle{
		q:     q,
		local: &localLSM{},
		rng:   rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
	}
	q.mu.Lock()
	q.handles = append(q.handles, h)
	h.spyCursor = len(q.handles)
	q.mu.Unlock()
	return h
}

// Handle is a per-goroutine k-LSM handle.
type Handle struct {
	q         *KLSM
	local     *localLSM
	rng       *rng.Xoroshiro
	spyCursor int // round-robin position for victim selection
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle: insert into the local DLSM; on overflow past
// k items, evict the largest local block into the shared SLSM.
func (h *Handle) Insert(key, value uint64) {
	it := &item{key: key, value: value}
	l := h.local
	l.mu.Lock()
	l.insertLocked(it)
	var evicted []*item
	if l.sizeLocked() > h.q.k {
		evicted = l.evictLargestLocked()
	}
	l.mu.Unlock()
	if len(evicted) > 0 {
		h.q.slsm.insertBatch(evicted)
	}
}

// DeleteMin implements pq.Handle: peek at the local component's minimum and
// at a random item from the SLSM's pivot range, and take the smaller of the
// two candidates. If the local component is empty, spy on another thread's
// local items first, per the DLSM design.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	for {
		l := h.local
		l.mu.Lock()
		bi, ii, lkey, lok := l.peekMinLocked()
		if !lok {
			l.mu.Unlock()
			if h.spy() {
				continue
			}
			// Local side empty everywhere we looked: fall back to shared.
			it, sok := h.q.slsm.deleteMin(h.rng)
			if !sok {
				return 0, 0, false
			}
			return it.key, it.value, true
		}
		// Local candidate exists; fetch a shared candidate to compare.
		scand, sok := h.q.slsm.peekCandidate(h.rng)
		if sok && scand.key < lkey {
			l.mu.Unlock()
			if scand.take() {
				return scand.key, scand.value, true
			}
			continue // lost the shared item; retry from scratch
		}
		it, won := l.takeAtLocked(bi, ii)
		l.mu.Unlock()
		if won {
			return it.key, it.value, true
		}
		// A spying thread took our local minimum under us; retry.
	}
}

// spy copies the unconsumed items of another handle's local LSM into our
// own, choosing victims round-robin. Returns true if anything was copied.
func (h *Handle) spy() bool {
	q := h.q
	q.mu.Lock()
	victims := q.handles
	q.mu.Unlock()
	n := len(victims)
	if n <= 1 {
		return false
	}
	for i := 0; i < n; i++ {
		v := victims[(h.spyCursor+i)%n]
		if v == h {
			continue
		}
		v.local.mu.Lock()
		runs := v.local.snapshotLocked()
		v.local.mu.Unlock()
		if len(runs) == 0 {
			continue
		}
		h.spyCursor = (h.spyCursor + i + 1) % n
		h.local.mu.Lock()
		for _, run := range runs {
			h.local.insertBlockLocked(run)
		}
		h.local.mu.Unlock()
		return true
	}
	return false
}

// PeekMin reports the smaller of the local minimum and a shared candidate,
// without removing it (approximate under concurrency).
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	l := h.local
	l.mu.Lock()
	bi, ii, lkey, lok := l.peekMinLocked()
	var lit *item
	if lok {
		lit = l.blocks[bi].items[ii]
	}
	l.mu.Unlock()
	scand, sok := h.q.slsm.peekCandidate(h.rng)
	switch {
	case lok && (!sok || lkey <= scand.key):
		return lit.key, lit.value, true
	case sok:
		return scand.key, scand.value, true
	default:
		return 0, 0, false
	}
}

// ApproxLen sums local sizes and the shared component's unconsumed slots.
// Upper bound on live items; tests and monitoring only.
func (q *KLSM) ApproxLen() int {
	q.mu.Lock()
	handles := append([]*Handle(nil), q.handles...)
	q.mu.Unlock()
	total := q.slsm.approxSize()
	for _, h := range handles {
		h.local.mu.Lock()
		total += h.local.sizeLocked()
		h.local.mu.Unlock()
	}
	return total
}

// DLSM is the Distributed LSM used standalone: thread-local LSMs with spy,
// no shared component, no relaxation bound across threads beyond locality
// (delete_min returns the minimum of the calling thread's items).
type DLSM struct {
	inner *KLSM
}

var _ pq.Queue = (*DLSM)(nil)

// NewDLSM returns an empty standalone DLSM.
func NewDLSM() *DLSM {
	// An unbounded k disables eviction to the (unused) shared component.
	return &DLSM{inner: NewKLSM(1 << 62)}
}

// Name implements pq.Queue.
func (q *DLSM) Name() string { return "dlsm" }

// Handle implements pq.Queue.
func (q *DLSM) Handle() pq.Handle { return q.inner.Handle() }

// SLSM is the Shared LSM used standalone: a purely global relaxed queue
// where delete_min skips at most k items.
type SLSM struct {
	k    int
	s    *slsm
	seed atomic.Uint64
}

var _ pq.Queue = (*SLSM)(nil)

// NewSLSM returns an empty standalone SLSM with relaxation k.
func NewSLSM(k int) *SLSM {
	if k < 1 {
		k = 1
	}
	return &SLSM{k: k, s: newSLSM(k)}
}

// Name implements pq.Queue.
func (q *SLSM) Name() string { return fmt.Sprintf("slsm%d", q.k) }

// Handle implements pq.Queue.
func (q *SLSM) Handle() pq.Handle {
	return &slsmHandle{q: q, rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15))}
}

type slsmHandle struct {
	q   *SLSM
	rng *rng.Xoroshiro
}

// Insert implements pq.Handle: a single-item batch insert into the SLSM.
func (h *slsmHandle) Insert(key, value uint64) {
	h.q.s.insertBatch([]*item{{key: key, value: value}})
}

// DeleteMin implements pq.Handle: a random pick from the pivot range.
func (h *slsmHandle) DeleteMin() (key, value uint64, ok bool) {
	it, ok := h.q.s.deleteMin(h.rng)
	if !ok {
		return 0, 0, false
	}
	return it.key, it.value, true
}
