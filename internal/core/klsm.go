package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/telemetry"
)

// KLSM is the k-LSM relaxed priority queue. delete_min returns one of the
// kP smallest items, where P is the number of handles (threads) in use —
// plus a short per-handle holdover window: a handle that goes to the shared
// component takes a short run of pivot items under one state load and
// serves the remainder from a private buffer (see sharedRunMax), so a
// buffered item's rank can additionally age by whatever is inserted while
// it waits. Buffered items stay reachable: spying steals them and Flush
// returns them to the shared component.
type KLSM struct {
	k    int
	slsm *slsm
	seed atomic.Uint64

	mu      sync.Mutex
	handles []*Handle
}

var _ pq.Queue = (*KLSM)(nil)

// NewKLSM returns an empty k-LSM with relaxation parameter k (k >= 1). The
// paper evaluates k ∈ {128, 256, 4096}; k=16 behaves close to a strict
// queue.
func NewKLSM(k int) *KLSM {
	if k < 1 {
		k = 1
	}
	return &KLSM{k: k, slsm: newSLSM(k)}
}

// K returns the relaxation parameter.
func (q *KLSM) K() int { return q.k }

// Name implements pq.Queue ("klsm128", "klsm4096", ...).
func (q *KLSM) Name() string { return fmt.Sprintf("klsm%d", q.k) }

// Handle implements pq.Queue. Each handle owns a DLSM component (a local
// LSM capped at k items) and registers itself as a spy victim.
func (q *KLSM) Handle() pq.Handle {
	tel := telemetry.NewShard()
	h := &Handle{
		q:     q,
		local: &localLSM{tel: tel},
		rng:   rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
		tel:   tel,
	}
	q.mu.Lock()
	q.handles = append(q.handles, h)
	h.spyCursor = len(q.handles)
	q.mu.Unlock()
	return h
}

// sharedRunMax is how many pivot items a handle takes from the SLSM under
// one state load; the surplus is served from the handle's run buffer on
// subsequent deletions without touching shared state.
const sharedRunMax = 8

// Handle is a per-goroutine k-LSM handle.
type Handle struct {
	q         *KLSM
	local     *localLSM
	rng       *rng.Xoroshiro
	alloc     itemAlloc        // owner-only item slab (no lock needed)
	tel       *telemetry.Shard // per-handle counters (shared with local)
	spyCursor int              // round-robin position for victim selection

	// srun is the shared-run buffer: items already taken from the SLSM's
	// pivot range, ascending by key, served before new shared loads.
	// Guarded by local.mu (the owner holds it on every operation anyway,
	// and spies must be able to steal the buffer of a stalled handle).
	srun    [sharedRunMax]*item
	srunPos int // srun[srunPos:srunEnd] is the live window
	srunEnd int
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)
var _ pq.Flusher = (*Handle)(nil)

// Insert implements pq.Handle: insert into the local DLSM; on overflow past
// k items, evict the largest local block into the shared SLSM.
func (h *Handle) Insert(key, value uint64) {
	it := h.alloc.new(key, value)
	l := h.local
	l.mu.Lock()
	l.insertLocked(it)
	var evicted []*item
	if l.sizeLocked() > h.q.k {
		evicted = l.evictLargestLocked()
	}
	l.mu.Unlock()
	if len(evicted) > 0 {
		h.tel.Inc(telemetry.LocalEvict)
		h.q.slsm.insertBatch(evicted, h.tel)
	}
}

// popRunLocked serves the head of the shared-run buffer.
func (h *Handle) popRunLocked() *item {
	it := h.srun[h.srunPos]
	h.srun[h.srunPos] = nil
	h.srunPos++
	return it
}

// DeleteMin implements pq.Handle: serve the smaller of the local minimum
// and the head of the shared-run buffer; when the buffer is empty and a
// shared candidate could beat the local minimum, take a short run from the
// SLSM's pivot range under one state load (takeRun) and buffer the surplus.
// If everything local is empty, spy on another thread's local items and
// run buffer first, per the DLSM design.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	for {
		l := h.local
		// Failpoint: stall before taking the local lock so a spy can steal
		// the run buffer (or the local minimum) out from under the owner.
		chaos.Perturb(chaos.KLSMRunBuffer)
		l.mu.Lock()
		bi, ii, lkey, lok := l.peekMinLocked()
		if h.srunPos < h.srunEnd {
			// Buffered shared items compete with the local minimum.
			if rit := h.srun[h.srunPos]; !lok || rit.key <= lkey {
				it := h.popRunLocked()
				l.mu.Unlock()
				return it.key, it.value, true
			}
			it, won := l.takeAtLocked(bi, ii)
			l.mu.Unlock()
			if won {
				return it.key, it.value, true
			}
			h.tel.Inc(telemetry.CASItemTakeFail)
			continue // a spy took our local minimum under us; retry
		}
		if lok {
			// Local candidate exists; take a shared run only if the SLSM
			// holds something strictly smaller.
			run := h.q.slsm.takeRun(h.rng, lkey, h.srun[:0], sharedRunMax, h.tel)
			if len(run) > 0 {
				h.tel.Inc(telemetry.SharedRunTake)
				h.tel.Add(telemetry.SharedRunItems, uint64(len(run)))
				h.srunPos, h.srunEnd = 0, len(run)
				it := h.popRunLocked()
				l.mu.Unlock()
				return it.key, it.value, true
			}
			it, won := l.takeAtLocked(bi, ii)
			l.mu.Unlock()
			if won {
				return it.key, it.value, true
			}
			h.tel.Inc(telemetry.CASItemTakeFail)
			continue
		}
		l.mu.Unlock()
		if h.spy() {
			continue
		}
		// Local side empty everywhere we looked: fall back to shared.
		run := h.q.slsm.takeRun(h.rng, ^uint64(0), h.srun[:0], sharedRunMax, h.tel)
		if len(run) == 0 {
			return 0, 0, false
		}
		h.tel.Inc(telemetry.SharedRunTake)
		h.tel.Add(telemetry.SharedRunItems, uint64(len(run)))
		l.mu.Lock()
		h.srunPos, h.srunEnd = 0, len(run)
		it := h.popRunLocked()
		l.mu.Unlock()
		return it.key, it.value, true
	}
}

// spy copies the unconsumed items of another handle's local LSM — and moves
// its buffered shared run, which would otherwise be unreachable while the
// victim stalls — into our own, choosing victims round-robin. Returns true
// if anything was copied.
func (h *Handle) spy() bool {
	q := h.q
	q.mu.Lock()
	victims := q.handles
	q.mu.Unlock()
	n := len(victims)
	if n <= 1 {
		return false
	}
	for i := 0; i < n; i++ {
		v := victims[(h.spyCursor+i)%n]
		if v == h {
			continue
		}
		// Failpoint: stall between victim selection and the victim lock so
		// the victim (or another spy) races us to its items.
		chaos.Perturb(chaos.KLSMSpy)
		v.local.mu.Lock()
		runs := v.local.snapshotLocked()
		var stolen []*item
		if v.srunPos < v.srunEnd {
			stolen = append(stolen, v.srun[v.srunPos:v.srunEnd]...)
			clear(v.srun[v.srunPos:v.srunEnd])
			v.srunPos, v.srunEnd = 0, 0
		}
		v.local.mu.Unlock()
		if len(runs) == 0 && len(stolen) == 0 {
			continue
		}
		h.tel.Inc(telemetry.SpySteal)
		for _, run := range runs {
			h.tel.Add(telemetry.SpyItems, uint64(len(run)))
		}
		h.tel.Add(telemetry.SpyItems, uint64(len(stolen)))
		h.spyCursor = (h.spyCursor + i + 1) % n
		h.local.mu.Lock()
		for _, run := range runs {
			h.local.insertBlockLocked(run)
		}
		if len(stolen) > 0 {
			// Our own buffer is empty (spy only runs then); the victim's
			// run is already sorted and already taken — adopt it.
			copy(h.srun[:], stolen)
			h.srunPos, h.srunEnd = 0, len(stolen)
		}
		h.local.mu.Unlock()
		return true
	}
	return false
}

// Flush implements pq.Flusher: buffered shared-run items are re-inserted
// into the SLSM as fresh items, so everything this handle holds privately
// becomes reachable through other handles. The harnesses call Flush when a
// worker's measured phase ends.
func (h *Handle) Flush() {
	l := h.local
	l.mu.Lock()
	n := h.srunEnd - h.srunPos
	if n == 0 {
		l.mu.Unlock()
		return
	}
	fresh := make([]*item, n)
	for i := 0; i < n; i++ {
		old := h.srun[h.srunPos+i]
		fresh[i] = h.alloc.new(old.key, old.value)
	}
	clear(h.srun[h.srunPos:h.srunEnd])
	h.srunPos, h.srunEnd = 0, 0
	l.mu.Unlock()
	h.tel.Inc(telemetry.RunBufferFlush)
	// Failpoint: stall between emptying the buffer and republishing it —
	// the window in which a Flush bug would strand the buffered items.
	chaos.Perturb(chaos.KLSMRunBuffer)
	h.q.slsm.insertBatch(fresh, h.tel) // fresh is sorted: srun was
}

// PeekMin reports the smallest of the local minimum, the buffered run head
// and a shared candidate, without removing it (approximate under
// concurrency).
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	l := h.local
	l.mu.Lock()
	bi, ii, lkey, lok := l.peekMinLocked()
	var lit *item
	if lok {
		lit = l.blocks[bi].items[ii]
	}
	if h.srunPos < h.srunEnd {
		if rit := h.srun[h.srunPos]; !lok || rit.key <= lkey {
			lit, lok = rit, true
		}
	}
	l.mu.Unlock()
	scand, sok := h.q.slsm.peekCandidate(h.rng, h.tel)
	switch {
	case lok && (!sok || lit.key <= scand.key):
		return lit.key, lit.value, true
	case sok:
		return scand.key, scand.value, true
	default:
		return 0, 0, false
	}
}

// ApproxLen sums local sizes, buffered shared runs and the shared
// component's unconsumed slots. Upper bound on live items; tests and
// monitoring only.
func (q *KLSM) ApproxLen() int {
	q.mu.Lock()
	handles := append([]*Handle(nil), q.handles...)
	q.mu.Unlock()
	total := q.slsm.approxSize()
	for _, h := range handles {
		h.local.mu.Lock()
		total += h.local.sizeLocked() + (h.srunEnd - h.srunPos)
		h.local.mu.Unlock()
	}
	return total
}

// DLSM is the Distributed LSM used standalone: thread-local LSMs with spy,
// no shared component, no relaxation bound across threads beyond locality
// (delete_min returns the minimum of the calling thread's items).
type DLSM struct {
	inner *KLSM
}

var _ pq.Queue = (*DLSM)(nil)

// NewDLSM returns an empty standalone DLSM.
func NewDLSM() *DLSM {
	// An unbounded k disables eviction to the (unused) shared component.
	return &DLSM{inner: NewKLSM(1 << 62)}
}

// Name implements pq.Queue.
func (q *DLSM) Name() string { return "dlsm" }

// Handle implements pq.Queue.
func (q *DLSM) Handle() pq.Handle { return q.inner.Handle() }

// SLSM is the Shared LSM used standalone: a purely global relaxed queue
// where delete_min skips at most k items.
type SLSM struct {
	k    int
	s    *slsm
	seed atomic.Uint64
}

var _ pq.Queue = (*SLSM)(nil)

// NewSLSM returns an empty standalone SLSM with relaxation k.
func NewSLSM(k int) *SLSM {
	if k < 1 {
		k = 1
	}
	return &SLSM{k: k, s: newSLSM(k)}
}

// Name implements pq.Queue.
func (q *SLSM) Name() string { return fmt.Sprintf("slsm%d", q.k) }

// Handle implements pq.Queue.
func (q *SLSM) Handle() pq.Handle {
	return &slsmHandle{
		q:   q,
		rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
		tel: telemetry.NewShard(),
	}
}

type slsmHandle struct {
	q     *SLSM
	rng   *rng.Xoroshiro
	alloc itemAlloc
	tel   *telemetry.Shard
	drain []*item // DeleteMinN scratch, reused across calls (never escapes)
}

// Insert implements pq.Handle: a single-item batch insert into the SLSM.
func (h *slsmHandle) Insert(key, value uint64) {
	h.q.s.insertBatch([]*item{h.alloc.new(key, value)}, h.tel)
}

// DeleteMin implements pq.Handle: a random pick from the pivot range.
func (h *slsmHandle) DeleteMin() (key, value uint64, ok bool) {
	it, ok := h.q.s.deleteMin(h.rng, h.tel)
	if !ok {
		return 0, 0, false
	}
	return it.key, it.value, true
}
