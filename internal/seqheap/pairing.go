package seqheap

import "cpq/internal/pq"

// PairingHeap is a sequential pairing heap — the pointer-based contender in
// Larkin, Sen and Tarjan's "Back-to-Basics Empirical Study of Priority
// Queues" (the study behind the paper's sorting-benchmark remark). Insert
// and meld are O(1); delete-min is O(log n) amortized via two-pass pairing.
// It rounds out the sequential-substrate ablation against the implicit
// binary and d-ary heaps: pointer structure vs. array locality.
//
// The zero value is an empty heap ready for use. Not safe for concurrent
// use; wrap it (e.g. as a MultiQueue SubHeap) for concurrent access.
type PairingHeap struct {
	root *pairNode
	n    int
	free *pairNode // freelist to soften allocation pressure
}

type pairNode struct {
	it      pq.Item
	child   *pairNode // leftmost child
	sibling *pairNode // next sibling to the right
}

// Len reports the number of items.
func (h *PairingHeap) Len() int { return h.n }

// Push inserts an item: meld a singleton with the root, O(1).
func (h *PairingHeap) Push(it pq.Item) {
	node := h.alloc(it)
	h.root = meldPair(h.root, node)
	h.n++
}

// Min returns the minimum item without removing it.
func (h *PairingHeap) Min() (pq.Item, bool) {
	if h.root == nil {
		return pq.Item{}, false
	}
	return h.root.it, true
}

// Pop removes and returns the minimum item: two-pass pairing of the root's
// children, O(log n) amortized.
func (h *PairingHeap) Pop() (pq.Item, bool) {
	if h.root == nil {
		return pq.Item{}, false
	}
	min := h.root.it
	old := h.root
	h.root = twoPassPair(old.child)
	h.n--
	h.release(old)
	return min, true
}

// Clear empties the heap (dropping the freelist too, so memory returns to
// the GC).
func (h *PairingHeap) Clear() {
	h.root, h.free, h.n = nil, nil, 0
}

// PopN removes up to max smallest items, appending them to dst in ascending
// key order, and returns the extended slice (see Heap.PopN).
func (h *PairingHeap) PopN(dst []pq.Item, max int) []pq.Item {
	for i := 0; i < max; i++ {
		it, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, it)
	}
	return dst
}

// meldPair links two pairing-heap roots; the larger root becomes the
// leftmost child of the smaller.
func meldPair(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.it.Key < a.it.Key {
		a, b = b, a
	}
	b.sibling = a.child
	a.child = b
	return a
}

// twoPassPair merges a sibling list: first pass pairs adjacent siblings
// left to right, second pass melds the pairs right to left.
func twoPassPair(first *pairNode) *pairNode {
	if first == nil {
		return nil
	}
	// First pass: build a list of paired subtrees (reusing sibling links).
	var pairs *pairNode
	for first != nil {
		a := first
		b := a.sibling
		if b == nil {
			a.sibling = pairs
			pairs = a
			break
		}
		next := b.sibling
		a.sibling, b.sibling = nil, nil
		m := meldPair(a, b)
		m.sibling = pairs
		pairs = m
		first = next
	}
	// Second pass: meld the pairs back into one tree.
	var root *pairNode
	for pairs != nil {
		next := pairs.sibling
		pairs.sibling = nil
		root = meldPair(root, pairs)
		pairs = next
	}
	return root
}

func (h *PairingHeap) alloc(it pq.Item) *pairNode {
	n := h.free
	if n != nil {
		h.free = n.sibling
		n.it, n.child, n.sibling = it, nil, nil
	} else {
		n = &pairNode{it: it}
	}
	return n
}

func (h *PairingHeap) release(n *pairNode) {
	n.child = nil
	n.sibling = h.free
	h.free = n
}

// invariantOK reports whether every child key is >= its parent's (tests).
func (h *PairingHeap) invariantOK() bool {
	var check func(n *pairNode) bool
	check = func(n *pairNode) bool {
		if n == nil {
			return true
		}
		for c := n.child; c != nil; c = c.sibling {
			if c.it.Key < n.it.Key || !check(c) {
				return false
			}
		}
		return true
	}
	return check(h.root)
}
