package seqheap

import "cpq/internal/pq"

// DHeap is a sequential d-ary min-heap. Wider heaps trade deeper sift-downs
// for better cache behaviour on the hot insert path — the classic
// engineering result of Larkin, Sen and Tarjan's "Back-to-Basics Empirical
// Study of Priority Queues", which the paper cites as the sorting-style
// benchmark its batch parameter approximates. The suite uses DHeap for the
// MultiQueue sub-queue ablation (binary vs. 4-ary sub-heaps).
//
// The zero value is not usable; construct with NewDHeap. Not safe for
// concurrent use.
type DHeap struct {
	d int
	a []pq.Item
}

// NewDHeap returns an empty d-ary heap (d < 2 selects d = 4).
func NewDHeap(d, capacity int) *DHeap {
	if d < 2 {
		d = 4
	}
	return &DHeap{d: d, a: make([]pq.Item, 0, capacity)}
}

// Arity returns d.
func (h *DHeap) Arity() int { return h.d }

// Len reports the number of items.
func (h *DHeap) Len() int { return len(h.a) }

// Push inserts an item.
func (h *DHeap) Push(it pq.Item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / h.d
		if h.a[parent].Key <= it.Key {
			break
		}
		h.a[i] = h.a[parent]
		i = parent
	}
	h.a[i] = it
}

// Min returns the minimum without removing it.
func (h *DHeap) Min() (pq.Item, bool) {
	if len(h.a) == 0 {
		return pq.Item{}, false
	}
	return h.a[0], true
}

// Pop removes and returns the minimum item.
func (h *DHeap) Pop() (pq.Item, bool) {
	n := len(h.a)
	if n == 0 {
		return pq.Item{}, false
	}
	min := h.a[0]
	last := h.a[n-1]
	h.a = h.a[:n-1]
	n--
	if n > 0 {
		i := 0
		for {
			first := i*h.d + 1
			if first >= n {
				break
			}
			least := first
			end := first + h.d
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if h.a[c].Key < h.a[least].Key {
					least = c
				}
			}
			if last.Key <= h.a[least].Key {
				break
			}
			h.a[i] = h.a[least]
			i = least
		}
		h.a[i] = last
	}
	return min, true
}

// Clear empties the heap, retaining capacity.
func (h *DHeap) Clear() { h.a = h.a[:0] }

// PopN removes up to max smallest items, appending them to dst in ascending
// key order, and returns the extended slice (see Heap.PopN).
func (h *DHeap) PopN(dst []pq.Item, max int) []pq.Item {
	for i := 0; i < max; i++ {
		it, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, it)
	}
	return dst
}

// invariantOK reports whether the d-ary heap property holds (tests).
func (h *DHeap) invariantOK() bool {
	for i := 1; i < len(h.a); i++ {
		if h.a[(i-1)/h.d].Key > h.a[i].Key {
			return false
		}
	}
	return true
}
