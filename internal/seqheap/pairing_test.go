package seqheap

import (
	"sort"
	"testing"
	"testing/quick"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

func TestPairingEmpty(t *testing.T) {
	var h PairingHeap
	if h.Len() != 0 {
		t.Fatal("zero heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}

func TestPairingSorts(t *testing.T) {
	var h PairingHeap
	r := rng.New(1)
	const n = 5000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 700
		want[i] = k
		h.Push(pq.Item{Key: k, Value: k + 1})
	}
	if h.Len() != n {
		t.Fatalf("Len = %d", h.Len())
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		it, ok := h.Pop()
		if !ok || it.Key != want[i] || it.Value != it.Key+1 {
			t.Fatalf("pop %d = %+v/%v, want key %d", i, it, ok, want[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("not empty after drain")
	}
}

func TestPairingMatchesBinaryHeap(t *testing.T) {
	if err := quick.Check(func(keys []uint16, popEvery uint8) bool {
		var bin Heap
		var ph PairingHeap
		interval := int(popEvery%5) + 1
		for i, k := range keys {
			bin.Push(pq.Item{Key: uint64(k)})
			ph.Push(pq.Item{Key: uint64(k)})
			if i%interval == 0 {
				a, aok := bin.Pop()
				b, bok := ph.Pop()
				if aok != bok || a.Key != b.Key {
					return false
				}
			}
			if !ph.invariantOK() {
				return false
			}
		}
		for bin.Len() > 0 {
			a, _ := bin.Pop()
			b, ok := ph.Pop()
			if !ok || a.Key != b.Key {
				return false
			}
		}
		_, ok := ph.Pop()
		return !ok
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPairingClearAndReuse(t *testing.T) {
	var h PairingHeap
	for i := uint64(0); i < 100; i++ {
		h.Push(pq.Item{Key: i})
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear left items")
	}
	h.Push(pq.Item{Key: 9})
	if it, ok := h.Pop(); !ok || it.Key != 9 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestPairingFreelistRecycles(t *testing.T) {
	var h PairingHeap
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 1000; i++ {
			h.Push(pq.Item{Key: i})
		}
		for i := uint64(0); i < 1000; i++ {
			if it, ok := h.Pop(); !ok || it.Key != i {
				t.Fatalf("round %d pop %d wrong", round, i)
			}
		}
	}
}

func BenchmarkPairingPushPop(b *testing.B) {
	var h PairingHeap
	r := rng.New(1)
	for i := 0; i < 1024; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
		h.Pop()
	}
}
