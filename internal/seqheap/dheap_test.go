package seqheap

import (
	"sort"
	"testing"
	"testing/quick"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

func TestDHeapDefaults(t *testing.T) {
	h := NewDHeap(0, 16)
	if h.Arity() != 4 {
		t.Fatalf("default arity = %d", h.Arity())
	}
	if h.Len() != 0 {
		t.Fatal("fresh heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}

func TestDHeapSortsAllArities(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8} {
		h := NewDHeap(d, 0)
		r := rng.New(uint64(d))
		const n = 3000
		want := make([]uint64, n)
		for i := range want {
			k := r.Uint64() % 500
			want[i] = k
			h.Push(pq.Item{Key: k, Value: k})
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < n; i++ {
			it, ok := h.Pop()
			if !ok || it.Key != want[i] {
				t.Fatalf("d=%d: pop %d = %d/%v, want %d", d, i, it.Key, ok, want[i])
			}
		}
	}
}

func TestDHeapInvariantProperty(t *testing.T) {
	if err := quick.Check(func(keys []uint16, arity uint8, popEvery uint8) bool {
		d := int(arity%7) + 2
		h := NewDHeap(d, 0)
		interval := int(popEvery%5) + 1
		for i, k := range keys {
			h.Push(pq.Item{Key: uint64(k)})
			if i%interval == 0 {
				h.Pop()
			}
			if !h.invariantOK() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDHeapMatchesBinaryHeap(t *testing.T) {
	if err := quick.Check(func(keys []uint16) bool {
		var bin Heap
		dh := NewDHeap(4, 0)
		for _, k := range keys {
			bin.Push(pq.Item{Key: uint64(k)})
			dh.Push(pq.Item{Key: uint64(k)})
		}
		for bin.Len() > 0 {
			a, _ := bin.Pop()
			b, ok := dh.Pop()
			if !ok || a.Key != b.Key {
				return false
			}
		}
		_, ok := dh.Pop()
		return !ok
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDHeapClear(t *testing.T) {
	h := NewDHeap(4, 4)
	h.Push(pq.Item{Key: 3})
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear left items")
	}
	h.Push(pq.Item{Key: 1})
	if it, ok := h.Pop(); !ok || it.Key != 1 {
		t.Fatal("heap unusable after Clear")
	}
}

func BenchmarkDHeap4PushPop(b *testing.B) {
	h := NewDHeap(4, 2048)
	r := rng.New(1)
	for i := 0; i < 1024; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
		h.Pop()
	}
}
