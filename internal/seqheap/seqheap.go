// Package seqheap provides a sequential binary min-heap and the GlobalLock
// baseline queue built from it.
//
// The paper uses "a simple, standardized sequential priority queue
// implementation protected by a global lock ... to establish a baseline for
// acceptable performance" (std::priority_queue + lock in the C++ code). The
// Heap type here is the std::priority_queue equivalent; it is also reused as
// the per-queue building block of the MultiQueue and by the quality
// benchmark's replay machinery.
package seqheap

import (
	"sync"

	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Heap is a sequential binary min-heap over pq.Item ordered by Key.
// The zero value is an empty heap ready for use. Not safe for concurrent
// use; wrap it (see GlobalLock) for concurrent access.
type Heap struct {
	a []pq.Item
}

// NewHeap returns an empty heap with capacity hint n.
func NewHeap(n int) *Heap {
	return &Heap{a: make([]pq.Item, 0, n)}
}

// Len reports the number of items in the heap.
func (h *Heap) Len() int { return len(h.a) }

// Push inserts an item.
func (h *Heap) Push(it pq.Item) {
	h.a = append(h.a, it)
	h.siftUp(len(h.a) - 1)
}

// Min returns the minimum item without removing it.
func (h *Heap) Min() (pq.Item, bool) {
	if len(h.a) == 0 {
		return pq.Item{}, false
	}
	return h.a[0], true
}

// Pop removes and returns the minimum item.
func (h *Heap) Pop() (pq.Item, bool) {
	n := len(h.a)
	if n == 0 {
		return pq.Item{}, false
	}
	min := h.a[0]
	h.a[0] = h.a[n-1]
	h.a = h.a[:n-1]
	if len(h.a) > 0 {
		h.siftDown(0)
	}
	return min, true
}

// Clear empties the heap, retaining capacity.
func (h *Heap) Clear() { h.a = h.a[:0] }

// PushN inserts every element of its (one sift-up per item; the win of the
// batch APIs built on it is the single lock acquisition around the call,
// not the heap arithmetic).
func (h *Heap) PushN(its []pq.Item) {
	for _, it := range its {
		h.Push(it)
	}
}

// PopN removes up to max smallest items, appending them to dst in ascending
// key order, and returns the extended slice. The engineered MultiQueue uses
// it to amortize one sub-queue lock acquisition over a deletion batch.
func (h *Heap) PopN(dst []pq.Item, max int) []pq.Item {
	for i := 0; i < max; i++ {
		it, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, it)
	}
	return dst
}

func (h *Heap) siftUp(i int) {
	it := h.a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].Key <= it.Key {
			break
		}
		h.a[i] = h.a[parent]
		i = parent
	}
	h.a[i] = it
}

func (h *Heap) siftDown(i int) {
	n := len(h.a)
	it := h.a[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h.a[r].Key < h.a[l].Key {
			least = r
		}
		if it.Key <= h.a[least].Key {
			break
		}
		h.a[i] = h.a[least]
		i = least
	}
	h.a[i] = it
}

// invariantOK reports whether the heap-shape property holds; exported to
// tests via the export_test pattern.
func (h *Heap) invariantOK() bool {
	for i := 1; i < len(h.a); i++ {
		if h.a[(i-1)/2].Key > h.a[i].Key {
			return false
		}
	}
	return true
}

// GlobalLock is the paper's baseline: a sequential heap protected by a
// single global mutex. Strict semantics, zero scalability by construction.
type GlobalLock struct {
	mu sync.Mutex
	h  Heap
	// tel is shared by every goroutine using the queue (the queue is its
	// own handle); batch sites write it with one atomic Add per call, and
	// the global mutex already serializes the operations around them.
	tel *telemetry.Shard
}

var _ pq.Queue = (*GlobalLock)(nil)
var _ pq.Handle = (*GlobalLock)(nil)
var _ pq.Peeker = (*GlobalLock)(nil)
var _ pq.BatchInserter = (*GlobalLock)(nil)
var _ pq.BatchDeleter = (*GlobalLock)(nil)

// NewGlobalLock returns an empty GlobalLock queue.
func NewGlobalLock() *GlobalLock { return &GlobalLock{tel: telemetry.NewShard()} }

// Name implements pq.Queue.
func (g *GlobalLock) Name() string { return "globallock" }

// Handle implements pq.Queue. The queue has no thread-local state, so the
// queue itself serves as the handle.
func (g *GlobalLock) Handle() pq.Handle { return g }

// Insert implements pq.Handle.
func (g *GlobalLock) Insert(key, value uint64) {
	g.mu.Lock()
	g.h.Push(pq.Item{Key: key, Value: value})
	g.mu.Unlock()
}

// DeleteMin implements pq.Handle. It returns the exact minimum.
func (g *GlobalLock) DeleteMin() (key, value uint64, ok bool) {
	g.mu.Lock()
	it, ok := g.h.Pop()
	g.mu.Unlock()
	return it.Key, it.Value, ok
}

// InsertN implements pq.BatchInserter: the whole batch goes in under ONE
// acquisition of the global lock — for this baseline the batch API removes
// exactly the structure's bottleneck, so it shows the largest batching
// speedup in the suite (DESIGN.md §4c).
func (g *GlobalLock) InsertN(kvs []pq.KV) {
	if len(kvs) == 0 {
		return
	}
	g.mu.Lock()
	g.h.PushN(kvs)
	g.mu.Unlock()
	g.tel.Add(telemetry.BatchInsertItems, uint64(len(kvs)))
	g.tel.ObserveBatchWidth(len(kvs))
}

// DeleteMinN implements pq.BatchDeleter: up to n exact minima under one
// acquisition of the global lock.
func (g *GlobalLock) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	g.mu.Lock()
	got := len(g.h.PopN(dst[:0], n))
	g.mu.Unlock()
	g.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	g.tel.ObserveBatchWidth(got)
	return got
}

// PeekMin implements pq.Peeker.
func (g *GlobalLock) PeekMin() (key, value uint64, ok bool) {
	g.mu.Lock()
	it, ok := g.h.Min()
	g.mu.Unlock()
	return it.Key, it.Value, ok
}

// Len reports the current number of items.
func (g *GlobalLock) Len() int {
	g.mu.Lock()
	n := g.h.Len()
	g.mu.Unlock()
	return n
}
