package seqheap

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

func TestHeapEmpty(t *testing.T) {
	var h Heap
	if h.Len() != 0 {
		t.Fatal("zero heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}

func TestHeapSortsRandomInput(t *testing.T) {
	r := rng.New(1)
	h := NewHeap(0)
	const n = 5000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 1000 // force duplicates
		want[i] = k
		h.Push(pq.Item{Key: k, Value: uint64(i)})
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		it, ok := h.Pop()
		if !ok {
			t.Fatalf("heap empty after %d pops, want %d", i, n)
		}
		if it.Key != want[i] {
			t.Fatalf("pop %d = key %d, want %d", i, it.Key, want[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapMinMatchesPop(t *testing.T) {
	r := rng.New(2)
	var h Heap
	for i := 0; i < 1000; i++ {
		h.Push(pq.Item{Key: r.Uint64() % 100})
	}
	for h.Len() > 0 {
		m, _ := h.Min()
		p, _ := h.Pop()
		if m != p {
			t.Fatalf("Min %v != Pop %v", m, p)
		}
	}
}

func TestHeapInvariantProperty(t *testing.T) {
	if err := quick.Check(func(keys []uint16, popEvery uint8) bool {
		var h Heap
		interval := int(popEvery%7) + 1
		for i, k := range keys {
			h.Push(pq.Item{Key: uint64(k), Value: uint64(i)})
			if i%interval == 0 {
				h.Pop()
			}
			if !h.invariantOK() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapClear(t *testing.T) {
	var h Heap
	h.Push(pq.Item{Key: 1})
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear did not empty heap")
	}
	h.Push(pq.Item{Key: 2})
	if it, ok := h.Pop(); !ok || it.Key != 2 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestHeapValuesTravelWithKeys(t *testing.T) {
	var h Heap
	h.Push(pq.Item{Key: 10, Value: 100})
	h.Push(pq.Item{Key: 5, Value: 50})
	h.Push(pq.Item{Key: 7, Value: 70})
	it, _ := h.Pop()
	if it.Key != 5 || it.Value != 50 {
		t.Fatalf("got %+v", it)
	}
}

func TestGlobalLockSequential(t *testing.T) {
	q := NewGlobalLock()
	if q.Name() != "globallock" {
		t.Fatalf("name = %q", q.Name())
	}
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty queue returned ok")
	}
	h.Insert(3, 30)
	h.Insert(1, 10)
	h.Insert(2, 20)
	if k, v, ok := q.PeekMin(); !ok || k != 1 || v != 10 {
		t.Fatalf("PeekMin = %d,%d,%v", k, v, ok)
	}
	for want := uint64(1); want <= 3; want++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want || v != want*10 {
			t.Fatalf("DeleteMin = %d,%d,%v want key %d", k, v, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestGlobalLockStrictOrderUnderConcurrency(t *testing.T) {
	// GlobalLock must never lose or duplicate items, and a post-hoc drain
	// must produce exactly the inserted multiset.
	q := NewGlobalLock()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	inserted := make([][]uint64, workers)
	deleted := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 1)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 10000
				h.Insert(k, k)
				inserted[w] = append(inserted[w], k)
				if i%2 == 1 {
					if k, _, ok := h.DeleteMin(); ok {
						deleted[w] = append(deleted[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, out []uint64
	for w := 0; w < workers; w++ {
		all = append(all, inserted[w]...)
		out = append(out, deleted[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		out = append(out, k)
	}
	if len(out) != len(all) {
		t.Fatalf("drained %d items, inserted %d", len(out), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i := range all {
		if all[i] != out[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], out[i])
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	var h Heap
	r := rng.New(1)
	for i := 0; i < 1024; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(pq.Item{Key: r.Uint64()})
		h.Pop()
	}
}

// TestPopN covers the batch-pop used by the engineered MultiQueue on every
// sequential substrate: ascending order, partial batches, and reuse of dst.
func TestPopN(t *testing.T) {
	substrates := []struct {
		name string
		mk   func() interface {
			Push(pq.Item)
			PopN([]pq.Item, int) []pq.Item
			Len() int
		}
	}{
		{"binary", func() interface {
			Push(pq.Item)
			PopN([]pq.Item, int) []pq.Item
			Len() int
		} {
			return &Heap{}
		}},
		{"4ary", func() interface {
			Push(pq.Item)
			PopN([]pq.Item, int) []pq.Item
			Len() int
		} {
			return NewDHeap(4, 0)
		}},
		{"pairing", func() interface {
			Push(pq.Item)
			PopN([]pq.Item, int) []pq.Item
			Len() int
		} {
			return &PairingHeap{}
		}},
	}
	for _, sub := range substrates {
		t.Run(sub.name, func(t *testing.T) {
			h := sub.mk()
			r := rng.New(17)
			for i := 0; i < 100; i++ {
				h.Push(pq.Item{Key: r.Uint64() % 1000, Value: uint64(i)})
			}
			got := h.PopN(nil, 10)
			if len(got) != 10 || h.Len() != 90 {
				t.Fatalf("PopN(10) returned %d items, %d remain", len(got), h.Len())
			}
			prev := uint64(0)
			for i, it := range got {
				if it.Key < prev {
					t.Fatalf("batch not ascending at %d: %d < %d", i, it.Key, prev)
				}
				prev = it.Key
			}
			rest := h.PopN(got[:0], 1000) // oversized batch drains; dst reused
			if len(rest) != 90 || h.Len() != 0 {
				t.Fatalf("draining PopN returned %d items, %d remain", len(rest), h.Len())
			}
			if out := h.PopN(nil, 5); len(out) != 0 {
				t.Fatalf("PopN on empty heap returned %d items", len(out))
			}
		})
	}
}
