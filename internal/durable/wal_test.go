package durable

import (
	"testing"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

func TestRecordRoundTrip(t *testing.T) {
	batches := [][]pq.KV{
		{{Key: 1, Value: 10}},
		{{Key: 2, Value: 20}, {Key: 3, Value: 30}, {Key: 0, Value: 0}},
		{}, // empty batch is legal on the wire
		{{Key: ^uint64(0), Value: ^uint64(0)}},
	}
	kinds := []byte{recInsert, recDelete, recInsert, recDelete}
	var buf []byte
	for i, b := range batches {
		buf = appendRecord(buf, kinds[i], b)
	}
	var gotKinds []byte
	var got [][]pq.KV
	err := decodeRecords(buf, func(kind byte, kvs []pq.KV) error {
		cp := make([]pq.KV, len(kvs))
		copy(cp, kvs)
		gotKinds = append(gotKinds, kind)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(batches) {
		t.Fatalf("decoded %d records, want %d", len(got), len(batches))
	}
	for i := range batches {
		if gotKinds[i] != kinds[i] {
			t.Errorf("record %d kind = %d, want %d", i, gotKinds[i], kinds[i])
		}
		if len(got[i]) != len(batches[i]) {
			t.Fatalf("record %d has %d pairs, want %d", i, len(got[i]), len(batches[i]))
		}
		for j := range batches[i] {
			if got[i][j] != batches[i][j] {
				t.Errorf("record %d pair %d = %+v, want %+v", i, j, got[i][j], batches[i][j])
			}
		}
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, recInsert, []pq.KV{{Key: 7, Value: 70}, {Key: 8, Value: 80}})
	buf = appendRecord(buf, recDelete, []pq.KV{{Key: 7, Value: 70}})
	nop := func(byte, []pq.KV) error { return nil }

	// Every strict prefix that cuts a record must read as torn, and a torn
	// decode must deliver only the records before the tear.
	for cut := 1; cut < len(buf); cut++ {
		whole := 0
		err := decodeRecords(buf[:cut], func(byte, []pq.KV) error { whole++; return nil })
		if rec1 := 4 + 3 + 2*16 + 4; cut == rec1 {
			continue // exact record boundary: a clean (shorter) log
		}
		if err != ErrTorn {
			t.Fatalf("cut at %d: err = %v, want ErrTorn", cut, err)
		}
	}

	// A flipped bit anywhere must never decode cleanly to the original.
	for i := 0; i < len(buf)*8; i++ {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[i/8] ^= 1 << (i % 8)
		if err := decodeRecords(mut, nop); err == nil {
			// A flip may still parse if it produced a structurally valid
			// log — but then the content must differ, which for a CRC-32
			// per record cannot happen for single-bit flips inside a
			// record. Reaching here means the checksum failed to do its
			// one job.
			t.Fatalf("single-bit flip at bit %d decoded without error", i)
		}
	}
}

// FuzzWALDecode throws arbitrary bytes at the segment decoder: it must
// never panic and never accept a record whose checksum does not match.
func FuzzWALDecode(f *testing.F) {
	var seed []byte
	seed = appendRecord(seed, recInsert, []pq.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}})
	seed = appendRecord(seed, recDelete, []pq.KV{{Key: 1, Value: 2}})
	f.Add(seed)
	// Snapshot-era kinds: a begin marker mid-log and a partial-snapshot
	// chunk record as it appears in part/ keys.
	var marked []byte
	marked = appendRecord(marked, recInsert, []pq.KV{{Key: 5, Value: 6}})
	marked = appendRecord(marked, recSnapBegin, []pq.KV{{Key: 3, Value: 17}})
	marked = appendRecord(marked, recDelete, []pq.KV{{Key: 5, Value: 6}})
	f.Add(marked)
	var chunk []byte
	chunk = appendRecord(chunk, recSnapChunk, []pq.KV{{Key: 9, Value: 1}, {Key: 10, Value: 2}})
	f.Add(chunk)
	f.Add(seed[:len(seed)-3])       // torn tail
	f.Add([]byte{})                 // empty segment
	f.Add([]byte{0xff, 0xff, 0xff}) // short garbage
	mut := append([]byte(nil), seed...)
	mut[7] ^= 0x40 // bit flip inside the first record body
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		var redecoded []byte
		err := decodeRecords(data, func(kind byte, kvs []pq.KV) error {
			redecoded = appendRecord(redecoded, kind, kvs)
			return nil
		})
		if err != nil {
			return // rejected: torn or corrupt, both fine for arbitrary bytes
		}
		// Accepted without error: the log must be exactly the canonical
		// encoding of what was decoded — no slack bytes, no reinterpreted
		// fields.
		if len(redecoded) != len(data) {
			t.Fatalf("decoded cleanly but re-encodes to %d bytes, input was %d", len(redecoded), len(data))
		}
		for i := range data {
			if data[i] != redecoded[i] {
				t.Fatalf("decoded cleanly but re-encoding differs at byte %d", i)
			}
		}
	})
}

// TestAppendPathAllocs gates the no-fsync-pending append path at 0
// allocs/op: encoding a record into the pending buffer reuses the same
// two recycled buffers forever once they reach steady size.
func TestAppendPathAllocs(t *testing.T) {
	if telemetry.Enabled {
		t.Skip("telemetry build flag changes the path under test")
	}
	w := newWAL(kv.NewInmem(), 0, false, 0, 1<<20, telemetry.NewShard())
	kvs := []pq.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}}
	// Warm the buffer to steady-state capacity.
	for i := 0; i < 64; i++ {
		w.append(recInsert, kvs)
	}
	w.mu.Lock()
	w.pending = w.pending[:0]
	w.synced = w.appended
	w.mu.Unlock()

	allocs := testing.AllocsPerRun(1000, func() {
		w.append(recInsert, kvs)
		// Play the commit leader's buffer recycling without the I/O, so
		// the buffer cannot grow without bound across runs.
		w.mu.Lock()
		w.pending = w.pending[:0]
		w.synced = w.appended
		w.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("append path allocates %v allocs/op, want 0", allocs)
	}
}
