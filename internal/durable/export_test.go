package durable

import "cpq/internal/pq"

// SetCrashHook installs fn in the WAL's worst crash window: after the
// pending buffer has been written to the store, before it is fsynced.
// Crash-capture tests clone the store there to model a process that died
// at the exact commit boundary. Install before any operations run; the
// hook is called serially (one commit leader at a time).
func (q *Queue) SetCrashHook(fn func()) { q.w.crashHook = fn }

// SetSnapHook installs fn at the concurrent snapshot's phase boundaries
// (SnapBegin, SnapChunk, SnapPreManifest, SnapPostManifest). Crash-
// capture tests clone the store at each phase to prove recovery works
// from every intermediate state; the stall test parks a snapshot at
// SnapPreManifest to prove producers keep running. Install before any
// operations run; snapshots are serialized, so the hook never runs
// concurrently with itself.
func (q *Queue) SetSnapHook(fn func(SnapPhase)) { q.snapHook = fn }

// EncodeLegacySnapshot builds a v1 monolithic snapshot blob, and
// LegacySnapKey its "snap/%016x" store key. Migration tests fabricate
// pre-manifest stores with these to prove the reader still recovers
// them.
func EncodeLegacySnapshot(nextSeg uint64, items []pq.KV) []byte {
	return encodeSnapshot(nextSeg, items)
}

func LegacySnapKey(i uint64) string { return snapKey(i) }

// DrainSnapshots blocks until every background snapshot spawned so far
// has finished. Call only after operations have stopped (a WaitGroup
// must not see new Adds concurrent with Wait) — tests use it to quiesce
// before asserting on store contents or replaying a live store.
func (q *Queue) DrainSnapshots() { q.snapWG.Wait() }
