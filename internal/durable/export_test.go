package durable

// SetCrashHook installs fn in the WAL's worst crash window: after the
// pending buffer has been written to the store, before it is fsynced.
// Crash-capture tests clone the store there to model a process that died
// at the exact commit boundary. Install before any operations run; the
// hook is called serially (one commit leader at a time).
func (q *Queue) SetCrashHook(fn func()) { q.w.crashHook = fn }
