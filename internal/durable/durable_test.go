package durable_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cpq"
	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// families exercised by the recovery tests: a relaxed LSM, an engineered
// MultiQueue (buffered handles), and a strict skiplist.
var families = []string{"klsm128", "multiq-s4-b8", "linden"}

func newInner(t testing.TB, name string) pq.Queue {
	t.Helper()
	q, err := cpq.NewQueue(name, cpq.Options{Threads: 4})
	if err != nil {
		t.Fatalf("NewQueue(%s): %v", name, err)
	}
	return q
}

// drain empties q through one handle and returns the sorted live set.
func drain(t testing.TB, q pq.Queue) []pq.KV {
	t.Helper()
	h := q.Handle()
	pq.Flush(h)
	var out []pq.KV
	buf := make([]pq.KV, 1024)
	for {
		got := pq.DeleteMinN(h, buf, len(buf))
		if got == 0 {
			break
		}
		out = append(out, buf[:got]...)
	}
	pq.SortKVs(out)
	return out
}

func sortedCopy(kvs []pq.KV) []pq.KV {
	cp := make([]pq.KV, len(kvs))
	copy(cp, kvs)
	pq.SortKVs(cp)
	return cp
}

func equalSets(a, b []pq.KV) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := map[pq.KV]int{}, map[pq.KV]int{}
	for _, x := range a {
		ca[x]++
	}
	for _, x := range b {
		cb[x]++
	}
	if len(ca) != len(cb) {
		return false
	}
	for k, n := range ca {
		if cb[k] != n {
			return false
		}
	}
	return true
}

// TestRecoveryRoundTrip crashes (abandons) a durable queue mid-life and
// proves a fresh wrapper over the same store reconstructs the exact live
// multiset, for each queue family.
func TestRecoveryRoundTrip(t *testing.T) {
	for _, fam := range families {
		t.Run(fam, func(t *testing.T) {
			store := kv.NewInmem()
			q, err := durable.Wrap(newInner(t, fam), durable.Options{Store: store})
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			var want []pq.KV
			for i := uint64(0); i < 500; i++ {
				h.Insert(i, i*10)
				want = append(want, pq.KV{Key: i, Value: i * 10})
			}
			// Delete some; what comes out leaves the expected set.
			buf := make([]pq.KV, 128)
			got := pq.DeleteMinN(h, buf, 128)
			if got == 0 {
				t.Fatal("DeleteMinN returned nothing from a full queue")
			}
			live := map[pq.KV]int{}
			for _, kv := range want {
				live[kv]++
			}
			for _, kv := range buf[:got] {
				if live[kv] == 0 {
					t.Fatalf("deleted item %+v was never inserted", kv)
				}
				live[kv]--
			}
			var expect []pq.KV
			for kv, n := range live {
				for j := 0; j < n; j++ {
					expect = append(expect, kv)
				}
			}
			if err := q.Err(); err != nil {
				t.Fatalf("queue error: %v", err)
			}
			// Abandon q without Close — the crash. The store holds
			// everything a real process would have on disk.
			r, err := durable.Wrap(newInner(t, fam), durable.Options{Store: store})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			recovered := drain(t, r)
			if !equalSets(recovered, expect) {
				t.Fatalf("recovered %d items, want %d — conservation violated",
					len(recovered), len(expect))
			}
		})
	}
}

// TestSnapshotTruncatesWAL drives enough operations through a small
// SnapshotEvery that background snapshots must fire and truncate
// segments, then proves recovery still reconstructs the live set from
// the manifest base + tail.
func TestSnapshotTruncatesWAL(t *testing.T) {
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{
		Store:         store,
		SnapshotEvery: 100,
		SegmentBytes:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 1000; i++ {
		h.Insert(i, i)
	}
	// Snapshots run on background goroutines; quiesce, then check at
	// least one completed (overlapping triggers legally skip).
	q.DrainSnapshots()
	if q.Stats().Snapshots == 0 {
		t.Fatal("no background snapshot completed despite SnapshotEvery=100")
	}
	// One explicit snapshot quiesces the state deterministically: after
	// it, everything below the newest cut is truncated.
	if err := q.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segs, err := store.List("wal/")
	if err != nil {
		t.Fatal(err)
	}
	// 1000 inserts at ~31 bytes/record with 512-byte segments would be
	// dozens of segments; truncation must have kept only the tail.
	if len(segs) > 10 {
		t.Fatalf("%d WAL segments survive snapshotting — truncation not working", len(segs))
	}
	manifests, err := store.List("manifest/")
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 1 {
		t.Fatalf("%d manifests in store, want exactly 1 (old ones truncated)", len(manifests))
	}
	if snaps, _ := store.List("snap/"); len(snaps) != 0 {
		t.Fatalf("legacy snap/ keys written by the concurrent protocol: %v", snaps)
	}

	r, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{Store: store})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	recovered := drain(t, r)
	if len(recovered) != 1000 {
		t.Fatalf("recovered %d items, want 1000", len(recovered))
	}
	for i, kv := range recovered {
		if kv.Key != uint64(i) || kv.Value != uint64(i) {
			t.Fatalf("recovered[%d] = %+v, want {%d %d}", i, kv, i, i)
		}
	}
}

// TestAckedDeleteNeverResurrects pins the DeleteMin contract: once
// DeleteMin returns an item, a recovery must not bring it back.
func TestAckedDeleteNeverResurrects(t *testing.T) {
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "linden"), durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}
	deleted := map[uint64]bool{}
	for i := 0; i < 40; i++ {
		k, _, ok := h.DeleteMin()
		if !ok {
			t.Fatal("queue empty early")
		}
		deleted[k] = true
	}
	r, err := durable.Wrap(newInner(t, "linden"), durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range drain(t, r) {
		if deleted[kv.Key] {
			t.Fatalf("acknowledged delete of key %d resurrected by recovery", kv.Key)
		}
	}
}

// slowSync adds realistic fsync latency to an in-memory store so commit
// cohorts actually form (a real disk's fsync is what group commit
// amortizes; Inmem's is free).
type slowSync struct {
	*kv.Inmem
	d time.Duration
}

func (s *slowSync) Sync() error {
	time.Sleep(s.d)
	return s.Inmem.Sync()
}

// TestGroupCommitConserves hammers one durable queue from 8 producers and
// checks (a) exact conservation through a post-crash replay and (b) that
// group commit actually grouped: fewer fsyncs than records.
func TestGroupCommitConserves(t *testing.T) {
	store := &slowSync{Inmem: kv.NewInmem(), d: 200 * time.Microsecond}
	q, err := durable.Wrap(newInner(t, "multiq-s4-b8"), durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		perProd   = 300
	)
	inserted := make([][]pq.KV, producers)
	removed := make([][]pq.KV, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.Handle()
			buf := make([]pq.KV, 4)
			for i := 0; i < perProd; i++ {
				key := uint64(p*perProd + i)
				h.Insert(key, key^0xabcd)
				inserted[p] = append(inserted[p], pq.KV{Key: key, Value: key ^ 0xabcd})
				if i%5 == 4 {
					got := pq.DeleteMinN(h, buf, 2)
					removed[p] = append(removed[p], buf[:got]...)
				}
			}
		}(p)
	}
	wg.Wait()
	if err := q.Err(); err != nil {
		t.Fatalf("queue error: %v", err)
	}
	st := q.Stats()
	if st.Records == 0 || st.Fsyncs == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Fsyncs*2 >= st.Records {
		t.Errorf("group commit did not group: %d fsyncs for %d records", st.Fsyncs, st.Records)
	}
	t.Logf("stats: %+v (%.3f fsyncs/record)", st, float64(st.Fsyncs)/float64(st.Records))

	// All inserts first, then all removals — a producer may well pop an
	// item some other producer inserted.
	live := map[pq.KV]int{}
	for p := 0; p < producers; p++ {
		for _, kv := range inserted[p] {
			live[kv]++
		}
	}
	for p := 0; p < producers; p++ {
		for _, kv := range removed[p] {
			live[kv]--
			if live[kv] < 0 {
				t.Fatalf("removed item %+v more times than inserted", kv)
			}
		}
	}
	var expect []pq.KV
	for kv, n := range live {
		for j := 0; j < n; j++ {
			expect = append(expect, kv)
		}
	}
	// Crash-replay the store (read-only forensic path) and compare.
	replayed, err := durable.ReplayStore(store)
	if err != nil {
		t.Fatalf("ReplayStore: %v", err)
	}
	if !equalSets(replayed, sortedCopy(expect)) {
		t.Fatalf("replay has %d items, caller accounting says %d — conservation violated",
			len(replayed), len(expect))
	}
}

// TestNaiveModeFsyncsPerOp pins the baseline the benchmark compares
// against: naive mode issues exactly one fsync per logged record.
func TestNaiveModeFsyncsPerOp(t *testing.T) {
	q, err := durable.Wrap(newInner(t, "globallock"), durable.Options{
		Store: kv.NewInmem(),
		Naive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 200; i++ {
		h.Insert(i, i)
	}
	st := q.Stats()
	if st.Records != 200 || st.Fsyncs != 200 {
		t.Fatalf("naive mode: %+v, want 200 records and 200 fsyncs", st)
	}
	if q.Name() != "dur-naive:globallock" {
		t.Fatalf("Name = %q", q.Name())
	}
}

// TestCloseIsIdempotentAndFinal: Close snapshots, a reopen recovers from
// the compact store, double Close is safe, ops after Close are no-ops.
func TestCloseIsIdempotentAndFinal(t *testing.T) {
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 50; i++ {
		h.Insert(i, i)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	h.Insert(999, 999) // must be silently ignored
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin succeeded after Close")
	}
	// Close's final snapshot leaves an empty WAL tail.
	segs, _ := store.List("wal/")
	for _, k := range segs {
		if v, ok, _ := store.Get(k); ok && len(v) > 0 {
			t.Fatalf("segment %s still has %d bytes after Close's snapshot", k, len(v))
		}
	}
	r, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, r); len(got) != 50 {
		t.Fatalf("recovered %d items after Close, want 50", len(got))
	}
	var _ pq.Closer = q // compile-time: durable.Queue implements pq.Closer
	if err := pq.Close(r); err != nil {
		t.Fatalf("pq.Close: %v", err)
	}
}

// TestFileStoreRecovery runs the round trip against the real file backend
// — the same path pqd's -durable flag uses.
func TestFileStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	q, err := durable.Wrap(newInner(t, "linden"), durable.Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 300; i++ {
		h.Insert(i, i*3)
	}
	pq.Flush(h) // barrier: everything durable
	// Abandon without Close (crash); the next open must replay the dir.
	r, err := durable.Wrap(newInner(t, "linden"), durable.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recover from dir: %v", err)
	}
	got := drain(t, r)
	if len(got) != 300 {
		t.Fatalf("recovered %d items from file store, want 300", len(got))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayDeterminism: two independent replays of the same store must
// serialize identically — the byte-identical property the kill harness
// asserts across a copied directory.
func TestReplayDeterminism(t *testing.T) {
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "multiq-s4-b8"), durable.Options{Store: store, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	for i := uint64(0); i < 400; i++ {
		h.Insert(i*7%401, i)
		if i%3 == 0 {
			h.DeleteMin()
		}
	}
	// ReplayStore is a forensic read over a quiescent store; wait out any
	// in-flight background snapshot before reading.
	q.DrainSnapshots()
	a, err := durable.ReplayStore(store)
	if err != nil {
		t.Fatal(err)
	}
	b, err := durable.ReplayStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("two replays of the same store serialized differently")
	}
}
