package durable

import (
	"errors"
	"fmt"
	"sort"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// recoveredState is what a store replay yields: the exact live multiset,
// plus the bookkeeping the reopened queue continues from.
type recoveredState struct {
	items    []pq.KV       // live set, sorted (key, then value) — deterministic
	nextSeg  uint64        // first segment index the new WAL may write
	nextSnap uint64        // next snapshot index to use
	base     map[pq.KV]int // live multiset as of baseSeg (the snapshot base)
	baseSeg  uint64        // first segment NOT folded into base
}

// applySegRecords folds one WAL segment's records into counts. The
// recovery invariant (DESIGN.md §8d): records were appended under the
// queue's op mutex, so log order is operation order and a delete always
// follows the insert that produced its item — a negative count proves
// corruption, not reordering. Snapshot-begin markers are replay-inert;
// partial-snapshot chunks never legally appear inside a WAL segment.
func applySegRecords(data []byte, segIdx uint64, counts map[pq.KV]int) error {
	return decodeRecords(data, func(kind byte, kvs []pq.KV) error {
		switch kind {
		case recInsert:
			for _, it := range kvs {
				counts[it]++
			}
		case recDelete:
			for _, it := range kvs {
				counts[it]--
				if counts[it] < 0 {
					return fmt.Errorf("%w: delete of (%d,%d) with no matching insert in segment %d",
						ErrCorrupt, it.Key, it.Value, segIdx)
				}
				if counts[it] == 0 {
					delete(counts, it)
				}
			}
		case recSnapBegin:
			// Forensic marker; the snapshot's effect lives in the manifest.
		default:
			return fmt.Errorf("%w: partial-snapshot chunk inside WAL segment %d", ErrCorrupt, segIdx)
		}
		return nil
	})
}

// foldSegments folds the WAL segments in [from, to) into counts, in
// order. Segments below tornOK may legally end in a torn record (they
// were recovered from a previous process, whose final unsynced append a
// crash could truncate); the torn record was never acknowledged, so it
// is dropped. A torn record in a segment this process sealed — or a
// missing segment in the range — is corruption. The concurrent
// snapshotter uses this over its frozen prefix; recovery uses the same
// fold so the two can never disagree about what a segment means.
func foldSegments(store kv.Store, from, to uint64, counts map[pq.KV]int, tornOK uint64) error {
	for idx := from; idx < to; idx++ {
		data, found, err := store.Get(segKey(idx))
		if err != nil {
			return err
		}
		if !found {
			// Rotation can skip creating a segment that never received a
			// synced byte (a seal cuts to a fresh segment that the next
			// seal may immediately supersede). An absent segment holds no
			// records; it cannot change the fold.
			continue
		}
		err = applySegRecords(data, idx, counts)
		if errors.Is(err, ErrTorn) && idx < tornOK {
			err = nil // legal torn tail: unacknowledged final record dropped
		}
		if err != nil {
			return fmt.Errorf("WAL segment %d: %w", idx, err)
		}
	}
	return nil
}

// decodePart validates and expands one partial snapshot: a sequence of
// kind-4 chunk records whose pair total must equal the manifest's count.
// Parts are synced before their manifest commits, so under a committed
// manifest there is no legal torn state — any decode failure is
// corruption.
func decodePart(data []byte, wantCount uint64, counts map[pq.KV]int) error {
	var got uint64
	err := decodeRecords(data, func(kind byte, kvs []pq.KV) error {
		if kind != recSnapChunk {
			return fmt.Errorf("%w: record kind %d inside a partial snapshot", ErrCorrupt, kind)
		}
		for _, it := range kvs {
			counts[it]++
		}
		got += uint64(len(kvs))
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrTorn) {
			return fmt.Errorf("%w: torn partial snapshot under a committed manifest", ErrCorrupt)
		}
		return err
	}
	if got != wantCount {
		return fmt.Errorf("%w: partial snapshot holds %d pairs, manifest says %d",
			ErrCorrupt, got, wantCount)
	}
	return nil
}

// replayStore reconstructs the live set from a store: the newest
// committed snapshot base (manifest + chunked part, or a legacy
// monolithic snapshot from the seal-and-drain era), then every WAL
// segment at or above the base's nextSeg, in order. A torn final record
// is tolerated only at the very end of the newest segment — the one spot
// a crash between Append and Sync can legally leave one. The operation
// it belonged to was never acknowledged, so dropping it is correct.
//
// nextSnap is claimed past every snapshot index that exists in any form
// — committed manifests, orphan parts from attempts that died before
// their manifest, and legacy snapshots — so a fresh snapshot never
// appends onto a torn orphan.
func replayStore(store kv.Store) (recoveredState, error) {
	var st recoveredState
	counts := make(map[pq.KV]int)

	manifests, err := store.List("manifest/")
	if err != nil {
		return st, err
	}
	parts, err := store.List("part/")
	if err != nil {
		return st, err
	}
	snaps, err := store.List("snap/")
	if err != nil {
		return st, err
	}
	for _, keys := range [][]string{manifests, parts, snaps} {
		for _, k := range keys {
			for _, pfx := range []string{"manifest/", "part/", "snap/"} {
				if i, ok := parseIndexed(k, pfx); ok && i >= st.nextSnap {
					st.nextSnap = i + 1
				}
			}
		}
	}

	// Newest committed manifest wins; manifests always carry higher
	// indices than any legacy snapshot in the same store (indices are
	// claimed past everything seen at recovery), so this precedence also
	// orders the two formats correctly during migration.
	loaded := false
	for i := len(manifests) - 1; i >= 0 && !loaded; i-- {
		idx, ok := parseIndexed(manifests[i], "manifest/")
		if !ok {
			continue
		}
		data, found, err := store.Get(manifests[i])
		if err != nil {
			return st, err
		}
		if !found {
			continue
		}
		nextSeg, count, err := decodeManifest(data)
		if err != nil {
			return st, fmt.Errorf("manifest %s: %w", manifests[i], err)
		}
		part, found, err := store.Get(partKey(idx))
		if err != nil {
			return st, err
		}
		if !found {
			if count != 0 {
				return st, fmt.Errorf("%w: manifest %s committed but its part is missing",
					ErrCorrupt, manifests[i])
			}
		} else if err := decodePart(part, count, counts); err != nil {
			return st, fmt.Errorf("part %s: %w", partKey(idx), err)
		}
		st.nextSeg = nextSeg
		loaded = true
	}
	// Migration: no committed manifest, fall back to the newest legacy
	// monolithic snapshot.
	for i := len(snaps) - 1; i >= 0 && !loaded; i-- {
		if _, ok := parseIndexed(snaps[i], "snap/"); !ok {
			continue
		}
		data, found, err := store.Get(snaps[i])
		if err != nil {
			return st, err
		}
		if !found {
			continue
		}
		nextSeg, items, err := decodeSnapshot(data)
		if err != nil {
			return st, fmt.Errorf("snapshot %s: %w", snaps[i], err)
		}
		for _, it := range items {
			counts[it]++
		}
		st.nextSeg = nextSeg
		loaded = true
	}

	// The base multiset — the live set as of nextSeg — seeds the
	// reopened queue's incremental snapshot cache, so the first snapshot
	// of the new process only folds the tail, not history.
	st.baseSeg = st.nextSeg
	st.base = make(map[pq.KV]int, len(counts))
	for it, c := range counts {
		st.base[it] = c
	}

	segs, err := store.List("wal/")
	if err != nil {
		return st, err
	}
	var live []uint64
	for _, k := range segs {
		if i, ok := parseIndexed(k, "wal/"); ok && i >= st.nextSeg {
			live = append(live, i)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a] < live[b] })

	for n, idx := range live {
		data, found, err := store.Get(segKey(idx))
		if err != nil {
			return st, err
		}
		if !found {
			continue
		}
		err = applySegRecords(data, idx, counts)
		if errors.Is(err, ErrTorn) && n == len(live)-1 {
			err = nil // legal torn tail: unacknowledged final record dropped
		}
		if err != nil {
			return st, fmt.Errorf("WAL segment %d: %w", idx, err)
		}
		if idx >= st.nextSeg {
			st.nextSeg = idx + 1
		}
	}

	st.items = flattenCounts(counts)
	return st, nil
}

// ReplayStore reconstructs the live item multiset a store holds, sorted
// by (key, value) — the same deterministic order for identical stores,
// which is what the kill/recover harness's byte-identical check relies
// on. It is read-only: forensics can replay a copied directory while the
// real store is live elsewhere.
func ReplayStore(store kv.Store) ([]pq.KV, error) {
	st, err := replayStore(store)
	if err != nil {
		return nil, err
	}
	return st.items, nil
}
