package durable

import (
	"errors"
	"fmt"
	"sort"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// recoveredState is what a store replay yields: the exact live multiset,
// plus the bookkeeping indices the reopened queue continues from.
type recoveredState struct {
	items    []pq.KV // live set, sorted (key, then value) — deterministic
	nextSeg  uint64  // first segment index the new WAL may write
	nextSnap uint64  // next snapshot index to use
}

// replayStore reconstructs the live set from a store: newest intact
// snapshot, then every WAL segment at or above its nextSeg, in order.
// The recovery invariant (DESIGN.md §8d): because records were appended
// under the queue's op mutex, log order is operation order, so the
// multiset count of any (key,value) pair can never go negative during
// replay — a delete record always follows the insert that produced the
// item. A negative count therefore proves corruption, not reordering,
// and replay fails loudly instead of guessing.
//
// A torn final record is tolerated only at the very end of the newest
// segment — the one spot a crash between Append and Sync can legally
// leave one. The operation it belonged to was never acknowledged, so
// dropping it is correct.
func replayStore(store kv.Store) (recoveredState, error) {
	var st recoveredState

	snaps, err := store.List("snap/")
	if err != nil {
		return st, err
	}
	counts := make(map[pq.KV]int)
	for i := len(snaps) - 1; i >= 0; i-- {
		idx, ok := parseIndexed(snaps[i], "snap/")
		if !ok {
			continue
		}
		data, found, err := store.Get(snaps[i])
		if err != nil {
			return st, err
		}
		if !found {
			continue
		}
		nextSeg, items, err := decodeSnapshot(data)
		if err != nil {
			return st, fmt.Errorf("snapshot %s: %w", snaps[i], err)
		}
		st.nextSeg = nextSeg
		st.nextSnap = idx + 1
		for _, it := range items {
			counts[it]++
		}
		break
	}

	segs, err := store.List("wal/")
	if err != nil {
		return st, err
	}
	var live []uint64
	for _, k := range segs {
		if i, ok := parseIndexed(k, "wal/"); ok && i >= st.nextSeg {
			live = append(live, i)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a] < live[b] })

	for n, idx := range live {
		data, found, err := store.Get(segKey(idx))
		if err != nil {
			return st, err
		}
		if !found {
			continue
		}
		err = decodeRecords(data, func(kind byte, kvs []pq.KV) error {
			for _, it := range kvs {
				if kind == recInsert {
					counts[it]++
				} else {
					counts[it]--
					if counts[it] < 0 {
						return fmt.Errorf("%w: delete of (%d,%d) with no matching insert in segment %d",
							ErrCorrupt, it.Key, it.Value, idx)
					}
					if counts[it] == 0 {
						delete(counts, it)
					}
				}
			}
			return nil
		})
		if errors.Is(err, ErrTorn) && n == len(live)-1 {
			err = nil // legal torn tail: unacknowledged final record dropped
		}
		if err != nil {
			return st, fmt.Errorf("WAL segment %d: %w", idx, err)
		}
		if idx >= st.nextSeg {
			st.nextSeg = idx + 1
		}
	}

	st.items = make([]pq.KV, 0, len(counts))
	for it, c := range counts {
		for j := 0; j < c; j++ {
			st.items = append(st.items, it)
		}
	}
	sort.Slice(st.items, func(a, b int) bool {
		if st.items[a].Key != st.items[b].Key {
			return st.items[a].Key < st.items[b].Key
		}
		return st.items[a].Value < st.items[b].Value
	})
	return st, nil
}

// ReplayStore reconstructs the live item multiset a store holds, sorted
// by (key, value) — the same deterministic order for identical stores,
// which is what the kill/recover harness's byte-identical check relies
// on. It is read-only: forensics can replay a copied directory while the
// real store is live elsewhere.
func ReplayStore(store kv.Store) ([]pq.KV, error) {
	st, err := replayStore(store)
	if err != nil {
		return nil, err
	}
	return st.items, nil
}
