package durable_test

import (
	"testing"

	"cpq"
	"cpq/internal/chaos"
	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// TestChaosCheckDurable runs the suite's chaos invariant checker over
// durable-wrapped queues: workers under fault injection (including the
// wal-fsync perturbation at the worst commit window), abandonment,
// logged drain, forensics. On top of the checker's own invariants, the
// store must replay to exactly what the drain recovered — conservation
// through the WAL, not just through the structure.
func TestChaosCheckDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos check is seconds-long; skipped in -short")
	}
	for _, fam := range families {
		t.Run(fam, func(t *testing.T) {
			store := kv.NewInmem()
			var dq *durable.Queue
			res := chaos.Check(chaos.CheckConfig{
				Name: "dur:" + fam,
				NewQueue: func(threads int) pq.Queue {
					inner, err := cpq.NewQueue(fam, cpq.Options{Threads: threads})
					if err != nil {
						t.Fatalf("NewQueue(%s): %v", fam, err)
					}
					q, err := durable.Wrap(inner, durable.Options{
						Store:         store,
						SnapshotEvery: 4000,
						SegmentBytes:  1 << 14,
					})
					if err != nil {
						t.Fatalf("Wrap: %v", err)
					}
					dq = q
					return q
				},
				Threads:      4,
				OpsPerThread: 1500,
				OpBatch:      8,
				Seed:         7,
				// A durable delete holds its popped item through a whole
				// commit wait before the checker can stamp it; the default
				// stamping slack absorbs that window.
				Slack: -1,
			})
			if res.Failed() {
				t.Fatalf("durable %s failed chaos check (seed %d):\n%s", fam, res.Seed, res)
			}
			if res.Injected.Hits[chaos.WALFsync] == 0 {
				t.Fatalf("wal-fsync failpoint never hit: %+v", res.Injected.Hits)
			}
			if err := dq.Err(); err != nil {
				t.Fatalf("durable queue error after chaos: %v", err)
			}
			// The checker drained the queue to empty; the WAL agrees or the
			// log lied about an operation.
			replayed, err := durable.ReplayStore(store)
			if err != nil {
				t.Fatalf("ReplayStore: %v", err)
			}
			if len(replayed) != 0 {
				t.Fatalf("checker drained the queue but the store replays %d live items", len(replayed))
			}
		})
	}
}

// dumpStore reads every key's full contents — the byte-level identity of
// a store.
func dumpStore(t *testing.T, store kv.Store) map[string]string {
	t.Helper()
	keys, err := store.List("")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		v, _, err := store.Get(k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}

// TestChaosSeedReplayIdentical reruns the same seeded chaos check against
// two fresh stores and requires byte-identical persisted state: the
// injected decision sequence, the operations, the logged records, the
// segmentation and the final snapshot must all reproduce exactly. (Note
// this is single-threaded determinism at the store level only because the
// checker drains and closes the queue; mid-flight record order under real
// concurrency is schedule-dependent by design.)
func TestChaosSeedReplayIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos check is seconds-long; skipped in -short")
	}
	run := func() (map[string]string, uint64, chaos.CheckResult) {
		store := kv.NewInmem()
		var dq *durable.Queue
		res := chaos.Check(chaos.CheckConfig{
			Name: "dur:linden",
			NewQueue: func(threads int) pq.Queue {
				inner, err := cpq.NewQueue("linden", cpq.Options{Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				q, err := durable.Wrap(inner, durable.Options{Store: store})
				if err != nil {
					t.Fatal(err)
				}
				dq = q
				return q
			},
			Threads:      2,
			OpsPerThread: 800,
			Seed:         1234,
			Slack:        -1,
		})
		return dumpStore(t, store), dq.Stats().Records, res
	}
	dumpA, recsA, resA := run()
	dumpB, recsB, resB := run()
	if resA.Failed() || resB.Failed() {
		t.Fatalf("chaos check failed:\n%s\n%s", resA, resB)
	}
	if recsA != recsB {
		t.Fatalf("same seed logged %d vs %d WAL records", recsA, recsB)
	}
	if len(dumpA) != len(dumpB) {
		t.Fatalf("same seed left %d vs %d store keys", len(dumpA), len(dumpB))
	}
	for k, va := range dumpA {
		if vb, ok := dumpB[k]; !ok || va != vb {
			t.Fatalf("same seed, store key %s differs between runs", k)
		}
	}
}
