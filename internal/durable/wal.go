// Package durable wraps any pq.Queue with a write-ahead log and periodic
// snapshots over a pluggable kv.Store, so the live set survives a process
// crash and is reconstructed exactly on reopen (DESIGN.md §8).
//
// The layering is strict: this package knows nothing about which queue
// family it wraps (it logs through the pq batch capabilities) and nothing
// about how bytes reach disk (it persists through kv.Store). Group commit
// lives here, between the two: concurrent producers append records under
// the queue lock and then park on a commit ticket; one of them syncs the
// store once for the whole parked cohort.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cpq/internal/chaos"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// WAL record format (DESIGN.md §8a). All integers big-endian:
//
//	u32 len   — length of body (kind + count + pairs), excludes len and crc
//	u8  kind  — 1 = insert batch, 2 = delete batch,
//	            3 = snapshot-begin marker, 4 = partial-snapshot chunk
//	u16 count — number of (key,value) pairs
//	count × (u64 key, u64 value)
//	u32 crc   — IEEE CRC-32 over body
//
// A record is 4 + len + 4 bytes on the wire. Deletes log the pairs that
// actually came out of the inner queue — relaxed queues pop
// nondeterministically, so replay must not re-run the op, only re-apply
// its logged effect.
//
// Kind 3 (snapshot-begin) is a replay-inert forensic marker the
// concurrent snapshotter drops into the live WAL tail when it cuts a
// snapshot: one pair (snapshot index, cut segment). Replay skips it —
// the snapshot's effect is carried by the manifest, never by the marker.
// Kind 4 (partial-snapshot chunk) is legal only inside "part/..." keys;
// inside a WAL segment it is corruption, and vice versa for kinds 1-3
// inside a part.
const (
	recInsert    = 1
	recDelete    = 2
	recSnapBegin = 3
	recSnapChunk = 4

	recHeader  = 4         // u32 len
	recFixed   = 1 + 2     // kind + count
	recPair    = 16        // u64 key + u64 value
	recTrailer = 4         // u32 crc
	maxBatch   = 1<<16 - 1 // count is u16
	maxBody    = recFixed + maxBatch*recPair
)

// Decode errors. A torn tail (ErrTorn) is an incomplete final record —
// the expected shape after a crash between Append and Sync, tolerated
// only at the very end of the newest segment. Anything else (bad CRC,
// impossible length, torn bytes mid-log) is ErrCorrupt: the log is lying
// and replay must stop rather than guess.
var (
	ErrTorn    = errors.New("durable: torn record at end of WAL segment")
	ErrCorrupt = errors.New("durable: corrupt WAL record")
)

var crcTable = crc32.IEEETable

// appendRecord encodes one record onto buf and returns the extended
// slice. It allocates only when buf's capacity is exhausted, which is
// what the 0 allocs/op gate in wal_test.go pins down.
func appendRecord(buf []byte, kind byte, kvs []pq.KV) []byte {
	body := recFixed + len(kvs)*recPair
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(kvs)))
	for _, kv := range kvs {
		buf = binary.BigEndian.AppendUint64(buf, kv.Key)
		buf = binary.BigEndian.AppendUint64(buf, kv.Value)
	}
	crc := crc32.Checksum(buf[start:], crcTable)
	return binary.BigEndian.AppendUint32(buf, crc)
}

// decodeRecords walks one segment's bytes, invoking fn for each intact
// record. The kvs slice passed to fn aliases data and is only valid
// during the call. Returns ErrTorn if the segment ends mid-record (the
// caller decides whether that position may legally be torn) and
// ErrCorrupt for checksum or structural violations.
func decodeRecords(data []byte, fn func(kind byte, kvs []pq.KV) error) error {
	scratch := make([]pq.KV, 0, 256)
	for off := 0; off < len(data); {
		if len(data)-off < recHeader {
			return ErrTorn
		}
		body := int(binary.BigEndian.Uint32(data[off:]))
		if body < recFixed || body > maxBody || (body-recFixed)%recPair != 0 {
			return fmt.Errorf("%w: impossible body length %d at offset %d", ErrCorrupt, body, off)
		}
		if len(data)-off < recHeader+body+recTrailer {
			return ErrTorn
		}
		rec := data[off+recHeader : off+recHeader+body]
		crc := binary.BigEndian.Uint32(data[off+recHeader+body:])
		if crc32.Checksum(rec, crcTable) != crc {
			return fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		kind := rec[0]
		if kind < recInsert || kind > recSnapChunk {
			return fmt.Errorf("%w: unknown record kind %d at offset %d", ErrCorrupt, kind, off)
		}
		count := int(binary.BigEndian.Uint16(rec[1:]))
		if count*recPair != body-recFixed {
			return fmt.Errorf("%w: count %d disagrees with body length %d at offset %d",
				ErrCorrupt, count, body, off)
		}
		scratch = scratch[:0]
		for i := 0; i < count; i++ {
			p := rec[recFixed+i*recPair:]
			scratch = append(scratch, pq.KV{
				Key:   binary.BigEndian.Uint64(p),
				Value: binary.BigEndian.Uint64(p[8:]),
			})
		}
		if err := fn(kind, scratch); err != nil {
			return err
		}
		off += recHeader + body + recTrailer
	}
	return nil
}

// segKey formats the store key of WAL segment i ("wal/%016x" — keys sort
// in segment order because the width is fixed).
func segKey(i uint64) string { return fmt.Sprintf("wal/%016x", i) }

// wal is the segmented group-commit log. Producers append records under
// the owning Queue's op mutex (so log order is operation order) and then
// call commitWait outside it; the first waiter becomes the commit leader,
// swaps the pending buffer for an empty spare, writes and syncs it, and
// wakes the cohort. Two buffers recycle forever, keeping the append path
// allocation-free at steady state.
type wal struct {
	store kv.Store
	tel   *telemetry.Shard

	// naive disables group commit: every record is written and fsynced
	// synchronously by its own producer. This is the fsync-per-op
	// baseline the EXPERIMENTS.md walkthrough compares against.
	naive bool
	// window is an optional leader dally before claiming the buffer,
	// letting more producers join the cohort on low-concurrency runs.
	window time.Duration
	// segBytes triggers rotation to a fresh segment once the current one
	// has at least this many synced bytes.
	segBytes int

	// crashHook, when non-nil, runs between writing the pending buffer to
	// the store and syncing it — the worst crash window. The kill test
	// installs a process-exit here; chaos.Perturb(WALFsync) fires at the
	// same point.
	crashHook func()

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []byte // records appended since the last buffer claim
	spare    []byte // the other buffer, empty, ready to swap in
	appended uint64 // LSN of the newest appended record
	synced   uint64 // LSN through which the store is durable
	leading  bool   // a leader currently owns a claimed buffer
	seg      uint64 // index of the segment being appended to
	segName  string // segKey(seg), cached to keep the hot path alloc-free
	segSize  int    // bytes written to the current segment
	err      error  // sticky: first store failure poisons the log

	fsyncs atomic.Uint64 // barriers issued; telemetry-independent Stats feed
}

func newWAL(store kv.Store, startSeg uint64, naive bool, window time.Duration, segBytes int, tel *telemetry.Shard) *wal {
	w := &wal{
		store:    store,
		tel:      tel,
		naive:    naive,
		window:   window,
		segBytes: segBytes,
		pending:  make([]byte, 0, 4096),
		spare:    make([]byte, 0, 4096),
		seg:      startSeg,
		segName:  segKey(startSeg),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// append encodes one record into the pending buffer and returns its LSN.
// Must be called with the owning Queue's op mutex held, so that record
// order in the log equals the order the operations took effect in the
// inner queue. Allocation-free once the two buffers reach steady size.
func (w *wal) append(kind byte, kvs []pq.KV) uint64 {
	w.mu.Lock()
	w.pending = appendRecord(w.pending, kind, kvs)
	w.appended++
	lsn := w.appended
	w.mu.Unlock()
	if telemetry.Enabled {
		w.tel.Inc(telemetry.DurWALAppend)
	}
	return lsn
}

// commitWait blocks until the record at lsn is durable. The first caller
// to find no leader becomes one: it claims the pending buffer, writes and
// syncs it, then wakes everyone whose records it covered. Callers whose
// records were made durable by someone else's sync count as group joins.
func (w *wal) commitWait(lsn uint64) error {
	ledOnce := false
	w.mu.Lock()
	for w.synced < lsn && w.err == nil {
		if w.leading {
			w.cond.Wait()
			continue
		}
		w.leading = true
		// Dally with the lock released so more producers can append into
		// the buffer this leader is about to claim. Even with no window
		// configured, one scheduler yield matters: right after a commit
		// wakes its cohort, the first producer back would otherwise claim
		// a buffer holding only its own record and spend a whole fsync on
		// it, degenerating toward fsync-per-op on few cores. Yielding
		// lets every already-runnable producer append first, so the next
		// fsync covers the full cohort.
		w.mu.Unlock()
		if w.window > 0 {
			time.Sleep(w.window)
		} else {
			runtime.Gosched()
		}
		w.mu.Lock()
		buf := w.pending
		w.pending = w.spare[:0]
		target := w.appended
		w.mu.Unlock()

		err := w.sync(buf)
		ledOnce = true

		w.mu.Lock()
		w.spare = buf[:0]
		w.leading = false
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else {
			w.synced = target
			w.segSize += len(buf)
			w.maybeRotateLocked()
		}
		w.cond.Broadcast()
	}
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if !ledOnce && telemetry.Enabled {
		w.tel.Inc(telemetry.DurGroupJoin)
	}
	return nil
}

// sync writes buf to the current segment and makes it durable. Runs
// without w.mu held; the leading flag guarantees a single writer.
func (w *wal) sync(buf []byte) error {
	if len(buf) > 0 {
		if err := w.store.Append(w.segName, buf); err != nil {
			return err
		}
	}
	chaos.Perturb(chaos.WALFsync)
	if w.crashHook != nil {
		w.crashHook()
	}
	if err := w.store.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if telemetry.Enabled {
		w.tel.Inc(telemetry.DurFsync)
	}
	return nil
}

// maybeRotateLocked starts a fresh segment once the current one is big
// enough. Only legal with no pending bytes (they would land in the wrong
// segment) — callers hold w.mu and have just drained the buffer, so the
// check is cheap.
func (w *wal) maybeRotateLocked() {
	if w.segBytes <= 0 || w.segSize < w.segBytes || len(w.pending) > 0 {
		return
	}
	w.seg++
	w.segName = segKey(w.seg)
	w.segSize = 0
}

// logNaive appends one record and synchronously makes it durable — the
// fsync-per-op baseline. Callers hold the owning Queue's op mutex for the
// whole call, so the log is strictly serial and every op pays its own
// fsync; no cohort forms. That serialization is the cost group commit
// exists to remove.
//
// It still honors the leading protocol: the concurrent snapshotter's
// seal runs without the op mutex, so without the flag a naive op's
// append+sync could interleave with a seal's claim of the same buffer
// and land bytes in the wrong segment or out of LSN order.
func (w *wal) logNaive(kind byte, kvs []pq.KV) error {
	w.mu.Lock()
	for w.leading { // wait out a concurrent seal
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.leading = true
	w.pending = appendRecord(w.pending, kind, kvs)
	w.appended++
	buf := w.pending
	w.pending = w.spare[:0]
	target := w.appended
	w.mu.Unlock()
	if telemetry.Enabled {
		w.tel.Inc(telemetry.DurWALAppend)
	}
	err := w.sync(buf)
	w.mu.Lock()
	w.spare = buf[:0]
	w.leading = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else {
		w.synced = target
		w.segSize += len(buf)
		w.maybeRotateLocked()
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// barrier makes everything appended so far durable (graceful-drain path).
func (w *wal) barrier() error {
	w.mu.Lock()
	lsn := w.appended
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.commitWait(lsn)
}

// appendMarker drops a replay-inert snapshot-begin record into the
// pending buffer: one pair carrying (snapshot index, cut segment). It
// does not bump the LSN — no producer waits on a marker — so Stats()
// record counts keep meaning "logged operations". The marker rides the
// next commit's sync; if the process exits first it simply never lands,
// which is fine for a record that carries no replay effect.
func (w *wal) appendMarker(snapIdx, cut uint64) {
	pair := [1]pq.KV{{Key: snapIdx, Value: cut}}
	w.mu.Lock()
	if w.err == nil {
		w.pending = appendRecord(w.pending, recSnapBegin, pair[:])
	}
	w.mu.Unlock()
}

// seal is the snapshotter's cut: it waits out any in-flight leader,
// claims and syncs the pending bytes, and rotates to a fresh segment,
// returning that fresh segment's index — everything below it is frozen.
// Unlike the group-commit path it is called *without* the owning Queue's
// op mutex; that is safe because each op appends its record under the op
// mutex in one appendRecord call, so every record lands wholly on one
// side of the buffer claim: the frozen prefix below the cut is a
// consistent operation prefix, exactly what the concurrent snapshot
// needs (DESIGN.md §8c).
func (w *wal) seal() (uint64, error) {
	w.mu.Lock()
	for w.leading { // wait out an in-flight leader
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	w.leading = true
	buf := w.pending
	w.pending = w.spare[:0]
	target := w.appended
	w.mu.Unlock()

	err := w.sync(buf)

	w.mu.Lock()
	w.spare = buf[:0]
	w.leading = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		return 0, err
	}
	w.synced = target
	w.seg++
	w.segName = segKey(w.seg)
	w.segSize = 0
	next := w.seg
	w.cond.Broadcast()
	w.mu.Unlock()
	return next, nil
}
