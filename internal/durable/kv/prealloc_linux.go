//go:build linux

package kv

import (
	"os"
	"syscall"
)

// prealloc reserves size bytes of real blocks for f. fallocate both
// extends the inode size and allocates the extents, so later appends
// into the mapping dirty only data pages — no metadata journaling on
// the hot path, which is the point of preallocating.
func prealloc(f *os.File, size int64) error {
	if err := syscall.Fallocate(int(f.Fd()), 0, 0, size); err != nil {
		// Filesystems without fallocate (tmpfs on old kernels, overlay
		// corners) report EOPNOTSUPP; fall back to an explicit truncate.
		if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
			return f.Truncate(size)
		}
		return err
	}
	return nil
}

// flushSeg makes a segment's appended bytes durable. The size was fixed
// at preallocation time, so fdatasync (data pages, no inode update)
// suffices for the durability barrier.
func flushSeg(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
