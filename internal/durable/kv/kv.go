// Package kv defines the minimal storage interface the durable queue tier
// (internal/durable) persists through, with an in-memory implementation
// for tests and an append-safe file implementation for production use.
//
// The interface is deliberately small — point reads, sorted prefix
// listing, an atomic write batch, raw appends, and a durability barrier —
// patterned on the minimal Get/Set/List transaction APIs of embedded
// object stores, so that a future backend (badger-style LSM, an object
// bucket) slots in under the WAL and snapshot machinery without touching
// the queue layer. Everything the durable tier stores goes through these
// six methods:
//
//   - WAL segments are built with Append + Sync: Append adds bytes to the
//     end of a key's value and never rewrites earlier bytes (append-safe:
//     a crash can truncate the tail, never corrupt the prefix), and Sync
//     is the group-commit barrier — when it returns, every append that
//     happened-before it is durable.
//   - Snapshots and truncation go through Update: a write batch of
//     Set/Delete operations applied together and durable when Update
//     returns. Implementations need only per-key atomicity plus ordering
//     (sets land before deletes); the durable tier's recovery protocol is
//     designed around that weaker contract so simple file backends
//     qualify (see internal/durable's snapshot/truncate rule).
//
// Keys are flat strings; the durable tier namespaces with "wal/" and
// "snap/" prefixes and relies on List returning keys in ascending byte
// order.
package kv

// Tx is the view inside an Update write batch. Set and Delete stage
// mutations that become visible and durable together when the Update
// callback returns nil; Get and List observe the pre-batch state (the
// durable tier never reads its own staged writes).
type Tx interface {
	// Get returns the value stored at key, with ok = false when absent.
	Get(key string) (val []byte, ok bool, err error)
	// Set stages a full-value write of key.
	Set(key string, val []byte)
	// Delete stages removal of key. Deleting an absent key is a no-op.
	Delete(key string)
	// List returns the keys with the given prefix, ascending.
	List(prefix string) ([]string, error)
}

// Store is the pluggable backend. Append/Sync and Update may be called
// concurrently with Get/List; callers (the WAL's group-commit lock)
// serialize appends to any single key themselves.
type Store interface {
	// Get returns the value stored at key, with ok = false when absent.
	// For appended keys the value is every byte appended so far.
	Get(key string) (val []byte, ok bool, err error)
	// List returns the keys with the given prefix, ascending.
	List(prefix string) ([]string, error)
	// Update applies fn's staged write batch. When Update returns nil the
	// batch is durable. An error from fn (or the backend) discards the
	// batch. Sets are applied before deletes; each key is atomic.
	Update(fn func(Tx) error) error
	// Append adds data to the end of key's value, creating the key if
	// absent. Appended bytes are durable only after the next Sync; bytes
	// already present are never modified (append-safe).
	Append(key string, data []byte) error
	// Sync is the durability barrier for Append: it returns once every
	// prior append is persisted.
	Sync() error
	// Close releases backend resources. The store is unusable afterwards.
	Close() error
}
