//go:build linux

package kv

import (
	"fmt"
	"os"
	"syscall"
	"testing"
)

// TestFileFdCapLRU pins the descriptor-cache discipline: the cache never
// holds more than maxOpen append fds, eviction fsyncs dirty descriptors
// before closing them (the Sync barrier must not silently skip evicted
// keys), and every key's content is intact after the churn.
func TestFileFdCapLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileLimit(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("wal/%08x", i)
			if err := s.Append(k, []byte{byte(round)}); err != nil {
				t.Fatalf("append %s round %d: %v", k, round, err)
			}
			s.mu.Lock()
			n := len(s.open)
			s.mu.Unlock()
			if n > 4 {
				t.Fatalf("descriptor cache grew to %d (cap 4)", n)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("wal/%08x", i)
		v, ok, err := r.Get(k)
		if err != nil || !ok || string(v) != "\x00\x01\x02" {
			t.Fatalf("Get(%s) = %q ok=%v err=%v", k, v, ok, err)
		}
	}
}

// TestFileFdCapUnderRlimit is the regression test for the unbounded fd
// cache: with RLIMIT_NOFILE lowered to just above what the process
// already holds, appending across far more keys than the remaining
// headroom must still succeed, because the LRU keeps at most maxOpen
// descriptors open at once. Before the cap, this walked straight into
// EMFILE.
func TestFileFdCapUnderRlimit(t *testing.T) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		t.Skipf("getrlimit: %v", err)
	}
	inUse := countOpenFds(t)
	low := syscall.Rlimit{Cur: uint64(inUse + 24), Max: lim.Max}
	if low.Cur > lim.Max {
		t.Skipf("cannot lower RLIMIT_NOFILE below hard limit %d", lim.Max)
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &low); err != nil {
		t.Skipf("setrlimit: %v", err)
	}
	defer func() {
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
			t.Errorf("restore RLIMIT_NOFILE: %v", err)
		}
	}()

	s, err := OpenFileLimit(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// 128 distinct keys against 24 fds of headroom and a cache cap of 8:
	// only the LRU keeps this under the limit.
	for i := 0; i < 128; i++ {
		k := fmt.Sprintf("wal/%08x", i)
		if err := s.Append(k, []byte("x")); err != nil {
			t.Fatalf("append %s with lowered RLIMIT_NOFILE: %v", k, err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// countOpenFds reports how many descriptors the process currently holds.
func countOpenFds(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("reading /proc/self/fd: %v", err)
	}
	return len(ents)
}
