//go:build unix && !linux

package kv

import "os"

// prealloc on non-Linux unix: extend the inode with truncate. This does
// not guarantee block allocation the way fallocate does, but it keeps
// the mapping in bounds, which is the correctness requirement; the
// metadata-journaling optimisation is best-effort per platform.
func prealloc(f *os.File, size int64) error {
	return f.Truncate(size)
}

// flushSeg falls back to a full fsync where fdatasync isn't portable.
func flushSeg(f *os.File) error {
	return f.Sync()
}
