//go:build unix

package kv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// DefaultSegmentBytes is the preallocation unit for appended keys when
// OpenMmap is given no explicit size.
const DefaultSegmentBytes = 1 << 20

// MmapSupported reports whether this build has the mmap store.
const MmapSupported = true

// Mmap is the preallocated-segment Store: appended keys live in
// fixed-size files preallocated up front (fallocate where available) and
// memory-mapped for reads, so Get and the reopen scan walk the segment
// zero-copy. Append is a pwrite(2) into the preallocated region plus an
// atomically-published write offset — no metadata journaling from
// O_APPEND growth, because the blocks already exist when the first byte
// lands. Appends deliberately go through write(2) rather than the
// mapping: a page dirtied through a writable PTE makes every later
// fdatasync pay a page-table cleaning pass in writeback (rmap walk plus
// TLB shootdown per page), while a page dirtied via write(2) that was
// never read-faulted skips it — and the WAL's live segments are written
// and synced thousands of times per second but only ever read back on
// recovery, so the group-commit fsync sits on the cheap path. Sync
// flushes the dirty segments with fdatasync (data pages only; the size
// never changes after preallocation). Set/Delete keys (snapshots,
// manifests) are plain files with the same write-temp/fsync/rename
// discipline as the File store.
//
// Because a preallocated segment is physically larger than its logical
// content, the store must bound the valid tail on reopen. Appended keys
// are assumed to hold the durable tier's length-prefixed record framing
// (u32 big-endian body length, body, u32 CRC-32/IEEE trailer): the scan
// walks whole records and stops at a zero length prefix — impossible as
// a real body length, guaranteed present because preallocated bytes are
// zero — and a final record that is structurally short or fails its
// checksum is discarded as a torn, never-acknowledged tail (see
// scanRecordTail). In-process the published offset is exact and no scan
// happens; Get returns every byte appended so far, synced or not.
type Mmap struct {
	dir      string
	segBytes int

	mu     sync.Mutex
	segs   map[string]*mseg
	dirty  map[string]struct{}
	closed bool
	syncs  uint64
}

// mseg is one mapped segment. The caller (the WAL's group-commit lock)
// serializes appends per key; readers synchronize with the writer
// through the atomic offset, and remap guards the mapping itself against
// growth and deletion.
type mseg struct {
	remap sync.RWMutex // write-locked around munmap/mmap (grow, delete)
	f     *os.File
	data  []byte       // the whole mapping; len() == preallocated capacity
	off   atomic.Int64 // published length of the valid appended prefix
}

// OpenMmap opens (creating if needed) a preallocated-segment store
// rooted at dir. segBytes is the preallocation unit for appended keys
// (0 = DefaultSegmentBytes); existing segment files are mapped and their
// valid tails re-established by the record scan.
func OpenMmap(dir string, segBytes int) (*Mmap, error) {
	if dir == "" {
		return nil, fmt.Errorf("kv: empty mmap store directory")
	}
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Mmap{
		dir:      dir,
		segBytes: segBytes,
		segs:     make(map[string]*mseg),
		dirty:    make(map[string]struct{}),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name, ok := strings.CutSuffix(e.Name(), segSuffix)
		if e.IsDir() || !ok {
			continue
		}
		key, ok := unescapeKey(name)
		if !ok {
			continue
		}
		seg, err := s.openSeg(filepath.Join(dir, e.Name()))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("kv: reopen segment %s: %w", e.Name(), err)
		}
		s.segs[key] = seg
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Mmap) Dir() string { return s.dir }

// Syncs reports how many Sync barriers have completed.
func (s *Mmap) Syncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

func (s *Mmap) path(key string) string    { return filepath.Join(s.dir, escapeKey(key)) }
func (s *Mmap) segPath(key string) string { return s.path(key) + segSuffix }

// pageCeil rounds n up to a whole number of pages (at least one).
func pageCeil(n int) int {
	page := os.Getpagesize()
	if n < page {
		return page
	}
	return (n + page - 1) / page * page
}

// newSeg creates and preallocates a segment file sized to hold at least
// need bytes, and maps it.
func (s *Mmap) newSeg(path string, need int) (*mseg, error) {
	size := s.segBytes
	if need > size {
		size = need
	}
	size = pageCeil(size)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if err := prealloc(f, int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &mseg{f: f, data: data}, nil
}

// openSeg maps an existing segment file and re-establishes its valid
// tail with the zero-length-prefix record scan. Bytes beyond the tail —
// a torn final record, or garbage a previous torn tail left — are zeroed
// so future scans start from a clean frontier.
func (s *Mmap) openSeg(path string) (*mseg, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := pageCeil(int(fi.Size()))
	if int64(size) != fi.Size() {
		// A crash during preallocation can leave a short file; pad it back
		// to a page multiple so the mapping never faults past EOF.
		if err := prealloc(f, int64(size)); err != nil {
			f.Close()
			return nil, err
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &mseg{f: f, data: data}
	tail := scanRecordTail(data)
	// Zero the torn remainder so future scans start from a clean
	// frontier. The zeros go through pwrite, not the mapping: writing
	// through the mapping would install writable PTEs, and any page with
	// a writable PTE makes every later fdatasync writeback pay the
	// page-table cleaning pass the pwrite append path exists to avoid.
	lo, hi := len(data), tail
	for i := tail; i < len(data); i++ {
		if data[i] != 0 {
			if i < lo {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo < hi {
		zeros := make([]byte, hi-lo)
		for n := 0; n < len(zeros); {
			m, err := syscall.Pwrite(int(f.Fd()), zeros[n:], int64(lo+n))
			if err != nil {
				syscall.Munmap(data)
				f.Close()
				return nil, err
			}
			n += m
		}
	}
	seg.off.Store(int64(tail))
	return seg, nil
}

// Record framing constants mirrored from internal/durable's WAL format
// (DESIGN.md §8a). The scan only needs the envelope: u32 body length,
// body bytes, u32 CRC-32/IEEE over the body.
const (
	scanHeader  = 4
	scanTrailer = 4
)

// scanRecordTail bounds the valid appended prefix of a reopened
// preallocated segment. It walks length-prefixed records; a zero length
// prefix marks the frontier (real bodies are never empty, preallocated
// bytes always are). The final record before the frontier additionally
// has its checksum verified: a record a crash tore mid-write has intact
// earlier bytes and zero (or short) later ones, so it is structurally
// short or checksum-broken — and since a Sync barrier returns only after
// every prior append is physically durable, a record that fails here was
// never covered by one, i.e. never acknowledged, and is discarded.
func scanRecordTail(data []byte) int {
	off := 0
	for off+scanHeader <= len(data) {
		body := int(binary.BigEndian.Uint32(data[off:]))
		if body == 0 {
			return off // the zero-length frontier
		}
		end := off + scanHeader + body + scanTrailer
		if end > len(data) {
			return off // claims bytes past the segment: torn final record
		}
		rec := data[off+scanHeader : off+scanHeader+body]
		crc := binary.BigEndian.Uint32(data[off+scanHeader+body:])
		if crc32.ChecksumIEEE(rec) != crc {
			return off // torn (or rotted) final record; discard
		}
		off = end
	}
	return off
}

// Get implements Store. For appended keys the value is every byte
// appended so far (synced or not); for Set keys it is the file content.
func (s *Mmap) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errClosed
	}
	seg := s.segs[key]
	s.mu.Unlock()
	if seg != nil {
		seg.remap.RLock()
		if seg.data == nil { // lost a race with an Update delete
			seg.remap.RUnlock()
			return nil, false, nil
		}
		n := int(seg.off.Load())
		out := make([]byte, n)
		copy(out, seg.data[:n])
		seg.remap.RUnlock()
		return out, true, nil
	}
	buf, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

// List implements Store.
func (s *Mmap) List(prefix string) ([]string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed
	}
	s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), segSuffix)
		key, ok := unescapeKey(name)
		if !ok || !strings.HasPrefix(key, prefix) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// mmapTx stages one Update batch (same shape as fileTx).
type mmapTx struct {
	s    *Mmap
	sets map[string][]byte
	dels []string
}

func (tx *mmapTx) Get(key string) ([]byte, bool, error) { return tx.s.Get(key) }
func (tx *mmapTx) List(prefix string) ([]string, error) { return tx.s.List(prefix) }
func (tx *mmapTx) Delete(key string)                    { tx.dels = append(tx.dels, key) }
func (tx *mmapTx) Set(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.sets[key] = cp
}

// Update implements Store with the File store's discipline: sets via
// write-temp/fsync/rename, a directory fsync, then deletes (unmapping
// segments before their files go), then a final directory fsync.
func (s *Mmap) Update(fn func(Tx) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	s.mu.Unlock()
	tx := &mmapTx{s: s, sets: make(map[string][]byte)}
	if err := fn(tx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	keys := make([]string, 0, len(tx.sets))
	for k := range tx.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst := s.path(k)
		tmp := dst + ".tmp"
		if err := writeFileSync(tmp, tx.sets[k]); err != nil {
			return err
		}
		if err := os.Rename(tmp, dst); err != nil {
			return err
		}
	}
	if len(tx.sets) > 0 {
		if err := s.syncDir(); err != nil {
			return err
		}
	}
	for _, k := range tx.dels {
		if seg, ok := s.segs[k]; ok {
			seg.remap.Lock()
			syscall.Munmap(seg.data)
			seg.data = nil
			seg.f.Close()
			seg.remap.Unlock()
			delete(s.segs, k)
			delete(s.dirty, k)
			if err := os.Remove(s.segPath(k)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if len(tx.dels) > 0 {
		if err := s.syncDir(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Mmap) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append implements Store: pwrite into the preallocated region, then
// publish the new offset (pwrite returning orders the page-cache update
// before the store, so a reader that observes the offset sees the bytes
// through the mapping). The first append to a key preallocates and maps
// its segment (and fsyncs the directory so the name survives); an append
// past the preallocated capacity remaps at double the size, which
// steady-state WAL rotation never hits.
func (s *Mmap) Append(key string, data []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	seg, ok := s.segs[key]
	if !ok {
		var err error
		seg, err = s.newSeg(s.segPath(key), len(data))
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.segs[key] = seg
		if err := s.syncDir(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.dirty[key] = struct{}{}
	s.mu.Unlock()

	seg.remap.RLock()
	if seg.data == nil { // lost a race with an Update delete
		seg.remap.RUnlock()
		return fmt.Errorf("kv: append to deleted segment %q", key)
	}
	off := int(seg.off.Load())
	if off+len(data) > len(seg.data) {
		seg.remap.RUnlock()
		if err := seg.grow(off + len(data)); err != nil {
			return err
		}
		seg.remap.RLock()
	}
	for n := 0; n < len(data); {
		m, err := syscall.Pwrite(int(seg.f.Fd()), data[n:], int64(off+n))
		if err != nil {
			seg.remap.RUnlock()
			return err
		}
		n += m
	}
	seg.off.Store(int64(off + len(data)))
	seg.remap.RUnlock()
	return nil
}

// grow remaps the segment at least twice as large. Holding remap
// write-locked keeps concurrent readers off the dying mapping.
func (g *mseg) grow(need int) error {
	g.remap.Lock()
	defer g.remap.Unlock()
	size := len(g.data) * 2
	if need > size {
		size = need
	}
	size = pageCeil(size)
	if err := syscall.Munmap(g.data); err != nil {
		return err
	}
	g.data = nil
	if err := prealloc(g.f, int64(size)); err != nil {
		return err
	}
	data, err := syscall.Mmap(int(g.f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	g.data = data
	return nil
}

// Sync implements Store: flush every segment appended since the last
// barrier. fdatasync suffices — the file size was fixed at
// preallocation, so there is no metadata to journal, which is the point
// of preallocating.
func (s *Mmap) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	for k := range s.dirty {
		if seg, ok := s.segs[k]; ok {
			if err := flushSeg(seg.f); err != nil {
				return err
			}
		}
		delete(s.dirty, k)
	}
	s.syncs++
	return nil
}

// Close implements Store.
func (s *Mmap) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		seg.remap.Lock()
		if seg.data != nil {
			if err := syscall.Munmap(seg.data); err != nil && first == nil {
				first = err
			}
			seg.data = nil
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		seg.remap.Unlock()
	}
	s.segs = nil
	return first
}
