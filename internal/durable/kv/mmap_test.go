//go:build unix

package kv

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"sync"
	"testing"
)

// frame builds one length-prefixed record around body, matching the WAL
// envelope scanRecordTail walks (u32 body length, body, u32 CRC).
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body)+4)
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	binary.BigEndian.PutUint32(out[4+len(body):], crc32.ChecksumIEEE(body))
	return out
}

// TestMmapReopen pins the recovery-facing contract: a reopened mmap
// store re-establishes the valid tail of each preallocated segment from
// the record framing, and appends continue from there.
func TestMmapReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenMmap(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := frame([]byte("hello")), frame([]byte("world"))
	if err := s.Append("wal/00000001", r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("wal/00000001", r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx Tx) error { tx.Set("snap/00000001", []byte("S")); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenMmap(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := append(append([]byte(nil), r1...), r2...)
	if v, ok, err := r.Get("wal/00000001"); err != nil || !ok || !bytes.Equal(v, want) {
		t.Fatalf("reopened Get = %d bytes ok=%v err=%v, want %d bytes", len(v), ok, err, len(want))
	}
	if v, ok, _ := r.Get("snap/00000001"); !ok || string(v) != "S" {
		t.Fatalf("reopened snapshot Get = %q ok=%v", v, ok)
	}
	if keys, err := r.List(""); err != nil ||
		!reflect.DeepEqual(keys, []string{"snap/00000001", "wal/00000001"}) {
		t.Fatalf("reopened List = %v err=%v", keys, err)
	}
	// Appends continue at the re-established tail, not at the
	// preallocated capacity.
	r3 := frame([]byte("!"))
	if err := r.Append("wal/00000001", r3); err != nil {
		t.Fatal(err)
	}
	want = append(want, r3...)
	if v, _, _ := r.Get("wal/00000001"); !bytes.Equal(v, want) {
		t.Fatalf("append after reopen = %d bytes, want %d", len(v), len(want))
	}
}

// TestMmapTornTail simulates the crash shapes a preallocated segment can
// be left in and checks the scan's verdicts: a zero frontier bounds the
// tail, and a torn final record — intact earlier bytes, zeroed or
// mangled later ones — is discarded whole without disturbing the synced
// prefix. It also pins that recovery is idempotent: the zeroing pass
// leaves a segment a second reopen scans to the same tail.
func TestMmapTornTail(t *testing.T) {
	good, torn := frame([]byte("committed")), frame([]byte("torn-record"))
	cases := []struct {
		name string
		mut  func(seg []byte) // applied at the torn record's start offset
	}{
		{"zeroed-suffix", func(seg []byte) {
			// Prefix persistence: length landed, body tail reverted to zero.
			copy(seg, torn[:6])
		}},
		{"bad-crc", func(seg []byte) {
			copy(seg, torn)
			seg[len(torn)-1] ^= 0xff
		}},
		{"length-overruns-segment", func(seg []byte) {
			binary.BigEndian.PutUint32(seg, uint32(len(seg))) // claims past the end
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenMmap(dir, 1<<12)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Append("wal/1", good); err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Mangle the bytes after the synced prefix directly in the file,
			// as a crash mid-append would leave them.
			path := s.segPath("wal/1")
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(buf[len(good):])
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}

			for round := 1; round <= 2; round++ {
				r, err := OpenMmap(dir, 1<<12)
				if err != nil {
					t.Fatalf("round %d reopen: %v", round, err)
				}
				v, ok, err := r.Get("wal/1")
				if err != nil || !ok || !bytes.Equal(v, good) {
					t.Fatalf("round %d: tail = %d bytes ok=%v err=%v, want the %d-byte synced prefix",
						round, len(v), ok, err, len(good))
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestMmapGrow forces appends past the preallocated capacity and checks
// the remap preserves every byte, including across a reopen.
func TestMmapGrow(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenMmap(dir, 1<<12) // one page; records below overflow it
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	body := make([]byte, 1000)
	for i := 0; i < 20; i++ { // ~20KB through a 4KB initial segment
		for j := range body {
			body[j] = byte(i)
		}
		rec := frame(body)
		if err := s.Append("wal/1", rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec...)
	}
	if v, _, _ := s.Get("wal/1"); !bytes.Equal(v, want) {
		t.Fatalf("after growth: %d bytes, want %d", len(v), len(want))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenMmap(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, _, _ := r.Get("wal/1"); !bytes.Equal(v, want) {
		t.Fatalf("reopen after growth: %d bytes, want %d", len(v), len(want))
	}
}

// TestMmapConcurrentReads hammers Get/List against a writer appending
// through segment growth; under -race this is the memory-model check for
// the atomically-published offset + remap lock discipline.
func TestMmapConcurrentReads(t *testing.T) {
	s, err := OpenMmap(t.TempDir(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const records = 400
	rec := frame(bytes.Repeat([]byte("x"), 100))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _, err := s.Get("wal/1")
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if len(v)%len(rec) != 0 {
					t.Errorf("read a partial record: %d bytes", len(v))
					return
				}
				if _, err := s.List("wal/"); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < records; i++ {
		if err := s.Append("wal/1", rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if v, _, _ := s.Get("wal/1"); len(v) != records*len(rec) {
		t.Fatalf("final length %d, want %d", len(v), records*len(rec))
	}
}

// TestMmapSegmentDelete pins that Update deletes unmap and remove the
// preallocated file, and the key is gone after reopen.
func TestMmapSegmentDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenMmap(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("wal/1", frame([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx Tx) error { tx.Delete("wal/1"); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("wal/1"); ok {
		t.Fatal("deleted segment still readable")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenMmap(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if keys, _ := r.List(""); len(keys) != 0 {
		t.Fatalf("reopen after delete lists %v", keys)
	}
}
