package kv

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Inmem is the in-memory Store: a mutex-guarded map. It exists for tests
// and for benchmarking the durable tier's bookkeeping without I/O — Sync
// is a counter, not a barrier. Data does not survive the process, so a
// "recovery" against an Inmem store only makes sense within one test.
type Inmem struct {
	mu     sync.Mutex
	m      map[string][]byte
	closed bool
	syncs  atomic.Uint64
}

// NewInmem returns an empty in-memory store.
func NewInmem() *Inmem { return &Inmem{m: make(map[string][]byte)} }

var errClosed = errors.New("kv: store is closed")

// Syncs reports how many Sync barriers were requested (test observability;
// the file store's analogue is real fsyncs).
func (s *Inmem) Syncs() uint64 { return s.syncs.Load() }

// Get implements Store.
func (s *Inmem) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errClosed
	}
	v, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// List implements Store.
func (s *Inmem) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	return listKeys(s.m, prefix), nil
}

func listKeys(m map[string][]byte, prefix string) []string {
	var keys []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// inmemTx stages one Update batch. Reads see the pre-batch map.
type inmemTx struct {
	s    *Inmem
	sets map[string][]byte
	dels []string
}

func (tx *inmemTx) Get(key string) ([]byte, bool, error) {
	v, ok := tx.s.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

func (tx *inmemTx) Set(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.sets[key] = cp
}

func (tx *inmemTx) Delete(key string) { tx.dels = append(tx.dels, key) }

func (tx *inmemTx) List(prefix string) ([]string, error) {
	return listKeys(tx.s.m, prefix), nil
}

// Update implements Store. The whole batch applies under the store mutex:
// atomic in the strongest sense, exceeding the per-key contract.
func (s *Inmem) Update(fn func(Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	tx := &inmemTx{s: s, sets: make(map[string][]byte)}
	if err := fn(tx); err != nil {
		return err
	}
	for k, v := range tx.sets {
		s.m[k] = v
	}
	for _, k := range tx.dels {
		delete(s.m, k)
	}
	return nil
}

// Append implements Store.
func (s *Inmem) Append(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.m[key] = append(s.m[key], data...)
	return nil
}

// Sync implements Store (memory is "durable" the moment it is written).
func (s *Inmem) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.syncs.Add(1)
	return nil
}

// Close implements Store.
func (s *Inmem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
