//go:build !unix

package kv

import "fmt"

// Mmap is unavailable on platforms without mmap/fallocate support; the
// durable tier falls back to the File store there (see durable.Options
// backend selection).
type Mmap struct{}

// ErrMmapUnsupported reports that this build has no mmap store.
var ErrMmapUnsupported = fmt.Errorf("kv: mmap store is not supported on this platform")

// MmapSupported reports whether this build has the mmap store.
const MmapSupported = false

// DefaultSegmentBytes mirrors the unix build's preallocation unit.
const DefaultSegmentBytes = 1 << 20

// OpenMmap always fails on non-unix builds.
func OpenMmap(dir string, segBytes int) (*Mmap, error) {
	return nil, ErrMmapUnsupported
}

func (s *Mmap) Get(key string) ([]byte, bool, error) { return nil, false, ErrMmapUnsupported }
func (s *Mmap) List(prefix string) ([]string, error) { return nil, ErrMmapUnsupported }
func (s *Mmap) Update(fn func(Tx) error) error       { return ErrMmapUnsupported }
func (s *Mmap) Append(key string, data []byte) error { return ErrMmapUnsupported }
func (s *Mmap) Sync() error                          { return ErrMmapUnsupported }
func (s *Mmap) Close() error                         { return nil }
func (s *Mmap) Dir() string                          { return "" }
func (s *Mmap) Syncs() uint64                        { return 0 }
