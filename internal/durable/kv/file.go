package kv

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the append-safe file-backed Store: one flat directory, one file
// per key (key bytes outside [A-Za-z0-9._-] are %XX-escaped in the file
// name, so "wal/0001" and "snap/0001" coexist in one directory).
//
// Durability discipline:
//
//   - Append writes through an O_APPEND descriptor that stays open per
//     key; Sync fsyncs every descriptor appended since the last Sync —
//     one fsync per dirty key, which for the WAL's single active segment
//     means one fsync per group commit. Creating a key fsyncs the
//     directory so the entry itself survives.
//   - Update stages the batch, then applies every Set as write-temp,
//     fsync, rename (per-key atomic: a crash leaves the old value or the
//     new one, never a torn mix), fsyncs the directory, and only then
//     applies the Deletes. That ordering is the contract recovery
//     protocols build on: a new snapshot is fully durable before the WAL
//     segments it supersedes disappear.
//
// A crash between Append and Sync may truncate the appended tail (and on
// a real power loss, persist any prefix of it); it never disturbs bytes
// that an earlier Sync covered.
type File struct {
	dir     string
	maxOpen int

	mu     sync.Mutex
	open   map[string]*os.File // O_APPEND descriptors by key
	use    map[string]uint64   // last-use tick per cached descriptor
	tick   uint64
	dirty  map[string]struct{} // appended since last Sync
	closed bool
	syncs  uint64
}

// DefaultMaxOpen caps the cached O_APPEND descriptors per File store. A
// long-running `pqd -durable` hosts one store per queue instance; with
// unbounded caching every WAL segment ever appended to would pin an fd
// until its snapshot deletes it, and a slow snapshot cadence could walk
// the process into RLIMIT_NOFILE. 128 keeps the steady state (a handful
// of live segments) fully cached while bounding the pathological case.
const DefaultMaxOpen = 128

// segSuffix marks a preallocated mmap-store segment file on disk.
// escapeKey never emits '@', so the suffix cannot collide with any
// escaped key; the file store uses it only to refuse mmap directories.
const segSuffix = "@seg"

// OpenFile opens (creating if needed) a file store rooted at dir, with
// the default descriptor-cache cap.
func OpenFile(dir string) (*File, error) {
	return OpenFileLimit(dir, DefaultMaxOpen)
}

// OpenFileLimit is OpenFile with an explicit cap on cached append
// descriptors (maxOpen <= 0 means DefaultMaxOpen). When the cap is hit
// the least-recently-appended descriptor is evicted: fsynced first if it
// has unsynced appends — eviction must not weaken the Sync barrier —
// then closed. A later append to that key transparently reopens it.
func OpenFileLimit(dir string, maxOpen int) (*File, error) {
	if dir == "" {
		return nil, fmt.Errorf("kv: empty file store directory")
	}
	if maxOpen <= 0 {
		maxOpen = DefaultMaxOpen
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A directory written by the mmap store holds "<key>@seg" files this
	// store cannot interpret; opening it here would silently hide those
	// keys from List and replay. Refuse rather than lose data.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			return nil, fmt.Errorf("kv: %s holds mmap-store segments (%s); reopen it with the mmap backend", dir, e.Name())
		}
	}
	return &File{
		dir:     dir,
		maxOpen: maxOpen,
		open:    make(map[string]*os.File),
		use:     make(map[string]uint64),
		dirty:   make(map[string]struct{}),
	}, nil
}

// Dir returns the store's root directory.
func (s *File) Dir() string { return s.dir }

// Syncs reports how many Sync barriers have completed (observability for
// the fsyncs/op accounting; the WAL's telemetry counter is the primary
// surface).
func (s *File) Syncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// escapeKey maps a key to a file name, escaping every byte outside
// [A-Za-z0-9._-] as %XX (including '%' itself and '/').
func escapeKey(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	return b.String()
}

// unescapeKey reverses escapeKey; ok is false for names this store never
// produced (stray files are skipped by List rather than failing it).
func unescapeKey(name string) (string, bool) {
	if !strings.ContainsRune(name, '%') {
		return name, true
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", false
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02x", &v); err != nil {
			return "", false
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), true
}

func (s *File) path(key string) string { return filepath.Join(s.dir, escapeKey(key)) }

// syncDir fsyncs the directory so renames, creations and removals are
// themselves durable.
func (s *File) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get implements Store.
func (s *File) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, false, errClosed
	}
	buf, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

// List implements Store.
func (s *File) List(prefix string) ([]string, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		key, ok := unescapeKey(e.Name())
		if !ok || !strings.HasPrefix(key, prefix) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// fileTx stages one Update batch.
type fileTx struct {
	s    *File
	sets map[string][]byte
	dels []string
}

func (tx *fileTx) Get(key string) ([]byte, bool, error) { return tx.s.Get(key) }
func (tx *fileTx) List(prefix string) ([]string, error) { return tx.s.List(prefix) }
func (tx *fileTx) Delete(key string)                    { tx.dels = append(tx.dels, key) }
func (tx *fileTx) Set(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	tx.sets[key] = cp
}

// Update implements Store: sets via write-temp/fsync/rename, a directory
// fsync making them durable, then deletes, then a final directory fsync.
func (s *File) Update(fn func(Tx) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	s.mu.Unlock()
	// The callback runs unlocked: tx.Get/List take s.mu themselves.
	tx := &fileTx{s: s, sets: make(map[string][]byte)}
	if err := fn(tx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	keys := make([]string, 0, len(tx.sets))
	for k := range tx.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst := s.path(k)
		tmp := dst + ".tmp"
		if err := writeFileSync(tmp, tx.sets[k]); err != nil {
			return err
		}
		if err := os.Rename(tmp, dst); err != nil {
			return err
		}
	}
	if len(tx.sets) > 0 {
		if err := s.syncDir(); err != nil {
			return err
		}
	}
	for _, k := range tx.dels {
		if f, ok := s.open[k]; ok {
			f.Close()
			delete(s.open, k)
			delete(s.use, k)
			delete(s.dirty, k)
		}
		if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if len(tx.dels) > 0 {
		if err := s.syncDir(); err != nil {
			return err
		}
	}
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Append implements Store.
func (s *File) Append(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	f, ok := s.open[key]
	if !ok {
		if err := s.evictLocked(); err != nil {
			return err
		}
		existed := true
		if _, err := os.Stat(s.path(key)); os.IsNotExist(err) {
			existed = false
		}
		var err error
		f, err = os.OpenFile(s.path(key), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.open[key] = f
		if !existed {
			// New directory entry: make the name durable before its contents
			// matter. (Cheap relative to the data fsyncs; once per segment.)
			if err := s.syncDir(); err != nil {
				return err
			}
		}
	}
	s.tick++
	s.use[key] = s.tick
	_, err := f.Write(data)
	if err == nil {
		s.dirty[key] = struct{}{}
	}
	return err
}

// evictLocked makes room in the descriptor cache for one more entry by
// closing least-recently-appended descriptors. A dirty descriptor is
// fsynced before it closes: the Sync barrier promises every append since
// the last barrier is durable when it returns, and a silently-dropped
// dirty fd would void that promise for the evicted key.
func (s *File) evictLocked() error {
	for len(s.open) >= s.maxOpen {
		victim := ""
		var oldest uint64
		for k := range s.open {
			if t := s.use[k]; victim == "" || t < oldest {
				victim, oldest = k, t
			}
		}
		f := s.open[victim]
		if _, dirty := s.dirty[victim]; dirty {
			if err := f.Sync(); err != nil {
				return err
			}
			s.syncs++
			delete(s.dirty, victim)
		}
		if err := f.Close(); err != nil {
			return err
		}
		delete(s.open, victim)
		delete(s.use, victim)
	}
	return nil
}

// Sync implements Store: fsync every descriptor appended since last Sync.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	for k := range s.dirty {
		if f, ok := s.open[k]; ok {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		delete(s.dirty, k)
	}
	s.syncs++
	return nil
}

// Close implements Store.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, f := range s.open {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.open = nil
	return first
}
