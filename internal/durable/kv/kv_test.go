package kv

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// stores returns every Store implementation under a fresh root. The
// mmap store joins on platforms that have it; its in-process reads give
// exact byte-for-byte Append/Get semantics like the others (the record-
// framing requirement only applies to reopen, which the contract test
// never does — see mmap_test.go for that side).
func stores(t *testing.T) map[string]Store {
	t.Helper()
	f, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	out := map[string]Store{"inmem": NewInmem(), "file": f}
	if MmapSupported {
		m, err := OpenMmap(t.TempDir(), 1<<16)
		if err != nil {
			t.Fatalf("OpenMmap: %v", err)
		}
		out["mmap"] = m
	}
	return out
}

func TestStoreContract(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.Get("missing"); err != nil || ok {
				t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
			}

			// Append builds values incrementally; Get sees every byte.
			if err := s.Append("wal/0001", []byte("abc")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := s.Append("wal/0001", []byte("def")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := s.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			v, ok, err := s.Get("wal/0001")
			if err != nil || !ok || !bytes.Equal(v, []byte("abcdef")) {
				t.Fatalf("Get after appends = %q ok=%v err=%v", v, ok, err)
			}

			// Update: sets and deletes land together; Tx reads pre-state.
			err = s.Update(func(tx Tx) error {
				if _, ok, _ := tx.Get("snap/0002"); ok {
					t.Error("tx.Get sees a key that was never written")
				}
				tx.Set("snap/0002", []byte("snapshot"))
				tx.Set("meta", []byte("m"))
				return nil
			})
			if err != nil {
				t.Fatalf("Update: %v", err)
			}
			if v, ok, _ := s.Get("snap/0002"); !ok || !bytes.Equal(v, []byte("snapshot")) {
				t.Fatalf("Get(snap/0002) = %q ok=%v", v, ok)
			}

			// An erroring callback discards the whole batch.
			wantErr := fmt.Errorf("boom")
			if err := s.Update(func(tx Tx) error {
				tx.Set("ghost", []byte("x"))
				return wantErr
			}); err != wantErr {
				t.Fatalf("Update error = %v, want %v", err, wantErr)
			}
			if _, ok, _ := s.Get("ghost"); ok {
				t.Fatal("discarded batch left a key behind")
			}

			// List: prefix-filtered, ascending.
			if err := s.Append("wal/0003", []byte("x")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			keys, err := s.List("wal/")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if want := []string{"wal/0001", "wal/0003"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("List(wal/) = %v, want %v", keys, want)
			}

			// Deletes through Update, including an appended key.
			if err := s.Update(func(tx Tx) error {
				tx.Delete("wal/0001")
				tx.Delete("never-existed")
				return nil
			}); err != nil {
				t.Fatalf("Update(delete): %v", err)
			}
			if _, ok, _ := s.Get("wal/0001"); ok {
				t.Fatal("deleted key still readable")
			}
			if keys, _ := s.List("wal/"); !reflect.DeepEqual(keys, []string{"wal/0003"}) {
				t.Fatalf("List after delete = %v", keys)
			}

			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, _, err := s.Get("meta"); err == nil {
				t.Fatal("Get after Close did not error")
			}
		})
	}
}

// TestFileReopen pins the property recovery depends on: a reopened file
// store sees exactly what was appended and committed before.
func TestFileReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("wal/00000001", []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("wal/00000001", []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx Tx) error { tx.Set("snap/00000001", []byte("S")); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v, ok, err := r.Get("wal/00000001")
	if err != nil || !ok || string(v) != "hello world" {
		t.Fatalf("reopened Get = %q ok=%v err=%v", v, ok, err)
	}
	keys, err := r.List("")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"snap/00000001", "wal/00000001"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("reopened List = %v, want %v", keys, want)
	}
	// Appends continue where the previous process stopped.
	if err := r.Append("wal/00000001", []byte("!")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := r.Get("wal/00000001"); string(v) != "hello world!" {
		t.Fatalf("append after reopen = %q", v)
	}
}

// TestKeyEscaping round-trips hostile key bytes through the file store's
// name escaping.
func TestKeyEscaping(t *testing.T) {
	keys := []string{
		"wal/0001", "a/b/c", "with space", "pct%sign", "dots..", "UPPER_lower-9",
		"hash#tag", "unicodeé",
	}
	for _, k := range keys {
		got, ok := unescapeKey(escapeKey(k))
		if !ok || got != k {
			t.Fatalf("escape round-trip of %q = %q ok=%v", k, got, ok)
		}
	}
	f, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, k := range keys {
		if err := f.Append(k, []byte{byte(i)}); err != nil {
			t.Fatalf("Append(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		v, ok, err := f.Get(k)
		if err != nil || !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("Get(%q) = %v ok=%v err=%v", k, v, ok, err)
		}
	}
}
