package durable_test

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// TestCrashAtSnapshotPhases clones the store at every phase boundary of
// the concurrent snapshot — begin marker appended, first chunk written,
// chunks synced but manifest not yet committed, manifest committed but
// WAL not yet truncated — while producers keep logging. Every capture is
// a legal crash image: replay must succeed and yield only items the
// workers genuinely produced, each at most once. This is the proof that
// the manifest commit point makes each phase atomic-or-invisible.
func TestCrashAtSnapshotPhases(t *testing.T) {
	const (
		workers      = 4
		opsPerWorker = 400
		perPhaseCap  = 8
	)
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{
		Store:         store,
		SnapshotEvery: 300,
		SegmentBytes:  1 << 12, // small segments: snapshots fold several
	})
	if err != nil {
		t.Fatal(err)
	}
	captures := make(map[durable.SnapPhase][]*kv.Inmem)
	var capMu sync.Mutex
	q.SetSnapHook(func(p durable.SnapPhase) {
		capMu.Lock()
		defer capMu.Unlock()
		if len(captures[p]) < perPhaseCap {
			captures[p] = append(captures[p], cloneInmem(t, store))
		}
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for i := 0; i < opsPerWorker; i++ {
				if i%4 == 3 {
					h.DeleteMin()
				} else {
					v := uint64(w)<<32 | uint64(i)
					h.Insert(v*2654435761%1_000_003, v)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	phases := []durable.SnapPhase{
		durable.SnapBegin, durable.SnapChunk,
		durable.SnapPreManifest, durable.SnapPostManifest,
	}
	for _, p := range phases {
		if len(captures[p]) == 0 {
			t.Fatalf("phase %d: no captures; raise traffic or lower SnapshotEvery", p)
		}
	}
	for _, p := range phases {
		for i, cap := range captures[p] {
			items, err := durable.ReplayStore(cap)
			if err != nil {
				t.Fatalf("phase %d capture %d: replay failed: %v", p, i, err)
			}
			seen := make(map[pq.KV]bool, len(items))
			for _, it := range items {
				w, seq := it.Value>>32, it.Value&0xffffffff
				if w >= workers || seq >= opsPerWorker || seq%4 == 3 {
					t.Fatalf("phase %d capture %d: phantom item %+v", p, i, it)
				}
				if seen[it] {
					t.Fatalf("phase %d capture %d: item %+v replayed twice", p, i, it)
				}
				seen[it] = true
			}
		}
		t.Logf("phase %d: %d captures replayed cleanly", p, len(captures[p]))
	}
}

// TestSnapshotDoesNotStallProducers parks a snapshot indefinitely at
// SnapPreManifest — chunks written, manifest pending — and proves the
// logging fast path stays open: producers complete a full round of
// acknowledged inserts while the snapshot is frozen mid-flight. Under
// the old seal→drain→write protocol this test deadlocks.
func TestSnapshotDoesNotStallProducers(t *testing.T) {
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{
		Store:         store,
		SnapshotEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	q.SetSnapHook(func(p durable.SnapPhase) {
		if p == durable.SnapPreManifest {
			once.Do(func() {
				close(parked)
				<-release // hold the snapshot here; later snapshots pass
			})
		}
	})

	h := q.Handle()
	// Drive past the cadence so a background snapshot triggers and parks.
	for i := 0; i < 400; i++ {
		h.Insert(uint64(i), uint64(i))
	}
	select {
	case <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("no snapshot reached SnapPreManifest within 10s")
	}

	// The snapshot is frozen mid-flight. Every insert below must commit
	// through the WAL anyway; the watchdog converts a stall into a
	// failure instead of a test timeout.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			h.Insert(uint64(1_000_000 + i), uint64(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		close(release)
		t.Fatal("producers stalled behind a parked snapshot")
	}
	close(release)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacySnapshotMigration recovers a store written by the v1
// monolithic snapshot layout (a single "snap/NNN" blob, no manifest):
// the reader must seed from it, and the next snapshot must rewrite the
// store into the manifest/part layout and delete every legacy key.
func TestLegacySnapshotMigration(t *testing.T) {
	want := []pq.KV{{Key: 3, Value: 30}, {Key: 7, Value: 70}, {Key: 11, Value: 110}}
	store := kv.NewInmem()
	err := store.Update(func(tx kv.Tx) error {
		tx.Set(durable.LegacySnapKey(0), durable.EncodeLegacySnapshot(0, want))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{Store: store})
	if err != nil {
		t.Fatalf("Wrap over legacy store: %v", err)
	}
	h := q.Handle()
	var got []pq.KV
	for {
		k, v, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, pq.KV{Key: k, Value: v})
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	if len(got) != len(want) {
		t.Fatalf("recovered %d items from legacy snapshot, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Re-insert so the upgrade snapshot has content, then snapshot: the
	// store must now hold the manifest layout and zero legacy keys.
	for _, it := range want {
		h.Insert(it.Key, it.Value)
	}
	if err := q.Snapshot(); err != nil {
		t.Fatal(err)
	}
	keys, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	var manifests, parts int
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, "snap/"):
			t.Fatalf("legacy key %s survived the upgrade snapshot", k)
		case strings.HasPrefix(k, "manifest/"):
			manifests++
		case strings.HasPrefix(k, "part/"):
			parts++
		}
	}
	if manifests != 1 || parts != 1 {
		t.Fatalf("after upgrade snapshot: %d manifests, %d parts (want 1, 1); keys: %v",
			manifests, parts, keys)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// And the upgraded store recovers.
	r, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{Store: store})
	if err != nil {
		t.Fatalf("Wrap over upgraded store: %v", err)
	}
	rh := r.Handle()
	n := 0
	for {
		if _, _, ok := rh.DeleteMin(); !ok {
			break
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("upgraded store recovered %d items, want %d", n, len(want))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
