package durable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Options configures a durable wrapper.
type Options struct {
	// Store is the backend to persist through. If nil, Dir must name a
	// directory and a store is opened there per Backend (and owned:
	// Close closes it).
	Store kv.Store
	// Dir is where to open a kv store when Store is nil.
	Dir string
	// Backend selects the store opened at Dir when Store is nil:
	//   ""     — preallocated mmap segments where the platform supports
	//            them, the plain file store otherwise (the default);
	//   "mmap" — preallocated mmap segments, error if unsupported;
	//   "file" — the O_APPEND file store.
	// Anything else is an error.
	Backend string
	// GroupCommitWindow is an optional dally the commit leader takes
	// before claiming the pending buffer, letting more producers join the
	// cohort. Zero (the default) is right for most loads: parked
	// producers pile up behind the in-flight fsync anyway.
	GroupCommitWindow time.Duration
	// SnapshotEvery triggers a concurrent incremental snapshot (seal,
	// fold frozen segments, chunked part write, manifest commit, WAL
	// truncate — producers keep running throughout) every that many
	// logged operations. Zero disables automatic snapshots; Snapshot can
	// still be called explicitly and Close takes a final one.
	SnapshotEvery int
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size. Default 1 MiB.
	SegmentBytes int
	// Naive disables group commit: every operation appends and fsyncs
	// synchronously, serialized. This is the fsync-per-op baseline that
	// EXPERIMENTS.md's durability walkthrough compares group commit
	// against.
	Naive bool
}

// Stats is a telemetry-independent view of the log's work.
type Stats struct {
	Records   uint64 // WAL records appended
	Fsyncs    uint64 // durability barriers issued
	Snapshots uint64 // snapshots taken
}

// Queue wraps an inner pq.Queue with WAL + snapshot durability. Every
// mutating operation applies to the inner queue and appends its logged
// effect to the WAL under one op mutex — so WAL order is operation order,
// the invariant recovery replay is built on — then waits for durability
// outside that mutex, where group commit amortizes the fsync across every
// producer parked on the same ticket.
//
// The wrapper serializes the inner queue. That is deliberate: against a
// real disk the fsync dominates an in-memory queue op by orders of
// magnitude, so the concurrency that matters is overlapping producers'
// *commit waits*, which the op mutex does not cover.
//
// Operations cannot return errors (pq.Handle's contract), so a store
// failure poisons the log sticky and surfaces from Flush-on-handle, Err,
// and Close. After Close, operations are silent no-ops.
type Queue struct {
	inner     pq.Queue
	name      string
	store     kv.Store
	ownStore  bool
	w         *wal
	tel       *telemetry.Shard
	snapEvery int

	mu        sync.Mutex // the op mutex: inner op + WAL append, never the fsync
	h         pq.Handle  // the only handle the inner queue ever sees
	one       [1]pq.KV   // scratch for scalar ops; reused under mu
	opsSince  int
	snapshots atomic.Uint64
	closed    bool
	closeErr  error

	// Snapshot state. snapMu serializes snapshotters (the background
	// goroutine, explicit Snapshot calls, Close's final pass); everything
	// below it is touched only with snapMu held. Producers never take
	// snapMu — a snapshot's only contact with the hot path is the WAL
	// mutex for the instants of the seal.
	snapMu     sync.Mutex
	snapWG     sync.WaitGroup  // in-flight background snapshot
	snapActive atomic.Bool     // a background snapshot is queued/running
	nextSnap   uint64          // next snapshot index to claim
	baseCounts map[pq.KV]int   // live multiset as of baseSeg
	baseSeg    uint64          // first WAL segment not folded into baseCounts
	recoverSeg uint64          // segments below this came from a previous process
	snapHook   func(SnapPhase) // test hook at snapshot phase boundaries

	closeMu sync.Mutex // serializes Close end-to-end (idempotent result)
}

// Wrap opens (or recovers) a durable queue over inner. If the store
// already holds state — a snapshot and/or WAL segments from a previous
// process — it is replayed into inner before the queue accepts
// operations, and logging continues in a fresh WAL segment (recovered
// segments are never appended to).
func Wrap(inner pq.Queue, opts Options) (*Queue, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	store := opts.Store
	own := false
	if store == nil {
		if opts.Dir == "" {
			return nil, fmt.Errorf("durable: Options needs a Store or a Dir")
		}
		var err error
		switch opts.Backend {
		case "", "mmap":
			if kv.MmapSupported {
				store, err = kv.OpenMmap(opts.Dir, opts.SegmentBytes)
				break
			}
			if opts.Backend == "mmap" {
				return nil, fmt.Errorf("durable: backend %q is not supported on this platform", opts.Backend)
			}
			store, err = kv.OpenFile(opts.Dir)
		case "file":
			store, err = kv.OpenFile(opts.Dir)
		default:
			return nil, fmt.Errorf("durable: unknown backend %q (want \"mmap\" or \"file\")", opts.Backend)
		}
		if err != nil {
			return nil, fmt.Errorf("durable: open store: %w", err)
		}
		own = true
	}

	st, err := replayStore(store)
	if err != nil {
		if own {
			store.Close()
		}
		return nil, fmt.Errorf("durable: recover: %w", err)
	}

	tel := telemetry.NewShard()
	name := "dur:" + inner.Name()
	if opts.Naive {
		name = "dur-naive:" + inner.Name()
	}
	q := &Queue{
		inner:      inner,
		name:       name,
		store:      store,
		ownStore:   own,
		w:          newWAL(store, st.nextSeg, opts.Naive, opts.GroupCommitWindow, opts.SegmentBytes, tel),
		tel:        tel,
		snapEvery:  opts.SnapshotEvery,
		h:          inner.Handle(),
		nextSnap:   st.nextSnap,
		baseCounts: st.base,
		baseSeg:    st.baseSeg,
		recoverSeg: st.nextSeg,
	}
	if len(st.items) > 0 {
		if telemetry.Enabled {
			tel.Add(telemetry.DurReplayItems, uint64(len(st.items)))
		}
		for off := 0; off < len(st.items); off += 1 << 12 {
			end := min(off+1<<12, len(st.items))
			chunk := make([]pq.KV, end-off)
			copy(chunk, st.items[off:end]) // InsertN may reorder; keep st.items intact
			pq.InsertN(q.h, chunk)
		}
		pq.Flush(q.h)
	}
	return q, nil
}

// Name implements pq.Queue; the "dur:" prefix keeps durable cells
// distinct in benchmark tables and trend diffs.
func (q *Queue) Name() string { return q.name }

// Handle implements pq.Queue. Durable handles are stateless forwarders —
// all per-op state lives in the Queue, under its op mutex — so any number
// of goroutines get the same durability semantics.
func (q *Queue) Handle() pq.Handle { return &handle{q: q} }

// Err reports the sticky store failure, if any.
func (q *Queue) Err() error {
	q.w.mu.Lock()
	defer q.w.mu.Unlock()
	return q.w.err
}

// Stats reports the log's work so far.
func (q *Queue) Stats() Stats {
	q.w.mu.Lock()
	recs := q.w.appended
	q.w.mu.Unlock()
	return Stats{
		Records:   recs,
		Fsyncs:    q.w.fsyncs.Load(),
		Snapshots: q.snapshots.Load(),
	}
}

// Telemetry exposes the wrapper's counter shard so harnesses can merge it
// into their tables.
func (q *Queue) Telemetry() *telemetry.Shard { return q.tel }

// insertN applies and logs an insert batch; returns the LSN to wait on.
func (q *Queue) insertN(kvs []pq.KV) (uint64, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, false
	}
	pq.InsertN(q.h, kvs) // may reorder kvs; the log wants the multiset, so that's fine
	lsn := q.w.append(recInsert, kvs)
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	return lsn, true
}

// deleteMinN pops up to n items and logs exactly what came out; relaxed
// inner queues pop nondeterministically, so replay re-applies the logged
// effect rather than re-running the op.
func (q *Queue) deleteMinN(dst []pq.KV, n int) (int, uint64, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0, false
	}
	got := pq.DeleteMinN(q.h, dst, n)
	if got == 0 {
		q.mu.Unlock()
		return 0, 0, false // nothing changed, nothing to make durable
	}
	lsn := q.w.append(recDelete, dst[:got])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	return got, lsn, true
}

// maybeSnapshotLocked triggers the periodic snapshot. Called with q.mu
// held, right after an op's record was appended. The snapshot itself
// runs on a background goroutine — the producer that crossed the
// threshold only flips a flag and spawns; it never waits for the
// snapshot, which is the whole point of the concurrent protocol. If a
// snapshot is still in flight when the next threshold is crossed, the
// trigger is skipped (the counter restarts, so pressure just shortens
// the gap to the next attempt).
func (q *Queue) maybeSnapshotLocked() {
	q.opsSince++
	if q.snapEvery <= 0 || q.opsSince < q.snapEvery {
		return
	}
	q.opsSince = 0
	if !q.snapActive.CompareAndSwap(false, true) {
		return
	}
	q.snapWG.Add(1) // under q.mu: Close observes the Add before closed stops new triggers
	go func() {
		defer q.snapWG.Done()
		defer q.snapActive.Store(false)
		q.snapMu.Lock()
		defer q.snapMu.Unlock()
		q.takeSnapshot()
	}()
}

// Snapshot forces a snapshot now and waits for it (tests; pqd's graceful
// drain). Unlike the background trigger it reports the sticky error.
func (q *Queue) Snapshot() error {
	q.snapMu.Lock()
	defer q.snapMu.Unlock()
	q.mu.Lock()
	closed := q.closed
	q.mu.Unlock()
	if closed {
		return q.closeErr
	}
	q.takeSnapshot()
	return q.Err()
}

// Sync makes every operation logged so far durable (graceful drain).
func (q *Queue) Sync() error {
	q.mu.Lock()
	if q.closed {
		err := q.closeErr
		q.mu.Unlock()
		return err
	}
	q.mu.Unlock()
	return q.w.barrier()
}

// Close implements pq.Closer: stops new operations, drains any in-flight
// background snapshot, takes a final synchronous snapshot so the next
// open recovers from a compact store, and releases the backend if this
// wrapper opened it. Idempotent and nil-safe.
func (q *Queue) Close() error {
	if q == nil {
		return nil
	}
	q.closeMu.Lock()
	defer q.closeMu.Unlock()
	q.mu.Lock()
	if q.closed {
		err := q.closeErr
		q.mu.Unlock()
		return err
	}
	q.closed = true
	q.mu.Unlock()
	// No new ops (closed), so no new triggers; wait out the in-flight
	// background snapshot, then take the final one on a quiesced log.
	q.snapWG.Wait()
	q.snapMu.Lock()
	q.takeSnapshot()
	q.snapMu.Unlock()
	err := q.Err()
	if q.ownStore {
		if cerr := q.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	q.mu.Lock()
	q.closeErr = err
	q.mu.Unlock()
	return err
}

// handle forwards to the Queue. Implements the full capability set so
// cpq.Flush/PeekMin/InsertN/DeleteMinN all behave.
type handle struct {
	q *Queue
}

// Insert implements pq.Handle.
func (h *handle) Insert(key, value uint64) {
	q := h.q
	if q.w.naive {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return
		}
		q.one[0] = pq.KV{Key: key, Value: value}
		q.h.Insert(key, value)
		q.w.logNaive(recInsert, q.one[:])
		q.maybeSnapshotLocked()
		q.mu.Unlock()
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.one[0] = pq.KV{Key: key, Value: value}
	q.h.Insert(key, value)
	lsn := q.w.append(recInsert, q.one[:])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	q.w.commitWait(lsn)
}

// DeleteMin implements pq.Handle. The popped pair is logged before the
// caller sees it: by the time DeleteMin returns, the removal is durable —
// a restart cannot resurrect an acknowledged item.
func (h *handle) DeleteMin() (key, value uint64, ok bool) {
	q := h.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0, false
	}
	k, v, ok := q.h.DeleteMin()
	if !ok {
		q.mu.Unlock()
		return 0, 0, false
	}
	q.one[0] = pq.KV{Key: k, Value: v}
	if q.w.naive {
		q.w.logNaive(recDelete, q.one[:])
		q.maybeSnapshotLocked()
		q.mu.Unlock()
		return k, v, true
	}
	lsn := q.w.append(recDelete, q.one[:])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	q.w.commitWait(lsn)
	return k, v, true
}

// InsertN implements pq.BatchInserter: one WAL record, one commit ticket
// for the whole batch.
func (h *handle) InsertN(kvs []pq.KV) {
	if len(kvs) == 0 {
		return
	}
	q := h.q
	for off := 0; off < len(kvs); off += maxBatch {
		end := min(off+maxBatch, len(kvs))
		if q.w.naive {
			q.mu.Lock()
			if q.closed {
				q.mu.Unlock()
				return
			}
			pq.InsertN(q.h, kvs[off:end])
			q.w.logNaive(recInsert, kvs[off:end])
			q.maybeSnapshotLocked()
			q.mu.Unlock()
			continue
		}
		lsn, ok := q.insertN(kvs[off:end])
		if !ok {
			return
		}
		q.w.commitWait(lsn)
	}
}

// DeleteMinN implements pq.BatchDeleter.
func (h *handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n > maxBatch {
		n = maxBatch
	}
	if n == 0 {
		return 0
	}
	q := h.q
	if q.w.naive {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return 0
		}
		got := pq.DeleteMinN(q.h, dst, n)
		if got > 0 {
			q.w.logNaive(recDelete, dst[:got])
			q.maybeSnapshotLocked()
		}
		q.mu.Unlock()
		return got
	}
	got, lsn, ok := q.deleteMinN(dst, n)
	if !ok {
		return 0
	}
	q.w.commitWait(lsn)
	return got
}

// Flush implements pq.Flusher: publish inner buffers and make the log
// durable — the handle-level graceful-drain hook harnesses already call.
func (h *handle) Flush() {
	q := h.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	pq.Flush(q.h)
	q.mu.Unlock()
	q.w.barrier()
}

// PeekMin implements pq.Peeker when the inner structure can peek.
func (h *handle) PeekMin() (key, value uint64, ok bool) {
	q := h.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, 0, false
	}
	if k, v, ok := pq.PeekMin(q.h); ok {
		return k, v, true
	}
	return pq.PeekMin(q.inner)
}
