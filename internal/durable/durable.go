package durable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Options configures a durable wrapper.
type Options struct {
	// Store is the backend to persist through. If nil, Dir must name a
	// directory and an append-safe file store is opened there (and owned:
	// Close closes it).
	Store kv.Store
	// Dir is where to open a kv file store when Store is nil.
	Dir string
	// GroupCommitWindow is an optional dally the commit leader takes
	// before claiming the pending buffer, letting more producers join the
	// cohort. Zero (the default) is right for most loads: parked
	// producers pile up behind the in-flight fsync anyway.
	GroupCommitWindow time.Duration
	// SnapshotEvery takes a snapshot (logged drain, write, truncate WAL)
	// every that many logged operations. Zero disables automatic
	// snapshots; Snapshot can still be called explicitly and Close takes
	// a final one.
	SnapshotEvery int
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size. Default 1 MiB.
	SegmentBytes int
	// Naive disables group commit: every operation appends and fsyncs
	// synchronously, serialized. This is the fsync-per-op baseline that
	// EXPERIMENTS.md's durability walkthrough compares group commit
	// against.
	Naive bool
}

// Stats is a telemetry-independent view of the log's work.
type Stats struct {
	Records   uint64 // WAL records appended
	Fsyncs    uint64 // durability barriers issued
	Snapshots uint64 // snapshots taken
}

// Queue wraps an inner pq.Queue with WAL + snapshot durability. Every
// mutating operation applies to the inner queue and appends its logged
// effect to the WAL under one op mutex — so WAL order is operation order,
// the invariant recovery replay is built on — then waits for durability
// outside that mutex, where group commit amortizes the fsync across every
// producer parked on the same ticket.
//
// The wrapper serializes the inner queue. That is deliberate: against a
// real disk the fsync dominates an in-memory queue op by orders of
// magnitude, so the concurrency that matters is overlapping producers'
// *commit waits*, which the op mutex does not cover.
//
// Operations cannot return errors (pq.Handle's contract), so a store
// failure poisons the log sticky and surfaces from Flush-on-handle, Err,
// and Close. After Close, operations are silent no-ops.
type Queue struct {
	inner     pq.Queue
	name      string
	store     kv.Store
	ownStore  bool
	w         *wal
	tel       *telemetry.Shard
	snapEvery int

	mu        sync.Mutex // the op mutex: inner op + WAL append, never the fsync
	h         pq.Handle  // the only handle the inner queue ever sees
	one       [1]pq.KV   // scratch for scalar ops; reused under mu
	opsSince  int
	nextSnap  uint64
	snapshots atomic.Uint64
	closed    bool
	closeErr  error
	drainBuf  []pq.KV // reused by snapshot drains
}

// Wrap opens (or recovers) a durable queue over inner. If the store
// already holds state — a snapshot and/or WAL segments from a previous
// process — it is replayed into inner before the queue accepts
// operations, and logging continues in a fresh WAL segment (recovered
// segments are never appended to).
func Wrap(inner pq.Queue, opts Options) (*Queue, error) {
	store := opts.Store
	own := false
	if store == nil {
		if opts.Dir == "" {
			return nil, fmt.Errorf("durable: Options needs a Store or a Dir")
		}
		fs, err := kv.OpenFile(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("durable: open file store: %w", err)
		}
		store = fs
		own = true
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}

	st, err := replayStore(store)
	if err != nil {
		if own {
			store.Close()
		}
		return nil, fmt.Errorf("durable: recover: %w", err)
	}

	tel := telemetry.NewShard()
	name := "dur:" + inner.Name()
	if opts.Naive {
		name = "dur-naive:" + inner.Name()
	}
	q := &Queue{
		inner:     inner,
		name:      name,
		store:     store,
		ownStore:  own,
		w:         newWAL(store, st.nextSeg, opts.Naive, opts.GroupCommitWindow, opts.SegmentBytes, tel),
		tel:       tel,
		snapEvery: opts.SnapshotEvery,
		h:         inner.Handle(),
		nextSnap:  st.nextSnap,
	}
	if len(st.items) > 0 {
		if telemetry.Enabled {
			tel.Add(telemetry.DurReplayItems, uint64(len(st.items)))
		}
		for off := 0; off < len(st.items); off += 1 << 12 {
			end := min(off+1<<12, len(st.items))
			chunk := make([]pq.KV, end-off)
			copy(chunk, st.items[off:end]) // InsertN may reorder; keep st.items intact
			pq.InsertN(q.h, chunk)
		}
		pq.Flush(q.h)
	}
	return q, nil
}

// Name implements pq.Queue; the "dur:" prefix keeps durable cells
// distinct in benchmark tables and trend diffs.
func (q *Queue) Name() string { return q.name }

// Handle implements pq.Queue. Durable handles are stateless forwarders —
// all per-op state lives in the Queue, under its op mutex — so any number
// of goroutines get the same durability semantics.
func (q *Queue) Handle() pq.Handle { return &handle{q: q} }

// Err reports the sticky store failure, if any.
func (q *Queue) Err() error {
	q.w.mu.Lock()
	defer q.w.mu.Unlock()
	return q.w.err
}

// Stats reports the log's work so far.
func (q *Queue) Stats() Stats {
	q.w.mu.Lock()
	recs := q.w.appended
	q.w.mu.Unlock()
	return Stats{
		Records:   recs,
		Fsyncs:    q.w.fsyncs.Load(),
		Snapshots: q.snapshots.Load(),
	}
}

// Telemetry exposes the wrapper's counter shard so harnesses can merge it
// into their tables.
func (q *Queue) Telemetry() *telemetry.Shard { return q.tel }

// insertN applies and logs an insert batch; returns the LSN to wait on.
func (q *Queue) insertN(kvs []pq.KV) (uint64, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, false
	}
	pq.InsertN(q.h, kvs) // may reorder kvs; the log wants the multiset, so that's fine
	lsn := q.w.append(recInsert, kvs)
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	return lsn, true
}

// deleteMinN pops up to n items and logs exactly what came out; relaxed
// inner queues pop nondeterministically, so replay re-applies the logged
// effect rather than re-running the op.
func (q *Queue) deleteMinN(dst []pq.KV, n int) (int, uint64, bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0, false
	}
	got := pq.DeleteMinN(q.h, dst, n)
	if got == 0 {
		q.mu.Unlock()
		return 0, 0, false // nothing changed, nothing to make durable
	}
	lsn := q.w.append(recDelete, dst[:got])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	return got, lsn, true
}

// maybeSnapshotLocked triggers the periodic snapshot. Called with q.mu
// held, right after an op's record was appended.
func (q *Queue) maybeSnapshotLocked() {
	q.opsSince++
	if q.snapEvery <= 0 || q.opsSince < q.snapEvery {
		return
	}
	q.snapshotLocked()
}

// snapshotLocked seals the WAL (pending records synced, fresh segment),
// drains the inner queue through its logged batch path, writes the
// snapshot, truncates superseded segments, and reinserts the drained
// items. q.mu held throughout: no operation can interleave, so the
// snapshot is a consistent cut.
func (q *Queue) snapshotLocked() {
	nextSeg, err := q.w.seal()
	if err != nil {
		return // sticky error already recorded; surfaces via Err/Close
	}
	pq.Flush(q.h)
	if cap(q.drainBuf) == 0 {
		q.drainBuf = make([]pq.KV, 4096)
	}
	var items []pq.KV
	for {
		got := pq.DeleteMinN(q.h, q.drainBuf, len(q.drainBuf))
		if got == 0 {
			break
		}
		items = append(items, q.drainBuf[:got]...)
	}
	err = writeSnapshot(q.store, q.nextSnap, nextSeg, items)
	if err != nil {
		q.w.mu.Lock()
		if q.w.err == nil {
			q.w.err = err
		}
		q.w.mu.Unlock()
	} else {
		q.nextSnap++
		q.snapshots.Add(1)
		if telemetry.Enabled {
			q.tel.Inc(telemetry.DurSnapshot)
		}
	}
	// Reinsert whether or not the snapshot landed — the items must stay
	// live either way (on failure the old snapshot + WAL still cover them).
	for off := 0; off < len(items); off += 1 << 12 {
		end := min(off+1<<12, len(items))
		pq.InsertN(q.h, items[off:end])
	}
	q.opsSince = 0
}

// Snapshot forces a snapshot now (tests; pqd's graceful drain).
func (q *Queue) Snapshot() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return q.closeErr
	}
	q.snapshotLocked()
	return q.Err()
}

// Sync makes every operation logged so far durable (graceful drain).
func (q *Queue) Sync() error {
	q.mu.Lock()
	if q.closed {
		err := q.closeErr
		q.mu.Unlock()
		return err
	}
	q.mu.Unlock()
	return q.w.barrier()
}

// Close implements pq.Closer: syncs the log, takes a final snapshot so
// the next open recovers from a compact store, and releases the backend
// if this wrapper opened it. Idempotent and nil-safe.
func (q *Queue) Close() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return q.closeErr
	}
	q.closed = true
	q.snapshotLocked()
	q.closeErr = q.Err()
	if q.ownStore {
		if err := q.store.Close(); err != nil && q.closeErr == nil {
			q.closeErr = err
		}
	}
	return q.closeErr
}

// handle forwards to the Queue. Implements the full capability set so
// cpq.Flush/PeekMin/InsertN/DeleteMinN all behave.
type handle struct {
	q *Queue
}

// Insert implements pq.Handle.
func (h *handle) Insert(key, value uint64) {
	q := h.q
	if q.w.naive {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return
		}
		q.one[0] = pq.KV{Key: key, Value: value}
		q.h.Insert(key, value)
		q.w.logNaive(recInsert, q.one[:])
		q.maybeSnapshotLocked()
		q.mu.Unlock()
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.one[0] = pq.KV{Key: key, Value: value}
	q.h.Insert(key, value)
	lsn := q.w.append(recInsert, q.one[:])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	q.w.commitWait(lsn)
}

// DeleteMin implements pq.Handle. The popped pair is logged before the
// caller sees it: by the time DeleteMin returns, the removal is durable —
// a restart cannot resurrect an acknowledged item.
func (h *handle) DeleteMin() (key, value uint64, ok bool) {
	q := h.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0, false
	}
	k, v, ok := q.h.DeleteMin()
	if !ok {
		q.mu.Unlock()
		return 0, 0, false
	}
	q.one[0] = pq.KV{Key: k, Value: v}
	if q.w.naive {
		q.w.logNaive(recDelete, q.one[:])
		q.maybeSnapshotLocked()
		q.mu.Unlock()
		return k, v, true
	}
	lsn := q.w.append(recDelete, q.one[:])
	q.maybeSnapshotLocked()
	q.mu.Unlock()
	q.w.commitWait(lsn)
	return k, v, true
}

// InsertN implements pq.BatchInserter: one WAL record, one commit ticket
// for the whole batch.
func (h *handle) InsertN(kvs []pq.KV) {
	if len(kvs) == 0 {
		return
	}
	q := h.q
	for off := 0; off < len(kvs); off += maxBatch {
		end := min(off+maxBatch, len(kvs))
		if q.w.naive {
			q.mu.Lock()
			if q.closed {
				q.mu.Unlock()
				return
			}
			pq.InsertN(q.h, kvs[off:end])
			q.w.logNaive(recInsert, kvs[off:end])
			q.maybeSnapshotLocked()
			q.mu.Unlock()
			continue
		}
		lsn, ok := q.insertN(kvs[off:end])
		if !ok {
			return
		}
		q.w.commitWait(lsn)
	}
}

// DeleteMinN implements pq.BatchDeleter.
func (h *handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n > maxBatch {
		n = maxBatch
	}
	if n == 0 {
		return 0
	}
	q := h.q
	if q.w.naive {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return 0
		}
		got := pq.DeleteMinN(q.h, dst, n)
		if got > 0 {
			q.w.logNaive(recDelete, dst[:got])
			q.maybeSnapshotLocked()
		}
		q.mu.Unlock()
		return got
	}
	got, lsn, ok := q.deleteMinN(dst, n)
	if !ok {
		return 0
	}
	q.w.commitWait(lsn)
	return got
}

// Flush implements pq.Flusher: publish inner buffers and make the log
// durable — the handle-level graceful-drain hook harnesses already call.
func (h *handle) Flush() {
	q := h.q
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	pq.Flush(q.h)
	q.mu.Unlock()
	q.w.barrier()
}

// PeekMin implements pq.Peeker when the inner structure can peek.
func (h *handle) PeekMin() (key, value uint64, ok bool) {
	q := h.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, 0, false
	}
	if k, v, ok := pq.PeekMin(q.h); ok {
		return k, v, true
	}
	return pq.PeekMin(q.inner)
}
