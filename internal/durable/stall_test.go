package durable_test

import (
	"sort"
	"testing"
	"time"

	"cpq/internal/durable"
)

// measureInsertP99 runs n acknowledged inserts against a durable queue
// on a real store under dir and returns the p50/p99 per-insert latency.
func measureInsertP99(t *testing.T, dir string, snapshotEvery, n int) (p50, p99 time.Duration) {
	t.Helper()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{
		Dir:           dir,
		SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := q.Handle()
	lat := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		v := uint64(i)
		start := time.Now()
		h.Insert(v*2654435761%1_000_003, v)
		lat[i] = time.Since(start)
	}
	q.DrainSnapshots()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[n/2], lat[n*99/100]
}

// TestSnapshotStallP99 is the producer-stall measurement EXPERIMENTS.md
// quotes: p99 acknowledged-insert latency with snapshots firing
// constantly versus with snapshots off, on a real store with real
// fsyncs. Under the concurrent snapshot protocol the snapshotter never
// holds the op mutex past one seal, so the two tails must be the same
// order of magnitude; the old seal→drain→write protocol multiplies the
// snapshotting tail by the full drain+write time. The assert is a loose
// 10x (shared-CI timing), the acceptance reading (within 2x) comes from
// the logged numbers on a quiet host.
func TestSnapshotStallP99(t *testing.T) {
	if testing.Short() {
		t.Skip("real fsyncs; skipped in -short")
	}
	const n = 4000
	// Warm once: first-touch costs (directory creation, mapping) land on
	// neither measured run.
	measureInsertP99(t, t.TempDir(), 0, 512)
	steady50, steady99 := measureInsertP99(t, t.TempDir(), 0, n)
	// Every 50 logged ops: snapshots overlap the whole run.
	snap50, snap99 := measureInsertP99(t, t.TempDir(), 50, n)
	t.Logf("steady-state: p50=%v p99=%v", steady50, steady99)
	t.Logf("snapshotting: p50=%v p99=%v (p99 ratio %.2fx)",
		snap50, snap99, float64(snap99)/float64(steady99))
	if snap99 > 10*steady99 {
		t.Errorf("p99 under snapshots = %v, steady = %v: producers are stalling",
			snap99, steady99)
	}
}
