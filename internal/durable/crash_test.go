package durable_test

import (
	"sync"
	"testing"

	"cpq/internal/durable"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// cloneInmem copies a store's full contents into a fresh Inmem — the
// state a process dying at this instant would leave behind.
func cloneInmem(t *testing.T, src *kv.Inmem) *kv.Inmem {
	t.Helper()
	dst := kv.NewInmem()
	keys, err := src.List("")
	if err != nil {
		t.Fatal(err)
	}
	err = dst.Update(func(tx kv.Tx) error {
		for _, k := range keys {
			v, _, err := src.Get(k)
			if err != nil {
				return err
			}
			tx.Set(k, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCrashAtFsyncBoundary drives concurrent producers through a durable
// queue whose WAL crash hook clones the store between the segment write
// and the fsync — the worst possible crash instant: a cohort's records
// are in the log but not yet acknowledged to anyone. Every capture must
// replay cleanly (the tail is at most torn, never corrupt) to a set of
// items that were genuinely produced, with no duplicates.
func TestCrashAtFsyncBoundary(t *testing.T) {
	const (
		workers      = 4
		opsPerWorker = 400
		captureEvery = 8
	)
	store := kv.NewInmem()
	q, err := durable.Wrap(newInner(t, "klsm128"), durable.Options{
		Store:        store,
		SegmentBytes: 1 << 12, // small segments: captures straddle rotations
	})
	if err != nil {
		t.Fatal(err)
	}
	var captures []*kv.Inmem
	var fsyncs int
	var capMu sync.Mutex
	q.SetCrashHook(func() {
		capMu.Lock()
		defer capMu.Unlock()
		fsyncs++
		if fsyncs%captureEvery == 0 && len(captures) < 64 {
			captures = append(captures, cloneInmem(t, store))
		}
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for i := 0; i < opsPerWorker; i++ {
				if i%4 == 3 {
					h.DeleteMin()
				} else {
					v := uint64(w)<<32 | uint64(i)
					h.Insert(v*2654435761%1_000_003, v)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if len(captures) == 0 {
		t.Fatalf("no captures taken in %d fsyncs; lower captureEvery", fsyncs)
	}

	for i, cap := range captures {
		items, err := durable.ReplayStore(cap)
		if err != nil {
			t.Fatalf("capture %d: replay failed: %v", i, err)
		}
		seen := make(map[pq.KV]bool, len(items))
		for _, it := range items {
			w, seq := it.Value>>32, it.Value&0xffffffff
			if w >= workers || seq >= opsPerWorker || seq%4 == 3 {
				t.Fatalf("capture %d: phantom item %+v: no worker produced it", i, it)
			}
			if seen[it] {
				t.Fatalf("capture %d: item %+v replayed twice", i, it)
			}
			seen[it] = true
		}
	}
	t.Logf("%d captures across %d fsyncs replayed cleanly", len(captures), fsyncs)
}
