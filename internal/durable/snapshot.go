package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"cpq/internal/chaos"
	"cpq/internal/durable/kv"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Concurrent incremental snapshots (DESIGN.md §8c).
//
// A snapshot no longer touches the inner queue at all. The snapshotter
// seals the WAL — cutting a fresh segment, so everything below the cut
// is a frozen, fully-synced operation prefix — and computes the live set
// *of that prefix* by folding the frozen segments into a cached multiset
// (baseCounts) that persists between snapshots, so each snapshot only
// reads the segments written since the previous one. The result is
// written as chunked partial-snapshot records under "part/%016x",
// concurrently with live traffic appending to segments at and above the
// cut, then committed with one atomic manifest write and truncated.
// Producers never park for more than one group-commit window: the only
// shared state a snapshot holds is the WAL mutex for the instants of the
// seal's buffer claim.
//
// On-store layout per snapshot index i:
//
//	part/%016x     — appended chunks, each a kind-4 WAL-framed record of
//	                 up to snapChunkItems (key,value) pairs; synced
//	                 before the manifest commits
//	manifest/%016x — u64 nextSeg (first segment NOT covered), u64 count
//	                 (total pairs across the chunks), u32 CRC-32/IEEE;
//	                 written with kv.Update, i.e. atomically — this
//	                 write IS the commit point
//
// Recovery trusts a part only through its manifest: an orphan part
// (crash before the manifest landed) is garbage, never read and never
// appended to (snapshot indices are claimed past every orphan), and is
// swept by the next successful snapshot's truncate. The legacy
// monolithic "snap/%016x" format from the seal-and-drain era is still
// read for migration but never written.

// SnapPhase identifies a phase boundary of the concurrent snapshot;
// crash-capture tests clone the store at each to prove recovery works
// from every intermediate state.
type SnapPhase int

const (
	// SnapBegin: the WAL is sealed at the cut and the begin marker is in
	// the pending buffer; nothing snapshot-related is on the store yet.
	SnapBegin SnapPhase = iota
	// SnapChunk: at least one partial-snapshot chunk has been appended
	// (not necessarily synced); the manifest does not exist.
	SnapChunk
	// SnapPreManifest: every chunk is written and synced; the manifest
	// write is next. A crash here leaves a complete orphan part.
	SnapPreManifest
	// SnapPostManifest: the manifest is durable — the snapshot is
	// committed — but superseded segments are not yet truncated.
	SnapPostManifest
)

// snapChunkItems is the pair count per partial-snapshot chunk record:
// 16 KiB of pairs per append, small enough to interleave with live
// group commits on the same store, large enough to amortize framing.
const snapChunkItems = 1024

func snapKey(i uint64) string     { return fmt.Sprintf("snap/%016x", i) }
func partKey(i uint64) string     { return fmt.Sprintf("part/%016x", i) }
func manifestKey(i uint64) string { return fmt.Sprintf("manifest/%016x", i) }

// parseIndexed extracts the hex index from a "wal/%016x"-shaped key;
// ok is false for keys this package never wrote.
func parseIndexed(key, prefix string) (uint64, bool) {
	rest, found := strings.CutPrefix(key, prefix)
	if !found || len(rest) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeManifest builds the 20-byte commit record: the first WAL segment
// NOT covered by the snapshot, the total pair count its part must hold,
// and a checksum.
func encodeManifest(nextSeg, count uint64) []byte {
	buf := make([]byte, 0, 8+8+4)
	buf = binary.BigEndian.AppendUint64(buf, nextSeg)
	buf = binary.BigEndian.AppendUint64(buf, count)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeManifest(data []byte) (nextSeg, count uint64, err error) {
	if len(data) != 8+8+4 {
		return 0, 0, fmt.Errorf("%w: manifest is %d bytes, want 20", ErrCorrupt, len(data))
	}
	body, crc := data[:16], binary.BigEndian.Uint32(data[16:])
	if crc32.Checksum(body, crcTable) != crc {
		return 0, 0, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	return binary.BigEndian.Uint64(body), binary.BigEndian.Uint64(body[8:]), nil
}

// flattenCounts expands a live multiset into the deterministic sorted
// item slice every consumer of recovery state relies on.
func flattenCounts(counts map[pq.KV]int) []pq.KV {
	items := make([]pq.KV, 0, len(counts))
	for it, c := range counts {
		for j := 0; j < c; j++ {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Key != items[b].Key {
			return items[a].Key < items[b].Key
		}
		return items[a].Value < items[b].Value
	})
	return items
}

// takeSnapshot runs one concurrent incremental snapshot. Callers hold
// q.snapMu (one snapshotter at a time) and never q.mu — producers run
// freely throughout. Errors poison the WAL sticky, exactly like a failed
// commit; the previous snapshot plus the un-truncated WAL still cover
// every acknowledged item, so a failed snapshot loses nothing.
func (q *Queue) takeSnapshot() {
	snapIdx := q.nextSnap
	cut, err := q.w.seal()
	if err != nil {
		return // sticky error already recorded; surfaces via Err/Close
	}
	q.w.appendMarker(snapIdx, cut)
	q.snapPhase(SnapBegin)

	// Fold the segments frozen since the last snapshot into the cached
	// base multiset. Only segments recovered from a previous process may
	// legally end torn (their tear predates this process's first sync);
	// anything this process sealed is complete or the store is lying.
	if err := foldSegments(q.store, q.baseSeg, cut, q.baseCounts, q.recoverSeg); err != nil {
		q.poison(err)
		return
	}
	q.baseSeg = cut
	items := flattenCounts(q.baseCounts)

	// Write the chunked part concurrently with live traffic. Each chunk
	// is one WAL-framed kind-4 record appended to the part key.
	pk := partKey(snapIdx)
	var chunkBuf []byte
	for off := 0; off < len(items); off += snapChunkItems {
		end := min(off+snapChunkItems, len(items))
		chunkBuf = appendRecord(chunkBuf[:0], recSnapChunk, items[off:end])
		if err := q.store.Append(pk, chunkBuf); err != nil {
			q.poison(err)
			return
		}
		if telemetry.Enabled {
			q.tel.Inc(telemetry.DurSnapChunk)
		}
		if off == 0 {
			q.snapPhase(SnapChunk)
		}
	}
	if len(items) > 0 {
		// Make the chunks durable before the manifest can reference them.
		// This Sync may interleave with a commit leader's — harmless: the
		// store serializes barriers, and an extra fsync of the live WAL
		// segment only makes records durable sooner.
		if err := q.store.Sync(); err != nil {
			q.poison(err)
			return
		}
	}
	q.snapPhase(SnapPreManifest)
	chaos.Perturb(chaos.SnapManifest)

	// The commit point: one atomic manifest write.
	err = q.store.Update(func(tx kv.Tx) error {
		tx.Set(manifestKey(snapIdx), encodeManifest(cut, uint64(len(items))))
		return nil
	})
	if err != nil {
		q.poison(err)
		return
	}
	q.snapPhase(SnapPostManifest)

	// Truncate everything the committed snapshot supersedes: WAL segments
	// below the cut, older manifests and parts (including orphans from
	// failed attempts), and any legacy monolithic snapshots.
	err = q.store.Update(func(tx kv.Tx) error {
		for _, pfx := range []string{"wal/", "manifest/", "part/", "snap/"} {
			keys, err := tx.List(pfx)
			if err != nil {
				return err
			}
			bound := snapIdx
			if pfx == "wal/" {
				bound = cut
			}
			if pfx == "snap/" {
				bound = ^uint64(0) // legacy format: always superseded
			}
			for _, k := range keys {
				if i, ok := parseIndexed(k, pfx); ok && i < bound {
					tx.Delete(k)
				}
			}
		}
		return nil
	})
	if err != nil {
		q.poison(err)
		return
	}
	q.nextSnap = snapIdx + 1
	q.snapshots.Add(1)
	if telemetry.Enabled {
		q.tel.Inc(telemetry.DurSnapshot)
	}
}

// snapPhase fires the test hook, if installed.
func (q *Queue) snapPhase(p SnapPhase) {
	if q.snapHook != nil {
		q.snapHook(p)
	}
}

// poison records a snapshot failure as the WAL's sticky error.
func (q *Queue) poison(err error) {
	q.w.mu.Lock()
	if q.w.err == nil {
		q.w.err = err
	}
	q.w.mu.Unlock()
}

// --- Legacy monolithic snapshot format (read-only, migration) ---------

// encodeSnapshot is the seal-and-drain era's monolithic format, stored
// at "snap/%016x": u64 nextSeg, u32 count, count pairs, u32 CRC. Kept so
// stores written by earlier versions still recover (and so tests can
// fabricate them); never written by the live snapshot path.
func encodeSnapshot(nextSeg uint64, items []pq.KV) []byte {
	buf := make([]byte, 0, 8+4+len(items)*16+4)
	buf = binary.BigEndian.AppendUint64(buf, nextSeg)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		buf = binary.BigEndian.AppendUint64(buf, it.Key)
		buf = binary.BigEndian.AppendUint64(buf, it.Value)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeSnapshot(data []byte) (nextSeg uint64, items []pq.KV, err error) {
	if len(data) < 8+4+4 {
		return 0, nil, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, crc := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	nextSeg = binary.BigEndian.Uint64(body)
	count := int(binary.BigEndian.Uint32(body[8:]))
	if len(body) != 8+4+count*16 {
		return 0, nil, fmt.Errorf("%w: snapshot count %d disagrees with length %d",
			ErrCorrupt, count, len(data))
	}
	items = make([]pq.KV, count)
	for i := range items {
		p := body[8+4+i*16:]
		items[i] = pq.KV{Key: binary.BigEndian.Uint64(p), Value: binary.BigEndian.Uint64(p[8:])}
	}
	return nextSeg, items, nil
}
