package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"cpq/internal/durable/kv"
	"cpq/internal/pq"
)

// Snapshot format (DESIGN.md §8c), stored at "snap/%016x" with a
// monotonically increasing index. All integers big-endian:
//
//	u64 nextSeg — first WAL segment NOT covered by this snapshot; replay
//	              starts there
//	u32 count   — number of live items
//	count × (u64 key, u64 value)
//	u32 crc     — IEEE CRC-32 over everything above
//
// The snapshot/truncate rule: the snapshot is written (durably, via
// kv.Update's set-before-delete ordering) in the same batch that deletes
// the segments below nextSeg and any older snapshots. A crash before the
// batch leaves the old snapshot + full WAL (replay works); a crash after
// leaves the new snapshot + tail (replay works); kv's per-key atomicity
// means no in-between state mixes the two incompatibly — at worst both
// snapshots and all segments coexist, and recovery picks the newest
// snapshot whose segments are present.
func encodeSnapshot(nextSeg uint64, items []pq.KV) []byte {
	buf := make([]byte, 0, 8+4+len(items)*16+4)
	buf = binary.BigEndian.AppendUint64(buf, nextSeg)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		buf = binary.BigEndian.AppendUint64(buf, it.Key)
		buf = binary.BigEndian.AppendUint64(buf, it.Value)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeSnapshot(data []byte) (nextSeg uint64, items []pq.KV, err error) {
	if len(data) < 8+4+4 {
		return 0, nil, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, crc := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	nextSeg = binary.BigEndian.Uint64(body)
	count := int(binary.BigEndian.Uint32(body[8:]))
	if len(body) != 8+4+count*16 {
		return 0, nil, fmt.Errorf("%w: snapshot count %d disagrees with length %d",
			ErrCorrupt, count, len(data))
	}
	items = make([]pq.KV, count)
	for i := range items {
		p := body[8+4+i*16:]
		items[i] = pq.KV{Key: binary.BigEndian.Uint64(p), Value: binary.BigEndian.Uint64(p[8:])}
	}
	return nextSeg, items, nil
}

func snapKey(i uint64) string { return fmt.Sprintf("snap/%016x", i) }

// parseIndexed extracts the hex index from a "wal/%016x" or "snap/%016x"
// key; ok is false for keys this package never wrote.
func parseIndexed(key, prefix string) (uint64, bool) {
	rest, found := strings.CutPrefix(key, prefix)
	if !found || len(rest) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeSnapshot persists items as snapshot snapIdx covering everything
// below nextSeg, and in the same batch truncates the superseded WAL
// segments and older snapshots. kv.Update applies the sets before the
// deletes, so the new snapshot is durable before anything it replaces
// disappears.
func writeSnapshot(store kv.Store, snapIdx, nextSeg uint64, items []pq.KV) error {
	return store.Update(func(tx kv.Tx) error {
		tx.Set(snapKey(snapIdx), encodeSnapshot(nextSeg, items))
		segs, err := tx.List("wal/")
		if err != nil {
			return err
		}
		for _, k := range segs {
			if i, ok := parseIndexed(k, "wal/"); ok && i < nextSeg {
				tx.Delete(k)
			}
		}
		snaps, err := tx.List("snap/")
		if err != nil {
			return err
		}
		for _, k := range snaps {
			if i, ok := parseIndexed(k, "snap/"); ok && i < snapIdx {
				tx.Delete(k)
			}
		}
		return nil
	})
}
