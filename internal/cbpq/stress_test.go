package cbpq

import (
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestRebuildStorm(t *testing.T) {
	// Many workers hammer the head with small keys: the insert buffer
	// fills constantly, forcing concurrent rebuilds racing with deletes.
	q := New()
	const workers = 8
	const perWorker = 5000
	var deleted sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 1)
			for i := 0; i < perWorker; i++ {
				// Keys in a tiny range: everything routes through the head
				// buffer, maximizing rebuild pressure.
				k := uint64(w*perWorker+i)<<8 | r.Uintn(4) // unique, head-dense
				h.Insert(k, k)
				if k2, _, ok := h.DeleteMin(); ok {
					if _, dup := deleted.LoadOrStore(k2, true); dup {
						panic("duplicate delete under rebuild storm")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		if _, dup := deleted.LoadOrStore(k, true); dup {
			t.Fatalf("duplicate delete of %d during drain", k)
		}
	}
	count := 0
	deleted.Range(func(any, any) bool { count++; return true })
	if count != workers*perWorker {
		t.Fatalf("recovered %d of %d items", count, workers*perWorker)
	}
}

func TestHelpPathOnFrozenChunk(t *testing.T) {
	// Drive a chunk to freeze, then verify late operations help complete
	// the transition instead of stalling: exercised implicitly by the
	// storm test, and explicitly here at small scale.
	q := New()
	h := q.Handle()
	for k := uint64(0); k < 3*chunkCap; k++ {
		h.Insert(k, k) // forces rebuild + splits
	}
	d := q.root.Load()
	if len(d.chunks) < 2 {
		t.Fatalf("expected split chunks, have %d", len(d.chunks))
	}
	// Freeze a tail chunk manually and let an insert help.
	c := d.chunks[len(d.chunks)-1]
	c.frozen.Store(true)
	h.Insert(c.maxKey-1, 0) // routes to the frozen chunk; must help + retry
	total := q.Len()
	if total != 3*chunkCap+1 {
		t.Fatalf("Len = %d, want %d", total, 3*chunkCap+1)
	}
}

func TestEmptyAfterConcurrentDrainStaysUsable(t *testing.T) {
	q := New()
	h := q.Handle()
	for round := 0; round < 5; round++ {
		for k := uint64(0); k < 1000; k++ {
			h.Insert(k, k)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := q.Handle()
				for {
					if _, _, ok := h.DeleteMin(); !ok {
						return
					}
				}
			}()
		}
		wg.Wait()
		if _, _, ok := h.DeleteMin(); ok {
			t.Fatalf("round %d: queue not empty after drain", round)
		}
	}
}
