// Package cbpq implements a Chunk-Based Priority Queue after Braginsky,
// Cohen and Petrank (see the paper's Appendix D: "the chunk linked list
// replaces Skiplists and heaps as the backing data structure, and use of
// the more efficient Fetch-And-Add (FAA) instruction is preferred over
// Compare-And-Swap"). The CBPQ "clearly outperforms the other queues in
// mixed workloads" in the original's evaluation, making it a natural
// extension target for this suite.
//
// Structure: an ordered sequence of chunks, each covering a key range.
// The first chunk holds a frozen sorted array consumed through an atomic
// delete index, plus a bounded insert buffer for keys that belong to the
// head range; the remaining chunks are append-only arrays filled through
// fetch-and-add slot claiming. Full chunks split; an exhausted first chunk
// is rebuilt from its live remainder, its buffer, and — when those are
// empty — the next chunk.
//
// All structural transitions follow the original's freeze protocol, made
// deterministic so that concurrent helpers reconstruct identical state:
//
//   - a slot is frozen by CAS (empty→frozen stops late publishes,
//     ready→readyFrozen stops late claims), after which its membership in
//     the rebuilt chunk is fixed and every helper observes the same set;
//   - the first chunk's delete index is frozen by swapping in a sentinel;
//     the pre-freeze value is published once through a dedicated field so
//     every helper cuts the sorted remainder at the same position;
//   - helpers race to install the successor descriptor with a single CAS;
//     losers discard identical work, so no item is lost or duplicated.
//
// # Deviations from the original
//
// The original consumes the first chunk purely by FAA and arranges (via
// eager merging) that the insert buffer never holds the minimum. This
// implementation keeps the buffer visible to delete_min instead: it
// compares the sorted head against the smallest unclaimed buffer item and
// claims whichever is smaller (CAS on the delete index / buffer slot).
// This trades the FAA fast path for a simpler strict design; the freeze
// and split protocols follow the original.
//
// Registry identifier: "cbpq"; strict (cmd/pqverify checks rank 0 within
// stamping slack). In the extension-queue grid of EXPERIMENTS.md it is the
// fastest strict structure, consistent with the original's mixed-workload
// claim.
package cbpq

import (
	"sort"
	"sync/atomic"

	"cpq/internal/pq"
)

const (
	// chunkCap is the capacity of append chunks.
	chunkCap = 256
	// bufCap is the first chunk's insert-buffer capacity; a full buffer
	// triggers a first-chunk rebuild.
	bufCap = 64
	// delSentinel is swapped into the delete index to freeze the first
	// chunk against further deletions.
	delSentinel = int64(1) << 40
)

// Slot states for the freeze protocol.
const (
	slotEmpty       uint32 = iota // claimed by a writer, value not yet published
	slotReady                     // value published, item live
	slotFrozen                    // frozen before publish; writer must retry
	slotClaimed                   // consumed by a delete_min
	slotReadyFrozen               // frozen live item: unclaimable, owned by the rebuild
)

// slotArr is a fixed array of published (key, value) pairs with per-slot
// state words and an FAA-claimed append index.
type slotArr struct {
	next  atomic.Int64 // next free slot (may exceed len)
	state []atomic.Uint32
	keys  []uint64
	vals  []uint64
}

func newSlotArr(n int) *slotArr {
	return &slotArr{
		state: make([]atomic.Uint32, n),
		keys:  make([]uint64, n),
		vals:  make([]uint64, n),
	}
}

// append claims a slot and publishes (key, value). It fails if the array
// is full or the slot was frozen before the publish succeeded.
func (a *slotArr) append(key, value uint64) bool {
	idx := a.next.Add(1) - 1
	if idx >= int64(len(a.state)) {
		return false
	}
	a.keys[idx] = key
	a.vals[idx] = value
	return a.state[idx].CompareAndSwap(slotEmpty, slotReady)
}

// appendUnpublished fills a slot of a thread-private array (used while
// constructing replacement chunks before they are published).
func (a *slotArr) appendUnpublished(key, value uint64) {
	idx := a.next.Add(1) - 1
	a.keys[idx] = key
	a.vals[idx] = value
	a.state[idx].Store(slotReady)
}

// freezeAndCollect drives every slot to a frozen state and returns the
// live items. Deterministic across concurrent helpers: each slot's
// membership is fixed by the first state transition that freezes it, and
// later helpers observe the same outcome.
func (a *slotArr) freezeAndCollect() []pq.Item {
	var out []pq.Item
	for i := range a.state {
		for {
			switch a.state[i].Load() {
			case slotEmpty:
				if !a.state[i].CompareAndSwap(slotEmpty, slotFrozen) {
					continue
				}
			case slotReady:
				if !a.state[i].CompareAndSwap(slotReady, slotReadyFrozen) {
					continue
				}
				out = append(out, pq.Item{Key: a.keys[i], Value: a.vals[i]})
			case slotReadyFrozen:
				out = append(out, pq.Item{Key: a.keys[i], Value: a.vals[i]})
			default: // frozen or claimed
			}
			break
		}
	}
	return out
}

// minReady returns the index and key of the smallest slotReady item, or
// -1 if none is visible.
func (a *slotArr) minReady() (int, uint64) {
	best := -1
	var bestKey uint64
	n := a.next.Load()
	if n > int64(len(a.state)) {
		n = int64(len(a.state))
	}
	for i := int64(0); i < n; i++ {
		if a.state[i].Load() == slotReady {
			if k := a.keys[i]; best < 0 || k < bestKey {
				best, bestKey = int(i), k
			}
		}
	}
	return best, bestKey
}

// claim consumes a specific ready slot. Fails after the slot is frozen.
func (a *slotArr) claim(i int) bool {
	return a.state[i].CompareAndSwap(slotReady, slotClaimed)
}

// chunk is one segment of the key space.
type chunk struct {
	maxKey uint64 // inclusive upper bound of this chunk's range
	frozen atomic.Bool

	// First-chunk state: a sorted array consumed through delIdx, plus the
	// insert buffer. Regular chunks leave sorted nil and use arr.
	sorted   []pq.Item
	delIdx   atomic.Int64
	frozenDi atomic.Int64 // pre-freeze delIdx, published once (-1 = not yet)
	buf      *slotArr

	// Regular-chunk state: FAA-filled append array.
	arr *slotArr
}

func newFirstChunk(items []pq.Item, maxKey uint64) *chunk {
	c := &chunk{maxKey: maxKey, sorted: items, buf: newSlotArr(bufCap)}
	c.frozenDi.Store(-1)
	return c
}

func newAppendChunk(maxKey uint64, capacity int) *chunk {
	return &chunk{maxKey: maxKey, arr: newSlotArr(capacity)}
}

// isFirstStyle reports whether the chunk uses first-chunk state.
func (c *chunk) isFirstStyle() bool { return c.arr == nil }

// desc is the atomically published queue descriptor: chunks in ascending
// range order; chunks[0] is the first chunk; the last chunk has
// maxKey == MaxUint64.
type desc struct {
	chunks []*chunk
}

// find returns the chunk whose range contains key.
func (d *desc) find(key uint64) *chunk {
	lo, hi := 0, len(d.chunks)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.chunks[mid].maxKey < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d.chunks[lo]
}

// Queue is a chunk-based priority queue.
type Queue struct {
	root atomic.Pointer[desc]
}

var _ pq.Queue = (*Queue)(nil)

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	q.root.Store(&desc{chunks: []*chunk{newFirstChunk(nil, ^uint64(0))}})
	return q
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "cbpq" }

// Handle implements pq.Queue. The queue keeps no thread-local state, so
// the queue itself backs the handle.
func (q *Queue) Handle() pq.Handle { return (*handle)(q) }

type handle Queue

var _ pq.Handle = (*handle)(nil)

// Insert implements pq.Handle.
func (h *handle) Insert(key, value uint64) {
	q := (*Queue)(h)
	for {
		d := q.root.Load()
		c := d.find(key)
		if c.frozen.Load() {
			q.help(d, c)
			continue
		}
		if c.isFirstStyle() {
			if c.buf.append(key, value) {
				return
			}
			// Buffer full or frozen: rebuild the head and retry.
			q.rebuildFirst(d)
			continue
		}
		if c.arr.append(key, value) {
			return
		}
		// Chunk full or frozen: split it and retry.
		q.split(d, c)
	}
}

// DeleteMin implements pq.Handle.
func (h *handle) DeleteMin() (key, value uint64, ok bool) {
	q := (*Queue)(h)
	for {
		d := q.root.Load()
		first := d.chunks[0]
		if first.frozen.Load() {
			q.help(d, first)
			continue
		}
		bi, bkey := first.buf.minReady()
		di := first.delIdx.Load()
		sortedLive := di >= 0 && di < int64(len(first.sorted))
		switch {
		case sortedLive && (bi < 0 || first.sorted[di].Key <= bkey):
			if first.delIdx.CompareAndSwap(di, di+1) {
				it := first.sorted[di]
				return it.Key, it.Value, true
			}
		case bi >= 0:
			if first.buf.claim(bi) {
				return bkey, first.buf.vals[bi], true
			}
		default:
			if first.frozen.Load() {
				continue // a rebuild started mid-check; retry on new state
			}
			if len(d.chunks) == 1 {
				// Head empty and no other chunks: re-check once more to
				// close the window against a racing buffer insert.
				if bi2, _ := first.buf.minReady(); bi2 >= 0 {
					continue
				}
				if di2 := first.delIdx.Load(); di2 >= 0 && di2 < int64(len(first.sorted)) {
					continue
				}
				return 0, 0, false
			}
			// Head exhausted but more chunks exist: pull them in.
			q.rebuildFirst(d)
		}
	}
}

// help completes the transition a frozen chunk is part of.
func (q *Queue) help(d *desc, c *chunk) {
	if c == d.chunks[0] {
		q.rebuildFirst(d)
	} else {
		q.split(d, c)
	}
}

// rebuildFirst freezes the first chunk and publishes a new head built from
// the chunk's live remainder and buffer, pulling in the next chunk when the
// head is otherwise empty. Concurrent helpers reconstruct identical state;
// one root CAS wins.
func (q *Queue) rebuildFirst(d *desc) {
	first := d.chunks[0]
	first.frozen.Store(true)
	// Freeze deletions and publish the cut position exactly once.
	old := first.delIdx.Swap(delSentinel)
	if old < delSentinel {
		first.frozenDi.CompareAndSwap(-1, old)
	}
	var cut int64
	for {
		if cut = first.frozenDi.Load(); cut >= 0 {
			break
		}
		// The first swapper publishes immediately after its swap; spin the
		// few cycles until it lands.
	}
	if cut > int64(len(first.sorted)) {
		cut = int64(len(first.sorted))
	}
	live := append([]pq.Item(nil), first.sorted[cut:]...)
	live = append(live, first.buf.freezeAndCollect()...)

	maxKey := first.maxKey
	rest := d.chunks[1:]
	if len(live) == 0 && len(rest) > 0 {
		// Pull the next chunk into the head.
		next := rest[0]
		next.frozen.Store(true)
		live = next.arr.freezeAndCollect()
		maxKey = next.maxKey
		rest = rest[1:]
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Key < live[j].Key })

	// Keep the head small: a huge head makes every buffer-full rebuild
	// copy O(n). Spill the tail of an oversized head into append chunks,
	// exactly the chunked layout the original maintains.
	head, tail := splitHead(live, maxKey)

	nd := &desc{chunks: make([]*chunk, 0, len(rest)+1+len(tail))}
	nd.chunks = append(nd.chunks, head)
	nd.chunks = append(nd.chunks, tail...)
	nd.chunks = append(nd.chunks, rest...)
	q.root.CompareAndSwap(d, nd)
	// Losers of the CAS discard work identical to the winner's.
}

// splitHead builds the new first chunk from sorted live items, spilling
// anything beyond ~chunkCap into append chunks. Chunk boundaries always
// separate distinct keys so the range tiling stays exact; a run of equal
// keys is never split across chunks.
func splitHead(live []pq.Item, regionMax uint64) (*chunk, []*chunk) {
	if len(live) <= 2*chunkCap {
		return newFirstChunk(live, regionMax), nil
	}
	cut := chunkCap
	for cut < len(live) && live[cut-1].Key == live[cut].Key {
		cut++
	}
	if cut >= len(live) {
		return newFirstChunk(live, regionMax), nil
	}
	head := newFirstChunk(live[:cut:cut], live[cut-1].Key)
	var tail []*chunk
	rest := live[cut:]
	for len(rest) > 0 {
		end := chunkCap
		if end > len(rest) {
			end = len(rest)
		}
		for end < len(rest) && rest[end-1].Key == rest[end].Key {
			end++
		}
		maxK := regionMax
		if end < len(rest) {
			maxK = rest[end-1].Key
		}
		c := newAppendChunk(maxK, max(chunkCap, 2*end))
		for _, it := range rest[:end] {
			c.arr.appendUnpublished(it.Key, it.Value)
		}
		tail = append(tail, c)
		rest = rest[end:]
	}
	return head, tail
}

// split freezes a full append chunk and replaces it with two half chunks
// (or one bigger chunk when every key is identical and a range split is
// impossible).
func (q *Queue) split(d *desc, c *chunk) {
	c.frozen.Store(true)
	items := c.arr.freezeAndCollect()
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })

	idx := -1
	for i, cc := range d.chunks {
		if cc == c {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // chunk no longer in the current descriptor
	}

	repl := buildSplit(items, c.maxKey)
	nd := &desc{chunks: make([]*chunk, 0, len(d.chunks)+1)}
	nd.chunks = append(nd.chunks, d.chunks[:idx]...)
	nd.chunks = append(nd.chunks, repl...)
	nd.chunks = append(nd.chunks, d.chunks[idx+1:]...)
	q.root.CompareAndSwap(d, nd)
}

// buildSplit constructs the replacement chunks for a frozen chunk's sorted
// items. The split point must separate distinct keys so the range tiling
// stays exact.
func buildSplit(items []pq.Item, maxKey uint64) []*chunk {
	n := len(items)
	if n >= 2 {
		// Find a boundary near the middle where keys differ.
		mid := n / 2
		lo, hi := mid, mid
		for lo > 0 && items[lo-1].Key == items[lo].Key {
			lo--
		}
		for hi < n && items[hi-1].Key == items[hi].Key {
			hi++
		}
		switch {
		case lo > 0:
			mid = lo
		case hi < n:
			mid = hi
		default:
			mid = 0 // all keys identical
		}
		if mid > 0 {
			a := newAppendChunk(items[mid-1].Key, max(chunkCap, 2*mid))
			for _, it := range items[:mid] {
				a.arr.appendUnpublished(it.Key, it.Value)
			}
			b := newAppendChunk(maxKey, max(chunkCap, 2*(n-mid)))
			for _, it := range items[mid:] {
				b.arr.appendUnpublished(it.Key, it.Value)
			}
			return []*chunk{a, b}
		}
	}
	// Too few items or all keys identical: one chunk with room to grow.
	c := newAppendChunk(maxKey, max(chunkCap, 2*n))
	for _, it := range items {
		c.arr.appendUnpublished(it.Key, it.Value)
	}
	return []*chunk{c}
}

// Len counts live items (O(n); tests only).
func (q *Queue) Len() int {
	d := q.root.Load()
	total := 0
	for i, c := range d.chunks {
		if i == 0 {
			di := c.delIdx.Load()
			if di < 0 {
				di = 0
			}
			if di < int64(len(c.sorted)) {
				total += len(c.sorted) - int(di)
			}
			for j := range c.buf.state {
				s := c.buf.state[j].Load()
				if s == slotReady || s == slotReadyFrozen {
					total++
				}
			}
			continue
		}
		n := c.arr.next.Load()
		if n > int64(len(c.arr.state)) {
			n = int64(len(c.arr.state))
		}
		for j := int64(0); j < n; j++ {
			s := c.arr.state[j].Load()
			if s == slotReady || s == slotReadyFrozen {
				total++
			}
		}
	}
	return total
}
