package cbpq

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"cpq/internal/pq"
	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New()
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if q.Name() != "cbpq" {
		t.Fatalf("name = %q", q.Name())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSequentialOrder(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(1)
	const n = 10000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 5000
		want[i] = k
		h.Insert(k, k+9)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want[i] || v != k+9 {
			t.Fatalf("deletion %d = %d/%d/%v, want %d", i, k, v, ok, want[i])
		}
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("not empty after drain")
	}
}

func TestInterleavedSmallKeys(t *testing.T) {
	// Small keys always route through the head buffer; deletions must see
	// them immediately even while the sorted array holds larger keys.
	q := New()
	h := q.Handle()
	for k := uint64(1000); k < 2000; k++ {
		h.Insert(k, 0)
	}
	h.Insert(5, 50)
	if k, v, _ := h.DeleteMin(); k != 5 || v != 50 {
		t.Fatalf("got %d/%d, want 5/50", k, v)
	}
	if k, _, _ := h.DeleteMin(); k != 1000 {
		t.Fatalf("got %d, want 1000", k)
	}
}

func TestDuplicateKeysHeavy(t *testing.T) {
	// 8-bit keys over many items: exercises the all-equal split fallback.
	q := New()
	h := q.Handle()
	r := rng.New(2)
	const n = 20000
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		k := r.Uint64() % 8 // extremely heavy duplication
		counts[k]++
		h.Insert(k, k)
	}
	got := map[uint64]int{}
	var prev uint64
	for i := 0; i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("empty at %d", i)
		}
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		got[k]++
	}
	for k, c := range counts {
		if got[k] != c {
			t.Fatalf("key %d: inserted %d, deleted %d", k, c, got[k])
		}
	}
}

func TestAscendingKeysSplitChunks(t *testing.T) {
	q := New()
	h := q.Handle()
	const n = 50000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	if nchunks := len(q.root.Load().chunks); nchunks < 3 {
		t.Fatalf("only %d chunks after %d ascending inserts", nchunks, n)
	}
	for i := uint64(0); i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != i {
			t.Fatalf("deletion %d = %d/%v", i, k, ok)
		}
	}
}

func TestRangeTilingInvariant(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(3)
	for i := 0; i < 30000; i++ {
		h.Insert(r.Uint64()%100000, 0)
		if i%5 == 0 {
			h.DeleteMin()
		}
	}
	d := q.root.Load()
	// maxKeys strictly ascending, last = MaxUint64, every item within range.
	for i := 1; i < len(d.chunks); i++ {
		if d.chunks[i-1].maxKey >= d.chunks[i].maxKey {
			t.Fatalf("chunk bounds not ascending at %d: %d >= %d",
				i, d.chunks[i-1].maxKey, d.chunks[i].maxKey)
		}
	}
	if last := d.chunks[len(d.chunks)-1].maxKey; last != ^uint64(0) {
		t.Fatalf("last chunk maxKey = %d", last)
	}
	lower := uint64(0)
	for i, c := range d.chunks {
		var items []pq.Item
		if c.isFirstStyle() {
			items = c.sorted
		} else {
			n := c.arr.next.Load()
			if n > int64(len(c.arr.state)) {
				n = int64(len(c.arr.state))
			}
			for j := int64(0); j < n; j++ {
				if c.arr.state[j].Load() == slotReady {
					items = append(items, pq.Item{Key: c.arr.keys[j]})
				}
			}
		}
		for _, it := range items {
			if it.Key > c.maxKey || (i > 0 && it.Key <= lower) {
				t.Fatalf("chunk %d: key %d outside (%d, %d]", i, it.Key, lower, c.maxKey)
			}
		}
		lower = c.maxKey
	}
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	q := New()
	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 71)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], got[i])
		}
	}
}

func TestConcurrentNoDuplicateDeletes(t *testing.T) {
	q := New()
	h := q.Handle()
	const n = 20000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	const workers = 8
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("deleted %d of %d", total, n)
	}
}

func TestQuiescentDrainSorted(t *testing.T) {
	q := New()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 81)
			for i := 0; i < 3000; i++ {
				h.Insert(r.Uint64()%50000, 0)
			}
		}(w)
	}
	wg.Wait()
	h := q.Handle()
	var prev uint64
	first := true
	count := 0
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		if !first && k < prev {
			t.Fatalf("quiescent drain out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
	}
	if count != 18000 {
		t.Fatalf("drained %d of 18000", count)
	}
}

func TestSlotFreezeProtocol(t *testing.T) {
	a := newSlotArr(4)
	if !a.append(10, 100) {
		t.Fatal("append failed")
	}
	items := a.freezeAndCollect()
	if len(items) != 1 || items[0].Key != 10 {
		t.Fatalf("collected %v", items)
	}
	// Second collect sees the same membership.
	if again := a.freezeAndCollect(); len(again) != 1 || again[0] != items[0] {
		t.Fatalf("second collect differs: %v", again)
	}
	// Appends and claims after the freeze must fail.
	if a.append(11, 110) {
		t.Fatal("append succeeded on frozen array")
	}
	if a.claim(0) {
		t.Fatal("claim succeeded on frozen slot")
	}
}

func TestBuildSplitBoundaries(t *testing.T) {
	items := []pq.Item{{Key: 1}, {Key: 2}, {Key: 2}, {Key: 2}, {Key: 3}, {Key: 4}}
	repl := buildSplit(items, ^uint64(0))
	if len(repl) != 2 {
		t.Fatalf("%d replacement chunks", len(repl))
	}
	// No run of equal keys may straddle the boundary.
	if repl[0].maxKey != 2 && repl[0].maxKey != 1 {
		t.Fatalf("boundary %d splits a duplicate run", repl[0].maxKey)
	}
	// All-equal fallback.
	eq := []pq.Item{{Key: 7}, {Key: 7}, {Key: 7}}
	repl = buildSplit(eq, 100)
	if len(repl) != 1 || repl[0].maxKey != 100 {
		t.Fatalf("all-equal split: %d chunks, maxKey %d", len(repl), repl[0].maxKey)
	}
}

func TestBuildSplitTilingProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16, maxRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		items := make([]pq.Item, len(raw))
		var maxItem uint64
		for i, k := range raw {
			items[i] = pq.Item{Key: uint64(k), Value: uint64(i)}
			if uint64(k) > maxItem {
				maxItem = uint64(k)
			}
		}
		sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
		regionMax := maxItem + uint64(maxRaw) + 1
		repl := buildSplit(items, regionMax)
		// Tiling: bounds ascending, last equals regionMax, every item within
		// its chunk's half-open range, no duplicate-key run split.
		if repl[len(repl)-1].maxKey != regionMax {
			return false
		}
		var lower uint64
		count := 0
		for ci, c := range repl {
			if ci > 0 && c.maxKey <= lower {
				return false
			}
			n := c.arr.next.Load()
			for j := int64(0); j < n && j < int64(len(c.arr.keys)); j++ {
				k := c.arr.keys[j]
				if k > c.maxKey || (ci > 0 && k <= lower) {
					return false
				}
				count++
			}
			lower = c.maxKey
		}
		return count == len(items)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitHeadTilingProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		items := make([]pq.Item, len(raw))
		for i, k := range raw {
			items[i] = pq.Item{Key: uint64(k), Value: uint64(i)}
		}
		sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
		const regionMax = ^uint64(0)
		head, tail := splitHead(items, regionMax)
		// Head holds a prefix; tail chunks tile (head.maxKey, regionMax].
		total := len(head.sorted)
		lower := head.maxKey
		for _, it := range head.sorted {
			if it.Key > head.maxKey {
				return false
			}
		}
		for _, c := range tail {
			if c.maxKey <= lower {
				return false
			}
			n := c.arr.next.Load()
			for j := int64(0); j < n && j < int64(len(c.arr.keys)); j++ {
				k := c.arr.keys[j]
				if k <= lower || k > c.maxKey {
					return false
				}
				total++
			}
			lower = c.maxKey
		}
		if len(tail) > 0 && tail[len(tail)-1].maxKey != regionMax {
			return false
		}
		if len(tail) == 0 && head.maxKey != regionMax {
			return false
		}
		return total == len(items)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
