// Package skiplist implements the lock-free skiplist substrate shared by the
// Lindén-Jonsson queue, the SprayList and the Shavit-Lotan queue.
//
// The design follows Harris/Michael and Fraser: a node is deleted by first
// marking its forward pointers (which freezes them) and then swinging the
// predecessor's pointer past it; traversals help complete pending unlinks.
// C and C++ implementations store the mark in a pointer tag bit and CAS the
// tagged word. Go has no tag bits, so nodes live in per-list slabs of
// atomic.Uint64 words and are addressed by 32-bit word index instead of by
// pointer: a forward pointer is a single packed word
//
//	bit 0      mark
//	bits 1-32  successor index (0 = nil)
//
// and a CAS on that word is exactly the C++ tagged-pointer CAS — no
// allocation, no indirection. The level-0 word of a tower additionally
// carries the node's height (bits 33-38) and the claim flag (bit 39) used by
// the queues that delete logically before unlinking, so the whole mutable
// state of a node fits in words the GC never has to trace.
//
// Towers are stored inline and truncated to the drawn height: a node is
// 2 + height words (key, value, tower), ~32 B on average under the
// geometric(1/2) height distribution, and nodes allocated by one handle are
// adjacent in memory — the level-0 dead-prefix walk of the Lindén queue
// reads consecutive cache lines instead of chasing heap pointers.
//
// Freedom from ABA follows from the reclamation rule the k-LSM's itemAlloc
// established (DESIGN.md §4a): slab memory is never reused while the list
// lives, so an index, once linked, refers to the same node forever, and a
// mark, once set, is never cleared. A stale unmarked snapshot can therefore
// only CAS successfully if the word genuinely still holds that value — the
// benign "value ABA" of the original C codebases, in which a successor that
// was unlinked and re-observed is still the same immutable node. The GC
// frees whole slabs when the list itself is dropped, replacing the
// epoch-based reclamation of the originals.
//
// The list is a multiset ordered by key: duplicate keys are allowed and are
// exercised hard by the benchmark's 8-bit key distribution.
package skiplist

import (
	"sync"
	"sync/atomic"

	"cpq/internal/rng"
)

// MaxHeight is the maximum tower height. 2^24 expected items per level-0
// node at the top level comfortably covers the benchmark's prefill plus
// growth.
const MaxHeight = 24

// Arena geometry. Slabs hold 8192 words (64 KiB) each; the slab table is
// sized for 2^27 words (~1 GiB), i.e. on the order of 30M average-height
// nodes over the lifetime of one list — far beyond any benchmark cell.
// Word index 0 is reserved as the nil sentinel and never handed out.
const (
	slabShift = 13
	slabWords = 1 << slabShift
	slabMask  = slabWords - 1
	maxSlabs  = 1 << 14
)

// slab is one bump-allocated block of node words. Every word is atomic:
// keys and values are written before publication and read after an
// acquiring load of a link word, and link words are CASed concurrently.
type slab [slabWords]atomic.Uint64

// Packed forward-pointer layout (see the package comment). The link bits
// (mark + successor index) are common to every tower word; height and claim
// live in the level-0 word only and are preserved by link CASes.
const (
	markBit     = uint64(1)
	idxShift    = 1
	idxMask     = uint64(1)<<32 - 1
	linkMask    = markBit | idxMask<<idxShift
	heightShift = 33
	heightMask  = uint64(0x3f)
	claimedBit  = uint64(1) << 39
)

// packLink packs a (successor index, mark) pair into the link bits.
func packLink(idx uint32, marked bool) uint64 {
	w := uint64(idx) << idxShift
	if marked {
		w |= markBit
	}
	return w
}

// Node is a handle to a skiplist node: the owning list plus the node's slab
// location. It is a small value type (copied freely, usable as a map key);
// the zero Node is the nil sentinel. Key and Value are immutable after
// insertion. Calling methods on the zero Node panics, as dereferencing a
// nil node pointer would.
type Node struct {
	l   *List
	s   *slab
	off uint32
	idx uint32
}

// IsNil reports whether n is the nil sentinel (the zero Node).
func (n Node) IsNil() bool { return n.idx == 0 }

// Index returns the node's arena word index: stable, unique, and never
// reused for the lifetime of the list (the no-reuse rule the ABA argument
// rests on). Index 0 is reserved for the nil sentinel.
func (n Node) Index() uint32 { return n.idx }

// Key returns the node's key.
func (n Node) Key() uint64 { return n.s[n.off].Load() }

// Value returns the node's value.
func (n Node) Value() uint64 { return n.s[n.off+1].Load() }

// word returns the tower word at the given level. Callers must not pass
// level >= Height(): towers are truncated, so the word past the tower
// belongs to the next node in the slab.
func (n Node) word(level int) *atomic.Uint64 {
	return &n.s[n.off+2+uint32(level)]
}

// Height returns the tower height of the node (1..MaxHeight).
func (n Node) Height() int { return int(n.word(0).Load() >> heightShift & heightMask) }

// Next returns the successor and mark of n at the given level.
func (n Node) Next(level int) (succ Node, marked bool) {
	w := n.word(level).Load()
	return n.l.node(uint32(w >> idxShift & idxMask)), w&markBit != 0
}

// Ref is a snapshot of a forward-pointer word. A CAS that passes a Ref
// succeeds only if the word still holds exactly the snapshotted value.
// Because slab words are never recycled and marks are never cleared, the
// only way a stale snapshot can revalidate is benign value ABA: the word
// again names the same immutable, still-unmarked successor, which is
// indistinguishable from the snapshot being fresh (the classic Harris
// argument for tagged-pointer CASes under no-reuse reclamation). This gives
// callers validated link updates, which the Lindén-Jonsson insert path
// relies on to splice in front of a dead prefix without re-scanning.
type Ref struct {
	l *List
	w uint64
}

// LoadRef atomically snapshots n's forward pointer at level.
func (n Node) LoadRef(level int) Ref { return Ref{l: n.l, w: n.word(level).Load()} }

// Node returns the successor recorded in the snapshot.
func (r Ref) Node() Node { return r.l.node(uint32(r.w >> idxShift & idxMask)) }

// Marked reports the mark recorded in the snapshot.
func (r Ref) Marked() bool { return r.w&markBit != 0 }

// CASRef replaces n's forward pointer at level with (succ, marked), provided
// the word is still exactly the snapshot old. Non-link bits (height, claim)
// are validated along with the link: a concurrent claim makes the snapshot
// stale, which callers handle as an ordinary lost CAS.
func (n Node) CASRef(level int, old Ref, succ Node, marked bool) bool {
	return n.word(level).CompareAndSwap(old.w, old.w&^linkMask|packLink(succ.idx, marked))
}

// SetNext unconditionally stores (succ, marked) into n's forward pointer at
// level. Only valid while n is thread-private (during node construction).
func (n Node) SetNext(level int, succ Node, marked bool) {
	w := n.word(level)
	w.Store(w.Load()&^linkMask | packLink(succ.idx, marked))
}

// CASNext replaces n's forward pointer at level from (oldSucc, oldMarked) to
// (newSucc, newMarked). It is the raw CAS used by the queue algorithms; it
// validates the link bits only, retrying internally if a concurrent claim
// flips a non-link bit between load and CAS.
func (n Node) CASNext(level int, oldSucc Node, oldMarked bool, newSucc Node, newMarked bool) bool {
	w := n.word(level)
	oldLink := packLink(oldSucc.idx, oldMarked)
	newLink := packLink(newSucc.idx, newMarked)
	for {
		old := w.Load()
		if old&linkMask != oldLink {
			return false
		}
		if w.CompareAndSwap(old, old&^linkMask|newLink) {
			return true
		}
	}
}

// TryMarkNext marks n's forward pointer at level, expecting successor succ.
// Marking level 0 logically deletes the node in the Lindén-Jonsson scheme.
func (n Node) TryMarkNext(level int, succ Node) bool {
	return n.CASNext(level, succ, false, succ, true)
}

// MarkTower marks every level of n's tower top-down (idempotent). After
// MarkTower returns, no new node can ever be linked after n, so traversals
// can safely unlink it at every level.
func (n Node) MarkTower() {
	for level := n.Height() - 1; level >= 0; level-- {
		w := n.word(level)
		for {
			old := w.Load()
			if old&markBit != 0 {
				break
			}
			if w.CompareAndSwap(old, old|markBit) {
				break
			}
		}
	}
}

// TryClaim atomically claims the node for logical deletion (the claim bit
// in the level-0 word). Only one caller ever wins the claim of a given node.
func (n Node) TryClaim() bool {
	w := n.word(0)
	for {
		old := w.Load()
		if old&claimedBit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|claimedBit) {
			return true
		}
	}
}

// IsClaimed reports whether the node has been logically deleted via claim.
func (n Node) IsClaimed() bool { return n.word(0).Load()&claimedBit != 0 }

// DeletedAt0 reports whether the node's level-0 forward pointer is marked,
// i.e. the node is logically deleted in the Lindén-Jonsson sense.
func (n Node) DeletedAt0() bool { return n.word(0).Load()&markBit != 0 }

// List is a lock-free skiplist multiset backed by a private word arena.
type List struct {
	slabs    []atomic.Pointer[slab]
	nextSlab atomic.Uint32
	head     Node
	mu       sync.Mutex // guards seed, the convenience allocator
	seed     Handle
}

// New returns an empty list. The head sentinel takes index 1 (index 0 is
// the nil sentinel).
func New() *List {
	l := &List{slabs: make([]atomic.Pointer[slab], maxSlabs)}
	l.seed = Handle{l: l, off: slabWords}
	l.head = l.seed.NewNode(0, 0, MaxHeight)
	return l
}

// Head returns the head sentinel. Its key is meaningless and it is never
// deleted; queue algorithms start their scans from it.
func (l *List) Head() Node { return l.head }

// node resolves an arena index to a Node handle; index 0 is the nil Node.
func (l *List) node(idx uint32) Node {
	if idx == 0 {
		return Node{}
	}
	return Node{l: l, s: l.slabs[idx>>slabShift].Load(), off: idx & slabMask, idx: idx}
}

// Handle is a per-goroutine bump allocator over the list's arena. Each
// handle owns the slab it is currently filling, so allocation is a pointer
// bump with no synchronization; grabbing a fresh slab (one 64 KiB
// allocation per ~2000 average-height nodes) is the only allocating step,
// which is what keeps Insert at <=1 alloc/op amortized.
type Handle struct {
	l    *List
	s    *slab
	base uint32
	off  uint32
}

// NewHandle returns a fresh allocator handle for one goroutine.
func (l *List) NewHandle() *Handle { return &Handle{l: l, off: slabWords} }

// NewNode allocates an unlinked node with the given tower height for queue
// algorithms that perform their own linking (Lindén-Jonsson insert). The
// tower is born (nil, unmarked, unclaimed) — slab words are never reused,
// so the fresh slab's zero words are already the correct initial state.
func (h *Handle) NewNode(key, value uint64, height int) Node {
	need := uint32(2 + height)
	if h.off+need > slabWords {
		h.refill()
	}
	off := h.off
	h.off += need
	s := h.s
	s[off].Store(key)
	s[off+1].Store(value)
	s[off+2].Store(uint64(height) << heightShift)
	return Node{l: h.l, s: s, off: off, idx: h.base + off}
}

// refill grabs the next whole slab for this handle. The tail of the
// previous slab is abandoned (bounded waste per handle, never per op).
func (h *Handle) refill() {
	j := h.l.nextSlab.Add(1) - 1
	if j >= maxSlabs {
		panic("skiplist: arena exhausted (2^27 words per list); this list has outlived its design envelope")
	}
	s := new(slab)
	h.l.slabs[j].Store(s)
	h.s = s
	h.base = j << slabShift
	h.off = 0
	if j == 0 {
		h.off = 1 // index 0 is the nil sentinel; never hand it out
	}
}

// Insert links a new node allocated from this handle; see List.Insert for
// the linking contract.
func (h *Handle) Insert(key, value uint64, height int) Node {
	n := h.NewNode(key, value, height)
	h.l.link(n, key, height)
	return n
}

// RandomHeight draws a tower height from the geometric(1/2) distribution
// capped at MaxHeight, using the caller's generator.
func RandomHeight(r *rng.Xoroshiro) int {
	h := 1
	// Each bit of a 64-bit word is an unbiased coin.
	bits := r.Uint64()
	for h < MaxHeight && bits&1 == 1 {
		h++
		bits >>= 1
	}
	return h
}

// Find locates the insertion window for key: preds[i] is the last node at
// level i with key strictly smaller than key (or the head), succs[i] the
// node following it. Marked nodes encountered on the way are helped out of
// the list (Harris-Michael physical deletion). The arrays must have length
// MaxHeight.
func (l *List) Find(key uint64, preds, succs *[MaxHeight]Node) {
retry:
	for {
		pred := l.head
		for level := MaxHeight - 1; level >= 0; level-- {
			curr, _ := pred.Next(level)
			for !curr.IsNil() {
				succ, marked := curr.Next(level)
				for marked {
					// curr is deleted at this level: unlink it.
					if !pred.CASNext(level, curr, false, succ, false) {
						continue retry
					}
					curr = succ
					if curr.IsNil() {
						break
					}
					succ, marked = curr.Next(level)
				}
				if curr.IsNil() || curr.Key() >= key {
					break
				}
				pred = curr
				curr = succ
			}
			preds[level] = pred
			succs[level] = curr
		}
		return
	}
}

// FindNoHelp is like Find but never unlinks marked nodes; it simply skips
// them. The Lindén-Jonsson delete path uses it so that logical deletions do
// not immediately trigger physical restructuring (the batching that gives
// that queue its low memory contention).
func (l *List) FindNoHelp(key uint64, preds, succs *[MaxHeight]Node) {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		curr, _ := pred.Next(level)
		for !curr.IsNil() {
			succ, marked := curr.Next(level)
			if marked {
				// Skip over the logically deleted node without helping.
				curr = succ
				continue
			}
			if curr.Key() >= key {
				break
			}
			pred = curr
			curr = succ
		}
		preds[level] = pred
		succs[level] = curr
	}
}

// Insert links a new node with the given key, value and tower height and
// returns it. Duplicate keys are allowed; the new node is placed before the
// first existing node with an equal or larger key at level 0.
//
// Allocation goes through the list's internal mutex-guarded handle, so
// Insert is safe to call from multiple goroutines; the linking itself is
// lock-free. Hot paths should allocate through a per-goroutine Handle
// instead and pay no lock at all.
func (l *List) Insert(key, value uint64, height int) Node {
	l.mu.Lock()
	n := l.seed.NewNode(key, value, height)
	l.mu.Unlock()
	l.link(n, key, height)
	return n
}

// link splices an allocated node into the list. The structure is the
// standard lock-free skiplist add (Fraser; Herlihy & Shavit): link level 0
// first (the linearization point), then raise the tower level by level,
// refreshing the window with Find after a failed CAS and abandoning the
// raise if the node is deleted concurrently.
func (l *List) link(n Node, key uint64, height int) {
	var preds, succs [MaxHeight]Node
	l.linkWindow(n, key, height, &preds, &succs, false)
}

// linkWindow is link operating on a caller-supplied search window. When
// seeded is true, preds must hold at every level a node (or the head, or
// the nil Node meaning head) with key strictly smaller than key that was
// linked at that level when captured — a previous, smaller key's window.
// The search then resumes from those seeds (FindFrom) instead of
// re-descending from the head, which is the batch-insert amortization:
// sorted consecutive keys pay one full descent for the whole run. On
// return the arrays hold the window used for this key, ready to seed the
// next one.
func (l *List) linkWindow(n Node, key uint64, height int, preds, succs *[MaxHeight]Node, seeded bool) {
	for {
		if seeded {
			l.FindFrom(key, preds, succs)
		} else {
			l.Find(key, preds, succs)
			seeded = true
		}
		// Prepare the whole tower, then link the bottom level; a successful
		// bottom-level CAS makes the node logically present.
		for i := 0; i < height; i++ {
			n.SetNext(i, succs[i], false)
		}
		if preds[0].CASNext(0, succs[0], false, n, false) {
			break
		}
	}
	// Raise the tower. Abandoning early is benign: the node remains
	// findable through level 0, it just has a shorter effective tower.
	for level := 1; level < height; level++ {
		for {
			r := n.LoadRef(level)
			if r.Marked() {
				return // node was deleted while being raised
			}
			if r.Node() != succs[level] {
				if !n.CASRef(level, r, succs[level], false) {
					return // became marked meanwhile
				}
			}
			if preds[level].CASNext(level, succs[level], false, n, false) {
				break
			}
			l.FindFrom(key, preds, succs)
		}
	}
}

// Unlink physically removes a node whose tower has been fully marked
// (MarkTower must have been called). It is implemented as a Find for the
// node's key, which performs the actual unlinking as helping.
func (l *List) Unlink(n Node) {
	var preds, succs [MaxHeight]Node
	l.Find(n.Key(), &preds, &succs)
}

// FirstLive returns the first node at level 0 that is neither claimed nor
// marked at level 0, or the nil Node. Used by tests and by strict
// delete-min scans.
func (l *List) FirstLive() Node {
	curr, _ := l.head.Next(0)
	for !curr.IsNil() {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			return curr
		}
		curr, _ = curr.Next(0)
	}
	return Node{}
}

// CountLive walks level 0 and counts nodes that are neither claimed nor
// level-0-marked. O(n); intended for tests and debugging only.
func (l *List) CountLive() int {
	n := 0
	curr, _ := l.head.Next(0)
	for !curr.IsNil() {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			n++
		}
		curr, _ = curr.Next(0)
	}
	return n
}

// CollectLive returns the (key, value) pairs of all live nodes in key order.
// O(n); for tests and draining.
func (l *List) CollectLive() (keys, values []uint64) {
	curr, _ := l.head.Next(0)
	for !curr.IsNil() {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			keys = append(keys, curr.Key())
			values = append(values, curr.Value())
		}
		curr, _ = curr.Next(0)
	}
	return
}
