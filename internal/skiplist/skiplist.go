// Package skiplist implements the lock-free skiplist substrate shared by the
// Lindén-Jonsson queue, the SprayList and the Shavit-Lotan queue.
//
// The design follows Harris/Michael and Fraser: a node is deleted by first
// marking its forward pointers (which freezes them) and then swinging the
// predecessor's pointer past it; traversals help complete pending unlinks.
// C and C++ implementations store the mark in a pointer tag bit. Go has no
// tag bits and hand-packing pointers into uintptrs would hide them from the
// garbage collector, so a forward pointer is an immutable reference cell
//
//	type ref struct { node *Node; marked bool }
//
// swapped atomically via atomic.Pointer[ref]. A CAS that expects an unmarked
// cell fails exactly when a C++ CAS expecting an untagged pointer would fail,
// so the algorithms' race behaviour is preserved; the cost is one small
// allocation per link update, reclaimed by the GC (which also replaces the
// epoch-based reclamation of the original codebases).
//
// The list is a multiset ordered by key: duplicate keys are allowed and are
// exercised hard by the benchmark's 8-bit key distribution.
package skiplist

import (
	"sync/atomic"

	"cpq/internal/rng"
)

// MaxHeight is the maximum tower height. 2^24 expected items per level-0
// node at the top level comfortably covers the benchmark's prefill plus
// growth.
const MaxHeight = 24

// Node is a skiplist node. Key and Value are immutable after insertion.
// The Claimed flag supports queues that delete logically before unlinking
// (Shavit-Lotan, SprayList); the Lindén-Jonsson queue instead uses the
// level-0 mark itself as the deletion flag.
type Node struct {
	Key     uint64
	Value   uint64
	claimed atomic.Bool
	height  int32
	next    [MaxHeight]atomic.Pointer[ref]
}

// ref is an immutable (successor, mark) pair; see the package comment.
type ref struct {
	node   *Node
	marked bool
}

// interned unmarked ref to nil, used to initialise towers cheaply.
var nilRef = &ref{}

// Height returns the tower height of the node (1..MaxHeight).
func (n *Node) Height() int { return int(n.height) }

// Next returns the successor and mark of n at the given level.
func (n *Node) Next(level int) (succ *Node, marked bool) {
	r := n.next[level].Load()
	return r.node, r.marked
}

// Ref is an opaque snapshot of a forward pointer. A CAS that passes a Ref
// succeeds only if the pointer cell is physically unchanged since the Ref
// was loaded (reference cells are never reused, so there is no ABA): this
// gives callers validated link updates, which the Lindén-Jonsson insert
// path relies on to splice in front of a dead prefix without re-scanning.
type Ref struct{ r *ref }

// LoadRef atomically snapshots n's forward pointer at level.
func (n *Node) LoadRef(level int) Ref { return Ref{n.next[level].Load()} }

// Node returns the successor recorded in the snapshot.
func (r Ref) Node() *Node { return r.r.node }

// Marked reports the mark recorded in the snapshot.
func (r Ref) Marked() bool { return r.r.marked }

// CASRef replaces n's forward pointer at level with (succ, marked), provided
// it is still exactly the snapshot old.
func (n *Node) CASRef(level int, old Ref, succ *Node, marked bool) bool {
	return n.next[level].CompareAndSwap(old.r, &ref{node: succ, marked: marked})
}

// SetNext unconditionally stores (succ, marked) into n's forward pointer at
// level. Only valid while n is thread-private (during node construction).
func (n *Node) SetNext(level int, succ *Node, marked bool) {
	n.next[level].Store(&ref{node: succ, marked: marked})
}

// NewNode allocates an unlinked node with the given tower height for queue
// algorithms that perform their own linking (Lindén-Jonsson insert).
func NewNode(key, value uint64, height int) *Node {
	n := &Node{Key: key, Value: value, height: int32(height)}
	for i := range n.next {
		n.next[i].Store(nilRef)
	}
	return n
}

// CASNext replaces n's forward pointer at level from (oldSucc, oldMarked) to
// (newSucc, newMarked). It is the raw CAS used by the queue algorithms.
func (n *Node) CASNext(level int, oldSucc *Node, oldMarked bool, newSucc *Node, newMarked bool) bool {
	old := n.next[level].Load()
	if old.node != oldSucc || old.marked != oldMarked {
		return false
	}
	return n.next[level].CompareAndSwap(old, &ref{node: newSucc, marked: newMarked})
}

// TryMarkNext marks n's forward pointer at level, expecting successor succ.
// Marking level 0 logically deletes the node in the Lindén-Jonsson scheme.
func (n *Node) TryMarkNext(level int, succ *Node) bool {
	return n.CASNext(level, succ, false, succ, true)
}

// MarkTower marks every level of n's tower top-down (idempotent). After
// MarkTower returns, no new node can ever be linked after n, so traversals
// can safely unlink it at every level.
func (n *Node) MarkTower() {
	for level := int(n.height) - 1; level >= 0; level-- {
		for {
			r := n.next[level].Load()
			if r.marked {
				break
			}
			if n.next[level].CompareAndSwap(r, &ref{node: r.node, marked: true}) {
				break
			}
		}
	}
}

// TryClaim atomically claims the node for logical deletion. Only one caller
// ever wins the claim of a given node.
func (n *Node) TryClaim() bool { return n.claimed.CompareAndSwap(false, true) }

// IsClaimed reports whether the node has been logically deleted via claim.
func (n *Node) IsClaimed() bool { return n.claimed.Load() }

// DeletedAt0 reports whether the node's level-0 forward pointer is marked,
// i.e. the node is logically deleted in the Lindén-Jonsson sense.
func (n *Node) DeletedAt0() bool {
	return n.next[0].Load().marked
}

// List is a lock-free skiplist multiset.
type List struct {
	head *Node
}

// New returns an empty list.
func New() *List {
	h := &Node{height: MaxHeight}
	for i := range h.next {
		h.next[i].Store(nilRef)
	}
	return &List{head: h}
}

// Head returns the head sentinel. Its key is meaningless and it is never
// deleted; queue algorithms start their scans from it.
func (l *List) Head() *Node { return l.head }

// RandomHeight draws a tower height from the geometric(1/2) distribution
// capped at MaxHeight, using the caller's generator.
func RandomHeight(r *rng.Xoroshiro) int {
	h := 1
	// Each bit of a 64-bit word is an unbiased coin.
	bits := r.Uint64()
	for h < MaxHeight && bits&1 == 1 {
		h++
		bits >>= 1
	}
	return h
}

// Find locates the insertion window for key: preds[i] is the last node at
// level i with key strictly smaller than key (or the head), succs[i] the
// node following it. Marked nodes encountered on the way are helped out of
// the list (Harris-Michael physical deletion). The arrays must have length
// MaxHeight.
func (l *List) Find(key uint64, preds, succs *[MaxHeight]*Node) {
retry:
	for {
		pred := l.head
		for level := MaxHeight - 1; level >= 0; level-- {
			curr, _ := pred.Next(level)
			for curr != nil {
				succ, marked := curr.Next(level)
				for marked {
					// curr is deleted at this level: unlink it.
					if !pred.CASNext(level, curr, false, succ, false) {
						continue retry
					}
					curr = succ
					if curr == nil {
						break
					}
					succ, marked = curr.Next(level)
				}
				if curr == nil || curr.Key >= key {
					break
				}
				pred = curr
				curr = succ
			}
			preds[level] = pred
			succs[level] = curr
		}
		return
	}
}

// FindNoHelp is like Find but never unlinks marked nodes; it simply skips
// them. The Lindén-Jonsson delete path uses it so that logical deletions do
// not immediately trigger physical restructuring (the batching that gives
// that queue its low memory contention).
func (l *List) FindNoHelp(key uint64, preds, succs *[MaxHeight]*Node) {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		curr, _ := pred.Next(level)
		for curr != nil {
			succ, marked := curr.Next(level)
			if marked {
				// Skip over the logically deleted node without helping.
				curr = succ
				continue
			}
			if curr.Key >= key {
				break
			}
			pred = curr
			curr = succ
		}
		preds[level] = pred
		succs[level] = curr
	}
}

// Insert links a new node with the given key, value and tower height and
// returns it. Duplicate keys are allowed; the new node is placed before the
// first existing node with an equal or larger key at level 0.
//
// The structure is the standard lock-free skiplist add (Fraser;
// Herlihy & Shavit): link level 0 first (the linearization point), then
// raise the tower level by level, refreshing the window with Find after a
// failed CAS and abandoning the raise if the node is deleted concurrently.
func (l *List) Insert(key, value uint64, height int) *Node {
	n := &Node{Key: key, Value: value, height: int32(height)}
	var preds, succs [MaxHeight]*Node
	for {
		l.Find(key, &preds, &succs)
		// Prepare the whole tower, then link the bottom level; a successful
		// bottom-level CAS makes the node logically present.
		for i := 0; i < height; i++ {
			n.next[i].Store(&ref{node: succs[i]})
		}
		for i := height; i < MaxHeight; i++ {
			n.next[i].Store(nilRef)
		}
		if preds[0].CASNext(0, succs[0], false, n, false) {
			break
		}
	}
	// Raise the tower. Abandoning early is benign: the node remains
	// findable through level 0, it just has a shorter effective tower.
	for level := 1; level < height; level++ {
		for {
			r := n.next[level].Load()
			if r.marked {
				return n // node was deleted while being raised
			}
			if r.node != succs[level] {
				if !n.next[level].CompareAndSwap(r, &ref{node: succs[level]}) {
					return n // became marked meanwhile
				}
			}
			if preds[level].CASNext(level, succs[level], false, n, false) {
				break
			}
			l.Find(key, &preds, &succs)
		}
	}
	return n
}

// Unlink physically removes a node whose tower has been fully marked
// (MarkTower must have been called). It is implemented as a Find for the
// node's key, which performs the actual unlinking as helping.
func (l *List) Unlink(n *Node) {
	var preds, succs [MaxHeight]*Node
	l.Find(n.Key, &preds, &succs)
}

// FirstLive returns the first node at level 0 that is neither claimed nor
// marked at level 0, or nil. Used by tests and by strict delete-min scans.
func (l *List) FirstLive() *Node {
	curr, _ := l.head.Next(0)
	for curr != nil {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			return curr
		}
		curr, _ = curr.Next(0)
	}
	return nil
}

// CountLive walks level 0 and counts nodes that are neither claimed nor
// level-0-marked. O(n); intended for tests and debugging only.
func (l *List) CountLive() int {
	n := 0
	curr, _ := l.head.Next(0)
	for curr != nil {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			n++
		}
		curr, _ = curr.Next(0)
	}
	return n
}

// CollectLive returns the (key, value) pairs of all live nodes in key order.
// O(n); for tests and draining.
func (l *List) CollectLive() (keys, values []uint64) {
	curr, _ := l.head.Next(0)
	for curr != nil {
		if !curr.IsClaimed() && !curr.DeletedAt0() {
			keys = append(keys, curr.Key)
			values = append(values, curr.Value)
		}
		curr, _ = curr.Next(0)
	}
	return
}
