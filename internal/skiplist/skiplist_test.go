package skiplist

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"cpq/internal/rng"
)

func insertKey(l *List, r *rng.Xoroshiro, key uint64) Node {
	return l.Insert(key, key, RandomHeight(r))
}

func TestEmptyList(t *testing.T) {
	l := New()
	if !l.FirstLive().IsNil() {
		t.Fatal("empty list has a live node")
	}
	if l.CountLive() != 0 {
		t.Fatal("empty list CountLive != 0")
	}
	if n, _ := l.Head().Next(0); !n.IsNil() {
		t.Fatal("head.next != nil on empty list")
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	r := rng.New(1)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		h := RandomHeight(r)
		if h < 1 || h > MaxHeight {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// Height 1 should occur ~50% of the time, height 2 ~25%.
	if c := counts[1]; c < n*45/100 || c > n*55/100 {
		t.Fatalf("height-1 fraction %d/%d far from 1/2", c, n)
	}
	if c := counts[2]; c < n*20/100 || c > n*30/100 {
		t.Fatalf("height-2 fraction %d/%d far from 1/4", c, n)
	}
}

func TestInsertSortedOrder(t *testing.T) {
	l := New()
	r := rng.New(2)
	want := make([]uint64, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := r.Uint64() % 500 // force duplicates
		insertKey(l, r, k)
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	keys, _ := l.CollectLive()
	if len(keys) != len(want) {
		t.Fatalf("CollectLive returned %d keys, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestLevelOrderInvariant(t *testing.T) {
	// At every level the list must be sorted (non-strictly) by key.
	l := New()
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		insertKey(l, r, r.Uint64()%1000)
	}
	for level := 0; level < MaxHeight; level++ {
		prev := uint64(0)
		first := true
		curr, _ := l.Head().Next(level)
		for !curr.IsNil() {
			if !first && curr.Key() < prev {
				t.Fatalf("level %d out of order: %d after %d", level, curr.Key(), prev)
			}
			prev, first = curr.Key(), false
			curr, _ = curr.Next(level)
		}
	}
}

func TestTowersReachable(t *testing.T) {
	// Every node linked at level i>0 must also appear at level i-1.
	l := New()
	r := rng.New(4)
	for i := 0; i < 3000; i++ {
		insertKey(l, r, r.Uint64()%100)
	}
	for level := 1; level < MaxHeight; level++ {
		below := map[Node]bool{}
		c, _ := l.Head().Next(level - 1)
		for !c.IsNil() {
			below[c] = true
			c, _ = c.Next(level - 1)
		}
		c, _ = l.Head().Next(level)
		for !c.IsNil() {
			if !below[c] {
				t.Fatalf("node %d present at level %d but not %d", c.Key(), level, level-1)
			}
			c, _ = c.Next(level)
		}
	}
}

func TestFindWindow(t *testing.T) {
	l := New()
	r := rng.New(5)
	for _, k := range []uint64{10, 20, 30, 40} {
		insertKey(l, r, k)
	}
	var preds, succs [MaxHeight]Node
	l.Find(25, &preds, &succs)
	if preds[0].Key() != 20 {
		t.Fatalf("pred key = %d, want 20", preds[0].Key())
	}
	if succs[0].IsNil() || succs[0].Key() != 30 {
		t.Fatal("succ should be 30")
	}
	// Exact key: succ is the first node with that key.
	l.Find(30, &preds, &succs)
	if succs[0].IsNil() || succs[0].Key() != 30 {
		t.Fatal("Find(30) succ should be the 30 node")
	}
	if preds[0].Key() != 20 {
		t.Fatalf("Find(30) pred = %d, want 20", preds[0].Key())
	}
	// Key beyond the end.
	l.Find(100, &preds, &succs)
	if !succs[0].IsNil() {
		t.Fatal("Find past end should have nil succ")
	}
	// Key before the start: pred must be the head sentinel.
	l.Find(5, &preds, &succs)
	if preds[0] != l.Head() {
		t.Fatal("Find before start should have head as pred")
	}
}

func TestClaimOnlyOneWinner(t *testing.T) {
	l := New()
	r := rng.New(6)
	n := insertKey(l, r, 7)
	const goroutines = 16
	wins := make(chan bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- n.TryClaim()
		}()
	}
	wg.Wait()
	close(wins)
	winners := 0
	for w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d claim winners, want exactly 1", winners)
	}
	if !n.IsClaimed() {
		t.Fatal("node not claimed after winning claim")
	}
}

func TestMarkTowerFreezesNode(t *testing.T) {
	l := New()
	r := rng.New(7)
	n := l.Insert(50, 50, 5)
	insertKey(l, r, 10)
	insertKey(l, r, 90)
	n.MarkTower()
	for level := 0; level < n.Height(); level++ {
		if _, marked := n.Next(level); !marked {
			t.Fatalf("level %d not marked after MarkTower", level)
		}
	}
	// CAS on a marked pointer must fail.
	succ, _ := n.Next(0)
	if n.CASNext(0, succ, false, Node{}, false) {
		t.Fatal("CAS succeeded on marked pointer")
	}
	// Unlink removes it physically.
	l.Unlink(n)
	keys, _ := l.CollectLive()
	for _, k := range keys {
		if k == 50 {
			t.Fatal("marked node still live after Unlink")
		}
	}
	if got := l.CountLive(); got != 2 {
		t.Fatalf("CountLive = %d, want 2", got)
	}
}

func TestFindHelpsUnlinkPrefix(t *testing.T) {
	l := New()
	r := rng.New(8)
	var nodes []Node
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		nodes = append(nodes, insertKey(l, r, k))
	}
	// Mark 1..3. A Find for a key at/below the marked prefix walks through
	// it at every level and must unlink it (this is how the Lindén
	// restructure and Unlink clean up). A Find for a LARGER key descends
	// past the prefix via upper levels and legitimately leaves it alone.
	for _, n := range nodes[:3] {
		n.MarkTower()
	}
	var preds, succs [MaxHeight]Node
	l.Find(1, &preds, &succs)
	first, _ := l.Head().Next(0)
	if first.IsNil() || first.Key() != 4 {
		t.Fatalf("first node after helping = %+v, want key 4", first)
	}
	// All levels of head must now bypass the marked nodes.
	for level := 0; level < MaxHeight; level++ {
		if n, _ := l.Head().Next(level); !n.IsNil() && n.Key() < 4 {
			t.Fatalf("level %d still points at marked node %d", level, n.Key())
		}
	}
}

func TestFindNoHelpSkipsWithoutUnlinking(t *testing.T) {
	l := New()
	r := rng.New(9)
	a := insertKey(l, r, 1)
	insertKey(l, r, 2)
	a.MarkTower()
	var preds, succs [MaxHeight]Node
	l.FindNoHelp(2, &preds, &succs)
	if succs[0].IsNil() || succs[0].Key() != 2 {
		t.Fatal("FindNoHelp did not find live node past marked one")
	}
	// The marked node must still be physically linked.
	first, _ := l.Head().Next(0)
	if first != a {
		t.Fatal("FindNoHelp unlinked a node")
	}
}

func TestDeletedAt0(t *testing.T) {
	l := New()
	n := l.Insert(5, 5, 1)
	if n.DeletedAt0() {
		t.Fatal("fresh node reports deleted")
	}
	succ, _ := n.Next(0)
	if !n.TryMarkNext(0, succ) {
		t.Fatal("TryMarkNext failed unexpectedly")
	}
	if !n.DeletedAt0() {
		t.Fatal("node not deleted after level-0 mark")
	}
	if n.TryMarkNext(0, succ) {
		t.Fatal("TryMarkNext succeeded twice")
	}
}

func TestConcurrentInsertNoLostNodes(t *testing.T) {
	// Each worker allocates through its own arena handle — the real
	// concurrent-insert path of the queue algorithms.
	l := New()
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := l.NewHandle()
			r := rng.New(uint64(w) + 100)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 2048
				h.Insert(k, k, RandomHeight(r))
			}
		}(w)
	}
	wg.Wait()
	if got := l.CountLive(); got != workers*perWorker {
		t.Fatalf("CountLive = %d, want %d", got, workers*perWorker)
	}
	keys, _ := l.CollectLive()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestConcurrentInsertAndRemove(t *testing.T) {
	// Writers insert; removers claim+mark+unlink arbitrary live nodes.
	// Afterwards: live multiset == inserted minus removed.
	l := New()
	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	var mu sync.Mutex
	inserted := map[uint64]int{}
	removed := map[uint64]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := l.NewHandle()
			r := rng.New(uint64(w) + 200)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 512
				n := h.Insert(k, k, RandomHeight(r))
				mu.Lock()
				inserted[k]++
				mu.Unlock()
				if i%3 == 0 {
					// Remove the node we just inserted (it may race with
					// other removers targeting the same key; claim decides).
					if n.TryClaim() {
						n.MarkTower()
						l.Unlink(n)
						mu.Lock()
						removed[k]++
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	keys, _ := l.CollectLive()
	liveCount := map[uint64]int{}
	for _, k := range keys {
		liveCount[k]++
	}
	for k, ins := range inserted {
		want := ins - removed[k]
		if liveCount[k] != want {
			t.Fatalf("key %d: live %d, want %d (ins %d, rem %d)",
				k, liveCount[k], want, ins, removed[k])
		}
	}
}

func TestInsertPropertySortedAfterBatch(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		l := New()
		r := rng.New(42)
		for _, k := range raw {
			insertKey(l, r, uint64(k))
		}
		keys, _ := l.CollectLive()
		if len(keys) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New()
	h := l.NewHandle()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := r.Uint64()
		h.Insert(k, k, RandomHeight(r))
	}
}
