package skiplist

import (
	"sync"
	"testing"
)

func TestLoadRefSnapshot(t *testing.T) {
	l := New()
	a := l.Insert(1, 1, 1)
	r := a.LoadRef(0)
	if !r.Node().IsNil() || r.Marked() {
		t.Fatalf("fresh node ref = (%v, %v)", r.Node(), r.Marked())
	}
	hr := l.Head().LoadRef(0)
	if hr.Node() != a || hr.Marked() {
		t.Fatal("head ref does not point at the inserted node")
	}
}

func TestCASRefValidatesSnapshot(t *testing.T) {
	l := New()
	a := l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	// Change the pointer word (insert a smaller node), then try to CAS with
	// the stale snapshot: must fail — the word no longer holds the
	// snapshotted value.
	b := l.Insert(5, 0, 1)
	if l.Head().CASRef(0, snap, a, false) {
		t.Fatal("stale snapshot CAS succeeded")
	}
	// A fresh snapshot works.
	fresh := l.Head().LoadRef(0)
	if fresh.Node() != b {
		t.Fatalf("head now points at %v", fresh.Node())
	}
	if !l.Head().CASRef(0, fresh, b, false) {
		t.Fatal("fresh snapshot CAS failed")
	}
}

func TestCASRefBenignValueABA(t *testing.T) {
	// The packed word validates by value, exactly like the C/C++
	// tagged-pointer CAS: if the word is restored to the snapshotted value,
	// a stale snapshot CASes successfully. This is the benign value ABA of
	// the Harris scheme — under the no-reuse rule the restored index still
	// names the same immutable, still-unmarked node, so the outcome is
	// indistinguishable from the snapshot being fresh. The harmful ABA
	// (the index meaning a *different* node) cannot occur: indices are
	// never recycled while the list lives (TestIndexesNeverReused).
	l := New()
	a := l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	b := l.Insert(5, 0, 1) // head -> b -> a
	b.MarkTower()
	l.Unlink(b) // head -> a again: same word value as snap
	now := l.Head().LoadRef(0)
	if now.Node() != a {
		t.Fatalf("expected head->a after unlink, got %v", now.Node())
	}
	if !l.Head().CASRef(0, snap, a, false) {
		t.Fatal("value-restored snapshot CAS failed; packed word should validate by value")
	}
}

func TestStaleSnapshotCannotResurrectMarkedWord(t *testing.T) {
	// Marks are permanent: once a word is marked, every unmarked snapshot
	// is stale forever, so no CAS through an old Ref can resurrect a
	// logically deleted node — the property the Lindén claim CAS rests on.
	l := New()
	a := l.Insert(10, 0, 1)
	snap := a.LoadRef(0) // (nil, unmarked)
	a.MarkTower()
	if a.CASRef(0, snap, Node{}, false) {
		t.Fatal("stale unmarked snapshot CAS succeeded on a marked word")
	}
	if !a.DeletedAt0() {
		t.Fatal("node lost its mark")
	}
}

func TestCASRefStaleAfterConcurrentClaim(t *testing.T) {
	// The level-0 word also carries the claim bit, so a concurrent claim
	// invalidates link snapshots taken before it — callers see an ordinary
	// lost CAS and retry against the fresh word.
	l := New()
	a := l.Insert(10, 0, 1)
	snap := a.LoadRef(0)
	if !a.TryClaim() {
		t.Fatal("claim failed on fresh node")
	}
	if a.CASRef(0, snap, Node{}, false) {
		t.Fatal("snapshot from before the claim still CASed")
	}
	fresh := a.LoadRef(0)
	if !a.CASRef(0, fresh, Node{}, false) {
		t.Fatal("fresh snapshot CAS failed")
	}
	if !a.IsClaimed() {
		t.Fatal("link CAS clobbered the claim bit")
	}
}

func TestNewNodeUnlinked(t *testing.T) {
	h := New().NewHandle()
	n := h.NewNode(7, 70, 3)
	if n.Key() != 7 || n.Value() != 70 || n.Height() != 3 {
		t.Fatalf("node = key %d value %d height %d", n.Key(), n.Value(), n.Height())
	}
	for level := 0; level < n.Height(); level++ {
		if succ, marked := n.Next(level); !succ.IsNil() || marked {
			t.Fatalf("level %d not nil/unmarked", level)
		}
	}
}

func TestSetNextOnPrivateNode(t *testing.T) {
	h := New().NewHandle()
	a := h.NewNode(1, 0, 2)
	b := h.NewNode(2, 0, 2)
	a.SetNext(0, b, false)
	a.SetNext(1, b, true)
	if s, m := a.Next(0); s != b || m {
		t.Fatal("SetNext level 0 wrong")
	}
	if s, m := a.Next(1); s != b || !m {
		t.Fatal("SetNext level 1 wrong")
	}
	if a.Height() != 2 {
		t.Fatal("SetNext clobbered the height bits")
	}
}

func TestConcurrentCASRefSingleWinner(t *testing.T) {
	l := New()
	l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	const goroutines = 16
	wins := make(chan bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := l.NewHandle()
			n := h.NewNode(uint64(i), 0, 1)
			n.SetNext(0, snap.Node(), false)
			wins <- l.Head().CASRef(0, snap, n, false)
		}(i)
	}
	wg.Wait()
	close(wins)
	winners := 0
	for w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d CASRef winners from one snapshot, want 1", winners)
	}
}
