package skiplist

import (
	"sync"
	"testing"
)

func TestLoadRefSnapshot(t *testing.T) {
	l := New()
	a := l.Insert(1, 1, 1)
	r := a.LoadRef(0)
	if r.Node() != nil || r.Marked() {
		t.Fatalf("fresh node ref = (%v, %v)", r.Node(), r.Marked())
	}
	hr := l.Head().LoadRef(0)
	if hr.Node() != a || hr.Marked() {
		t.Fatal("head ref does not point at the inserted node")
	}
}

func TestCASRefValidatesExactSnapshot(t *testing.T) {
	l := New()
	a := l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	// Change the pointer cell (insert a smaller node), then try to CAS with
	// the stale snapshot: must fail even though the logical target (a) could
	// be re-observed — Ref validates physical identity, not value equality.
	b := l.Insert(5, 0, 1)
	if l.Head().CASRef(0, snap, a, false) {
		t.Fatal("stale snapshot CAS succeeded")
	}
	// A fresh snapshot works.
	fresh := l.Head().LoadRef(0)
	if fresh.Node() != b {
		t.Fatalf("head now points at %v", fresh.Node())
	}
	if !l.Head().CASRef(0, fresh, b, false) {
		t.Fatal("fresh snapshot CAS failed")
	}
}

func TestCASRefABAImmunity(t *testing.T) {
	// Even if the cell is restored to point at the same node, an old
	// snapshot must not CAS successfully (reference cells are never reused).
	l := New()
	a := l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	b := l.Insert(5, 0, 1) // head -> b -> a
	b.MarkTower()
	l.Unlink(b) // head -> a again: same logical value as snap
	now := l.Head().LoadRef(0)
	if now.Node() != a {
		t.Fatalf("expected head->a after unlink, got %v", now.Node())
	}
	if l.Head().CASRef(0, snap, nil, false) {
		t.Fatal("ABA: stale snapshot CAS succeeded after value restoration")
	}
	if !l.Head().CASRef(0, now, a, false) {
		t.Fatal("current snapshot CAS failed")
	}
}

func TestNewNodeUnlinked(t *testing.T) {
	n := NewNode(7, 70, 3)
	if n.Key != 7 || n.Value != 70 || n.Height() != 3 {
		t.Fatalf("node = %+v", n)
	}
	for level := 0; level < MaxHeight; level++ {
		if succ, marked := n.Next(level); succ != nil || marked {
			t.Fatalf("level %d not nil/unmarked", level)
		}
	}
}

func TestSetNextOnPrivateNode(t *testing.T) {
	a := NewNode(1, 0, 2)
	b := NewNode(2, 0, 2)
	a.SetNext(0, b, false)
	a.SetNext(1, b, true)
	if s, m := a.Next(0); s != b || m {
		t.Fatal("SetNext level 0 wrong")
	}
	if s, m := a.Next(1); s != b || !m {
		t.Fatal("SetNext level 1 wrong")
	}
}

func TestConcurrentCASRefSingleWinner(t *testing.T) {
	l := New()
	l.Insert(10, 0, 1)
	snap := l.Head().LoadRef(0)
	const goroutines = 16
	wins := make(chan bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := NewNode(uint64(i), 0, 1)
			n.SetNext(0, snap.Node(), false)
			wins <- l.Head().CASRef(0, snap, n, false)
		}(i)
	}
	wg.Wait()
	close(wins)
	winners := 0
	for w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d CASRef winners from one snapshot, want 1", winners)
	}
}
