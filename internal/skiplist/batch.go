package skiplist

import (
	"cpq/internal/pq"
	"cpq/internal/rng"
)

// Batch support for the skiplist substrate (DESIGN.md §4c). The two costs a
// sorted insertion batch can amortize here are (a) the arena claim — Reserve
// makes the whole batch's nodes come out of one slab — and (b) the
// predecessor search — FindFrom resumes the walk from the previous key's
// window instead of re-descending from the head, so a run of k nearby keys
// pays one full descent plus k short forward walks.

// Reserve ensures the next `words` arena words can be bump-allocated without
// a slab refill, refilling once up front if the current slab is too full.
// Batch inserts call it so one batch's nodes are contiguous in one slab and
// trigger at most one allocation. Requests larger than a slab are clamped:
// an oversized batch simply refills mid-run, which is still amortized.
func (h *Handle) Reserve(words int) {
	if words <= 0 {
		return
	}
	if words > slabWords-1 {
		words = slabWords - 1
	}
	if h.off+uint32(words) > slabWords {
		h.refill()
	}
}

// FindFrom is Find seeded with a previously captured window (a finger
// search): preds must hold, at every level, either the nil Node (ignored)
// or a node with key strictly smaller than key that was linked at that
// level when the window was captured. The search descends exactly like
// Find — the predecessor found at level L+1 carries down to level L — but
// at each level it fast-forwards to the seed when the seed is ahead of the
// carried predecessor and still usable (unmarked at that level; marks are
// never cleared, so an unmarked word proves the seed is still a legitimate
// anchor — the same argument Find makes for the nodes it walks through).
// For the ascending keys of a sorted batch this turns the per-key cost
// from a full descent into a walk proportional to the inter-key gap.
func (l *List) FindFrom(key uint64, preds, succs *[MaxHeight]Node) {
retry:
	for {
		pred := l.head
		for level := MaxHeight - 1; level >= 0; level-- {
			if s := preds[level]; !s.IsNil() && s.idx != l.head.idx &&
				(pred.idx == l.head.idx || s.Key() > pred.Key()) {
				if _, m := s.Next(level); !m {
					pred = s
				}
			}
			curr, predMarked := pred.Next(level)
			if predMarked {
				// A seed adopted at a higher level died at this one; its
				// frozen pointer cannot anchor unlink CASes. Restart without
				// seeds.
				l.Find(key, preds, succs)
				return
			}
			for !curr.IsNil() {
				succ, marked := curr.Next(level)
				for marked {
					// curr is deleted at this level: unlink it (same helping
					// as Find).
					if !pred.CASNext(level, curr, false, succ, false) {
						continue retry
					}
					curr = succ
					if curr.IsNil() {
						break
					}
					succ, marked = curr.Next(level)
				}
				if curr.IsNil() || curr.Key() >= key {
					break
				}
				pred = curr
				curr = succ
			}
			preds[level] = pred
			succs[level] = curr
		}
		return
	}
}

// InsertRun links one node per element of kvs, which must already be sorted
// ascending by key, drawing tower heights from r. The first key pays a full
// Find; every subsequent key reuses the previous window via FindFrom, and
// Reserve puts the whole run in one slab. This is the shared insertion path
// of the skiplist-family batch inserts (SprayList, Shavit-Lotan).
func (h *Handle) InsertRun(kvs []pq.KV, r *rng.Xoroshiro) {
	if len(kvs) == 0 {
		return
	}
	// 2 header words plus the expected geometric(1/2) tower of ~2 words,
	// with slack so a typical batch never refills mid-run.
	h.Reserve(len(kvs) * 6)
	var preds, succs [MaxHeight]Node
	for i, kv := range kvs {
		height := RandomHeight(r)
		n := h.NewNode(kv.Key, kv.Value, height)
		h.l.linkWindow(n, kv.Key, height, &preds, &succs, i > 0)
	}
}
