package skiplist

import (
	"testing"

	"cpq/internal/rng"
)

// Arena-regression tests for the packed-word substrate. The boxed-ref
// implementation allocated one reference cell per link update and a full
// MaxHeight tower per node; the arena must stay at zero allocations per
// link update and amortize node allocation to the slab refill. These tests
// also pin the reclamation rule the ABA argument rests on: arena indices
// are never reused while the list lives.

func TestIndexesNeverReused(t *testing.T) {
	// Insert, delete and re-insert heavily; every allocated index must be
	// strictly larger than all indices handed out before it.
	l := New()
	h := l.NewHandle()
	r := rng.New(11)
	maxIdx := l.Head().Index()
	for i := 0; i < 30000; i++ {
		n := h.Insert(r.Uint64()%256, 0, RandomHeight(r))
		if n.Index() <= maxIdx {
			t.Fatalf("index %d handed out after %d: indices reused", n.Index(), maxIdx)
		}
		maxIdx = n.Index()
		if i%2 == 0 && n.TryClaim() {
			n.MarkTower()
			l.Unlink(n)
		}
	}
}

func TestNodesNeverRecycledWhileReferenced(t *testing.T) {
	// The reclamation rule: node memory is never reused while a stale
	// traversal, snapshot or held handle may still reference it. Hold
	// handles to consumed nodes, churn the list hard enough that a
	// recycling allocator would repurpose their words many times over, and
	// verify the held nodes are bit-for-bit intact.
	l := New()
	h := l.NewHandle()
	r := rng.New(12)
	type held struct {
		n      Node
		k, v   uint64
		height int
	}
	var holds []held
	for i := uint64(0); i < 256; i++ {
		n := h.Insert(i, i*7+1, RandomHeight(r))
		holds = append(holds, held{n: n, k: i, v: i*7 + 1, height: n.Height()})
	}
	// Consume every held node, then churn.
	for _, hd := range holds {
		if hd.n.TryClaim() {
			hd.n.MarkTower()
			l.Unlink(hd.n)
		}
	}
	for i := 0; i < 100000; i++ {
		n := h.Insert(r.Uint64()%100000, 3, RandomHeight(r))
		n.MarkTower()
		l.Unlink(n)
	}
	for i, hd := range holds {
		if hd.n.Key() != hd.k || hd.n.Value() != hd.v {
			t.Fatalf("held node %d mutated: %d/%d, want %d/%d",
				i, hd.n.Key(), hd.n.Value(), hd.k, hd.v)
		}
		if hd.n.Height() != hd.height {
			t.Fatalf("held node %d height mutated: %d, want %d", i, hd.n.Height(), hd.height)
		}
		if !hd.n.DeletedAt0() || !hd.n.IsClaimed() {
			t.Fatalf("held node %d lost its mark or claim", i)
		}
	}
}

func TestPackedWordBitsCoexist(t *testing.T) {
	// Height, claim and mark all live in the level-0 word and must not
	// clobber one another through any mutation path.
	l := New()
	h := l.NewHandle()
	n := h.Insert(42, 7, 5)
	if n.Height() != 5 || n.IsClaimed() || n.DeletedAt0() {
		t.Fatalf("fresh node: height %d claimed %v dead %v", n.Height(), n.IsClaimed(), n.DeletedAt0())
	}
	if !n.TryClaim() {
		t.Fatal("claim failed")
	}
	if n.TryClaim() {
		t.Fatal("second claim succeeded")
	}
	if n.Height() != 5 || n.DeletedAt0() {
		t.Fatal("claim clobbered height or mark")
	}
	n.MarkTower()
	if n.Height() != 5 || !n.IsClaimed() || !n.DeletedAt0() {
		t.Fatalf("after mark: height %d claimed %v dead %v", n.Height(), n.IsClaimed(), n.DeletedAt0())
	}
	if n.Key() != 42 || n.Value() != 7 {
		t.Fatal("key/value corrupted")
	}
}

func TestHeadSentinel(t *testing.T) {
	l := New()
	head := l.Head()
	if head.IsNil() {
		t.Fatal("head is the nil sentinel")
	}
	if head.Index() != 1 {
		t.Fatalf("head index = %d, want 1 (index 0 is reserved for nil)", head.Index())
	}
	if head.Height() != MaxHeight {
		t.Fatalf("head height = %d, want %d", head.Height(), MaxHeight)
	}
}

func TestInsertAllocsAmortized(t *testing.T) {
	// Node allocation is a pointer bump; only the slab refill allocates
	// (one 64 KiB slab per ~2000 average nodes).
	l := New()
	h := l.NewHandle()
	r := rng.New(13)
	avg := testing.AllocsPerRun(2000, func() {
		h.Insert(r.Uint64()&0xffff, 0, RandomHeight(r))
	})
	if avg > 1.0 {
		t.Errorf("Insert allocates %.3f allocs/op, want <= 1.0 (slab refills only)", avg)
	}
}

func TestLinkUpdateZeroAllocs(t *testing.T) {
	// Marking, claiming, unlinking and helped finds must not allocate at
	// all — that was the boxed-ref implementation's per-link-update cost.
	l := New()
	h := l.NewHandle()
	r := rng.New(14)
	for i := 0; i < 512; i++ {
		h.Insert(r.Uint64()&0xffff, 0, RandomHeight(r))
	}
	nodes := make([]Node, 0, 2100)
	for i := 0; i < 2100; i++ {
		nodes = append(nodes, h.Insert(r.Uint64()&0xffff, 0, RandomHeight(r)))
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		n := nodes[i]
		i++
		if !n.TryClaim() {
			t.Fatal("claim failed on private node")
		}
		n.MarkTower()
		l.Unlink(n)
	})
	if avg != 0 {
		t.Errorf("claim+mark+unlink allocates %.3f allocs/op, want 0", avg)
	}
}
