// Package spray implements the SprayList of Alistarh, Kopinsky, Li and
// Shavit (PPoPP 2015): a relaxed priority queue built on a lock-free
// skiplist in which delete_min performs a randomized "spray" walk instead of
// contending on the exact head-of-queue element.
//
// A spray starts near the head at height H = ⌊log₂ P⌋ + K and, descending D
// levels at a time, jumps forward a uniformly random number of nodes at each
// level. The walk lands on one of the O(P·log³P) smallest elements with
// near-uniform probability, so P concurrent deleters spread their CASes over
// that many distinct nodes instead of all hitting the first one. The landed
// node is claimed via a logical-deletion flag (losers walk on to the next
// node), and the winner physically unlinks it.
//
// P — the number of concurrently spraying threads — is supplied by the
// caller at construction, exactly as the benchmark fixes the thread count
// up front (the original implementation likewise derives its parameters
// from the number of registered threads).
package spray

import (
	"math"
	"sync"
	"sync/atomic"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// Params are the spray-walk tuning parameters of the original paper.
type Params struct {
	// K is added to ⌊log₂ P⌋ to give the starting height.
	K int
	// M scales the per-level maximum jump length.
	M float64
	// D is the number of levels descended between jumps.
	D int
}

// DefaultParams returns the parameter choice used by the paper's authors
// (K=1, M=1, D=1).
func DefaultParams() Params { return Params{K: 1, M: 1, D: 1} }

// Queue is a SprayList. The walk geometry is derived from the thread-count
// parameter p at construction and re-derived when a handle pool grows past
// it (EnsureHandles); height and maxJump are published together in one
// packed atomic word so a concurrent walk never mixes the two halves of
// different geometries.
type Queue struct {
	list   *skiplist.List
	p      atomic.Int32 // expected maximum number of concurrent threads
	params Params
	geom   atomic.Uint64 // height<<32 | maxJump, published by NewParams/EnsureHandles
	seed   atomic.Uint64
	growMu sync.Mutex // serializes EnsureHandles (p and geom move together)
}

var _ pq.Queue = (*Queue)(nil)
var _ pq.Grower = (*Queue)(nil)

// New returns an empty SprayList tuned for up to p concurrent threads with
// default parameters. p < 1 is treated as 1.
func New(p int) *Queue { return NewParams(p, DefaultParams()) }

// NewParams returns an empty SprayList with explicit spray parameters.
func NewParams(p int, params Params) *Queue {
	if p < 1 {
		p = 1
	}
	if params.D < 1 {
		params.D = 1
	}
	if params.M <= 0 {
		params.M = 1
	}
	q := &Queue{list: skiplist.New(), params: params}
	q.p.Store(int32(p))
	q.geom.Store(packGeometry(sprayGeometry(p, params)))
	return q
}

// EnsureHandles implements pq.Grower: re-derive the spray geometry when a
// handle pool grows past the constructed thread parameter, so the
// candidate-set size keeps tracking O(P·log³P) for the live P. The walk
// reads one packed word, so growth never tears a walk's geometry.
// Idempotent; never shrinks.
func (q *Queue) EnsureHandles(p int) {
	if p <= int(q.p.Load()) {
		return
	}
	q.growMu.Lock()
	defer q.growMu.Unlock()
	if p <= int(q.p.Load()) {
		return
	}
	q.geom.Store(packGeometry(sprayGeometry(p, q.params)))
	q.p.Store(int32(p))
}

func packGeometry(height, maxJump int) uint64 {
	return uint64(uint32(height))<<32 | uint64(uint32(maxJump))
}

// sprayGeometry derives the starting height H and the per-level maximum
// jump length L. The walk's total reach — the product of per-level spans —
// is calibrated so a spray covers on the order of M·P·log³P nodes, the
// candidate-set size the paper proves near-uniform selection over.
func sprayGeometry(p int, params Params) (height, maxJump int) {
	logP := math.Log2(float64(p) + 1)
	height = int(math.Floor(logP)) + params.K
	if height < 1 {
		height = 1
	}
	if height >= skiplist.MaxHeight {
		height = skiplist.MaxHeight - 1
	}
	reach := params.M * float64(p) * math.Pow(logP+1, 3)
	levels := float64(height/params.D + 1)
	// Each level contributes an expected span of (L/2)·2^level nodes; we
	// size L so the summed expectation is of order `reach`. Using the
	// dominant top-level term keeps this a one-liner and inside a small
	// constant of the paper's asymptotics.
	maxJump = int(math.Ceil(math.Pow(reach, 1/levels)))
	if maxJump < 1 {
		maxJump = 1
	}
	return height, maxJump
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "spray" }

// P returns the thread-count parameter the spray geometry was derived from
// (the constructor's value, or the high-water EnsureHandles value).
func (q *Queue) P() int { return int(q.p.Load()) }

// Geometry reports the derived (starting height, max jump) pair; exposed
// for tests and the ablation benchmarks.
func (q *Queue) Geometry() (height, maxJump int) {
	g := q.geom.Load()
	return int(uint32(g >> 32)), int(uint32(g))
}

// Handle implements pq.Queue.
func (q *Queue) Handle() pq.Handle {
	return &Handle{
		q:   q,
		sh:  q.list.NewHandle(),
		rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
		tel: telemetry.NewShard(),
	}
}

// Handle is a per-goroutine handle carrying the spray RNG and the arena
// allocator.
type Handle struct {
	q   *Queue
	sh  *skiplist.Handle
	rng *rng.Xoroshiro
	tel *telemetry.Shard
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle.
func (h *Handle) Insert(key, value uint64) {
	h.sh.Insert(key, value, skiplist.RandomHeight(h.rng))
}

// DeleteMin implements pq.Handle. It sprays to a candidate, then walks
// forward claiming the first available node. A miss (walk ran off the list)
// retries with a fresh spray; after a few misses it falls back to a strict
// head scan so emptiness is detected reliably.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	const sprayAttempts = 2
	for attempt := 0; attempt < sprayAttempts; attempt++ {
		if n := h.sprayOnce(); !n.IsNil() {
			return n.Key(), n.Value(), true
		}
		h.tel.Inc(telemetry.SprayMiss)
	}
	h.tel.Inc(telemetry.SprayFallback)
	// Failpoint: stall at fallback entry so concurrent deleters contend on
	// the strict head scan.
	chaos.Perturb(chaos.SprayFallback)
	// Fallback: strict scan from the head (also the emptiness check).
	// With P=1 the spray geometry is tiny, so this path mirrors an exact
	// delete_min queue.
	l := h.q.list
	curr, _ := l.Head().Next(0)
	for !curr.IsNil() {
		if !curr.IsClaimed() && !curr.DeletedAt0() && curr.TryClaim() {
			curr.MarkTower()
			l.Unlink(curr)
			return curr.Key(), curr.Value(), true
		}
		curr, _ = curr.Next(0)
	}
	return 0, 0, false
}

// scanLimit bounds the forward claim scan after a spray landing; past it
// the spray counts as a miss and is retried (or falls back).
const scanLimit = 64

// sprayOnce performs one spray walk and tries to claim a node at or after
// the landing point. Returns the nil Node on a miss.
func (h *Handle) sprayOnce() skiplist.Node {
	curr, ok := h.sprayWalk()
	if !ok {
		return skiplist.Node{}
	}
	q := h.q
	// Claim the landing node or the first claimable node after it.
	for i := 0; !curr.IsNil() && i < scanLimit; i++ {
		if curr != q.list.Head() && !curr.IsClaimed() && !curr.DeletedAt0() && curr.TryClaim() {
			curr.MarkTower()
			q.list.Unlink(curr)
			return curr
		}
		curr, _ = curr.Next(0)
	}
	return skiplist.Node{}
}

// sprayWalk performs the randomized descent and returns the landing node
// (possibly the head sentinel). ok is false on a failpoint-forced miss.
func (h *Handle) sprayWalk() (landing skiplist.Node, ok bool) {
	// Failpoint: a forced miss exercises the retry and fallback paths; a
	// perturbation delays the walk so the landing region drains under it.
	// Both happen before any node is claimed, so no item can be dropped.
	if chaos.ShouldFail(chaos.SprayWalk) {
		return skiplist.Node{}, false
	}
	chaos.Perturb(chaos.SprayWalk)
	q := h.q
	curr := q.list.Head()
	level, maxJump := q.Geometry() // one packed load: growth cannot tear it
	for {
		j := int(h.rng.Uintn(uint64(maxJump) + 1))
		for ; j > 0 && !curr.IsNil(); j-- {
			var next skiplist.Node
			if curr.Height() > level {
				next, _ = curr.Next(level)
			} else {
				// Walk fell onto a node shorter than the current level
				// (possible right after descending); drop to its top level.
				next, _ = curr.Next(curr.Height() - 1)
			}
			if next.IsNil() {
				break // clamp at the end of the level
			}
			curr = next
		}
		if level == 0 {
			break
		}
		level -= q.params.D
		if level < 0 {
			level = 0
		}
	}
	return curr, true
}

// PeekMin reports the first unclaimed node (exact, not sprayed).
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	n := h.q.list.FirstLive()
	if n.IsNil() {
		return 0, 0, false
	}
	return n.Key(), n.Value(), true
}

// Len counts live items. O(n); tests and draining only.
func (q *Queue) Len() int { return q.list.CountLive() }
