package spray

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New(4)
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if q.Name() != "spray" {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestGeometry(t *testing.T) {
	for _, p := range []int{0, 1, 2, 8, 64, 1024} {
		q := New(p)
		h, j := q.Geometry()
		if h < 1 || j < 1 {
			t.Fatalf("p=%d: degenerate geometry h=%d j=%d", p, h, j)
		}
		if p >= 1 && q.P() != p {
			t.Fatalf("P() = %d, want %d", q.P(), p)
		}
	}
	// Geometry must grow with P.
	h8, _ := New(8).Geometry()
	h1024, _ := New(1024).Geometry()
	if h1024 <= h8 {
		t.Fatalf("height does not grow with P: %d vs %d", h8, h1024)
	}
}

func TestNewParamsDefaults(t *testing.T) {
	q := NewParams(4, Params{K: 0, M: 0, D: 0})
	if q.params.M != 1 || q.params.D != 1 {
		t.Fatalf("degenerate params not normalized: %+v", q.params)
	}
}

func TestSingleThreadDrainComplete(t *testing.T) {
	q := New(1)
	h := q.Handle()
	r := rng.New(1)
	const n = 3000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 999
		want[i] = k
		h.Insert(k, k)
	}
	got := make([]uint64, 0, n)
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != n {
		t.Fatalf("drained %d of %d", len(got), n)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}

func TestRelaxedButBounded(t *testing.T) {
	// With P=4 and 10k items, sprayed deletions must come from the head
	// region: each deleted key should be among the ~P log^3 P smallest of
	// the moment. We test a generous bound: rank < 4096.
	q := New(4)
	h := q.Handle()
	const n = 10000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	// Keys are 0..n-1 inserted in order; deleting m items one at a time,
	// every deletion should return a key < deletedSoFar + 4096.
	for i := 0; i < 5000; i++ {
		k, _, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("unexpected empty at %d", i)
		}
		if k >= uint64(i)+4096 {
			t.Fatalf("deletion %d returned key %d — far beyond the head region", i, k)
		}
	}
}

func TestValuesFollowKeys(t *testing.T) {
	q := New(2)
	h := q.Handle()
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, k*3)
	}
	for i := 0; i < 100; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || v != k*3 {
			t.Fatalf("got %d/%d/%v", k, v, ok)
		}
	}
}

func TestPeekMin(t *testing.T) {
	q := New(2)
	h := q.Handle().(*Handle)
	if _, _, ok := h.PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	h.Insert(8, 80)
	h.Insert(3, 30)
	if k, v, ok := h.PeekMin(); !ok || k != 3 || v != 30 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	const workers = 8
	q := New(workers)
	const perWorker = 4000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 13)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d items", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, all[i], got[i])
		}
	}
}

func TestConcurrentNoDuplicateDeletes(t *testing.T) {
	const workers = 8
	q := New(workers)
	h := q.Handle()
	const n = 20000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("deleted %d of %d", total, n)
	}
}
