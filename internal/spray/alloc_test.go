package spray

import (
	"testing"

	"cpq/internal/rng"
)

// Allocation-regression tests for the packed-word substrate (mirroring
// internal/core/alloc_test.go): the spray walk, claim and unlink must be
// allocation-free; Insert amortizes to the slab refill.

func steadySpray() (*Queue, *Handle, *rng.Xoroshiro) {
	q := New(4)
	h := q.Handle().(*Handle)
	r := rng.New(42)
	for i := 0; i < 4096; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
		h.DeleteMin()
	}
	return q, h, r
}

func TestSprayInsertAllocsAmortized(t *testing.T) {
	_, h, r := steadySpray()
	avg := testing.AllocsPerRun(2000, func() {
		h.Insert(r.Uint64()&0xffff, 0)
	})
	if avg > 1.0 {
		t.Errorf("spray Insert allocates %.3f allocs/op at steady state, want <= 1.0 (slab refills only)", avg)
	}
}

func TestSprayDeleteMinZeroAllocs(t *testing.T) {
	_, h, r := steadySpray()
	const runs = 2000
	for i := 0; i < runs+100; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
	}
	avg := testing.AllocsPerRun(runs, func() {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatal("queue ran empty mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("spray DeleteMin allocates %.3f allocs/op at steady state, want 0", avg)
	}
}
