package spray

import (
	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// Batch-first paths (DESIGN.md §4c). A spray's dominant cost is the
// randomized descent itself, so the batch delete pays ONE spray for the
// whole batch and claims a forward run of nodes from the landing point —
// the batch behaves like n sprays that all landed in the same stretch of
// the candidate set, with one physical unlink pass (a single helping Find
// past the highest claimed key) instead of one per item. Batch inserts go
// through the substrate's InsertRun: one arena claim, one full descent,
// window reuse across the sorted keys.

var _ pq.BatchInserter = (*Handle)(nil)
var _ pq.BatchDeleter = (*Handle)(nil)

// InsertN implements pq.BatchInserter. The batch is sorted ascending in
// place (caller-owned per the contract) and spliced as a run.
func (h *Handle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	pq.SortKVs(kvs)
	h.sh.InsertRun(kvs, h.rng)
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter. Up to two sprays each claim a
// forward run; if the batch is still short (misses, or a drained landing
// region) the strict head scan finishes it and doubles as the emptiness
// check, exactly as in the scalar path.
func (h *Handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	got := 0
	const sprayAttempts = 2
	for attempt := 0; attempt < sprayAttempts && got < n; attempt++ {
		m := h.sprayRun(dst[got:], n-got)
		if m == 0 {
			h.tel.Inc(telemetry.SprayMiss)
		}
		got += m
	}
	if got < n {
		h.tel.Inc(telemetry.SprayFallback)
		// Failpoint: stall at fallback entry so concurrent deleters contend
		// on the strict head scan.
		chaos.Perturb(chaos.SprayFallback)
		got += h.claimRun(h.q.list.Head(), dst[got:], n-got, 0)
	}
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}

// sprayRun performs one spray walk and claims up to max nodes from the
// landing region into dst, returning how many it claimed.
func (h *Handle) sprayRun(dst []pq.KV, max int) int {
	landing, ok := h.sprayWalk()
	if !ok {
		return 0
	}
	return h.claimRun(landing, dst, max, scanLimit+max)
}

// claimRun claims up to max live nodes walking level 0 from `from`
// (exclusive of the head sentinel), marks each claimed tower, and performs
// ONE physical unlink pass over the whole run at the end. limit bounds the
// number of nodes visited; limit <= 0 scans unbounded — the fallback scan
// must reach the end of the list so a short batch reliably means empty,
// exactly like the scalar fallback.
func (h *Handle) claimRun(from skiplist.Node, dst []pq.KV, max int, limit int) int {
	q := h.q
	head := q.list.Head()
	curr := from
	got := 0
	var last skiplist.Node
	for i := 0; !curr.IsNil() && got < max && (limit <= 0 || i < limit); i++ {
		if curr != head && !curr.IsClaimed() && !curr.DeletedAt0() && curr.TryClaim() {
			curr.MarkTower()
			dst[got] = pq.KV{Key: curr.Key(), Value: curr.Value()}
			got++
			last = curr
		}
		curr, _ = curr.Next(0)
	}
	if got > 0 {
		// One helping Find for the largest claimed key unlinks every marked
		// node on its path — the whole run in a single restructuring pass.
		q.list.Unlink(last)
	}
	return got
}
