package spray

import (
	"sync"
	"testing"
)

func TestFallbackScanOnTinyQueue(t *testing.T) {
	// A spray over a near-empty list constantly overshoots; the strict
	// fallback scan must still find and claim the items.
	q := New(64) // geometry tuned for 64 threads: jumps far beyond 3 items
	h := q.Handle()
	h.Insert(1, 10)
	h.Insert(2, 20)
	h.Insert(3, 30)
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		k, v, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("lost item at %d", i)
		}
		if v != k*10 {
			t.Fatalf("value mismatch %d/%d", k, v)
		}
		seen[k] = true
	}
	if len(seen) != 3 {
		t.Fatalf("claimed %d distinct items", len(seen))
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestSprayNeverReturnsHead(t *testing.T) {
	// Spray landing on the head sentinel must not claim it.
	q := New(2)
	h := q.Handle()
	for i := 0; i < 1000; i++ {
		h.Insert(uint64(i)+100, 0)
		if k, _, ok := h.DeleteMin(); !ok || k < 100 {
			t.Fatalf("iteration %d returned %d/%v", i, k, ok)
		}
	}
}

func TestManySprayersDrainEverything(t *testing.T) {
	const workers = 16 // more sprayers than items near the end
	q := New(workers)
	h := q.Handle()
	const n = 4000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	var total sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				if _, dup := total.LoadOrStore(k, true); dup {
					panic("duplicate delete")
				}
			}
		}()
	}
	wg.Wait()
	count := 0
	total.Range(func(any, any) bool { count++; return true })
	if count != n {
		t.Fatalf("drained %d of %d", count, n)
	}
}
