package spray

import (
	"sync"
	"testing"
)

// TestEnsureHandlesGrowsGeometry checks the Grower contract: growth
// re-derives the walk geometry for the larger P (monotonically — a taller
// start, never a shorter one), ignores shrinking requests, and leaves the
// list contents untouched.
func TestEnsureHandlesGrowsGeometry(t *testing.T) {
	q := New(1)
	h := q.Handle()
	for k := uint64(0); k < 64; k++ {
		h.Insert(k, k)
	}
	h1, j1 := q.Geometry()
	q.EnsureHandles(64)
	h2, j2 := q.Geometry()
	if q.P() != 64 {
		t.Fatalf("P after EnsureHandles(64) = %d, want 64", q.P())
	}
	if h2 < h1 {
		t.Fatalf("spray height shrank on growth: %d -> %d", h1, h2)
	}
	if h2 == h1 && j2 <= j1 {
		t.Fatalf("geometry unchanged by 64x growth: height %d jump %d -> %d", h1, j1, j2)
	}
	q.EnsureHandles(2) // never shrinks
	if h3, _ := q.Geometry(); h3 != h2 {
		t.Fatalf("geometry shrank on EnsureHandles(2): height %d -> %d", h2, h3)
	}
	for k := uint64(0); k < 64; k++ {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatalf("DeleteMin %d reported empty after growth", k)
		}
	}
}

// TestGeometryGrowthUnderConcurrentWalks sprays while the geometry is
// repeatedly re-derived; the packed publication must never hand a walk a
// torn (height, maxJump) pair — which would surface as panics or lost
// items. Run under -race in the make check matrix.
func TestGeometryGrowthUnderConcurrentWalks(t *testing.T) {
	q := New(1)
	const workers, ops = 4, 1500
	var wg sync.WaitGroup
	deleted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for i := 0; i < ops; i++ {
				h.Insert(uint64(w*ops+i), 0)
				if _, _, ok := h.DeleteMin(); ok {
					deleted[w]++
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for p := 2; p <= 128; p *= 2 {
			q.EnsureHandles(p)
		}
	}()
	wg.Wait()
	total := 0
	for _, d := range deleted {
		total += d
	}
	if got, want := q.Len(), workers*ops-total; got != want {
		t.Fatalf("Len=%d after concurrent growth, want %d", got, want)
	}
}
