package keys

import "math"

// Appendix F lists "Key type: integer, floating point" among the
// benchmark's orthogonal parameters. Every queue in the suite orders
// uint64 keys, so float64 priorities are supported through an
// order-preserving bijection rather than per-queue float variants: the
// classic sign-flip trick maps IEEE-754 doubles onto uint64 such that
//
//	a < b  ⇔  FromFloat64(a) < FromFloat64(b)
//
// for all non-NaN values, including negatives, zeros (-0 and +0 map
// adjacently) and infinities. Use:
//
//	h.Insert(keys.FromFloat64(3.14), value)
//	k, v, ok := h.DeleteMin()
//	prio := keys.ToFloat64(k)

// FromFloat64 maps a float64 to a uint64 preserving order. NaN has no
// defined order; it maps above +Inf.
func FromFloat64(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		// Negative: flip all bits so more-negative sorts smaller.
		return ^b
	}
	// Non-negative: set the sign bit so positives sort above negatives.
	return b | 1<<63
}

// ToFloat64 inverts FromFloat64.
func ToFloat64(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}
