package keys

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFloatRoundTrip(t *testing.T) {
	cases := []float64{0, math.Copysign(0, -1), 1, -1, 3.14, -2.71,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1)}
	for _, f := range cases {
		got := ToFloat64(FromFloat64(f))
		if got != f && !(f == 0 && got == 0) { // -0 == +0 under ==
			t.Fatalf("round trip %v -> %v", f, got)
		}
		// Bit-exact round trip, including the sign of zero.
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("bit round trip %v: %x -> %x", f, math.Float64bits(f), math.Float64bits(got))
		}
	}
}

func TestFloatOrderPreservedProperty(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ua, ub := FromFloat64(a), FromFloat64(b)
		switch {
		case a < b:
			return ua < ub
		case a > b:
			return ua > ub
		default:
			// a == b; -0 and +0 compare equal but may map to adjacent
			// codes — both orders of deletion are acceptable.
			return true
		}
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatSortEquivalence(t *testing.T) {
	vals := []float64{5.5, -3.2, 0, 1e308, -1e308, 0.001, -0.001, 42, math.Inf(-1), math.Inf(1)}
	mapped := make([]uint64, len(vals))
	for i, f := range vals {
		mapped[i] = FromFloat64(f)
	}
	sort.Float64s(vals)
	sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] })
	for i := range vals {
		if got := ToFloat64(mapped[i]); got != vals[i] {
			t.Fatalf("sorted position %d: %v vs %v", i, got, vals[i])
		}
	}
}

func TestNaNAboveInfinity(t *testing.T) {
	if FromFloat64(math.NaN()) <= FromFloat64(math.Inf(1)) {
		t.Fatal("NaN does not sort above +Inf")
	}
}
