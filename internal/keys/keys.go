// Package keys implements the key distributions of the paper's configurable
// benchmark (Section 2 and Appendix F):
//
//   - uniform: keys drawn uniformly at random from a 32-, 16- or 8-bit range;
//   - ascending/descending: a uniformly chosen base key from a small (10-bit)
//     range, shifted upwards (downwards) at each operation by adding the base
//     to (subtracting it from) the per-thread operation counter.
//
// Ascending/descending keys correspond to the "hold model" of Jones (CACM
// 1986): the key of the next inserted element depends monotonically on how
// far the computation has progressed, as in discrete event simulation.
//
// A Generator is stateful (it carries the operation counter) and therefore
// NOT safe for concurrent use; the harness creates one generator per worker,
// mirroring the paper's per-thread key generation.
package keys

import (
	"fmt"
	"sort"
	"strings"

	"cpq/internal/rng"
)

// Distribution identifies one of the benchmark key distributions.
type Distribution int

const (
	// Uniform32 draws keys uniformly from [0, 2^32).
	Uniform32 Distribution = iota
	// Uniform16 draws keys uniformly from [0, 2^16).
	Uniform16
	// Uniform8 draws keys uniformly from [0, 2^8). With a 10^6-element
	// prefill this forces massive key duplication, the paper's stress case
	// for duplicate handling.
	Uniform8
	// Ascending draws a base key uniformly from a 10-bit range and adds the
	// per-generator operation number, so keys drift upward over time.
	Ascending
	// Descending mirrors Ascending: keys drift downward over time from a
	// large starting offset.
	Descending
	// HoldAscending is the paper's "key dependency switch" in its strict
	// hold-model form (Appendix F): the next key is the key of the last
	// deleted element plus a random 10-bit base. Requires the benchmark
	// loop to report deleted keys via Observe.
	HoldAscending
	// HoldDescending subtracts the random base from the last deleted key.
	HoldDescending
)

// BaseBits is the width of the random base component of the Ascending and
// Descending distributions.
const BaseBits = 10

// descendingStart is the starting offset for Descending. It leaves room for
// billions of operations before the subtraction would underflow, while
// keeping keys comfortably inside the 64-bit range.
const descendingStart = uint64(1) << 40

// String returns the canonical benchmark name of the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform32:
		return "uniform32"
	case Uniform16:
		return "uniform16"
	case Uniform8:
		return "uniform8"
	case Ascending:
		return "ascending"
	case Descending:
		return "descending"
	case HoldAscending:
		return "holdasc"
	case HoldDescending:
		return "holddesc"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// All lists every supported distribution in display order.
func All() []Distribution {
	return []Distribution{Uniform32, Uniform16, Uniform8, Ascending, Descending,
		HoldAscending, HoldDescending}
}

// Parse converts a benchmark name ("uniform32", "ascending", ...) to a
// Distribution. It accepts the paper's shorthand "uniform" for uniform32.
func Parse(s string) (Distribution, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform", "uniform32", "32", "32bit":
		return Uniform32, nil
	case "uniform16", "16", "16bit":
		return Uniform16, nil
	case "uniform8", "8", "8bit":
		return Uniform8, nil
	case "ascending", "asc", "up":
		return Ascending, nil
	case "descending", "desc", "down":
		return Descending, nil
	case "holdasc", "hold", "holdascending":
		return HoldAscending, nil
	case "holddesc", "holddescending":
		return HoldDescending, nil
	}
	return 0, fmt.Errorf("keys: unknown distribution %q", s)
}

// Generator produces keys for one worker. Not safe for concurrent use.
type Generator struct {
	dist Distribution
	rng  *rng.Xoroshiro
	op   uint64 // per-generator operation counter (hold-model shift)
	last uint64 // last observed deleted key (strict hold model)
}

// NewGenerator returns a generator for dist drawing randomness from r.
// The caller retains ownership of r.
func NewGenerator(dist Distribution, r *rng.Xoroshiro) *Generator {
	return &Generator{dist: dist, rng: r}
}

// Distribution reports which distribution this generator draws from.
func (g *Generator) Distribution() Distribution { return g.dist }

// Ops reports how many keys have been generated so far.
func (g *Generator) Ops() uint64 { return g.op }

// Next returns the next key.
func (g *Generator) Next() uint64 {
	switch g.dist {
	case Uniform32:
		return uint64(g.rng.Uint32())
	case Uniform16:
		return g.rng.Uint64() & 0xffff
	case Uniform8:
		return g.rng.Uint64() & 0xff
	case Ascending:
		base := g.rng.Uint64() & (1<<BaseBits - 1)
		g.op++
		return base + g.op
	case Descending:
		base := g.rng.Uint64() & (1<<BaseBits - 1)
		g.op++
		// Keys drift downward; clamp defensively long after any realistic
		// benchmark horizon so the subtraction can never wrap.
		if g.op >= descendingStart {
			return base
		}
		return descendingStart - g.op + base
	case HoldAscending:
		base := g.rng.Uint64() & (1<<BaseBits - 1)
		return g.last + base
	case HoldDescending:
		base := g.rng.Uint64() & (1<<BaseBits - 1)
		if g.last == 0 {
			g.last = descendingStart
		}
		if base >= g.last {
			return 0
		}
		return g.last - base
	default:
		panic("keys: invalid distribution")
	}
}

// Observe reports the key of the last element the owning worker deleted;
// the strict hold-model distributions derive the next key from it, exactly
// as Appendix F describes ("a dependent key is formed by adding or
// subtracting the randomly generated base key to the key of the last
// deleted item"). Other distributions ignore it.
func (g *Generator) Observe(deletedKey uint64) { g.last = deletedKey }

// Fill generates n keys into a fresh slice. Used for prefilling queues.
func (g *Generator) Fill(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// SortedFill generates n keys and returns them sorted ascending. Useful for
// constructing LSM blocks and test fixtures.
func (g *Generator) SortedFill(n int) []uint64 {
	out := g.Fill(n)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxKey reports an inclusive upper bound on keys the distribution can
// produce within horizon operations. Used by tests and by sizing logic.
func MaxKey(d Distribution, horizon uint64) uint64 {
	switch d {
	case Uniform32:
		return 1<<32 - 1
	case Uniform16:
		return 1<<16 - 1
	case Uniform8:
		return 1<<8 - 1
	case Ascending:
		return (1<<BaseBits - 1) + horizon
	case Descending:
		return descendingStart + (1<<BaseBits - 1)
	case HoldAscending:
		return ^uint64(0) // depends on observed keys; unbounded in general
	case HoldDescending:
		return descendingStart + (1<<BaseBits - 1)
	default:
		panic("keys: invalid distribution")
	}
}
