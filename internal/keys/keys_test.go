package keys

import (
	"sort"
	"testing"
	"testing/quick"

	"cpq/internal/rng"
)

func gen(d Distribution, seed uint64) *Generator {
	return NewGenerator(d, rng.New(seed))
}

func TestStringRoundTrip(t *testing.T) {
	for _, d := range All() {
		got, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", d.String(), err)
		}
		if got != d {
			t.Fatalf("Parse(%q) = %v, want %v", d.String(), got, d)
		}
	}
}

func TestParseAliases(t *testing.T) {
	cases := map[string]Distribution{
		"uniform":  Uniform32,
		"UNIFORM8": Uniform8,
		" asc ":    Ascending,
		"desc":     Descending,
		"16bit":    Uniform16,
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := Parse("zipf"); err == nil {
		t.Fatal("Parse of unknown distribution did not error")
	}
}

func TestUniformRanges(t *testing.T) {
	for _, tc := range []struct {
		d   Distribution
		max uint64
	}{
		{Uniform32, 1<<32 - 1},
		{Uniform16, 1<<16 - 1},
		{Uniform8, 1<<8 - 1},
	} {
		g := gen(tc.d, 1)
		for i := 0; i < 10000; i++ {
			if k := g.Next(); k > tc.max {
				t.Fatalf("%v produced key %d > max %d", tc.d, k, tc.max)
			}
		}
	}
}

func TestUniform8ProducesDuplicates(t *testing.T) {
	// With only 256 possible keys, 10k draws must collide heavily — the
	// property Figure 3 / 4g relies on.
	g := gen(Uniform8, 2)
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		seen[g.Next()]++
	}
	if len(seen) > 256 {
		t.Fatalf("uniform8 produced %d distinct keys", len(seen))
	}
	if len(seen) < 200 {
		t.Fatalf("uniform8 covered only %d of 256 keys in 10k draws", len(seen))
	}
}

func TestUniform32Spread(t *testing.T) {
	g := gen(Uniform32, 3)
	var lowHalf int
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next() < 1<<31 {
			lowHalf++
		}
	}
	if lowHalf < n*48/100 || lowHalf > n*52/100 {
		t.Fatalf("uniform32 low-half fraction %d/%d looks skewed", lowHalf, n)
	}
}

func TestAscendingDrift(t *testing.T) {
	g := gen(Ascending, 4)
	const n = 100000
	ks := g.Fill(n)
	// Key i is base_i + (i+1) with base < 2^10, so key i ∈ (i, i + 2^10].
	for i, k := range ks {
		lo, hi := uint64(i), uint64(i)+1+(1<<BaseBits-1)
		if k <= lo || k > hi {
			t.Fatalf("ascending key %d = %d outside (%d, %d]", i, k, lo, hi)
		}
	}
	// Long-run trend must be upward: last decile average > first decile.
	first, last := avg(ks[:n/10]), avg(ks[n-n/10:])
	if last <= first {
		t.Fatalf("ascending keys do not drift up: first decile %v, last %v", first, last)
	}
}

func TestDescendingDrift(t *testing.T) {
	g := gen(Descending, 5)
	const n = 100000
	ks := g.Fill(n)
	first, last := avg(ks[:n/10]), avg(ks[n-n/10:])
	if last >= first {
		t.Fatalf("descending keys do not drift down: first decile %v, last %v", first, last)
	}
	for i, k := range ks {
		if k > MaxKey(Descending, uint64(n)) {
			t.Fatalf("descending key %d = %d exceeds MaxKey", i, k)
		}
	}
}

func TestDescendingNeverUnderflows(t *testing.T) {
	g := gen(Descending, 6)
	g.op = descendingStart - 2
	for i := 0; i < 10; i++ {
		k := g.Next()
		if k > descendingStart+(1<<BaseBits) {
			t.Fatalf("descending key wrapped: %d", k)
		}
	}
}

func TestOpsCounter(t *testing.T) {
	g := gen(Ascending, 7)
	if g.Ops() != 0 {
		t.Fatalf("fresh generator Ops() = %d", g.Ops())
	}
	g.Fill(37)
	if g.Ops() != 37 {
		t.Fatalf("Ops() = %d after 37 draws", g.Ops())
	}
	// Uniform distributions don't advance the hold-model counter.
	u := gen(Uniform32, 7)
	u.Fill(10)
	if u.Ops() != 0 {
		t.Fatalf("uniform generator advanced op counter to %d", u.Ops())
	}
}

func TestSortedFillSorted(t *testing.T) {
	for _, d := range All() {
		g := gen(d, 8)
		ks := g.SortedFill(1000)
		if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
			t.Fatalf("%v: SortedFill not sorted", d)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, d := range All() {
		a, b := gen(d, 99), gen(d, 99)
		for i := 0; i < 1000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("%v: same seed diverged at %d (%d vs %d)", d, i, x, y)
			}
		}
	}
}

func TestMaxKeyBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		horizon := uint64(n)%5000 + 1
		for _, d := range All() {
			g := gen(d, seed)
			max := MaxKey(d, horizon)
			for i := uint64(0); i < horizon; i++ {
				if g.Next() > max {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func avg(xs []uint64) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}
