package keys

import (
	"testing"
)

func TestHoldAscendingFollowsObservations(t *testing.T) {
	g := gen(HoldAscending, 1)
	// Without observations, keys are just the random base (< 2^10).
	for i := 0; i < 100; i++ {
		if k := g.Next(); k >= 1<<BaseBits {
			t.Fatalf("unobserved holdasc key %d out of base range", k)
		}
	}
	// After observing a deletion at key T, the next key is in [T, T+2^10).
	const T = 1_000_000
	g.Observe(T)
	for i := 0; i < 100; i++ {
		k := g.Next()
		if k < T || k >= T+1<<BaseBits {
			t.Fatalf("holdasc key %d not in [%d, %d)", k, T, T+1<<BaseBits)
		}
	}
}

func TestHoldDescendingFollowsObservations(t *testing.T) {
	g := gen(HoldDescending, 2)
	const T = 1_000_000
	g.Observe(T)
	for i := 0; i < 100; i++ {
		k := g.Next()
		if k > T || k+1<<BaseBits <= T-(1<<BaseBits) {
			t.Fatalf("holddesc key %d not in (%d, %d]", k, T-(1<<BaseBits), T)
		}
	}
}

func TestHoldDescendingNoUnderflow(t *testing.T) {
	g := gen(HoldDescending, 3)
	g.Observe(5) // nearly at zero
	for i := 0; i < 100; i++ {
		if k := g.Next(); k > 5 {
			t.Fatalf("holddesc key %d exceeds last observation 5", k)
		}
	}
}

func TestHoldDescendingDefaultStart(t *testing.T) {
	// Without observations the generator must start from a high offset
	// rather than underflowing around zero.
	g := gen(HoldDescending, 4)
	k := g.Next()
	if k < 1<<39 {
		t.Fatalf("unobserved holddesc key %d suspiciously small", k)
	}
}

func TestHoldModelSimulatedLoop(t *testing.T) {
	// A hold-model loop: delete-then-insert with dependent keys, as in
	// discrete event simulation; keys must drift monotonically upward on
	// average across the run.
	g := gen(HoldAscending, 5)
	current := uint64(500)
	g.Observe(current)
	var first, last float64
	const n = 10000
	for i := 0; i < n; i++ {
		k := g.Next() // schedule the next event
		g.Observe(k)  // it becomes the next deletion
		if i < n/10 {
			first += float64(k)
		}
		if i >= n-n/10 {
			last += float64(k)
		}
	}
	if last <= first {
		t.Fatal("hold-model keys do not drift upward")
	}
}

func TestObserveIgnoredByUniform(t *testing.T) {
	a, b := gen(Uniform32, 6), gen(Uniform32, 6)
	b.Observe(12345)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Observe changed a uniform generator's stream")
		}
	}
}
