package locksl

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New()
	if q.Name() != "locksl" {
		t.Fatalf("name = %q", q.Name())
	}
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestStrictOrder(t *testing.T) {
	q := New()
	h := q.Handle()
	r := rng.New(1)
	const n = 4000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 600
		want[i] = k
		h.Insert(k, k*3)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != want[i] || v != k*3 {
			t.Fatalf("deletion %d = %d/%d/%v, want %d", i, k, v, ok, want[i])
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New()
	q.Insert(5, 50)
	q.Insert(2, 20)
	if k, v, ok := q.PeekMin(); !ok || k != 2 || v != 20 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek removed an item")
	}
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	q := New()
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 3)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}
