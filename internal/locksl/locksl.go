// Package locksl provides a skiplist protected by a single global lock.
// Appendix D recalls that Sundell and Tsigas benchmarked their lock-free
// queue as "slightly better than a priority queue consisting of a Skiplist
// protected by a single global lock" — this is that baseline, the skiplist
// counterpart of seqheap.GlobalLock. Comparing the two global-lock
// baselines isolates the sequential-structure cost (array heap vs. pointer
// skiplist) from all concurrency effects.
package locksl

import (
	"sync"

	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/skiplist"
)

// Queue is a globally locked skiplist priority queue. Strict semantics.
type Queue struct {
	mu   sync.Mutex
	list *skiplist.List
	rng  *rng.Xoroshiro // tower heights; guarded by mu
}

var _ pq.Queue = (*Queue)(nil)
var _ pq.Handle = (*Queue)(nil)
var _ pq.Peeker = (*Queue)(nil)

// New returns an empty queue.
func New() *Queue {
	return &Queue{list: skiplist.New(), rng: rng.NewAuto()}
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "locksl" }

// Handle implements pq.Queue; the queue itself is the handle (no
// thread-local state — the global lock serializes everything).
func (q *Queue) Handle() pq.Handle { return q }

// Insert implements pq.Handle.
func (q *Queue) Insert(key, value uint64) {
	q.mu.Lock()
	q.list.Insert(key, value, skiplist.RandomHeight(q.rng))
	q.mu.Unlock()
}

// DeleteMin implements pq.Handle: under the lock, take the first node and
// physically unlink it.
func (q *Queue) DeleteMin() (key, value uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n, _ := q.list.Head().Next(0)
	if n.IsNil() {
		return 0, 0, false
	}
	n.MarkTower()
	q.list.Unlink(n)
	return n.Key(), n.Value(), true
}

// PeekMin implements pq.Peeker.
func (q *Queue) PeekMin() (key, value uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n, _ := q.list.Head().Next(0)
	if n.IsNil() {
		return 0, 0, false
	}
	return n.Key(), n.Value(), true
}

// Len counts items (O(n); tests only).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.list.CountLive()
}
