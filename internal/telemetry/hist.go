package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// histBuckets is the number of log₂ latency buckets. Bucket 0 holds
// observations of 0..1ns; bucket i (i ≥ 1) holds observations v with
// 2^(i-1) < v ≤ 2^i ns, i.e. bits.Len64(v-1) == i. 64 buckets cover the
// full uint64 nanosecond range, so no observation is ever clipped; an op
// above ~146ns lands in bucket 8+, and a 1-second outlier in bucket 30.
const histBuckets = 64

// Histogram is a fixed-bucket log₂ latency histogram. Like a Shard's
// counters it is owned by one writer and read by Capture, so buckets are
// atomics; observe never allocates. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
}

// observe records one latency in nanoseconds. Negative observations (clock
// went backwards across a suspend) are recorded as zero rather than
// discarded, so Count stays the number of calls.
func (h *Histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(uint64(ns))].Add(1)
}

// bucketOf maps a nanosecond value to its log₂ bucket index.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(v - 1)
}

// bucketLow and bucketHigh bound bucket i: (low, high] in nanoseconds.
func bucketLow(i int) uint64 {
	if i == 0 {
		return 0
	}
	return uint64(1) << (i - 1)
}

func bucketHigh(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << i
}

// HistSnapshot is an immutable copy of a Histogram's buckets, produced by
// Capture and manipulated value-wise (Diff/Merge/Percentile).
type HistSnapshot struct {
	Buckets [histBuckets]uint64
}

func (h *HistSnapshot) accumulate(src *Histogram) {
	for i := range src.buckets {
		h.Buckets[i] += src.buckets[i].Load()
	}
}

func (h HistSnapshot) Diff(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range h.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return d
}

func (h HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	var m HistSnapshot
	for i := range h.Buckets {
		m.Buckets[i] = h.Buckets[i] + o.Buckets[i]
	}
	return m
}

// Count returns the number of recorded observations.
func (h HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Percentile returns the p-th percentile (0..100) in nanoseconds,
// resolved to the upper bound of the bucket containing that rank — the
// same pessimistic convention as the rank-error histogram: "p99 ≤ X" is a
// claim the data supports, an interpolated midpoint would not be. Returns
// 0 for an empty histogram.
func (h HistSnapshot) Percentile(p float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// rank is the 1-based index of the observation that dominates the
	// percentile (nearest-rank definition).
	rank := uint64(p/100*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			return float64(bucketHigh(i))
		}
	}
	return float64(bucketHigh(histBuckets - 1))
}

// String renders the nonzero buckets compactly, e.g.
// "≤128ns:913 ≤256ns:87 ≤1.0µs:3", for report appendices.
func (h HistSnapshot) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "≤%s:%d", nsString(bucketHigh(i)), c)
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// nsString renders a nanosecond bound with a human unit (ns/µs/ms/s).
func nsString(ns uint64) string {
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	}
}
