package telemetry

import (
	"fmt"
	"strings"
)

// Table renders the snapshot's nonzero counters as an aligned text table,
// one counter per line:
//
//	cas-publish-retry      1234   0.0123/op   SLSM state-publish CAS lost, merge redone
//
// ops, when nonzero, adds the per-operation rate column (events divided by
// the measured phase's completed operations). Every line is prefixed with
// indent. An all-zero snapshot renders a single explanatory line — for a
// strict queue that is the expected output, not an error.
func (s Snapshot) Table(indent string, ops uint64) string {
	var b strings.Builder
	for c := Counter(0); c < NumCounters; c++ {
		v := s.Counts[c]
		if v == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s%-20s %12d", indent, c.Name(), v)
		if ops > 0 {
			fmt.Fprintf(&b, "  %9.4f/op", float64(v)/float64(ops))
		}
		fmt.Fprintf(&b, "   %s\n", c.Help())
	}
	if b.Len() == 0 {
		return indent + "(no internal events recorded — queue has no instrumented paths or they never fired)\n"
	}
	return b.String()
}

// LatencySummary renders one line per op kind with sampled-count and
// percentiles, e.g.
//
//	insert   n=62500  p50≤256ns  p99≤2.0µs  p99.9≤16.4µs
//
// Histograms are empty unless the harness sampled latencies (telemetry
// enabled); then the summary is the empty string.
func (s Snapshot) LatencySummary(indent string) string {
	var b strings.Builder
	for _, row := range []struct {
		name string
		h    HistSnapshot
	}{{"insert", s.InsertLat}, {"delete-min", s.DeleteLat}} {
		if row.h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s%-10s n=%-9d p50≤%-8s p99≤%-8s p99.9≤%s\n",
			indent, row.name, row.h.Count(),
			nsString(uint64(row.h.Percentile(50))),
			nsString(uint64(row.h.Percentile(99))),
			nsString(uint64(row.h.Percentile(99.9))))
	}
	return b.String()
}

// BatchWidthSummary renders one line for the realized-batch-width
// histogram, e.g.
//
//	batch-width  n=12500   p50≤8  p99≤8
//
// Buckets are the same log₂ grid as the latency histograms, but the
// observations are item counts, not nanoseconds. Empty histogram (no
// native batch calls ran) renders the empty string.
func (s Snapshot) BatchWidthSummary(indent string) string {
	h := s.BatchWidth
	if h.Count() == 0 {
		return ""
	}
	return fmt.Sprintf("%s%-10s n=%-9d p50≤%-8d p99≤%d\n",
		indent, "batch-width", h.Count(),
		uint64(h.Percentile(50)), uint64(h.Percentile(99)))
}
