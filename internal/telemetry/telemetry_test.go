package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with telemetry on and restores the previous state and
// registry afterwards. Tests in this package are sequential (none call
// t.Parallel), so flipping the plain bool here is safe.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled
	Enabled = true
	defer func() {
		Enabled = prev
		Reset()
	}()
	Reset()
	f()
}

func TestCounterMetaComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		if c.Name() == "" {
			t.Errorf("counter %d has no name", c)
		}
		if c.Help() == "" {
			t.Errorf("counter %s has no help text", c.Name())
		}
		if seen[c.Name()] {
			t.Errorf("duplicate counter name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}

// TestShardingUnderRace exercises the intended concurrency pattern — each
// goroutine increments only its own shard, Capture aggregates after the
// join — and checks the totals. Run under -race this also proves the
// pattern is race-free.
func TestShardingUnderRace(t *testing.T) {
	withEnabled(t, func() {
		const workers = 8
		const perWorker = 10_000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := NewShard()
				for i := 0; i < perWorker; i++ {
					s.Inc(CASPublishRetry)
					s.Add(SpyItems, 3)
					s.ObserveInsert(int64(i))
				}
			}()
		}
		wg.Wait()
		snap := Capture()
		if got, want := snap.Counts[CASPublishRetry], uint64(workers*perWorker); got != want {
			t.Errorf("CASPublishRetry = %d, want %d", got, want)
		}
		if got, want := snap.Counts[SpyItems], uint64(3*workers*perWorker); got != want {
			t.Errorf("SpyItems = %d, want %d", got, want)
		}
		if got, want := snap.InsertLat.Count(), uint64(workers*perWorker); got != want {
			t.Errorf("InsertLat.Count = %d, want %d", got, want)
		}
	})
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 0}, // bucket 0 holds 0..1ns
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{128, 7}, {129, 8}, {256, 8},
		{1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		// Consistency: v must lie in (bucketLow, bucketHigh].
		b := bucketOf(c.v)
		if c.v > bucketHigh(b) || (b > 0 && c.v <= bucketLow(b)) {
			t.Errorf("value %d outside its bucket %d bounds (%d, %d]",
				c.v, b, bucketLow(b), bucketHigh(b))
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	// 99 observations in bucket ≤128ns, 1 in bucket ≤1024ns.
	for i := 0; i < 99; i++ {
		h.observe(100)
	}
	h.observe(1000)
	var s HistSnapshot
	s.accumulate(&h)
	if got := s.Percentile(50); got != 128 {
		t.Errorf("p50 = %v, want 128 (bucket upper bound)", got)
	}
	if got := s.Percentile(99); got != 128 {
		t.Errorf("p99 = %v, want 128", got)
	}
	if got := s.Percentile(100); got != 1024 {
		t.Errorf("p100 = %v, want 1024", got)
	}
	if got := (HistSnapshot{}).Percentile(50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestSnapshotDiffMerge(t *testing.T) {
	withEnabled(t, func() {
		s := NewShard()
		s.Inc(LocalMerge)
		s.Inc(LocalMerge)
		s.ObserveDelete(100)
		before := Capture()
		s.Inc(LocalMerge)
		s.Add(SharedRunItems, 7)
		s.ObserveDelete(200)
		delta := Capture().Diff(before)
		if got := delta.Counts[LocalMerge]; got != 1 {
			t.Errorf("diff LocalMerge = %d, want 1", got)
		}
		if got := delta.Counts[SharedRunItems]; got != 7 {
			t.Errorf("diff SharedRunItems = %d, want 7", got)
		}
		if got := delta.DeleteLat.Count(); got != 1 {
			t.Errorf("diff DeleteLat.Count = %d, want 1", got)
		}
		sum := delta.Merge(delta)
		if got := sum.Counts[SharedRunItems]; got != 14 {
			t.Errorf("merge SharedRunItems = %d, want 14", got)
		}
		if delta.Zero() {
			t.Error("nonzero delta reports Zero()")
		}
		if !(Snapshot{}).Zero() {
			t.Error("empty snapshot does not report Zero()")
		}
	})
}

// TestDisabledShardShared: with telemetry off, NewShard hands out one shared
// unregistered sink — no allocation, no registry growth.
func TestDisabledShardShared(t *testing.T) {
	if Enabled {
		t.Fatal("test requires the default Enabled=false")
	}
	a, b := NewShard(), NewShard()
	if a != b || a != &disabledShard {
		t.Error("disabled NewShard did not return the shared sink")
	}
	Reset()
	NewShard().Inc(LocalMerge)
	if !Capture().Zero() {
		t.Error("disabled shard leaked events into Capture")
	}
}

func TestNilShardSafe(t *testing.T) {
	withEnabled(t, func() {
		var s *Shard
		s.Inc(LocalMerge) // must not panic
		s.Add(SpyItems, 5)
		s.ObserveInsert(10)
		s.ObserveDelete(10)
	})
}

// TestOpPathAllocs guards the "no allocation on the operation path" rule in
// both states of the Enabled flag.
func TestOpPathAllocs(t *testing.T) {
	check := func(label string, s *Shard) {
		if n := testing.AllocsPerRun(100, func() {
			s.Inc(CASItemTakeFail)
			s.Add(SharedRunItems, 2)
			s.ObserveInsert(150)
			s.ObserveDelete(150)
		}); n != 0 {
			t.Errorf("%s: %v allocs per op-path round, want 0", label, n)
		}
	}
	check("disabled", NewShard())
	withEnabled(t, func() { check("enabled", NewShard()) })
}

func TestReportRendering(t *testing.T) {
	withEnabled(t, func() {
		s := NewShard()
		s.Inc(SLSMRepublish)
		s.Add(CASItemTakeFail, 42)
		s.ObserveInsert(100)
		snap := Capture()
		table := snap.Table("  ", 1000)
		for _, want := range []string{"slsm-republish", "cas-take-fail", "42", "/op"} {
			if !strings.Contains(table, want) {
				t.Errorf("Table missing %q in:\n%s", want, table)
			}
		}
		if strings.Contains(table, "local-merge") {
			t.Errorf("Table includes zero counter:\n%s", table)
		}
		lat := snap.LatencySummary("  ")
		if !strings.Contains(lat, "insert") || !strings.Contains(lat, "p99") {
			t.Errorf("LatencySummary unexpected:\n%s", lat)
		}
	})
	empty := Snapshot{}
	if got := empty.Table("", 0); !strings.Contains(got, "no internal events") {
		t.Errorf("empty Table = %q, want explanatory line", got)
	}
}
