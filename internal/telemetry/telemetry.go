// Package telemetry is the suite's zero-dependency instrumentation layer:
// sharded per-handle atomic counters for the queues' internal events (CAS
// retries, spy steals, SLSM republishes, buffer flushes, ...) and
// fixed-bucket log₂ latency histograms for Insert and DeleteMin.
//
// The paper's contribution is measurement, and so is this package's: a
// throughput scalar alone cannot distinguish "fast because uncontended"
// from "fast because it starves a code path", and a claim like "capped
// backoff on the optimistic CAS publish" is unverifiable unless the
// benchmark can count publish retries. Every counter here corresponds to
// one such claim-bearing event; DESIGN.md §5 documents each counter's
// meaning and its exact emission site.
//
// # Design
//
// Instrumentation must not perturb what it measures, so the layer follows
// three rules:
//
//   - Sharding: every handle (and every harness worker) owns a private
//     *Shard and increments only its own counters, so enabling telemetry
//     adds no inter-thread cache-line traffic. Snapshot aggregates the
//     shards only after workers have quiesced.
//   - No allocation on the operation path: Inc and Observe never allocate
//     (guarded by testing.AllocsPerRun); shards are allocated once at
//     handle creation.
//   - One branch when disabled: every instrumentation site is behind the
//     package-level Enabled flag, so a disabled run pays a single
//     predictable branch per event site (measured ≤2% on the fig-4a
//     8-thread cell, see DESIGN.md §5).
//
// Enabled is a plain bool by design: it must be set once, before any
// instrumented queue or worker is created (the CLIs set it in main before
// the first run), and never toggled while workers run. Toggling it
// mid-run is a data race — the flag buys its zero cost by not being
// atomic.
//
// # Usage
//
//	telemetry.Enabled = true            // before creating queues
//	before := telemetry.Capture()
//	... run the measured phase ...
//	delta := telemetry.Capture().Diff(before)
//	fmt.Print(delta.Table("  ", totalOps))
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Enabled turns instrumentation on. It must be set before instrumented
// queues or workers are created and must not be toggled while they run
// (see the package documentation). When false — the default — every
// instrumentation site reduces to one branch and shards are not
// registered, so idle cost is zero allocation and zero aggregation state.
var Enabled bool

// Counter identifies one instrumented event. The constants below are the
// complete set; NumCounters bounds per-shard storage. Each counter's
// meaning and emission site (file:function) is documented on its constant
// and, in prose, in DESIGN.md §5.
type Counter int

const (
	// CASPublishRetry counts lost optimistic state-publish CASes on the
	// SLSM followed by a re-merge (core/slsm.go:insertBatch). A storm of
	// these is exactly what the capped publish backoff damps.
	CASPublishRetry Counter = iota
	// CASItemTakeFail counts failed item take() attempts: another thread
	// logically deleted the item first (core/klsm.go:DeleteMin via
	// localLSM.takeAtLocked, core/slsm.go:takeRun). Most failures are a
	// short-circuit load finding the item already taken, not a lost CAS
	// proper — at large k this counter is dominated by scans over stale
	// entries in the pivot range, making it the pivot-staleness signal.
	CASItemTakeFail
	// SLSMRepublish counts fresh pivot ranges published after the current
	// range was found exhausted (core/slsm.go:takeRun, peekCandidate).
	// Ascending-key workloads at large k collapse into republish storms;
	// this counter makes that visible (EXPERIMENTS.md "How to read a
	// report").
	SLSMRepublish
	// SLSMRepublishFail counts republish CASes lost to a concurrent
	// publisher (core/slsm.go:takeRun, peekCandidate).
	SLSMRepublishFail
	// SharedRunTake counts batched pivot runs taken from the SLSM under
	// one state load (core/klsm.go:DeleteMin via slsm.takeRun).
	SharedRunTake
	// SharedRunItems counts items obtained through those runs; divided by
	// SharedRunTake it yields the mean run length (max sharedRunMax).
	SharedRunItems
	// RunBufferFlush counts non-empty shared-run buffers returned to the
	// SLSM when a worker's measured phase ends (core/klsm.go:Flush).
	RunBufferFlush
	// PivotLocalWin counts DeleteMins where the binary-searched pivot
	// prefix showed no shared item below the local minimum, so the local
	// candidate won without touching shared state (core/slsm.go:takeRun).
	PivotLocalWin
	// LocalMerge counts local-LSM tail merges — two blocks merged into one
	// to restore the class invariant (core/local.go:mergeTailLocked).
	LocalMerge
	// LocalEvict counts local blocks evicted into the SLSM on overflow
	// past k items (core/klsm.go:Insert).
	LocalEvict
	// SpySteal counts successful spy rounds: a handle with an empty local
	// component copied another handle's items (core/klsm.go:spy).
	SpySteal
	// SpyItems counts the items copied by those rounds.
	SpyItems
	// MQStickReset counts abandoned sticky sub-queue selections in the
	// engineered MultiQueue — a try-lock failure or a drained target forced
	// a resample (multiq/engineered.go:lockForInsert, refillLocked).
	MQStickReset
	// MQInsFlush counts insertion-buffer overflows published to a
	// sub-queue under one lock (multiq/engineered.go:Insert, Flush).
	MQInsFlush
	// MQDelRefill counts deletion-buffer refills — batched pops of up to b
	// items under one lock (multiq/engineered.go:refillLocked).
	MQDelRefill
	// MQSweep counts full sub-queue sweeps, the MultiQueue's emptiness
	// oracle and sampling fallback (multiq/multiq.go:sweepSubqueues).
	MQSweep
	// SprayMiss counts spray walks that found no claimable node and
	// retried (spray/spray.go:DeleteMin).
	SprayMiss
	// SprayFallback counts DeleteMins that fell back to the strict
	// head scan after exhausting their spray attempts
	// (spray/spray.go:DeleteMin).
	SprayFallback
	// LindenDeadWalk counts dead (level-0-marked) nodes walked over by the
	// Lindén delete_min before it claimed a live node or hit the end
	// (linden/linden.go:DeleteMin; one batched Add per call). Divided by
	// DeleteMin count it yields the mean dead-prefix length, the quantity
	// BoundOffset trades against restructure frequency.
	LindenDeadWalk
	// LindenRestructure counts batch physical unlinks of the dead prefix,
	// triggered when a delete_min walks past BoundOffset dead nodes
	// (linden/linden.go:restructure).
	LindenRestructure
	// LindenSpliceRetry counts failed validated level-0 splice CASes on the
	// Lindén insert, each followed by a fresh find
	// (linden/linden.go:Insert; one batched Add per call).
	LindenSpliceRetry
	// LotanClaimFail counts head-scan steps of the Shavit-Lotan delete_min
	// that could not claim a node — already claimed, already dead, or a
	// lost claim CAS (lotan/lotan.go:DeleteMin; one batched Add per call).
	// This is the head-contention signal the Lindén batching avoids.
	LotanClaimFail
	// BatchInsertItems counts items moved through native InsertN paths
	// (one batched Add per call — every substrate's InsertN). Divided by
	// the batch-width histogram's count it yields the mean insert batch.
	BatchInsertItems
	// BatchDeleteItems counts items moved through native DeleteMinN paths
	// (one batched Add per call — every substrate's DeleteMinN).
	BatchDeleteItems
	// BatchFallback counts batched harness operations that fell back to
	// the scalar loop because the handle implements neither BatchInserter
	// nor BatchDeleter (harness/harness.go:worker, quality/quality.go:Run;
	// one batched Add per worker run). Nonzero on a queue claimed to have
	// a native batch path means the capability detection is broken.
	BatchFallback
	// PoolReuse counts Acquires served from a free-list (shard slot or
	// overflow stack) rather than by creating a handle
	// (pq/pool.go:Acquire). This is the hit path gated at 0 allocs/op.
	PoolReuse
	// PoolGrow counts handles created by the capped growth slow path
	// (pq/pool.go:grow). Under steady churn this saturates at the cap and
	// stops moving; continued growth means releases are not keeping up.
	PoolGrow
	// PoolSteal counts abandoned handles reclaimed by the pool — a wrapper
	// became unreachable while acquired, its buffers were flushed back and
	// the handle returned to the free list (pq/pool.go:reclaim).
	PoolSteal
	// PoolStarve counts Acquire wait rounds at the cap: every free-list
	// probe failed and growth is exhausted, so the caller yielded
	// (pq/pool.go:Acquire). A high rate means the cap is undersized for
	// the live concurrency.
	PoolStarve
	// NetConnOpen counts connections accepted by the pqd service
	// (netpq/server.go:Serve). The gap against the stats connsActive
	// gauge is the churn rate.
	NetConnOpen
	// NetFrameIn counts request frames decoded off connections
	// (netpq/server.go:dispatch). Divided into ops moved it yields the
	// realized frame batching — the socket-path analogue of the
	// batch-width histogram.
	NetFrameIn
	// NetFrameOut counts response frames handed to connection responders
	// (netpq/server.go:respond). In a healthy run it tracks NetFrameIn
	// one-to-one; a persistent gap means responses are queued behind a
	// slow consumer.
	NetFrameOut
	// NetWriteStall counts dispatcher blocks on a full per-connection
	// write queue (netpq/server.go:enqueue): the responder is not
	// draining as fast as requests complete, so backpressure propagates
	// to the client via the stalled read loop.
	NetWriteStall
	// NetDrop counts connections dropped by slow-consumer eviction: a
	// single response stayed unqueueable for the whole stall timeout
	// (netpq/server.go:enqueue).
	NetDrop
	// DurWALAppend counts WAL records appended by the durable tier
	// (durable/wal.go:append) — one per logged InsertN/DeleteMinN.
	DurWALAppend
	// DurFsync counts durability barriers issued against the backing
	// store (durable/wal.go:commit). DurFsync/DurWALAppend is the
	// fsyncs/op ratio group commit exists to push below 1.
	DurFsync
	// DurGroupJoin counts operations that rode another producer's fsync
	// instead of issuing their own (durable/wal.go:commitWait). At high
	// producer counts this should dominate DurFsync.
	DurGroupJoin
	// DurSnapshot counts snapshots committed
	// (durable/snapshot.go:takeSnapshot): seal, incremental fold,
	// chunked part write, manifest commit, WAL truncation — all
	// concurrent with live traffic.
	DurSnapshot
	// DurReplayItems counts live items reconstructed by crash recovery
	// (durable/recover.go:replay) — snapshot items plus WAL-tail inserts
	// minus logged deletes.
	DurReplayItems
	// DurSnapChunk counts partial-snapshot chunk records written by the
	// concurrent snapshotter (durable/snapshot.go:takeSnapshot) while
	// producers keep appending to the live WAL tail.
	DurSnapChunk

	// NumCounters bounds per-shard counter storage; not a counter itself.
	NumCounters
)

// counterMeta pairs a counter's short table name with a one-line meaning.
var counterMeta = [NumCounters]struct{ name, help string }{
	CASPublishRetry:   {"cas-publish-retry", "SLSM state-publish CAS lost, merge redone"},
	CASItemTakeFail:   {"cas-take-fail", "item take() failed: already taken by another thread"},
	SLSMRepublish:     {"slsm-republish", "fresh pivot range published after exhaustion"},
	SLSMRepublishFail: {"slsm-republish-fail", "republish CAS lost to concurrent publisher"},
	SharedRunTake:     {"shared-run-take", "batched pivot runs taken under one state load"},
	SharedRunItems:    {"shared-run-items", "items obtained through shared runs"},
	RunBufferFlush:    {"run-buffer-flush", "end-of-phase shared-run buffers returned to SLSM"},
	PivotLocalWin:     {"pivot-local-win", "pivot prefix empty below bound; local candidate won"},
	LocalMerge:        {"local-merge", "local-LSM tail merges"},
	LocalEvict:        {"local-evict", "local blocks evicted into the SLSM"},
	SpySteal:          {"spy-steal", "successful spy rounds (victim items copied)"},
	SpyItems:          {"spy-items", "items copied by spy rounds"},
	MQStickReset:      {"mq-stick-reset", "sticky sub-queue abandoned (contended or drained)"},
	MQInsFlush:        {"mq-ins-flush", "insertion-buffer flushes to a sub-queue"},
	MQDelRefill:       {"mq-del-refill", "deletion-buffer batch refills"},
	MQSweep:           {"mq-sweep", "full sub-queue sweeps (emptiness oracle)"},
	SprayMiss:         {"spray-miss", "spray walks that found no claimable node"},
	SprayFallback:     {"spray-fallback", "DeleteMins that fell back to the strict head scan"},
	LindenDeadWalk:    {"linden-dead-walk", "dead prefix nodes walked over by delete_min"},
	LindenRestructure: {"linden-restructure", "batch physical unlinks of the dead prefix"},
	LindenSpliceRetry: {"linden-splice-retry", "lost validated level-0 splice CASes on insert"},
	LotanClaimFail:    {"lotan-claim-fail", "head-scan steps that could not claim a node"},
	BatchInsertItems:  {"batch-insert-items", "items moved through native InsertN paths"},
	BatchDeleteItems:  {"batch-delete-items", "items moved through native DeleteMinN paths"},
	BatchFallback:     {"batch-fallback", "batched ops served by the scalar fallback loop"},
	PoolReuse:         {"pool-reuse", "Acquires served from a free-list (zero-alloc hit path)"},
	PoolGrow:          {"pool-grow", "handles created by the capped growth slow path"},
	PoolSteal:         {"pool-steal", "abandoned handles reclaimed (flushed and re-pooled)"},
	PoolStarve:        {"pool-starve", "Acquire wait rounds with free lists empty at the cap"},
	NetConnOpen:       {"net-conn-open", "connections accepted by the pqd service"},
	NetFrameIn:        {"net-frame-in", "request frames decoded off connections"},
	NetFrameOut:       {"net-frame-out", "response frames handed to connection responders"},
	NetWriteStall:     {"net-write-stall", "dispatcher blocks on a full per-connection write queue"},
	NetDrop:           {"net-drop", "connections dropped by slow-consumer eviction"},
	DurWALAppend:      {"dur-wal-append", "WAL records appended (one per logged batch op)"},
	DurFsync:          {"dur-fsync", "durability barriers issued to the backing store"},
	DurGroupJoin:      {"dur-group-join", "ops that rode another producer's fsync (group commit)"},
	DurSnapshot:       {"dur-snapshot", "concurrent snapshots committed (fold, part, manifest, truncate)"},
	DurReplayItems:    {"dur-replay-items", "live items reconstructed by crash recovery"},
	DurSnapChunk:      {"dur-snap-chunk", "partial-snapshot chunks written concurrently with traffic"},
}

// Name returns the counter's short table identifier, e.g. "slsm-republish".
func (c Counter) Name() string { return counterMeta[c].name }

// Help returns the counter's one-line description.
func (c Counter) Help() string { return counterMeta[c].help }

// Shard holds one handle's (or one harness worker's) private counters and
// latency histograms. Only the owner increments it; Capture reads it, so
// the fields are atomics — uncontended atomic adds on a line no other
// thread writes, which keeps the enabled path cheap and the race detector
// quiet. The trailing pad keeps a neighbouring allocation off the last
// counter's cache line.
type Shard struct {
	counts     [NumCounters]atomic.Uint64
	insertLat  Histogram
	deleteLat  Histogram
	batchWidth Histogram
	_          [8]uint64
}

// registry is the global shard list Capture aggregates over. Shards are
// only registered while Enabled, so a disabled process keeps no telemetry
// state at all. The slice is append-only; Capture snapshots it under mu
// and reads shard contents outside it.
var registry struct {
	mu     sync.Mutex
	shards []*Shard
}

// disabledShard is handed out by NewShard while telemetry is off: one
// shared sink, never registered, so disabled handles cost no allocation
// and no registry growth. Its contents are never read.
var disabledShard Shard

// NewShard returns a fresh registered shard for one owner, or the shared
// unregistered sink when telemetry is disabled. Handles call this once at
// creation time; it must not be called on the operation path.
func NewShard() *Shard {
	if !Enabled {
		return &disabledShard
	}
	s := &Shard{}
	registry.mu.Lock()
	registry.shards = append(registry.shards, s)
	registry.mu.Unlock()
	return s
}

// Reset drops every registered shard. Shards handed out earlier keep
// working but are no longer aggregated; tests use this for isolation.
func Reset() {
	registry.mu.Lock()
	registry.shards = nil
	registry.mu.Unlock()
}

// Inc adds 1 to counter c. Disabled: one branch, no write, no allocation.
// A nil shard is a valid sink (internal code paths exercised by tests
// without a handle pass nil); the nil check only runs when enabled.
func (s *Shard) Inc(c Counter) {
	if !Enabled {
		return
	}
	if s == nil {
		return
	}
	s.counts[c].Add(1)
}

// Add adds n to counter c (batch sites: run lengths, spy item counts).
// Nil-safe like Inc.
func (s *Shard) Add(c Counter, n uint64) {
	if !Enabled {
		return
	}
	if s == nil {
		return
	}
	s.counts[c].Add(n)
}

// ObserveInsert records one Insert latency in nanoseconds. Nil-safe like Inc.
func (s *Shard) ObserveInsert(ns int64) {
	if !Enabled {
		return
	}
	if s == nil {
		return
	}
	s.insertLat.observe(ns)
}

// ObserveDelete records one DeleteMin latency in nanoseconds. Nil-safe like Inc.
func (s *Shard) ObserveDelete(ns int64) {
	if !Enabled {
		return
	}
	if s == nil {
		return
	}
	s.deleteLat.observe(ns)
}

// ObserveBatchWidth records the realized width of one native batch call —
// the item count actually moved, which for DeleteMinN may be short of the
// requested n. The histogram reuses the log₂ buckets (widths, not
// nanoseconds). Nil-safe like Inc; one observation per batch call.
func (s *Shard) ObserveBatchWidth(n int) {
	if !Enabled {
		return
	}
	if s == nil {
		return
	}
	s.batchWidth.observe(int64(n))
}

// Snapshot is an aggregated, immutable view of all registered shards at
// one point in time. Two snapshots bracketing a measured phase Diff into
// the phase's own event counts — the harness takes one after prefill and
// one after the workers join, so prefill activity never pollutes the
// measured numbers.
type Snapshot struct {
	Counts     [NumCounters]uint64
	InsertLat  HistSnapshot
	DeleteLat  HistSnapshot
	BatchWidth HistSnapshot
}

// Capture aggregates every registered shard into a Snapshot. It must only
// run while shard owners are quiescent relative to the numbers being
// compared (between runs, after WaitGroup joins); the per-word loads are
// atomic, so a mid-run Capture is safe but reflects a torn moment.
func Capture() Snapshot {
	registry.mu.Lock()
	shards := registry.shards
	registry.mu.Unlock()
	var snap Snapshot
	for _, s := range shards {
		for c := Counter(0); c < NumCounters; c++ {
			snap.Counts[c] += s.counts[c].Load()
		}
		snap.InsertLat.accumulate(&s.insertLat)
		snap.DeleteLat.accumulate(&s.deleteLat)
		snap.BatchWidth.accumulate(&s.batchWidth)
	}
	return snap
}

// Diff returns the per-counter and per-bucket difference s - prev.
// Counters are monotone, so with prev captured before s the result is the
// event count of the bracketed interval.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var d Snapshot
	for c := Counter(0); c < NumCounters; c++ {
		d.Counts[c] = s.Counts[c] - prev.Counts[c]
	}
	d.InsertLat = s.InsertLat.Diff(prev.InsertLat)
	d.DeleteLat = s.DeleteLat.Diff(prev.DeleteLat)
	d.BatchWidth = s.BatchWidth.Diff(prev.BatchWidth)
	return d
}

// Merge returns the element-wise sum of two snapshots (aggregating
// repetition diffs into a per-series total).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var m Snapshot
	for c := Counter(0); c < NumCounters; c++ {
		m.Counts[c] = s.Counts[c] + o.Counts[c]
	}
	m.InsertLat = s.InsertLat.Merge(o.InsertLat)
	m.DeleteLat = s.DeleteLat.Merge(o.DeleteLat)
	m.BatchWidth = s.BatchWidth.Merge(o.BatchWidth)
	return m
}

// Zero reports whether the snapshot holds no events at all.
func (s Snapshot) Zero() bool {
	for _, v := range s.Counts {
		if v != 0 {
			return false
		}
	}
	return s.InsertLat.Count() == 0 && s.DeleteLat.Count() == 0 &&
		s.BatchWidth.Count() == 0
}
