package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("single summary = %+v", s)
	}
	if s.Min != 42 || s.Max != 42 {
		t.Fatalf("single min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Sample 2,4,4,4,5,5,7,9: mean 5, population sd 2, sample sd ~2.138.
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !approx(s.Stddev, 2.13809, 1e-4) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// CI95 = t(7) * sd / sqrt(8) = 2.365 * 2.13809 / 2.8284 ≈ 1.7878
	if !approx(s.CI95, 1.7878, 1e-3) {
		t.Fatalf("ci95 = %v", s.CI95)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("tCritical95 not non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if !approx(tCritical95(1000000), 1.95996, 1e-3) {
		t.Fatalf("tCritical95 large df = %v, want ~1.96", tCritical95(1000000))
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("tCritical95(0) should be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3]) != 2")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(float64(r))
		}
		s := Summarize(xs)
		return approx(w.Mean(), s.Mean, 1e-6*(1+math.Abs(s.Mean))) &&
			approx(w.Stddev(), s.Stddev, 1e-6*(1+s.Stddev))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	if err := quick.Check(func(a, b []uint16) bool {
		var wa, wb, whole Welford
		for _, x := range a {
			wa.Add(float64(x))
			whole.Add(float64(x))
		}
		for _, x := range b {
			wb.Add(float64(x))
			whole.Add(float64(x))
		}
		wa.Merge(wb)
		if wa.N() != whole.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		return approx(wa.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			approx(wa.Variance(), whole.Variance(), 1e-5*(1+whole.Variance()))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	mean, sd := a.Mean(), a.Stddev()
	a.Merge(b) // merging empty is a no-op
	if a.Mean() != mean || a.Stddev() != sd {
		t.Fatal("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != mean || b.N() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestMeanStddevUint(t *testing.T) {
	mean, sd := MeanStddevUint([]uint64{1, 2, 3, 4, 5})
	if !approx(mean, 3, 1e-12) || !approx(sd, math.Sqrt(2.5), 1e-9) {
		t.Fatalf("mean=%v sd=%v", mean, sd)
	}
	mean, sd = MeanStddevUint(nil)
	if mean != 0 || sd != 0 {
		t.Fatalf("empty MeanStddevUint = %v, %v", mean, sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	if !approx(Percentile(xs, 25), 2, 1e-12) {
		t.Fatalf("p25 = %v", Percentile(xs, 25))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
