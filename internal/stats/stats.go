// Package stats provides the summary statistics the benchmark reports:
// sample mean, standard deviation, and confidence intervals over repeated
// runs, matching the paper's "each benchmark is executed [10] times, and we
// report on the mean values and confidence intervals".
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int     // number of measurements
	Mean   float64 // sample mean
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	CI95   float64 // half-width of the 95% confidence interval of the mean
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(n-1))
		s.CI95 = tCritical95(n-1) * s.Stddev / math.Sqrt(float64(n))
	}
	return s
}

// String renders the summary as "mean ±ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ±%.3f", s.Mean, s.CI95)
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// distribution with df degrees of freedom. Values for small df are tabulated;
// larger df fall back to the normal approximation refined by a Cornish-Fisher
// style correction, accurate to ~1e-3 over the benchmark's range.
func tCritical95(df int) float64 {
	table := []float64{
		// df: 1 .. 30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	// Normal quantile z for 97.5% is 1.959964; first-order t correction.
	z := 1.959964
	d := float64(df)
	return z + (z*z*z+z)/(4*d)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanStddevUint computes mean and sample standard deviation of integer data
// (used by the rank-error benchmark, which aggregates millions of ranks).
// It uses a streaming Welford accumulator to stay numerically stable.
func MeanStddevUint(xs []uint64) (mean, stddev float64) {
	var acc Welford
	for _, x := range xs {
		acc.Add(float64(x))
	}
	return acc.Mean(), acc.Stddev()
}

// Welford is a streaming mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use. Not safe for concurrent use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (parallel aggregation).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator; 0 if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
