package pq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeQueue is a minimal Queue for pool tests: a mutex-guarded sorted-ish
// bag with buffering, flushing handles, so the tests can observe the
// pool's flush-on-release and flush-on-steal behaviour without dragging a
// real substrate in.
type fakeQueue struct {
	mu      sync.Mutex
	items   []Item
	handles atomic.Int64
	grownTo atomic.Int64 // high-water EnsureHandles argument
}

func (q *fakeQueue) Name() string { return "fake" }

func (q *fakeQueue) Handle() Handle {
	q.handles.Add(1)
	return &fakeHandle{q: q}
}

func (q *fakeQueue) EnsureHandles(p int) {
	for {
		cur := q.grownTo.Load()
		if int64(p) <= cur || q.grownTo.CompareAndSwap(cur, int64(p)) {
			return
		}
	}
}

func (q *fakeQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// fakeHandle buffers one item locally (like the engineered MultiQueue's
// insertion buffer, scaled down) so an abandoned handle genuinely hides an
// item until Flush recovers it.
type fakeHandle struct {
	q   *fakeQueue
	buf []Item
}

func (h *fakeHandle) Insert(key, value uint64) {
	if len(h.buf) >= 4 {
		h.Flush()
	}
	h.buf = append(h.buf, Item{key, value})
}

func (h *fakeHandle) DeleteMin() (uint64, uint64, bool) {
	if n := len(h.buf); n > 0 {
		it := h.buf[n-1]
		h.buf = h.buf[:n-1]
		return it.Key, it.Value, true
	}
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	best, n := 0, len(h.q.items)
	if n == 0 {
		return 0, 0, false
	}
	for i := 1; i < n; i++ {
		if h.q.items[i].Key < h.q.items[best].Key {
			best = i
		}
	}
	it := h.q.items[best]
	h.q.items[best] = h.q.items[n-1]
	h.q.items = h.q.items[:n-1]
	return it.Key, it.Value, true
}

func (h *fakeHandle) Flush() {
	if len(h.buf) == 0 {
		return
	}
	h.q.mu.Lock()
	h.q.items = append(h.q.items, h.buf...)
	h.q.mu.Unlock()
	h.buf = h.buf[:0]
}

func TestPoolReuseAndGrowth(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{MaxHandles: 4})
	h1 := p.Acquire()
	if got := p.Created(); got != 1 {
		t.Fatalf("Created after first Acquire = %d, want 1", got)
	}
	if got := q.grownTo.Load(); got != 1 {
		t.Fatalf("EnsureHandles high-water = %d, want 1", got)
	}
	p.Release(h1)
	h2 := p.Acquire()
	if h2 != h1 {
		t.Fatalf("Acquire after Release returned a new wrapper; want the recycled one")
	}
	if got := p.Created(); got != 1 {
		t.Fatalf("Created after reuse = %d, want 1 (reuse must not grow)", got)
	}
	h3 := p.Acquire()
	if h3 == h2 {
		t.Fatalf("second concurrent Acquire returned the live handle")
	}
	if got, want := p.Created(), 2; got != want {
		t.Fatalf("Created = %d, want %d", got, want)
	}
	if got := q.grownTo.Load(); got != 2 {
		t.Fatalf("EnsureHandles high-water = %d, want 2", got)
	}
	if got := p.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
	p.Release(h2)
	p.Release(h3)
	if got := p.Live(); got != 0 {
		t.Fatalf("Live after releases = %d, want 0", got)
	}
	if got := p.PeakLive(); got != 2 {
		t.Fatalf("PeakLive = %d, want 2", got)
	}
}

func TestPoolInitialHandles(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{InitialHandles: 3, MaxHandles: 3})
	if got := p.Created(); got != 3 {
		t.Fatalf("Created after NewPool = %d, want 3", got)
	}
	hs := []*PooledHandle{p.Acquire(), p.Acquire(), p.Acquire()}
	if got := p.Created(); got != 3 {
		t.Fatalf("Created after draining the prefill = %d, want 3 (no growth)", got)
	}
	for _, h := range hs {
		p.Release(h)
	}
}

func TestPoolCapBlocksUntilRelease(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{MaxHandles: 2})
	h1, h2 := p.Acquire(), p.Acquire()
	got := make(chan *PooledHandle)
	go func() { got <- p.Acquire() }()
	select {
	case h := <-got:
		t.Fatalf("Acquire at the cap returned %p without a Release", h)
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(h1)
	select {
	case h := <-got:
		if h != h1 {
			t.Fatalf("capped Acquire returned a different wrapper than the released one")
		}
		p.Release(h)
	case <-time.After(2 * time.Second):
		t.Fatalf("Acquire still blocked after a Release")
	}
	if got := p.Created(); got != 2 {
		t.Fatalf("Created = %d, want cap 2", got)
	}
	p.Release(h2)
}

func TestPoolReleaseFlushesBuffers(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{MaxHandles: 2})
	h := p.Acquire()
	h.Insert(7, 70)
	if got := q.len(); got != 0 {
		t.Fatalf("item published before Release; want it buffered in the handle")
	}
	p.Release(h)
	if got := q.len(); got != 1 {
		t.Fatalf("shared items after Release = %d, want 1 (Release must flush)", got)
	}
}

// TestPoolStealsAbandoned is the core reclamation contract: a goroutine
// that exits without Release must not leak its handle or the items the
// handle buffers. Run with -race in the make check matrix.
func TestPoolStealsAbandoned(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{MaxHandles: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := p.Acquire()
		h.Insert(42, 420) // buffered, not yet shared
		// exit without Release: abandonment
	}()
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for p.Steals() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never reclaimed the abandoned handle (steals=0, live=%d)", p.Live())
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := p.Live(); got != 0 {
		t.Fatalf("Live after steal = %d, want 0", got)
	}
	if got := q.len(); got != 1 {
		t.Fatalf("shared items after steal = %d, want 1 (steal must flush the buffer)", got)
	}
	// The stolen wrapper must be reusable.
	h := p.Acquire()
	if got := p.Created(); got != 1 {
		t.Fatalf("Created after steal+reacquire = %d, want 1 (the stolen handle must be recycled)", got)
	}
	if k, _, ok := h.DeleteMin(); !ok || k != 42 {
		t.Fatalf("DeleteMin after steal = (%d,%v), want the recovered item 42", k, ok)
	}
	p.Release(h)
}

func TestPoolMisusePanics(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{MaxHandles: 2})
	h := p.Acquire()
	p.Release(h)
	mustPanic(t, "double Release", func() { p.Release(h) })
	mustPanic(t, "use after Release", func() { h.Insert(1, 1) })
	p2 := NewPool(&fakeQueue{}, PoolOptions{MaxHandles: 1})
	h2 := p2.Acquire()
	mustPanic(t, "cross-pool Release", func() { p.Release(h2) })
	p2.Release(h2)
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestPoolConcurrentChurn hammers Acquire/Release from many more
// goroutines than the cap, with occasional abandonment, under -race in
// the make check matrix. At the end every handle must be recoverable and
// the live count zero.
func TestPoolConcurrentChurn(t *testing.T) {
	q := &fakeQueue{}
	const cap, goroutines, rounds = 4, 16, 200
	p := NewPool(q, PoolOptions{MaxHandles: cap})
	var inserted, deleted atomic.Uint64
	var abandoned atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := p.Acquire()
				h.Insert(uint64(g*rounds+r), 0)
				inserted.Add(1)
				if _, _, ok := h.DeleteMin(); ok {
					deleted.Add(1)
				}
				if g == 0 && r%50 == 49 {
					abandoned.Add(1) // drop h without Release
					continue
				}
				p.Release(h)
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for p.Steals() < abandoned.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("steals=%d never caught up with abandoned=%d", p.Steals(), abandoned.Load())
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := p.Live(); got != 0 {
		t.Fatalf("Live after churn = %d, want 0", got)
	}
	if got := p.Created(); got > cap {
		t.Fatalf("Created = %d, want <= cap %d", got, cap)
	}
	// Conservation: everything inserted is either deleted or still in the
	// queue (buffers all flushed by Release/steal).
	h := p.Acquire()
	remaining := uint64(0)
	for {
		if _, _, ok := h.DeleteMin(); !ok {
			break
		}
		remaining++
	}
	p.Release(h)
	if inserted.Load() != deleted.Load()+remaining {
		t.Fatalf("conservation: inserted=%d != deleted=%d + remaining=%d",
			inserted.Load(), deleted.Load(), remaining)
	}
}

// TestAcquireReleaseAllocs gates the hit path at zero allocations per
// Acquire/Release pair (the tentpole's headline constraint, same style as
// the telemetry and substrate alloc gates).
func TestAcquireReleaseAllocs(t *testing.T) {
	q := &fakeQueue{}
	p := NewPool(q, PoolOptions{InitialHandles: 1, MaxHandles: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		h := p.Acquire()
		p.Release(h)
	})
	if allocs != 0 {
		t.Fatalf("Acquire/Release hit path allocates %.1f/op, want 0", allocs)
	}
}

// TestPoolOverflowStack drives enough handles through Release that shard
// slots displace into the overflow stack, then drains them all back.
func TestPoolOverflowStack(t *testing.T) {
	q := &fakeQueue{}
	const n = 64
	p := NewPool(q, PoolOptions{InitialHandles: n, MaxHandles: n})
	hs := make([]*PooledHandle, n)
	for i := range hs {
		hs[i] = p.Acquire()
	}
	if got := p.Created(); got != n {
		t.Fatalf("Created = %d, want %d", got, n)
	}
	for _, h := range hs {
		p.Release(h)
	}
	seen := map[*PooledHandle]bool{}
	for i := range hs {
		h := p.Acquire()
		if seen[h] {
			t.Fatalf("Acquire %d returned an already-live wrapper", i)
		}
		seen[h] = true
	}
	if got := p.Created(); got != n {
		t.Fatalf("Created after drain = %d, want %d (no growth past prefill)", got, n)
	}
	for h := range seen {
		p.Release(h)
	}
}
