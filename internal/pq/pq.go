// Package pq defines the common interface implemented by every concurrent
// priority queue in the suite. The benchmark harness, quality harness and
// the public cpq package all program against these two interfaces.
//
// All queues in the paper support exactly two operations on key-value
// pairs: insert and delete_min. Neither decrease_key nor meld is supported
// by any of the compared structures (Appendix A), and the suite follows
// that contract.
package pq

import "slices"

// Item is a key-value pair stored in a priority queue. Smaller keys have
// higher priority. The paper benchmarks integer keys; values are opaque
// payloads carried alongside.
type Item struct {
	Key   uint64
	Value uint64
}

// KV is the element type of the batch API (InsertN/DeleteMinN). It is an
// alias of Item: the batch calls move the same pairs, just several per
// synchronization episode.
type KV = Item

// Handle is a per-goroutine access handle to a queue. Several of the
// structures keep thread-local state (the k-LSM's distributed component,
// per-thread random number generators for MultiQueue and SprayList), which
// lives in the Handle. A Handle must not be shared between goroutines;
// obtaining any number of Handles from one Queue is cheap and safe.
type Handle interface {
	// Insert adds a key-value pair to the queue.
	Insert(key, value uint64)
	// DeleteMin removes and returns an item with a smallest key — exactly
	// the smallest for strict queues, one of the kP (or similar) smallest
	// for relaxed queues. ok is false if the queue appeared empty.
	DeleteMin() (key, value uint64, ok bool)
}

// Queue is a concurrent priority queue instance.
type Queue interface {
	// Name returns the benchmark identifier of the implementation,
	// e.g. "klsm4096", "linden", "multiq".
	Name() string
	// Handle returns a new per-goroutine handle.
	Handle() Handle
}

// Peeker is implemented by queues whose handles can report (but not remove)
// a current minimum candidate; used by examples and tests.
type Peeker interface {
	PeekMin() (key, value uint64, ok bool)
}

// Flush publishes any operations buffered in h, so that every item the
// handle holds privately becomes reachable through other handles. It is
// the capability-checked form of Flusher: a handle that does not buffer
// (or a nil Handle) is a no-op. Harnesses call it on every worker handle
// when a measured phase ends.
func Flush(h Handle) {
	if f, ok := h.(Flusher); ok {
		f.Flush()
	}
}

// PeekMin reports (but does not remove) a current minimum candidate of v,
// which may be a Queue or a Handle — whichever side implements Peeker for
// the structure at hand. Nil-safe: a non-implementing or nil v reports
// not-ok. Like Peeker itself, the result is approximate under concurrency.
func PeekMin(v any) (key, value uint64, ok bool) {
	if p, isPeeker := v.(Peeker); isPeeker {
		return p.PeekMin()
	}
	return 0, 0, false
}

// BatchInserter is implemented by handles with a native batch-insert path
// that amortizes synchronization over the whole batch (one lock
// acquisition, one CAS publish, one predecessor search reused across
// sorted keys — see DESIGN.md §4c). The kvs slice is caller-owned: the
// implementation may reorder it in place (typically sorting by key) but
// must not retain it after the call returns.
type BatchInserter interface {
	InsertN(kvs []KV)
}

// BatchDeleter is implemented by handles with a native batch-delete path.
// DeleteMinN removes up to n smallest-key items (n clamped to len(dst)),
// stores them into a prefix of dst, and returns how many were removed.
// Each removed item individually satisfies the queue's relaxation bound —
// a batch is n delete_mins that share their synchronization, not a weaker
// contract. dst is caller-owned and must not be retained.
type BatchDeleter interface {
	DeleteMinN(dst []KV, n int) int
}

// InsertN inserts every element of kvs through h, using the handle's
// native batch path when it implements BatchInserter and a scalar
// Insert loop otherwise. It is the capability-checked form of
// BatchInserter, exactly as Flush is for Flusher. kvs may be reordered in
// place by a native path; it is never retained.
func InsertN(h Handle, kvs []KV) {
	if b, ok := h.(BatchInserter); ok {
		b.InsertN(kvs)
		return
	}
	for _, kv := range kvs {
		h.Insert(kv.Key, kv.Value)
	}
}

// DeleteMinN removes up to n items through h into a prefix of dst and
// returns how many were removed, using the handle's native batch path
// when it implements BatchDeleter and a scalar DeleteMin loop otherwise.
// n is clamped to len(dst). A return short of n means the queue appeared
// empty to the handle mid-batch.
func DeleteMinN(h Handle, dst []KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if b, ok := h.(BatchDeleter); ok {
		return b.DeleteMinN(dst, n)
	}
	got := 0
	for got < n {
		k, v, ok := h.DeleteMin()
		if !ok {
			break
		}
		dst[got] = KV{Key: k, Value: v}
		got++
	}
	return got
}

// SortKVs sorts a batch in place, ascending by key (stable order of values
// is not guaranteed for equal keys). Native InsertN paths that splice
// sorted runs call it on the caller-owned slice, which the BatchInserter
// contract permits.
func SortKVs(kvs []KV) {
	slices.SortFunc(kvs, func(a, b KV) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		default:
			return 0
		}
	})
}

// Closer is implemented by queues that hold resources beyond the heap —
// the durable tier's WAL descriptors, the handle pool's free lists and
// finalizers. Close flushes whatever teardown requires (pending WAL
// records reach the store; pooled handles are drained) and releases the
// resources; the queue must not be used afterwards. Close is idempotent.
type Closer interface {
	Close() error
}

// Close tears down v, which may be a Queue or anything else a call site
// holds. It is the capability-checked form of Closer, exactly as Flush is
// for Flusher: a non-implementing or nil v is a no-op returning nil, so
// every call site can `defer pq.Close(q)` without caring which of the
// substrates it got.
func Close(v any) error {
	if c, ok := v.(Closer); ok {
		return c.Close()
	}
	return nil
}

// Flusher is implemented by handles that buffer operations locally (the
// engineered MultiQueue's insertion/deletion buffers, the k-LSM's
// shared-run buffer of items batch-taken from the SLSM pivot range). Flush
// publishes any buffered insertions to the shared structure and returns
// unserved deletion-buffer items to it, so that every item the handle holds
// becomes reachable through other handles. The benchmark harnesses call
// Flush on each worker handle when its measured phase ends; a handle with
// nothing buffered must treat Flush as a no-op.
type Flusher interface {
	Flush()
}
