// Handle pool: the elastic handle lifecycle layered over every Queue.
//
// The paper's model is a fixed thread count chosen at construction with one
// long-lived Handle per worker. A goroutine-per-request server breaks both
// assumptions: goroutines outnumber GOMAXPROCS by orders of magnitude, live
// for one small op burst, and may exit without cleanup. Pool bridges the
// two worlds: a bounded set of real per-goroutine Handles is recycled
// through Acquire/Release, so the structures underneath still see the
// paper's "P threads with thread-local state" shape while callers see a
// dynamic lifecycle.
//
// Layout (sync.Pool-style, but without runtime hooks):
//
//   - Per-shard slots: an array of cache-line-padded single-handle slots,
//     indexed by a goroutine-affine stack-address hash. The hit path is one
//     atomic swap on a line no other shard touches — zero allocations, no
//     shared CAS retry loop.
//   - Overflow stack: a Treiber stack over pool-owned index nodes, with
//     the head packed as (index+1)<<32 | version so a pop's CAS fails (and
//     retries) instead of suffering ABA when a node is popped and repushed
//     concurrently. The free lists hold the only strong references to free
//     wrappers — the pool keeps no permanent wrapper table — which is what
//     makes "abandoned" detectable as "unreachable".
//   - Capped growth: when every free list is empty and the created count is
//     below the cap, a mutex-guarded slow path creates a fresh inner
//     Handle, first growing layout-elastic queues (Grower) so sub-queue
//     counts and walk geometry track the pool rather than a frozen
//     Options.Threads.
//   - Stealing: a wrapper that becomes unreachable while acquired was
//     abandoned by its goroutine. Its finalizer flushes the inner handle's
//     buffers back to the shared structure — exactly the chaos checker's
//     Flush-recovery contract — then resurrects the wrapper into the free
//     list with the finalizer re-armed. No items are lost, and the live
//     count (which feeds the dynamic kP relaxation bounds) drops back.
package pq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"cpq/internal/telemetry"
)

// Grower is implemented by queues whose internal layout is sized by the
// number of handles in use — the MultiQueue's c·P sub-queue array, the
// SprayList's walk geometry. EnsureHandles grows the layout to accommodate
// p concurrent handles; it never shrinks, is idempotent, and is safe to
// call while other handles operate. The pool calls it before creating the
// p-th handle.
type Grower interface {
	EnsureHandles(p int)
}

// PoolOptions configures NewPool. The zero value is usable: no handles are
// pre-created and the cap defaults to a small multiple of GOMAXPROCS.
type PoolOptions struct {
	// InitialHandles pre-creates this many handles into the free list, so
	// the first wave of Acquires skips the growth slow path.
	InitialHandles int
	// MaxHandles caps how many handles the pool will ever create. At the
	// cap, Acquire waits for a Release (or a steal) instead of growing.
	// <= 0 selects max(InitialHandles, 4·GOMAXPROCS).
	MaxHandles int
}

const (
	// defaultMaxFactor sizes the default handle cap: enough concurrency
	// headroom over GOMAXPROCS that blocking structures keep their lock
	// handoff chains busy, small enough that relaxation bounds (kP) stay
	// tight.
	defaultMaxFactor = 4
	// starveGCEvery: at the cap, every this-many failed wait rounds the
	// acquirer provokes the collector, because abandoned handles can only
	// be stolen after their wrappers are found unreachable.
	starveGCEvery = 64
)

// Wrapper states. A PooledHandle is handleLive between Acquire and Release
// (or reclaim) and handleFree while it sits in a free list.
const (
	handleFree uint32 = iota
	handleLive
)

// Pool recycles per-goroutine Handles of one Queue. All methods are safe
// for concurrent use. See the file comment for the layout.
type Pool struct {
	q      Queue
	max    int
	shards []poolShard
	mask   uint32

	// head is the overflow stack top, packed (index+1)<<32 | version; the
	// version half increments on every successful push or pop, defeating
	// ABA on the node links.
	head atomic.Uint64

	live    atomic.Int64  // currently acquired handles
	peak    atomic.Int64  // high-water mark of live (feeds dynamic kP)
	created atomic.Int64  // handles ever created (≤ max)
	steals  atomic.Uint64 // abandoned handles reclaimed
	closed  atomic.Bool   // Close ran; free lists drained, inner queue closed

	tel *telemetry.Shard

	mu sync.Mutex // growth: inner-handle creation and index assignment

	// free backs the overflow stack, one entry per created handle, indexed
	// by PooledHandle.idx. ref is the strong reference that keeps a
	// stacked wrapper reachable — the pool deliberately holds NO permanent
	// table of wrappers, so an acquired wrapper is reachable only through
	// its owner goroutine and abandonment is exactly unreachability, which
	// is what arms the steal finalizer. ref is stored before the index is
	// pushed and swapped out by the winning popper, so stack membership
	// and the strong reference travel together.
	free []freeSlot
}

// poolShard is one padded free slot. Only the slot pointer is hot; the pad
// keeps neighbouring shards off its cache line.
type poolShard struct {
	slot atomic.Pointer[PooledHandle]
	_    [7]uint64
}

// freeSlot is one overflow-stack node, owned by the pool (not the wrapper)
// so the stack's links stay valid regardless of wrapper lifetime.
type freeSlot struct {
	ref  atomic.Pointer[PooledHandle]
	next atomic.Int32 // packed index+1 of the node below (0 = end)
}

// PooledHandle wraps one inner per-goroutine Handle for its trips through
// the pool. It implements Handle, Flusher, Peeker, BatchInserter and
// BatchDeleter, delegating through the capability-checked helpers, so
// callers use it exactly like a plain Handle between Acquire and Release.
// Like the Handle it wraps, it must not be used by two goroutines at once.
type PooledHandle struct {
	pool  *Pool
	inner Handle
	idx   int32         // this wrapper's overflow-stack node in pool.free
	state atomic.Uint32 // handleFree / handleLive
}

// Chaos hooks. internal/chaos imports this package (the checker drives
// queues through Handles), so the pool cannot call into chaos without a
// cycle; chaos.Enable injects its acquire-steal failpoint here instead.
// Both are read with a plain load under the same discipline as
// telemetry.Enabled: set before workers start, cleared after they join.
var (
	poolFailAcquire  func() bool // forces an Acquire fast-path miss
	poolPerturbSteal func()      // stretches the reclaim window mid-steal
)

// SetPoolFailpoints installs (nil, nil clears) the pool's chaos hooks:
// fail forces Acquire to skip the free lists once, exercising the growth
// and starvation paths under contention; perturb runs inside abandoned-
// handle reclamation between ownership transfer and the buffer flush,
// widening the window a conservation bug would need.
func SetPoolFailpoints(fail func() bool, perturb func()) {
	poolFailAcquire, poolPerturbSteal = fail, perturb
}

// NewPool builds a handle pool over q. The queue may be freshly
// constructed or already in use; handles the caller obtained directly from
// q.Handle() are unaffected (but do not count against the pool's cap or
// live count, so mixed use loosens the dynamic kP accounting).
func NewPool(q Queue, opts PoolOptions) *Pool {
	maxH := opts.MaxHandles
	if maxH <= 0 {
		maxH = defaultMaxFactor * runtime.GOMAXPROCS(0)
	}
	if opts.InitialHandles > maxH {
		maxH = opts.InitialHandles
	}
	nsh := 8
	for nsh < 2*runtime.GOMAXPROCS(0) {
		nsh <<= 1
	}
	p := &Pool{
		q:      q,
		max:    maxH,
		shards: make([]poolShard, nsh),
		mask:   uint32(nsh - 1),
		free:   make([]freeSlot, maxH),
		tel:    telemetry.NewShard(),
	}
	for i := 0; i < opts.InitialHandles; i++ {
		if h := p.newHandle(); h != nil {
			p.pushOverflow(h)
		}
	}
	return p
}

// Acquire returns a handle for the calling goroutine's exclusive use until
// Release. The hit path — a pooled handle is free — is one padded-slot
// swap (or a lock-free overflow pop) with zero allocations. When the free
// lists are empty the pool grows up to its cap; at the cap, Acquire spins
// politely waiting for a Release, periodically provoking the collector so
// abandoned handles can be stolen back.
func (p *Pool) Acquire() *PooledHandle {
	for starve := 0; ; starve++ {
		if h := p.tryReuse(); h != nil {
			h.activate()
			p.tel.Inc(telemetry.PoolReuse)
			return h
		}
		if p.created.Load() < int64(p.max) {
			if h := p.newHandle(); h != nil {
				h.activate()
				p.tel.Inc(telemetry.PoolGrow)
				return h
			}
			continue // lost the growth race; a free handle may have appeared
		}
		p.tel.Inc(telemetry.PoolStarve)
		if starve%starveGCEvery == starveGCEvery-1 {
			runtime.GC()
		}
		runtime.Gosched()
	}
}

// tryReuse probes the free lists: own shard slot, overflow stack, then a
// steal scan over the other shards' slots.
func (p *Pool) tryReuse() *PooledHandle {
	if poolFailAcquire != nil && poolFailAcquire() {
		return nil // chaos acquire-steal: forced fast-path miss
	}
	sh := &p.shards[shardIndex()&p.mask]
	if h := sh.slot.Swap(nil); h != nil {
		return h
	}
	if h := p.popOverflow(); h != nil {
		return h
	}
	for i := range p.shards {
		if h := p.shards[i].slot.Swap(nil); h != nil {
			return h
		}
	}
	return nil
}

// Release returns h to the pool. The inner handle's buffers are flushed
// first, so a released handle holds no items — that is what entitles the
// dynamic relaxation accounting to judge rank errors against the live
// count rather than the created count (quality.EffectiveP; the k-LSM
// family is the documented exception). Using h after Release panics.
func (p *Pool) Release(h *PooledHandle) {
	if h == nil {
		return
	}
	if h.pool != p {
		panic("pq: Release of a handle from a different Pool")
	}
	// Flush while still owning the handle: after the state flips to free a
	// concurrent Acquire may hand it to another goroutine.
	Flush(h.inner)
	if !h.state.CompareAndSwap(handleLive, handleFree) {
		panic("pq: Release of a handle that is not acquired")
	}
	p.live.Add(-1)
	sh := &p.shards[shardIndex()&p.mask]
	if old := sh.slot.Swap(h); old != nil {
		p.pushOverflow(old)
	}
}

// activate flips a free wrapper to live and maintains the live/peak
// counters every Acquire exit path shares.
func (h *PooledHandle) activate() {
	if !h.state.CompareAndSwap(handleFree, handleLive) {
		panic("pq: pool free list handed out a live handle")
	}
	p := h.pool
	l := p.live.Add(1)
	for {
		pk := p.peak.Load()
		if l <= pk || p.peak.CompareAndSwap(pk, l) {
			break
		}
	}
}

// newHandle is the growth slow path: create inner handle number n+1 under
// the growth lock, growing layout-elastic queues first so the structure is
// sized for the handle before it exists. Returns nil at the cap.
func (p *Pool) newHandle() *PooledHandle {
	p.mu.Lock()
	n := int(p.created.Load())
	if n >= p.max {
		p.mu.Unlock()
		return nil
	}
	if g, ok := p.q.(Grower); ok {
		g.EnsureHandles(n + 1)
	}
	h := &PooledHandle{pool: p, inner: p.q.Handle(), idx: int32(n)}
	p.created.Store(int64(n + 1))
	p.mu.Unlock()
	runtime.SetFinalizer(h, (*PooledHandle).reclaim)
	return h
}

// reclaim runs as h's finalizer. Free wrappers are always referenced by a
// free list, so an unreachable wrapper in the live state means its owner
// goroutine exited without Release — the handle was abandoned. Reclaim
// takes ownership back, flushes the inner handle's buffered items to the
// shared structure (the chaos checker's Flush-recovery contract: nothing
// an abandoned handle holds may be lost), drops the live count, and
// resurrects the wrapper into the free list with the finalizer re-armed
// for its next abandonment.
func (h *PooledHandle) reclaim() {
	if !h.state.CompareAndSwap(handleLive, handleFree) {
		// Unreachable while free: the pool itself is being collected
		// together with its free lists. Nothing to recover.
		return
	}
	p := h.pool
	if poolPerturbSteal != nil {
		poolPerturbSteal() // chaos: widen the steal window
	}
	Flush(h.inner)
	p.live.Add(-1)
	p.steals.Add(1)
	p.tel.Inc(telemetry.PoolSteal)
	// Re-arm before resurrection: once back in a free list the wrapper can
	// be acquired — and abandoned — again.
	runtime.SetFinalizer(h, (*PooledHandle).reclaim)
	p.pushOverflow(h)
}

// pushOverflow links h's node as the new stack top. The strong ref is
// stored before the index becomes visible, so any popper that wins the
// node also finds the wrapper. The version half of head advances on
// success, so a concurrent pop that already read the old head must re-read
// rather than act on a stale link.
func (p *Pool) pushOverflow(h *PooledHandle) {
	s := &p.free[h.idx]
	s.ref.Store(h)
	for {
		old := p.head.Load()
		s.next.Store(int32(old >> 32))
		if p.head.CompareAndSwap(old, uint64(uint32(h.idx+1))<<32|uint64(uint32(old)+1)) {
			return
		}
	}
}

// popOverflow unlinks and returns the stack top, or nil when empty. The
// link read may race with the node being popped and repushed elsewhere;
// the versioned CAS then fails and the loop retries with fresh state, so
// a stale link is never installed (classic ABA defense). A node is in the
// stack at most once — each free transition pushes exactly once — so the
// winner's ref swap always yields the wrapper.
func (p *Pool) popOverflow() *PooledHandle {
	for {
		old := p.head.Load()
		idx := uint32(old >> 32)
		if idx == 0 {
			return nil
		}
		s := &p.free[idx-1]
		next := uint32(s.next.Load())
		if p.head.CompareAndSwap(old, uint64(next)<<32|uint64(uint32(old)+1)) {
			return s.ref.Swap(nil)
		}
	}
}

// shardIndex derives a goroutine-affine shard hint from the address of a
// stack local. Goroutine stacks are disjoint, so concurrently running
// goroutines spread across shards, and repeated calls from one goroutine
// usually agree (stacks move only on growth) — the closest portable
// analogue of sync.Pool's per-P private slot. The pointer is consumed as
// an integer immediately, so the local does not escape and the fast path
// stays allocation-free.
func shardIndex() uint32 {
	var b byte
	x := uint64(uintptr(unsafe.Pointer(&b)) >> 10)
	x *= 0x9e3779b97f4a7c15
	return uint32(x >> 33)
}

// Close implements Closer: teardown for the whole pooled stack. It drains
// the free lists, flushes every freed handle's buffers into the shared
// structure, disarms their reclaim finalizers, and closes the inner queue
// (a no-op unless that queue holds resources — a durable wrapper's WAL,
// for instance). Handles still acquired are the caller's bug: their items
// are only recoverable through the finalizer steal, which Close does not
// wait for. Idempotent and nil-safe; the pool must not be used after.
func (p *Pool) Close() error {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	flushed := make(map[*PooledHandle]bool)
	for i := range p.shards {
		if h := p.shards[i].slot.Swap(nil); h != nil && !flushed[h] {
			flushed[h] = true
			runtime.SetFinalizer(h, nil)
			Flush(h.inner)
		}
	}
	for {
		h := p.popOverflow()
		if h == nil {
			break
		}
		if !flushed[h] {
			flushed[h] = true
			runtime.SetFinalizer(h, nil)
			Flush(h.inner)
		}
	}
	return Close(p.q)
}

// Queue returns the queue the pool recycles handles of.
func (p *Pool) Queue() Queue { return p.q }

// Cap returns the maximum number of handles the pool will create.
func (p *Pool) Cap() int { return p.max }

// Live returns the number of currently acquired handles.
func (p *Pool) Live() int { return int(p.live.Load()) }

// PeakLive returns the high-water mark of Live since construction (or the
// last ResetPeak). Dynamic relaxation accounting judges rank errors
// against this, not against a frozen Options.Threads.
func (p *Pool) PeakLive() int { return int(p.peak.Load()) }

// ResetPeak restarts the peak-live watermark from the current live count,
// so a measured phase can be judged by its own concurrency rather than a
// warmup's.
func (p *Pool) ResetPeak() { p.peak.Store(p.live.Load()) }

// Created returns how many inner handles the pool has ever created. The
// k-LSM family's dynamic bound is judged against this (a released k-LSM
// handle keeps its local component; see quality.EffectiveP).
func (p *Pool) Created() int { return int(p.created.Load()) }

// Steals returns how many abandoned handles the pool has reclaimed.
func (p *Pool) Steals() uint64 { return p.steals.Load() }

// Handle methods: delegate to the inner handle through the capability-
// checked helpers. Each keeps the wrapper alive across the inner call so
// the reclaim finalizer cannot fire while an operation is in flight (the
// compiler may otherwise drop the last reference to h mid-method).

// Insert implements Handle.
func (h *PooledHandle) Insert(key, value uint64) {
	h.check()
	h.inner.Insert(key, value)
	runtime.KeepAlive(h)
}

// DeleteMin implements Handle.
func (h *PooledHandle) DeleteMin() (key, value uint64, ok bool) {
	h.check()
	key, value, ok = h.inner.DeleteMin()
	runtime.KeepAlive(h)
	return
}

// InsertN implements BatchInserter (scalar loop if the inner handle has no
// native batch path).
func (h *PooledHandle) InsertN(kvs []KV) {
	h.check()
	InsertN(h.inner, kvs)
	runtime.KeepAlive(h)
}

// DeleteMinN implements BatchDeleter (scalar loop if the inner handle has
// no native batch path).
func (h *PooledHandle) DeleteMinN(dst []KV, n int) int {
	h.check()
	got := DeleteMinN(h.inner, dst, n)
	runtime.KeepAlive(h)
	return got
}

// PeekMin implements Peeker (not-ok if the inner handle cannot peek).
func (h *PooledHandle) PeekMin() (key, value uint64, ok bool) {
	h.check()
	key, value, ok = PeekMin(h.inner)
	runtime.KeepAlive(h)
	return
}

// Flush implements Flusher. Release flushes implicitly; an explicit Flush
// mid-ownership publishes buffered items without giving the handle up.
func (h *PooledHandle) Flush() {
	h.check()
	Flush(h.inner)
	runtime.KeepAlive(h)
}

// check panics on use after Release — the pooled analogue of a
// use-after-free, which would otherwise corrupt another goroutine's
// thread-local state in the quietest possible way.
func (h *PooledHandle) check() {
	if h.state.Load() != handleLive {
		panic("pq: use of a pool handle after Release")
	}
}
