package multiq

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"cpq/internal/rng"
)

func TestEngineeredConstruction(t *testing.T) {
	q := NewEngineered(0, 0, 4, 8)
	if q.C() != DefaultC || q.P() != 1 || q.Stickiness() != 4 || q.Buffer() != 8 {
		t.Fatalf("defaults: c=%d p=%d s=%d b=%d", q.C(), q.P(), q.Stickiness(), q.Buffer())
	}
	if q.Name() != "multiq-s4-b8" {
		t.Fatalf("name = %q, want multiq-s4-b8", q.Name())
	}
	if q := NewEngineered(8, 2, 2, 4); q.Name() != "multiq-c8-s2-b4" {
		t.Fatalf("name = %q, want multiq-c8-s2-b4", q.Name())
	}
	if q := NewEngineered(4, 1, -3, 0); q.Stickiness() != 1 || q.Buffer() != 1 {
		t.Fatalf("clamping: s=%d b=%d", q.Stickiness(), q.Buffer())
	}
	if _, isE := NewEngineered(4, 1, 4, 8).Handle().(*EHandle); !isE {
		t.Fatal("engineered queue handed out a plain handle")
	}
	if _, isE := New(4, 1).Handle().(*EHandle); isE {
		t.Fatal("plain queue handed out a buffered handle")
	}
}

// TestEngineeredDrainOracle is the drain-all multiset oracle of the ISSUE:
// concurrent workers insert and delete with buffering enabled, a final
// drain recovers the remainder (exercising the buffer-stealing sweep), and
// the deleted multiset must equal the inserted multiset exactly.
func TestEngineeredDrainOracle(t *testing.T) {
	const workers = 8
	q := NewEngineered(4, workers, 4, 8)
	const perWorker = 5000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 11)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 1000000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestEngineeredFlushVisibility proves the buffer-aware notion of
// emptiness: items held in a handle's insertion buffer are counted by Len
// immediately, invisible to the sub-queues until Flush, published to the
// sub-queues by Flush, and recoverable by another handle afterwards.
func TestEngineeredFlushVisibility(t *testing.T) {
	q := NewEngineered(2, 2, 4, 8)
	h := q.Handle().(*EHandle)
	h.Insert(3, 30)
	h.Insert(1, 10)
	h.Insert(2, 20)
	if q.Len() != 3 {
		t.Fatalf("Len = %d with 3 buffered items, want 3", q.Len())
	}
	subTotal := func() int {
		total := 0
		for _, s := range q.queues() {
			s.mu.Lock()
			total += s.heap.Len()
			s.mu.Unlock()
		}
		return total
	}
	if n := subTotal(); n != 0 {
		t.Fatalf("%d items in sub-queues before Flush, want 0 (buffer size is 8)", n)
	}
	if k, v, ok := h.PeekMin(); !ok || k != 1 || v != 10 {
		t.Fatalf("PeekMin over buffers = %d/%d/%v, want 1/10/true", k, v, ok)
	}
	h.Flush()
	if n := subTotal(); n != 3 {
		t.Fatalf("%d items in sub-queues after Flush, want 3", n)
	}
	if len(h.ins) != 0 || len(h.del) != 0 {
		t.Fatalf("buffers not empty after Flush: ins=%d del=%d", len(h.ins), len(h.del))
	}
	h2 := q.Handle()
	for want := uint64(1); want <= 3; want++ {
		k, _, ok := h2.DeleteMin()
		if !ok || k != want {
			t.Fatalf("post-Flush deletion = %d/%v, want %d", k, ok, want)
		}
	}
	if _, _, ok := h2.DeleteMin(); ok {
		t.Fatal("queue not empty after draining flushed items")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestEngineeredSweepStealsBuffers: without any Flush, items buffered by
// one handle must still be found by another handle's DeleteMin (via the
// buffer-stealing sweep) — buffered items are never unreachable.
func TestEngineeredSweepStealsBuffers(t *testing.T) {
	q := NewEngineered(2, 2, 4, 8)
	h1 := q.Handle()
	h1.Insert(5, 50)
	h1.Insert(7, 70)
	h2 := q.Handle()
	got := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		k, _, ok := h2.DeleteMin()
		if !ok {
			t.Fatalf("DeleteMin %d found nothing despite buffered items", i)
		}
		got[k] = true
	}
	if !got[5] || !got[7] {
		t.Fatalf("stole %v, want {5, 7}", got)
	}
	if _, _, ok := h2.DeleteMin(); ok {
		t.Fatal("queue not empty after stealing both buffered items")
	}
}

// TestEngineeredDeletionBufferReturnedByFlush: a refill moves a batch into
// the deletion buffer; Flush must push the unserved remainder back so a
// single fresh handle can drain it from the sub-queues.
func TestEngineeredDeletionBufferReturnedByFlush(t *testing.T) {
	q := NewEngineered(1, 1, 1, 4) // one sub-queue: deterministic refill
	h := q.Handle().(*EHandle)
	for k := uint64(1); k <= 8; k++ {
		h.Insert(k, k)
	}
	h.Flush()
	if k, _, ok := h.DeleteMin(); !ok || k != 1 {
		t.Fatalf("first deletion = %d/%v, want 1", k, ok)
	}
	if len(h.del) != 3 {
		t.Fatalf("deletion buffer holds %d items after refill, want 3", len(h.del))
	}
	h.Flush()
	if len(h.del) != 0 {
		t.Fatalf("deletion buffer holds %d items after Flush", len(h.del))
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d after Flush, want 7", q.Len())
	}
	for want := uint64(2); want <= 8; want++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != want {
			t.Fatalf("deletion = %d/%v, want %d", k, ok, want)
		}
	}
}

// TestEngineeredOwnBufferNotStarved: a handle whose insertion buffer holds
// the globally smallest key must serve it from the buffer rather than
// overtake it with larger sub-queue keys forever.
func TestEngineeredOwnBufferNotStarved(t *testing.T) {
	q := NewEngineered(2, 1, 4, 8)
	h := q.Handle().(*EHandle)
	for k := uint64(100); k < 120; k++ {
		h.Insert(k, k)
	}
	h.Flush()
	h.Insert(1, 1) // stays in the insertion buffer (b = 8)
	if k, _, ok := h.DeleteMin(); !ok || k != 1 {
		t.Fatalf("DeleteMin = %d/%v, want the buffered 1", k, ok)
	}
}

// TestEngineeredEmptinessDetectedUnderConcurrency mirrors the seed test:
// concurrent drainers of a small engineered queue must terminate and
// recover every item exactly once, racing the buffer-stealing sweep.
func TestEngineeredEmptinessDetectedUnderConcurrency(t *testing.T) {
	const workers = 8
	q := NewEngineered(4, workers, 4, 8)
	h := q.Handle()
	const n = 1000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	if f, ok := h.(*EHandle); ok {
		f.Flush()
	}
	var count atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			for {
				if _, _, ok := h.DeleteMin(); !ok {
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if count.Load() != n {
		t.Fatalf("deleted %d of %d", count.Load(), n)
	}
}

// TestEngineeredStickinessReusesSubqueue: with a single handle and no
// contention, s consecutive insert flushes must land in the same sub-queue.
func TestEngineeredStickinessReusesSubqueue(t *testing.T) {
	const s = 4
	q := NewEngineered(8, 1, s, 1) // b = 1: every insert flushes immediately
	h := q.Handle().(*EHandle)
	h.Insert(1, 1) // samples a fresh sticky target
	first := h.insQ
	for i := 0; i < s-1; i++ {
		h.Insert(uint64(i+2), 0)
		if h.insQ != first {
			t.Fatalf("flush %d moved to sub-queue %d, want sticky %d", i+2, h.insQ, first)
		}
	}
	if h.insLeft != 0 {
		t.Fatalf("insLeft = %d after %d flushes, want 0", h.insLeft, s)
	}
}
