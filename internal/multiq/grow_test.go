package multiq

import (
	"sync"
	"testing"
)

// TestEnsureHandlesGrowsSubqueues checks the Grower contract: the c·P
// sizing rule tracks the requested handle count, existing sub-queues (and
// their items) survive growth, and shrinking requests are ignored.
func TestEnsureHandlesGrowsSubqueues(t *testing.T) {
	q := New(2, 2)
	if got := q.NumQueues(); got != 4 {
		t.Fatalf("NumQueues = %d, want 4", got)
	}
	h := q.Handle()
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, k)
	}
	q.EnsureHandles(5)
	if got := q.NumQueues(); got != 10 {
		t.Fatalf("NumQueues after EnsureHandles(5) = %d, want 10", got)
	}
	if got := q.P(); got != 5 {
		t.Fatalf("P after growth = %d, want 5", got)
	}
	q.EnsureHandles(3) // never shrinks
	if got := q.NumQueues(); got != 10 {
		t.Fatalf("NumQueues after EnsureHandles(3) = %d, want 10 (no shrink)", got)
	}
	if got := q.Len(); got != 100 {
		t.Fatalf("Len after growth = %d, want 100 (items must survive)", got)
	}
	for k := uint64(0); k < 100; k++ {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatalf("DeleteMin %d reported empty with items present after growth", k)
		}
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatalf("DeleteMin found an item in an empty grown queue")
	}
}

// TestGrowthUnderConcurrentOps drives inserts/deletes while another
// goroutine repeatedly grows the sub-queue set, then checks conservation.
// The interesting failure mode is the emptiness oracle missing items that
// landed in freshly published sub-queues (sweepSubqueues must retry when
// the set moves); run under -race in the make check matrix.
func TestGrowthUnderConcurrentOps(t *testing.T) {
	for _, engineered := range []bool{false, true} {
		q := New(2, 1)
		if engineered {
			q = NewEngineered(2, 1, 4, 8)
		}
		const workers, ops = 4, 2000
		var wg sync.WaitGroup
		inserted := workers * ops
		deleted := make([]int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := q.Handle()
				for i := 0; i < ops; i++ {
					h.Insert(uint64(w*ops+i), 0)
					if i%3 == 0 {
						if _, _, ok := h.DeleteMin(); ok {
							deleted[w]++
						}
					}
				}
				if f, ok := h.(interface{ Flush() }); ok {
					f.Flush()
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 2; p <= 12; p++ {
				q.EnsureHandles(p)
			}
		}()
		wg.Wait()
		total := 0
		for _, d := range deleted {
			total += d
		}
		if got, want := q.Len(), inserted-total; got != want {
			t.Fatalf("engineered=%v: Len=%d after churn, want %d (inserted %d, deleted %d)",
				engineered, got, want, inserted, total)
		}
		// Drain through a fresh handle: every remaining item must be
		// reachable even if it sits in a grown sub-queue.
		h := q.Handle()
		drained := 0
		for {
			if _, _, ok := h.DeleteMin(); !ok {
				break
			}
			drained++
		}
		if drained != inserted-total {
			t.Fatalf("engineered=%v: drained %d, want %d", engineered, drained, inserted-total)
		}
	}
}
