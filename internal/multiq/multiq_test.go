package multiq

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"cpq/internal/rng"
)

func TestConstruction(t *testing.T) {
	q := New(0, 0)
	if q.C() != DefaultC || q.P() != 1 || q.NumQueues() != DefaultC {
		t.Fatalf("defaults: c=%d p=%d n=%d", q.C(), q.P(), q.NumQueues())
	}
	q = New(2, 8)
	if q.NumQueues() != 16 {
		t.Fatalf("NumQueues = %d, want 16", q.NumQueues())
	}
	if q.Name() != "multiq" {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestEmpty(t *testing.T) {
	q := New(4, 2)
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if _, _, ok := q.Handle().(*Handle).PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
}

func TestSingleQueueIsStrict(t *testing.T) {
	// c=1, p=1 → a single sub-queue; delete order must be exactly sorted.
	q := New(1, 1)
	h := q.Handle()
	r := rng.New(1)
	const n = 2000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 500
		want[i] = k
		h.Insert(k, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != want[i] {
			t.Fatalf("deletion %d = %d/%v, want %d", i, k, ok, want[i])
		}
	}
}

func TestDrainRecoversEverything(t *testing.T) {
	q := New(4, 4)
	h := q.Handle()
	r := rng.New(2)
	const n = 10000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 100000
		want[i] = k
		h.Insert(k, k+7)
	}
	got := make([]uint64, 0, n)
	for {
		k, v, ok := h.DeleteMin()
		if !ok {
			break
		}
		if v != k+7 {
			t.Fatalf("value mismatch: %d/%d", k, v)
		}
		got = append(got, k)
	}
	if len(got) != n {
		t.Fatalf("drained %d of %d", len(got), n)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}

func TestDeletionsAreFromHeadRegion(t *testing.T) {
	// With c*p = 8 queues of ~1250 items each, a min-of-2 deletion should
	// return one of the few smallest items of some queue; over an ordered
	// prefill the i-th deletion must stay well below i + slack where slack
	// covers the per-queue imbalance.
	q := New(2, 4)
	h := q.Handle()
	const n = 10000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	for i := 0; i < n/2; i++ {
		k, _, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("empty at %d", i)
		}
		if k > uint64(i)+2000 {
			t.Fatalf("deletion %d returned %d — not from head region", i, k)
		}
	}
}

func TestPeekMin(t *testing.T) {
	q := New(4, 2)
	h := q.Handle().(*Handle)
	h.Insert(50, 1)
	h.Insert(10, 2)
	h.Insert(30, 3)
	k, v, ok := h.PeekMin()
	if !ok || k != 10 || v != 2 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	if q.Len() != 3 {
		t.Fatal("peek removed an item")
	}
}

func TestMinCacheTracksHeap(t *testing.T) {
	q := New(1, 1)
	h := q.Handle()
	h.Insert(5, 0)
	if m := q.queues()[0].min.Load(); m != 5 {
		t.Fatalf("cached min = %d, want 5", m)
	}
	h.Insert(3, 0)
	if m := q.queues()[0].min.Load(); m != 3 {
		t.Fatalf("cached min = %d, want 3", m)
	}
	h.DeleteMin()
	if m := q.queues()[0].min.Load(); m != 5 {
		t.Fatalf("cached min = %d, want 5", m)
	}
	h.DeleteMin()
	if m := q.queues()[0].min.Load(); m != uint64(emptyKey) {
		t.Fatalf("cached min = %d, want emptyKey", m)
	}
}

func TestConcurrentMultisetPreserved(t *testing.T) {
	const workers = 8
	q := New(4, workers)
	const perWorker = 5000
	var wg sync.WaitGroup
	ins := make([][]uint64, workers)
	del := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 5)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 1000000
				h.Insert(k, k)
				ins[w] = append(ins[w], k)
				if i%2 == 0 {
					if k, _, ok := h.DeleteMin(); ok {
						del[w] = append(del[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var all, got []uint64
	for w := 0; w < workers; w++ {
		all = append(all, ins[w]...)
		got = append(got, del[w]...)
	}
	h := q.Handle()
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(all) {
		t.Fatalf("recovered %d of %d", len(got), len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range all {
		if all[i] != got[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestEmptinessDetectedUnderConcurrency(t *testing.T) {
	// All workers drain a small queue; every item must be returned exactly
	// once and all workers must terminate (emptiness must be detected).
	const workers = 8
	q := New(4, workers)
	h := q.Handle()
	const n = 1000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	var count atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.Handle()
			for {
				if _, _, ok := h.DeleteMin(); !ok {
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if count.Load() != n {
		t.Fatalf("deleted %d of %d", count.Load(), n)
	}
}
