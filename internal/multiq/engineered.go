// Engineered MultiQueue: the stickiness and operation-buffering extensions
// of Williams and Sanders, "Engineering MultiQueues: Fast Relaxed Concurrent
// Priority Queues" (arXiv:2107.01350, revised as 2504.11652), layered on the
// classic c·p sub-queue structure.
//
//   - Stickiness s: a handle reuses its last sub-queue selection for up to s
//     consecutive lock acquisitions (insert flushes, deletion refills)
//     before re-sampling, and abandons it early on try-lock failure or an
//     empty pop. Sticky handles touch fewer cache lines and contend less.
//   - Insertion buffer b: inserts accumulate in a small sorted per-handle
//     buffer; a full buffer is flushed into one sub-queue under a single
//     lock acquisition.
//   - Deletion buffer b: a refill pops a batch of up to b items from the
//     chosen sub-queue under a single lock acquisition; subsequent deletes
//     are served from the buffer without touching shared state.
//
// Both extensions trade rank error for throughput: buffered items are
// invisible to other handles' sampling, and a deletion batch can overtake
// smaller keys inserted after the refill. The quality benchmark
// (internal/quality) measures exactly this trade-off.
//
// Correctness of the relaxed contract is preserved by three rules. First,
// every buffered handle is registered with its queue, and the emptiness
// oracle (sweep) scans the registered buffers after the sub-queues, stealing
// buffered items if needed — DeleteMin reports empty only when neither a
// sub-queue nor any buffer holds an item. Second, Len and PeekMin consult
// the same buffers, so the queue's observable size never drops below its
// true size. Third, a handle's own insertion buffer competes with the
// sampled sub-queue minimum during deletes, so a handle can never starve
// its own small keys.
package multiq

import (
	"fmt"
	"sync"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/telemetry"
)

// DefaultStickiness and DefaultBuffer are the engineered variant's default
// tuning (the registry identifier "multiq-s4-b8").
const (
	DefaultStickiness = 4
	DefaultBuffer     = 8
)

// BatchPopper is implemented by sub-heaps that can pop several minima in
// one call (all seqheap substrates do); the engineered MultiQueue uses it
// to refill its deletion buffer under a single lock acquisition.
type BatchPopper interface {
	PopN(dst []pq.Item, max int) []pq.Item
}

// NewEngineered returns an engineered MultiQueue with c·p sub-queues,
// stickiness s and per-handle buffer size b. c <= 0 selects DefaultC;
// s and b are clamped to 1 (1 = extension disabled). With s <= 1 and
// b <= 1 the queue degenerates to the seed MultiQueue except for its name.
func NewEngineered(c, p, s, b int) *Queue {
	return NewEngineeredWith(c, p, s, b, nil)
}

// NewEngineeredWith is NewEngineered with an explicit sub-heap factory
// (nil selects the binary heap).
func NewEngineeredWith(c, p, s, b int, mkHeap func() SubHeap) *Queue {
	q := NewWith(c, p, mkHeap)
	if s < 1 {
		s = 1
	}
	if b < 1 {
		b = 1
	}
	q.stick, q.buf = s, b
	if q.c == DefaultC {
		q.name = fmt.Sprintf("multiq-s%d-b%d", s, b)
	} else {
		q.name = fmt.Sprintf("multiq-c%d-s%d-b%d", q.c, s, b)
	}
	return q
}

// Stickiness returns the sticky-reuse parameter s (1 = off).
func (q *Queue) Stickiness() int { return q.stick }

// Buffer returns the per-handle buffer size b (1 = off).
func (q *Queue) Buffer() int { return q.buf }

// EHandle is the engineered variant's per-goroutine handle. The buffers are
// owned by the handle's goroutine but guarded by mu so that sweep, Len and
// PeekMin running on other handles can observe and steal them; the owner's
// fast path takes mu uncontended.
type EHandle struct {
	q   *Queue
	rng *rng.Xoroshiro
	tel *telemetry.Shard

	mu  sync.Mutex
	ins []pq.Item // pending insertions, sorted ascending by key
	del []pq.Item // refilled deletions, sorted descending (serve from the end)

	insQ, insLeft int // sticky insert target and remaining reuses
	delQ, delLeft int // sticky delete target and remaining reuses
}

var _ pq.Handle = (*EHandle)(nil)
var _ pq.Peeker = (*EHandle)(nil)
var _ pq.Flusher = (*EHandle)(nil)

// Insert implements pq.Handle: the item goes into the sorted insertion
// buffer; a full buffer is flushed to one sub-queue under one lock.
func (h *EHandle) Insert(key, value uint64) {
	h.mu.Lock()
	h.pushInsLocked(pq.Item{Key: key, Value: value})
	if len(h.ins) >= h.q.buf {
		h.flushInsLocked()
	}
	h.mu.Unlock()
}

// pushInsLocked inserts into the sorted buffer (insertion sort; the buffer
// is at most b items, so the memmove is a handful of cache lines).
func (h *EHandle) pushInsLocked(it pq.Item) {
	a := append(h.ins, it)
	i := len(a) - 1
	for i > 0 && a[i-1].Key > it.Key {
		a[i] = a[i-1]
		i--
	}
	a[i] = it
	h.ins = a
}

// takeInsLocked removes and returns the smallest buffered insertion.
func (h *EHandle) takeInsLocked() pq.Item {
	it := h.ins[0]
	h.ins = h.ins[:copy(h.ins, h.ins[1:])]
	return it
}

// flushInsLocked publishes the whole insertion buffer into one sub-queue
// under a single lock acquisition. Requires h.mu held.
func (h *EHandle) flushInsLocked() {
	if len(h.ins) == 0 {
		return
	}
	h.tel.Inc(telemetry.MQInsFlush)
	// Failpoint: stall the flush while h.mu is held, so sweeps, Len and
	// steals from other handles pile up against the buffered items.
	chaos.Perturb(chaos.MQFlush)
	s := h.lockForInsert()
	for _, it := range h.ins {
		s.heap.Push(it)
	}
	s.updateMin()
	s.mu.Unlock()
	h.ins = h.ins[:0]
}

// lockForInsert acquires one sub-queue lock for a flush: the sticky target
// if it still has reuses and its try-lock succeeds, otherwise a fresh
// uniform sample (bounded try-locks, then a blocking Lock as in the seed
// insert path). The chosen index becomes the new sticky target.
func (h *EHandle) lockForInsert() *subqueue {
	q := h.q
	qs := q.queues()
	n := uint64(len(qs))
	if h.insLeft > 0 {
		s := qs[h.insQ] // sticky indices survive growth (prefix is shared)
		// Failpoint: a forced try-lock failure abandons the sticky target,
		// exercising the stick-reset and resample path.
		if !chaos.ShouldFail(chaos.MQLock) && s.mu.TryLock() {
			h.insLeft--
			return s
		}
		h.insLeft = 0 // contended: abandon the sticky target
		h.tel.Inc(telemetry.MQStickReset)
	}
	for attempt := 0; attempt < insertTryLimit; attempt++ {
		i := int(h.rng.Uintn(n))
		s := qs[i]
		if !chaos.ShouldFail(chaos.MQLock) && s.mu.TryLock() {
			h.insQ, h.insLeft = i, q.stick-1
			return s
		}
	}
	i := int(h.rng.Uintn(n))
	s := qs[i]
	chaos.Perturb(chaos.MQLock)
	s.mu.Lock()
	h.insQ, h.insLeft = i, q.stick-1
	return s
}

// DeleteMin implements pq.Handle: serve from the deletion buffer when
// possible (comparing against the insertion buffer's minimum so a handle
// never overtakes its own smaller keys), refill otherwise, and fall back
// to the buffer-aware sweep when sampling finds everything empty.
func (h *EHandle) DeleteMin() (key, value uint64, ok bool) {
	h.mu.Lock()
	if n := len(h.del); n > 0 {
		if len(h.ins) > 0 && h.ins[0].Key < h.del[n-1].Key {
			it := h.takeInsLocked()
			h.mu.Unlock()
			return it.Key, it.Value, true
		}
		it := h.del[n-1]
		h.del = h.del[:n-1]
		h.mu.Unlock()
		return it.Key, it.Value, true
	}
	it, found := h.refillLocked()
	h.mu.Unlock()
	if found {
		return it.Key, it.Value, true
	}
	return h.sweepBuffered()
}

// refillLocked repopulates the deletion buffer from the sub-queue chosen by
// sticky/min-of-two sampling, popping up to b items under one lock, and
// returns the smallest item obtained. The handle's own insertion buffer
// competes as a deletion source. Requires h.mu held.
func (h *EHandle) refillLocked() (pq.Item, bool) {
	return h.refillNLocked(h.q.buf)
}

// refillNLocked is refillLocked with an explicit batch width: DeleteMinN
// refills with the remaining batch size when that exceeds b, so one lock
// acquisition feeds the whole batch. Stickiness is respected either way —
// the width only changes how much one acquisition pops.
func (h *EHandle) refillNLocked(want int) (pq.Item, bool) {
	q := h.q
	qs := q.queues()
	for attempt := 0; attempt < 3*len(qs); attempt++ {
		pick, min := -1, uint64(emptyKey)
		if h.delLeft > 0 {
			pick, min = h.delQ, qs[h.delQ].min.Load()
			h.delLeft--
			if min == emptyKey {
				pick, h.delLeft = -1, 0 // sticky target drained; resample
				h.tel.Inc(telemetry.MQStickReset)
			}
		}
		if pick < 0 {
			pick, min = sampleTwo(qs, h.rng)
			h.delQ, h.delLeft = pick, q.stick-1
		}
		if len(h.ins) > 0 && h.ins[0].Key <= min {
			return h.takeInsLocked(), true
		}
		if min == emptyKey {
			continue // both sampled queues look empty; resample
		}
		// Failpoint: stall between the cached-min sample and the batch pop
		// (inviting a raced drain), and force the occasional try-lock loss.
		chaos.Perturb(chaos.MQRefill)
		s := qs[pick]
		if chaos.ShouldFail(chaos.MQLock) || !s.mu.TryLock() {
			h.delLeft = 0
			h.tel.Inc(telemetry.MQStickReset)
			continue
		}
		h.tel.Inc(telemetry.MQDelRefill)
		h.del = popBatchDescending(s.heap, h.del[:0], want)
		s.updateMin()
		s.mu.Unlock()
		if m := len(h.del); m > 0 {
			it := h.del[m-1]
			h.del = h.del[:m-1]
			return it, true
		}
		h.delLeft = 0 // raced with a drain; resample
	}
	if len(h.ins) > 0 {
		return h.takeInsLocked(), true
	}
	return pq.Item{}, false
}

// popBatchDescending pops up to max items from sh in ascending order and
// stores them into dst reversed (descending), so the deletion buffer is
// served from the slice end in O(1).
func popBatchDescending(sh SubHeap, dst []pq.Item, max int) []pq.Item {
	if bp, ok := sh.(BatchPopper); ok {
		dst = bp.PopN(dst, max)
	} else {
		for len(dst) < max {
			it, ok := sh.Pop()
			if !ok {
				break
			}
			dst = append(dst, it)
		}
	}
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// sweepBuffered is the engineered variant's emptiness oracle: scan every
// sub-queue, then every registered handle's buffers. A deletion buffer
// holds items already removed from the shared structure and an insertion
// buffer holds items not yet published; either way the queue is non-empty,
// so the sweep steals the buffer's smallest item. Must be called without
// h.mu held (the registry includes h itself).
func (h *EHandle) sweepBuffered() (key, value uint64, ok bool) {
	q := h.q
	h.tel.Inc(telemetry.MQSweep)
	if k, v, found := q.sweepSubqueues(); found {
		return k, v, true
	}
	for _, other := range q.snapshotHandles() {
		other.mu.Lock()
		if n := len(other.del); n > 0 {
			it := other.del[n-1]
			other.del = other.del[:n-1]
			other.mu.Unlock()
			return it.Key, it.Value, true
		}
		if len(other.ins) > 0 {
			it := other.takeInsLocked()
			other.mu.Unlock()
			return it.Key, it.Value, true
		}
		other.mu.Unlock()
	}
	return 0, 0, false
}

// PeekMin implements pq.Peeker: the best of the sub-queues' cached minima
// and every registered handle's buffered minima (approximate under
// concurrency, like the seed's PeekMin).
func (h *EHandle) PeekMin() (key, value uint64, ok bool) {
	q := h.q
	qs := q.queues()
	best := pq.Item{Key: emptyKey}
	found := false
	bestIdx := -1
	for i := range qs {
		if m := qs[i].min.Load(); m < best.Key {
			best.Key, bestIdx = m, i
		}
	}
	if bestIdx >= 0 {
		s := qs[bestIdx]
		s.mu.Lock()
		if it, have := s.heap.Min(); have {
			best, found = it, true
		} else {
			best.Key = emptyKey
		}
		s.mu.Unlock()
	}
	for _, other := range q.snapshotHandles() {
		other.mu.Lock()
		if n := len(other.del); n > 0 && (!found || other.del[n-1].Key < best.Key) {
			best, found = other.del[n-1], true
		}
		if len(other.ins) > 0 && (!found || other.ins[0].Key < best.Key) {
			best, found = other.ins[0], true
		}
		other.mu.Unlock()
	}
	if !found {
		return 0, 0, false
	}
	return best.Key, best.Value, true
}

// Flush implements pq.Flusher: publish the insertion buffer and return the
// unserved deletion buffer to the sub-queues, leaving both buffers empty.
// Deletion-buffer items were popped from the shared structure but never
// handed to a caller, so pushing them back neither loses nor duplicates
// items. The benchmark harnesses call Flush when a worker's measured phase
// ends, so replay and post-run accounting see every item.
func (h *EHandle) Flush() {
	h.mu.Lock()
	h.flushInsLocked()
	if len(h.del) > 0 {
		s := h.lockForInsert()
		for _, it := range h.del {
			s.heap.Push(it)
		}
		s.updateMin()
		s.mu.Unlock()
		h.del = h.del[:0]
	}
	h.mu.Unlock()
}
