package multiq

import (
	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// Batch-first paths of the MultiQueue family (DESIGN.md §4c).
//
// A MultiQueue operation's cost is dominated by its sub-queue lock
// acquisition (sampling, try-lock, cached-min maintenance). The batch
// paths pay it once per batch: InsertN pushes the whole batch into one
// sampled sub-queue under one lock — exactly the placement the engineered
// variant's buffer flush already performs — and DeleteMinN pops batches
// from the min-of-two choice. Relaxation-wise a batch behaves like the
// engineered variant with buffer size = batch width, a trade the quality
// harness measures rather than assumes away.

// BatchPusher is implemented by sub-heaps that can push several items in
// one call (seqheap.Heap does); the batch insert paths use it to amortize
// the per-item interface dispatch.
type BatchPusher interface {
	PushN(its []pq.Item)
}

// pushAll pushes every element of kvs into sh.
func pushAll(sh SubHeap, kvs []pq.KV) {
	if bp, ok := sh.(BatchPusher); ok {
		bp.PushN(kvs)
		return
	}
	for _, kv := range kvs {
		sh.Push(kv)
	}
}

// popInto pops up to max items from sh in ascending order into a prefix
// of dst (cap(dst) must be >= max) and returns how many were popped.
func popInto(sh SubHeap, dst []pq.KV, max int) int {
	if bp, ok := sh.(BatchPopper); ok {
		return len(bp.PopN(dst[:0], max))
	}
	got := 0
	for got < max {
		it, ok := sh.Pop()
		if !ok {
			break
		}
		dst[got] = it
		got++
	}
	return got
}

var _ pq.BatchInserter = (*Handle)(nil)
var _ pq.BatchDeleter = (*Handle)(nil)

// InsertN implements pq.BatchInserter: one try-lock acquisition publishes
// the whole batch to a uniformly random sub-queue (bounded try-locks,
// then a blocking Lock, as in the scalar insert).
func (h *Handle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	qs := h.q.queues()
	nq := uint64(len(qs))
	for attempt := 0; attempt < insertTryLimit; attempt++ {
		s := qs[h.rng.Uintn(nq)]
		// Failpoint: a forced try-lock failure redirects the whole batch to
		// another sub-queue, like a genuinely contended lock.
		if !chaos.ShouldFail(chaos.MQLock) && s.mu.TryLock() {
			pushAll(s.heap, kvs)
			s.updateMin()
			s.mu.Unlock()
			h.tel.Add(telemetry.BatchInsertItems, uint64(n))
			h.tel.ObserveBatchWidth(n)
			return
		}
	}
	s := qs[h.rng.Uintn(nq)]
	chaos.Perturb(chaos.MQLock)
	s.mu.Lock()
	pushAll(s.heap, kvs)
	s.updateMin()
	s.mu.Unlock()
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter: each min-of-two sample that wins
// its try-lock pops as much of the remaining batch as its sub-queue holds
// under that one lock; the buffer-less sweep remains the emptiness oracle.
func (h *Handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	qs := h.q.queues()
	got := 0
	for got < n {
		progressed := false
		for attempt := 0; attempt < 3*len(qs); attempt++ {
			pick, min := sampleTwo(qs, h.rng)
			if min == emptyKey {
				continue // both sampled queues look empty; resample
			}
			s := qs[pick]
			if chaos.ShouldFail(chaos.MQLock) || !s.mu.TryLock() {
				continue
			}
			m := popInto(s.heap, dst[got:], n-got)
			if m > 0 {
				s.updateMin()
			}
			s.mu.Unlock()
			if m > 0 {
				got += m
				progressed = true
				break
			}
		}
		if !progressed {
			k, v, ok := h.sweep()
			if !ok {
				break // queue appeared empty mid-batch
			}
			dst[got] = pq.KV{Key: k, Value: v}
			got++
		}
	}
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}

var _ pq.BatchInserter = (*EHandle)(nil)
var _ pq.BatchDeleter = (*EHandle)(nil)

// InsertN implements pq.BatchInserter. Batches route through the sorted
// insertion buffer so the scalar path's local handoff survives batching:
// a buffered batch is visible to the handle's own DeleteMin/DeleteMinN
// (the insertion buffer competes as a deletion source), and in mixed
// workloads most batch items never touch a sub-queue lock at all. The
// buffer is granted one batch width of headroom before spilling — a batch
// is one synchronization episode, and the next delete batch gets the
// chance to compete it away — because the scalar spill threshold (b)
// would otherwise force a publish on every batch of width >= b, which is
// exactly the width-8 regression this path had. Only a batch that dwarfs
// the buffer (>= 2b) skips it: pending buffer and batch are published
// together under one sub-queue lock, a pre-made flush.
func (h *EHandle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	h.mu.Lock()
	if n >= 2*h.q.buf {
		h.tel.Inc(telemetry.MQInsFlush)
		// Failpoint: stall the flush while h.mu is held, so sweeps and
		// steals from other handles pile up against the batch.
		chaos.Perturb(chaos.MQFlush)
		s := h.lockForInsert()
		pushAll(s.heap, h.ins)
		h.ins = h.ins[:0]
		pushAll(s.heap, kvs)
		s.updateMin()
		s.mu.Unlock()
	} else {
		if len(h.ins) >= h.q.buf {
			// Spill the stale pending items first and keep the fresh batch
			// local: the next delete batch competes for the newest keys.
			// The buffer stays below b + batch width either way.
			h.flushInsLocked()
		}
		for _, kv := range kvs {
			h.pushInsLocked(kv)
		}
	}
	h.mu.Unlock()
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter: the deletion buffer (with the
// insertion buffer competing, as in the scalar path) serves the batch
// under one h.mu acquisition, refilling with the remaining batch width so
// one sub-queue lock feeds the rest of the batch. Stickiness governs the
// refill targets exactly as in the scalar path.
func (h *EHandle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	got := 0
	h.mu.Lock()
	for got < n {
		if m := len(h.del); m > 0 {
			if len(h.ins) > 0 && h.ins[0].Key < h.del[m-1].Key {
				dst[got] = h.takeInsLocked()
			} else {
				dst[got] = h.del[m-1]
				h.del = h.del[:m-1]
			}
			got++
			continue
		}
		want := h.q.buf
		if rest := n - got; rest > want {
			want = rest
		}
		it, found := h.refillNLocked(want)
		if found {
			dst[got] = it
			got++
			continue
		}
		// Sampling found everything empty: consult the buffer-aware sweep,
		// which must run without h.mu held (the registry includes h).
		h.mu.Unlock()
		k, v, ok := h.sweepBuffered()
		if !ok {
			h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
			h.tel.ObserveBatchWidth(got)
			return got
		}
		dst[got] = pq.KV{Key: k, Value: v}
		got++
		h.mu.Lock()
	}
	h.mu.Unlock()
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}
