// Package multiq implements the MultiQueue of Rihani, Sanders and Dementiev
// (SPAA 2015 brief announcement): the simplest of the paper's relaxed
// designs and, per the paper's conclusion, the most consistent performer.
//
// The structure consists of c·P sequential priority queues, each protected
// by its own lock (the paper uses std::priority_queue; here the equivalent
// seqheap.Heap). Inserts push to a uniformly random queue; delete_min peeks
// at two uniformly random queues and pops from the one with the smaller
// minimum ("power of two choices" load balancing). No bound on the rank
// error has been proved ("no obvious guarantees on the order of deleted
// elements"), but empirically the error grows linearly with the thread
// count, which the quality benchmark reproduces.
//
// Each sub-queue caches its current minimum key in an atomic word so
// delete_min's comparison never takes locks it will not use.
//
// NewEngineered builds the engineered variant of Williams and Sanders
// (stickiness + per-handle operation buffers); see engineered.go.
package multiq

import (
	"math"
	"sync"
	"sync/atomic"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/seqheap"
	"cpq/internal/telemetry"
)

// DefaultC is the queues-per-thread factor; the paper's benchmarks set c=4.
const DefaultC = 4

// emptyKey is the cached-minimum sentinel for an empty sub-queue.
const emptyKey = math.MaxUint64

// insertTryLimit bounds the random try-lock attempts of an insert before it
// falls back to a blocking Lock. Without the bound a handle can livelock
// when c·p is small and every sub-queue stays contended.
const insertTryLimit = 16

// SubHeap is the sequential priority queue backing one sub-queue. The
// paper uses std::priority_queue (a binary heap); the suite also provides
// d-ary heaps for the sub-heap ablation (seqheap.DHeap).
type SubHeap interface {
	Push(pq.Item)
	Pop() (pq.Item, bool)
	Min() (pq.Item, bool)
	Len() int
}

type subqueue struct {
	mu   sync.Mutex
	heap SubHeap
	min  atomic.Uint64 // cached minimum key; emptyKey when empty
	_    [5]uint64     // pad to a cache line to avoid false sharing of locks
}

func newSubqueue(mkHeap func() SubHeap) *subqueue {
	s := &subqueue{heap: mkHeap()}
	s.min.Store(emptyKey)
	return s
}

func (s *subqueue) updateMin() {
	if it, ok := s.heap.Min(); ok {
		s.min.Store(it.Key)
	} else {
		s.min.Store(emptyKey)
	}
}

// Queue is a MultiQueue over a growable set of sub-queues: the set starts
// at c·p for the constructor's thread-count parameter and grows (never
// shrinks) when a handle pool outgrows it (EnsureHandles), so the c·P
// sizing rule tracks the live handle count instead of a frozen
// Options.Threads. The engineered variant (NewEngineered) additionally
// carries the stickiness and buffer parameters and a registry of its
// buffered handles, which the emptiness oracle (sweep), Len and PeekMin
// consult.
type Queue struct {
	// qs is the current sub-queue set, published atomically by growth.
	// Growth copies the old prefix into a longer slice, so an index into
	// an old snapshot stays valid in every later one (sticky targets
	// survive growth); only readers that must visit EVERY sub-queue
	// (sweepSubqueues, Len) need to re-check the pointer.
	qs     atomic.Pointer[[]*subqueue]
	c      int
	p      atomic.Int32 // handle count the current layout is sized for
	stick  int          // sticky reuses per sub-queue selection (<=1: off)
	buf    int          // per-handle insertion/deletion buffer size (<=1: off)
	name   string       // benchmark identifier, e.g. "multiq" or "multiq-s4-b8"
	mkHeap func() SubHeap
	seed   atomic.Uint64

	growMu sync.Mutex // serializes EnsureHandles

	hmu     sync.Mutex
	handles []*EHandle // buffered handles; append-only under hmu
}

var _ pq.Queue = (*Queue)(nil)
var _ pq.Grower = (*Queue)(nil)

// New returns a MultiQueue with c·p sub-queues (c <= 0 selects DefaultC,
// p < 1 is treated as 1), each backed by a binary heap as in the paper.
func New(c, p int) *Queue {
	return NewWith(c, p, nil)
}

// NewWith is New with an explicit sub-heap factory (nil selects the binary
// heap). Used by the d-ary sub-heap ablation.
func NewWith(c, p int, mkHeap func() SubHeap) *Queue {
	if c <= 0 {
		c = DefaultC
	}
	if p < 1 {
		p = 1
	}
	if mkHeap == nil {
		mkHeap = func() SubHeap { return &seqheap.Heap{} }
	}
	q := &Queue{c: c, stick: 1, buf: 1, name: "multiq", mkHeap: mkHeap}
	q.p.Store(int32(p))
	qs := make([]*subqueue, c*p)
	for i := range qs {
		qs[i] = newSubqueue(mkHeap)
	}
	q.qs.Store(&qs)
	return q
}

// queues returns the current sub-queue set. Callers use one snapshot per
// operation; see the Queue.qs comment for the growth contract.
func (q *Queue) queues() []*subqueue { return *q.qs.Load() }

// EnsureHandles implements pq.Grower: grow the sub-queue set to c·p when a
// handle pool's live set outgrows the layout the queue was built for.
// Existing sub-queues (and sticky indices into them) stay valid because
// growth publishes a longer slice sharing the old prefix. Idempotent;
// never shrinks.
func (q *Queue) EnsureHandles(p int) {
	if p <= int(q.p.Load()) {
		return
	}
	q.growMu.Lock()
	defer q.growMu.Unlock()
	if p <= int(q.p.Load()) {
		return
	}
	old := *q.qs.Load()
	qs := make([]*subqueue, q.c*p)
	copy(qs, old)
	for i := len(old); i < len(qs); i++ {
		qs[i] = newSubqueue(q.mkHeap)
	}
	q.qs.Store(&qs)
	q.p.Store(int32(p))
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return q.name }

// C returns the queues-per-thread factor.
func (q *Queue) C() int { return q.c }

// P returns the handle count the current layout is sized for (the
// constructor's thread parameter, or the high-water EnsureHandles value).
func (q *Queue) P() int { return int(q.p.Load()) }

// NumQueues returns the current number of sub-queues (c·P).
func (q *Queue) NumQueues() int { return len(q.queues()) }

// Handle implements pq.Queue. Engineered queues (stickiness or buffering
// enabled) hand out buffered handles and register them so sweep/Len/PeekMin
// can observe (and steal from) their buffers.
func (q *Queue) Handle() pq.Handle {
	r := rng.New(q.seed.Add(0x9e3779b97f4a7c15))
	if q.stick > 1 || q.buf > 1 {
		h := &EHandle{q: q, rng: r, tel: telemetry.NewShard()}
		q.hmu.Lock()
		q.handles = append(q.handles, h)
		q.hmu.Unlock()
		return h
	}
	return &Handle{q: q, rng: r, tel: telemetry.NewShard()}
}

// Handle is a per-goroutine handle carrying the queue-selection RNG.
type Handle struct {
	q   *Queue
	rng *rng.Xoroshiro
	tel *telemetry.Shard
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle: push to a uniformly random sub-queue,
// acquired by try-lock so a busy queue redirects the insert elsewhere. The
// try-lock attempts are bounded; past the bound the insert blocks on one
// random sub-queue instead of spinning (a single contended handle must not
// livelock when c·p is small).
func (h *Handle) Insert(key, value uint64) {
	qs := h.q.queues()
	n := uint64(len(qs))
	it := pq.Item{Key: key, Value: value}
	for attempt := 0; attempt < insertTryLimit; attempt++ {
		s := qs[h.rng.Uintn(n)]
		// Failpoint: a forced try-lock failure redirects the insert to
		// another sub-queue, like a genuinely contended lock.
		if !chaos.ShouldFail(chaos.MQLock) && s.mu.TryLock() {
			s.heap.Push(it)
			s.updateMin()
			s.mu.Unlock()
			return
		}
	}
	s := qs[h.rng.Uintn(n)]
	chaos.Perturb(chaos.MQLock)
	s.mu.Lock()
	s.heap.Push(it)
	s.updateMin()
	s.mu.Unlock()
}

// sampleTwo draws two distinct uniform sub-queue indices over one snapshot
// of the sub-queue set (branch-free distinct sampling: the second index is
// an independent uniform draw over the n-1 queues that are not the first)
// and returns the index with the smaller cached minimum along with that
// minimum (emptyKey when both sampled queues look empty).
func sampleTwo(qs []*subqueue, r *rng.Xoroshiro) (int, uint64) {
	n := uint64(len(qs))
	i := r.Uintn(n)
	j := i
	if n > 1 {
		j = (i + 1 + r.Uintn(n-1)) % n
	}
	mi, mj := qs[i].min.Load(), qs[j].min.Load()
	if mj < mi {
		return int(j), mj
	}
	return int(i), mi
}

// DeleteMin implements pq.Handle: sample two distinct random sub-queues,
// lock the one whose cached minimum is smaller and pop it. If the chosen
// queue turned out empty (raced), resample; a full sweep over all
// sub-queues decides emptiness.
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	qs := h.q.queues()
	for attempt := 0; attempt < 3*len(qs); attempt++ {
		pick, min := sampleTwo(qs, h.rng)
		if min == emptyKey {
			continue // both sampled queues look empty; resample
		}
		s := qs[pick]
		if chaos.ShouldFail(chaos.MQLock) || !s.mu.TryLock() {
			continue
		}
		it, popped := s.heap.Pop()
		if popped {
			s.updateMin()
		}
		s.mu.Unlock()
		if popped {
			return it.Key, it.Value, true
		}
	}
	return h.sweep()
}

// sweep scans every sub-queue once under its lock; it is the emptiness
// oracle and the last resort when sampling keeps missing.
func (h *Handle) sweep() (key, value uint64, ok bool) {
	h.tel.Inc(telemetry.MQSweep)
	return h.q.sweepSubqueues()
}

// sweepSubqueues pops from the first non-empty sub-queue, scanning all of
// them under their locks. It is pass one of the emptiness oracle; the
// engineered variant follows it with a pass over the per-handle buffers.
// An emptiness verdict is only valid for an unchanged sub-queue set: a
// concurrent EnsureHandles may have published sub-queues this scan never
// visited, so the scan retries until the set pointer holds still.
func (q *Queue) sweepSubqueues() (key, value uint64, ok bool) {
	for {
		ptr := q.qs.Load()
		for _, s := range *ptr {
			s.mu.Lock()
			it, popped := s.heap.Pop()
			if popped {
				s.updateMin()
			}
			s.mu.Unlock()
			if popped {
				return it.Key, it.Value, true
			}
		}
		if q.qs.Load() == ptr {
			return 0, 0, false
		}
	}
}

// PeekMin reports the smallest cached minimum across sub-queues
// (approximate under concurrency).
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	qs := h.q.queues()
	best := uint64(emptyKey)
	bestIdx := -1
	for i := range qs {
		if m := qs[i].min.Load(); m < best {
			best, bestIdx = m, i
		}
	}
	if bestIdx < 0 {
		return 0, 0, false
	}
	s := qs[bestIdx]
	s.mu.Lock()
	it, found := s.heap.Min()
	s.mu.Unlock()
	if !found {
		return 0, 0, false
	}
	return it.Key, it.Value, true
}

// Len sums the sizes of all sub-queues under their locks, plus — for the
// engineered variant — the contents of every handle's insertion and
// deletion buffer (buffered items are still in the queue). Like
// sweepSubqueues, the sub-queue pass retries if the set grew under it.
// Tests only.
func (q *Queue) Len() int {
	total := 0
	for {
		ptr := q.qs.Load()
		total = 0
		for _, s := range *ptr {
			s.mu.Lock()
			total += s.heap.Len()
			s.mu.Unlock()
		}
		if q.qs.Load() == ptr {
			break
		}
	}
	for _, h := range q.snapshotHandles() {
		h.mu.Lock()
		total += len(h.ins) + len(h.del)
		h.mu.Unlock()
	}
	return total
}

// snapshotHandles returns the current buffered-handle registry. The slice
// is append-only, so the snapshot stays valid after hmu is released.
func (q *Queue) snapshotHandles() []*EHandle {
	q.hmu.Lock()
	hs := q.handles
	q.hmu.Unlock()
	return hs
}
