package trend

import (
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseJSON = `{
  "git_sha": "aaaaaaa", "threads": 8, "prefill": 100000, "reps": 3,
  "cells": [
    {"queue": "multiq", "batch_width": 1, "mops_mean": 10.0, "mops_ci95": 0.5},
    {"queue": "multiq", "batch_width": 8, "mops_mean": 16.0, "mops_ci95": 0.5},
    {"queue": "linden", "batch_width": 1, "mops_mean": 4.0, "mops_ci95": 0.2}
  ],
  "churn": [
    {"queue": "multiq", "lifecycle": "pool", "mops_mean": 8.0, "mops_ci95": 0.3}
  ],
  "recover": [
    {"queue": "rec:multiq", "snapshot_age": 0, "mitems_mean": 5.0, "mitems_ci95": 0.2},
    {"queue": "rec:multiq", "snapshot_age": 100000, "mitems_mean": 3.0, "mitems_ci95": 0.2}
  ]
}`

const headJSON = `{
  "git_sha": "bbbbbbb", "threads": 8, "prefill": 100000, "reps": 3,
  "cells": [
    {"queue": "multiq", "batch_width": 1, "mops_mean": 10.2, "mops_ci95": 0.5},
    {"queue": "multiq", "batch_width": 8, "mops_mean": 12.0, "mops_ci95": 0.5},
    {"queue": "klsm128", "batch_width": 1, "mops_mean": 3.0, "mops_ci95": 0.2}
  ],
  "churn": [
    {"queue": "multiq", "lifecycle": "pool", "mops_mean": 9.5, "mops_ci95": 0.3}
  ],
  "recover": [
    {"queue": "rec:multiq", "snapshot_age": 0, "mitems_mean": 5.1, "mitems_ci95": 0.2},
    {"queue": "rec:multiq", "snapshot_age": 100000, "mitems_mean": 2.0, "mitems_ci95": 0.2}
  ]
}`

func TestDiffVerdicts(t *testing.T) {
	dir := t.TempDir()
	base, err := Load(writeReport(t, dir, "BENCH_1.json", baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	head, err := Load(writeReport(t, dir, "BENCH_2.json", headJSON))
	if err != nil {
		t.Fatal(err)
	}
	deltas, onlyBase, onlyHead := Diff(base, head)

	byLabel := map[string]Delta{}
	for _, d := range deltas {
		byLabel[d.Kind+"/"+d.Queue+"/"+d.Label] = d
	}
	// 10.0±0.5 -> 10.2±0.5: overlapping, flat.
	if v := byLabel["grid/multiq/w1"].Verdict; v != Flat {
		t.Errorf("multiq w1 verdict = %v, want %v", v, Flat)
	}
	// 16.0±0.5 -> 12.0±0.5: disjoint below, regression.
	if v := byLabel["grid/multiq/w8"].Verdict; v != Regression {
		t.Errorf("multiq w8 verdict = %v, want %v", v, Regression)
	}
	// 8.0±0.3 -> 9.5±0.3: disjoint above, improvement.
	if v := byLabel["churn/multiq/pool"].Verdict; v != Improvement {
		t.Errorf("churn pool verdict = %v, want %v", v, Improvement)
	}
	// Recovery cells diff by (queue, snapshot age): 5.0 -> 5.1 overlaps,
	// 3.0±0.2 -> 2.0±0.2 is disjoint below.
	if v := byLabel["rec/rec:multiq/age0"].Verdict; v != Flat {
		t.Errorf("rec age0 verdict = %v, want %v", v, Flat)
	}
	if v := byLabel["rec/rec:multiq/age100000"].Verdict; v != Regression {
		t.Errorf("rec age100000 verdict = %v, want %v", v, Regression)
	}
	if got := byLabel["grid/multiq/w8"].Ratio; got < 0.74 || got > 0.76 {
		t.Errorf("multiq w8 ratio = %v, want 0.75", got)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "grid linden w1" {
		t.Errorf("onlyBase = %v, want [grid linden w1]", onlyBase)
	}
	if len(onlyHead) != 1 || onlyHead[0] != "grid klsm128 w1" {
		t.Errorf("onlyHead = %v, want [grid klsm128 w1]", onlyHead)
	}
	if regs := Regressions(deltas); len(regs) != 2 ||
		regs[0].Label != "w8" || regs[1].Label != "age100000" {
		t.Errorf("Regressions = %v, want w8 and age100000", regs)
	}
}

func TestDiffSelfIsFlat(t *testing.T) {
	dir := t.TempDir()
	r, err := Load(writeReport(t, dir, "BENCH_1.json", baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	deltas, onlyBase, onlyHead := Diff(r, r)
	if len(onlyBase) != 0 || len(onlyHead) != 0 {
		t.Fatalf("self-diff mismatch: onlyBase=%v onlyHead=%v", onlyBase, onlyHead)
	}
	for _, d := range deltas {
		if d.Verdict != Flat || d.Ratio != 1 {
			t.Errorf("self-diff cell %v not flat: %v", d.Label, d)
		}
	}
}

func TestZeroCIMarksDelta(t *testing.T) {
	dir := t.TempDir()
	base, _ := Load(writeReport(t, dir, "a.json",
		`{"cells":[{"queue":"q","batch_width":1,"mops_mean":10,"mops_ci95":0}]}`))
	head, _ := Load(writeReport(t, dir, "b.json",
		`{"cells":[{"queue":"q","batch_width":1,"mops_mean":9.9,"mops_ci95":0}]}`))
	deltas, _, _ := Diff(base, head)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
	if !deltas[0].ZeroCI {
		t.Error("single-rep comparison not marked ZeroCI")
	}
	// Raw ordering still judged — callers decide how seriously to take it.
	if deltas[0].Verdict != Regression {
		t.Errorf("verdict = %v, want %v (raw ordering)", deltas[0].Verdict, Regression)
	}
}

func TestSeriesOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_6.json"} {
		writeReport(t, dir, name, `{}`)
	}
	got, err := Series(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_2.json", "BENCH_6.json", "BENCH_10.json"}
	if len(got) != len(want) {
		t.Fatalf("Series = %v", got)
	}
	for i := range want {
		if filepath.Base(got[i]) != want[i] {
			t.Errorf("Series[%d] = %s, want %s", i, filepath.Base(got[i]), want[i])
		}
	}
}
