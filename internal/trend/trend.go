// Package trend diffs the BENCH_*.json series emitted by cmd/pqgrid:
// per-cell MOps/s deltas between two reports, with a CI95 overlap test
// deciding whether a delta is a regression, an improvement, or noise.
//
// The overlap test is deliberately conservative in both directions: a cell
// counts as moved only when the two 95% confidence intervals are disjoint
// — head.mean + head.ci < base.mean - base.ci (regression) or the mirror
// (improvement). Single-rep reports carry CI95 = 0, which would turn every
// run-to-run wiggle into a verdict; Diff marks such comparisons so callers
// (cmd/pqtrend) can warn instead of failing the build on noise.
package trend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Cell is one (queue, batch-width) grid cell of a loaded report; the JSON
// field names match cmd/pqgrid's cellResult.
type Cell struct {
	Queue      string  `json:"queue"`
	BatchWidth int     `json:"batch_width"`
	MOpsMean   float64 `json:"mops_mean"`
	MOpsCI95   float64 `json:"mops_ci95"`
}

// ChurnCell is one (queue, lifecycle) goroutine-churn cell.
type ChurnCell struct {
	Queue     string  `json:"queue"`
	Lifecycle string  `json:"lifecycle"`
	MOpsMean  float64 `json:"mops_mean"`
	MOpsCI95  float64 `json:"mops_ci95"`
}

// RecCell is one (queue, snapshot-age) recovery cell from pqbench
// -recover: the cold-start replay rate in millions of items per second,
// keyed by how many WAL records had accumulated since the last snapshot
// when the simulated crash happened.
type RecCell struct {
	Queue       string  `json:"queue"` // "rec:" + registry name
	SnapshotAge int     `json:"snapshot_age"`
	MItemsMean  float64 `json:"mitems_mean"`
	MItemsCI95  float64 `json:"mitems_ci95"`
}

// Report is the subset of a BENCH_*.json document the trend analysis
// needs. Unknown fields are ignored, so older and newer grid schemas load
// alike (BENCH_6.json has no churn section; that is not an error).
type Report struct {
	Path      string      `json:"-"`
	GitSHA    string      `json:"git_sha"`
	Generated string      `json:"generated"`
	Threads   int         `json:"threads"`
	Prefill   int         `json:"prefill"`
	Duration  string      `json:"duration"`
	Reps      int         `json:"reps"`
	Cells     []Cell      `json:"cells"`
	Churn     []ChurnCell `json:"churn"`
	Recover   []RecCell   `json:"recover"`
}

// Load reads and decodes one BENCH_*.json report.
func Load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.Path = path
	return &r, nil
}

// Verdict is the outcome of one cell's CI95 overlap test.
type Verdict string

const (
	// Regression: head's interval lies entirely below base's.
	Regression Verdict = "REGRESSION"
	// Improvement: head's interval lies entirely above base's.
	Improvement Verdict = "improvement"
	// Flat: the intervals overlap; the delta is not distinguishable from
	// run-to-run noise at 95% confidence.
	Flat Verdict = "~"
)

// Delta is one matched cell's movement between two reports.
type Delta struct {
	// Kind is "grid" or "churn"; Queue and Label identify the cell
	// (Label is "w<width>" for grid cells, the lifecycle for churn cells).
	Kind, Queue, Label string
	BaseMean, BaseCI95 float64
	HeadMean, HeadCI95 float64
	// Ratio is HeadMean/BaseMean (0 when BaseMean is 0).
	Ratio   float64
	Verdict Verdict
	// ZeroCI notes that at least one side has CI95 = 0 (single-rep run):
	// the verdict then reflects raw ordering, not statistics.
	ZeroCI bool
}

func (d Delta) String() string {
	return fmt.Sprintf("%-5s %-14s %-6s %8.3f ±%.3f -> %8.3f ±%.3f  x%.3f  %s",
		d.Kind, d.Queue, d.Label, d.BaseMean, d.BaseCI95, d.HeadMean, d.HeadCI95, d.Ratio, d.Verdict)
}

// judge applies the CI95 overlap test.
func judge(baseMean, baseCI, headMean, headCI float64) Verdict {
	switch {
	case headMean+headCI < baseMean-baseCI:
		return Regression
	case headMean-headCI > baseMean+baseCI:
		return Improvement
	default:
		return Flat
	}
}

// Diff matches head's cells against base's by identity (queue + width for
// the grid, queue + lifecycle for churn) and returns one Delta per matched
// cell, in base's order, plus the identities present on only one side.
func Diff(base, head *Report) (deltas []Delta, onlyBase, onlyHead []string) {
	type id struct{ kind, queue, label string }
	baseSeen := map[id]bool{}
	mk := func(kind, queue, label string, bm, bc, hm, hc float64) Delta {
		d := Delta{
			Kind: kind, Queue: queue, Label: label,
			BaseMean: bm, BaseCI95: bc, HeadMean: hm, HeadCI95: hc,
			Verdict: judge(bm, bc, hm, hc),
			ZeroCI:  bc == 0 || hc == 0,
		}
		if bm != 0 {
			d.Ratio = hm / bm
		}
		return d
	}

	headGrid := map[id]Cell{}
	for _, c := range head.Cells {
		headGrid[id{"grid", c.Queue, fmt.Sprintf("w%d", c.BatchWidth)}] = c
	}
	headChurn := map[id]ChurnCell{}
	for _, c := range head.Churn {
		headChurn[id{"churn", c.Queue, c.Lifecycle}] = c
	}
	headRec := map[id]RecCell{}
	for _, c := range head.Recover {
		headRec[id{"rec", c.Queue, recLabel(c)}] = c
	}

	for _, b := range base.Cells {
		k := id{"grid", b.Queue, fmt.Sprintf("w%d", b.BatchWidth)}
		baseSeen[k] = true
		h, ok := headGrid[k]
		if !ok {
			onlyBase = append(onlyBase, k.kind+" "+k.queue+" "+k.label)
			continue
		}
		deltas = append(deltas, mk(k.kind, k.queue, k.label, b.MOpsMean, b.MOpsCI95, h.MOpsMean, h.MOpsCI95))
	}
	for _, b := range base.Churn {
		k := id{"churn", b.Queue, b.Lifecycle}
		baseSeen[k] = true
		h, ok := headChurn[k]
		if !ok {
			onlyBase = append(onlyBase, k.kind+" "+k.queue+" "+k.label)
			continue
		}
		deltas = append(deltas, mk(k.kind, k.queue, k.label, b.MOpsMean, b.MOpsCI95, h.MOpsMean, h.MOpsCI95))
	}
	for _, b := range base.Recover {
		k := id{"rec", b.Queue, recLabel(b)}
		baseSeen[k] = true
		h, ok := headRec[k]
		if !ok {
			onlyBase = append(onlyBase, k.kind+" "+k.queue+" "+k.label)
			continue
		}
		deltas = append(deltas, mk(k.kind, k.queue, k.label, b.MItemsMean, b.MItemsCI95, h.MItemsMean, h.MItemsCI95))
	}
	for _, c := range head.Cells {
		k := id{"grid", c.Queue, fmt.Sprintf("w%d", c.BatchWidth)}
		if !baseSeen[k] {
			onlyHead = append(onlyHead, k.kind+" "+k.queue+" "+k.label)
		}
	}
	for _, c := range head.Churn {
		k := id{"churn", c.Queue, c.Lifecycle}
		if !baseSeen[k] {
			onlyHead = append(onlyHead, k.kind+" "+k.queue+" "+k.label)
		}
	}
	for _, c := range head.Recover {
		k := id{"rec", c.Queue, recLabel(c)}
		if !baseSeen[k] {
			onlyHead = append(onlyHead, k.kind+" "+k.queue+" "+k.label)
		}
	}
	return deltas, onlyBase, onlyHead
}

// recLabel is a RecCell's identity label: the snapshot age it was
// measured at ("age100000").
func recLabel(c RecCell) string { return fmt.Sprintf("age%d", c.SnapshotAge) }

// Regressions filters deltas down to the cells that regressed.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Verdict == Regression {
			out = append(out, d)
		}
	}
	return out
}

// Series finds the BENCH_*.json files under dir and returns their paths
// ordered by numeric suffix (BENCH_2 before BENCH_10; non-numeric suffixes
// sort after, lexically). An empty result is not an error.
func Series(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Slice(matches, func(i, j int) bool {
		ni, oki := seriesIndex(matches[i])
		nj, okj := seriesIndex(matches[j])
		switch {
		case oki && okj:
			return ni < nj
		case oki != okj:
			return oki // numeric before non-numeric
		default:
			return matches[i] < matches[j]
		}
	})
	return matches, nil
}

// seriesIndex extracts the numeric N from a .../BENCH_N.json path.
func seriesIndex(path string) (int, bool) {
	name := filepath.Base(path)
	name = strings.TrimPrefix(name, "BENCH_")
	name = strings.TrimSuffix(name, ".json")
	n, err := strconv.Atoi(name)
	return n, err == nil
}
