package linden

import (
	"cpq/internal/pq"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// Batch-first paths (DESIGN.md §4c). For this queue a batch amortizes the
// two costs its scalar operations pay per item: the predecessor search
// (InsertN sorts the batch and reuses each key's window as the seed of the
// next search) and the dead-prefix walk (DeleteMinN claims a run of live
// nodes in ONE walk from the head and does at most one restructure for the
// whole batch, instead of re-walking the prefix once per deleted item).

var _ pq.BatchInserter = (*Handle)(nil)
var _ pq.BatchDeleter = (*Handle)(nil)

// InsertN implements pq.BatchInserter. The batch is sorted ascending in
// place (caller-owned per the contract); the arena hands out the whole
// batch's nodes from one slab, and each splice after the first resumes the
// predecessor search from the previous key's window (findFrom).
func (h *Handle) InsertN(kvs []pq.KV) {
	n := len(kvs)
	if n == 0 {
		return
	}
	pq.SortKVs(kvs)
	h.sh.Reserve(n * 6)
	var preds [skiplist.MaxHeight]skiplist.Node
	var succRefs [skiplist.MaxHeight]skiplist.Ref
	retries := uint64(0)
	for i, kv := range kvs {
		height := skiplist.RandomHeight(h.rng)
		node := h.sh.NewNode(kv.Key, kv.Value, height)
		retries += h.q.spliceAndRaise(node, kv.Key, height, &preds, &succRefs, i > 0)
	}
	if retries > 0 {
		h.tel.Add(telemetry.LindenSpliceRetry, retries)
	}
	h.tel.Add(telemetry.BatchInsertItems, uint64(n))
	h.tel.ObserveBatchWidth(n)
}

// DeleteMinN implements pq.BatchDeleter: one dead-prefix walk claims up to
// n live nodes in passing order (each claim is the same validated level-0
// CAS as the scalar DeleteMin, so each item individually meets the strict
// bound at its linearization point). The walked prefix — pre-existing dead
// nodes plus the ones this call kills — is counted once against the
// restructure threshold, giving at most one physical cleanup per batch.
func (h *Handle) DeleteMinN(dst []pq.KV, n int) int {
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	q := h.q
	curr, _ := q.list.Head().Next(0)
	offset := 0
	got := 0
	for !curr.IsNil() && got < n {
		ref := curr.LoadRef(0)
		if ref.Marked() {
			offset++
			curr = ref.Node()
			continue
		}
		if curr.CASRef(0, ref, ref.Node(), true) {
			dst[got] = pq.KV{Key: curr.Key(), Value: curr.Value()}
			got++
			// curr is now part of the dead prefix we are standing in.
			offset++
			curr = ref.Node()
		}
		// CAS failed: either curr was deleted (advance via the fresh LoadRef
		// next iteration) or an insert spliced a node after curr (retry the
		// CAS against the fresh pointer).
	}
	if offset > 0 {
		h.tel.Add(telemetry.LindenDeadWalk, uint64(offset))
	}
	if offset >= q.boundOffset {
		h.restructure()
	}
	h.tel.Add(telemetry.BatchDeleteItems, uint64(got))
	h.tel.ObserveBatchWidth(got)
	return got
}
