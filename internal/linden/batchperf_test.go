package linden

import (
	"testing"

	"cpq/internal/pq"
)

// Single-threaded batch-vs-scalar microbenchmarks for the Lindén-Jonsson
// queue: one iteration is 8 inserts + 8 delete-mins, issued either as 16
// scalar calls or as one InsertN + one DeleteMinN pair. The batch path's
// win comes from the finger-searched splices (findFrom) and the single
// dead-prefix walk; compare with
//
//	go test -bench 'LindenMix' -benchmem ./internal/linden/

const mixWidth = 8

func prefillMix(h *Handle) uint64 {
	r := uint64(12345)
	for i := 0; i < 1000; i++ {
		r = r*6364136223846793005 + 1
		h.Insert(r>>32, 1)
	}
	return r
}

func BenchmarkLindenMixScalar(b *testing.B) {
	q := New(0)
	h := q.Handle().(*Handle)
	r := prefillMix(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < mixWidth; j++ {
			r = r*6364136223846793005 + 1
			h.Insert(r>>32, 1)
		}
		for j := 0; j < mixWidth; j++ {
			h.DeleteMin()
		}
	}
}

func BenchmarkLindenMixBatch(b *testing.B) {
	q := New(0)
	h := q.Handle().(*Handle)
	r := prefillMix(h)
	kvs := make([]pq.KV, mixWidth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range kvs {
			r = r*6364136223846793005 + 1
			kvs[j] = pq.KV{Key: r >> 32, Value: 1}
		}
		h.InsertN(kvs)
		h.DeleteMinN(kvs, mixWidth)
	}
}
