// Package linden implements the Lindén-Jonsson concurrent priority queue
// (OPODIS 2013), the paper's representative of strict, skiplist-based,
// lock-free designs ("currently one of the most efficient Skiplist-based
// designs", Appendix C).
//
// The design's key idea is to minimise memory contention on delete_min:
//
//   - A node is logically deleted by marking its own level-0 forward
//     pointer. delete_min walks the (growing) prefix of logically deleted
//     nodes from the head and CAS-marks the first live node it meets. The
//     only contended CAS is therefore on the current head-of-queue node,
//     and failed attempts move forward instead of restarting.
//   - Physical unlinking is batched: only when a delete_min has walked more
//     than BoundOffset dead nodes does it restructure, swinging the head's
//     pointers past the whole dead prefix in one go.
//
// Inserts choose their predecessor among live nodes only, and splice in
// front of any dead nodes that follow it, using a validated CAS (skiplist.Ref)
// so that the decision taken during the search cannot be invalidated
// between search and link.
//
// On the packed-word substrate the dead-prefix walk is a scan over
// consecutive arena words rather than a pointer chase, which is what makes
// the batching pay: the walked prefix is cheap, so BoundOffset can stay
// large. Telemetry reports the walk length (linden-dead-walk), restructures
// and splice retries; chaos failpoints cover the validated splice and the
// restructure (DESIGN.md §5, §6).
package linden

import (
	"sync/atomic"

	"cpq/internal/chaos"
	"cpq/internal/pq"
	"cpq/internal/rng"
	"cpq/internal/skiplist"
	"cpq/internal/telemetry"
)

// DefaultBoundOffset is the physical-deletion batching threshold. Lindén and
// Jonsson report the best performance for thresholds around the hundreds on
// their machines; the constructor accepts other values and the ablation
// benchmarks sweep it.
const DefaultBoundOffset = 128

// Queue is a Lindén-Jonsson priority queue. Strict (linearizable)
// semantics: delete_min returns the minimum in some linearization.
type Queue struct {
	list        *skiplist.List
	boundOffset int
	seed        atomic.Uint64
}

var _ pq.Queue = (*Queue)(nil)

// New returns an empty queue with the given physical-deletion batching
// threshold; boundOffset <= 0 selects DefaultBoundOffset.
func New(boundOffset int) *Queue {
	if boundOffset <= 0 {
		boundOffset = DefaultBoundOffset
	}
	return &Queue{list: skiplist.New(), boundOffset: boundOffset}
}

// Name implements pq.Queue.
func (q *Queue) Name() string { return "linden" }

// Handle implements pq.Queue.
func (q *Queue) Handle() pq.Handle {
	return &Handle{
		q:   q,
		sh:  q.list.NewHandle(),
		rng: rng.New(q.seed.Add(0x9e3779b97f4a7c15)),
		tel: telemetry.NewShard(),
	}
}

// Handle is a per-goroutine handle: the tower-height RNG, the arena
// allocator and the telemetry shard.
type Handle struct {
	q   *Queue
	sh  *skiplist.Handle
	rng *rng.Xoroshiro
	tel *telemetry.Shard
}

var _ pq.Handle = (*Handle)(nil)
var _ pq.Peeker = (*Handle)(nil)

// Insert implements pq.Handle.
func (h *Handle) Insert(key, value uint64) {
	height := skiplist.RandomHeight(h.rng)
	n := h.sh.NewNode(key, value, height)
	var preds [skiplist.MaxHeight]skiplist.Node
	var succRefs [skiplist.MaxHeight]skiplist.Ref
	retries := h.q.spliceAndRaise(n, key, height, &preds, &succRefs, false)
	if retries > 0 {
		h.tel.Add(telemetry.LindenSpliceRetry, retries)
	}
}

// spliceAndRaise links the already allocated node n (the body of Insert,
// shared with InsertN). When seeded is true, preds holds a previous smaller
// key's window and the search resumes from it via findFrom instead of
// re-descending from the head. On return the arrays hold this key's window,
// ready to seed the next ascending key; the number of lost splice CASes is
// returned for the caller to register.
func (q *Queue) spliceAndRaise(n skiplist.Node, key uint64, height int, preds *[skiplist.MaxHeight]skiplist.Node, succRefs *[skiplist.MaxHeight]skiplist.Ref, seeded bool) uint64 {
	retries := uint64(0)
	for {
		if seeded {
			q.findFrom(key, preds, succRefs)
		} else {
			q.find(key, preds, succRefs)
			seeded = true
		}
		// Level 0: validated splice after the last live node with a smaller
		// key. succRefs[0] may point to a dead node; the new node simply
		// takes over the chain, keeping dead nodes reachable until the next
		// restructure.
		n.SetNext(0, succRefs[0].Node(), false)
		for i := 1; i < height; i++ {
			n.SetNext(i, succRefs[i].Node(), false)
		}
		// Failpoint: widen the find-to-CAS window, or force a lost splice.
		chaos.Perturb(chaos.LindenSplice)
		if !chaos.ShouldFail(chaos.LindenSplice) && preds[0].CASRef(0, succRefs[0], n, false) {
			break
		}
		// Window changed (concurrent insert or the pred was deleted).
		retries++
	}
	// Raise the tower best-effort; the node is already logically present.
	for level := 1; level < height; level++ {
		for attempt := 0; ; attempt++ {
			if r := n.LoadRef(level); r.Marked() {
				return retries // node already deleted and frozen at this level
			}
			if preds[level].CASRef(level, succRefs[level], n, false) {
				break
			}
			if attempt >= 4 {
				// Give up on this and all higher levels: the node stays
				// findable through level 0, just with a shorter tower.
				return retries
			}
			q.findFrom(key, preds, succRefs)
			if r := n.LoadRef(level); !r.Marked() && r.Node() != succRefs[level].Node() {
				n.SetNext(level, succRefs[level].Node(), false)
			}
		}
	}
	return retries
}

// find locates, at every level, the last node with key strictly smaller than
// key that is live (its level-0 pointer unmarked), together with a validated
// snapshot of that node's forward pointer. Dead nodes are skipped but not
// unlinked — batching physical deletion is the whole point of this design.
func (q *Queue) find(key uint64, preds *[skiplist.MaxHeight]skiplist.Node, succRefs *[skiplist.MaxHeight]skiplist.Ref) {
retry:
	for {
		pred := q.list.Head()
		predRef := pred.LoadRef(skiplist.MaxHeight - 1)
		for level := skiplist.MaxHeight - 1; level >= 0; level-- {
			curr := predRef.Node()
			for !curr.IsNil() {
				if curr.DeletedAt0() || (level > 0 && currMarkedAt(curr, level)) {
					// Dead (or frozen at this level): skip without helping.
					next, _ := curr.Next(level)
					curr = next
					continue
				}
				if curr.Key() >= key {
					break
				}
				pred = curr
				predRef = pred.LoadRef(level)
				// The freshly loaded ref may already lead somewhere else
				// than where we walked; re-validate it.
				if predRef.Marked() {
					// pred was deleted under us. Restart the whole search:
					// redescending through the towers costs O(log n),
					// whereas resuming this level from the head would walk
					// it node by node.
					continue retry
				}
				curr = predRef.Node()
			}
			preds[level] = pred
			succRefs[level] = predRef
			if level > 0 {
				predRef = pred.LoadRef(level - 1)
				if predRef.Marked() {
					// pred died between levels. Returning this snapshot
					// would let the caller CAS a marked cell back to
					// unmarked — resurrecting a consumed node and cutting
					// the new node out of the list. Restart instead.
					continue retry
				}
			}
		}
		return
	}
}

// findFrom is find seeded with a previously captured window (a finger
// search): preds must hold, at every level, the nil Node (ignored) or a
// node with key strictly smaller than key that was live when captured.
// The search descends exactly like find — the predecessor found at level
// L+1 carries down to level L — but at each level it fast-forwards to the
// seed when the seed is ahead of the carried predecessor, still live, and
// unmarked at that level. Ascending-sorted batch inserts pass the previous
// key's window, turning the per-key cost from a full descent into a walk
// proportional to the inter-key gap.
//
// The safety argument is the same validated-snapshot one find makes: every
// returned succRef is loaded from its pred and checked unmarked before use
// and before being stored, so a dead anchor (its level word marked — at
// level 0 that is exactly logical deletion) triggers a full find rather
// than ever handing the caller a marked snapshot whose CAS would resurrect
// a consumed node.
func (q *Queue) findFrom(key uint64, preds *[skiplist.MaxHeight]skiplist.Node, succRefs *[skiplist.MaxHeight]skiplist.Ref) {
	head := q.list.Head()
	pred := head
	for level := skiplist.MaxHeight - 1; level >= 0; level-- {
		if s := preds[level]; !s.IsNil() && s != head && !s.DeletedAt0() &&
			(pred == head || s.Key() > pred.Key()) {
			pred = s
		}
		predRef := pred.LoadRef(level)
		if predRef.Marked() {
			// The anchor died at this level; restart as an unseeded search.
			q.find(key, preds, succRefs)
			return
		}
		curr := predRef.Node()
		for !curr.IsNil() {
			if curr.DeletedAt0() || (level > 0 && currMarkedAt(curr, level)) {
				// Dead (or frozen at this level): skip without helping.
				next, _ := curr.Next(level)
				curr = next
				continue
			}
			if curr.Key() >= key {
				break
			}
			pred = curr
			predRef = pred.LoadRef(level)
			if predRef.Marked() {
				// pred was deleted under us; same restart rule as find, and
				// the full find re-descends from the head.
				q.find(key, preds, succRefs)
				return
			}
			curr = predRef.Node()
		}
		preds[level] = pred
		succRefs[level] = predRef
	}
}

func currMarkedAt(n skiplist.Node, level int) bool {
	if level >= n.Height() {
		return false
	}
	_, marked := n.Next(level)
	return marked
}

// DeleteMin implements pq.Handle. It walks the dead prefix from the head and
// marks the first live node. If it walked more than the queue's bound of
// dead nodes, it restructures (batch physical unlink).
func (h *Handle) DeleteMin() (key, value uint64, ok bool) {
	q := h.q
	curr, _ := q.list.Head().Next(0)
	offset := 0
	for !curr.IsNil() {
		ref := curr.LoadRef(0)
		if ref.Marked() {
			offset++
			curr = ref.Node()
			continue
		}
		if curr.CASRef(0, ref, ref.Node(), true) {
			// Logically deleted curr; we own it.
			if offset > 0 {
				h.tel.Add(telemetry.LindenDeadWalk, uint64(offset))
			}
			if offset >= q.boundOffset {
				h.restructure()
			}
			return curr.Key(), curr.Value(), true
		}
		// CAS failed: either curr was deleted (advance on the next loop
		// iteration via the fresh LoadRef) or an insert spliced a node
		// after curr (retry the CAS against the fresh pointer).
	}
	if offset > 0 {
		h.tel.Add(telemetry.LindenDeadWalk, uint64(offset))
	}
	if offset >= q.boundOffset {
		// The queue looks empty but a long dead prefix remains; clean it up
		// so it does not tax every subsequent operation.
		h.restructure()
	}
	return 0, 0, false
}

// PeekMin returns the first live key without deleting it (approximate under
// concurrency; used by examples and tests).
func (h *Handle) PeekMin() (key, value uint64, ok bool) {
	n := h.q.list.FirstLive()
	if n.IsNil() {
		return 0, 0, false
	}
	return n.Key(), n.Value(), true
}

// restructure physically unlinks the dead prefix: it freezes the towers of
// all currently dead prefix nodes and then lets a helping Find swing the
// head's pointers past them at every level.
func (h *Handle) restructure() {
	h.tel.Inc(telemetry.LindenRestructure)
	// Failpoint: a forced failure abandons the restructure (equivalent to
	// losing every unlink CAS to helpers — the dead prefix survives for a
	// later call); a perturbation stalls it mid-cleanup.
	if chaos.ShouldFail(chaos.LindenRestructure) {
		return
	}
	chaos.Perturb(chaos.LindenRestructure)
	q := h.q
	curr, _ := q.list.Head().Next(0)
	for !curr.IsNil() {
		succ, marked := curr.Next(0)
		if !marked {
			break
		}
		curr.MarkTower()
		curr = succ
	}
	var preds, succs [skiplist.MaxHeight]skiplist.Node
	q.list.Find(0, &preds, &succs)
}

// BoundOffset reports the configured batching threshold.
func (q *Queue) BoundOffset() int { return q.boundOffset }

// Len counts live items. O(n); tests and draining only.
func (q *Queue) Len() int { return q.list.CountLive() }

// Drain removes remaining live items (single-threaded teardown helper) and
// returns their keys in ascending order of removal.
func (q *Queue) Drain() []uint64 {
	h := q.Handle().(*Handle)
	var out []uint64
	for {
		k, _, ok := h.DeleteMin()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}
