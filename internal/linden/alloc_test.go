package linden

import (
	"testing"

	"cpq/internal/rng"
)

// Allocation-regression tests for the packed-word substrate (mirroring
// internal/core/alloc_test.go). The boxed-ref implementation allocated a
// reference cell on every link update plus a ~200 B node per insert; the
// arena version must run DeleteMin allocation-free and amortize Insert to
// the slab refill.

// steadyLinden returns a handle warmed past slab transients with a settled
// dead-prefix/restructure cadence. The churn runs over a live working set:
// alternating on a near-empty queue would park a live node in front of the
// dead prefix on every insert, so the restructure trigger never fires and
// the dead chain grows without bound (a known Lindén pathology, not the
// steady state these tests pin down).
func steadyLinden() (*Queue, *Handle, *rng.Xoroshiro) {
	q := New(0)
	h := q.Handle().(*Handle)
	r := rng.New(42)
	for i := 0; i < 2048; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
	}
	for i := 0; i < 4096; i++ {
		h.Insert(r.Uint64()&0xffff, 0)
		h.DeleteMin()
	}
	return q, h, r
}

func TestLindenInsertAllocsAmortized(t *testing.T) {
	_, h, r := steadyLinden()
	avg := testing.AllocsPerRun(2000, func() {
		h.Insert(r.Uint64()&0xffff, 0)
	})
	if avg > 1.0 {
		t.Errorf("linden Insert allocates %.3f allocs/op at steady state, want <= 1.0 (slab refills only)", avg)
	}
}

func TestLindenDeleteMinZeroAllocs(t *testing.T) {
	_, h, r := steadyLinden()
	const runs = 2000
	for i := 0; i < runs+100; i++ { // stock enough items to drain
		h.Insert(r.Uint64()&0xffff, 0)
	}
	avg := testing.AllocsPerRun(runs, func() {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatal("queue ran empty mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("linden DeleteMin allocates %.3f allocs/op at steady state, want 0", avg)
	}
}
