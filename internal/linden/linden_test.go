package linden

import (
	"sort"
	"sync"
	"testing"

	"cpq/internal/rng"
)

func TestEmpty(t *testing.T) {
	q := New(0)
	h := q.Handle()
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if q.Name() != "linden" {
		t.Fatalf("name = %q", q.Name())
	}
	if q.BoundOffset() != DefaultBoundOffset {
		t.Fatalf("default bound = %d", q.BoundOffset())
	}
}

func TestSequentialStrictOrder(t *testing.T) {
	q := New(8)
	h := q.Handle()
	r := rng.New(1)
	const n = 5000
	want := make([]uint64, n)
	for i := range want {
		k := r.Uint64() % 1000 // duplicates included
		want[i] = k
		h.Insert(k, k*2)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		k, v, ok := h.DeleteMin()
		if !ok {
			t.Fatalf("queue empty after %d deletions, want %d", i, n)
		}
		if k != want[i] {
			t.Fatalf("deletion %d = %d, want %d", i, k, want[i])
		}
		if v != k*2 {
			t.Fatalf("value %d does not match key %d", v, k)
		}
	}
	if _, _, ok := h.DeleteMin(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	q := New(4)
	h := q.Handle()
	// Insert 10, 20; delete (10); insert 5; delete (5) — a smaller key
	// inserted after deletions must surface immediately.
	h.Insert(10, 0)
	h.Insert(20, 0)
	if k, _, _ := h.DeleteMin(); k != 10 {
		t.Fatalf("first deletion = %d", k)
	}
	h.Insert(5, 0)
	if k, _, _ := h.DeleteMin(); k != 5 {
		t.Fatalf("second deletion = %d, want 5", k)
	}
	if k, _, _ := h.DeleteMin(); k != 20 {
		t.Fatalf("third deletion = %d, want 20", k)
	}
}

func TestInsertSmallerThanDeadPrefix(t *testing.T) {
	// Build a dead prefix (bound not reached, so it stays physically
	// linked), then insert keys smaller than the dead keys.
	q := New(1 << 30) // never restructure
	h := q.Handle()
	for k := uint64(100); k < 150; k++ {
		h.Insert(k, 0)
	}
	for i := 0; i < 30; i++ {
		h.DeleteMin() // kills 100..129, leaving them linked
	}
	h.Insert(50, 1)
	h.Insert(60, 2)
	if k, v, _ := h.DeleteMin(); k != 50 || v != 1 {
		t.Fatalf("got %d/%d, want 50/1", k, v)
	}
	if k, _, _ := h.DeleteMin(); k != 60 {
		t.Fatalf("want 60, got %d", k)
	}
	if k, _, _ := h.DeleteMin(); k != 130 {
		t.Fatalf("want 130, got %d", k)
	}
}

func TestRestructureCleansPrefix(t *testing.T) {
	q := New(4)
	h := q.Handle()
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, 0)
	}
	for i := 0; i < 100; i++ {
		if _, _, ok := h.DeleteMin(); !ok {
			t.Fatalf("empty after %d", i)
		}
	}
	// With bound 4, restructures must have physically removed most dead
	// nodes; after draining, at most ~bound dead nodes linger.
	count := 0
	n, _ := q.list.Head().Next(0)
	for !n.IsNil() {
		count++
		n, _ = n.Next(0)
	}
	if count > 2*q.BoundOffset()+2 {
		t.Fatalf("%d physical nodes linger after drain (bound %d)", count, q.BoundOffset())
	}
}

func TestPeekMin(t *testing.T) {
	q := New(0)
	h := q.Handle().(*Handle)
	if _, _, ok := h.PeekMin(); ok {
		t.Fatal("PeekMin on empty returned ok")
	}
	h.Insert(42, 7)
	h.Insert(17, 3)
	if k, v, ok := h.PeekMin(); !ok || k != 17 || v != 3 {
		t.Fatalf("PeekMin = %d/%d/%v", k, v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestConcurrentNoLostOrDuplicatedItems(t *testing.T) {
	q := New(16)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	deleted := make([][]uint64, workers)
	inserted := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) * 7)
			for i := 0; i < perWorker; i++ {
				k := r.Uint64() % 100000
				h.Insert(k, k)
				inserted[w] = append(inserted[w], k)
				if i%2 == 1 {
					if k, v, ok := h.DeleteMin(); ok {
						if v != k {
							panic("value mismatch")
						}
						deleted[w] = append(deleted[w], k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var ins, del []uint64
	for w := range inserted {
		ins = append(ins, inserted[w]...)
		del = append(del, deleted[w]...)
	}
	del = append(del, q.Drain()...)
	if len(del) != len(ins) {
		t.Fatalf("inserted %d, recovered %d", len(ins), len(del))
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	sort.Slice(del, func(i, j int) bool { return del[i] < del[j] })
	for i := range ins {
		if ins[i] != del[i] {
			t.Fatalf("multiset mismatch at %d: %d vs %d", i, ins[i], del[i])
		}
	}
}

func TestConcurrentDeletersDisjoint(t *testing.T) {
	// Prefill with distinct keys; concurrent deleters must never return the
	// same key twice (ownership via the marking CAS).
	q := New(32)
	h := q.Handle()
	const n = 20000
	for k := uint64(0); k < n; k++ {
		h.Insert(k, k)
	}
	const workers = 8
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			for {
				k, _, ok := h.DeleteMin()
				if !ok {
					return
				}
				out[w] = append(out[w], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, n)
	total := 0
	for _, ks := range out {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("deleted %d of %d items", total, n)
	}
}

func TestStrictUnderSingleThreadAfterConcurrentInserts(t *testing.T) {
	// Parallel inserts, then single-threaded drain must be sorted: strict
	// semantics mean rank error 0 in quiescence.
	q := New(64)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.Handle()
			r := rng.New(uint64(w) + 50)
			for i := 0; i < 3000; i++ {
				h.Insert(r.Uint64()%5000, 0)
			}
		}(w)
	}
	wg.Wait()
	drained := q.Drain()
	if len(drained) != workers*3000 {
		t.Fatalf("drained %d items", len(drained))
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] < drained[j] }) {
		t.Fatal("drain not sorted: queue is not strict")
	}
}

func TestDrainHelper(t *testing.T) {
	q := New(0)
	h := q.Handle()
	for _, k := range []uint64{3, 1, 2} {
		h.Insert(k, 0)
	}
	got := q.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if len(q.Drain()) != 0 {
		t.Fatal("second Drain not empty")
	}
}

func TestBoundOffsetOne(t *testing.T) {
	// Eager restructuring (bound 1) must still be correct.
	q := New(1)
	h := q.Handle()
	for k := uint64(0); k < 500; k++ {
		h.Insert(k, k)
	}
	for i := uint64(0); i < 500; i++ {
		k, _, ok := h.DeleteMin()
		if !ok || k != i {
			t.Fatalf("deletion %d = %d/%v", i, k, ok)
		}
	}
}

func TestDuplicateKeysPreserved(t *testing.T) {
	q := New(8)
	h := q.Handle()
	for i := 0; i < 100; i++ {
		h.Insert(7, uint64(i))
	}
	values := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		k, v, ok := h.DeleteMin()
		if !ok || k != 7 {
			t.Fatalf("deletion %d = %d/%v", i, k, ok)
		}
		if values[v] {
			t.Fatalf("value %d returned twice", v)
		}
		values[v] = true
	}
}
