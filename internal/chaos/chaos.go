// Package chaos is the suite's fault-injection layer: named failpoints
// threaded through the contended paths of the queue implementations, which
// inject seeded, reproducible schedule perturbations — forced yields, busy
// spins and forced CAS/try-lock failures — exactly where the structures'
// correctness arguments are most fragile.
//
// The paper's headline claims rest on lock-free progress and bounded
// relaxation: the k-LSM's delete_min must return one of the kP smallest
// items under any interleaving, and the engineered MultiQueue's buffered
// items must stay reachable through the emptiness oracle and Flush. An
// ordinary benchmark run only explores the interleavings the scheduler
// happens to produce; the failpoints widen race windows (a delay between a
// state load and its CAS invites a conflicting publish) and force the rare
// branches (a "failed" try-lock exercises stick resets and resampling) so
// the invariant checker (check.go) can hunt for violations in schedules a
// quiet machine would never reach.
//
// # Design
//
// The layer follows the same zero-cost-when-disabled rules as
// internal/telemetry:
//
//   - One branch when disabled: Perturb and ShouldFail reduce to a single
//     predictable branch on the package-level Enabled flag. Both are small
//     enough to inline; the enabled path lives in separate noinline
//     functions so the disabled path stays register-only.
//   - No allocation: neither the disabled nor the enabled path allocates
//     (guarded by testing.AllocsPerRun), so the existing allocs/op
//     regression gates hold with chaos compiled in.
//   - Enabled is a plain bool by design: it must be set before any
//     instrumented queue runs and never toggled while workers are live —
//     toggling mid-run is a data race (the flag buys its zero cost by not
//     being atomic). Enable/Disable are bracketed around quiesced phases.
//
// # Determinism and replay
//
// Every injection decision is a pure function of (seed, failpoint, n) where
// n is the failpoint's private hit counter: hash the triple, compare
// against the configured rates. A run with the same seed therefore injects
// the same decision sequence at every site. Goroutine interleaving itself
// is not (and cannot be) replayed, but re-running a failing seed reproduces
// the same perturbation pattern against the same seeded workload, which in
// practice re-triggers logic bugs reliably — the checker prints the seed on
// every failure for exactly this workflow (see DESIGN.md §6).
package chaos

import (
	"runtime"
	"sync/atomic"

	"cpq/internal/pq"
)

// Failpoint names one instrumented code site. The constants are the
// complete inventory; each is documented with its emission site.
type Failpoint int

const (
	// SLSMPublish is the SLSM's optimistic state-publish CAS
	// (core/slsm.go:insertBatch). Perturbed between the state load and the
	// CAS; a forced failure skips the CAS attempt and redoes the merge, the
	// exact retry storm the capped publish backoff is meant to damp.
	SLSMPublish Failpoint = iota
	// SLSMRepublish is the pivot-range recompute CAS
	// (core/slsm.go:takeRun, peekCandidate). A forced failure behaves like
	// losing the republish race to a concurrent publisher.
	SLSMRepublish
	// SLSMPivotTake is the pivot-range item-take scan
	// (core/slsm.go:takeRun). Perturbed after the state load so concurrent
	// takers interleave mid-scan and stale-pivot retries pile up.
	SLSMPivotTake
	// KLSMRunBuffer is the shared-run buffer hot path
	// (core/klsm.go:DeleteMin, Flush). Perturbed before the handle locks
	// its local component, widening the window in which a spy can steal the
	// buffer out from under the owner.
	KLSMRunBuffer
	// KLSMSpy is the spy work-stealing round (core/klsm.go:spy). Perturbed
	// between victim selection and the victim lock.
	KLSMSpy
	// MQLock is the MultiQueue sub-queue try-lock (multiq/multiq.go:Insert,
	// DeleteMin sampling; multiq/engineered.go:lockForInsert,
	// refillLocked). A forced failure is treated exactly like a lost
	// try-lock: inserts redirect, sticky targets are abandoned.
	MQLock
	// MQFlush is the engineered insertion-buffer flush
	// (multiq/engineered.go:flushInsLocked). Perturbed while the handle
	// lock is held, so sweeps and steals pile up against the flush.
	MQFlush
	// MQRefill is the engineered deletion-buffer refill
	// (multiq/engineered.go:refillLocked). Perturbed between the cached-min
	// sample and the batch pop, inviting the raced-drain path.
	MQRefill
	// SprayWalk is the spray descent (spray/spray.go:sprayOnce). A forced
	// failure turns the walk into a miss, exercising retry and fallback; a
	// perturbation delays the walk so claimed nodes go stale under it.
	SprayWalk
	// SprayFallback is the strict head scan fallback
	// (spray/spray.go:DeleteMin). Perturbed at entry so concurrent
	// deleters contend on the list head.
	SprayFallback
	// LindenSplice is the Lindén insert's validated level-0 splice CAS
	// (linden/linden.go:Insert). Perturbed between the find and the CAS so
	// the window can go stale under the inserter; a forced failure is
	// treated exactly like a lost splice and redoes the find.
	LindenSplice
	// LindenRestructure is the Lindén batch physical unlink of the dead
	// prefix (linden/linden.go:restructure). Perturbed at entry so
	// concurrent delete_mins keep walking the prefix mid-cleanup; a forced
	// failure abandons the restructure, leaving the dead prefix for a
	// later call — the same outcome as losing every unlink CAS to helpers.
	LindenRestructure
	// BatchPublish is the k-LSM InsertN eviction publish — the single SLSM
	// CAS that makes a whole insert batch shared (core/klsm.go:InsertN via
	// slsm.insertBatchFP). Perturbed between the state load and the CAS; a
	// forced failure loses the publish mid-batch and redoes the merge, so
	// the checker can verify no batch item is dropped or doubled across the
	// retry.
	BatchPublish
	// AcquireSteal is the handle pool's lifecycle failpoint
	// (pq/pool.go:Acquire, reclaim — injected through pq.SetPoolFailpoints
	// because pq cannot import this package). A forced failure makes
	// Acquire skip its free-list probe once, driving traffic onto the
	// growth and starvation paths; a perturbation stalls abandoned-handle
	// reclamation between ownership transfer and the buffer flush,
	// widening the window a conservation bug would need.
	AcquireSteal
	// WALFsync is the durable tier's group-commit barrier
	// (durable/wal.go:commit), perturbed between writing the pending
	// buffer to the store and fsyncing it — the worst crash window: bytes
	// the OS may or may not have, acks not yet sent. The kill/recover
	// test's crash-at-boundary mode exits the process here; a delay
	// widens the window so more producers pile onto one commit ticket.
	WALFsync

	// SnapManifest is the concurrent snapshot's commit point
	// (durable/snapshot.go:takeSnapshot), perturbed after the partial
	// snapshot chunks are durable but before the manifest write that
	// makes them the recovery base — the window where a crash must fall
	// back to the previous snapshot plus the full WAL tail. A delay here
	// stretches the span where orphan part keys exist alongside live
	// traffic.
	SnapManifest

	// NumFailpoints bounds per-failpoint state; not a failpoint itself.
	NumFailpoints
)

var fpNames = [NumFailpoints]string{
	SLSMPublish:       "slsm-publish",
	SLSMRepublish:     "slsm-republish",
	SLSMPivotTake:     "slsm-pivot-take",
	KLSMRunBuffer:     "klsm-run-buffer",
	KLSMSpy:           "klsm-spy",
	MQLock:            "mq-lock",
	MQFlush:           "mq-flush",
	MQRefill:          "mq-refill",
	SprayWalk:         "spray-walk",
	SprayFallback:     "spray-fallback",
	LindenSplice:      "linden-splice",
	LindenRestructure: "linden-restructure",
	BatchPublish:      "batch-publish",
	AcquireSteal:      "acquire-steal",
	WALFsync:          "wal-fsync",
	SnapManifest:      "snap-manifest",
}

// String returns the failpoint's short identifier, e.g. "slsm-publish".
func (fp Failpoint) String() string { return fpNames[fp] }

// Enabled turns fault injection on. It must be set (via Enable) before
// instrumented queues run and must not be toggled while they do; see the
// package documentation. When false — the default — every failpoint reduces
// to one branch.
var Enabled bool

// Config tunes the injection. The zero value selects the defaults noted on
// each field; rates are expressed as "about 1 in N hits" because the
// decision hash is compared against a modulus, keeping the hot decision a
// single remainder.
type Config struct {
	// Seed drives every injection decision; the same seed reproduces the
	// same decision sequence at every failpoint. Zero selects a fixed
	// default so Enable(Config{}) is already reproducible.
	Seed uint64
	// DelayEvery injects a delay at roughly 1 in DelayEvery Perturb hits
	// (default 16; negative disables delays).
	DelayEvery int
	// FailEvery forces roughly 1 in FailEvery ShouldFail hits to report
	// failure (default 8; negative disables forced failures).
	FailEvery int
	// MaxYield bounds the runtime.Gosched calls of a yield-type delay
	// (default 4).
	MaxYield int
	// MaxSpin bounds the iterations of a busy-spin delay (default 512).
	MaxSpin int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.DelayEvery == 0 {
		c.DelayEvery = 16
	}
	if c.FailEvery == 0 {
		c.FailEvery = 8
	}
	if c.MaxYield <= 0 {
		c.MaxYield = 4
	}
	if c.MaxSpin <= 0 {
		c.MaxSpin = 512
	}
	return c
}

// state is the enabled layer's private state. hits is the decision counter
// feeding the hash (and doubling as the coverage report); delays and fails
// count the injections actually performed.
var state struct {
	cfg    Config
	hits   [NumFailpoints]atomic.Uint64
	delays [NumFailpoints]atomic.Uint64
	fails  [NumFailpoints]atomic.Uint64
}

// spinSink defeats dead-code elimination of the busy-spin delay loop.
var spinSink atomic.Uint64

// Enable turns injection on with the given configuration and resets all
// counters. Call it before constructing the queues under test, with no
// instrumented goroutines running.
func Enable(cfg Config) {
	state.cfg = cfg.withDefaults()
	for fp := Failpoint(0); fp < NumFailpoints; fp++ {
		state.hits[fp].Store(0)
		state.delays[fp].Store(0)
		state.fails[fp].Store(0)
	}
	// The handle pool lives in pq, which this package imports — the
	// AcquireSteal failpoint is injected through pq's hook variables
	// rather than a direct call the other way.
	pq.SetPoolFailpoints(
		func() bool { return ShouldFail(AcquireSteal) },
		func() { Perturb(AcquireSteal) },
	)
	Enabled = true
}

// Disable turns injection off. Call it only once every instrumented
// goroutine has quiesced.
func Disable() {
	Enabled = false
	pq.SetPoolFailpoints(nil, nil)
}

// Stats reports per-failpoint decision hits and performed injections since
// the last Enable — the checker's failpoint-coverage report.
type Stats struct {
	Hits   [NumFailpoints]uint64
	Delays [NumFailpoints]uint64
	Fails  [NumFailpoints]uint64
}

// Snapshot returns the current injection counters.
func Snapshot() Stats {
	var s Stats
	for fp := Failpoint(0); fp < NumFailpoints; fp++ {
		s.Hits[fp] = state.hits[fp].Load()
		s.Delays[fp] = state.delays[fp].Load()
		s.Fails[fp] = state.fails[fp].Load()
	}
	return s
}

// TotalHits sums decision hits across all failpoints.
func (s Stats) TotalHits() uint64 {
	var t uint64
	for _, h := range s.Hits {
		t += h
	}
	return t
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash of the
// (seed, failpoint, counter) decision triple.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// decide draws the failpoint's next decision word.
func decide(fp Failpoint) uint64 {
	n := state.hits[fp].Add(1)
	return mix64(state.cfg.Seed ^ uint64(fp)<<56 ^ n)
}

// Perturb injects a bounded schedule perturbation at fp — a short Gosched
// burst or a busy spin — at the configured rate. Disabled: one branch, no
// write, no allocation.
func Perturb(fp Failpoint) {
	if !Enabled {
		return
	}
	perturbSlow(fp)
}

//go:noinline
func perturbSlow(fp Failpoint) {
	d := state.cfg.DelayEvery
	if d < 0 {
		state.hits[fp].Add(1)
		return
	}
	h := decide(fp)
	if h%uint64(d) != 0 {
		return
	}
	state.delays[fp].Add(1)
	if h>>32&1 == 0 {
		// Yield burst: hand the processor to whoever is racing us.
		n := int(h>>33)%state.cfg.MaxYield + 1
		for i := 0; i < n; i++ {
			runtime.Gosched()
		}
		return
	}
	// Busy spin: stall inside the race window without descheduling.
	n := int(h>>33)%state.cfg.MaxSpin + 1
	var acc uint64
	for i := 0; i < n; i++ {
		acc += uint64(i)
	}
	spinSink.Store(acc)
}

// ShouldFail reports whether the failpoint should act as if its CAS or
// try-lock failed, at the configured rate. The caller must route a forced
// failure through its genuine failure path (retry, resample, backoff) —
// never through a path that would drop work. Disabled: one branch.
func ShouldFail(fp Failpoint) bool {
	if !Enabled {
		return false
	}
	return shouldFailSlow(fp)
}

//go:noinline
func shouldFailSlow(fp Failpoint) bool {
	f := state.cfg.FailEvery
	if f < 0 {
		state.hits[fp].Add(1)
		return false
	}
	if decide(fp)%uint64(f) != 0 {
		return false
	}
	state.fails[fp].Add(1)
	return true
}
