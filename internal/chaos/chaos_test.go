package chaos

import (
	"testing"
)

func TestDisabledPathsAreNoOps(t *testing.T) {
	Disable()
	for fp := Failpoint(0); fp < NumFailpoints; fp++ {
		if ShouldFail(fp) {
			t.Fatalf("ShouldFail(%v) true while disabled", fp)
		}
		Perturb(fp) // must not panic or spin
	}
	if Snapshot().TotalHits() != 0 {
		t.Fatal("disabled failpoints recorded hits")
	}
}

func TestDisabledPathsAllocFree(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(1000, func() {
		Perturb(SLSMPublish)
		_ = ShouldFail(MQLock)
	}); n != 0 {
		t.Fatalf("disabled failpoints allocate %v per op", n)
	}
}

func TestEnableResetsAndCounts(t *testing.T) {
	Enable(Config{Seed: 42, DelayEvery: 1, FailEvery: 1, MaxYield: 1, MaxSpin: 1})
	defer Disable()
	for i := 0; i < 100; i++ {
		Perturb(SprayWalk)
		ShouldFail(SprayWalk)
	}
	st := Snapshot()
	if st.Hits[SprayWalk] != 200 {
		t.Fatalf("hits = %d, want 200", st.Hits[SprayWalk])
	}
	if st.Delays[SprayWalk] != 100 || st.Fails[SprayWalk] != 100 {
		t.Fatalf("rate-1 injection skipped: delays=%d fails=%d",
			st.Delays[SprayWalk], st.Fails[SprayWalk])
	}
	// Re-enabling resets the counters.
	Enable(Config{Seed: 42})
	if Snapshot().TotalHits() != 0 {
		t.Fatal("Enable did not reset counters")
	}
}

func TestDecisionsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		Enable(Config{Seed: seed, MaxSpin: 1, MaxYield: 1})
		defer Disable()
		out := make([]bool, 400)
		for i := range out {
			out[i] = ShouldFail(Failpoint(i % int(NumFailpoints)))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decision streams")
	}
}

func TestNegativeRatesDisableInjection(t *testing.T) {
	Enable(Config{Seed: 1, DelayEvery: -1, FailEvery: -1})
	defer Disable()
	for i := 0; i < 500; i++ {
		Perturb(MQFlush)
		if ShouldFail(MQFlush) {
			t.Fatal("FailEvery=-1 still forced a failure")
		}
	}
	st := Snapshot()
	if st.Delays[MQFlush] != 0 || st.Fails[MQFlush] != 0 {
		t.Fatalf("negative rates injected: %+v", st)
	}
	if st.Hits[MQFlush] != 1000 {
		t.Fatalf("hits not counted: %d", st.Hits[MQFlush])
	}
}

func TestFailpointNames(t *testing.T) {
	seen := map[string]bool{}
	for fp := Failpoint(0); fp < NumFailpoints; fp++ {
		n := fp.String()
		if n == "" || seen[n] {
			t.Fatalf("failpoint %d has empty or duplicate name %q", fp, n)
		}
		seen[n] = true
	}
}
