package chaos_test

import (
	"strings"
	"testing"

	"cpq/internal/chaos"
	"cpq/internal/core"
	"cpq/internal/multiq"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/seqheap"
)

func small(name string, f func(int) pq.Queue) chaos.CheckConfig {
	return chaos.CheckConfig{
		Name:         name,
		NewQueue:     f,
		Threads:      4,
		OpsPerThread: 2000,
		Seed:         99,
	}
}

func TestCheckPassesStrictQueue(t *testing.T) {
	res := chaos.Check(small("globallock", func(int) pq.Queue { return seqheap.NewGlobalLock() }))
	if res.Failed() {
		t.Fatalf("strict queue failed chaos check (seed %d):\n%s", res.Seed, res)
	}
	if res.Drained == 0 || res.Deletions == 0 {
		t.Fatalf("degenerate run: %s", res)
	}
}

func TestCheckPassesKLSMWithCoverage(t *testing.T) {
	res := chaos.Check(small("klsm128", func(int) pq.Queue { return core.NewKLSM(128) }))
	if res.Failed() {
		t.Fatalf("klsm failed chaos check (seed %d):\n%s", res.Seed, res)
	}
	// The k-LSM exercises the SLSM publish/republish and run-buffer
	// failpoints; an all-zero coverage report means the threading broke.
	if res.Injected.TotalHits() == 0 {
		t.Fatal("no failpoint recorded any hits during a klsm run")
	}
	if res.Injected.Hits[chaos.SLSMPublish] == 0 {
		t.Fatalf("slsm-publish failpoint never hit: %+v", res.Injected.Hits)
	}
}

func TestCheckPassesEngineeredMultiQueue(t *testing.T) {
	res := chaos.Check(small("multiq-s4-b8", func(threads int) pq.Queue {
		return multiq.NewEngineered(2, threads+2, 4, 8)
	}))
	if res.Failed() {
		t.Fatalf("engineered multiqueue failed chaos check (seed %d):\n%s", res.Seed, res)
	}
	if res.Injected.Hits[chaos.MQLock] == 0 {
		t.Fatalf("mq-lock failpoint never hit: %+v", res.Injected.Hits)
	}
}

// lossyHandle drops every 97th insert on the floor — the checker must
// report the items as lost.
type lossyHandle struct {
	pq.Handle
	n int
}

func (h *lossyHandle) Insert(key, value uint64) {
	h.n++
	if h.n%97 == 0 {
		return
	}
	h.Handle.Insert(key, value)
}

type wrapQueue struct {
	pq.Queue
	wrap func(pq.Handle) pq.Handle
}

func (q *wrapQueue) Handle() pq.Handle { return q.wrap(q.Queue.Handle()) }

func TestCheckDetectsLostItems(t *testing.T) {
	cfg := small("globallock", func(int) pq.Queue {
		return &wrapQueue{
			Queue: seqheap.NewGlobalLock(),
			wrap:  func(h pq.Handle) pq.Handle { return &lossyHandle{Handle: h} },
		}
	})
	res := chaos.Check(cfg)
	if !res.Failed() {
		t.Fatal("lossy queue passed the chaos check")
	}
	if !hasViolation(res, "lost") {
		t.Fatalf("lost items not reported:\n%s", res)
	}
}

// dupHandle replays a previously returned item every 97th delete — a
// double delete the conservation pass must flag.
type dupHandle struct {
	pq.Handle
	n         int
	lastK     uint64
	lastV     uint64
	haveStash bool
}

func (h *dupHandle) DeleteMin() (uint64, uint64, bool) {
	h.n++
	if h.haveStash && h.n%97 == 0 {
		return h.lastK, h.lastV, true
	}
	k, v, ok := h.Handle.DeleteMin()
	if ok {
		h.lastK, h.lastV, h.haveStash = k, v, true
	}
	return k, v, ok
}

func TestCheckDetectsDoubleDelete(t *testing.T) {
	cfg := small("globallock", func(int) pq.Queue {
		return &wrapQueue{
			Queue: seqheap.NewGlobalLock(),
			wrap:  func(h pq.Handle) pq.Handle { return &dupHandle{Handle: h} },
		}
	})
	res := chaos.Check(cfg)
	if !res.Failed() {
		t.Fatal("duplicating queue passed the chaos check")
	}
	if !hasViolation(res, "deleted twice") {
		t.Fatalf("double delete not reported:\n%s", res)
	}
}

// flushLossHandle buffers inserts locally and throws the buffer away on
// Flush — breaking the Flusher recovery contract the checker verifies for
// abandoned handles.
type flushLossHandle struct {
	pq.Handle
	buf []pq.Item
}

func (h *flushLossHandle) Insert(key, value uint64) {
	if len(h.buf) < 8 {
		h.buf = append(h.buf, pq.Item{Key: key, Value: value})
		return
	}
	h.Handle.Insert(key, value)
}

func (h *flushLossHandle) Flush() { h.buf = h.buf[:0] }

func TestCheckDetectsFlushLoss(t *testing.T) {
	cfg := small("globallock", func(int) pq.Queue {
		return &wrapQueue{
			Queue: seqheap.NewGlobalLock(),
			wrap:  func(h pq.Handle) pq.Handle { return &flushLossHandle{Handle: h} },
		}
	})
	res := chaos.Check(cfg)
	if !res.Failed() {
		t.Fatal("flush-discarding queue passed the chaos check")
	}
	if !hasViolation(res, "lost") {
		t.Fatalf("flush loss not reported as lost items:\n%s", res)
	}
}

// liarHandle reports empty spuriously every 53rd delete — the emptiness
// oracle violation the drain retry loop is built to convict.
type liarHandle struct {
	pq.Handle
	n int
}

func (h *liarHandle) DeleteMin() (uint64, uint64, bool) {
	h.n++
	if h.n%53 == 0 {
		return 0, 0, false
	}
	return h.Handle.DeleteMin()
}

func TestCheckDetectsEmptinessLie(t *testing.T) {
	cfg := small("globallock", func(int) pq.Queue {
		return &wrapQueue{
			Queue: seqheap.NewGlobalLock(),
			wrap:  func(h pq.Handle) pq.Handle { return &liarHandle{Handle: h} },
		}
	})
	res := chaos.Check(cfg)
	if !res.Failed() {
		t.Fatal("empty-lying queue passed the chaos check")
	}
	if !hasViolation(res, "emptiness") {
		t.Fatalf("emptiness lie not reported:\n%s", res)
	}
}

func TestCheckSingleThreadDeterministic(t *testing.T) {
	cfg := chaos.CheckConfig{
		Name:         "globallock",
		NewQueue:     func(int) pq.Queue { return seqheap.NewGlobalLock() },
		Threads:      1,
		OpsPerThread: 3000,
		Seed:         1234,
	}
	a, b := chaos.Check(cfg), chaos.Check(cfg)
	if a.Failed() || b.Failed() {
		t.Fatalf("strict single-thread run failed:\n%s\n%s", a, b)
	}
	if a.Inserts != b.Inserts || a.Deletions != b.Deletions || a.Drained != b.Drained ||
		a.Injected != b.Injected {
		t.Fatalf("same seed, different runs:\n%s\n%s", a, b)
	}
}

func hasViolation(res chaos.CheckResult, substr string) bool {
	for _, v := range res.Violations {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}

// TestCheckPoolMode runs the checker with every handle routed through a
// pq.Pool: abandonment is dropping the wrapper without Release, recovery is
// the finalizer steal, and the relaxation bound is the dynamic EffectiveP
// one. Covers the acquire-steal failpoint and the post-steal accounting.
func TestCheckPoolMode(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) pq.Queue
	}{
		{"klsm128", func(int) pq.Queue { return core.NewKLSM(128) }},
		{"multiq", func(threads int) pq.Queue { return multiq.New(2, threads+2) }},
	} {
		cfg := small(tc.name, tc.mk)
		cfg.UsePool = true
		res := chaos.Check(cfg)
		if res.Failed() {
			t.Fatalf("%s pool-mode chaos check failed (seed %d):\n%s", tc.name, res.Seed, res)
		}
		if res.PoolSteals < uint64(1) {
			t.Fatalf("%s: no abandoned handle was stolen:\n%s", tc.name, res)
		}
		if res.PoolCreated == 0 || res.PoolPeakLive == 0 {
			t.Fatalf("%s: pool statistics missing:\n%s", tc.name, res)
		}
		if res.Injected.Hits[chaos.AcquireSteal] == 0 {
			t.Fatalf("%s: acquire-steal failpoint never hit: %+v", tc.name, res.Injected.Hits)
		}
		// The reported bound must be the dynamic one — derived from the
		// pool's peak-live/created counts, not the frozen Threads+2.
		wantP := quality.EffectiveP(tc.name, res.PoolPeakLive, res.PoolCreated)
		wantBound, wantKind := quality.ClaimedBound(tc.name, wantP)
		if res.Bound != wantBound || res.Kind != wantKind {
			t.Fatalf("%s: bound %d (%s) not judged against EffectiveP=%d (want %d %s)",
				tc.name, res.Bound, res.Kind, wantP, wantBound, wantKind)
		}
	}
}
