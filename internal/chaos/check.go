package chaos

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cpq/internal/keys"
	"cpq/internal/pq"
	"cpq/internal/quality"
	"cpq/internal/rng"
	"cpq/internal/workload"
)

// CheckConfig describes one chaos stress run: a queue driven by concurrent
// workers under fault injection while every operation is logged, followed
// by a forensic pass that checks suite-wide invariants (see Check).
type CheckConfig struct {
	// NewQueue constructs the queue under test for a given thread count.
	// (A factory rather than a registry name: internal/core and friends
	// import this package for their failpoints, so the checker cannot
	// import the registry without a cycle. The CLI and tests pass
	// cpq.NewQueue closures.)
	NewQueue func(threads int) pq.Queue
	// Name is the queue's registry identifier; it selects the claimed
	// relaxation bound (quality.ClaimedBound) and labels the report.
	Name string
	// Threads is the number of concurrent workers (default 4).
	Threads int
	// OpsPerThread is each worker's operation budget (default 5000).
	OpsPerThread int
	// Prefill items are inserted (and logged) before the workers start
	// (default 2·OpsPerThread, so deletes mostly find items).
	Prefill int
	// OpBatch, when >= 2, makes workers interleave batch and scalar
	// operations: every other call is an InsertN/DeleteMinN of this width
	// (logged quality-style under one shared stamp per batch), the rest are
	// ordinary Insert/DeleteMin. The interleaving stresses exactly the
	// hand-off the batch paths share with the scalar ones — run buffers,
	// insertion buffers, claim flags — under fault injection.
	OpBatch int
	// Abandon is how many workers stop mid-phase — at half their budget,
	// without flushing — leaving items in their insertion/deletion/run
	// buffers (default 1 when Threads > 1). The post-phase Flush must make
	// those items reachable again; losing them is an invariant violation.
	Abandon int
	// UsePool routes every handle through a pq.Pool. Abandonment then means
	// dropping the pooled wrapper without Release — the recovery route is
	// the pool's finalizer steal, not a manual Flush — and the relaxation
	// bound is judged against the dynamic handle count
	// (quality.EffectiveP of the pool's peak-live and created counts)
	// instead of a frozen Threads+2. The acquire-steal failpoint fires on
	// this path.
	UsePool bool
	// Seed drives the fault injection, the key streams and the workload
	// mix. A failing seed reproduces the same injected decision sequence
	// (see the package documentation on determinism). Zero selects the
	// package default.
	Seed uint64
	// Injection tunes the failpoint behaviour; the zero value selects the
	// defaults documented on Config. Its Seed field is overridden by Seed.
	Injection Config
	// Slack widens every bound check by this many ranks to absorb
	// log-stamping pessimism: an operation delayed by injection between
	// taking effect and being stamped is ordered adversely against
	// everything that slipped into the window. Negative selects the
	// default 1024 + 64·Threads.
	Slack int
	// Tolerance is the accepted fraction of deletions beyond bound+slack
	// (default 0.002). The exact invariants — lost items, double deletes,
	// drain emptiness — use no tolerance.
	Tolerance float64
}

func (c CheckConfig) withDefaults() CheckConfig {
	if c.Threads < 1 {
		c.Threads = 4
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 5000
	}
	if c.Prefill < 0 {
		c.Prefill = 0
	} else if c.Prefill == 0 {
		c.Prefill = 2 * c.OpsPerThread
	}
	if c.Abandon == 0 && c.Threads > 1 {
		c.Abandon = 1
	}
	if c.Abandon > c.Threads {
		c.Abandon = c.Threads
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.Slack < 0 {
		c.Slack = 1024 + 64*c.Threads
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.002
	}
	return c
}

// CheckResult is the outcome of one chaos stress run.
type CheckResult struct {
	Name string
	Seed uint64
	// Inserts and Deletions count logged operations (workers + prefill +
	// drain); EmptyDeletes counts delete_mins that reported empty during
	// the concurrent phase.
	Inserts, Deletions, EmptyDeletes uint64
	// Drained is how many items the post-phase drain recovered.
	Drained uint64
	// Bound, Kind and Slack echo the verified relaxation claim;
	// Quality is the replayed rank-error distribution.
	Bound   int
	Kind    quality.BoundKind
	Slack   int
	Quality quality.Result
	// Injected reports the failpoint activity of the run (coverage).
	Injected Stats
	// PoolPeakLive, PoolCreated and PoolSteals are the handle pool's
	// statistics for a UsePool run (zero otherwise); Bound is then derived
	// from quality.EffectiveP(Name, PoolPeakLive, PoolCreated).
	PoolPeakLive, PoolCreated int
	PoolSteals                uint64
	// Violations lists every invariant violation found; empty means PASS.
	Violations []string
}

// Failed reports whether any invariant was violated.
func (r CheckResult) Failed() bool { return len(r.Violations) > 0 }

// Check runs one chaos stress cycle and verifies the suite-wide
// invariants. The cycle has four phases:
//
//  1. Enable injection (seeded), construct the queue, prefill through a
//     logged handle.
//  2. Concurrent phase: Threads workers run a uniform insert/delete mix,
//     logging every operation quality-style (global atomic stamps, unique
//     item identities in the value word). The first Abandon workers stop
//     at half budget without flushing — mid-operation handle abandonment —
//     while the rest flush when done, as the harnesses do.
//  3. Recovery: Flush every abandoned handle (the pq.Flusher contract),
//     then drain the queue to empty single-threaded through a fresh
//     handle, still under injection. If the drain reports empty while
//     logged items remain unaccounted, flush-and-retry; items that only
//     appear after a retry convict the emptiness oracle.
//  4. Forensics on the merged log: every inserted item deleted at most
//     once (nothing deleted twice, nothing conjured), every item deleted
//     exactly once overall (nothing lost, buffered items made reachable
//     again by Flush), and the replayed rank distribution within the
//     claimed relaxation bound plus stamping slack (kP for the k-LSM, k
//     for the SLSM, strictness for the exact queues).
//
// Check owns the package-global injection state: it calls Enable before
// constructing the queue and Disable before returning, so callers must not
// run two Checks (or any other instrumented work) concurrently.
func Check(cfg CheckConfig) CheckResult {
	cfg = cfg.withDefaults()
	res := CheckResult{Name: cfg.Name, Seed: cfg.Seed}
	res.Bound, res.Kind = quality.ClaimedBound(cfg.Name, cfg.Threads+2)
	res.Slack = cfg.Slack

	inj := cfg.Injection
	inj.Seed = cfg.Seed
	Enable(inj)
	defer Disable()

	// Pool mode constructs the queue minimally sized — the pool's Grower
	// calls size layout-elastic structures to the created-handle count, so
	// the dynamic bound judges the size the structure really reached.
	constructP := cfg.Threads
	if cfg.UsePool {
		constructP = 1
	}
	q := cfg.NewQueue(constructP)
	defer pq.Close(q)
	var seq, nextID atomic.Uint64

	// Handle lifecycle: plain mode hands out q.Handle() per role and
	// recovers abandoned buffers with manual Flush; pool mode routes every
	// role through Acquire/Release and recovers abandonment through the
	// finalizer steal.
	var pool *pq.Pool
	acquire := func() pq.Handle { return q.Handle() }
	release := func(h pq.Handle) { pq.Flush(h) }
	if cfg.UsePool {
		pool = pq.NewPool(q, pq.PoolOptions{MaxHandles: cfg.Threads + 2})
		acquire = func() pq.Handle { return pool.Acquire() }
		release = func(h pq.Handle) { pool.Release(h.(*pq.PooledHandle)) }
	}

	// Phase 1: logged prefill. The prefill handle counts toward the
	// effective P of the kP window (hence Threads+2 above: prefill handle,
	// workers, drain handle — the drain handle replaces a worker slot but
	// the bound only loosens, never tightens, by over-counting).
	events := make([]quality.Event, 0, cfg.Prefill+cfg.Threads*cfg.OpsPerThread)
	{
		h := acquire()
		r := rng.New(cfg.Seed ^ 0xd1b54a32d192ed03)
		gen := keys.NewGenerator(keys.Uniform32, r)
		for i := 0; i < cfg.Prefill; i++ {
			k := gen.Next()
			id := nextID.Add(1)
			events = append(events, quality.Event{Seq: seq.Add(1), ID: id, Key: k})
			h.Insert(k, id)
		}
		release(h)
	}

	// Phase 2: concurrent measured phase.
	var (
		logs      = make([][]quality.Event, cfg.Threads)
		handles   = make([]pq.Handle, cfg.Threads)
		emptyDels atomic.Uint64
		start     = make(chan struct{})
		wg        sync.WaitGroup
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := acquire()
			if pool == nil {
				// Plain mode keeps every handle reachable for the manual
				// Flush recovery. Pool mode must NOT: an abandoned wrapper
				// is recovered precisely because nothing references it once
				// its goroutine exits.
				handles[w] = h
			}
			r := rng.New(cfg.Seed + uint64(w)*0x6a09e667f3bcc909)
			gen := keys.NewGenerator(keys.Uniform32, r)
			policy := workload.ForWorkerBatched(workload.Uniform, w, cfg.Threads, 0, 0, r)
			abandoned := w < cfg.Abandon
			budget := cfg.OpsPerThread
			if abandoned {
				budget /= 2 // stop mid-phase, buffers still loaded
			}
			local := make([]quality.Event, 0, budget)
			<-start
			if cfg.OpBatch > 1 {
				b := cfg.OpBatch
				kvs := make([]pq.KV, b)
				for i, call := 0, 0; i < budget; call++ {
					batch := call%2 == 0 // interleave batch and scalar calls
					isInsert := policy.Next() == workload.Insert
					switch {
					case isInsert && batch:
						// One stamp BEFORE the call for the whole batch.
						s := seq.Add(1)
						for j := range kvs {
							k := gen.Next()
							id := nextID.Add(1)
							kvs[j] = pq.KV{Key: k, Value: id}
							local = append(local, quality.Event{Seq: s, ID: id, Key: k})
						}
						pq.InsertN(h, kvs)
						i += b
					case isInsert:
						k := gen.Next()
						id := nextID.Add(1)
						local = append(local, quality.Event{Seq: seq.Add(1), ID: id, Key: k})
						h.Insert(k, id)
						i++
					case batch:
						got := pq.DeleteMinN(h, kvs, b)
						// One stamp AFTER the call for everything it removed.
						s := seq.Add(1)
						for j := 0; j < got; j++ {
							gen.Observe(kvs[j].Key)
							local = append(local, quality.Event{Seq: s, ID: kvs[j].Value, Key: kvs[j].Key, Del: true})
						}
						if got == 0 {
							emptyDels.Add(1)
						}
						i += b
					default:
						k, id, ok := h.DeleteMin()
						if ok {
							gen.Observe(k)
							local = append(local, quality.Event{Seq: seq.Add(1), ID: id, Key: k, Del: true})
						} else {
							emptyDels.Add(1)
						}
						i++
					}
				}
			} else {
				for i := 0; i < budget; i++ {
					if policy.Next() == workload.Insert {
						k := gen.Next()
						id := nextID.Add(1)
						// Stamp BEFORE the insert takes effect.
						local = append(local, quality.Event{Seq: seq.Add(1), ID: id, Key: k})
						h.Insert(k, id)
					} else {
						k, id, ok := h.DeleteMin()
						if ok {
							gen.Observe(k)
							// Stamp AFTER the delete returned.
							local = append(local, quality.Event{Seq: seq.Add(1), ID: id, Key: k, Del: true})
						} else {
							emptyDels.Add(1)
						}
					}
				}
			}
			if !abandoned {
				release(h)
			} // abandoned + pool: drop the wrapper without Release
			logs[w] = local
		}(w)
	}
	close(start)
	wg.Wait()
	res.EmptyDeletes = emptyDels.Load()

	// Phase 3: recovery and drain. Plain mode exercises the Flusher
	// contract on the abandoned handles: everything they still buffer must
	// become reachable. (Safe from this goroutine: the workers have
	// joined.) Pool mode exercises the steal path instead: the abandoned
	// wrappers became unreachable when their workers joined, so provoking
	// the collector must reclaim them — finalizer flush, live count back
	// down — before the drain can balance the books.
	if pool != nil {
		want := uint64(cfg.Abandon)
		for i := 0; i < 4000 && pool.Steals() < want; i++ {
			runtime.GC()
			runtime.Gosched()
		}
		if got := pool.Steals(); got < want {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"pool: only %d of %d abandoned handles reclaimed after repeated GC", got, want))
		}
		if live := pool.Live(); live != 0 {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"pool: %d handles still live after every worker released or was stolen", live))
		}
	} else {
		for w := 0; w < cfg.Abandon; w++ {
			pq.Flush(handles[w])
		}
	}
	drainH := acquire()
	totalInserted := nextID.Load()
	var logged uint64 // deletions logged so far, recomputed below
	for _, l := range logs {
		for _, e := range l {
			if e.Del {
				logged++
			}
		}
	}
	for retries := 0; ; {
		k, id, ok := drainH.DeleteMin()
		if ok {
			events = append(events, quality.Event{Seq: seq.Add(1), ID: id, Key: k, Del: true})
			res.Drained++
			continue
		}
		if logged+res.Drained >= totalInserted || retries >= 2 {
			break
		}
		// The queue claims empty but items are unaccounted for. Flush
		// everything once more and retry: items recovered only now convict
		// the emptiness oracle (phase 4 reports them); items never
		// recovered are lost.
		retries++
		for _, h := range handles {
			if h != nil { // pool mode stores none; stolen wrappers already flushed
				pq.Flush(h)
			}
		}
		pq.Flush(drainH)
		if k, id, ok := drainH.DeleteMin(); ok {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"emptiness oracle: DeleteMin reported empty while items were still reachable (retry %d recovered id %d key %d)",
				retries, id, k))
			events = append(events, quality.Event{Seq: seq.Add(1), ID: id, Key: k, Del: true})
			res.Drained++
		}
	}
	if k, v, ok := pq.PeekMin(drainH); ok {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"emptiness oracle: PeekMin reports key %d (value %d) after DeleteMin reported empty", k, v))
	} else if k, v, ok := pq.PeekMin(q); ok {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"emptiness oracle: queue PeekMin reports key %d (value %d) after DeleteMin reported empty", k, v))
	}
	if pool != nil {
		release(drainH)
		res.PoolPeakLive = pool.PeakLive()
		res.PoolCreated = pool.Created()
		res.PoolSteals = pool.Steals()
		// Dynamic relaxation accounting: the run's actual handle lifecycle,
		// not a frozen Threads+2, sets the kP window (shrinking it when the
		// peak-live count stayed low; see quality.EffectiveP for the k-LSM
		// created-count exception).
		res.Bound, res.Kind = quality.ClaimedBound(cfg.Name,
			quality.EffectiveP(cfg.Name, res.PoolPeakLive, res.PoolCreated))
	}

	// Phase 4: forensics on the merged log.
	for _, l := range logs {
		events = append(events, l...)
	}
	// Stable: batch calls log several events under one shared stamp, whose
	// relative (append) order the replay must preserve.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	res.accountItems(events, totalInserted)

	res.Quality = quality.Replay(events)
	if res.Kind != quality.BoundNone {
		limit := res.Bound + cfg.Slack
		if v := quality.ViolationsAbove(res.Quality, limit); v > 0 {
			frac := float64(v) / float64(res.Quality.Deletions)
			if frac > cfg.Tolerance {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"relaxation bound: %d of %d deletions (%.3f%%) exceeded rank %d (claimed %s bound %d + slack %d; max observed %d)",
					v, res.Quality.Deletions, 100*frac, limit, res.Kind, res.Bound, cfg.Slack, res.Quality.MaxRank))
			}
		}
	}

	res.Injected = Snapshot()
	return res
}

// accountItems checks the exact item-conservation invariants on the merged
// log: every delete corresponds to a logged insert with a matching key, no
// item is deleted twice, and no item is lost (undeleted after flush+drain).
func (r *CheckResult) accountItems(events []quality.Event, totalInserted uint64) {
	keyByID := make([]uint64, totalInserted+1)
	seen := make([]bool, totalInserted+1)
	delCount := make([]uint8, totalInserted+1)
	var dup, phantom, mismatch uint64
	var firstDetail string
	for _, e := range events {
		if !e.Del {
			r.Inserts++
			keyByID[e.ID] = e.Key
			seen[e.ID] = true
			continue
		}
		r.Deletions++
		switch {
		case e.ID == 0 || e.ID > totalInserted || !seen[e.ID]:
			phantom++
			if firstDetail == "" {
				firstDetail = fmt.Sprintf("first: id %d key %d never inserted", e.ID, e.Key)
			}
		case keyByID[e.ID] != e.Key:
			mismatch++
			if firstDetail == "" {
				firstDetail = fmt.Sprintf("first: id %d returned key %d, inserted as %d", e.ID, e.Key, keyByID[e.ID])
			}
		case delCount[e.ID] > 0:
			dup++
			if firstDetail == "" {
				firstDetail = fmt.Sprintf("first: id %d key %d", e.ID, e.Key)
			}
		}
		if delCount[e.ID] < 255 {
			delCount[e.ID]++
		}
	}
	var lost uint64
	var firstLost string
	for id := uint64(1); id <= totalInserted; id++ {
		if seen[id] && delCount[id] == 0 {
			lost++
			if firstLost == "" {
				firstLost = fmt.Sprintf("first: id %d key %d", id, keyByID[id])
			}
		}
	}
	if phantom > 0 {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"conservation: %d deletions returned items that were never inserted (%s)", phantom, firstDetail))
	}
	if mismatch > 0 {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"conservation: %d deletions returned a corrupted key (%s)", mismatch, firstDetail))
	}
	if dup > 0 {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"conservation: %d items deleted twice (%s)", dup, firstDetail))
	}
	if lost > 0 {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"conservation: %d of %d items lost — inserted, never deleted, unreachable after flush+drain (%s)",
			lost, totalInserted, firstLost))
	}
}

// String renders a one-line verdict row plus indented violation lines.
func (r CheckResult) String() string {
	verdict := "PASS"
	if r.Failed() {
		verdict = "FAIL"
	}
	boundStr := "(none)"
	if r.Kind != quality.BoundNone {
		boundStr = fmt.Sprintf("%d+%d", r.Bound, r.Slack)
	}
	s := fmt.Sprintf("%-14s ins=%-8d del=%-8d drained=%-7d maxrank=%-8d bound=%-12s inj=%-6d %s",
		r.Name, r.Inserts, r.Deletions, r.Drained, r.Quality.MaxRank, boundStr,
		r.Injected.TotalHits(), verdict)
	if r.PoolCreated > 0 {
		s += fmt.Sprintf("  [pool peak=%d created=%d steals=%d]",
			r.PoolPeakLive, r.PoolCreated, r.PoolSteals)
	}
	for _, v := range r.Violations {
		s += "\n    " + v
	}
	return s
}
