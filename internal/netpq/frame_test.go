package netpq

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"cpq/internal/pq"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Op: OpHello, Req: 1, Count: Version, Payload: []byte("klsm4096")},
		{Op: OpInsert, Req: 0xdeadbeef, Count: 2, Payload: AppendKVs(nil, []pq.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}})},
		{Op: OpDeleteMin, Req: 7, Count: 8},
		{Op: OpPing, Req: 0},
		{Op: OpError, Req: 42, Count: ErrCodeBadBatch, Payload: []byte("nope")},
		{Op: OpInsert, Req: 1, Count: MaxBatch, Payload: make([]byte, MaxPayload)},
	}
	for _, want := range cases {
		wire := AppendFrame(nil, want)
		got, n, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("DecodeFrame(%#02x): %v", want.Op, err)
		}
		if n != len(wire) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(wire))
		}
		if got.Op != want.Op || got.Req != want.Req || got.Count != want.Count || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}

		// The streaming reader must agree with the buffer decoder.
		var f Frame
		if err := ReadFrame(bytes.NewReader(wire), &f); err != nil {
			t.Fatalf("ReadFrame(%#02x): %v", want.Op, err)
		}
		if f.Op != want.Op || f.Req != want.Req || f.Count != want.Count || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("ReadFrame mismatch: got %+v want %+v", f, want)
		}
	}
}

func TestDecodeFrameConcatenated(t *testing.T) {
	a := Frame{Op: OpInsert, Req: 1, Count: 1, Payload: AppendKVs(nil, []pq.KV{{Key: 9, Value: 9}})}
	b := Frame{Op: OpDeleteMin, Req: 2, Count: 4}
	wire := AppendFrame(AppendFrame(nil, a), b)
	got1, n1, err := DecodeFrame(wire)
	if err != nil || got1.Op != OpInsert {
		t.Fatalf("first frame: %+v, %v", got1, err)
	}
	got2, n2, err := DecodeFrame(wire[n1:])
	if err != nil || got2.Op != OpDeleteMin || got2.Count != 4 {
		t.Fatalf("second frame: %+v, %v", got2, err)
	}
	if n1+n2 != len(wire) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(wire))
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, Frame{Op: OpPing, Req: 1, Payload: []byte("x")})

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, _, err := DecodeFrame(valid[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("length below header", func(t *testing.T) {
		wire := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(wire, HeaderLen-1)
		if _, _, err := DecodeFrame(wire); !errors.Is(err, ErrFrameTooSmall) {
			t.Fatalf("err = %v, want ErrFrameTooSmall", err)
		}
		if err := ReadFrame(bytes.NewReader(wire), new(Frame)); !errors.Is(err, ErrFrameTooSmall) {
			t.Fatalf("ReadFrame err = %v, want ErrFrameTooSmall", err)
		}
	})
	t.Run("length above max", func(t *testing.T) {
		wire := append([]byte(nil), valid...)
		binary.BigEndian.PutUint32(wire, MaxFrameLen+1)
		if _, _, err := DecodeFrame(wire); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
		if err := ReadFrame(bytes.NewReader(wire), new(Frame)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("ReadFrame err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		wire := append([]byte(nil), valid...)
		wire[4] = Version + 1
		if _, _, err := DecodeFrame(wire); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("stream ends mid frame", func(t *testing.T) {
		err := ReadFrame(bytes.NewReader(valid[:len(valid)-1]), new(Frame))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("clean eof between frames", func(t *testing.T) {
		if err := ReadFrame(bytes.NewReader(nil), new(Frame)); err != io.EOF {
			t.Fatalf("err = %v, want io.EOF", err)
		}
	})
}

func TestKVCodec(t *testing.T) {
	kvs := []pq.KV{{Key: 0, Value: ^uint64(0)}, {Key: 1 << 40, Value: 7}, {Key: 5, Value: 5}}
	payload := AppendKVs(nil, kvs)
	if len(payload) != len(kvs)*KVLen {
		t.Fatalf("payload %d bytes, want %d", len(payload), len(kvs)*KVLen)
	}
	got, err := DecodeKVs(payload, len(kvs), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range kvs {
		if got[i] != kvs[i] {
			t.Fatalf("kv %d: got %+v want %+v", i, got[i], kvs[i])
		}
	}
	if _, err := DecodeKVs(payload, len(kvs)+1, nil); err == nil {
		t.Fatal("count/payload mismatch not rejected")
	}
	if _, err := DecodeKVs(payload[:len(payload)-1], len(kvs), nil); err == nil {
		t.Fatal("truncated payload not rejected")
	}
}

// TestReadFrameReusesPayload pins the zero-copy contract: decoding a
// smaller frame into the same Frame must not reallocate the payload.
func TestReadFrameReusesPayload(t *testing.T) {
	big := AppendFrame(nil, Frame{Op: OpInsert, Req: 1, Count: 4, Payload: make([]byte, 4*KVLen)})
	small := AppendFrame(nil, Frame{Op: OpInsert, Req: 2, Count: 1, Payload: make([]byte, KVLen)})
	var f Frame
	if err := ReadFrame(bytes.NewReader(big), &f); err != nil {
		t.Fatal(err)
	}
	bigCap := cap(f.Payload)
	if err := ReadFrame(bytes.NewReader(small), &f); err != nil {
		t.Fatal(err)
	}
	if cap(f.Payload) != bigCap {
		t.Fatalf("payload reallocated: cap %d -> %d", bigCap, cap(f.Payload))
	}
}

func TestErrCodeNames(t *testing.T) {
	for code := uint16(1); code <= 8; code++ {
		if name := ErrCodeName(code); name == "" || strings.HasPrefix(name, "code-") {
			t.Fatalf("code %d has no name", code)
		}
	}
	if name := ErrCodeName(200); name != "code-200" {
		t.Fatalf("unknown code name = %q", name)
	}
}
