// Package netpq serves the registry queues over a socket: a binary
// length-prefixed frame protocol (PROTOCOL.md is the normative spec), a
// server that bridges connections onto pq.Pool-acquired handles, and a
// client library used by cmd/pqload and the order-book example.
//
// The design goal is that the batch-first API of DESIGN.md §4c survives the
// network boundary: one frame carries one batch, so an InsertN of width 8
// costs one length-prefixed write, one read, and one native batch call on
// the serving side — never eight request/response cycles. Pipelining (any
// number of request frames in flight per connection) amortizes the
// round-trip the same way batching amortizes synchronization.
//
// Framing (all integers big-endian):
//
//	+-----------+---------+--------+----------+-----------+----------+
//	| length u32| ver u8  | op u8  | reqid u32| count u16 | payload  |
//	+-----------+---------+--------+----------+-----------+----------+
//
// length counts everything after itself (HeaderLen + len(payload)).
// DecodeFrame and ReadFrame validate length, version and payload shape and
// return typed errors — a malformed frame is an error, never a panic
// (FuzzDecodeFrame pins this).
package netpq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cpq/internal/pq"
)

// Protocol constants. Version 1 fixes the limits below; a server refuses
// frames carrying any other version byte with ErrCodeVersion.
const (
	// Version is the protocol version this package speaks. It is the one
	// knob reserved for incompatible evolution: a frame's second-layer
	// byte names the version its header and payload follow.
	Version = 1

	// LenPrefixLen is the size of the length prefix itself.
	LenPrefixLen = 4
	// HeaderLen is the fixed header after the length prefix:
	// version(1) + opcode(1) + reqid(4) + count(2).
	HeaderLen = 8

	// KVLen is the wire size of one key-value pair: two uint64s.
	KVLen = 16
	// MaxBatch caps the batch count of Insert and DeleteMin frames. One
	// frame is one batch; 1024 pairs keeps the largest frame at 16 KiB of
	// payload while comfortably exceeding every realized batch width the
	// substrates exploit (DESIGN.md §4c measures widths 8..64).
	MaxBatch = 1024
	// MaxPayload is the largest legal payload (an Insert or Items frame of
	// MaxBatch pairs).
	MaxPayload = MaxBatch * KVLen
	// MaxFrameLen is the largest legal value of the length prefix.
	MaxFrameLen = HeaderLen + MaxPayload
	// MaxPing caps a Ping echo payload.
	MaxPing = 64
	// MaxQueueID caps the Hello queue-identifier payload.
	MaxQueueID = 128
)

// Request opcodes. A response carries the request's opcode with RespBit
// set; OpError is the error response to any request.
const (
	// OpHello opens a session: payload is the queue identifier
	// ("spec" or "spec#instance", empty = server default), count is the
	// highest protocol version the client speaks.
	OpHello byte = 0x01
	// OpInsert carries a batch of count key-value pairs to insert.
	OpInsert byte = 0x02
	// OpDeleteMin requests up to count smallest items; payload is empty.
	OpDeleteMin byte = 0x03
	// OpPing requests an echo of its (≤ MaxPing bytes) payload.
	OpPing byte = 0x04
	// OpStats requests the server's connection/frame counters.
	OpStats byte = 0x05

	// RespBit marks a response frame: response opcode = request | RespBit.
	RespBit byte = 0x80
	// OpError is the error response; count is an ErrCode* value and the
	// payload a human-readable UTF-8 message.
	OpError byte = 0xFF
)

// Error codes carried in an OpError frame's count field. PROTOCOL.md
// specifies which codes terminate the connection.
const (
	// ErrCodeVersion: unsupported version byte (fatal).
	ErrCodeVersion uint16 = 1
	// ErrCodeOpcode: unknown request opcode (non-fatal; the frame was
	// delimited, so the stream stays decodable).
	ErrCodeOpcode uint16 = 2
	// ErrCodeMalformed: header/payload inconsistency inside a delimited
	// frame, e.g. an Insert whose payload is not count·16 bytes
	// (non-fatal) or a length prefix below HeaderLen (fatal — the stream
	// can no longer be delimited).
	ErrCodeMalformed uint16 = 3
	// ErrCodeTooLarge: length prefix above MaxFrameLen (fatal; the prefix
	// cannot be trusted as a skip distance).
	ErrCodeTooLarge uint16 = 4
	// ErrCodeBadBatch: Insert/DeleteMin count outside [1, MaxBatch]
	// (non-fatal).
	ErrCodeBadBatch uint16 = 5
	// ErrCodeQueue: Hello named a queue the registry cannot construct or
	// the server does not serve (non-fatal; the client may retry Hello).
	ErrCodeQueue uint16 = 6
	// ErrCodeState: an operation before a successful Hello, or a second
	// Hello (fatal).
	ErrCodeState uint16 = 7
	// ErrCodeShutdown: the server is draining connections (fatal).
	ErrCodeShutdown uint16 = 8
)

// Decode errors. ReadFrame and DecodeFrame return these (possibly
// wrapped); the server maps them onto error frames via code in errcode.go.
var (
	// ErrTruncated: the buffer ends before the frame does (DecodeFrame
	// only; a streaming reader treats it as "need more bytes").
	ErrTruncated = errors.New("netpq: truncated frame")
	// ErrFrameTooSmall: length prefix below HeaderLen.
	ErrFrameTooSmall = errors.New("netpq: length prefix below header size")
	// ErrFrameTooLarge: length prefix above MaxFrameLen.
	ErrFrameTooLarge = errors.New("netpq: length prefix above maximum frame size")
	// ErrBadVersion: version byte differs from Version.
	ErrBadVersion = errors.New("netpq: unsupported protocol version")
)

// Frame is one decoded protocol frame. Payload aliases the decode buffer
// (DecodeFrame) or a reusable internal buffer (ReadFrame into the same
// Frame); it is valid until the next decode into the same destination.
type Frame struct {
	Op      byte
	Req     uint32
	Count   uint16
	Payload []byte
}

// AppendFrame appends the complete wire encoding of f (length prefix,
// header, payload) to dst and returns the extended slice. It does not
// validate payload size against opcode semantics — encoders own that —
// but panics if the payload alone exceeds MaxPayload, which is always a
// caller bug rather than remote input.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("netpq: oversized payload %d", len(f.Payload)))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(HeaderLen+len(f.Payload)))
	dst = append(dst, Version, f.Op)
	dst = binary.BigEndian.AppendUint32(dst, f.Req)
	dst = binary.BigEndian.AppendUint16(dst, f.Count)
	return append(dst, f.Payload...)
}

// DecodeFrame parses one frame from the front of buf. On success it
// returns the frame (Payload aliasing buf) and the total bytes consumed.
// Errors are ErrTruncated (buf ends mid-frame), ErrFrameTooSmall,
// ErrFrameTooLarge, or ErrBadVersion; no input can make it panic.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < LenPrefixLen {
		return Frame{}, 0, ErrTruncated
	}
	length := binary.BigEndian.Uint32(buf)
	switch {
	case length < HeaderLen:
		return Frame{}, 0, ErrFrameTooSmall
	case length > MaxFrameLen:
		return Frame{}, 0, ErrFrameTooLarge
	}
	total := LenPrefixLen + int(length)
	if len(buf) < total {
		return Frame{}, 0, ErrTruncated
	}
	if buf[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, buf[4], Version)
	}
	f := Frame{
		Op:    buf[5],
		Req:   binary.BigEndian.Uint32(buf[6:]),
		Count: binary.BigEndian.Uint16(buf[10:]),
	}
	if payload := buf[LenPrefixLen+HeaderLen : total]; len(payload) > 0 {
		f.Payload = payload
	}
	return f, total, nil
}

// ReadFrame reads one frame from r into f, reusing f.Payload's backing
// array across calls. The error is io.EOF exactly when the stream ends
// cleanly between frames; a stream ending inside a frame is
// io.ErrUnexpectedEOF. Length-prefix and version violations return the
// same typed errors as DecodeFrame, with the offending frame unread
// beyond its header — the connection must be torn down, as the stream can
// no longer be delimited reliably.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [LenPrefixLen + HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:LenPrefixLen]); err != nil {
		return err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	switch {
	case length < HeaderLen:
		return ErrFrameTooSmall
	case length > MaxFrameLen:
		return ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[LenPrefixLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if hdr[4] != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[4], Version)
	}
	f.Op = hdr[5]
	f.Req = binary.BigEndian.Uint32(hdr[6:])
	f.Count = binary.BigEndian.Uint16(hdr[10:])
	payloadLen := int(length) - HeaderLen
	if cap(f.Payload) < payloadLen {
		f.Payload = make([]byte, payloadLen)
	}
	f.Payload = f.Payload[:payloadLen]
	if payloadLen > 0 {
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// AppendKVs appends the wire encoding of kvs (16 bytes per pair, key then
// value, big-endian) to dst.
func AppendKVs(dst []byte, kvs []pq.KV) []byte {
	for _, kv := range kvs {
		dst = binary.BigEndian.AppendUint64(dst, kv.Key)
		dst = binary.BigEndian.AppendUint64(dst, kv.Value)
	}
	return dst
}

// DecodeKVs decodes a KV payload into dst (grown as needed) and returns
// the filled prefix. The payload must be exactly count·KVLen bytes.
func DecodeKVs(payload []byte, count int, dst []pq.KV) ([]pq.KV, error) {
	if len(payload) != count*KVLen {
		return nil, fmt.Errorf("netpq: kv payload is %d bytes, want %d·%d", len(payload), count, KVLen)
	}
	if cap(dst) < count {
		dst = make([]pq.KV, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i].Key = binary.BigEndian.Uint64(payload[i*KVLen:])
		dst[i].Value = binary.BigEndian.Uint64(payload[i*KVLen+8:])
	}
	return dst, nil
}

// ErrCodeName names an error code for logs and error strings.
func ErrCodeName(code uint16) string {
	switch code {
	case ErrCodeVersion:
		return "version"
	case ErrCodeOpcode:
		return "opcode"
	case ErrCodeMalformed:
		return "malformed"
	case ErrCodeTooLarge:
		return "too-large"
	case ErrCodeBadBatch:
		return "bad-batch"
	case ErrCodeQueue:
		return "queue"
	case ErrCodeState:
		return "state"
	case ErrCodeShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("code-%d", code)
	}
}

// ServerError is a decoded OpError frame, returned by the client when the
// server answered a request with an error instead of a result.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("netpq: server error %s: %s", ErrCodeName(e.Code), e.Msg)
}

// Fatal reports whether the protocol requires the server to close the
// connection after this error (PROTOCOL.md "Error handling").
func (e *ServerError) Fatal() bool {
	switch e.Code {
	case ErrCodeVersion, ErrCodeTooLarge, ErrCodeState, ErrCodeShutdown:
		return true
	case ErrCodeMalformed:
		// Only the undelimitable form (length prefix below header size)
		// is fatal; the server encodes that case by closing right after
		// the frame, which the client observes as EOF.
		return false
	default:
		return false
	}
}
