// End-to-end tests over real loopback TCP: the server, the client, the
// pool-backed handle lifecycle and the backpressure policy, checked with
// the chaos-style logged-drain item-conservation argument — every value
// inserted through any connection is deleted exactly once across the
// worker connections plus the post-phase drain, with its original key.
package netpq_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"cpq"
	"cpq/internal/netpq"
	"cpq/internal/pq"
)

func newLoopbackServer(t *testing.T, opts netpq.Options) (*netpq.Server, string) {
	t.Helper()
	opts.NewQueue = func(spec, _ string, threads int) (pq.Queue, error) {
		if threads < 16 {
			threads = 16 // worker conns + drain conn headroom
		}
		return cpq.NewQueue(spec, cpq.Options{Threads: threads})
	}
	srv, err := netpq.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// e2eKey derives the deterministic key a (worker, seq) pair inserts, so
// the conservation check can also detect key corruption in flight.
func e2eKey(value uint64) uint64 {
	return (value*0x9e3779b97f4a7c15 ^ value>>29) & 0xffffffff
}

// TestEndToEndConservation runs 8 pipelined client connections against a
// loopback server per queue flavor (buffered, relaxed, strict), then
// drains through a fresh connection and balances the item books.
func TestEndToEndConservation(t *testing.T) {
	const (
		workers  = 8
		rounds   = 150
		batch    = 8
		pipeline = 4
	)
	for _, spec := range []string{"multiq-s4-b8", "klsm128", "linden"} {
		t.Run(spec, func(t *testing.T) {
			_, addr := newLoopbackServer(t, netpq.Options{WriteQueue: 8})
			queueID := spec + "#e2e"

			deleted := make([][]pq.KV, workers)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := netpq.Dial(addr, queueID)
					if err != nil {
						errs <- err
						return
					}
					defer c.Close()
					// Alternate insert and delete batches, keeping
					// `pipeline` requests in flight.
					seq := uint64(0)
					kvs := make([]pq.KV, batch)
					nextReq := func(i int) error {
						if i%2 == 0 {
							for j := range kvs {
								v := uint64(w)<<32 | seq
								seq++
								kvs[j] = pq.KV{Key: e2eKey(v), Value: v}
							}
							_, err := c.StartInsertN(kvs)
							return err
						}
						_, err := c.StartDeleteMinN(batch)
						return err
					}
					total := 2 * rounds
					inFlight := 0
					for i := 0; i < total || inFlight > 0; {
						for inFlight < pipeline && i < total {
							if err := nextReq(i); err != nil {
								errs <- err
								return
							}
							i++
							inFlight++
						}
						r, err := c.Recv()
						if err != nil {
							errs <- err
							return
						}
						inFlight--
						if r.Err != nil {
							errs <- r.Err
							return
						}
						if r.Op == netpq.OpDeleteMin|netpq.RespBit {
							deleted[w] = append(deleted[w], r.KVs...)
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Workers disconnected: the server released their handles,
			// flushing any buffered items (the pool's Release contract).
			// A fresh connection must now see everything that remains.
			drainC, err := netpq.Dial(addr, queueID)
			if err != nil {
				t.Fatal(err)
			}
			defer drainC.Close()
			var drained []pq.KV
			dst := make([]pq.KV, netpq.MaxBatch)
			for empties := 0; empties < 3; {
				got, err := drainC.DeleteMinN(dst, netpq.MaxBatch)
				if err != nil {
					t.Fatal(err)
				}
				if got == 0 {
					empties++
					continue
				}
				empties = 0
				drained = append(drained, dst[:got]...)
			}

			// Conservation forensics: each worker inserted values
			// w<<32|0 .. w<<32|rounds·batch-1, each with key e2eKey(v).
			want := workers * rounds * batch
			seen := make(map[uint64]int, want)
			account := func(kv pq.KV, where string) {
				if kv.Key != e2eKey(kv.Value) {
					t.Fatalf("%s: value %#x carries key %#x, want %#x (key corruption)",
						where, kv.Value, kv.Key, e2eKey(kv.Value))
				}
				w, s := kv.Value>>32, kv.Value&0xffffffff
				if w >= workers || s >= uint64(rounds*batch) {
					t.Fatalf("%s: phantom item %+v (never inserted)", where, kv)
				}
				seen[kv.Value]++
			}
			for w := range deleted {
				for _, kv := range deleted[w] {
					account(kv, fmt.Sprintf("worker %d", w))
				}
			}
			for _, kv := range drained {
				account(kv, "drain")
			}
			for v, n := range seen {
				if n > 1 {
					t.Fatalf("value %#x deleted %d times (duplicate)", v, n)
				}
			}
			if len(seen) != want {
				t.Fatalf("conservation: %d of %d items lost after flush+drain", want-len(seen), want)
			}
		})
	}
}

// TestServerErrorFrames drives the protocol's error surface over a raw
// connection: recoverable codes keep the connection alive, fatal codes
// close it, exactly as PROTOCOL.md specifies.
func TestServerErrorFrames(t *testing.T) {
	_, addr := newLoopbackServer(t, netpq.Options{DefaultQueue: "klsm128"})

	dial := func() net.Conn {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		return nc
	}
	readFrame := func(nc net.Conn) (netpq.Frame, error) {
		var f netpq.Frame
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		err := netpq.ReadFrame(nc, &f)
		return f, err
	}
	expectErr := func(nc net.Conn, code uint16) {
		t.Helper()
		f, err := readFrame(nc)
		if err != nil {
			t.Fatalf("expected error frame, got transport error %v", err)
		}
		if f.Op != netpq.OpError || f.Count != code {
			t.Fatalf("got op %#02x code %d (%s), want error code %d (%s)",
				f.Op, f.Count, string(f.Payload), code, netpq.ErrCodeName(code))
		}
	}
	expectClosed := func(nc net.Conn) {
		t.Helper()
		if _, err := readFrame(nc); err == nil {
			t.Fatal("connection still open, want close")
		} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			// A RST surfaces as a read error; any error means closed.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatalf("connection still open (read timeout), want close")
			}
		}
	}

	t.Run("op before hello is fatal", func(t *testing.T) {
		nc := dial()
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpDeleteMin, Req: 1, Count: 1}))
		expectErr(nc, netpq.ErrCodeState)
		expectClosed(nc)
	})
	t.Run("bad version is fatal", func(t *testing.T) {
		nc := dial()
		wire := netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpHello, Req: 1, Count: netpq.Version})
		wire[4] = netpq.Version + 9
		nc.Write(wire)
		expectErr(nc, netpq.ErrCodeVersion)
		expectClosed(nc)
	})
	t.Run("undelimitable length is fatal", func(t *testing.T) {
		nc := dial()
		nc.Write([]byte{0, 0, 0, 2, 1, 1})
		expectErr(nc, netpq.ErrCodeMalformed)
		expectClosed(nc)
	})
	t.Run("oversized length is fatal", func(t *testing.T) {
		nc := dial()
		var pfx [4]byte
		binary.BigEndian.PutUint32(pfx[:], netpq.MaxFrameLen+1)
		nc.Write(pfx[:])
		expectErr(nc, netpq.ErrCodeTooLarge)
		expectClosed(nc)
	})
	t.Run("recoverable errors keep the session", func(t *testing.T) {
		nc := dial()
		// Hello for a nonsense queue: ErrCodeQueue, connection lives.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpHello, Req: 1, Count: netpq.Version, Payload: []byte("no-such-queue")}))
		expectErr(nc, netpq.ErrCodeQueue)
		// Retry Hello with the default queue: accepted.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpHello, Req: 2, Count: netpq.Version}))
		f, err := readFrame(nc)
		if err != nil || f.Op != netpq.OpHello|netpq.RespBit {
			t.Fatalf("hello retry: %+v, %v", f, err)
		}
		if got := string(f.Payload); got != "klsm128" {
			t.Fatalf("canonical queue = %q, want klsm128", got)
		}
		// Bad batch count: ErrCodeBadBatch, connection lives.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpDeleteMin, Req: 3, Count: 0}))
		expectErr(nc, netpq.ErrCodeBadBatch)
		// Unknown opcode: ErrCodeOpcode, connection lives.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: 0x7e, Req: 4}))
		expectErr(nc, netpq.ErrCodeOpcode)
		// Insert payload/count mismatch: ErrCodeMalformed, connection lives.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpInsert, Req: 5, Count: 2, Payload: make([]byte, netpq.KVLen)}))
		expectErr(nc, netpq.ErrCodeMalformed)
		// The session still works end to end.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpInsert, Req: 6, Count: 1,
			Payload: netpq.AppendKVs(nil, []pq.KV{{Key: 13, Value: 37}})}))
		f, err = readFrame(nc)
		if err != nil || f.Op != netpq.OpInsert|netpq.RespBit || f.Count != 1 {
			t.Fatalf("insert after errors: %+v, %v", f, err)
		}
		// Duplicate Hello: fatal.
		nc.Write(netpq.AppendFrame(nil, netpq.Frame{Op: netpq.OpHello, Req: 7, Count: netpq.Version}))
		expectErr(nc, netpq.ErrCodeState)
		expectClosed(nc)
	})
}

// TestClientRoundTrip exercises the synchronous client surface plus the
// ping and stats opcodes against one server.
func TestClientRoundTrip(t *testing.T) {
	_, addr := newLoopbackServer(t, netpq.Options{DefaultQueue: "multiq-s4-b8"})
	c, err := netpq.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.QueueName(); got != "multiq-s4-b8" {
		t.Fatalf("QueueName = %q", got)
	}
	kvs := make([]pq.KV, 32)
	for i := range kvs {
		kvs[i] = pq.KV{Key: uint64(100 - i), Value: uint64(i)}
	}
	if err := c.InsertN(kvs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	dst := make([]pq.KV, 64)
	total := 0
	for total < len(kvs) {
		got, err := c.DeleteMinN(dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			break
		}
		total += got
	}
	if total != len(kvs) {
		t.Fatalf("deleted %d of %d", total, len(kvs))
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ItemsIn != uint64(len(kvs)) || st.ItemsOut != uint64(total) || st.FramesIn == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSlowConsumerEviction pins the backpressure failure mode: a client
// that sends requests but never reads responses must eventually be
// evicted (net-drop), not anchor server memory forever. Small responses
// can drip through the jammed socket as the kernel frees bytes, so the
// pump requests max-batch deletes of a prefilled queue: a 16 KiB
// response frame cannot complete through a zero-window trickle, the
// responder write blocks, the bounded queue fills, and one enqueue
// finally exceeds the stall timeout.
func TestSlowConsumerEviction(t *testing.T) {
	srv, addr := newLoopbackServer(t, netpq.Options{
		DefaultQueue: "globallock",
		WriteQueue:   2,
		StallTimeout: 200 * time.Millisecond,
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096) // shrink the receive window so responses jam quickly
	}
	c, err := netpq.NewClient(nc, "")
	if err != nil {
		t.Fatal(err)
	}

	// Prefill through the session so delete responses are max-size.
	kvs := make([]pq.KV, netpq.MaxBatch)
	for i := range kvs {
		kvs[i] = pq.KV{Key: uint64(i), Value: uint64(i)}
	}
	for b := 0; b < 64; b++ {
		if err := c.InsertN(kvs); err != nil {
			t.Fatal(err)
		}
	}

	// Pump pipelined max-batch deletes and never Recv. The flush may
	// itself block once the server jams, so it runs under a deadline and
	// keeps probing until the eviction closes the connection.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			nc.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := c.StartDeleteMinN(netpq.MaxBatch); err != nil {
				continue
			}
			if err := c.Flush(); err != nil {
				continue
			}
		}
	}()
	defer close(stop)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Drops >= 1 {
			if st.WriteStalls == 0 {
				t.Fatal("eviction without a recorded write stall")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no eviction after 15s: stats %+v", srv.Stats())
}
