package netpq

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame pins the codec's safety contract: no byte sequence may
// make DecodeFrame panic, and anything it accepts must re-encode to the
// exact bytes it consumed (the codec is bijective on valid frames).
// Malformed length prefixes, truncated batches and oversized frames are
// all errors, never crashes — this is the boundary raw network input
// crosses first.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Op: OpHello, Req: 1, Count: Version, Payload: []byte("klsm128")}))
	f.Add(AppendFrame(nil, Frame{Op: OpInsert, Req: 2, Count: 1, Payload: make([]byte, KVLen)}))
	f.Add(AppendFrame(nil, Frame{Op: OpDeleteMin, Req: 3, Count: 8}))
	f.Add(AppendFrame(nil, Frame{Op: OpError, Req: 4, Count: ErrCodeQueue, Payload: []byte("no such queue")}))
	// Adversarial seeds: zero length, tiny length, huge length, bad version.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 8, 99, 2, 0, 0, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < LenPrefixLen+HeaderLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if n > LenPrefixLen+MaxFrameLen {
			t.Fatalf("accepted frame of %d bytes, above max %d", n, LenPrefixLen+MaxFrameLen)
		}
		reenc := AppendFrame(nil, fr)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data[:n])
		}

		// The streaming reader must agree with the buffer decoder on
		// every accepted frame.
		var sf Frame
		if rerr := ReadFrame(bytes.NewReader(data[:n]), &sf); rerr != nil {
			t.Fatalf("ReadFrame rejects what DecodeFrame accepts: %v", rerr)
		}
		if sf.Op != fr.Op || sf.Req != fr.Req || sf.Count != fr.Count || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame decodes %+v, DecodeFrame %+v", sf, fr)
		}

		// A KV-bearing opcode's payload must decode or error, never panic,
		// whatever the count relation.
		if fr.Op == OpInsert || fr.Op == OpDeleteMin|RespBit {
			_, _ = DecodeKVs(fr.Payload, int(fr.Count), nil)
		}
	})
}

// FuzzReadFrame drives the streaming reader with raw bytes: it must
// return an error or a frame for any prefix, never panic, and must never
// accept a frame DecodeFrame rejects.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Op: OpPing, Req: 9, Payload: []byte("abc")}))
	f.Add([]byte{0, 0, 0, 7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := ReadFrame(bytes.NewReader(data), &fr); err != nil {
			return
		}
		length := binary.BigEndian.Uint32(data)
		if _, _, err := DecodeFrame(data[:LenPrefixLen+int(length)]); err != nil {
			t.Fatalf("ReadFrame accepted what DecodeFrame rejects: %v", err)
		}
	})
}
