// Server: the pqd service loop. Each connection is split into a
// dispatcher (read, decode, execute against a pq.Pool-acquired handle,
// encode) and a responder (drain a bounded queue of encoded frames onto
// the socket) — the buffered-responder split of the matching-engine
// lineage this service is modeled on. The split buys two things:
//
//   - Pipelining without head-of-line writes: while the responder is in a
//     write syscall, the dispatcher keeps decoding and executing the next
//     pipelined requests, so queue work and socket work overlap.
//   - Backpressure with a defined failure mode: the queue between the two
//     is bounded. A full queue first stalls the dispatcher (it stops
//     reading, TCP flow control pushes back on the client — counted by
//     net-write-stall); a consumer that stays stuck past StallTimeout is
//     evicted (net-drop) instead of anchoring server memory forever.
//
// Handle lifecycle: one inner handle per connection, acquired from the
// served queue's pool at Hello and released on disconnect. Release
// flushes handle buffers back to the shared structure (the pool's
// contract), so items in flight through a buffering queue survive their
// connection — the e2e conservation test pins this.
package netpq

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpq/internal/pq"
	"cpq/internal/telemetry"
)

// NewQueueFunc constructs a registry queue. spec is the registry string
// ("klsm256", "multiq-s4-b8"); id is the full queue id as served,
// including any "#instance" tag ("linden#bids"), so a constructor that
// attaches per-instance state — a durable log directory, most notably —
// can key it by the instance, not just the spec. The server is handed a
// func (cpq.NewQueue adapted) instead of importing cpq, which keeps
// netpq importable from inside the module's internal tree.
type NewQueueFunc func(spec, id string, threads int) (pq.Queue, error)

// Options configures a Server. The zero value plus a NewQueue func is
// usable: dynamic queue instantiation, default write-queue depth and
// stall timeout.
type Options struct {
	// NewQueue constructs queues from spec strings (required).
	NewQueue NewQueueFunc
	// DefaultQueue is the queue id served to a Hello with an empty
	// payload ("" leaves empty Hellos rejected with ErrCodeQueue).
	DefaultQueue string
	// Preload lists queue ids ("spec" or "spec#instance") to construct
	// at startup, so the first Hello pays no construction latency.
	Preload []string
	// Static refuses Hellos for queue ids not preloaded (and not the
	// default), instead of instantiating them on demand.
	Static bool
	// PoolHandles caps each served queue's handle pool (0 = the pool's
	// default, max(initial, 4·GOMAXPROCS)).
	PoolHandles int
	// WriteQueue is the per-connection responder queue depth in frames
	// (0 = 64). Depth bounds per-connection server memory at roughly
	// WriteQueue · MaxFrameLen bytes in the worst case.
	WriteQueue int
	// StallTimeout is how long one response may stay unqueueable before
	// the connection is evicted (0 = 5s).
	StallTimeout time.Duration
	// Logf receives connection lifecycle and error lines (nil = silent).
	Logf func(format string, args ...any)
}

// Stats are the server's cumulative counters, served to clients through
// OpStats and readable in-process via Server.Stats. All fields count
// since server start; ConnsActive is a gauge.
type Stats struct {
	ConnsOpened uint64
	ConnsActive uint64
	FramesIn    uint64
	FramesOut   uint64
	ItemsIn     uint64 // keys inserted
	ItemsOut    uint64 // keys deleted (excluding empty-delete shortfall)
	WriteStalls uint64
	Drops       uint64 // slow-consumer evictions
}

// statsWords is the OpStats payload layout: the Stats fields in order.
const statsWords = 8

// servedQueue is one queue instance exposed under a queue id, with its
// elastic handle pool.
type servedQueue struct {
	id   string
	q    pq.Queue
	pool *pq.Pool
}

// Server serves registry queues over the netpq protocol. Create with
// NewServer, start with Serve (or ListenAndServe), stop with Close.
type Server struct {
	opts Options

	mu     sync.Mutex
	queues map[string]*servedQueue
	conns  map[net.Conn]struct{}
	ln     net.Listener

	closed atomic.Bool
	wg     sync.WaitGroup

	connsOpened atomic.Uint64
	connsActive atomic.Int64
	framesIn    atomic.Uint64
	framesOut   atomic.Uint64
	itemsIn     atomic.Uint64
	itemsOut    atomic.Uint64
	writeStalls atomic.Uint64
	drops       atomic.Uint64
}

// NewServer returns an unstarted server. It constructs the default and
// preloaded queues eagerly, so a bad spec fails here rather than at the
// first Hello.
func NewServer(opts Options) (*Server, error) {
	if opts.NewQueue == nil {
		return nil, errors.New("netpq: Options.NewQueue is required")
	}
	if opts.WriteQueue <= 0 {
		opts.WriteQueue = 64
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 5 * time.Second
	}
	s := &Server{
		opts:   opts,
		queues: make(map[string]*servedQueue),
		conns:  make(map[net.Conn]struct{}),
	}
	preload := opts.Preload
	if opts.DefaultQueue != "" {
		preload = append([]string{opts.DefaultQueue}, preload...)
	}
	for _, id := range preload {
		if _, err := s.queueFor(id, true); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// queueFor resolves a queue id to its served instance, constructing it
// when allowed. The id grammar is "spec" or "spec#instance": the spec is
// anything the registry accepts, the instance tag distinguishes multiple
// instances of one spec (the order book's "linden#bids"/"linden#asks").
func (s *Server) queueFor(id string, construct bool) (*servedQueue, error) {
	spec := id
	if i := strings.IndexByte(id, '#'); i >= 0 {
		spec = id[:i]
		inst := id[i+1:]
		if inst == "" || len(inst) > 32 || strings.ContainsFunc(inst, func(r rune) bool {
			return !('a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' || '0' <= r && r <= '9' || r == '_' || r == '-')
		}) {
			return nil, fmt.Errorf("netpq: bad instance tag in queue id %q", id)
		}
	}
	if spec == "" || len(id) > MaxQueueID {
		return nil, fmt.Errorf("netpq: bad queue id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sq, ok := s.queues[id]; ok {
		return sq, nil
	}
	if !construct {
		return nil, fmt.Errorf("netpq: queue %q not served (static server)", id)
	}
	q, err := s.opts.NewQueue(spec, id, 0)
	if err != nil {
		return nil, err
	}
	sq := &servedQueue{
		id:   id,
		q:    q,
		pool: pq.NewPool(q, pq.PoolOptions{MaxHandles: s.opts.PoolHandles}),
	}
	s.queues[id] = sq
	return sq, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsOpened: s.connsOpened.Load(),
		ConnsActive: uint64(max64(s.connsActive.Load(), 0)),
		FramesIn:    s.framesIn.Load(),
		FramesOut:   s.framesOut.Load(),
		ItemsIn:     s.itemsIn.Load(),
		ItemsOut:    s.itemsOut.Load(),
		WriteStalls: s.writeStalls.Load(),
		Drops:       s.drops.Load(),
	}
}

// ListenAndServe listens on addr ("host:port"; ":0" for an ephemeral
// port) and serves until Close. Addr is readable via Addr once listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Close (which closes ln). It
// returns nil on Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if s.closed.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops accepting, force-closes every live connection (releasing
// their handles back to the pools, flushed) and waits for the handlers.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// CloseQueues closes every served queue: each pool is closed (flushing
// and disarming its handles, then closing the inner queue if it
// implements pq.Closer — a durable queue takes its final snapshot and
// syncs its log here). Call after Close has returned, when no handler
// still holds a handle; the first error is returned, but every queue is
// closed regardless.
func (s *Server) CloseQueues() error {
	s.mu.Lock()
	queues := s.queues
	s.queues = make(map[string]*servedQueue)
	s.mu.Unlock()
	var first error
	for _, sq := range queues {
		if err := sq.pool.Close(); err != nil && first == nil {
			first = fmt.Errorf("netpq: closing queue %q: %w", sq.id, err)
		}
	}
	return first
}

// conn is the per-connection state shared by dispatcher and responder.
type conn struct {
	s      *Server
	nc     net.Conn
	tel    *telemetry.Shard
	out    chan []byte // encoded response frames, dispatcher -> responder
	free   chan []byte // recycled frame buffers, responder -> dispatcher
	failed atomic.Bool // responder hit a write error or eviction fired

	// Dispatcher-owned scratch, reused across requests.
	in  Frame
	kvs []pq.KV

	// Session state after Hello.
	sq     *servedQueue
	handle *pq.PooledHandle
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// handleConn runs the dispatcher loop and owns connection teardown.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	s.connsOpened.Add(1)
	s.connsActive.Add(1)
	c := &conn{
		s:    s,
		nc:   nc,
		tel:  telemetry.NewShard(),
		out:  make(chan []byte, s.opts.WriteQueue),
		free: make(chan []byte, s.opts.WriteQueue+1),
		kvs:  make([]pq.KV, 0, MaxBatch),
	}
	c.tel.Inc(telemetry.NetConnOpen)
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined request/response traffic; latency over segment count
	}
	var respondDone sync.WaitGroup
	respondDone.Add(1)
	go func() {
		defer respondDone.Done()
		c.respond()
	}()

	err := c.dispatch()
	close(c.out)
	respondDone.Wait()
	nc.Close()
	if c.handle != nil {
		// Release flushes the inner handle's buffers back to the shared
		// structure, so a connection's buffered items outlive it.
		c.sq.pool.Release(c.handle)
	}
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.connsActive.Add(-1)
	if err != nil && !errors.Is(err, io.EOF) && !s.closed.Load() {
		s.logf("netpq: %s: %v", nc.RemoteAddr(), err)
	}
}

// dispatch is the connection's read-execute loop. It returns when the
// stream ends, a fatal protocol violation occurs, or the responder died.
func (c *conn) dispatch() error {
	for {
		if c.failed.Load() {
			return errors.New("responder failed")
		}
		if err := ReadFrame(c.nc, &c.in); err != nil {
			switch {
			case errors.Is(err, ErrFrameTooSmall):
				c.sendErr(0, ErrCodeMalformed, "length prefix below header size")
			case errors.Is(err, ErrFrameTooLarge):
				c.sendErr(0, ErrCodeTooLarge, fmt.Sprintf("length prefix above %d", MaxFrameLen))
			case errors.Is(err, ErrBadVersion):
				c.sendErr(0, ErrCodeVersion, fmt.Sprintf("server speaks version %d", Version))
			}
			return err
		}
		c.s.framesIn.Add(1)
		c.tel.Inc(telemetry.NetFrameIn)
		if fatal, err := c.serve(); fatal {
			return err
		}
	}
}

// serve executes the already-decoded request in c.in. It reports fatal
// when the protocol requires closing the connection.
func (c *conn) serve() (fatal bool, err error) {
	f := &c.in
	if c.s.closed.Load() {
		c.sendErr(f.Req, ErrCodeShutdown, "server shutting down")
		return true, errors.New("shutdown")
	}
	if c.handle == nil && f.Op != OpHello {
		c.sendErr(f.Req, ErrCodeState, "first frame must be Hello")
		return true, errors.New("operation before Hello")
	}
	switch f.Op {
	case OpHello:
		return c.serveHello(f)
	case OpInsert:
		n := int(f.Count)
		if n < 1 || n > MaxBatch {
			c.sendErr(f.Req, ErrCodeBadBatch, fmt.Sprintf("insert count %d outside [1,%d]", n, MaxBatch))
			return false, nil
		}
		kvs, derr := DecodeKVs(f.Payload, n, c.kvs)
		if derr != nil {
			c.sendErr(f.Req, ErrCodeMalformed, derr.Error())
			return false, nil
		}
		c.kvs = kvs
		pq.InsertN(c.handle, kvs)
		c.s.itemsIn.Add(uint64(n))
		c.send(Frame{Op: OpInsert | RespBit, Req: f.Req, Count: uint16(n)})
	case OpDeleteMin:
		n := int(f.Count)
		if n < 1 || n > MaxBatch {
			c.sendErr(f.Req, ErrCodeBadBatch, fmt.Sprintf("delete count %d outside [1,%d]", n, MaxBatch))
			return false, nil
		}
		if len(f.Payload) != 0 {
			c.sendErr(f.Req, ErrCodeMalformed, "DeleteMin carries no payload")
			return false, nil
		}
		if cap(c.kvs) < n {
			c.kvs = make([]pq.KV, n)
		}
		got := pq.DeleteMinN(c.handle, c.kvs[:n], n)
		c.s.itemsOut.Add(uint64(got))
		buf := c.buffer()
		buf = AppendFrame(buf, Frame{Op: OpDeleteMin | RespBit, Req: f.Req, Count: uint16(got)})
		buf = AppendKVs(buf, c.kvs[:got])
		// Patch the length prefix: AppendFrame wrote it for an empty
		// payload before the pairs were appended.
		putFrameLen(buf, HeaderLen+got*KVLen)
		c.enqueue(buf)
	case OpPing:
		if len(f.Payload) > MaxPing {
			c.sendErr(f.Req, ErrCodeMalformed, fmt.Sprintf("ping payload above %d bytes", MaxPing))
			return false, nil
		}
		c.send(Frame{Op: OpPing | RespBit, Req: f.Req, Payload: f.Payload})
	case OpStats:
		st := c.s.Stats()
		buf := c.buffer()
		buf = AppendFrame(buf, Frame{Op: OpStats | RespBit, Req: f.Req, Count: statsWords})
		for _, v := range [statsWords]uint64{
			st.ConnsOpened, st.ConnsActive, st.FramesIn, st.FramesOut,
			st.ItemsIn, st.ItemsOut, st.WriteStalls, st.Drops,
		} {
			buf = appendUint64(buf, v)
		}
		putFrameLen(buf, HeaderLen+statsWords*8)
		c.enqueue(buf)
	default:
		c.sendErr(f.Req, ErrCodeOpcode, fmt.Sprintf("unknown opcode %#02x", f.Op))
	}
	return false, nil
}

// serveHello resolves the queue id, acquires the connection's handle and
// answers with the canonical id.
func (c *conn) serveHello(f *Frame) (fatal bool, err error) {
	if c.handle != nil {
		c.sendErr(f.Req, ErrCodeState, "duplicate Hello")
		return true, errors.New("duplicate Hello")
	}
	if int(f.Count) < Version {
		c.sendErr(f.Req, ErrCodeVersion, fmt.Sprintf("server speaks version %d", Version))
		return true, errors.New("client version too old")
	}
	id := string(f.Payload)
	if id == "" {
		if c.s.opts.DefaultQueue == "" {
			c.sendErr(f.Req, ErrCodeQueue, "empty queue id and no server default")
			return false, nil
		}
		id = c.s.opts.DefaultQueue
	}
	sq, qerr := c.s.queueFor(id, !c.s.opts.Static)
	if qerr != nil {
		c.sendErr(f.Req, ErrCodeQueue, qerr.Error())
		return false, nil
	}
	c.sq = sq
	c.handle = sq.pool.Acquire()
	canonical := sq.q.Name()
	if i := strings.IndexByte(sq.id, '#'); i >= 0 {
		canonical += sq.id[i:]
	}
	c.send(Frame{Op: OpHello | RespBit, Req: f.Req, Count: Version, Payload: []byte(canonical)})
	return false, nil
}

// send encodes f into a recycled buffer and enqueues it for the responder.
func (c *conn) send(f Frame) {
	c.enqueue(AppendFrame(c.buffer(), f))
}

// sendErr enqueues an error frame.
func (c *conn) sendErr(req uint32, code uint16, msg string) {
	buf := c.buffer()
	buf = AppendFrame(buf, Frame{Op: OpError, Req: req, Count: code, Payload: []byte(msg)})
	c.enqueue(buf)
}

// buffer returns an empty encode buffer, recycled from the responder
// when one is available.
func (c *conn) buffer() []byte {
	select {
	case buf := <-c.free:
		return buf[:0]
	default:
		return make([]byte, 0, LenPrefixLen+HeaderLen+64)
	}
}

// enqueue hands an encoded frame to the responder, implementing the
// backpressure policy: block (stalling the read loop, which stalls the
// client through TCP flow control) when the queue is full, and evict the
// connection when a single frame stays unqueueable past StallTimeout.
func (c *conn) enqueue(buf []byte) {
	if c.failed.Load() {
		return
	}
	select {
	case c.out <- buf:
		return
	default:
	}
	c.s.writeStalls.Add(1)
	c.tel.Inc(telemetry.NetWriteStall)
	t := time.NewTimer(c.s.opts.StallTimeout)
	defer t.Stop()
	select {
	case c.out <- buf:
	case <-t.C:
		// CAS so a responder that failed while we waited doesn't make
		// this count as a second, spurious eviction.
		if c.failed.CompareAndSwap(false, true) {
			c.s.drops.Add(1)
			c.tel.Inc(telemetry.NetDrop)
			c.nc.Close() // unblocks dispatcher read and responder write
			c.s.logf("netpq: %s: evicted after %v write stall", c.nc.RemoteAddr(), c.s.opts.StallTimeout)
		}
	}
}

// respond drains the write queue onto the socket. Writes are coalesced:
// frames are written while more are queued and the socket is flushed...
// there is no bufio layer — instead the responder concatenates every
// queued frame into one write buffer and issues a single Write per
// drain round, which is the batching that matters on loopback.
func (c *conn) respond() {
	var wbuf []byte
	for first := range c.out {
		wbuf = append(wbuf[:0], first...)
		c.recycle(first)
		// Coalesce whatever else is already queued into this write.
	coalesce:
		for len(wbuf) < 64<<10 {
			select {
			case next, ok := <-c.out:
				if !ok {
					break coalesce
				}
				wbuf = append(wbuf, next...)
				c.recycle(next)
			default:
				break coalesce
			}
		}
		nframes := uint64(0) // counted below as frames, not writes
		for off := 0; off < len(wbuf); {
			length := int(uint32(wbuf[off])<<24 | uint32(wbuf[off+1])<<16 | uint32(wbuf[off+2])<<8 | uint32(wbuf[off+3]))
			off += LenPrefixLen + length
			nframes++
		}
		if _, err := c.nc.Write(wbuf); err != nil {
			c.failed.Store(true)
			c.nc.Close() // unblock a dispatcher parked in ReadFrame
			// Drain remaining frames so the dispatcher never blocks on a
			// dead responder.
			for range c.out {
			}
			return
		}
		c.s.framesOut.Add(nframes)
		c.tel.Add(telemetry.NetFrameOut, nframes)
	}
}

// recycle returns a drained frame buffer to the dispatcher's free list.
func (c *conn) recycle(buf []byte) {
	select {
	case c.free <- buf:
	default:
	}
}

// putFrameLen patches the length prefix of the frame starting at buf[0]
// — used when a payload is appended after AppendFrame wrote the header.
func putFrameLen(buf []byte, length int) {
	buf[0] = byte(length >> 24)
	buf[1] = byte(length >> 16)
	buf[2] = byte(length >> 8)
	buf[3] = byte(length)
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
