// Client: the netpq protocol from the connecting side. One Client is one
// connection and, like a pq.Handle, is owned by one goroutine; a load
// generator opens N clients for N connections.
//
// Two calling styles share the connection state:
//
//   - Synchronous: InsertN / DeleteMinN / Ping / Stats send one request
//     and block for its response — simple, one round-trip per call.
//   - Pipelined: Start* methods enqueue requests without waiting and
//     Recv consumes responses in order; the caller keeps a fixed number
//     in flight. Responses arrive strictly in request order (the server
//     guarantees per-connection FIFO), so correlation is positional —
//     the echoed request id is a cross-check, not a lookup key.
//
// Buffered writes are explicit: Start* methods buffer, Flush pushes the
// bytes to the socket. Recv flushes automatically before blocking, so a
// send-then-recv loop cannot deadlock on its own buffered requests.
package netpq

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"cpq/internal/pq"
)

// Client is one protocol connection. Not safe for concurrent use.
type Client struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	req   uint32
	queue string // canonical queue id from HelloOK

	enc  []byte // encode scratch
	resp Frame  // decode scratch; aliased by Resp.KVs until next Recv
	kvs  []pq.KV
}

// Resp is one decoded response. KVs aliases client-owned scratch and is
// valid until the next Recv (or synchronous call) on the same client.
type Resp struct {
	Op    byte
	Req   uint32
	Count int
	KVs   []pq.KV
	// Err is the decoded error frame when the server answered this
	// request with OpError; the connection survives unless Err.Fatal().
	Err *ServerError
}

// Dial connects to a pqd server and performs the Hello handshake for
// queueID ("spec" or "spec#instance"; "" selects the server default).
func Dial(addr, queueID string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(nc, queueID)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the Hello handshake over an existing connection and
// takes ownership of it on success.
func NewClient(nc net.Conn, queueID string) (*Client, error) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	if len(queueID) > MaxQueueID {
		return nil, fmt.Errorf("netpq: queue id %q above %d bytes", queueID, MaxQueueID)
	}
	if err := c.sendFrame(Frame{Op: OpHello, Req: c.nextReq(), Count: Version, Payload: []byte(queueID)}); err != nil {
		return nil, err
	}
	r, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Op != OpHello|RespBit {
		return nil, fmt.Errorf("netpq: Hello answered with opcode %#02x", r.Op)
	}
	c.queue = string(c.resp.Payload)
	return c, nil
}

// QueueName returns the canonical queue id from the Hello handshake,
// e.g. "klsm4096" or "linden#bids".
func (c *Client) QueueName() string { return c.queue }

// Close terminates the connection.
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) nextReq() uint32 {
	c.req++
	return c.req
}

func (c *Client) sendFrame(f Frame) error {
	if err := c.writeFrame(f); err != nil {
		return err
	}
	return c.Flush()
}

func (c *Client) writeFrame(f Frame) error {
	c.enc = AppendFrame(c.enc[:0], f)
	_, err := c.bw.Write(c.enc)
	return err
}

// Flush pushes buffered request frames to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// StartInsertN enqueues (without flushing) an insert of kvs — one frame,
// one batch — and returns its request id. len(kvs) must be in
// [1, MaxBatch].
func (c *Client) StartInsertN(kvs []pq.KV) (uint32, error) {
	if len(kvs) < 1 || len(kvs) > MaxBatch {
		return 0, fmt.Errorf("netpq: insert batch %d outside [1,%d]", len(kvs), MaxBatch)
	}
	req := c.nextReq()
	c.enc = AppendFrame(c.enc[:0], Frame{Op: OpInsert, Req: req, Count: uint16(len(kvs))})
	c.enc = AppendKVs(c.enc, kvs)
	putFrameLen(c.enc, HeaderLen+len(kvs)*KVLen)
	_, err := c.bw.Write(c.enc)
	return req, err
}

// StartDeleteMinN enqueues (without flushing) a delete of up to n items.
func (c *Client) StartDeleteMinN(n int) (uint32, error) {
	if n < 1 || n > MaxBatch {
		return 0, fmt.Errorf("netpq: delete batch %d outside [1,%d]", n, MaxBatch)
	}
	req := c.nextReq()
	return req, c.writeFrame(Frame{Op: OpDeleteMin, Req: req, Count: uint16(n)})
}

// Recv flushes buffered requests and blocks for the next response frame.
// A server-reported error is returned inside Resp.Err (the connection
// stays usable unless Err.Fatal()); the error return is for transport
// failures only.
func (c *Client) Recv() (Resp, error) {
	if c.bw.Buffered() > 0 {
		if err := c.bw.Flush(); err != nil {
			return Resp{}, err
		}
	}
	if err := ReadFrame(c.br, &c.resp); err != nil {
		return Resp{}, err
	}
	r := Resp{Op: c.resp.Op, Req: c.resp.Req, Count: int(c.resp.Count)}
	switch c.resp.Op {
	case OpError:
		r.Err = &ServerError{Code: c.resp.Count, Msg: string(c.resp.Payload)}
	case OpDeleteMin | RespBit:
		kvs, err := DecodeKVs(c.resp.Payload, int(c.resp.Count), c.kvs)
		if err != nil {
			return Resp{}, err
		}
		c.kvs = kvs
		r.KVs = kvs
	}
	return r, nil
}

// InsertN synchronously inserts kvs as one batch frame.
func (c *Client) InsertN(kvs []pq.KV) error {
	if _, err := c.StartInsertN(kvs); err != nil {
		return err
	}
	r, err := c.Recv()
	if err != nil {
		return err
	}
	if r.Err != nil {
		return r.Err
	}
	if r.Op != OpInsert|RespBit {
		return fmt.Errorf("netpq: insert answered with opcode %#02x", r.Op)
	}
	return nil
}

// Insert synchronously inserts one pair.
func (c *Client) Insert(key, value uint64) error {
	return c.InsertN([]pq.KV{{Key: key, Value: value}})
}

// DeleteMinN synchronously removes up to n items into a prefix of dst
// and returns how many were removed; like pq.DeleteMinN, a short return
// means the queue appeared empty. dst must hold at least n items.
func (c *Client) DeleteMinN(dst []pq.KV, n int) (int, error) {
	if n > len(dst) {
		n = len(dst)
	}
	if _, err := c.StartDeleteMinN(n); err != nil {
		return 0, err
	}
	r, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if r.Err != nil {
		return 0, r.Err
	}
	if r.Op != OpDeleteMin|RespBit {
		return 0, fmt.Errorf("netpq: delete answered with opcode %#02x", r.Op)
	}
	return copy(dst[:n], r.KVs), nil
}

// DeleteMin synchronously removes one item.
func (c *Client) DeleteMin() (key, value uint64, ok bool, err error) {
	var one [1]pq.KV
	got, err := c.DeleteMinN(one[:], 1)
	if err != nil || got == 0 {
		return 0, 0, false, err
	}
	return one[0].Key, one[0].Value, true, nil
}

// Ping round-trips an opaque payload (≤ MaxPing bytes) and reports the
// round-trip time.
func (c *Client) Ping(payload []byte) (time.Duration, error) {
	start := time.Now()
	if err := c.sendFrame(Frame{Op: OpPing, Req: c.nextReq(), Payload: payload}); err != nil {
		return 0, err
	}
	r, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if r.Err != nil {
		return 0, r.Err
	}
	if r.Op != OpPing|RespBit {
		return 0, fmt.Errorf("netpq: ping answered with opcode %#02x", r.Op)
	}
	return time.Since(start), nil
}

// Stats fetches the server's cumulative connection/frame counters.
func (c *Client) Stats() (Stats, error) {
	if err := c.sendFrame(Frame{Op: OpStats, Req: c.nextReq()}); err != nil {
		return Stats{}, err
	}
	r, err := c.Recv()
	if err != nil {
		return Stats{}, err
	}
	if r.Err != nil {
		return Stats{}, r.Err
	}
	if r.Op != OpStats|RespBit || r.Count != statsWords || len(c.resp.Payload) != statsWords*8 {
		return Stats{}, fmt.Errorf("netpq: malformed stats response")
	}
	w := func(i int) uint64 {
		p := c.resp.Payload[i*8:]
		return uint64(p[0])<<56 | uint64(p[1])<<48 | uint64(p[2])<<40 | uint64(p[3])<<32 |
			uint64(p[4])<<24 | uint64(p[5])<<16 | uint64(p[6])<<8 | uint64(p[7])
	}
	return Stats{
		ConnsOpened: w(0), ConnsActive: w(1),
		FramesIn: w(2), FramesOut: w(3),
		ItemsIn: w(4), ItemsOut: w(5),
		WriteStalls: w(6), Drops: w(7),
	}, nil
}
