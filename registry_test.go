package cpq

import (
	"errors"
	"strings"
	"testing"

	"cpq/internal/spray"
)

// TestRegistryRoundTrip: every advertised identifier constructs, reports
// itself under the same name, and the deprecated New wrapper builds the
// identical queue as NewQueue.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		q, err := NewQueue(name, Options{Threads: 4})
		if err != nil {
			t.Fatalf("NewQueue(%q): %v", name, err)
		}
		if q.Name() != name {
			t.Fatalf("NewQueue(%q).Name() = %q", name, q.Name())
		}
		old, err := New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if old.Name() != q.Name() {
			t.Fatalf("New(%q) built %q, NewQueue built %q", name, old.Name(), q.Name())
		}
		// Both construction paths must yield a usable queue.
		h := q.Handle()
		h.Insert(42, 1)
		if k, _, ok := h.DeleteMin(); !ok || k != 42 {
			t.Fatalf("NewQueue(%q): inserted 42, deleted (%d, %v)", name, k, ok)
		}
	}
}

func TestUnknownQueueError(t *testing.T) {
	_, err := NewQueue("nope", Options{})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	var unknown *UnknownQueueError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v is not an *UnknownQueueError", err)
	}
	if unknown.Name != "nope" {
		t.Fatalf("Name = %q", unknown.Name)
	}
	if len(unknown.Known) != len(Names()) {
		t.Fatalf("Known = %v", unknown.Known)
	}
	if msg := err.Error(); !strings.Contains(msg, "klsm128") || !strings.Contains(msg, `"nope"`) {
		t.Fatalf("error message lacks name or known list: %s", msg)
	}
	// Malformed parameters of a recognized family are NOT unknown-queue
	// errors — callers distinguish a typo'd name from a bad parameter.
	if _, err := NewQueue("klsm0", Options{}); err == nil || errors.As(err, &unknown) {
		t.Fatalf("bad parameter reported as unknown queue: %v", err)
	}
}

func TestOptionsApplied(t *testing.T) {
	// Zero value is valid and means one thread.
	if q, err := NewQueue("spray", Options{}); err != nil || q.(*spray.Queue).P() != 1 {
		t.Fatalf("zero Options: %v, %v", q, err)
	}
	if q, _ := NewQueue("spray", Options{Threads: -3}); q.(*spray.Queue).P() != 1 {
		t.Fatal("negative Threads not clamped to 1")
	}
	if q, _ := NewQueue("spray", Options{Threads: 16}); q.(*spray.Queue).P() != 16 {
		t.Fatal("Threads not forwarded to the spray geometry")
	}
	// Per-structure tuning: explicit spray parameters change the geometry.
	deflt, _ := NewQueue("spray", Options{Threads: 8})
	tuned, _ := NewQueue("spray", Options{Threads: 8, SprayParams: &spray.Params{K: 4, M: 8, D: 1}})
	dh, _ := deflt.(*spray.Queue).Geometry()
	th, _ := tuned.(*spray.Queue).Geometry()
	if dh == th {
		t.Fatalf("SprayParams ignored: height %d == %d", dh, th)
	}
	// Tuning fields are ignored by unrelated queues.
	if q, err := NewQueue("linden", Options{SprayParams: &spray.Params{K: 9}}); err != nil || q.Name() != "linden" {
		t.Fatalf("linden with spray params: %v, %v", q, err)
	}
}

// TestParseMultiQSpecTable pins the spec grammar, in particular that a
// duplicated parameter is rejected rather than silently last-wins.
func TestParseMultiQSpecTable(t *testing.T) {
	cases := []struct {
		spec    string
		c, s, b int
		wantErr string
	}{
		{spec: "s4-b8", c: 4, s: 4, b: 8},
		{spec: "c8-s4-b8", c: 8, s: 4, b: 8},
		{spec: "b8", c: 4, s: 1, b: 8},
		{spec: "c2", c: 2, s: 1, b: 1},
		{spec: "s4-s8", wantErr: "duplicate"},
		{spec: "c2-c2", wantErr: "duplicate"},
		{spec: "b8-b8", wantErr: "duplicate"},
		{spec: "s4-b8-s4", wantErr: "duplicate"},
		{spec: "", wantErr: "bad"},
		{spec: "s", wantErr: "bad"},
		{spec: "s0", wantErr: "bad"},
		{spec: "sx", wantErr: "bad"},
		{spec: "z4", wantErr: "bad"},
		{spec: "s4--b8", wantErr: "bad"},
	}
	for _, tc := range cases {
		c, s, b, err := parseMultiQSpec(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseMultiQSpec(%q) = (%d,%d,%d,%v), want %q error",
					tc.spec, c, s, b, err, tc.wantErr)
			}
			continue
		}
		if err != nil || c != tc.c || s != tc.s || b != tc.b {
			t.Fatalf("parseMultiQSpec(%q) = (%d,%d,%d,%v), want (%d,%d,%d)",
				tc.spec, c, s, b, err, tc.c, tc.s, tc.b)
		}
	}
}

// FuzzParseMultiQSpec: the spec parser must never panic, and every accepted
// spec must produce in-range parameters and a queue whose name round-trips
// through the registry.
func FuzzParseMultiQSpec(f *testing.F) {
	for _, s := range []string{"s4-b8", "c8-s4-b8", "b8", "", "s", "s0", "z4", "s4-s4", "c1-s1-b1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, s, b, err := parseMultiQSpec(spec)
		if err != nil {
			return
		}
		if c < 1 || s < 1 || b < 1 {
			t.Fatalf("parseMultiQSpec(%q) accepted out-of-range (%d,%d,%d)", spec, c, s, b)
		}
		q, err := NewQueue("multiq-"+spec, Options{Threads: 2})
		if err != nil {
			t.Fatalf("accepted spec %q did not construct: %v", spec, err)
		}
		if rt, err := NewQueue(q.Name(), Options{Threads: 2}); err != nil || rt.Name() != q.Name() {
			t.Fatalf("name %q does not round-trip: %v", q.Name(), err)
		}
	})
}

// FuzzNewQueue: no identifier may panic the registry; accepted identifiers
// must yield a queue with a non-empty name and working operations.
func FuzzNewQueue(f *testing.F) {
	for _, n := range Names() {
		f.Add(n, 4)
	}
	f.Add("klsm0", 1)
	f.Add("klsm99999999999999999999", 1)
	f.Add(" LINDEN ", -1)
	f.Add("multiq-s4-s4", 0)
	f.Add("", 2)
	f.Fuzz(func(t *testing.T, name string, threads int) {
		if threads > 64 {
			threads = 64 // keep sub-queue arrays small
		}
		// Skip astronomically large (but well-formed) parameters: a
		// "multiq1000000000" would legitimately allocate c·p sub-heaps.
		digits := 0
		for _, r := range name {
			if r >= '0' && r <= '9' {
				digits++
			}
		}
		if digits > 4 {
			return
		}
		q, err := NewQueue(name, Options{Threads: threads})
		if err != nil {
			return
		}
		if q.Name() == "" {
			t.Fatalf("NewQueue(%q) built a nameless queue", name)
		}
		h := q.Handle()
		h.Insert(7, 7)
		if k, _, ok := h.DeleteMin(); !ok || k != 7 {
			t.Fatalf("NewQueue(%q): inserted 7, deleted (%d, %v)", name, k, ok)
		}
	})
}
