package cpq

import (
	"container/heap"
	"testing"
	"testing/quick"

	"cpq/internal/rng"
)

// oracleHeap is a reference min-heap built on container/heap, used to
// property-test every strict queue for exact sequential equivalence and
// every relaxed queue for its relaxation bound.
type oracleHeap []Item

func (h oracleHeap) Len() int            { return len(h) }
func (h oracleHeap) Less(i, j int) bool  { return h[i].Key < h[j].Key }
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// strictQueues are the implementations with exact sequential semantics:
// a single-handle run must behave identically to a binary heap (up to
// tie-breaking among equal keys, so we compare keys only).
var strictQueues = []string{"globallock", "linden", "lotan", "hunt", "mound", "cbpq", "locksl", "dlsm"}

func TestStrictQueuesMatchOracleProperty(t *testing.T) {
	for _, name := range strictQueues {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64, opsRaw []uint16) bool {
				q, err := New(name, 1)
				if err != nil {
					t.Fatal(err)
				}
				h := q.Handle()
				var oracle oracleHeap
				r := rng.New(seed)
				for _, raw := range opsRaw {
					if raw%3 != 0 || oracle.Len() == 0 {
						key := uint64(raw) % 128 // heavy duplicates
						value := r.Uint64()
						h.Insert(key, value)
						heap.Push(&oracle, Item{Key: key, Value: value})
					} else {
						k, _, ok := h.DeleteMin()
						want := heap.Pop(&oracle).(Item)
						if !ok || k != want.Key {
							return false
						}
					}
				}
				// Drain both; key sequences must agree exactly.
				for oracle.Len() > 0 {
					k, _, ok := h.DeleteMin()
					want := heap.Pop(&oracle).(Item)
					if !ok || k != want.Key {
						return false
					}
				}
				_, _, ok := h.DeleteMin()
				return !ok
			}, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRelaxedQueuesBoundedProperty checks the advertised relaxation bound
// of single-handle runs: the SLSM and k-LSM skip at most k live items per
// deletion. (Spray and MultiQueue publish no bound usable here.)
func TestRelaxedQueuesBoundedProperty(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bound int // max items a single-handle deletion may skip
	}{
		{"klsm64", 64},
		{"slsm32", 32},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64) bool {
				q, err := New(tc.name, 1)
				if err != nil {
					t.Fatal(err)
				}
				h := q.Handle()
				var oracle oracleHeap
				r := rng.New(seed)
				for i := 0; i < 3000; i++ {
					if r.Uintn(2) == 0 || oracle.Len() == 0 {
						key := r.Uint64() % 100000
						h.Insert(key, 0)
						heap.Push(&oracle, Item{Key: key})
					} else {
						k, _, ok := h.DeleteMin()
						if !ok {
							return false
						}
						// Count oracle items strictly smaller than k: must
						// be <= bound. Then remove the matching key.
						smaller := 0
						found := false
						for j := range oracle {
							if oracle[j].Key < k {
								smaller++
							}
							if oracle[j].Key == k {
								found = true
							}
						}
						if !found || smaller > tc.bound {
							return false
						}
						removeKey(&oracle, k)
					}
				}
				return true
			}, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func removeKey(h *oracleHeap, key uint64) {
	for j := range *h {
		if (*h)[j].Key == key {
			heap.Remove(h, j)
			return
		}
	}
}

// TestValuesPreservedProperty: for every queue, values travel with keys —
// checked by inserting value = f(key) and validating on deletion.
func TestValuesPreservedProperty(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			h := q.Handle()
			r := rng.New(99)
			for i := 0; i < 5000; i++ {
				k := r.Uint64() % 1 << 20
				h.Insert(k, k^0xabcdef)
				if i%3 == 2 {
					k, v, ok := h.DeleteMin()
					if ok && v != k^0xabcdef {
						t.Fatalf("value corrupted: key %d value %d", k, v)
					}
				}
			}
			for {
				k, v, ok := h.DeleteMin()
				if !ok {
					break
				}
				if v != k^0xabcdef {
					t.Fatalf("value corrupted on drain: key %d value %d", k, v)
				}
			}
		})
	}
}
